// cmetile-request: one-shot client for a cmetile-serve daemon.
//
//   ./cmetile-request --connect=host:port --kernel=NAME [--size=N]
//       [--kind=tiling|padding|joint] [--cache-kb=8] [--line-bytes=32]
//       [--assoc=1] [--seed=N] [--fast] [--wait=S]
//
// Builds one core::OptimizeRequest from the named Table-1 kernel and cache
// geometry, sends it, and prints the reply: how it was satisfied (warm /
// cold / coalesced), the winning parameters, and the predicted miss-cost
// improvement. Exit 0 on an ok reply, 1 on a daemon-side error or reject
// (the retry hint is printed), 2 on usage errors.

#include <iostream>

#include "cache/hierarchy.hpp"
#include "core/optimize.hpp"
#include "kernels/kernels.hpp"
#include "serve/client.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout << "cmetile-request flags:\n"
              << "  --connect=H:P     the cmetile-serve daemon (required)\n"
              << "  --kernel=NAME     Table-1 kernel name, e.g. MXM (required)\n"
              << "  --size=N          problem size (default: the kernel's)\n"
              << "  --kind=K          tiling (default) | padding | joint\n"
              << "  --cache-kb=N      cache size in KB (default 8)\n"
              << "  --line-bytes=N    cache line bytes (default 32)\n"
              << "  --assoc=N         associativity (default 1 = direct-mapped)\n"
              << "  --seed=N          GA seed (default 2002)\n"
              << "  --fast            smoke GA + sampling budget\n"
              << "  --wait=S          connect/reply wait seconds (default 60)\n";
    return 0;
  }

  const std::string connect = args.get("connect", "");
  const std::string kernel = args.get("kernel", "");
  if (connect.empty() || kernel.empty()) {
    std::cerr << "cmetile-request: --connect and --kernel are required (see --help)\n";
    return 2;
  }
  const std::optional<kernels::KernelSpec> spec = kernels::find_kernel(kernel);
  if (!spec) {
    std::cerr << "cmetile-request: unknown kernel " << kernel << "\n";
    return 2;
  }
  const std::optional<core::OptimizeKind> kind =
      core::optimize_kind_of(args.get("kind", "tiling"));
  if (!kind) {
    std::cerr << "cmetile-request: --kind must be tiling, padding or joint\n";
    return 2;
  }

  core::OptimizeRequest request;
  try {
    const i64 size = args.get_int_strict("size", spec->sized ? spec->default_size : 0);
    const cache::CacheConfig config{args.get_int_strict("cache-kb", 8) * 1024,
                                    args.get_int_strict("line-bytes", 32),
                                    args.get_int_strict("assoc", 1)};
    core::OptimizerOptions options;
    options.ga.seed = (std::uint64_t)args.get_int_strict("seed", 2002);
    if (args.get_bool("fast", false)) options.shrink_for_smoke();
    request = core::OptimizeRequest{*kind, kernels::build_kernel(spec->name, size), {},
                                    cache::Hierarchy::single(config), options};
  } catch (const std::exception& e) {
    std::cerr << "cmetile-request: " << e.what() << "\n";
    return 2;
  }

  const double wait = args.get_double_strict("wait", 60.0);
  const std::unique_ptr<serve::ServeClient> client = serve::ServeClient::connect(connect, wait);
  if (client == nullptr) {
    std::cerr << "cmetile-request: could not connect to " << connect << "\n";
    return 1;
  }
  const std::optional<serve::Reply> reply = client->ask(request, wait);
  if (!reply) {
    std::cerr << "cmetile-request: no reply from " << connect << "\n";
    return 1;
  }
  if (!reply->ok) {
    std::cerr << "cmetile-request: " << reply->error;
    if (reply->retry_after_ms > 0)
      std::cerr << " (retry after " << reply->retry_after_ms << "ms)";
    std::cerr << "\n";
    return 1;
  }

  const core::OptimizeResponse& response = *reply->response;
  std::cout << kernel << " " << core::to_string(response.kind) << " [" << reply->status << "]";
  if (response.kind != core::OptimizeKind::Padding)
    std::cout << " tiles=" << response.tiles.to_string();
  if (response.kind != core::OptimizeKind::Tiling)
    std::cout << " pads=" << response.pads.to_string(request.nest);
  std::cout << " cost " << response.before.weighted_cost << " -> "
            << response.after.weighted_cost << " (" << response.ga.generations
            << " generations, " << response.ga.evaluations << " evaluations)\n";
  return 0;
}

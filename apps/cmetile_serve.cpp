// cmetile-serve: the tiling-as-a-service daemon (DESIGN.md §18).
//
//   ./cmetile-serve --listen=host:port [--cache-dir=DIR] [--no-cache]
//       [--queue-max=N] [--retry-after-ms=N] [--max-requests=N]
//       [--timeout=S] [--metrics=FILE] [--trace=FILE]
//
// The same binary is its own worker: run additional copies with
// `./cmetile-serve --connect=host:port` on any machine that can reach the
// daemon (they retry the connect, so start order does not matter). With
// no workers connected the daemon computes requests in-process.
//
// Clients: `cmetile-request --connect=host:port ...`, or any program
// speaking the client role of the line protocol (serve/wire.hpp).

#include <iostream>

#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "support/cli.hpp"
#include "sweep/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  // Worker mode first: under --connect this process must speak only the
  // JSON protocol (maybe_run_worker never returns in that case).
  sweep::maybe_run_worker(argc, argv);

  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "cmetile-serve flags:\n"
        << "  --listen=H:P        bind the service socket (required; port 0 = ephemeral)\n"
        << "  --connect=H:P       run as a WORKER for a daemon instead\n"
        << "  --cache-dir=DIR     result cache location (default " << kDefaultCacheDir << ")\n"
        << "  --no-cache          disable the warm path entirely\n"
        << "  --queue-max=N       admission bound on queued computations (default 64)\n"
        << "  --retry-after-ms=N  backoff hint on admission reject (default 250)\n"
        << "  --max-requests=N    answer N requests, then exit (default 0 = forever)\n"
        << "  --timeout=S         kill workers silent mid-request for S seconds\n"
        << "  --metrics=FILE      write the serve metrics report on shutdown\n"
        << "  --trace=FILE        Chrome trace_event JSON (per-request spans)\n";
    return 0;
  }

  serve::ServeOptions options;
  options.listen = args.get("listen", "");
  if (options.listen.empty()) {
    std::cerr << "cmetile-serve: --listen=host:port is required (see --help)\n";
    return 2;
  }
  options.cache_dir = args.get("cache-dir", kDefaultCacheDir);
  options.use_cache = !args.get_bool("no-cache", false);
  options.queue_max = (std::size_t)args.get_int_strict("queue-max", 64);
  options.retry_after_ms = args.get_int_strict("retry-after-ms", 250);
  options.max_requests = args.get_int_strict("max-requests", 0);
  options.worker_timeout_seconds = args.get_double_strict("timeout", 120.0);
  options.metrics_path = args.get("metrics", "");
  // Line-buffered logs would sit in a redirected file's buffer for the
  // whole run; the CI smoke job tails the log to sequence its clients.
  std::cout << std::unitbuf;
  options.log = &std::cout;

  const std::string trace = args.get("trace", "");
  if (!trace.empty()) obs::init_trace(trace, "cmetile-serve");

  try {
    serve::run_server(options);
  } catch (const std::exception& e) {
    std::cerr << "cmetile-serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

#pragma once
// Umbrella header: the public API of the cmetile library.
//
//   #include "core/api.hpp"
//
// pulls in the loop-nest IR and builder, the cache model (single caches
// and 1–3-level hierarchies), the trace simulators, reuse analysis, the
// CME solver and estimators (single-level and per-level hierarchy forms),
// the tiling/padding transformations, the genetic optimizer and the
// unified optimize entry point: every optimization is one
// core::OptimizeRequest answered by core::optimize() (the legacy
// optimize_tiling/optimize_padding/optimize_jointly overloads in
// core/tiler.hpp are thin wrappers over it). Two layers sit ABOVE core
// in the DAG and are therefore not part of this header: sweep (cached,
// resumable, multi-process experiment sweeps, DESIGN.md §13 — include
// "sweep/scheduler.hpp") and serve (the tiling-as-a-service daemon,
// DESIGN.md §18 — include "serve/server.hpp"); the `cmetile` umbrella
// target links both. See README.md for a quickstart and DESIGN.md for
// the layer map.
//
// Everything lives under namespace cmetile, one nested namespace per
// layer (cmetile::ir, ::cache, ::cme, ::core, …). Link the `cmetile`
// CMake target to get every layer. All public types are value types or
// hold non-owning pointers whose referents the caller keeps alive (each
// class documents which); no global state beyond the diagnostic counters
// noted in cme/analysis.hpp.

#include "baselines/analytic.hpp"
#include "baselines/search.hpp"
#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/simulator.hpp"
#include "cme/analysis.hpp"
#include "cme/equations.hpp"
#include "cme/estimator.hpp"
#include "cme/hierarchy.hpp"
#include "core/experiment.hpp"
#include "core/objective.hpp"
#include "core/optimize.hpp"
#include "core/tiler.hpp"
#include "ga/ga.hpp"
#include "ir/builder.hpp"
#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "ir/trace.hpp"
#include "kernels/kernels.hpp"
#include "reuse/reuse.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "transform/legality.hpp"
#include "transform/padding.hpp"
#include "transform/tiling.hpp"

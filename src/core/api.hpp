#pragma once
// Umbrella header: the public API of the cmetile library.
//
//   #include "core/api.hpp"
//
// pulls in the loop-nest IR and builder, the cache model (single caches
// and 1–3-level hierarchies), the trace simulators, reuse analysis, the
// CME solver and estimators (single-level and per-level hierarchy forms),
// the tiling/padding transformations, the genetic optimizer and the
// high-level tiling pipeline. The sweep orchestration layer (cached,
// resumable, multi-process experiment sweeps, DESIGN.md §13) sits ABOVE
// core in the layer DAG, so it is not part of this header — include
// "sweep/scheduler.hpp" for it (the `cmetile` umbrella target links it).
// See README.md for a quickstart and DESIGN.md for the layer map.
//
// Everything lives under namespace cmetile, one nested namespace per
// layer (cmetile::ir, ::cache, ::cme, ::core, …). Link the `cmetile`
// CMake target to get every layer. All public types are value types or
// hold non-owning pointers whose referents the caller keeps alive (each
// class documents which); no global state beyond the diagnostic counters
// noted in cme/analysis.hpp.

#include "baselines/analytic.hpp"
#include "baselines/search.hpp"
#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/simulator.hpp"
#include "cme/analysis.hpp"
#include "cme/equations.hpp"
#include "cme/estimator.hpp"
#include "cme/hierarchy.hpp"
#include "core/experiment.hpp"
#include "core/objective.hpp"
#include "core/tiler.hpp"
#include "ga/ga.hpp"
#include "ir/builder.hpp"
#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "ir/trace.hpp"
#include "kernels/kernels.hpp"
#include "reuse/reuse.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "transform/legality.hpp"
#include "transform/padding.hpp"
#include "transform/tiling.hpp"

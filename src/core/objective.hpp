#pragma once
// GA objectives (paper §3.1): f(T_1..T_k) = #ReplacementMisses, evaluated
// through the parameterized CMEs — i.e. a fresh NestAnalysis per candidate
// tile/pad vector, estimated on a *fixed* sample of iteration points drawn
// once per optimizer run. Sampling in the original rectangular space makes
// the sample valid for every tiling (same access multiset), which gives
// common random numbers across individuals: selection compares candidates
// on the same points instead of through independent sampling noise
// (DESIGN.md §8). Operator() is thread-safe (the GA evaluates populations
// in parallel).

#include <span>
#include "cme/estimator.hpp"
#include "ga/encoding.hpp"
#include "transform/legality.hpp"
#include "transform/padding.hpp"
#include "transform/tiling.hpp"

namespace cmetile::core {

struct ObjectiveOptions {
  cme::EstimatorOptions estimator;
  cme::AnalysisOptions analysis;
};

/// Cost of a tile vector = estimated replacement misses of the tiled nest.
/// Tile vectors that would reorder a dependence illegally (see
/// transform/legality.hpp) receive a penalty cost above any feasible miss
/// count — graded by tile_vector_violation so selection discriminates
/// among illegal individuals — and the GA searches only
/// semantics-preserving tilings.
class TilingObjective {
 public:
  TilingObjective(const ir::LoopNest& nest, ir::MemoryLayout layout,
                  cache::CacheConfig cache, ObjectiveOptions options = {});

  /// GA domains: T_d ∈ [1, U_d] (paper §3.1).
  std::vector<ga::VarDomain> domains() const;

  /// Estimated replacement misses (the GA cost). Thread-safe.
  double operator()(std::span<const i64> tiles) const;

  /// Full estimate for a tile vector (ratios, CI) on the shared sample.
  cme::MissEstimate evaluate(const transform::TileVector& tiles) const;

  /// Is this tile vector a legal reordering of the nest?
  bool is_legal(const transform::TileVector& tiles) const;

  const ir::LoopNest& nest() const { return *nest_; }

 private:
  const ir::LoopNest* nest_;
  ir::MemoryLayout layout_;
  cache::CacheConfig cache_;
  ObjectiveOptions options_;
  std::vector<std::vector<i64>> points_;
  std::vector<std::vector<i64>> risky_deps_;
  std::vector<i64> trips_;
};

/// Cost of a pad vector = estimated replacement misses of the nest with the
/// padded layout, at a fixed tiling (untiled by default — the paper's
/// "padding first, then tiling" sequence).
class PaddingObjective {
 public:
  PaddingObjective(const ir::LoopNest& nest, cache::CacheConfig cache,
                   transform::TileVector tiles, i64 max_intra_elems, i64 max_inter_lines,
                   ObjectiveOptions options = {});

  /// GA domains: per array, intra ∈ [0, max_intra], inter ∈ [0, max_inter]
  /// (intra variables first, then inter variables).
  std::vector<ga::VarDomain> domains() const;

  double operator()(std::span<const i64> pad_values) const;

  cme::MissEstimate evaluate(const transform::PadVector& pads) const;

  transform::PadVector unpack(std::span<const i64> pad_values) const;

 private:
  const ir::LoopNest* nest_;
  cache::CacheConfig cache_;
  transform::TileVector tiles_;
  i64 max_intra_;
  i64 max_inter_;
  ObjectiveOptions options_;
  std::vector<std::vector<i64>> points_;
};

/// Single-step objective over (tile sizes, pads): the paper's §4.3 future
/// work. Variable layout: [T_1..T_k, intra_1..intra_A, inter_1..inter_A].
class JointObjective {
 public:
  JointObjective(const ir::LoopNest& nest, cache::CacheConfig cache, i64 max_intra_elems,
                 i64 max_inter_lines, ObjectiveOptions options = {});

  std::vector<ga::VarDomain> domains() const;

  double operator()(std::span<const i64> values) const;

  struct Decoded {
    transform::TileVector tiles;
    transform::PadVector pads;
  };
  Decoded unpack(std::span<const i64> values) const;

  cme::MissEstimate evaluate(const Decoded& decoded) const;

  bool is_legal(const transform::TileVector& tiles) const;

 private:
  const ir::LoopNest* nest_;
  cache::CacheConfig cache_;
  i64 max_intra_;
  i64 max_inter_;
  ObjectiveOptions options_;
  std::vector<std::vector<i64>> points_;
  std::vector<std::vector<i64>> risky_deps_;
  std::vector<i64> trips_;
};

}  // namespace cmetile::core

#pragma once
// GA objectives (paper §3.1, generalized to a cache hierarchy in DESIGN.md
// §12): f(T_1..T_k) = Σ_level #ReplacementMisses_level · miss_latency_level,
// evaluated through the parameterized CMEs — i.e. a fresh per-level
// analysis per candidate tile/pad vector, estimated on a *fixed* sample of
// iteration points drawn once per optimizer run. Sampling in the original
// rectangular space makes the sample valid for every tiling (same access
// multiset), which gives common random numbers across individuals AND
// across hierarchy levels: selection compares candidates on the same
// points instead of through independent sampling noise (DESIGN.md §8).
// With a single-level hierarchy of miss latency 1 the cost is the paper's
// plain replacement-miss count, bit for bit. Operator() is thread-safe
// (the GA evaluates populations in parallel).

#include <memory>
#include <span>
#include "cme/eval_cache.hpp"
#include "cme/hierarchy.hpp"
#include "ga/encoding.hpp"
#include "transform/legality.hpp"
#include "transform/padding.hpp"
#include "transform/tiling.hpp"

namespace cmetile::core {

struct ObjectiveOptions {
  cme::EstimatorOptions estimator;
  cme::AnalysisOptions analysis;
  /// Reuse per-reference prepared tables and classification/probe verdicts
  /// across genomes through a per-objective cme::EvalCache (bit-identical
  /// costs; cme/eval_cache.hpp). TilingObjective only: the padding and
  /// joint objectives rebuild the layout per genome, which changes the
  /// cache binding every evaluation — a rebind per call costs more than it
  /// saves, so they always evaluate cold.
  bool incremental = true;
  cme::EvalCacheOptions eval_cache;
};

/// Cost of a tile vector = latency-weighted replacement misses of the
/// tiled nest across the hierarchy. Tile vectors that would reorder a
/// dependence illegally (see transform/legality.hpp) receive a penalty
/// cost above any feasible weighted cost — graded by tile_vector_violation
/// so selection discriminates among illegal individuals — and the GA
/// searches only semantics-preserving tilings.
class TilingObjective {
 public:
  /// Single-cache form (the paper's setup): equivalent to a one-level
  /// hierarchy with miss latency 1, so the cost is the replacement-miss
  /// count. The nest must outlive the objective; layout/cache are copied.
  TilingObjective(const ir::LoopNest& nest, ir::MemoryLayout layout,
                  cache::CacheConfig cache, ObjectiveOptions options = {});

  /// Hierarchy form: cost = Σ_level misses_level × miss_latency_level.
  TilingObjective(const ir::LoopNest& nest, ir::MemoryLayout layout,
                  cache::Hierarchy hierarchy, ObjectiveOptions options = {});

  /// GA domains: T_d ∈ [1, U_d] (paper §3.1).
  std::vector<ga::VarDomain> domains() const;

  /// Latency-weighted estimated replacement misses (the GA cost), or the
  /// graded illegality penalty. Thread-safe.
  double operator()(std::span<const i64> tiles) const;

  /// Level-0 (L1) estimate for a tile vector (ratios, CI) on the shared
  /// sample — the single-cache pipeline's full result.
  cme::MissEstimate evaluate(const transform::TileVector& tiles) const;

  /// Per-level estimates + weighted cost on the shared sample.
  cme::HierarchyEstimate evaluate_hierarchy(const transform::TileVector& tiles) const;

  /// Is this tile vector a legal reordering of the nest?
  bool is_legal(const transform::TileVector& tiles) const;

  const ir::LoopNest& nest() const { return *nest_; }
  const cache::Hierarchy& hierarchy() const { return hierarchy_; }

  /// Aggregate EvalCache statistics (zeros when incremental is off).
  cme::EvalCacheStats eval_cache_stats() const {
    return eval_cache_ != nullptr ? eval_cache_->stats() : cme::EvalCacheStats{};
  }

 private:
  const ir::LoopNest* nest_;
  ir::MemoryLayout layout_;
  cache::Hierarchy hierarchy_;
  ObjectiveOptions options_;
  std::vector<std::vector<i64>> points_;
  std::vector<std::vector<i64>> risky_deps_;
  std::vector<i64> trips_;
  /// Reuse analysis per hierarchy level (line sizes differ; the layout is
  /// fixed for the objective's lifetime) — computed once, then shared with
  /// every per-genome analysis via AnalysisOptions::shared_reuse.
  std::vector<reuse::ReuseInfo> reuse_by_level_;
  /// Cross-genome evaluation cache (options_.incremental). shared_ptr so
  /// the objective stays copyable — copies share the cache, which is safe
  /// because cached results are bit-identical to cold evaluation.
  std::shared_ptr<cme::EvalCache> eval_cache_;
};

/// Cost of a pad vector = latency-weighted estimated replacement misses of
/// the nest with the padded layout, at a fixed tiling (untiled by default —
/// the paper's "padding first, then tiling" sequence).
class PaddingObjective {
 public:
  /// Single-cache form (one-level hierarchy, miss latency 1).
  PaddingObjective(const ir::LoopNest& nest, cache::CacheConfig cache,
                   transform::TileVector tiles, i64 max_intra_elems, i64 max_inter_lines,
                   ObjectiveOptions options = {});

  PaddingObjective(const ir::LoopNest& nest, cache::Hierarchy hierarchy,
                   transform::TileVector tiles, i64 max_intra_elems, i64 max_inter_lines,
                   ObjectiveOptions options = {});

  /// GA domains: per array, intra ∈ [0, max_intra], inter ∈ [0, max_inter]
  /// (intra variables first, then inter variables).
  std::vector<ga::VarDomain> domains() const;

  double operator()(std::span<const i64> pad_values) const;

  /// Level-0 (L1) estimate for a pad vector on the shared sample.
  cme::MissEstimate evaluate(const transform::PadVector& pads) const;

  /// Per-level estimates + weighted cost on the shared sample.
  cme::HierarchyEstimate evaluate_hierarchy(const transform::PadVector& pads) const;

  transform::PadVector unpack(std::span<const i64> pad_values) const;

 private:
  const ir::LoopNest* nest_;
  cache::Hierarchy hierarchy_;
  transform::TileVector tiles_;
  i64 max_intra_;
  i64 max_inter_;
  ObjectiveOptions options_;
  std::vector<std::vector<i64>> points_;
};

/// Single-step objective over (tile sizes, pads): the paper's §4.3 future
/// work. Variable layout: [T_1..T_k, intra_1..intra_A, inter_1..inter_A].
class JointObjective {
 public:
  /// Single-cache form (one-level hierarchy, miss latency 1).
  JointObjective(const ir::LoopNest& nest, cache::CacheConfig cache, i64 max_intra_elems,
                 i64 max_inter_lines, ObjectiveOptions options = {});

  JointObjective(const ir::LoopNest& nest, cache::Hierarchy hierarchy, i64 max_intra_elems,
                 i64 max_inter_lines, ObjectiveOptions options = {});

  std::vector<ga::VarDomain> domains() const;

  double operator()(std::span<const i64> values) const;

  struct Decoded {
    transform::TileVector tiles;
    transform::PadVector pads;
  };
  Decoded unpack(std::span<const i64> values) const;

  /// Level-0 (L1) estimate for a decoded individual on the shared sample.
  cme::MissEstimate evaluate(const Decoded& decoded) const;

  /// Per-level estimates + weighted cost on the shared sample.
  cme::HierarchyEstimate evaluate_hierarchy(const Decoded& decoded) const;

  bool is_legal(const transform::TileVector& tiles) const;

 private:
  const ir::LoopNest* nest_;
  cache::Hierarchy hierarchy_;
  i64 max_intra_;
  i64 max_inter_;
  ObjectiveOptions options_;
  std::vector<std::vector<i64>> points_;
  std::vector<std::vector<i64>> risky_deps_;
  std::vector<i64> trips_;
};

}  // namespace cmetile::core

#include "core/optimize.hpp"

#include <algorithm>

#include "baselines/analytic.hpp"
#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace cmetile::core {

namespace {

/// Heuristic warm starts for the tile search (deduplicated, legality
/// filtered by the objective's penalty anyway). The analytic baselines
/// (LRW/TSS/Sarkar-Megiddo) are seeded once per hierarchy level — in the
/// weighted objective, tiles sized to the L2 working set are a competitive
/// basin the L1-sized seeds miss.
std::vector<std::vector<i64>> tiling_seeds(const ir::LoopNest& nest,
                                           const ir::MemoryLayout& layout,
                                           const cache::Hierarchy& hierarchy) {
  std::vector<std::vector<i64>> seeds;
  auto push = [&](std::vector<i64> t) {
    const transform::TileVector tv = transform::TileVector::clamped(std::move(t), nest);
    if (std::find(seeds.begin(), seeds.end(), tv.t) == seeds.end()) seeds.push_back(tv.t);
  };
  push(transform::TileVector::untiled(nest).t);
  for (std::size_t l = 0; l < hierarchy.depth(); ++l) {
    // Seed with the level's *effective* geometry: an exclusive/victim
    // level's useful capacity is the merged stack, not its own size
    // (cache/hierarchy.hpp), so that is the working set worth targeting.
    const cache::CacheConfig config = hierarchy.effective_config(l);
    push(baselines::lrw_tiles(nest, layout, config).t);
    push(baselines::tss_tiles(nest, layout, config).t);
    push(baselines::sarkar_megiddo_tiles(nest, layout, config).t);
  }
  for (const i64 side : {4, 8, 16, 32, 64}) {
    push(std::vector<i64>(nest.depth(), side));
  }
  // Outer loop untiled, inner loops small — a common good shape.
  for (const i64 side : {8, 32}) {
    std::vector<i64> t(nest.depth(), side);
    t[0] = nest.loops[0].trip_count();
    push(std::move(t));
  }
  return seeds;
}

/// Warm starts for the padding search: no padding, unit intra padding, and
/// base-staggering inter padding (the classic fixes for power-of-two
/// strides and aliased bases).
std::vector<std::vector<i64>> padding_seeds(const ir::LoopNest& nest, i64 max_intra,
                                            i64 max_inter) {
  const std::size_t n = nest.arrays.size();
  std::vector<std::vector<i64>> seeds;
  std::vector<i64> zero(2 * n, 0);
  seeds.push_back(zero);
  std::vector<i64> unit_intra = zero;
  for (std::size_t a = 0; a < n; ++a) unit_intra[a] = std::min<i64>(1, max_intra);
  seeds.push_back(unit_intra);
  std::vector<i64> stagger = zero;
  for (std::size_t a = 0; a < n; ++a) stagger[n + a] = std::min<i64>((i64)a, max_inter);
  seeds.push_back(stagger);
  std::vector<i64> both = unit_intra;
  for (std::size_t a = 0; a < n; ++a) both[n + a] = std::min<i64>((i64)a, max_inter);
  seeds.push_back(both);
  return seeds;
}

void check_tiling_legal(const ir::LoopNest& nest, const char* who) {
  // Non-uniform dependence pairs make per-vector legality undecidable for
  // us: refuse. Fully permutable or uniformly constrained nests proceed;
  // the objective penalizes individual illegal tile vectors.
  const transform::LegalityReport report = transform::check_tiling_legality(nest);
  expects(report.verdict != transform::Legality::Unknown,
          std::string(who) + ": cannot prove tiling legality (non-uniform dependences)");
}

OptimizeResponse run_tiling(const OptimizeRequest& request) {
  const ir::LoopNest& nest = request.nest;
  const OptimizerOptions& options = request.options;
  if (options.check_legality) check_tiling_legal(nest, "optimize_tiling");

  const ir::MemoryLayout layout(nest, request.layout);
  const TilingObjective objective(nest, layout, request.hierarchy, options.objective);
  ga::GaOptions ga_options = options.ga;
  if (options.seed_population && ga_options.initial_seeds.empty()) {
    ga_options.initial_seeds = tiling_seeds(nest, layout, request.hierarchy);
  }
  for (const std::vector<i64>& seed : options.extra_tile_seeds)
    ga_options.initial_seeds.push_back(transform::TileVector::clamped(seed, nest).t);
  ga::GeneticOptimizer optimizer(ga::Encoding(objective.domains()), ga_options);
  OptimizeResponse response;
  response.kind = OptimizeKind::Tiling;
  response.ga = optimizer.run([&](std::span<const i64> values) { return objective(values); });
  response.tiles = transform::TileVector::clamped(response.ga.best_values, nest);
  response.before = objective.evaluate_hierarchy(transform::TileVector::untiled(nest));
  response.after = objective.evaluate_hierarchy(response.tiles);
  // Surface the incremental-evaluation counters next to memo_hits().
  const cme::EvalCacheStats cache_stats = objective.eval_cache_stats();
  response.ga.eval_cache_lookups = cache_stats.verdict_lookups;
  response.ga.eval_cache_hits = cache_stats.verdict_hits;
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::instance();
    static obs::Counter& lookups = reg.counter("cme.eval_cache.lookups");
    static obs::Counter& hits = reg.counter("cme.eval_cache.hits");
    lookups.add(cache_stats.verdict_lookups);
    hits.add(cache_stats.verdict_hits);
  }
  return response;
}

OptimizeResponse run_padding(const OptimizeRequest& request) {
  const ir::LoopNest& nest = request.nest;
  const OptimizerOptions& options = request.options;
  const PaddingObjective objective(nest, request.hierarchy, transform::TileVector::untiled(nest),
                                   options.max_intra_pad_elems, options.max_inter_pad_units,
                                   options.objective);
  ga::GaOptions ga_options = options.ga;
  if (options.seed_population && ga_options.initial_seeds.empty()) {
    ga_options.initial_seeds =
        padding_seeds(nest, options.max_intra_pad_elems, options.max_inter_pad_units);
  }
  ga::GeneticOptimizer optimizer(ga::Encoding(objective.domains()), ga_options);
  OptimizeResponse response;
  response.kind = OptimizeKind::Padding;
  response.ga = optimizer.run([&](std::span<const i64> values) { return objective(values); });
  response.pads = objective.unpack(response.ga.best_values);
  response.before = objective.evaluate_hierarchy(transform::PadVector::none(nest));
  response.after = objective.evaluate_hierarchy(response.pads);
  return response;
}

OptimizeResponse run_joint(const OptimizeRequest& request) {
  const ir::LoopNest& nest = request.nest;
  const OptimizerOptions& options = request.options;
  if (options.check_legality) check_tiling_legal(nest, "optimize_jointly");
  const JointObjective objective(nest, request.hierarchy, options.max_intra_pad_elems,
                                 options.max_inter_pad_units, options.objective);
  ga::GaOptions ga_options = options.ga;
  if (options.seed_population && ga_options.initial_seeds.empty()) {
    // Combine the tiling and padding warm starts pairwise.
    const ir::MemoryLayout layout(nest);
    const auto tiles = tiling_seeds(nest, layout, request.hierarchy);
    const auto pads = padding_seeds(nest, options.max_intra_pad_elems,
                                    options.max_inter_pad_units);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      std::vector<i64> seed = tiles[t];
      const std::vector<i64>& pad = pads[t % pads.size()];
      seed.insert(seed.end(), pad.begin(), pad.end());
      ga_options.initial_seeds.push_back(std::move(seed));
    }
  }
  ga::GeneticOptimizer optimizer(ga::Encoding(objective.domains()), ga_options);
  OptimizeResponse response;
  response.kind = OptimizeKind::Joint;
  response.ga = optimizer.run([&](std::span<const i64> values) { return objective(values); });
  const JointObjective::Decoded best = objective.unpack(response.ga.best_values);
  response.tiles = best.tiles;
  response.pads = best.pads;
  response.before = objective.evaluate_hierarchy(JointObjective::Decoded{
      transform::TileVector::untiled(nest), transform::PadVector::none(nest)});
  response.after = objective.evaluate_hierarchy(best);
  return response;
}

}  // namespace

const char* to_string(OptimizeKind kind) {
  switch (kind) {
    case OptimizeKind::Tiling: return "tiling";
    case OptimizeKind::Padding: return "padding";
    case OptimizeKind::Joint: return "joint";
  }
  return "?";
}

std::optional<OptimizeKind> optimize_kind_of(std::string_view name) {
  if (name == "tiling") return OptimizeKind::Tiling;
  if (name == "padding") return OptimizeKind::Padding;
  if (name == "joint") return OptimizeKind::Joint;
  return std::nullopt;
}

OptimizeRequest OptimizeRequest::tiling(ir::LoopNest nest, cache::Hierarchy hierarchy,
                                        OptimizerOptions options) {
  OptimizeRequest request;
  request.kind = OptimizeKind::Tiling;
  request.nest = std::move(nest);
  request.hierarchy = std::move(hierarchy);
  request.options = std::move(options);
  return request;
}

OptimizeRequest OptimizeRequest::padding(ir::LoopNest nest, cache::Hierarchy hierarchy,
                                         OptimizerOptions options) {
  OptimizeRequest request = tiling(std::move(nest), std::move(hierarchy), std::move(options));
  request.kind = OptimizeKind::Padding;
  return request;
}

OptimizeRequest OptimizeRequest::joint(ir::LoopNest nest, cache::Hierarchy hierarchy,
                                       OptimizerOptions options) {
  OptimizeRequest request = tiling(std::move(nest), std::move(hierarchy), std::move(options));
  request.kind = OptimizeKind::Joint;
  return request;
}

OptimizeResponse optimize(const OptimizeRequest& request) {
  expects(request.nest.depth() > 0, "optimize: request has an empty nest");
  request.hierarchy.validate();  // throws contract_error with the reason
  switch (request.kind) {
    case OptimizeKind::Tiling: return run_tiling(request);
    case OptimizeKind::Padding: return run_padding(request);
    case OptimizeKind::Joint: return run_joint(request);
  }
  expects(false, "optimize: unknown request kind");
  return {};
}

}  // namespace cmetile::core

#pragma once
// DEPRECATED compatibility surface over core/optimize.hpp. The paper's
// pipeline — near-optimal loop tiling (and padding) by searching tile-
// size/pad vectors with a genetic algorithm whose objective is the number
// of replacement misses predicted by the Cache Miss Equations — now lives
// behind the single entry point core::optimize(OptimizeRequest); the
// overloads below are thin wrappers that build a request and re-shape the
// response into the historical per-driver result structs. They are pinned
// bit-identical to optimize() by regression test (request_api_test) and
// kept so existing callers (benches, examples, tests) compile unchanged —
// prefer OptimizeRequest in new code.
//
// Every driver has two forms: the paper's single-cache form
// (cache::CacheConfig — cost = replacement misses) and a hierarchy form
// (cache::Hierarchy — cost = Σ_level misses × miss latency, DESIGN.md
// §12). The single-cache form is a one-level hierarchy with miss latency
// 1 and stays bit-identical to the original pipeline.

#include "core/optimize.hpp"

namespace cmetile::core {

/// Result of the single-cache tile search. Estimates are CME-sampled
/// ratios on the run's shared sample (see cme::MissEstimate for units).
struct TilingResult {
  transform::TileVector tiles;
  cme::MissEstimate before;   ///< untiled estimate (same sample set)
  cme::MissEstimate after;    ///< estimate at the chosen tiles
  ga::GaResult ga;
};

/// Result of the hierarchy tile search: per-level estimates plus the
/// latency-weighted cost the GA minimized (`before`/`after`.weighted_cost,
/// in stall units = misses × latency).
struct HierarchyTilingResult {
  transform::TileVector tiles;
  cme::HierarchyEstimate before;  ///< untiled, per level (same sample set)
  cme::HierarchyEstimate after;   ///< at the chosen tiles, per level
  ga::GaResult ga;
};

struct PaddingResult {
  transform::PadVector pads;
  cme::MissEstimate before;
  cme::MissEstimate after;
  ga::GaResult ga;
};

struct HierarchyPaddingResult {
  transform::PadVector pads;
  cme::HierarchyEstimate before;
  cme::HierarchyEstimate after;
  ga::GaResult ga;
};

struct PadTileResult {
  transform::PadVector pads;
  transform::TileVector tiles;
  cme::MissEstimate original;      ///< no padding, no tiling
  cme::MissEstimate padded;        ///< padding only
  cme::MissEstimate padded_tiled;  ///< padding + tiling
};

/// Deprecated: use optimize(OptimizeRequest::tiling(...)). Search tile
/// sizes for the nest under the given layout and cache.
TilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                             const cache::CacheConfig& cache, const OptimizerOptions& options = {});

/// Deprecated hierarchy form: minimize Σ_level misses × miss latency.
HierarchyTilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                      const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options = {});

/// Deprecated: use optimize(OptimizeRequest::padding(...)). Search padding
/// parameters (at a fixed tiling, untiled by default).
PaddingResult optimize_padding(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                               const OptimizerOptions& options = {});

HierarchyPaddingResult optimize_padding(const ir::LoopNest& nest,
                                        const cache::Hierarchy& hierarchy,
                                        const OptimizerOptions& options = {});

/// Table 3 pipeline: padding first, then tiling on the padded layout.
/// (A sequencing convenience over two optimize() calls — the Padding
/// search, then a Tiling request whose layout carries the winning pads.)
PadTileResult optimize_padding_then_tiling(const ir::LoopNest& nest,
                                           const cache::CacheConfig& cache,
                                           const OptimizerOptions& options = {});

/// The paper's stated future work (§4.3): "the application of padding and
/// tiling techniques in a single step, trying to find the padding and
/// tiling parameters at the same time. This can in general produce better
/// results than optimizing each part separately." One chromosome carries
/// both the tile sizes and all pad parameters; the objective rebuilds the
/// padded layout per individual.
struct JointResult {
  transform::PadVector pads;
  transform::TileVector tiles;
  cme::MissEstimate original;
  cme::MissEstimate optimized;
  ga::GaResult ga;
};

struct HierarchyJointResult {
  transform::PadVector pads;
  transform::TileVector tiles;
  cme::HierarchyEstimate original;
  cme::HierarchyEstimate optimized;
  ga::GaResult ga;
};

/// Deprecated: use optimize(OptimizeRequest::joint(...)).
JointResult optimize_jointly(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                             const OptimizerOptions& options = {});

HierarchyJointResult optimize_jointly(const ir::LoopNest& nest, const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options = {});

}  // namespace cmetile::core

#pragma once
// The paper's contribution, assembled: near-optimal loop tiling (and
// padding) by searching tile-size/pad vectors with a genetic algorithm
// whose objective is the number of replacement misses predicted by the
// Cache Miss Equations. `optimize_tiling` is the §3 pipeline; `optimize_
// padding` and `optimize_padding_then_tiling` reproduce the §4.3 / Table 3
// sequence ("padding and tiling applied sequentially in this order").
//
// Every driver has two forms: the paper's single-cache form
// (cache::CacheConfig — cost = replacement misses) and a hierarchy form
// (cache::Hierarchy — cost = Σ_level misses × miss latency, DESIGN.md
// §12). The single-cache form is implemented as a one-level hierarchy
// with miss latency 1 and stays bit-identical to the original pipeline.
//
// Threading: each driver call is synchronous and owns its GA run; the GA
// evaluates populations in parallel internally (OpenMP), so callers need
// no locking. Concurrent driver calls on distinct inputs are safe. The
// nest reference must stay alive for the duration of the call only.

#include "core/objective.hpp"
#include "ga/ga.hpp"
#include "transform/legality.hpp"

namespace cmetile::core {

struct OptimizerOptions {
  ga::GaOptions ga;                 ///< paper defaults (pop 30, pc .9, pm .001, 15–25 gens)
  ObjectiveOptions objective;
  bool check_legality = true;       ///< refuse tiling a non-fully-permutable nest
  /// Warm-start the GA population with heuristic individuals (untiled,
  /// LRW/TSS/analytic tiles — per hierarchy level — small uniform tiles;
  /// zero/staggered pads). Disable to reproduce the paper's purely random
  /// initialization — the ablation bench measures the difference.
  bool seed_population = true;
  /// Extra tile-vector warm starts appended to the initial population of
  /// `optimize_tiling` (after the heuristic seeds, regardless of
  /// `seed_population`). Lets callers make two searches comparable — e.g.
  /// bench_hierarchy seeds the weighted search with the L1-only optimum so
  /// a divergence is a preference, not a GA miss. Ignored by the padding
  /// and joint drivers (their chromosomes carry pad variables too).
  std::vector<std::vector<i64>> extra_tile_seeds;
  i64 max_intra_pad_elems = 8;      ///< padding search bound (elements)
  i64 max_inter_pad_units = 16;     ///< padding search bound (alignment units)

  /// Shrink the GA and sampling budget for smoke runs (the `--fast` flag
  /// of examples and benches); one definition so the budget cannot drift.
  OptimizerOptions& shrink_for_smoke() {
    ga.min_generations = 4;
    ga.max_generations = 6;
    objective.estimator.sample_count = 64;
    return *this;
  }
};

/// Result of the single-cache tile search. Estimates are CME-sampled
/// ratios on the run's shared sample (see cme::MissEstimate for units).
struct TilingResult {
  transform::TileVector tiles;
  cme::MissEstimate before;   ///< untiled estimate (same sample set)
  cme::MissEstimate after;    ///< estimate at the chosen tiles
  ga::GaResult ga;
};

/// Result of the hierarchy tile search: per-level estimates plus the
/// latency-weighted cost the GA minimized (`before`/`after`.weighted_cost,
/// in stall units = misses × latency).
struct HierarchyTilingResult {
  transform::TileVector tiles;
  cme::HierarchyEstimate before;  ///< untiled, per level (same sample set)
  cme::HierarchyEstimate after;   ///< at the chosen tiles, per level
  ga::GaResult ga;
};

struct PaddingResult {
  transform::PadVector pads;
  cme::MissEstimate before;
  cme::MissEstimate after;
  ga::GaResult ga;
};

struct HierarchyPaddingResult {
  transform::PadVector pads;
  cme::HierarchyEstimate before;
  cme::HierarchyEstimate after;
  ga::GaResult ga;
};

struct PadTileResult {
  transform::PadVector pads;
  transform::TileVector tiles;
  cme::MissEstimate original;      ///< no padding, no tiling
  cme::MissEstimate padded;        ///< padding only
  cme::MissEstimate padded_tiled;  ///< padding + tiling
};

/// Search tile sizes for the nest under the given layout and cache.
TilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                             const cache::CacheConfig& cache, const OptimizerOptions& options = {});

/// Hierarchy form: minimize Σ_level misses × miss latency (DESIGN.md §12).
HierarchyTilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                      const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options = {});

/// Search padding parameters (at a fixed tiling, untiled by default).
PaddingResult optimize_padding(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                               const OptimizerOptions& options = {});

HierarchyPaddingResult optimize_padding(const ir::LoopNest& nest,
                                        const cache::Hierarchy& hierarchy,
                                        const OptimizerOptions& options = {});

/// Table 3 pipeline: padding first, then tiling on the padded layout.
PadTileResult optimize_padding_then_tiling(const ir::LoopNest& nest,
                                           const cache::CacheConfig& cache,
                                           const OptimizerOptions& options = {});

/// The paper's stated future work (§4.3): "the application of padding and
/// tiling techniques in a single step, trying to find the padding and
/// tiling parameters at the same time. This can in general produce better
/// results than optimizing each part separately." One chromosome carries
/// both the tile sizes and all pad parameters; the objective rebuilds the
/// padded layout per individual.
struct JointResult {
  transform::PadVector pads;
  transform::TileVector tiles;
  cme::MissEstimate original;
  cme::MissEstimate optimized;
  ga::GaResult ga;
};

struct HierarchyJointResult {
  transform::PadVector pads;
  transform::TileVector tiles;
  cme::HierarchyEstimate original;
  cme::HierarchyEstimate optimized;
  ga::GaResult ga;
};

JointResult optimize_jointly(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                             const OptimizerOptions& options = {});

HierarchyJointResult optimize_jointly(const ir::LoopNest& nest, const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options = {});

}  // namespace cmetile::core

#include "core/objective.hpp"

#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace cmetile::core {

namespace {

// Objective calls run under the GA's parallel_for, so the sharded counters
// absorb concurrent adds. One add per call (the call itself analyzes a
// whole nest — far heavier than a relaxed fetch_add).
void count_objective_eval(bool illegal) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::instance();
  static obs::Counter& evals = reg.counter("objective.evals");
  static obs::Counter& illegal_evals = reg.counter("objective.illegal");
  evals.increment();
  if (illegal) illegal_evals.increment();
}

}  // namespace

TilingObjective::TilingObjective(const ir::LoopNest& nest, ir::MemoryLayout layout,
                                 cache::CacheConfig cache, ObjectiveOptions options)
    : TilingObjective(nest, std::move(layout), cache::Hierarchy::single(cache),
                      std::move(options)) {}

TilingObjective::TilingObjective(const ir::LoopNest& nest, ir::MemoryLayout layout,
                                 cache::Hierarchy hierarchy, ObjectiveOptions options)
    : nest_(&nest),
      layout_(std::move(layout)),
      hierarchy_(std::move(hierarchy)),
      options_(options),
      risky_deps_(transform::risky_dependence_vectors(nest)),
      trips_(nest.trip_counts()) {
  hierarchy_.validate();
  const i64 n = cme::resolved_sample_count(options_.estimator);
  points_ = cme::sample_points(nest, n, options_.estimator.seed);
  // Reuse analysis is a function of (nest, layout, line_bytes) only —
  // compute it once per level here instead of once per genome.
  reuse_by_level_.reserve(hierarchy_.depth());
  for (const cache::CacheLevel& level : hierarchy_.levels)
    reuse_by_level_.push_back(reuse::analyze_reuse(nest, layout_, level.config.line_bytes));
  if (options_.incremental) eval_cache_ = std::make_shared<cme::EvalCache>(options_.eval_cache);
}

bool TilingObjective::is_legal(const transform::TileVector& tiles) const {
  return transform::tile_vector_legal(risky_deps_, trips_, tiles.t);
}

std::vector<ga::VarDomain> TilingObjective::domains() const {
  std::vector<ga::VarDomain> domains;
  for (const i64 u : nest_->trip_counts()) domains.push_back(ga::VarDomain{1, u});
  return domains;
}

cme::MissEstimate TilingObjective::evaluate(const transform::TileVector& tiles) const {
  // Level-0 only: don't pay for the outer levels' analyses here.
  cme::AnalysisOptions analysis_options = options_.analysis;
  analysis_options.shared_reuse = &reuse_by_level_.front();
  const cme::NestAnalysis analysis(*nest_, layout_, hierarchy_.levels.front().config, tiles,
                                   analysis_options);
  if (eval_cache_ != nullptr) {
    return cme::estimate_with_points(analysis, points_, options_.estimator.confidence,
                                     *eval_cache_, 0);
  }
  return cme::estimate_with_points(analysis, points_, options_.estimator.confidence);
}

cme::HierarchyEstimate TilingObjective::evaluate_hierarchy(
    const transform::TileVector& tiles) const {
  const cme::HierarchyAnalysis analysis(*nest_, layout_, hierarchy_, tiles, options_.analysis,
                                        reuse_by_level_);
  return cme::estimate_hierarchy_with_points(analysis, points_, options_.estimator.confidence,
                                             eval_cache_.get());
}

double TilingObjective::operator()(std::span<const i64> tiles) const {
  const transform::TileVector tv =
      transform::TileVector::clamped({tiles.begin(), tiles.end()}, *nest_);
  const double violation = transform::tile_vector_violation(risky_deps_, trips_, tv.t);
  count_objective_eval(violation > 0.0);
  if (violation > 0.0) {
    // Finite penalty above any achievable weighted cost (access_count ×
    // latency_sum bounds it; violation >= 1), graded by how far the vector
    // is from legality so selection discriminates even in an all-illegal
    // population and the convergence test cannot fire on a flat plateau.
    return (10.0 + violation) * (double)nest_->access_count() * hierarchy_.latency_sum();
  }
  return evaluate_hierarchy(tv).weighted_cost;
}

PaddingObjective::PaddingObjective(const ir::LoopNest& nest, cache::CacheConfig cache,
                                   transform::TileVector tiles, i64 max_intra_elems,
                                   i64 max_inter_lines, ObjectiveOptions options)
    : PaddingObjective(nest, cache::Hierarchy::single(cache), std::move(tiles), max_intra_elems,
                       max_inter_lines, std::move(options)) {}

PaddingObjective::PaddingObjective(const ir::LoopNest& nest, cache::Hierarchy hierarchy,
                                   transform::TileVector tiles, i64 max_intra_elems,
                                   i64 max_inter_lines, ObjectiveOptions options)
    : nest_(&nest),
      hierarchy_(std::move(hierarchy)),
      tiles_(std::move(tiles)),
      max_intra_(max_intra_elems),
      max_inter_(max_inter_lines),
      options_(options) {
  hierarchy_.validate();
  expects(max_intra_ >= 0 && max_inter_ >= 0, "PaddingObjective: negative pad bound");
  const i64 n = cme::resolved_sample_count(options_.estimator);
  points_ = cme::sample_points(nest, n, options_.estimator.seed);
}

std::vector<ga::VarDomain> PaddingObjective::domains() const {
  std::vector<ga::VarDomain> domains;
  for (std::size_t a = 0; a < nest_->arrays.size(); ++a)
    domains.push_back(ga::VarDomain{0, max_intra_});
  for (std::size_t a = 0; a < nest_->arrays.size(); ++a)
    domains.push_back(ga::VarDomain{0, max_inter_});
  return domains;
}

transform::PadVector PaddingObjective::unpack(std::span<const i64> pad_values) const {
  const std::size_t n_arrays = nest_->arrays.size();
  expects(pad_values.size() == 2 * n_arrays, "PaddingObjective: value arity mismatch");
  transform::PadVector pads;
  pads.intra.assign(pad_values.begin(), pad_values.begin() + (std::ptrdiff_t)n_arrays);
  pads.inter.assign(pad_values.begin() + (std::ptrdiff_t)n_arrays, pad_values.end());
  return pads;
}

cme::MissEstimate PaddingObjective::evaluate(const transform::PadVector& pads) const {
  const ir::MemoryLayout layout = transform::padded_layout(*nest_, pads);
  const cme::NestAnalysis analysis(*nest_, layout, hierarchy_.levels.front().config, tiles_,
                                   options_.analysis);
  return cme::estimate_with_points(analysis, points_, options_.estimator.confidence);
}

cme::HierarchyEstimate PaddingObjective::evaluate_hierarchy(
    const transform::PadVector& pads) const {
  const ir::MemoryLayout layout = transform::padded_layout(*nest_, pads);
  const cme::HierarchyAnalysis analysis(*nest_, layout, hierarchy_, tiles_, options_.analysis);
  return cme::estimate_hierarchy_with_points(analysis, points_, options_.estimator.confidence);
}

double PaddingObjective::operator()(std::span<const i64> pad_values) const {
  return evaluate_hierarchy(unpack(pad_values)).weighted_cost;
}

JointObjective::JointObjective(const ir::LoopNest& nest, cache::CacheConfig cache,
                               i64 max_intra_elems, i64 max_inter_lines,
                               ObjectiveOptions options)
    : JointObjective(nest, cache::Hierarchy::single(cache), max_intra_elems, max_inter_lines,
                     std::move(options)) {}

JointObjective::JointObjective(const ir::LoopNest& nest, cache::Hierarchy hierarchy,
                               i64 max_intra_elems, i64 max_inter_lines,
                               ObjectiveOptions options)
    : nest_(&nest),
      hierarchy_(std::move(hierarchy)),
      max_intra_(max_intra_elems),
      max_inter_(max_inter_lines),
      options_(options),
      risky_deps_(transform::risky_dependence_vectors(nest)),
      trips_(nest.trip_counts()) {
  hierarchy_.validate();
  const i64 n = cme::resolved_sample_count(options_.estimator);
  points_ = cme::sample_points(nest, n, options_.estimator.seed);
}

std::vector<ga::VarDomain> JointObjective::domains() const {
  std::vector<ga::VarDomain> domains;
  for (const i64 u : trips_) domains.push_back(ga::VarDomain{1, u});
  for (std::size_t a = 0; a < nest_->arrays.size(); ++a)
    domains.push_back(ga::VarDomain{0, max_intra_});
  for (std::size_t a = 0; a < nest_->arrays.size(); ++a)
    domains.push_back(ga::VarDomain{0, max_inter_});
  return domains;
}

JointObjective::Decoded JointObjective::unpack(std::span<const i64> values) const {
  const std::size_t k = nest_->depth();
  const std::size_t n_arrays = nest_->arrays.size();
  expects(values.size() == k + 2 * n_arrays, "JointObjective: value arity mismatch");
  Decoded d;
  d.tiles = transform::TileVector::clamped({values.begin(), values.begin() + (std::ptrdiff_t)k},
                                           *nest_);
  d.pads.intra.assign(values.begin() + (std::ptrdiff_t)k,
                      values.begin() + (std::ptrdiff_t)(k + n_arrays));
  d.pads.inter.assign(values.begin() + (std::ptrdiff_t)(k + n_arrays), values.end());
  return d;
}

bool JointObjective::is_legal(const transform::TileVector& tiles) const {
  return transform::tile_vector_legal(risky_deps_, trips_, tiles.t);
}

cme::MissEstimate JointObjective::evaluate(const Decoded& decoded) const {
  const ir::MemoryLayout layout = transform::padded_layout(*nest_, decoded.pads);
  const cme::NestAnalysis analysis(*nest_, layout, hierarchy_.levels.front().config,
                                   decoded.tiles, options_.analysis);
  return cme::estimate_with_points(analysis, points_, options_.estimator.confidence);
}

cme::HierarchyEstimate JointObjective::evaluate_hierarchy(const Decoded& decoded) const {
  const ir::MemoryLayout layout = transform::padded_layout(*nest_, decoded.pads);
  const cme::HierarchyAnalysis analysis(*nest_, layout, hierarchy_, decoded.tiles,
                                        options_.analysis);
  return cme::estimate_hierarchy_with_points(analysis, points_, options_.estimator.confidence);
}

double JointObjective::operator()(std::span<const i64> values) const {
  const Decoded decoded = unpack(values);
  const double violation = transform::tile_vector_violation(risky_deps_, trips_, decoded.tiles.t);
  count_objective_eval(violation > 0.0);
  // Same graded penalty as TilingObjective: above any feasible weighted
  // cost, discriminating among illegal individuals.
  if (violation > 0.0)
    return (10.0 + violation) * (double)nest_->access_count() * hierarchy_.latency_sum();
  return evaluate_hierarchy(decoded).weighted_cost;
}

}  // namespace cmetile::core

#include "core/tiler.hpp"

#include <algorithm>

#include "baselines/analytic.hpp"
#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace cmetile::core {

namespace {

/// Heuristic warm starts for the tile search (deduplicated, legality
/// filtered by the objective's penalty anyway). The analytic baselines
/// (LRW/TSS/Sarkar-Megiddo) are seeded once per hierarchy level — in the
/// weighted objective, tiles sized to the L2 working set are a competitive
/// basin the L1-sized seeds miss.
std::vector<std::vector<i64>> tiling_seeds(const ir::LoopNest& nest,
                                           const ir::MemoryLayout& layout,
                                           const cache::Hierarchy& hierarchy) {
  std::vector<std::vector<i64>> seeds;
  auto push = [&](std::vector<i64> t) {
    const transform::TileVector tv = transform::TileVector::clamped(std::move(t), nest);
    if (std::find(seeds.begin(), seeds.end(), tv.t) == seeds.end()) seeds.push_back(tv.t);
  };
  push(transform::TileVector::untiled(nest).t);
  for (std::size_t l = 0; l < hierarchy.depth(); ++l) {
    // Seed with the level's *effective* geometry: an exclusive/victim
    // level's useful capacity is the merged stack, not its own size
    // (cache/hierarchy.hpp), so that is the working set worth targeting.
    const cache::CacheConfig config = hierarchy.effective_config(l);
    push(baselines::lrw_tiles(nest, layout, config).t);
    push(baselines::tss_tiles(nest, layout, config).t);
    push(baselines::sarkar_megiddo_tiles(nest, layout, config).t);
  }
  for (const i64 side : {4, 8, 16, 32, 64}) {
    push(std::vector<i64>(nest.depth(), side));
  }
  // Outer loop untiled, inner loops small — a common good shape.
  for (const i64 side : {8, 32}) {
    std::vector<i64> t(nest.depth(), side);
    t[0] = nest.loops[0].trip_count();
    push(std::move(t));
  }
  return seeds;
}

/// Warm starts for the padding search: no padding, unit intra padding, and
/// base-staggering inter padding (the classic fixes for power-of-two
/// strides and aliased bases).
std::vector<std::vector<i64>> padding_seeds(const ir::LoopNest& nest, i64 max_intra,
                                            i64 max_inter) {
  const std::size_t n = nest.arrays.size();
  std::vector<std::vector<i64>> seeds;
  std::vector<i64> zero(2 * n, 0);
  seeds.push_back(zero);
  std::vector<i64> unit_intra = zero;
  for (std::size_t a = 0; a < n; ++a) unit_intra[a] = std::min<i64>(1, max_intra);
  seeds.push_back(unit_intra);
  std::vector<i64> stagger = zero;
  for (std::size_t a = 0; a < n; ++a) stagger[n + a] = std::min<i64>((i64)a, max_inter);
  seeds.push_back(stagger);
  std::vector<i64> both = unit_intra;
  for (std::size_t a = 0; a < n; ++a) both[n + a] = std::min<i64>((i64)a, max_inter);
  seeds.push_back(both);
  return seeds;
}

}  // namespace

HierarchyTilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                      const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options) {
  if (options.check_legality) {
    // Non-uniform dependence pairs make per-vector legality undecidable for
    // us: refuse. Fully permutable or uniformly constrained nests proceed;
    // the objective penalizes individual illegal tile vectors.
    const transform::LegalityReport report = transform::check_tiling_legality(nest);
    expects(report.verdict != transform::Legality::Unknown,
            "optimize_tiling: cannot prove tiling legality (non-uniform dependences)");
  }

  const TilingObjective objective(nest, layout, hierarchy, options.objective);
  ga::GaOptions ga_options = options.ga;
  if (options.seed_population && ga_options.initial_seeds.empty()) {
    ga_options.initial_seeds = tiling_seeds(nest, layout, hierarchy);
  }
  for (const std::vector<i64>& seed : options.extra_tile_seeds)
    ga_options.initial_seeds.push_back(transform::TileVector::clamped(seed, nest).t);
  ga::GeneticOptimizer optimizer(ga::Encoding(objective.domains()), ga_options);
  HierarchyTilingResult result;
  result.ga = optimizer.run([&](std::span<const i64> values) { return objective(values); });
  result.tiles = transform::TileVector::clamped(result.ga.best_values, nest);
  result.before = objective.evaluate_hierarchy(transform::TileVector::untiled(nest));
  result.after = objective.evaluate_hierarchy(result.tiles);
  // Surface the incremental-evaluation counters next to memo_hits().
  const cme::EvalCacheStats cache_stats = objective.eval_cache_stats();
  result.ga.eval_cache_lookups = cache_stats.verdict_lookups;
  result.ga.eval_cache_hits = cache_stats.verdict_hits;
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::instance();
    static obs::Counter& lookups = reg.counter("cme.eval_cache.lookups");
    static obs::Counter& hits = reg.counter("cme.eval_cache.hits");
    lookups.add(cache_stats.verdict_lookups);
    hits.add(cache_stats.verdict_hits);
  }
  return result;
}

TilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                             const cache::CacheConfig& cache, const OptimizerOptions& options) {
  // Single-cache form = one-level hierarchy with miss latency 1; the
  // weighted cost degenerates to the replacement-miss count bit for bit.
  HierarchyTilingResult h =
      optimize_tiling(nest, layout, cache::Hierarchy::single(cache), options);
  TilingResult result;
  result.tiles = std::move(h.tiles);
  result.before = h.before.levels.front();
  result.after = h.after.levels.front();
  result.ga = std::move(h.ga);
  return result;
}

HierarchyPaddingResult optimize_padding(const ir::LoopNest& nest,
                                        const cache::Hierarchy& hierarchy,
                                        const OptimizerOptions& options) {
  const PaddingObjective objective(nest, hierarchy, transform::TileVector::untiled(nest),
                                   options.max_intra_pad_elems, options.max_inter_pad_units,
                                   options.objective);
  ga::GaOptions ga_options = options.ga;
  if (options.seed_population && ga_options.initial_seeds.empty()) {
    ga_options.initial_seeds =
        padding_seeds(nest, options.max_intra_pad_elems, options.max_inter_pad_units);
  }
  ga::GeneticOptimizer optimizer(ga::Encoding(objective.domains()), ga_options);
  HierarchyPaddingResult result;
  result.ga = optimizer.run([&](std::span<const i64> values) { return objective(values); });
  result.pads = objective.unpack(result.ga.best_values);
  result.before = objective.evaluate_hierarchy(transform::PadVector::none(nest));
  result.after = objective.evaluate_hierarchy(result.pads);
  return result;
}

PaddingResult optimize_padding(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                               const OptimizerOptions& options) {
  HierarchyPaddingResult h = optimize_padding(nest, cache::Hierarchy::single(cache), options);
  PaddingResult result;
  result.pads = std::move(h.pads);
  result.before = h.before.levels.front();
  result.after = h.after.levels.front();
  result.ga = std::move(h.ga);
  return result;
}

HierarchyJointResult optimize_jointly(const ir::LoopNest& nest, const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options) {
  if (options.check_legality) {
    const transform::LegalityReport report = transform::check_tiling_legality(nest);
    expects(report.verdict != transform::Legality::Unknown,
            "optimize_jointly: cannot prove tiling legality (non-uniform dependences)");
  }
  const JointObjective objective(nest, hierarchy, options.max_intra_pad_elems,
                                 options.max_inter_pad_units, options.objective);
  ga::GaOptions ga_options = options.ga;
  if (options.seed_population && ga_options.initial_seeds.empty()) {
    // Combine the tiling and padding warm starts pairwise.
    const ir::MemoryLayout layout(nest);
    const auto tiles = tiling_seeds(nest, layout, hierarchy);
    const auto pads = padding_seeds(nest, options.max_intra_pad_elems,
                                    options.max_inter_pad_units);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      std::vector<i64> seed = tiles[t];
      const std::vector<i64>& pad = pads[t % pads.size()];
      seed.insert(seed.end(), pad.begin(), pad.end());
      ga_options.initial_seeds.push_back(std::move(seed));
    }
  }
  ga::GeneticOptimizer optimizer(ga::Encoding(objective.domains()), ga_options);
  HierarchyJointResult result;
  result.ga = optimizer.run([&](std::span<const i64> values) { return objective(values); });
  const JointObjective::Decoded best = objective.unpack(result.ga.best_values);
  result.tiles = best.tiles;
  result.pads = best.pads;
  result.original = objective.evaluate_hierarchy(JointObjective::Decoded{
      transform::TileVector::untiled(nest), transform::PadVector::none(nest)});
  result.optimized = objective.evaluate_hierarchy(best);
  return result;
}

JointResult optimize_jointly(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                             const OptimizerOptions& options) {
  HierarchyJointResult h = optimize_jointly(nest, cache::Hierarchy::single(cache), options);
  JointResult result;
  result.pads = std::move(h.pads);
  result.tiles = std::move(h.tiles);
  result.original = h.original.levels.front();
  result.optimized = h.optimized.levels.front();
  result.ga = std::move(h.ga);
  return result;
}

PadTileResult optimize_padding_then_tiling(const ir::LoopNest& nest,
                                           const cache::CacheConfig& cache,
                                           const OptimizerOptions& options) {
  PadTileResult result;
  const PaddingResult padding = optimize_padding(nest, cache, options);
  result.pads = padding.pads;
  result.original = padding.before;
  result.padded = padding.after;

  const ir::MemoryLayout layout = transform::padded_layout(nest, result.pads);
  const TilingResult tiling = optimize_tiling(nest, layout, cache, options);
  result.tiles = tiling.tiles;
  result.padded_tiled = tiling.after;
  return result;
}

}  // namespace cmetile::core

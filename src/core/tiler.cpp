#include "core/tiler.hpp"

#include "transform/padding.hpp"

namespace cmetile::core {

// Every wrapper here builds an OptimizeRequest and delegates to
// optimize(); bit-identity with the historical drivers is structural
// (same objective, seeds, and GA run — the request merely names them) and
// pinned by request_api_test across the whole kernel registry.

HierarchyTilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                      const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options) {
  OptimizeRequest request = OptimizeRequest::tiling(nest, hierarchy, options);
  request.layout = layout.options();
  OptimizeResponse r = optimize(request);
  HierarchyTilingResult result;
  result.tiles = std::move(r.tiles);
  result.before = std::move(r.before);
  result.after = std::move(r.after);
  result.ga = std::move(r.ga);
  return result;
}

TilingResult optimize_tiling(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                             const cache::CacheConfig& cache, const OptimizerOptions& options) {
  // Single-cache form = one-level hierarchy with miss latency 1; the
  // weighted cost degenerates to the replacement-miss count bit for bit.
  HierarchyTilingResult h =
      optimize_tiling(nest, layout, cache::Hierarchy::single(cache), options);
  TilingResult result;
  result.tiles = std::move(h.tiles);
  result.before = h.before.levels.front();
  result.after = h.after.levels.front();
  result.ga = std::move(h.ga);
  return result;
}

HierarchyPaddingResult optimize_padding(const ir::LoopNest& nest,
                                        const cache::Hierarchy& hierarchy,
                                        const OptimizerOptions& options) {
  OptimizeResponse r = optimize(OptimizeRequest::padding(nest, hierarchy, options));
  HierarchyPaddingResult result;
  result.pads = std::move(r.pads);
  result.before = std::move(r.before);
  result.after = std::move(r.after);
  result.ga = std::move(r.ga);
  return result;
}

PaddingResult optimize_padding(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                               const OptimizerOptions& options) {
  HierarchyPaddingResult h = optimize_padding(nest, cache::Hierarchy::single(cache), options);
  PaddingResult result;
  result.pads = std::move(h.pads);
  result.before = h.before.levels.front();
  result.after = h.after.levels.front();
  result.ga = std::move(h.ga);
  return result;
}

HierarchyJointResult optimize_jointly(const ir::LoopNest& nest, const cache::Hierarchy& hierarchy,
                                      const OptimizerOptions& options) {
  OptimizeResponse r = optimize(OptimizeRequest::joint(nest, hierarchy, options));
  HierarchyJointResult result;
  result.pads = std::move(r.pads);
  result.tiles = std::move(r.tiles);
  result.original = std::move(r.before);
  result.optimized = std::move(r.after);
  result.ga = std::move(r.ga);
  return result;
}

JointResult optimize_jointly(const ir::LoopNest& nest, const cache::CacheConfig& cache,
                             const OptimizerOptions& options) {
  HierarchyJointResult h = optimize_jointly(nest, cache::Hierarchy::single(cache), options);
  JointResult result;
  result.pads = std::move(h.pads);
  result.tiles = std::move(h.tiles);
  result.original = h.original.levels.front();
  result.optimized = h.optimized.levels.front();
  result.ga = std::move(h.ga);
  return result;
}

PadTileResult optimize_padding_then_tiling(const ir::LoopNest& nest,
                                           const cache::CacheConfig& cache,
                                           const OptimizerOptions& options) {
  PadTileResult result;
  const PaddingResult padding = optimize_padding(nest, cache, options);
  result.pads = padding.pads;
  result.original = padding.before;
  result.padded = padding.after;

  const ir::MemoryLayout layout = transform::padded_layout(nest, result.pads);
  const TilingResult tiling = optimize_tiling(nest, layout, cache, options);
  result.tiles = tiling.tiles;
  result.padded_tiled = tiling.after;
  return result;
}

}  // namespace cmetile::core

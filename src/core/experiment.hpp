#pragma once
// Experiment drivers shared by the paper-reproduction benches: one call
// produces the before/after-tiling row of Figures 8/9 and Table 2, the
// original/padding/padding+tiling row of Table 3, or the L1-only-vs-
// weighted hierarchy comparison row, for a (kernel, size, cache)
// combination. The plural drivers run a whole figure/table at once,
// parallelized across kernel rows — every row derives its GA and sampling
// seeds from its own (label, cache) pair via the *stable* hash of
// support/hash.hpp, so the results are deterministic, identical to running
// the rows serially, and reproducible across platforms and processes
// (the sweep scheduler's result cache and worker shards depend on this:
// a row's content is a pure function of (entry, geometry, options)).
//
// For resumable, cached, multi-process sweeps over many cells, drive
// these through sweep::run_sweep (sweep/scheduler.hpp) instead of calling
// the plural forms directly.

#include <span>
#include <string>

#include "core/tiler.hpp"
#include "kernels/kernels.hpp"

namespace cmetile::core {

struct ExperimentOptions {
  std::uint64_t seed = 2002;  ///< varies GA and sampling seeds per row
  OptimizerOptions optimizer;
};

/// One bar of Figures 8/9 (also the Table 2 columns).
struct TilingRow {
  std::string label;
  double no_tiling_total = 0.0;
  double no_tiling_repl = 0.0;
  double tiling_total = 0.0;
  double tiling_repl = 0.0;
  transform::TileVector tiles;
  i64 ga_evaluations = 0;
  int ga_generations = 0;
  /// EvalCache verdict-memo traffic of the tiling GA (0/0 when the
  /// incremental evaluator is off). Surfaced so sweep telemetry can report
  /// fleet-wide hit rates without re-running the GA.
  i64 eval_cache_lookups = 0;
  i64 eval_cache_hits = 0;
  /// Wall-clock time of this row. Under the plural drivers rows run
  /// concurrently, so this is elapsed time while sharing cores with the
  /// other rows — comparable within one run, not an isolated-row cost.
  double seconds = 0.0;
};

TilingRow run_tiling_experiment(const kernels::FigureEntry& entry,
                                const cache::CacheConfig& cache,
                                const ExperimentOptions& options = {});

/// All rows of a figure/table, parallel across kernels (`parallel_for`).
std::vector<TilingRow> run_tiling_experiments(std::span<const kernels::FigureEntry> entries,
                                              const cache::CacheConfig& cache,
                                              const ExperimentOptions& options = {});

/// One row of Table 3.
struct PaddingRow {
  std::string label;
  double original_repl = 0.0;
  double padding_repl = 0.0;
  double padding_tiling_repl = 0.0;
  transform::PadVector pads;
  transform::TileVector tiles;
  double seconds = 0.0;  ///< wall clock; concurrent under the plural driver
};

PaddingRow run_padding_experiment(const kernels::FigureEntry& entry,
                                  const cache::CacheConfig& cache,
                                  const ExperimentOptions& options = {});

/// All rows of the padding study, parallel across kernels.
std::vector<PaddingRow> run_padding_experiments(std::span<const kernels::FigureEntry> entries,
                                                const cache::CacheConfig& cache,
                                                const ExperimentOptions& options = {});

/// One row of the hierarchy study (bench_hierarchy, DESIGN.md §12): the
/// GA run twice — once blind to the outer levels (L1-only, the paper's
/// pipeline) and once on the latency-weighted hierarchy cost, warm-started
/// with the L1-only optimum so `tiles != l1_tiles` always means the
/// weighted objective actively preferred different tiles.
struct HierarchyRow {
  std::string label;
  transform::TileVector l1_tiles;  ///< optimum of the L1-only objective
  transform::TileVector tiles;     ///< optimum of the weighted objective
  double cost_l1_tiles = 0.0;      ///< weighted cost of l1_tiles
  double cost_tiles = 0.0;         ///< weighted cost of tiles
  /// Per-level CME estimate at `tiles`: replacement ratio and its CI
  /// half-width, index = hierarchy level (for simulator cross-checks).
  std::vector<double> level_repl;
  std::vector<double> level_half_width;
  i64 ga_evaluations = 0;  ///< both GA runs combined
  /// EvalCache verdict-memo traffic, both GA runs combined.
  i64 eval_cache_lookups = 0;
  i64 eval_cache_hits = 0;
  double seconds = 0.0;    ///< wall clock; concurrent under the plural driver
};

HierarchyRow run_hierarchy_experiment(const kernels::FigureEntry& entry,
                                      const cache::Hierarchy& hierarchy,
                                      const ExperimentOptions& options = {});

/// All rows of a hierarchy study, parallel across kernels.
std::vector<HierarchyRow> run_hierarchy_experiments(std::span<const kernels::FigureEntry> entries,
                                                    const cache::Hierarchy& hierarchy,
                                                    const ExperimentOptions& options = {});

}  // namespace cmetile::core

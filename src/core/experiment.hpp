#pragma once
// Experiment drivers shared by the paper-reproduction benches: one call
// produces the before/after-tiling row of Figures 8/9 and Table 2, or the
// original/padding/padding+tiling row of Table 3, for a (kernel, size,
// cache) combination.

#include <string>

#include "core/tiler.hpp"
#include "kernels/kernels.hpp"

namespace cmetile::core {

struct ExperimentOptions {
  std::uint64_t seed = 2002;  ///< varies GA and sampling seeds per row
  OptimizerOptions optimizer;
};

/// One bar of Figures 8/9 (also the Table 2 columns).
struct TilingRow {
  std::string label;
  double no_tiling_total = 0.0;
  double no_tiling_repl = 0.0;
  double tiling_total = 0.0;
  double tiling_repl = 0.0;
  transform::TileVector tiles;
  i64 ga_evaluations = 0;
  int ga_generations = 0;
  double seconds = 0.0;
};

TilingRow run_tiling_experiment(const kernels::FigureEntry& entry,
                                const cache::CacheConfig& cache,
                                const ExperimentOptions& options = {});

/// One row of Table 3.
struct PaddingRow {
  std::string label;
  double original_repl = 0.0;
  double padding_repl = 0.0;
  double padding_tiling_repl = 0.0;
  transform::PadVector pads;
  transform::TileVector tiles;
  double seconds = 0.0;
};

PaddingRow run_padding_experiment(const kernels::FigureEntry& entry,
                                  const cache::CacheConfig& cache,
                                  const ExperimentOptions& options = {});

}  // namespace cmetile::core

#pragma once
// Experiment drivers shared by the paper-reproduction benches: one call
// produces the before/after-tiling row of Figures 8/9 and Table 2, or the
// original/padding/padding+tiling row of Table 3, for a (kernel, size,
// cache) combination. The plural drivers run a whole figure/table at once,
// parallelized across kernel rows — every row derives its GA and sampling
// seeds from its own (label, cache) pair, so the results are deterministic
// and identical to running the rows serially.

#include <span>
#include <string>

#include "core/tiler.hpp"
#include "kernels/kernels.hpp"

namespace cmetile::core {

struct ExperimentOptions {
  std::uint64_t seed = 2002;  ///< varies GA and sampling seeds per row
  OptimizerOptions optimizer;
};

/// One bar of Figures 8/9 (also the Table 2 columns).
struct TilingRow {
  std::string label;
  double no_tiling_total = 0.0;
  double no_tiling_repl = 0.0;
  double tiling_total = 0.0;
  double tiling_repl = 0.0;
  transform::TileVector tiles;
  i64 ga_evaluations = 0;
  int ga_generations = 0;
  /// Wall-clock time of this row. Under the plural drivers rows run
  /// concurrently, so this is elapsed time while sharing cores with the
  /// other rows — comparable within one run, not an isolated-row cost.
  double seconds = 0.0;
};

TilingRow run_tiling_experiment(const kernels::FigureEntry& entry,
                                const cache::CacheConfig& cache,
                                const ExperimentOptions& options = {});

/// All rows of a figure/table, parallel across kernels (`parallel_for`).
std::vector<TilingRow> run_tiling_experiments(std::span<const kernels::FigureEntry> entries,
                                              const cache::CacheConfig& cache,
                                              const ExperimentOptions& options = {});

/// One row of Table 3.
struct PaddingRow {
  std::string label;
  double original_repl = 0.0;
  double padding_repl = 0.0;
  double padding_tiling_repl = 0.0;
  transform::PadVector pads;
  transform::TileVector tiles;
  double seconds = 0.0;  ///< wall clock; concurrent under the plural driver
};

PaddingRow run_padding_experiment(const kernels::FigureEntry& entry,
                                  const cache::CacheConfig& cache,
                                  const ExperimentOptions& options = {});

/// All rows of the padding study, parallel across kernels.
std::vector<PaddingRow> run_padding_experiments(std::span<const kernels::FigureEntry> entries,
                                                const cache::CacheConfig& cache,
                                                const ExperimentOptions& options = {});

}  // namespace cmetile::core

#include "core/experiment.hpp"

#include <bit>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "transform/padding.hpp"

namespace cmetile::core {

namespace {

// One registry interaction per experiment row. `ga_evaluations` is an
// exact integer, so fleet totals reconcile against the CSV's "GA evals"
// column; the repl ratios go into Sums for the same cross-check with a
// float tolerance.
void record_row_telemetry(const char* kind, i64 ga_evaluations, double repl_sum) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("experiment.rows").increment();
  reg.counter(std::string("experiment.rows.") + kind).increment();
  reg.counter("experiment.ga_evaluations").add(ga_evaluations);
  reg.sum("experiment.repl_sum").add(repl_sum);
}

double elapsed_seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Row seeds hash through stable_hash64, never std::hash: the sweep result
// cache keys cells on (entry, geometry, options) and replays them on other
// processes/machines, so the derived GA and sampling seeds must be a
// platform-independent function of the row.
ExperimentOptions with_row_seeds(const ExperimentOptions& options, const std::string& label,
                                 std::uint64_t geometry_salt) {
  ExperimentOptions out = options;
  std::uint64_t h = derive_seed(options.seed, stable_hash64(label), geometry_salt);
  out.optimizer.ga.seed = h;
  out.optimizer.objective.estimator.seed = derive_seed(h, 0xE57);
  return out;
}

std::uint64_t hierarchy_salt(const cache::Hierarchy& hierarchy) {
  std::uint64_t state = kFnvOffsetBasis;
  for (const cache::CacheLevel& level : hierarchy.levels) {
    state = fnv1a_u64((std::uint64_t)level.config.size_bytes, state);
    state = fnv1a_u64((std::uint64_t)level.config.line_bytes, state);
    state = fnv1a_u64((std::uint64_t)level.config.associativity, state);
    state = fnv1a_u64(std::bit_cast<std::uint64_t>(level.miss_latency), state);
  }
  return state;
}

}  // namespace

TilingRow run_tiling_experiment(const kernels::FigureEntry& entry,
                                const cache::CacheConfig& cache,
                                const ExperimentOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("experiment.tiling_row");
  const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);

  const ExperimentOptions opts =
      with_row_seeds(options, entry.label(), (std::uint64_t)cache.size_bytes);
  // The drivers are request-API clients: the exact code path cmetile-serve
  // exercises, so a served row and a bench row cannot drift.
  const OptimizeResponse result =
      optimize(OptimizeRequest::tiling(nest, cache::Hierarchy::single(cache), opts.optimizer));

  TilingRow row;
  row.label = entry.label();
  row.no_tiling_total = result.before.levels.front().total_ratio;
  row.no_tiling_repl = result.before.levels.front().replacement_ratio;
  row.tiling_total = result.after.levels.front().total_ratio;
  row.tiling_repl = result.after.levels.front().replacement_ratio;
  row.tiles = result.tiles;
  row.ga_evaluations = result.ga.evaluations;
  row.ga_generations = result.ga.generations;
  row.eval_cache_lookups = result.ga.eval_cache_lookups;
  row.eval_cache_hits = result.ga.eval_cache_hits;
  row.seconds = elapsed_seconds(start);
  record_row_telemetry("tiling", row.ga_evaluations, row.no_tiling_repl + row.tiling_repl);
  return row;
}

std::vector<TilingRow> run_tiling_experiments(std::span<const kernels::FigureEntry> entries,
                                              const cache::CacheConfig& cache,
                                              const ExperimentOptions& options) {
  std::vector<TilingRow> rows(entries.size());
  parallel_for(entries.size(),
               [&](std::size_t i) { rows[i] = run_tiling_experiment(entries[i], cache, options); });
  return rows;
}

PaddingRow run_padding_experiment(const kernels::FigureEntry& entry,
                                  const cache::CacheConfig& cache,
                                  const ExperimentOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("experiment.padding_row");
  const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);

  const ExperimentOptions opts =
      with_row_seeds(options, entry.label(), (std::uint64_t)cache.size_bytes);
  // Table 3's "padding and tiling applied sequentially in this order" as
  // two requests: the Padding search, then a Tiling request whose layout
  // carries the winning pads (what optimize_padding_then_tiling wraps).
  const cache::Hierarchy hierarchy = cache::Hierarchy::single(cache);
  const OptimizeResponse padded =
      optimize(OptimizeRequest::padding(nest, hierarchy, opts.optimizer));
  OptimizeRequest tiling_request = OptimizeRequest::tiling(nest, hierarchy, opts.optimizer);
  tiling_request.layout = transform::padded_layout_options(nest, padded.pads);
  const OptimizeResponse tiled = optimize(tiling_request);

  PaddingRow row;
  row.label = entry.label();
  row.original_repl = padded.before.levels.front().replacement_ratio;
  row.padding_repl = padded.after.levels.front().replacement_ratio;
  row.padding_tiling_repl = tiled.after.levels.front().replacement_ratio;
  row.pads = padded.pads;
  row.tiles = tiled.tiles;
  row.seconds = elapsed_seconds(start);
  record_row_telemetry("padding", 0, row.original_repl + row.padding_tiling_repl);
  return row;
}

std::vector<PaddingRow> run_padding_experiments(std::span<const kernels::FigureEntry> entries,
                                                const cache::CacheConfig& cache,
                                                const ExperimentOptions& options) {
  std::vector<PaddingRow> rows(entries.size());
  parallel_for(entries.size(), [&](std::size_t i) {
    rows[i] = run_padding_experiment(entries[i], cache, options);
  });
  return rows;
}

HierarchyRow run_hierarchy_experiment(const kernels::FigureEntry& entry,
                                      const cache::Hierarchy& hierarchy,
                                      const ExperimentOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("experiment.hierarchy_row");
  const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
  const ir::MemoryLayout layout(nest);

  const ExperimentOptions opts =
      with_row_seeds(options, entry.label(), hierarchy_salt(hierarchy));

  // Baseline: the paper's pipeline, blind to the outer levels — tiles
  // minimize L1 replacement misses only.
  const OptimizeResponse l1_only = optimize(OptimizeRequest::tiling(
      nest, cache::Hierarchy::single(hierarchy.levels[0].config), opts.optimizer));

  // The weighted search over the same sample set and GA budget, with the
  // L1-only optimum injected into the warm starts.
  OptimizerOptions weighted_opts = opts.optimizer;
  weighted_opts.extra_tile_seeds.push_back(l1_only.tiles.t);
  const OptimizeResponse weighted =
      optimize(OptimizeRequest::tiling(nest, hierarchy, weighted_opts));

  // Compare both optima under the hierarchy cost model.
  const TilingObjective hier_objective(nest, layout, hierarchy, opts.optimizer.objective);

  HierarchyRow row;
  row.label = entry.label();
  row.l1_tiles = l1_only.tiles;
  row.tiles = weighted.tiles;
  row.cost_l1_tiles = hier_objective.evaluate_hierarchy(l1_only.tiles).weighted_cost;
  row.cost_tiles = weighted.after.weighted_cost;
  for (const cme::MissEstimate& estimate : weighted.after.levels) {
    row.level_repl.push_back(estimate.replacement_ratio);
    row.level_half_width.push_back(estimate.replacement_half_width);
  }
  row.ga_evaluations = l1_only.ga.evaluations + weighted.ga.evaluations;
  row.eval_cache_lookups = l1_only.ga.eval_cache_lookups + weighted.ga.eval_cache_lookups;
  row.eval_cache_hits = l1_only.ga.eval_cache_hits + weighted.ga.eval_cache_hits;
  row.seconds = elapsed_seconds(start);
  double repl_sum = 0.0;
  for (const double r : row.level_repl) repl_sum += r;
  record_row_telemetry("hierarchy", row.ga_evaluations, repl_sum);
  return row;
}

std::vector<HierarchyRow> run_hierarchy_experiments(std::span<const kernels::FigureEntry> entries,
                                                    const cache::Hierarchy& hierarchy,
                                                    const ExperimentOptions& options) {
  std::vector<HierarchyRow> rows(entries.size());
  parallel_for(entries.size(), [&](std::size_t i) {
    rows[i] = run_hierarchy_experiment(entries[i], hierarchy, options);
  });
  return rows;
}

}  // namespace cmetile::core

#include "core/experiment.hpp"

#include <chrono>

#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace cmetile::core {

namespace {

double elapsed_seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

ExperimentOptions with_row_seeds(const ExperimentOptions& options, const std::string& label,
                                 i64 cache_bytes) {
  ExperimentOptions out = options;
  std::uint64_t h = derive_seed(options.seed, std::hash<std::string>{}(label),
                                (std::uint64_t)cache_bytes);
  out.optimizer.ga.seed = h;
  out.optimizer.objective.estimator.seed = derive_seed(h, 0xE57);
  return out;
}

}  // namespace

TilingRow run_tiling_experiment(const kernels::FigureEntry& entry,
                                const cache::CacheConfig& cache,
                                const ExperimentOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
  const ir::MemoryLayout layout(nest);

  const ExperimentOptions opts = with_row_seeds(options, entry.label(), cache.size_bytes);
  const TilingResult result = optimize_tiling(nest, layout, cache, opts.optimizer);

  TilingRow row;
  row.label = entry.label();
  row.no_tiling_total = result.before.total_ratio;
  row.no_tiling_repl = result.before.replacement_ratio;
  row.tiling_total = result.after.total_ratio;
  row.tiling_repl = result.after.replacement_ratio;
  row.tiles = result.tiles;
  row.ga_evaluations = result.ga.evaluations;
  row.ga_generations = result.ga.generations;
  row.seconds = elapsed_seconds(start);
  return row;
}

std::vector<TilingRow> run_tiling_experiments(std::span<const kernels::FigureEntry> entries,
                                              const cache::CacheConfig& cache,
                                              const ExperimentOptions& options) {
  std::vector<TilingRow> rows(entries.size());
  parallel_for(entries.size(),
               [&](std::size_t i) { rows[i] = run_tiling_experiment(entries[i], cache, options); });
  return rows;
}

PaddingRow run_padding_experiment(const kernels::FigureEntry& entry,
                                  const cache::CacheConfig& cache,
                                  const ExperimentOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);

  const ExperimentOptions opts = with_row_seeds(options, entry.label(), cache.size_bytes);
  const PadTileResult result = optimize_padding_then_tiling(nest, cache, opts.optimizer);

  PaddingRow row;
  row.label = entry.label();
  row.original_repl = result.original.replacement_ratio;
  row.padding_repl = result.padded.replacement_ratio;
  row.padding_tiling_repl = result.padded_tiled.replacement_ratio;
  row.pads = result.pads;
  row.tiles = result.tiles;
  row.seconds = elapsed_seconds(start);
  return row;
}

std::vector<PaddingRow> run_padding_experiments(std::span<const kernels::FigureEntry> entries,
                                                const cache::CacheConfig& cache,
                                                const ExperimentOptions& options) {
  std::vector<PaddingRow> rows(entries.size());
  parallel_for(entries.size(), [&](std::size_t i) {
    rows[i] = run_padding_experiment(entries[i], cache, options);
  });
  return rows;
}

}  // namespace cmetile::core

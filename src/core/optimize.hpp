#pragma once
// The unified optimization API: one request/response value-type pair and
// one entry point, core::optimize(). A request is a pure description —
// (kind, nest, layout options, cache hierarchy, OptimizerOptions) — and
// the response is a deterministic function of it: all GA and sampling
// seeds travel inside the options, never from wall clock or thread ids.
// That purity is what lets the sweep layer serialize requests to
// canonical JSON (sweep/request_json.hpp), fingerprint them for the
// content-addressed result cache, and ship them to workers — the wire
// schema IS this C++ API.
//
// The legacy optimize_tiling / optimize_padding / optimize_jointly
// overloads (core/tiler.hpp) are thin wrappers over optimize() kept for
// source compatibility; they are pinned bit-identical by regression test.
// New code should construct an OptimizeRequest.
//
// Threading: optimize() is synchronous and owns its GA run; the GA
// evaluates populations in parallel internally, so callers need no
// locking. Concurrent calls on distinct requests are safe.

#include "cache/hierarchy.hpp"
#include "cme/hierarchy.hpp"
#include "core/objective.hpp"
#include "ga/ga.hpp"
#include "ir/layout.hpp"

namespace cmetile::core {

struct OptimizerOptions {
  ga::GaOptions ga;                 ///< paper defaults (pop 30, pc .9, pm .001, 15–25 gens)
  ObjectiveOptions objective;
  bool check_legality = true;       ///< refuse tiling a non-fully-permutable nest
  /// Warm-start the GA population with heuristic individuals (untiled,
  /// LRW/TSS/analytic tiles — per hierarchy level — small uniform tiles;
  /// zero/staggered pads). Disable to reproduce the paper's purely random
  /// initialization — the ablation bench measures the difference.
  bool seed_population = true;
  /// Extra tile-vector warm starts appended to the initial population of
  /// the tiling search (after the heuristic seeds, regardless of
  /// `seed_population`). Lets callers make two searches comparable — e.g.
  /// bench_hierarchy seeds the weighted search with the L1-only optimum so
  /// a divergence is a preference, not a GA miss. Ignored by the padding
  /// and joint searches (their chromosomes carry pad variables too).
  std::vector<std::vector<i64>> extra_tile_seeds;
  i64 max_intra_pad_elems = 8;      ///< padding search bound (elements)
  i64 max_inter_pad_units = 16;     ///< padding search bound (alignment units)

  /// Shrink the GA and sampling budget for smoke runs (the `--fast` flag
  /// of examples and benches); one definition so the budget cannot drift.
  OptimizerOptions& shrink_for_smoke() {
    ga.min_generations = 4;
    ga.max_generations = 6;
    objective.estimator.sample_count = 64;
    return *this;
  }
};

/// What to search. Tiling searches tile sizes under the given layout;
/// Padding searches pad parameters (at the untiled schedule, the paper's
/// §4.3 sequence); Joint searches both in one chromosome (the paper's
/// stated future work).
enum class OptimizeKind { Tiling, Padding, Joint };

const char* to_string(OptimizeKind kind);

/// Parse the wire spelling ("tiling" / "padding" / "joint").
std::optional<OptimizeKind> optimize_kind_of(std::string_view name);

/// One optimization problem, self-contained. The single-cache setup of
/// the paper is a one-level hierarchy with miss latency 1 (see
/// cache::Hierarchy::single) — there is no separate CacheConfig form.
struct OptimizeRequest {
  OptimizeKind kind = OptimizeKind::Tiling;
  ir::LoopNest nest;
  /// Base memory layout for the Tiling search (alignment + fixed
  /// padding). The Padding and Joint searches derive layouts from their
  /// own pad variables and ignore this field.
  ir::LayoutOptions layout;
  cache::Hierarchy hierarchy;  ///< must validate(); 1–3 levels
  OptimizerOptions options;

  static OptimizeRequest tiling(ir::LoopNest nest, cache::Hierarchy hierarchy,
                                OptimizerOptions options = {});
  static OptimizeRequest padding(ir::LoopNest nest, cache::Hierarchy hierarchy,
                                 OptimizerOptions options = {});
  static OptimizeRequest joint(ir::LoopNest nest, cache::Hierarchy hierarchy,
                               OptimizerOptions options = {});
};

/// The answer: the winning transformation parameters, per-level CME
/// estimates at the baseline and at the optimum (same shared sample set),
/// and the GA run's statistics. Only the members matching `kind` carry
/// information — `tiles` is empty for Padding, `pads` for Tiling.
struct OptimizeResponse {
  OptimizeKind kind = OptimizeKind::Tiling;
  transform::TileVector tiles;
  transform::PadVector pads;
  /// Baseline estimate: untiled (Tiling), unpadded (Padding), or both
  /// (Joint) — per hierarchy level, on the run's shared sample.
  cme::HierarchyEstimate before;
  /// Estimate at the chosen parameters, same sample set.
  cme::HierarchyEstimate after;
  ga::GaResult ga;
};

/// Run the search the request describes. Throws contract_error on an
/// invalid request (hierarchy that fails validate(), empty nest) or —
/// when options.check_legality is set and kind involves tiling — a nest
/// whose tiling legality cannot be proven.
OptimizeResponse optimize(const OptimizeRequest& request);

}  // namespace cmetile::core

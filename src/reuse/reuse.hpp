#pragma once
// Reuse-vector analysis (Wolf & Lam), the prerequisite for CME generation
// (paper §2.1: "the reuse vectors of all the references in a loop nest must
// be generated"). For each reference we produce candidate reuse generators:
//
//  * self-temporal  — integer nullspace of the subscript matrix H
//  * self-spatial   — nullspace of H with the fastest-varying (first,
//                     column-major) subscript row dropped
//  * group-temporal — for uniformly generated pairs (same H), a particular
//                     solution of H·r = c_B − c_A
//  * group-spatial  — same with the fastest row dropped
//
// Whether a candidate's potential reuse is *realized* at a specific
// iteration point (same memory line, interference-free interval) is decided
// by the CME point solver; this module only enumerates the generators.

#include <string>
#include <vector>

#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "reuse/intlinalg.hpp"

namespace cmetile::reuse {

enum class ReuseKind : std::uint8_t { SelfTemporal, SelfSpatial, GroupTemporal, GroupSpatial };

const char* to_string(ReuseKind kind);

/// One candidate reuse generator for a reference A: the data A touches at
/// iteration i may have been touched by `source_ref` at iteration i - r.
struct ReuseCandidate {
  std::size_t source_ref = 0;   ///< reference providing the earlier access
  std::vector<i64> vector;      ///< reuse vector r (original loop coords)
  ReuseKind kind = ReuseKind::SelfTemporal;
  /// Heuristic execution-order distance of r in the untiled nest; candidates
  /// are sorted ascending so the solver can exit early on close hits.
  i64 order_distance = 0;
};

/// Reuse candidates for every reference of the nest (indexed by reference).
struct ReuseInfo {
  std::vector<std::vector<ReuseCandidate>> per_ref;

  std::string to_string(const ir::LoopNest& nest) const;
};

/// The subscript matrix H (array rank × nest depth) and constant vector c
/// of a reference, i.e. subscripts(i) = H·i + c.
struct SubscriptForm {
  IntMatrix h;
  std::vector<i64> c;
};

SubscriptForm subscript_form(const ir::LoopNest& nest, const ir::Reference& ref);

/// Compute reuse candidates for all references.
ReuseInfo analyze_reuse(const ir::LoopNest& nest);

/// Layout-aware variant: additionally generates *wraparound* spatial
/// generators — vectors r with a tiny linearized address displacement
/// |coeffs·r| < line_bytes that cross subscript boundaries (e.g. the last
/// elements of column i sharing a memory line with the first elements of
/// column i+1 when the column stride is not a multiple of the line size).
/// Subscript-level analysis cannot see those; the address polynomial can.
ReuseInfo analyze_reuse(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                        i64 line_bytes);

}  // namespace cmetile::reuse

#include "reuse/intlinalg.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace cmetile::reuse {

IntMatrix IntMatrix::identity(std::size_t n) {
  IntMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

std::vector<i64> IntMatrix::multiply(std::span<const i64> x) const {
  expects(x.size() == cols_, "IntMatrix::multiply: arity mismatch");
  std::vector<i64> y(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) y[r] += at(r, c) * x[c];
  return y;
}

namespace {

void swap_rows(IntMatrix& m, std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t c = 0; c < m.cols(); ++c) std::swap(m.at(a, c), m.at(b, c));
}

void swap_cols(IntMatrix& m, std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t r = 0; r < m.rows(); ++r) std::swap(m.at(r, a), m.at(r, b));
}

/// row_a -= q * row_b
void add_row(IntMatrix& m, std::size_t a, std::size_t b, i64 q) {
  for (std::size_t c = 0; c < m.cols(); ++c) m.at(a, c) -= q * m.at(b, c);
}

/// col_a -= q * col_b
void add_col(IntMatrix& m, std::size_t a, std::size_t b, i64 q) {
  for (std::size_t r = 0; r < m.rows(); ++r) m.at(r, a) -= q * m.at(r, b);
}

}  // namespace

Diagonalization diagonalize(IntMatrix a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Diagonalization d{std::move(a), IntMatrix::identity(m), IntMatrix::identity(n), 0};
  IntMatrix& s = d.s;

  const std::size_t t_max = std::min(m, n);
  for (std::size_t t = 0; t < t_max; ++t) {
    while (true) {
      // Find the nonzero entry of smallest magnitude in the trailing block.
      std::size_t pi = t, pj = t;
      i64 best = 0;
      for (std::size_t i = t; i < m; ++i)
        for (std::size_t j = t; j < n; ++j) {
          const i64 v = s.at(i, j) < 0 ? -s.at(i, j) : s.at(i, j);
          if (v != 0 && (best == 0 || v < best)) {
            best = v;
            pi = i;
            pj = j;
          }
        }
      if (best == 0) {
        d.rank = t;
        return d;
      }
      swap_rows(s, t, pi);
      swap_rows(d.u, t, pi);
      swap_cols(s, t, pj);
      swap_cols(d.v, t, pj);

      bool clean = true;
      for (std::size_t i = t + 1; i < m; ++i) {
        if (s.at(i, t) == 0) continue;
        const i64 q = s.at(i, t) / s.at(t, t);  // truncated division
        add_row(s, i, t, q);
        add_row(d.u, i, t, q);
        if (s.at(i, t) != 0) clean = false;
      }
      for (std::size_t j = t + 1; j < n; ++j) {
        if (s.at(t, j) == 0) continue;
        const i64 q = s.at(t, j) / s.at(t, t);
        add_col(s, j, t, q);
        add_col(d.v, j, t, q);
        if (s.at(t, j) != 0) clean = false;
      }
      if (clean) break;
    }
  }
  // rank = number of nonzero diagonal entries among the first t_max.
  std::size_t rank = 0;
  for (std::size_t t = 0; t < t_max; ++t)
    if (s.at(t, t) != 0) ++rank;
  d.rank = rank;
  return d;
}

std::vector<std::vector<i64>> nullspace_basis(const IntMatrix& a) {
  const std::size_t n = a.cols();
  const Diagonalization d = diagonalize(a);
  std::vector<std::vector<i64>> basis;
  for (std::size_t c = d.rank; c < n; ++c) {
    // Kernel basis vector = column c of V.
    std::vector<i64> v(n);
    for (std::size_t r = 0; r < n; ++r) v[r] = d.v.at(r, c);
    // Normalize: gcd-reduce and make first nonzero component positive.
    i64 g = 0;
    for (const i64 x : v) g = std::gcd(g, x);
    if (g > 1)
      for (i64& x : v) x /= g;
    for (const i64 x : v) {
      if (x == 0) continue;
      if (x < 0)
        for (i64& y : v) y = -y;
      break;
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<std::vector<i64>> solve_integer(const IntMatrix& a, std::span<const i64> b) {
  expects(b.size() == a.rows(), "solve_integer: rhs arity mismatch");
  const Diagonalization d = diagonalize(a);
  // A·x = b  <=>  S·y = U·b with x = V·y.
  std::vector<i64> c(a.rows(), 0);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t k = 0; k < a.rows(); ++k) c[r] += d.u.at(r, k) * b[k];

  const std::size_t n = a.cols();
  std::vector<i64> y(n, 0);
  const std::size_t t_max = std::min(a.rows(), n);
  for (std::size_t t = 0; t < a.rows(); ++t) {
    const i64 diag = t < t_max ? d.s.at(t, t) : 0;
    if (diag == 0) {
      if (c[t] != 0) return std::nullopt;
    } else {
      if (c[t] % diag != 0) return std::nullopt;
      y[t] = c[t] / diag;
    }
  }
  std::vector<i64> x(n, 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = 0; k < n; ++k) x[r] += d.v.at(r, k) * y[k];
  return x;
}

namespace {

constexpr i64 kCoeffLimit = i64(1) << 60;  ///< overflow guard for FM combinations

i128 abs128(i128 v) { return v < 0 ? -v : v; }

i128 gcd128(i128 a, i128 b) {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    const i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Floor division with a 128-bit numerator and positive denominator.
i128 floor_div128(i128 a, i128 b) {
  i128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

i128 ceil_div128(i128 a, i128 b) { return -floor_div128(-a, b); }

i64 narrow128(i128 v, const char* what) {
  expects(abs128(v) <= kCoeffLimit, what);
  return (i64)v;
}

}  // namespace

IntPolyhedron::IntPolyhedron(std::size_t dims) : dims_(dims) {
  expects(dims >= 1, "IntPolyhedron: at least one dimension required");
}

void IntPolyhedron::push_row(std::vector<i64> a, i64 b) {
  expects(a.size() == dims_, "IntPolyhedron: row arity mismatch");
  i64 g = 0;
  for (const i64 x : a) g = std::gcd(g, x);
  if (g == 0) {
    if (b < 0) infeasible_ = true;  // 0 >= -b with b < 0: contradiction
    return;                         // tautology otherwise
  }
  if (g > 1) {
    for (i64& x : a) x /= g;
    // Integer tightening: a·x is a multiple of 1 after reduction, so the
    // constant may be floored. Valid for integer points only (which is all
    // we ever certify); it can only cut non-integer rational points.
    b = floor_div(b, g);
  }
  for (Row& row : rows_) {
    if (row.a == a) {
      row.b = std::min(row.b, b);  // keep the tighter of two parallel rows
      return;
    }
  }
  rows_.push_back(Row{std::move(a), b});
}

void IntPolyhedron::add_inequality(std::vector<i64> coeffs, i64 constant) {
  push_row(std::move(coeffs), constant);
}

void IntPolyhedron::add_equality(std::vector<i64> coeffs, i64 constant) {
  std::vector<i64> negated(coeffs.size());
  for (std::size_t d = 0; d < coeffs.size(); ++d) negated[d] = -coeffs[d];
  push_row(std::move(coeffs), constant);
  push_row(std::move(negated), -constant);
}

void IntPolyhedron::add_lower_bound(std::size_t dim, i64 bound) {
  std::vector<i64> a(dims_, 0);
  a.at(dim) = 1;
  push_row(std::move(a), -bound);
}

void IntPolyhedron::add_upper_bound(std::size_t dim, i64 bound) {
  std::vector<i64> a(dims_, 0);
  a.at(dim) = -1;
  push_row(std::move(a), bound);
}

bool IntPolyhedron::contains(std::span<const i64> point) const {
  expects(point.size() == dims_, "IntPolyhedron::contains: arity mismatch");
  if (infeasible_) return false;
  for (const Row& row : rows_) {
    i128 lhs = row.b;
    for (std::size_t d = 0; d < dims_; ++d) lhs += (i128)row.a[d] * point[d];
    if (lhs < 0) return false;
  }
  return true;
}

void IntPolyhedron::eliminate(std::size_t dim) {
  expects(dim < dims_, "IntPolyhedron::eliminate: dimension out of range");
  std::vector<Row> old = std::move(rows_);
  rows_.clear();
  std::vector<const Row*> lowers;  // a[dim] > 0: lower bounds on x_dim
  std::vector<const Row*> uppers;  // a[dim] < 0: upper bounds on x_dim
  for (const Row& row : old) {
    if (row.a[dim] > 0)
      lowers.push_back(&row);
    else if (row.a[dim] < 0)
      uppers.push_back(&row);
    else
      push_row(row.a, row.b);
  }
  // Every (lower, upper) pair combines into one x_dim-free consequence.
  for (const Row* lo : lowers) {
    for (const Row* up : uppers) {
      const i128 cl = lo->a[dim];    // > 0
      const i128 mu = -up->a[dim];   // > 0
      std::vector<i128> wide(dims_, 0);
      i128 wide_b = mu * lo->b + cl * up->b;
      i128 g = 0;
      for (std::size_t d = 0; d < dims_; ++d) {
        wide[d] = mu * lo->a[d] + cl * up->a[d];
        g = gcd128(g, wide[d]);
      }
      if (g > 1) {
        for (i128& x : wide) x /= g;
        wide_b = floor_div128(wide_b, g);
      }
      std::vector<i64> a(dims_);
      for (std::size_t d = 0; d < dims_; ++d)
        a[d] = narrow128(wide[d], "IntPolyhedron: coefficient overflow in elimination");
      push_row(std::move(a),
               narrow128(wide_b, "IntPolyhedron: constant overflow in elimination"));
    }
  }
}

bool IntPolyhedron::definitely_empty() const {
  if (infeasible_) return true;
  IntPolyhedron copy = *this;
  for (std::size_t d = 0; d < dims_; ++d) {
    copy.eliminate(d);
    if (copy.infeasible_) return true;
  }
  return false;
}

IntPolyhedron::Bounds IntPolyhedron::coordinate_bounds(std::size_t dim) const {
  expects(dim < dims_, "IntPolyhedron::coordinate_bounds: dimension out of range");
  IntPolyhedron copy = *this;
  for (std::size_t d = 0; d < dims_ && !copy.infeasible_; ++d)
    if (d != dim) copy.eliminate(d);
  Bounds bounds;
  if (copy.infeasible_) {
    bounds.feasible = false;
    return bounds;
  }
  for (const Row& row : copy.rows_) {
    const i64 c = row.a[dim];
    if (c == 0) continue;
    if (c > 0) {
      const i64 lo = narrow128(ceil_div128(-(i128)row.b, c), "IntPolyhedron: bound overflow");
      bounds.lo = bounds.lower_bounded ? std::max(bounds.lo, lo) : lo;
      bounds.lower_bounded = true;
    } else {
      const i64 hi = narrow128(floor_div128(row.b, -(i128)c), "IntPolyhedron: bound overflow");
      bounds.hi = bounds.upper_bounded ? std::min(bounds.hi, hi) : hi;
      bounds.upper_bounded = true;
    }
  }
  if (bounds.lower_bounded && bounds.upper_bounded && bounds.lo > bounds.hi)
    bounds.feasible = false;
  return bounds;
}

IntPolyhedron::Search IntPolyhedron::for_each_projected_point(
    std::size_t prefix, i64 work_cap,
    const std::function<bool(std::span<const i64>)>& fn) const {
  expects(prefix >= 1 && prefix <= dims_, "IntPolyhedron: bad projection prefix");
  Search search;
  if (infeasible_) return search;

  // qs[d] has coordinates d..dims-1 eliminated, so its rows mention
  // x_0..x_{d-1} only. A prefix satisfying qs[d] extends to level d with
  // the interval cut out by the x_d rows of qs[d+1]; by induction a full
  // assignment reaching d == dims satisfies the original system exactly.
  std::vector<IntPolyhedron> qs(dims_ + 1, IntPolyhedron(dims_));
  qs[dims_] = *this;
  for (std::size_t d = dims_; d-- > 1;) {
    qs[d] = qs[d + 1];
    qs[d].eliminate(d);
    if (qs[d].infeasible_) return search;  // provably empty
  }

  i64 budget = work_cap;
  std::vector<i64> x(dims_, 0);
  // Return codes: 0 = subtree exhausted, 1 = completion found, 2 = stop all.
  std::function<int(std::size_t)> dfs = [&](std::size_t d) -> int {
    if (d == dims_) return 1;
    bool lo_bounded = false, hi_bounded = false;
    i64 lo = 0, hi = 0;
    for (const Row& row : qs[d + 1].rows_) {
      const i64 c = row.a[d];
      if (c == 0) continue;
      i128 rest = row.b;
      for (std::size_t e = 0; e < d; ++e) rest += (i128)row.a[e] * x[e];
      if (c > 0) {
        const i64 v = narrow128(ceil_div128(-rest, c), "IntPolyhedron: bound overflow");
        lo = lo_bounded ? std::max(lo, v) : v;
        lo_bounded = true;
      } else {
        const i64 v = narrow128(floor_div128(rest, -(i128)c), "IntPolyhedron: bound overflow");
        hi = hi_bounded ? std::min(hi, v) : v;
        hi_bounded = true;
      }
    }
    if (!lo_bounded || !hi_bounded) {
      search.complete = false;  // unbounded ray: cannot enumerate this subtree
      return 0;
    }
    for (i64 v = lo; v <= hi; ++v) {
      if (--budget < 0) {
        search.complete = false;
        return 2;
      }
      x[d] = v;
      const int r = dfs(d + 1);
      if (r == 2) return 2;
      if (d + 1 == prefix) {
        if (r == 1 && !fn(std::span<const i64>(x.data(), prefix))) return 2;
      } else if (d + 1 > prefix) {
        if (r == 1) return 1;  // one completion suffices
      }
    }
    return 0;
  };
  dfs(0);
  return search;
}

std::optional<std::vector<i64>> IntPolyhedron::find_point(i64 work_cap, bool* complete) const {
  std::optional<std::vector<i64>> found;
  const Search search =
      for_each_projected_point(dims_, work_cap, [&](std::span<const i64> point) {
        found.emplace(point.begin(), point.end());
        return false;
      });
  if (complete != nullptr) *complete = found.has_value() || search.complete;
  return found;
}

std::vector<i64> reduce_against(std::vector<i64> v, const std::vector<std::vector<i64>>& basis) {
  // Sequential Babai rounding; repeated twice for a slightly better fit.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::vector<i64>& u : basis) {
      i64 dot = 0, norm = 0;
      for (std::size_t d = 0; d < v.size(); ++d) {
        dot += v[d] * u[d];
        norm += u[d] * u[d];
      }
      if (norm == 0) continue;
      const i64 q = (i64)std::llround((double)dot / (double)norm);
      if (q == 0) continue;
      for (std::size_t d = 0; d < v.size(); ++d) v[d] -= q * u[d];
    }
  }
  return v;
}

}  // namespace cmetile::reuse

#include "reuse/intlinalg.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace cmetile::reuse {

IntMatrix IntMatrix::identity(std::size_t n) {
  IntMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

std::vector<i64> IntMatrix::multiply(std::span<const i64> x) const {
  expects(x.size() == cols_, "IntMatrix::multiply: arity mismatch");
  std::vector<i64> y(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) y[r] += at(r, c) * x[c];
  return y;
}

namespace {

void swap_rows(IntMatrix& m, std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t c = 0; c < m.cols(); ++c) std::swap(m.at(a, c), m.at(b, c));
}

void swap_cols(IntMatrix& m, std::size_t a, std::size_t b) {
  if (a == b) return;
  for (std::size_t r = 0; r < m.rows(); ++r) std::swap(m.at(r, a), m.at(r, b));
}

/// row_a -= q * row_b
void add_row(IntMatrix& m, std::size_t a, std::size_t b, i64 q) {
  for (std::size_t c = 0; c < m.cols(); ++c) m.at(a, c) -= q * m.at(b, c);
}

/// col_a -= q * col_b
void add_col(IntMatrix& m, std::size_t a, std::size_t b, i64 q) {
  for (std::size_t r = 0; r < m.rows(); ++r) m.at(r, a) -= q * m.at(r, b);
}

}  // namespace

Diagonalization diagonalize(IntMatrix a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Diagonalization d{std::move(a), IntMatrix::identity(m), IntMatrix::identity(n), 0};
  IntMatrix& s = d.s;

  const std::size_t t_max = std::min(m, n);
  for (std::size_t t = 0; t < t_max; ++t) {
    while (true) {
      // Find the nonzero entry of smallest magnitude in the trailing block.
      std::size_t pi = t, pj = t;
      i64 best = 0;
      for (std::size_t i = t; i < m; ++i)
        for (std::size_t j = t; j < n; ++j) {
          const i64 v = s.at(i, j) < 0 ? -s.at(i, j) : s.at(i, j);
          if (v != 0 && (best == 0 || v < best)) {
            best = v;
            pi = i;
            pj = j;
          }
        }
      if (best == 0) {
        d.rank = t;
        return d;
      }
      swap_rows(s, t, pi);
      swap_rows(d.u, t, pi);
      swap_cols(s, t, pj);
      swap_cols(d.v, t, pj);

      bool clean = true;
      for (std::size_t i = t + 1; i < m; ++i) {
        if (s.at(i, t) == 0) continue;
        const i64 q = s.at(i, t) / s.at(t, t);  // truncated division
        add_row(s, i, t, q);
        add_row(d.u, i, t, q);
        if (s.at(i, t) != 0) clean = false;
      }
      for (std::size_t j = t + 1; j < n; ++j) {
        if (s.at(t, j) == 0) continue;
        const i64 q = s.at(t, j) / s.at(t, t);
        add_col(s, j, t, q);
        add_col(d.v, j, t, q);
        if (s.at(t, j) != 0) clean = false;
      }
      if (clean) break;
    }
  }
  // rank = number of nonzero diagonal entries among the first t_max.
  std::size_t rank = 0;
  for (std::size_t t = 0; t < t_max; ++t)
    if (s.at(t, t) != 0) ++rank;
  d.rank = rank;
  return d;
}

std::vector<std::vector<i64>> nullspace_basis(const IntMatrix& a) {
  const std::size_t n = a.cols();
  const Diagonalization d = diagonalize(a);
  std::vector<std::vector<i64>> basis;
  for (std::size_t c = d.rank; c < n; ++c) {
    // Kernel basis vector = column c of V.
    std::vector<i64> v(n);
    for (std::size_t r = 0; r < n; ++r) v[r] = d.v.at(r, c);
    // Normalize: gcd-reduce and make first nonzero component positive.
    i64 g = 0;
    for (const i64 x : v) g = std::gcd(g, x);
    if (g > 1)
      for (i64& x : v) x /= g;
    for (const i64 x : v) {
      if (x == 0) continue;
      if (x < 0)
        for (i64& y : v) y = -y;
      break;
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<std::vector<i64>> solve_integer(const IntMatrix& a, std::span<const i64> b) {
  expects(b.size() == a.rows(), "solve_integer: rhs arity mismatch");
  const Diagonalization d = diagonalize(a);
  // A·x = b  <=>  S·y = U·b with x = V·y.
  std::vector<i64> c(a.rows(), 0);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t k = 0; k < a.rows(); ++k) c[r] += d.u.at(r, k) * b[k];

  const std::size_t n = a.cols();
  std::vector<i64> y(n, 0);
  const std::size_t t_max = std::min(a.rows(), n);
  for (std::size_t t = 0; t < a.rows(); ++t) {
    const i64 diag = t < t_max ? d.s.at(t, t) : 0;
    if (diag == 0) {
      if (c[t] != 0) return std::nullopt;
    } else {
      if (c[t] % diag != 0) return std::nullopt;
      y[t] = c[t] / diag;
    }
  }
  std::vector<i64> x(n, 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = 0; k < n; ++k) x[r] += d.v.at(r, k) * y[k];
  return x;
}

std::vector<i64> reduce_against(std::vector<i64> v, const std::vector<std::vector<i64>>& basis) {
  // Sequential Babai rounding; repeated twice for a slightly better fit.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::vector<i64>& u : basis) {
      i64 dot = 0, norm = 0;
      for (std::size_t d = 0; d < v.size(); ++d) {
        dot += v[d] * u[d];
        norm += u[d] * u[d];
      }
      if (norm == 0) continue;
      const i64 q = (i64)std::llround((double)dot / (double)norm);
      if (q == 0) continue;
      for (std::size_t d = 0; d < v.size(); ++d) v[d] -= q * u[d];
    }
  }
  return v;
}

}  // namespace cmetile::reuse

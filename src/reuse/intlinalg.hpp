#pragma once
// Small exact integer linear algebra for reuse analysis (Wolf & Lam):
// nullspace bases and particular integer solutions of H·r = c, both via a
// Smith-normal-form decomposition. Matrices are tiny (array rank × nest
// depth, entries are subscript coefficients), so the emphasis is on
// exactness and clarity, not asymptotics.

#include <optional>
#include <span>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile::reuse {

/// Dense row-major integer matrix.
class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static IntMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  i64& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  i64 at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::vector<i64> multiply(std::span<const i64> x) const;  ///< y = A·x

  friend bool operator==(const IntMatrix&, const IntMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<i64> data_;
};

/// Smith-like diagonalization A = U^{-1} · S · V^{-1} with U, V unimodular,
/// i.e. U·A·V = S diagonal (no divisibility chain normalization — not
/// needed for solving). rank = number of nonzero diagonal entries.
struct Diagonalization {
  IntMatrix s;
  IntMatrix u;  ///< row operations applied (S = U·A·V)
  IntMatrix v;  ///< column operations applied
  std::size_t rank = 0;
};

Diagonalization diagonalize(IntMatrix a);

/// Integer basis of { x : A·x = 0 }. Vectors are gcd-reduced with their
/// first nonzero component positive.
std::vector<std::vector<i64>> nullspace_basis(const IntMatrix& a);

/// A particular integer solution of A·x = b, if one exists.
std::optional<std::vector<i64>> solve_integer(const IntMatrix& a, std::span<const i64> b);

/// Reduce `v` modulo the lattice spanned by `basis` (Babai-style rounding)
/// to obtain a short representative. Used to keep group-reuse vectors small.
std::vector<i64> reduce_against(std::vector<i64> v,
                                const std::vector<std::vector<i64>>& basis);

}  // namespace cmetile::reuse

#pragma once
// Small exact integer linear algebra for reuse analysis (Wolf & Lam):
// nullspace bases and particular integer solutions of H·r = c, both via a
// Smith-normal-form decomposition, plus IntPolyhedron — a convex polyhedron
// with exact Fourier–Motzkin projection used by the dependence front end.
// Matrices are tiny (array rank × nest depth, entries are subscript
// coefficients), so the emphasis is on exactness and clarity, not
// asymptotics.

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile::reuse {

/// Dense row-major integer matrix.
class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static IntMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  i64& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  i64 at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::vector<i64> multiply(std::span<const i64> x) const;  ///< y = A·x

  friend bool operator==(const IntMatrix&, const IntMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<i64> data_;
};

/// Smith-like diagonalization A = U^{-1} · S · V^{-1} with U, V unimodular,
/// i.e. U·A·V = S diagonal (no divisibility chain normalization — not
/// needed for solving). rank = number of nonzero diagonal entries.
struct Diagonalization {
  IntMatrix s;
  IntMatrix u;  ///< row operations applied (S = U·A·V)
  IntMatrix v;  ///< column operations applied
  std::size_t rank = 0;
};

Diagonalization diagonalize(IntMatrix a);

/// Integer basis of { x : A·x = 0 }. Vectors are gcd-reduced with their
/// first nonzero component positive.
std::vector<std::vector<i64>> nullspace_basis(const IntMatrix& a);

/// A particular integer solution of A·x = b, if one exists.
std::optional<std::vector<i64>> solve_integer(const IntMatrix& a, std::span<const i64> b);

/// Reduce `v` modulo the lattice spanned by `basis` (Babai-style rounding)
/// to obtain a short representative. Used to keep group-reuse vectors small.
std::vector<i64> reduce_against(std::vector<i64> v,
                                const std::vector<std::vector<i64>>& basis);

/// A convex polyhedron { x : a_r·x + b_r >= 0 for every row r } queried for
/// its *integer* points, with exact Fourier–Motzkin projection. Rows are
/// gcd-normalized with the constant floor-tightened to the integer lattice,
/// so every derived certificate is sound for integer points:
/// `definitely_empty() == true` proves there is no integer solution, and the
/// depth-first enumeration is exact whenever it completes within its work
/// cap. Dependence polyhedra are 2·depth variables and a few dozen rows, so
/// the quadratic row bookkeeping is irrelevant.
class IntPolyhedron {
 public:
  explicit IntPolyhedron(std::size_t dims);

  std::size_t dims() const { return dims_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Add the constraint coeffs·x + constant >= 0 (coeffs.size() == dims()).
  void add_inequality(std::vector<i64> coeffs, i64 constant);
  /// Add the constraint coeffs·x + constant == 0.
  void add_equality(std::vector<i64> coeffs, i64 constant);
  void add_lower_bound(std::size_t dim, i64 bound);  ///< x_dim >= bound
  void add_upper_bound(std::size_t dim, i64 bound);  ///< x_dim <= bound

  /// Does the integer point satisfy every constraint?
  bool contains(std::span<const i64> point) const;

  /// Fourier–Motzkin projection: replace the constraint system with one over
  /// the remaining variables whose solutions are exactly the shadows of the
  /// original solutions (rationally exact; integer-sound after tightening).
  /// The eliminated column stays allocated but all its coefficients are 0.
  void eliminate(std::size_t dim);

  /// True => the polyhedron provably contains no integer point. False is
  /// inconclusive (the rational relaxation is non-empty but an integer
  /// point may or may not exist); use `find_point` for a witness.
  bool definitely_empty() const;

  /// Integer bounds of one coordinate over the whole polyhedron.
  struct Bounds {
    bool feasible = true;  ///< false when the projection onto this axis is empty
    bool lower_bounded = false;
    bool upper_bounded = false;
    i64 lo = 0;
    i64 hi = 0;
  };
  Bounds coordinate_bounds(std::size_t dim) const;

  struct Search {
    bool complete = true;  ///< false when the work cap or an unbounded ray stopped the search
  };

  /// Enumerate every integer point of the projection onto the first
  /// `prefix` coordinates that is realized by some integer completion of
  /// the remaining coordinates, in lexicographic order. `fn` returns false
  /// to stop early (does not mark the search incomplete). `work_cap` bounds
  /// the total number of candidate coordinate values tried.
  Search for_each_projected_point(std::size_t prefix, i64 work_cap,
                                  const std::function<bool(std::span<const i64>)>& fn) const;

  /// First integer point in lexicographic order, if one is found within the
  /// work cap. `complete` (optional) reports whether absence is a proof.
  std::optional<std::vector<i64>> find_point(i64 work_cap, bool* complete = nullptr) const;

 private:
  struct Row {
    std::vector<i64> a;
    i64 b = 0;
  };

  void push_row(std::vector<i64> a, i64 b);

  std::size_t dims_ = 0;
  std::vector<Row> rows_;
  bool infeasible_ = false;  ///< a normalized row reduced to "constant < 0"
};

}  // namespace cmetile::reuse

#include "reuse/reuse.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::reuse {

const char* to_string(ReuseKind kind) {
  switch (kind) {
    case ReuseKind::SelfTemporal: return "self-temporal";
    case ReuseKind::SelfSpatial: return "self-spatial";
    case ReuseKind::GroupTemporal: return "group-temporal";
    case ReuseKind::GroupSpatial: return "group-spatial";
  }
  return "?";
}

SubscriptForm subscript_form(const ir::LoopNest& nest, const ir::Reference& ref) {
  const std::size_t rank = ref.subscripts.size();
  SubscriptForm f{IntMatrix(rank, nest.depth()), std::vector<i64>(rank, 0)};
  for (std::size_t r = 0; r < rank; ++r) {
    for (std::size_t d = 0; d < nest.depth(); ++d) f.h.at(r, d) = ref.subscripts[r].coeff(d);
    f.c[r] = ref.subscripts[r].constant_term();
  }
  return f;
}

namespace {

/// H with its first row (the fastest-varying, column-major dimension) removed.
IntMatrix drop_fastest_row(const IntMatrix& h) {
  if (h.rows() == 0) return h;
  IntMatrix out(h.rows() - 1, h.cols());
  for (std::size_t r = 1; r < h.rows(); ++r)
    for (std::size_t c = 0; c < h.cols(); ++c) out.at(r - 1, c) = h.at(r, c);
  return out;
}

bool is_zero(std::span<const i64> v) {
  return std::all_of(v.begin(), v.end(), [](i64 x) { return x == 0; });
}

void lex_normalize(std::vector<i64>& v) {
  for (const i64 x : v) {
    if (x == 0) continue;
    if (x < 0)
      for (i64& y : v) y = -y;
    return;
  }
}

i64 linearized_distance(std::span<const i64> r, std::span<const i64> trips) {
  i64 dist = 0;
  for (std::size_t d = 0; d < r.size(); ++d) {
    i64 weight = 1;
    for (std::size_t e = d + 1; e < trips.size(); ++e) weight *= trips[e];
    dist += (r[d] < 0 ? -r[d] : r[d]) * weight;
  }
  return dist;
}

}  // namespace

namespace {
ReuseInfo analyze_reuse_impl(const ir::LoopNest& nest, const ir::MemoryLayout* layout,
                             i64 line_bytes);
}  // namespace

ReuseInfo analyze_reuse(const ir::LoopNest& nest) {
  return analyze_reuse_impl(nest, nullptr, 0);
}

ReuseInfo analyze_reuse(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                        i64 line_bytes) {
  return analyze_reuse_impl(nest, &layout, line_bytes);
}

namespace {
ReuseInfo analyze_reuse_impl(const ir::LoopNest& nest, const ir::MemoryLayout* layout,
                             i64 line_bytes) {
  const std::size_t n_refs = nest.refs.size();
  const std::vector<i64> trips = nest.trip_counts();

  std::vector<SubscriptForm> forms;
  forms.reserve(n_refs);
  for (const ir::Reference& ref : nest.refs) forms.push_back(subscript_form(nest, ref));

  ReuseInfo info;
  info.per_ref.resize(n_refs);

  for (std::size_t a = 0; a < n_refs; ++a) {
    std::vector<ReuseCandidate> cands;
    std::set<std::pair<std::size_t, std::vector<i64>>> seen;
    auto add = [&](std::size_t source, std::vector<i64> r, ReuseKind kind) {
      if (source == a && is_zero(r)) return;  // trivial self reuse
      lex_normalize(r);
      if (!seen.insert({source, r}).second) return;
      ReuseCandidate c;
      c.source_ref = source;
      c.vector = std::move(r);
      c.kind = kind;
      c.order_distance = linearized_distance(c.vector, trips);
      cands.push_back(std::move(c));
    };

    const SubscriptForm& fa = forms[a];

    // Self-temporal: directions along which the subscripts are invariant.
    for (std::vector<i64>& v : nullspace_basis(fa.h)) add(a, std::move(v), ReuseKind::SelfTemporal);

    // Self-spatial: invariant in all but the fastest-varying dimension.
    const IntMatrix h_spatial = drop_fastest_row(fa.h);
    const auto temporal_check = [&](std::span<const i64> v) {
      return is_zero(fa.h.multiply(v));
    };
    for (std::vector<i64>& v : nullspace_basis(h_spatial)) {
      if (temporal_check(v)) continue;  // already covered by self-temporal
      add(a, std::move(v), ReuseKind::SelfSpatial);
    }

    // Wraparound spatial generators (needs the address polynomial): r =
    // e_d - k·e_f with |c_d - k·c_f| < line_bytes, crossing a subscript
    // boundary into a shared memory line.
    if (layout != nullptr && line_bytes > 0) {
      const ir::LinExpr addr = layout->address_expr(nest, nest.refs[a]);
      for (std::size_t f = 0; f < nest.depth(); ++f) {
        const i64 cf = addr.coeff(f);
        if (cf == 0 || cf >= line_bytes || cf <= -line_bytes) continue;
        for (std::size_t d = 0; d < nest.depth(); ++d) {
          if (d == f) continue;
          const i64 cd = addr.coeff(d);
          if (cd == 0 || (cd < line_bytes && cd > -line_bytes)) continue;
          // All k with |c_d - k·c_f| < line_bytes: a window of at most
          // 2·line/|c_f| + 1 values around c_d/c_f.
          const i64 cf_mag = cf < 0 ? -cf : cf;
          const i64 k_mid = floor_div(cd, cf);
          const i64 window = line_bytes / cf_mag + 1;
          for (i64 k = k_mid - window; k <= k_mid + window; ++k) {
            const i64 displacement = cd - k * cf;
            if (displacement >= line_bytes || displacement <= -line_bytes) continue;
            std::vector<i64> r(nest.depth(), 0);
            r[d] = 1;
            r[f] = -k;
            add(a, std::move(r), ReuseKind::SelfSpatial);
          }
        }
      }
    }

    // Group reuse with every other uniformly generated reference (same H).
    for (std::size_t b = 0; b < n_refs; ++b) {
      if (b == a) continue;
      if (nest.refs[b].array != nest.refs[a].array) continue;
      const SubscriptForm& fb = forms[b];
      if (!(fb.h == fa.h)) continue;

      // The solutions of H·r = c_B - c_A form a lattice r0 + L(ker H); the
      // closest realized source may be any small representative (e.g. the
      // previous iteration's *write* of the same element/line), so emit r0
      // plus its neighbours along each kernel basis vector.
      auto add_lattice_reps = [&](std::vector<i64> r0,
                                  const std::vector<std::vector<i64>>& kernel, ReuseKind kind) {
        add(b, r0, kind);
        for (const std::vector<i64>& v : kernel) {
          std::vector<i64> plus = r0, minus = r0;
          for (std::size_t d = 0; d < r0.size(); ++d) {
            plus[d] += v[d];
            minus[d] -= v[d];
          }
          add(b, std::move(plus), kind);
          add(b, std::move(minus), kind);
        }
      };

      // Group-temporal: A at i reuses B at i - r where H·r = c_B - c_A.
      std::vector<i64> rhs(fa.c.size());
      for (std::size_t d = 0; d < rhs.size(); ++d) rhs[d] = fb.c[d] - fa.c[d];
      const auto kernel = nullspace_basis(fa.h);
      if (auto r = solve_integer(fa.h, rhs)) {
        add_lattice_reps(reduce_against(std::move(*r), kernel), kernel, ReuseKind::GroupTemporal);
      }

      // Group-spatial: equality of all but the fastest subscript.
      if (!rhs.empty()) {
        const std::vector<i64> rhs_spatial(rhs.begin() + 1, rhs.end());
        if (auto r = solve_integer(h_spatial, rhs_spatial)) {
          const auto kernel_spatial = nullspace_basis(h_spatial);
          add_lattice_reps(reduce_against(std::move(*r), kernel_spatial), kernel_spatial,
                           ReuseKind::GroupSpatial);
        }
      }
    }

    std::stable_sort(cands.begin(), cands.end(),
                     [](const ReuseCandidate& x, const ReuseCandidate& y) {
                       return x.order_distance < y.order_distance;
                     });
    info.per_ref[a] = std::move(cands);
  }
  return info;
}
}  // namespace

std::string ReuseInfo::to_string(const ir::LoopNest& nest) const {
  std::ostringstream out;
  const std::vector<std::string> names = nest.loop_names();
  for (std::size_t r = 0; r < per_ref.size(); ++r) {
    const ir::Reference& ref = nest.refs[r];
    out << "ref " << r << " (" << nest.arrays[ref.array].name
        << (ref.kind == ir::AccessKind::Write ? " write" : " read") << "):\n";
    for (const ReuseCandidate& c : per_ref[r]) {
      out << "  " << reuse::to_string(c.kind) << " from ref " << c.source_ref << " r=(";
      for (std::size_t d = 0; d < c.vector.size(); ++d) {
        if (d) out << ',';
        out << c.vector[d];
      }
      out << ") distance=" << c.order_distance << '\n';
    }
  }
  return out.str();
}

}  // namespace cmetile::reuse

#include "support/int_math.hpp"

namespace cmetile {

int ceil_log2(i64 n) {
  expects(n >= 1, "ceil_log2 requires n >= 1");
  int k = 0;
  i64 v = 1;
  while (v < n) {
    v <<= 1;
    ++k;
  }
  return k;
}

ExtGcd ext_gcd(i64 a, i64 b) {
  // Iterative extended Euclid keeping Bezout coefficients.
  i64 old_r = a, r = b;
  i64 old_s = 1, s = 0;
  i64 old_t = 0, t = 1;
  while (r != 0) {
    const i64 q = old_r / r;
    old_r -= q * r;
    std::swap(old_r, r);
    old_s -= q * s;
    std::swap(old_s, s);
    old_t -= q * t;
    std::swap(old_t, t);
  }
  if (old_r < 0) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  return ExtGcd{old_r, old_s, old_t};
}

i64 mod_inverse(i64 a, i64 m) {
  expects(m >= 1, "mod_inverse requires m >= 1");
  const ExtGcd e = ext_gcd(floor_mod(a, m), m);
  expects(e.g == 1, "mod_inverse requires gcd(a, m) == 1");
  return floor_mod(e.x, m);
}

namespace {

// Core of floor_sum for 0 <= a, 0 <= b, using unsigned 128-bit accumulation
// (the classic AtCoder Library formulation).
i64 floor_sum_unsigned(i64 n, i64 m, i64 a, i64 b) {
  unsigned __int128 ans = 0;
  while (true) {
    if (a >= m) {
      ans += (unsigned __int128)(n - 1) * n / 2 * (unsigned __int128)(a / m);
      a %= m;
    }
    if (b >= m) {
      ans += (unsigned __int128)n * (unsigned __int128)(b / m);
      b %= m;
    }
    const i128 y_max = (i128)a * n + b;
    if (y_max < m) break;
    n = (i64)(y_max / m);
    b = (i64)(y_max % m);
    std::swap(m, a);
  }
  return (i64)ans;
}

}  // namespace

i64 floor_sum(i64 n, i64 m, i64 a, i64 b) {
  expects(n >= 0, "floor_sum requires n >= 0");
  expects(m >= 1, "floor_sum requires m >= 1");
  if (n == 0) return 0;
  i128 ans = 0;
  if (a < 0) {
    const i64 a2 = floor_mod(a, m);
    ans -= (i128)(n - 1) * n / 2 * ((a2 - a) / m);
    a = a2;
  }
  if (b < 0) {
    const i64 b2 = floor_mod(b, m);
    ans -= (i128)n * ((b2 - b) / m);
    b = b2;
  }
  ans += floor_sum_unsigned(n, m, a, b);
  return (i64)ans;
}

i64 count_mod_in_range(i64 n, i64 m, i64 a, i64 b, i64 lo, i64 hi) {
  expects(m >= 1, "count_mod_in_range requires m >= 1");
  expects(0 <= lo && lo <= hi && hi < m, "count_mod_in_range requires 0 <= lo <= hi < m");
  if (n <= 0) return 0;
  // [(a*x+b) mod m ∈ [lo, hi]] == floor((a*x+b-lo)/m) - floor((a*x+b-hi-1)/m).
  return floor_sum(n, m, a, b - lo) - floor_sum(n, m, a, b - hi - 1);
}

}  // namespace cmetile

#include "support/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/contracts.hpp"

namespace cmetile {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "TextTable row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw((int)width[c] + 2) << row[c];
    }
    out << '\n';
  };
  emit(header_);
  std::string sep;
  for (std::size_t c = 0; c < header_.size(); ++c) sep += std::string(width[c], '-') + "  ";
  out << sep << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::string format_pct(double ratio, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << ratio * 100.0 << '%';
  return out.str();
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

}  // namespace cmetile

#pragma once
// Lightweight contract checks in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Violations throw, so tests can assert on them and
// library users get a diagnosable error instead of UB.

#include <stdexcept>
#include <string>

namespace cmetile {

/// Thrown when a precondition or invariant of the library is violated.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Precondition check: call at function entry.
inline void expects(bool condition, const char* message) {
  if (!condition) throw contract_error(std::string("precondition violated: ") + message);
}

/// Overload for messages composed at the call site (note the message is
/// built before the check — avoid in hot paths).
inline void expects(bool condition, const std::string& message) {
  if (!condition) throw contract_error("precondition violated: " + message);
}

/// Postcondition / invariant check.
inline void ensures(bool condition, const char* message) {
  if (!condition) throw contract_error(std::string("invariant violated: ") + message);
}

}  // namespace cmetile

#pragma once
// Minimal command-line parsing for benches and examples:
// `--key=value` and `--flag` forms only, with typed getters and defaults.

#include <map>
#include <string>

#include "support/int_math.hpp"

namespace cmetile {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  i64 get_int(const std::string& key, i64 fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cmetile

#pragma once
// Minimal command-line parsing for benches and examples:
// `--key=value` and `--flag` forms only, with typed getters and defaults.
// parse_sweep_flags() handles the sweep-orchestration flags every bench
// shares (--jobs/--cache-dir/--no-cache, DESIGN.md §13) with strict
// validation — a typo'd --jobs must fail loudly, not silently serialize a
// multi-hour sweep.

#include <map>
#include <string>
#include <string_view>

#include "support/int_math.hpp"

namespace cmetile {

/// Default on-disk sweep result cache, relative to the working directory
/// (listed in .gitignore). Shared by sweep::SchedulerOptions and the
/// bench --cache-dir flag so all benches hit one store by default.
inline constexpr const char* kDefaultCacheDir = ".cmetile-cache";

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  i64 get_int(const std::string& key, i64 fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Like get_int, but a present-yet-malformed value (non-numeric, empty,
  /// trailing junk, out of i64 range) throws contract_error instead of
  /// being silently misread.
  i64 get_int_strict(const std::string& key, i64 fallback) const;

  /// Strict double: a present-yet-malformed value throws contract_error
  /// (strtod would silently read "abc" as 0.0 — e.g. disabling worker
  /// heartbeats on a typo'd --heartbeat).
  double get_double_strict(const std::string& key, double fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// The shared sweep-orchestration flags (validated):
///   --jobs=N          worker shards; 1 = in-process, N >= 2 = subprocesses
///   --cache-dir=DIR   persistent result cache location
///   --no-cache        disable reading/writing the result cache
///   --listen=H:P      dispatch to TCP --connect workers instead of pipes
///   --progress        per-cell progress lines (done/total, ETA, workers)
///   --cache-gc        LRU-evict the result cache after the sweep
///   --cache-max-mb=N  gc byte budget (implies --cache-gc; default 256)
///   --trace=FILE      Chrome trace_event JSON for this process
///   --metrics=FILE    fleet metrics JSON report after the sweep
struct SweepCliFlags {
  i64 jobs = 1;
  std::string cache_dir = kDefaultCacheDir;
  bool no_cache = false;
  std::string listen;  ///< empty = pipe transport
  bool progress = false;
  bool cache_gc = false;
  i64 cache_max_mb = 256;
  std::string trace;    ///< empty = tracing off (DESIGN.md §17)
  std::string metrics;  ///< empty = no metrics report
};

/// Parse and validate the sweep flags. Throws contract_error on a
/// non-integer or out-of-range --jobs (valid: 1..512), an empty
/// --cache-dir, a malformed --listen (host:port with port 0..65535), an
/// out-of-range --cache-max-mb (1..1048576), or a boolean-flag value
/// other than a recognized boolean.
SweepCliFlags parse_sweep_flags(const CliArgs& args);

/// One --help paragraph documenting the sweep flags and their defaults.
std::string sweep_flags_help();

/// Split "host:port" at the LAST colon (so "::1:9000" keeps the IPv6
/// host); host must be non-empty, port a valid 0..65535 integer. The one
/// definition of the rule — the --listen/--connect flag validation and
/// the sweep TCP transport both use it, so they cannot drift.
bool split_host_port(std::string_view spec, std::string& host, std::string& port);

}  // namespace cmetile

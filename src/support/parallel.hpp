#pragma once
// Shared-memory parallelism wrapper. The GA evaluates its population (and
// benches evaluate independent experiment rows) with OpenMP when available;
// the serial fallback keeps single-threaded builds working unchanged.
// Bodies must be independent per index and deterministic given the index
// (all RNG streams are derived from indices, never from thread ids).

#include <cstddef>

#ifdef CMETILE_HAVE_OPENMP
#include <omp.h>
#endif

namespace cmetile {

/// Run body(i) for i in [0, n) — in parallel when OpenMP is enabled.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
#ifdef CMETILE_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
  for (long long i = 0; i < (long long)n; ++i) body((std::size_t)i);
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

/// Number of hardware threads OpenMP will use (1 without OpenMP).
inline int parallel_threads() {
#ifdef CMETILE_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace cmetile

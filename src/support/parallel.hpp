#pragma once
// Shared-memory parallelism wrapper. The GA evaluates its population (and
// benches evaluate independent experiment rows) with OpenMP when available;
// the serial fallback keeps single-threaded builds working unchanged.
// Bodies must be independent per index and deterministic given the index
// (all RNG streams are derived from indices, never from thread ids).

#include <atomic>
#include <cstddef>

#ifdef CMETILE_HAVE_OPENMP
#include <omp.h>
#endif

namespace cmetile {

/// Run body(i) for i in [0, n) — in parallel when OpenMP is enabled.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
#ifdef CMETILE_HAVE_OPENMP
  // The release stores + final acquire load re-establish, in the C++
  // memory model, the happens-before edge the implicit `omp parallel for`
  // barrier already provides. The OpenMP runtime's barrier is opaque to
  // ThreadSanitizer (libgomp is not instrumented), so without this edge
  // every read of worker-written results would be reported as a race.
  // One relaxed-cost atomic add per body call is noise next to the bodies
  // this library runs (whole classification shards, GA evaluations).
  std::atomic<std::size_t> completed{0};
#pragma omp parallel for schedule(dynamic)
  for (long long i = 0; i < (long long)n; ++i) {
    body((std::size_t)i);
    completed.fetch_add(1, std::memory_order_release);
  }
  (void)completed.load(std::memory_order_acquire);
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

/// Number of hardware threads OpenMP will use (1 without OpenMP).
inline int parallel_threads() {
#ifdef CMETILE_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// True when already inside an active OpenMP parallel region. Nested
/// parallel_for calls are serialized by the runtime, so callers sizing
/// work per thread (e.g. classify_batch's shards) should treat this as
/// "one worker available".
inline bool parallel_active() {
#ifdef CMETILE_HAVE_OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

}  // namespace cmetile

#include "support/rng.hpp"

namespace cmetile {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_a, std::uint64_t stream_b) {
  std::uint64_t s = splitmix64(base ^ 0xd1b54a32d192ed03ULL);
  s = splitmix64(s ^ stream_a);
  s = splitmix64(s ^ stream_b);
  return s;
}

}  // namespace cmetile

#pragma once
// Text-table and CSV emission for the paper-reproduction benches. Every
// bench prints a human-readable table (the paper's rows) and writes the
// same data as CSV for downstream plotting.

#include <string>
#include <vector>

namespace cmetile {

/// A simple right-padded text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with aligned columns; includes a separator under the header.
  std::string to_string() const;

  /// Render as CSV (RFC-ish: fields with commas/quotes get quoted).
  std::string to_csv() const;

  /// Write CSV to a file; returns false (and keeps going) on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a ratio in [0,1] as a percentage like "36.4%".
std::string format_pct(double ratio, int decimals = 1);

/// Format a double with fixed decimals.
std::string format_fixed(double value, int decimals = 2);

}  // namespace cmetile

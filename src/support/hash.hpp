#pragma once
// Stable, platform-independent hashing. std::hash is implementation-
// defined, so anything persisted across runs or shared across machines
// (sweep fingerprints, per-row seed derivation) hashes through these
// FNV-1a routines instead. The GA memo also keys its unordered_map here
// so lookups cost one pass over the value vector instead of a
// lexicographic tree walk.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a over raw bytes, continuing from `state` (start at the offset
/// basis, or any prior digest to chain fields).
inline std::uint64_t fnv1a_bytes(std::string_view bytes,
                                 std::uint64_t state = kFnvOffsetBasis) {
  for (const char c : bytes) {
    state ^= (std::uint64_t)(unsigned char)c;
    state *= kFnvPrime;
  }
  return state;
}

/// Fold one 64-bit word into the digest (little-endian byte order, fixed
/// regardless of host endianness so digests are portable).
inline std::uint64_t fnv1a_u64(std::uint64_t value,
                               std::uint64_t state = kFnvOffsetBasis) {
  for (int byte = 0; byte < 8; ++byte) {
    state ^= (value >> (8 * byte)) & 0xFF;
    state *= kFnvPrime;
  }
  return state;
}

/// Stable 64-bit digest of a string (label, kernel name, ...).
inline std::uint64_t stable_hash64(std::string_view text) { return fnv1a_bytes(text); }

/// Stable 64-bit digest of an integer vector (GA decoded values).
inline std::uint64_t stable_hash64(std::span<const i64> values) {
  std::uint64_t state = kFnvOffsetBasis;
  for (const i64 v : values) state = fnv1a_u64((std::uint64_t)v, state);
  // Length in, so [1] and [1,0] differ even though 0 folds to identity-ish.
  return fnv1a_u64((std::uint64_t)values.size(), state);
}

/// Hash functor for unordered containers keyed on std::vector<i64>.
struct I64VecHash {
  std::size_t operator()(const std::vector<i64>& values) const {
    return (std::size_t)stable_hash64(std::span<const i64>(values));
  }
};

}  // namespace cmetile

#pragma once
// Portable 4-lane 64-bit integer SIMD wrapper for the CME batch classifier
// (DESIGN.md §14). The backend is selected at configure time by the
// CMETILE_SIMD CMake option:
//
//   CMETILE_SIMD_AVX2 — AVX2 __m256i (x86-64, -mavx2)
//   CMETILE_SIMD_NEON — 2 × int64x2_t (aarch64)
//   neither           — scalar lanes (the fallback, and the semantics spec)
//
// Every operation is defined to produce EXACTLY the scalar two's-complement
// result lane by lane: mul wraps mod 2^64, shr is an arithmetic shift,
// comparisons are signed and yield all-ones/all-zero lane masks. The batch
// classifier's bit-identity contract (batched == per-point classify, SIMD
// leg == scalar-fallback leg) rests on this; simd_test pins each op
// against its scalar definition, and the classifier tests pin the
// composition.
//
// This header is intentionally kept out of every public cme header: only
// .cpp files compiled with the backend's flags (cmetile_simd_config in
// CMake) may include it, so no SIMD type ever crosses a TU boundary built
// with different flags.

#include <array>
#include <cstdint>

#include "support/int_math.hpp"

#if defined(CMETILE_SIMD_AVX2)
#include <immintrin.h>
#elif defined(CMETILE_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace cmetile::simd {

inline constexpr int kLanes = 4;

#if defined(CMETILE_SIMD_AVX2)
inline constexpr const char* kBackend = "avx2";
#elif defined(CMETILE_SIMD_NEON)
inline constexpr const char* kBackend = "neon";
#else
inline constexpr const char* kBackend = "scalar";
#endif

#if defined(CMETILE_SIMD_AVX2)

struct I64x4 {
  __m256i v;
};

inline I64x4 load(const i64* p) { return {_mm256_loadu_si256((const __m256i*)p)}; }
inline void store(i64* p, I64x4 x) { _mm256_storeu_si256((__m256i*)p, x.v); }
inline I64x4 splat(i64 x) { return {_mm256_set1_epi64x(x)}; }
inline I64x4 add(I64x4 a, I64x4 b) { return {_mm256_add_epi64(a.v, b.v)}; }
inline I64x4 sub(I64x4 a, I64x4 b) { return {_mm256_sub_epi64(a.v, b.v)}; }
inline I64x4 bit_and(I64x4 a, I64x4 b) { return {_mm256_and_si256(a.v, b.v)}; }
inline I64x4 bit_or(I64x4 a, I64x4 b) { return {_mm256_or_si256(a.v, b.v)}; }
inline I64x4 bit_andnot(I64x4 a, I64x4 b) {
  // a & ~b (note the operand order of the intrinsic).
  return {_mm256_andnot_si256(b.v, a.v)};
}

/// Low 64 bits of the 64×64 product, exactly as scalar wraparound
/// multiplication. AVX2 has no 64-bit mullo; the three 32×32 partial
/// products reconstruct it (the high cross terms fall out of the low 64).
inline I64x4 mul(I64x4 a, I64x4 b) {
  const __m256i lo = _mm256_mul_epu32(a.v, b.v);
  const __m256i a_hi = _mm256_srli_epi64(a.v, 32);
  const __m256i b_hi = _mm256_srli_epi64(b.v, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b.v), _mm256_mul_epu32(a.v, b_hi));
  return {_mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32))};
}

/// Arithmetic right shift by n ∈ [0, 63]. AVX2 only has the logical form
/// for 64-bit lanes; negative lanes get their sign bits re-planted.
inline I64x4 shr_arith(I64x4 x, int n) {
  const __m256i logical = _mm256_srl_epi64(x.v, _mm_cvtsi32_si128(n));
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), x.v);
  const __m256i fix = _mm256_sll_epi64(sign, _mm_cvtsi32_si128(64 - n));
  return {_mm256_or_si256(logical, fix)};
}

/// Signed a > b per lane: all-ones lane on true, zero on false.
inline I64x4 cmp_gt(I64x4 a, I64x4 b) { return {_mm256_cmpgt_epi64(a.v, b.v)}; }
inline I64x4 cmp_eq(I64x4 a, I64x4 b) { return {_mm256_cmpeq_epi64(a.v, b.v)}; }

/// True if any lane of the mask has its sign bit set (i.e. is all-ones).
inline bool any(I64x4 mask) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(mask.v)) != 0;
}

/// mask ? a : b per lane (mask lanes must be all-ones or all-zero).
inline I64x4 blend(I64x4 mask, I64x4 a, I64x4 b) {
  return {_mm256_blendv_epi8(b.v, a.v, mask.v)};
}

/// Floor divide/modulo nonnegative lanes by a positive divisor:
/// q = z / d, r = z % d, exact for 0 <= z < 2^52 and 1 <= d < 2^52
/// (the classifier guards the range; iteration coordinates are far below
/// it). The double division is correctly rounded so the truncated
/// quotient is off by at most one; two correction passes restore
/// r ∈ [0, d) exactly.
inline void floor_div_mod_u52(I64x4 z, i64 divisor, I64x4& q, I64x4& r) {
  const __m256d magic = _mm256_set1_pd(0x1.0p52);
  const __m256i magic_bits = _mm256_castpd_si256(magic);
  const __m256d zd =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(z.v, magic_bits)), magic);
  const __m256d qd = _mm256_floor_pd(_mm256_div_pd(zd, _mm256_set1_pd((double)divisor)));
  __m256i qi = _mm256_sub_epi64(_mm256_castpd_si256(_mm256_add_pd(qd, magic)), magic_bits);
  const I64x4 t = splat(divisor);
  __m256i ri = _mm256_sub_epi64(z.v, mul(I64x4{qi}, t).v);
  for (int pass = 0; pass < 2; ++pass) {
    const __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), ri);  // r < 0
    qi = _mm256_add_epi64(qi, neg);                                      // q -= 1
    ri = _mm256_add_epi64(ri, _mm256_and_si256(neg, t.v));               // r += d
    const __m256i ge = _mm256_cmpgt_epi64(ri, _mm256_sub_epi64(t.v, _mm256_set1_epi64x(1)));
    qi = _mm256_sub_epi64(qi, ge);                                       // q += 1
    ri = _mm256_sub_epi64(ri, _mm256_and_si256(ge, t.v));                // r -= d
  }
  q = {qi};
  r = {ri};
}

#else  // NEON and scalar share the array representation helpers below.

struct I64x4 {
  std::array<i64, 4> v;
};

#if defined(CMETILE_SIMD_NEON)

inline I64x4 load(const i64* p) {
  I64x4 x;
  vst1q_s64(x.v.data(), vld1q_s64(p));
  vst1q_s64(x.v.data() + 2, vld1q_s64(p + 2));
  return x;
}
inline void store(i64* p, I64x4 x) {
  vst1q_s64(p, vld1q_s64(x.v.data()));
  vst1q_s64(p + 2, vld1q_s64(x.v.data() + 2));
}

#define CMETILE_SIMD_NEON_BINOP(name, op)                         \
  inline I64x4 name(I64x4 a, I64x4 b) {                           \
    I64x4 out;                                                    \
    vst1q_s64(out.v.data(),                                       \
              op(vld1q_s64(a.v.data()), vld1q_s64(b.v.data())));  \
    vst1q_s64(out.v.data() + 2,                                   \
              op(vld1q_s64(a.v.data() + 2), vld1q_s64(b.v.data() + 2))); \
    return out;                                                   \
  }
CMETILE_SIMD_NEON_BINOP(add, vaddq_s64)
CMETILE_SIMD_NEON_BINOP(sub, vsubq_s64)
CMETILE_SIMD_NEON_BINOP(bit_and, vandq_s64)
CMETILE_SIMD_NEON_BINOP(bit_or, vorrq_s64)
#undef CMETILE_SIMD_NEON_BINOP

#else  // scalar fallback

inline I64x4 load(const i64* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void store(i64* p, I64x4 x) {
  for (int i = 0; i < 4; ++i) p[i] = x.v[(std::size_t)i];
}
inline I64x4 add(I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i)
    out.v[i] = (i64)((std::uint64_t)a.v[i] + (std::uint64_t)b.v[i]);
  return out;
}
inline I64x4 sub(I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i)
    out.v[i] = (i64)((std::uint64_t)a.v[i] - (std::uint64_t)b.v[i]);
  return out;
}
inline I64x4 bit_and(I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i) out.v[i] = a.v[i] & b.v[i];
  return out;
}
inline I64x4 bit_or(I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i) out.v[i] = a.v[i] | b.v[i];
  return out;
}

#endif  // NEON / scalar

inline I64x4 splat(i64 x) { return {{x, x, x, x}}; }
inline I64x4 bit_andnot(I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i) out.v[i] = a.v[i] & ~b.v[i];
  return out;
}
inline I64x4 mul(I64x4 a, I64x4 b) {
  // Unsigned multiply: defined wraparound, bit-identical to the
  // non-overflowing signed products the classifier computes.
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i)
    out.v[i] = (i64)((std::uint64_t)a.v[i] * (std::uint64_t)b.v[i]);
  return out;
}
inline I64x4 shr_arith(I64x4 x, int n) {
  // C++20 mandates arithmetic shift for signed operands.
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i) out.v[i] = x.v[i] >> n;
  return out;
}
inline I64x4 cmp_gt(I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i) out.v[i] = a.v[i] > b.v[i] ? -1 : 0;
  return out;
}
inline I64x4 cmp_eq(I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i) out.v[i] = a.v[i] == b.v[i] ? -1 : 0;
  return out;
}
inline bool any(I64x4 mask) {
  for (std::size_t i = 0; i < 4; ++i)
    if (mask.v[i] != 0) return true;
  return false;
}
inline I64x4 blend(I64x4 mask, I64x4 a, I64x4 b) {
  I64x4 out;
  for (std::size_t i = 0; i < 4; ++i) out.v[i] = mask.v[i] != 0 ? a.v[i] : b.v[i];
  return out;
}
inline void floor_div_mod_u52(I64x4 z, i64 divisor, I64x4& q, I64x4& r) {
  for (std::size_t i = 0; i < 4; ++i) {
    q.v[i] = z.v[i] / divisor;
    r.v[i] = z.v[i] % divisor;
  }
}

#endif  // AVX2 / (NEON|scalar)

}  // namespace cmetile::simd

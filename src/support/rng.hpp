#pragma once
// Deterministic random-number utilities. Every stochastic component of the
// library (sampling, GA operators) draws from an Rng constructed from an
// explicit seed, and independent streams are derived by hashing so that
// OpenMP-parallel evaluation stays reproducible regardless of scheduling.

#include <cstdint>
#include <random>

#include "support/int_math.hpp"

namespace cmetile {

/// splitmix64 step; used for seed derivation (good avalanche, tiny).
std::uint64_t splitmix64(std::uint64_t x);

/// Combine a base seed with stream identifiers into an independent seed.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_a, std::uint64_t stream_b = 0);

/// Thin deterministic wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)) {}

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  i64 uniform_int(i64 lo, i64 hi) {
    expects(lo <= hi, "Rng::uniform_int requires lo <= hi");
    return std::uniform_int_distribution<i64>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Bernoulli draw with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cmetile

#pragma once
// Statistics used by the sampled CME solver (paper §2.3): the miss outcome
// of a sampled (iteration point, reference) pair is a Bernoulli variable;
// the sample size for a requested confidence-interval width follows the
// normal approximation of the Binomial. With the paper's parameters
// (width 0.1, confidence 0.90) this reproduces the famous n = 164.

#include <cstdint>

#include "support/int_math.hpp"

namespace cmetile {

/// Inverse standard normal CDF (Acklam's rational approximation, ~1e-9).
double normal_quantile(double p);

/// Sample size n so that the miss-ratio estimate has a confidence interval
/// of total width `width` at the given confidence, using the conservative
/// p(1-p) <= 1/4 bound: n = ceil(z^2 / width^2) with z = Phi^{-1}(confidence).
///
/// Note on the paper's convention (DESIGN.md §7): §2.3 reports "width 0.1
/// and 90% confidence ... only 164 points". 164 = ceil(1.2816^2 * 0.25 /
/// 0.05^2), i.e. z is the *0.90 quantile* (one-sided; an 80% two-sided
/// interval). We reproduce that convention so the default sample size is
/// exactly 164.
i64 required_sample_size(double width, double confidence);

/// Binomial proportion confidence interval (normal approximation).
struct ProportionEstimate {
  double ratio = 0.0;       ///< point estimate (sample mean)
  double half_width = 0.0;  ///< CI half-width at the configured confidence
  i64 samples = 0;

  double lower() const { return ratio - half_width < 0.0 ? 0.0 : ratio - half_width; }
  double upper() const { return ratio + half_width > 1.0 ? 1.0 : ratio + half_width; }
};

/// Estimate a proportion from `hits` successes in `n` trials.
ProportionEstimate estimate_proportion(i64 hits, i64 n, double confidence);

/// Streaming mean/variance (Welford). Used by benches for run statistics.
class RunningStats {
 public:
  void add(double x);
  i64 count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;

 private:
  i64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace cmetile

#pragma once
// Exact integer arithmetic used throughout the CME solver: floor division,
// extended gcd, modular inverses and the floor-sum primitive that lets us
// count solutions of `(a*x + b) mod m ∈ [lo, hi]` over an interval in
// O(log m) instead of O(interval length).

#include <cstdint>
#include <numeric>
#include <utility>

#include "support/contracts.hpp"

namespace cmetile {

using i64 = std::int64_t;
using i128 = __int128;

/// Floor division: rounds toward negative infinity (unlike C++ '/').
constexpr i64 floor_div(i64 a, i64 b) {
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division: rounds toward positive infinity.
constexpr i64 ceil_div(i64 a, i64 b) { return -floor_div(-a, b); }

/// Mathematical modulus: result always in [0, |b|).
constexpr i64 floor_mod(i64 a, i64 b) { return a - floor_div(a, b) * b; }

/// Smallest k with 2^k >= n (n >= 1). This is ceil(log2 n).
int ceil_log2(i64 n);

/// Result of the extended Euclidean algorithm: g = gcd(a,b) = a*x + b*y.
struct ExtGcd {
  i64 g;
  i64 x;
  i64 y;
};

/// Extended gcd; g is always non-negative.
ExtGcd ext_gcd(i64 a, i64 b);

/// Modular inverse of a modulo m; requires gcd(a, m) == 1 and m >= 1.
i64 mod_inverse(i64 a, i64 m);

/// floor_sum(n, m, a, b) = sum_{i=0}^{n-1} floor((a*i + b) / m).
/// Requires n >= 0 and m >= 1; a and b may be negative or large (internally
/// promoted to 128-bit where needed). O(log m).
i64 floor_sum(i64 n, i64 m, i64 a, i64 b);

/// Number of x in [0, n) with (a*x + b) mod m in [lo, hi] (mathematical mod;
/// requires 0 <= lo <= hi < m). Exact, O(log m).
i64 count_mod_in_range(i64 n, i64 m, i64 a, i64 b, i64 lo, i64 hi);

/// A closed integer interval [lo, hi]; empty iff lo > hi.
struct Interval {
  i64 lo = 0;
  i64 hi = -1;

  constexpr bool empty() const { return lo > hi; }
  constexpr i64 length() const { return empty() ? 0 : hi - lo + 1; }
  constexpr bool contains(i64 v) const { return lo <= v && v <= hi; }

  constexpr Interval intersect(const Interval& other) const {
    return Interval{lo > other.lo ? lo : other.lo, hi < other.hi ? hi : other.hi};
  }
  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// An interval of residues modulo m that may wrap around 0, e.g.
/// [m-2, 1] = {m-2, m-1, 0, 1}. Used when gcd folding shrinks the modulus.
struct WrappedInterval {
  i64 lo = 0;     ///< first residue, in [0, m)
  i64 len = 0;    ///< number of residues (0 = empty, m = everything)

  bool contains(i64 residue, i64 m) const {
    if (len <= 0) return false;
    if (len >= m) return true;
    const i64 offset = floor_mod(residue - lo, m);
    return offset < len;
  }
};

}  // namespace cmetile

#include "support/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace cmetile {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      // insert_or_assign with a std::string: operator[]= of a char literal
      // trips GCC 12's -Wrestrict false positive (PR 105329) at -O3.
      values_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

i64 CliArgs::get_int(const std::string& key, i64 fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false" && it->second != "no";
}

}  // namespace cmetile

#include "support/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <string_view>

#include "support/contracts.hpp"

namespace cmetile {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      // insert_or_assign with a std::string: operator[]= of a char literal
      // trips GCC 12's -Wrestrict false positive (PR 105329) at -O3.
      values_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

i64 CliArgs::get_int(const std::string& key, i64 fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false" && it->second != "no";
}

i64 CliArgs::get_int_strict(const std::string& key, i64 fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  i64 value = 0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), value);
  expects(res.ec == std::errc() && res.ptr == text.data() + text.size(),
          "--" + key + " expects an integer, got \"" + text + "\"");
  return value;
}

double CliArgs::get_double_strict(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  double value = 0.0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), value);
  expects(res.ec == std::errc() && res.ptr == text.data() + text.size(),
          "--" + key + " expects a number, got \"" + text + "\"");
  return value;
}

namespace {

/// Shared strict-boolean reader for presence-style flags: `--flag`,
/// `--flag=1/0/true/false/yes/no` are accepted, anything else throws.
bool get_bool_strict(const CliArgs& args, const std::string& key) {
  if (!args.has(key)) return false;
  const std::string value = args.get(key, "1");
  expects(value == "1" || value == "0" || value == "true" || value == "false" ||
              value == "yes" || value == "no",
          "--" + key + " expects a boolean, got \"" + value + "\"");
  return args.get_bool(key, false);
}

}  // namespace

bool split_host_port(std::string_view spec, std::string& host, std::string& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == spec.size()) return false;
  const std::string_view port_text = spec.substr(colon + 1);
  int value = -1;
  const auto res = std::from_chars(port_text.data(), port_text.data() + port_text.size(), value);
  if (res.ec != std::errc() || res.ptr != port_text.data() + port_text.size()) return false;
  if (value < 0 || value > 65535) return false;
  host = std::string(spec.substr(0, colon));
  port = std::string(port_text);
  return true;
}

SweepCliFlags parse_sweep_flags(const CliArgs& args) {
  SweepCliFlags flags;
  flags.jobs = args.get_int_strict("jobs", flags.jobs);
  expects(flags.jobs >= 1 && flags.jobs <= 512,
          "--jobs must be in 1..512, got " + std::to_string(flags.jobs));
  flags.cache_dir = args.get("cache-dir", flags.cache_dir);
  expects(!flags.cache_dir.empty(), "--cache-dir must not be empty");
  flags.no_cache = get_bool_strict(args, "no-cache");
  if (args.has("listen")) {
    flags.listen = args.get("listen", "");
    std::string host, port;
    expects(split_host_port(flags.listen, host, port),
            "--listen expects host:port (port 0..65535), got \"" + flags.listen + "\"");
  }
  flags.progress = get_bool_strict(args, "progress");
  flags.cache_max_mb = args.get_int_strict("cache-max-mb", flags.cache_max_mb);
  expects(flags.cache_max_mb >= 1 && flags.cache_max_mb <= 1048576,
          "--cache-max-mb must be in 1..1048576, got " + std::to_string(flags.cache_max_mb));
  // --cache-max-mb without --cache-gc still means "bound my cache", but
  // an explicit --cache-gc=false wins over the implication.
  flags.cache_gc =
      args.has("cache-gc") ? get_bool_strict(args, "cache-gc") : args.has("cache-max-mb");
  flags.trace = args.get("trace", "");
  expects(!args.has("trace") || !flags.trace.empty(), "--trace expects a file path");
  flags.metrics = args.get("metrics", "");
  expects(!args.has("metrics") || !flags.metrics.empty(), "--metrics expects a file path");
  return flags;
}

std::string sweep_flags_help() {
  return "Sweep orchestration (shared by all benches; DESIGN.md §13):\n"
         "  --jobs=N          shard cold cells across N worker subprocesses\n"
         "                    (default 1 = in-process parallel_for; max 512)\n"
         "  --cache-dir=DIR   persistent result cache directory\n"
         "                    (default " +
         std::string(kDefaultCacheDir) +
         ")\n"
         "  --no-cache        compute every cell fresh; do not read or write\n"
         "                    the result cache (default: cache enabled)\n"
         "  --listen=HOST:PORT  serve cold cells to TCP workers started with\n"
         "                    --connect=HOST:PORT (port 0 = ephemeral)\n"
         "  --connect=HOST:PORT  run as a TCP worker for that scheduler\n"
         "                    (--heartbeat=SECONDS tunes liveness; 0 = off)\n"
         "  --progress        per-cell progress lines (done/total, ETA)\n"
         "  --cache-gc        LRU-evict the result cache after the sweep\n"
         "  --cache-max-mb=N  gc byte budget in MiB (implies --cache-gc;\n"
         "                    default 256)\n"
         "  --trace=FILE      write a Chrome trace_event JSON (Perfetto-\n"
         "                    loadable) for this process, DESIGN.md \u00a717\n"
         "  --metrics=FILE    write a fleet metrics JSON report after the\n"
         "                    sweep (per-worker + aggregated snapshots)\n";
}

}  // namespace cmetile

#include "support/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <string_view>

#include "support/contracts.hpp"

namespace cmetile {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      // insert_or_assign with a std::string: operator[]= of a char literal
      // trips GCC 12's -Wrestrict false positive (PR 105329) at -O3.
      values_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

i64 CliArgs::get_int(const std::string& key, i64 fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false" && it->second != "no";
}

i64 CliArgs::get_int_strict(const std::string& key, i64 fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  i64 value = 0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), value);
  expects(res.ec == std::errc() && res.ptr == text.data() + text.size(),
          "--" + key + " expects an integer, got \"" + text + "\"");
  return value;
}

SweepCliFlags parse_sweep_flags(const CliArgs& args) {
  SweepCliFlags flags;
  flags.jobs = args.get_int_strict("jobs", flags.jobs);
  expects(flags.jobs >= 1 && flags.jobs <= 512,
          "--jobs must be in 1..512, got " + std::to_string(flags.jobs));
  flags.cache_dir = args.get("cache-dir", flags.cache_dir);
  expects(!flags.cache_dir.empty(), "--cache-dir must not be empty");
  if (args.has("no-cache")) {
    const std::string value = args.get("no-cache", "1");
    expects(value == "1" || value == "0" || value == "true" || value == "false" ||
                value == "yes" || value == "no",
            "--no-cache expects a boolean, got \"" + value + "\"");
    flags.no_cache = args.get_bool("no-cache", false);
  }
  return flags;
}

std::string sweep_flags_help() {
  return "Sweep orchestration (shared by all benches; DESIGN.md §13):\n"
         "  --jobs=N        shard cold cells across N worker subprocesses\n"
         "                  (default 1 = in-process parallel_for; max 512)\n"
         "  --cache-dir=DIR persistent result cache directory\n"
         "                  (default " +
         std::string(kDefaultCacheDir) +
         ")\n"
         "  --no-cache      compute every cell fresh; do not read or write\n"
         "                  the result cache (default: cache enabled)\n";
}

}  // namespace cmetile

#include "cme/estimator.hpp"

#include "ir/trace.hpp"
#include "support/rng.hpp"

namespace cmetile::cme {

std::vector<std::vector<i64>> sample_points(const ir::LoopNest& nest, i64 count,
                                            std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0x5A3B13ULL));
  const std::size_t k = nest.depth();
  // Non-rectangular domains use rejection sampling against the bounding
  // box: uniform over the actual domain, and the RNG stream (hence every
  // sampled point) is unchanged for rectangular nests.
  const bool rectangular = nest.rectangular();
  std::vector<std::vector<i64>> points;
  points.reserve((std::size_t)count);
  std::vector<i64> probe(k);
  for (i64 s = 0; s < count; ++s) {
    std::vector<i64> z(k);
    for (i64 draws = 0;; ++draws) {
      // Shipped triangular kernels keep >= 1/6 of their box; this cap only
      // trips on degenerate (nearly empty) domains.
      expects(draws < (i64(1) << 16), "sample_points: domain too sparse in its bounding box");
      for (std::size_t d = 0; d < k; ++d)
        z[d] = rng.uniform_int(0, nest.loops[d].trip_count() - 1);
      if (rectangular) break;
      for (std::size_t d = 0; d < k; ++d) probe[d] = z[d] + nest.loops[d].lower;
      if (nest.contains(probe)) break;
    }
    points.push_back(std::move(z));
  }
  return points;
}

i64 resolved_sample_count(const EstimatorOptions& options) {
  if (options.sample_count > 0) return options.sample_count;
  if (options.ci_width == 0.1 && options.confidence == 0.90) return kPaperSampleCount;
  return required_sample_size(options.ci_width, options.confidence);
}

namespace {

/// Fold a batch's outcomes into a MissEstimate (shared by the plain and
/// EvalCache-backed sampled estimators).
MissEstimate tally_outcomes(const NestAnalysis& analysis,
                            std::span<const std::vector<i64>> points,
                            const std::vector<Outcome>& outcomes, double confidence) {
  const ir::LoopNest& nest = analysis.nest();
  const std::size_t n_refs = nest.refs.size();
  i64 cold = 0, repl = 0;
  for (const Outcome outcome : outcomes) {
    switch (outcome) {
      case Outcome::ColdMiss: ++cold; break;
      case Outcome::ReplacementMiss: ++repl; break;
      case Outcome::Hit: break;
    }
  }
  const i64 trials = (i64)points.size() * (i64)n_refs;
  MissEstimate e;
  e.sampled_points = (i64)points.size();
  e.access_count = nest.access_count();
  if (trials == 0) return e;
  const ProportionEstimate total = estimate_proportion(cold + repl, trials, confidence);
  const ProportionEstimate replacement = estimate_proportion(repl, trials, confidence);
  e.total_ratio = total.ratio;
  e.total_half_width = total.half_width;
  e.replacement_ratio = replacement.ratio;
  e.replacement_half_width = replacement.half_width;
  e.cold_ratio = (double)cold / (double)trials;
  return e;
}

}  // namespace

namespace {

std::vector<std::size_t> store_refs(const ir::LoopNest& nest) {
  std::vector<std::size_t> stores;
  for (std::size_t r = 0; r < nest.refs.size(); ++r) {
    if (nest.refs[r].kind == ir::AccessKind::Write) stores.push_back(r);
  }
  return stores;
}

}  // namespace

WritebackEstimate estimate_writebacks_with_points(const NestAnalysis& analysis,
                                                  std::span<const std::vector<i64>> points,
                                                  double confidence) {
  const ir::LoopNest& nest = analysis.nest();
  const std::vector<std::size_t> stores = store_refs(nest);
  WritebackEstimate e;
  e.sampled_points = (i64)points.size();
  e.store_access_count = nest.iteration_count() * (i64)stores.size();
  if (stores.empty() || points.empty()) return e;
  i64 starts = 0;
  for (const std::vector<i64>& z : points) {
    for (const std::size_t r : stores) {
      if (analysis.classify_store_generation(z, r) != Outcome::Hit) ++starts;
    }
  }
  const i64 trials = (i64)points.size() * (i64)stores.size();
  const ProportionEstimate ratio = estimate_proportion(starts, trials, confidence);
  e.generation_ratio = ratio.ratio;
  e.half_width = ratio.half_width;
  return e;
}

WritebackEstimate estimate_writebacks_exact(const NestAnalysis& analysis) {
  const ir::LoopNest& nest = analysis.nest();
  const std::vector<std::size_t> stores = store_refs(nest);
  WritebackEstimate e;
  e.exact = true;
  e.sampled_points = nest.iteration_count();
  e.store_access_count = nest.iteration_count() * (i64)stores.size();
  if (stores.empty()) return e;
  i64 starts = 0;
  std::vector<i64> z(nest.depth());
  ir::for_each_point(nest, [&](std::span<const i64> point) {
    for (std::size_t d = 0; d < z.size(); ++d) z[d] = point[d] - nest.loops[d].lower;
    for (const std::size_t r : stores) {
      if (analysis.classify_store_generation(z, r) != Outcome::Hit) ++starts;
    }
  });
  if (e.store_access_count > 0)
    e.generation_ratio = (double)starts / (double)e.store_access_count;
  return e;
}

MissEstimate estimate_with_points(const NestAnalysis& analysis,
                                  std::span<const std::vector<i64>> points, double confidence) {
  return tally_outcomes(analysis, points, analysis.classify_batch(points), confidence);
}

MissEstimate estimate_with_points(const NestAnalysis& analysis,
                                  std::span<const std::vector<i64>> points, double confidence,
                                  EvalCache& cache, std::size_t level) {
  return tally_outcomes(analysis, points, analysis.classify_batch(points, cache, level),
                        confidence);
}

MissEstimate estimate_misses(const NestAnalysis& analysis, const EstimatorOptions& options) {
  const ir::LoopNest& nest = analysis.nest();
  if (options.exact_threshold > 0 && nest.iteration_count() <= options.exact_threshold) {
    return estimate_exact(analysis);
  }
  const i64 n = resolved_sample_count(options);
  const auto points = sample_points(nest, n, options.seed);
  return estimate_with_points(analysis, points, options.confidence);
}

MissEstimate estimate_exact(const NestAnalysis& analysis) {
  const auto per_ref = classify_all_points(analysis);
  const cache::MissStats& total = per_ref.back();
  MissEstimate e;
  e.exact = true;
  e.access_count = total.accesses;
  e.sampled_points = analysis.nest().iteration_count();
  e.total_ratio = total.total_ratio();
  e.replacement_ratio = total.replacement_ratio();
  e.cold_ratio = total.accesses ? (double)total.cold_misses / (double)total.accesses : 0.0;
  return e;
}

std::vector<cache::MissStats> classify_all_points(const NestAnalysis& analysis) {
  const ir::LoopNest& nest = analysis.nest();
  const std::size_t n_refs = nest.refs.size();
  std::vector<cache::MissStats> per_ref(n_refs + 1);

  // Batch the exact traversal through the sharded engine in bounded chunks
  // (the chunk caps the point-buffer memory on large spaces).
  constexpr std::size_t kChunkPoints = 1u << 15;
  std::vector<std::vector<i64>> chunk;
  chunk.reserve(std::min<std::size_t>(kChunkPoints, (std::size_t)nest.iteration_count()));
  const auto flush = [&]() {
    const std::vector<Outcome> outcomes = analysis.classify_batch(chunk);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      cache::MissStats& s = per_ref[i % n_refs];
      ++s.accesses;
      switch (outcomes[i]) {
        case Outcome::ColdMiss: ++s.cold_misses; break;
        case Outcome::ReplacementMiss: ++s.replacement_misses; break;
        case Outcome::Hit: break;
      }
    }
    chunk.clear();
  };

  std::vector<i64> z(nest.depth());
  ir::for_each_point(nest, [&](std::span<const i64> point) {
    for (std::size_t d = 0; d < z.size(); ++d) z[d] = point[d] - nest.loops[d].lower;
    chunk.push_back(z);
    if (chunk.size() >= kChunkPoints) flush();
  });
  flush();
  for (std::size_t r = 0; r < n_refs; ++r) per_ref.back() += per_ref[r];
  return per_ref;
}

}  // namespace cmetile::cme

#include "cme/analysis.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "cme/eval_cache.hpp"
#include "obs/metrics.hpp"
#include "support/contracts.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"

namespace cmetile::cme {

namespace {

/// Batch-granularity telemetry: one call per classify_batch, recording the
/// merged per-shard probe-counter delta. Keeps the disabled cost to one
/// branch per batch (hundreds of points), never per point.
void record_batch_telemetry(std::size_t n_points, bool used_simd,
                            std::span<const ProbeCounters> shard_counters) {
  if (!obs::enabled()) return;
  ProbeCounters delta;
  for (const ProbeCounters& c : shard_counters) delta += c;
  obs::Registry& reg = obs::Registry::instance();
  static obs::Counter& batches = reg.counter("cme.classify.batches");
  static obs::Counter& points = reg.counter("cme.classify.points");
  static obs::Counter& simd_batches = reg.counter("cme.classify.simd_batches");
  static obs::Counter& scalar_batches = reg.counter("cme.classify.scalar_batches");
  static obs::Counter& probes = reg.counter("cme.probes");
  static obs::Counter& probe_hits = reg.counter("cme.probe_cache.hits");
  static obs::Histogram& batch_sizes = reg.histogram("cme.classify.batch_size");
  batches.increment();
  points.add((i64)n_points);
  (used_simd ? simd_batches : scalar_batches).increment();
  probes.add(delta.probes);
  probe_hits.add(delta.cache_hits);
  batch_sizes.observe((i64)n_points);
}

/// Same-array accesses with a concrete replacement value in
/// [0, line_bytes) touch R_A's own line — the only touches of R_A's set
/// that do not interfere (arrays are line-aligned and disjoint). The one
/// definition of the own-line rule, shared by the tiny-box enumeration
/// and same_array_box_interferes.
inline bool own_line_value(i64 value, i64 line_bytes) {
  return value >= 0 && value < line_bytes;
}

/// Probe-cache entry kinds (detail::ProbeEntry::kind).
constexpr std::uint8_t kEmptiness = 0;
constexpr std::uint8_t kSameArrayInterference = 1;

/// Probe the verdict memo for (point, ref). Slots are addressed by the
/// pair alone (the footprint is not known before evaluation); a slot
/// hits when its stored footprint tiles match the current genome's
/// (`cur_tiles`, one tile size per dim). On a miss, returns a victim
/// slot index for the caller to fill after evaluation — first empty
/// slot in the window, else a salt-rotated occupant so distinct
/// footprint variants of a hot pair do not keep evicting one another —
/// plus the tag to stamp via `tag`. Nothing is written here. The epoch
/// is folded into the tag (TagTable contract), so entries from a
/// previous binding never match; the entry's own epoch field is still
/// compared to make a cross-epoch 64-bit tag collision harmless.
std::size_t verdict_probe(detail::VerdictTable& table, std::uint32_t point, std::uint16_t ref,
                          std::uint32_t epoch, std::span<const i64> cur_tiles, std::uint64_t salt,
                          bool& hit, std::uint64_t& tag) {
  hit = false;
  std::uint64_t h =
      0xA0761D6478BD642FULL ^ ((std::uint64_t)epoch << 40) ^ ((std::uint64_t)point << 20) ^ ref;
  h *= 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  if (h == 0) h = 1;
  tag = h;

  const std::size_t mask = table.tags.size() - 1;
  constexpr std::size_t kWindow = 8;
  std::size_t victim = SIZE_MAX;
  for (std::size_t w = 0; w < kWindow; ++w) {
    const std::size_t idx = (h + w) & mask;
    const std::uint64_t t = table.tags[idx];
    if (t == 0) {
      if (victim == SIZE_MAX) victim = idx;
      continue;
    }
    if (t != h) continue;
    const detail::VerdictEntry& entry = table.entries[idx];
    if (entry.epoch != epoch || entry.point != point || entry.ref != ref) continue;
    bool match = true;
    std::size_t i = 0;
    for (std::uint32_t m = entry.dim_mask; m != 0; m &= m - 1) {
      match = match && entry.tiles[i++] == cur_tiles[(std::size_t)std::countr_zero(m)];
    }
    if (match) {
      hit = true;
      return idx;
    }
  }
  return victim != SIZE_MAX ? victim : ((h + salt % kWindow) & mask);
}

}  // namespace

NestAnalysis::NestAnalysis(const ir::LoopNest& nest, ir::MemoryLayout layout,
                           cache::CacheConfig cache, transform::TileVector tiles,
                           AnalysisOptions options)
    : nest_(&nest),
      layout_(std::move(layout)),
      cache_(cache),
      tiles_(std::move(tiles)),
      space_(nest.trip_counts(), tiles_),
      reuse_(options.shared_reuse != nullptr
                 ? *options.shared_reuse
                 : reuse::analyze_reuse(nest, layout_, cache.line_bytes)),
      options_(options),
      trips_(nest.trip_counts()),
      rectangular_(nest.rectangular()) {
  cache_.validate();
  nest.validate();
  expects(tiles_.t.size() == nest.depth(), "NestAnalysis: tile vector arity mismatch");

  const std::size_t k = nest.depth();
  refs_.reserve(nest.refs.size());
  for (const ir::Reference& ref : nest.refs) {
    RefData data;
    data.array = ref.array;
    // 0-based address polynomial: substitute i_d = lower_d + z_d.
    const ir::LinExpr addr = layout_.address_expr(nest, ref);
    data.coeffs0.assign(addr.coeffs().begin(), addr.coeffs().end());
    data.base0 = addr.constant_term();
    for (std::size_t d = 0; d < k; ++d) data.base0 += data.coeffs0[d] * nest.loops[d].lower;
    // Tiled coordinates: z_d = T_d * t_d + o_d.
    data.tiled_coeffs.resize(2 * k);
    for (std::size_t d = 0; d < k; ++d) {
      data.tiled_coeffs[d] = data.coeffs0[d] * space_.tile(d);
      data.tiled_coeffs[k + d] = data.coeffs0[d];
    }
    refs_.push_back(std::move(data));
  }

  // Pre-resolve the reuse generators for the gather loop: one candidate
  // per (generator, ±) with signs applied and structural duplicates
  // (same source, same signed vector — they always produce the same q)
  // removed. q(z) = z − steps is a bijection of the tiled coordinates, so
  // dropping duplicates here preserves the candidate set at every point.
  prepared_reuse_.resize(refs_.size());
  for (std::size_t r = 0; r < refs_.size(); ++r) {
    std::vector<std::pair<std::size_t, std::vector<i64>>> seen;
    prepared_reuse_[r].reserve(2 * reuse_.per_ref[r].size());
    for (const reuse::ReuseCandidate& rc : reuse_.per_ref[r]) {
      for (const int sign : {+1, -1}) {
        std::vector<i64> signed_vec(k);
        for (std::size_t d = 0; d < k; ++d) signed_vec[d] = sign * rc.vector[d];
        bool duplicate = false;
        for (const auto& [source, vec] : seen) {
          if (source == rc.source_ref && vec == signed_vec) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        PreparedReuse prepared;
        prepared.source = rc.source_ref;
        // Address displacement along the vector for every reference:
        // address_at(b, z − steps) = pt_addr[b] − addr_delta_by_ref[b],
        // so candidate endpoints never materialize coordinates.
        prepared.addr_delta_by_ref.resize(refs_.size());
        for (std::size_t b = 0; b < refs_.size(); ++b) {
          i64 delta = 0;
          for (std::size_t d = 0; d < k; ++d) delta += refs_[b].coeffs0[d] * signed_vec[d];
          prepared.addr_delta_by_ref[b] = delta;
        }
        prepared.addr_delta = prepared.addr_delta_by_ref[rc.source_ref];
        for (std::size_t d = 0; d < k; ++d) {
          if (signed_vec[d] != 0)
            prepared.steps.push_back(ReuseStep{(std::uint32_t)d, signed_vec[d]});
        }
        prepared_reuse_[r].push_back(std::move(prepared));
        seen.emplace_back(rc.source_ref, std::move(signed_vec));
      }
    }
  }

  line_shift_ = std::countr_zero((std::uint64_t)cache_.line_bytes);
  sets_ = cache_.sets();
  set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : -1;
  simd_ok_ = true;
  for (const i64 trip : trips_) {
    if (trip >= (i64(1) << 52)) simd_ok_ = false;
  }
}

bool NestAnalysis::source_in_domain(std::span<const i64> z, const PreparedReuse& rc,
                                    std::vector<i64>& point) const {
  const std::size_t k = nest_->depth();
  point.resize(k);
  for (std::size_t d = 0; d < k; ++d) point[d] = z[d] + nest_->loops[d].lower;
  for (const ReuseStep& st : rc.steps) point[st.dim] -= st.delta;
  return nest_->contains(point);
}

i64 NestAnalysis::address_at(std::size_t ref, std::span<const i64> z) const {
  const RefData& data = refs_[ref];
  i64 addr = data.base0;
  for (std::size_t d = 0; d < z.size(); ++d) addr += data.coeffs0[d] * z[d];
  return addr;
}

detail::ProbeEntry* NestAnalysis::find_probe_slot(Scratch& scratch, std::uint8_t kind,
                                                  std::size_t ref, std::uint64_t dim_mask,
                                                  i64 base, std::span<const i64> extents,
                                                  std::span<const i64> tile_key,
                                                  bool& hit) const {
  hit = false;
  detail::ProbeTable& table = *scratch.probe_cache;
  if (table.empty()) {
    std::size_t want = options_.probe_cache_capacity;
    if (scratch.probe_cache_hint > 0) want = std::min(want, scratch.probe_cache_hint);
    table.reset(std::bit_ceil(std::max<std::size_t>(want, 64)));
  }
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ ((std::uint64_t)kind << 32) ^ (std::uint64_t)ref;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(scratch.epoch);  // TagTable contract: stale entries never tag-match
  mix(dim_mask);
  mix((std::uint64_t)base);
  for (const i64 v : extents) mix((std::uint64_t)v);
  for (const i64 v : tile_key) mix((std::uint64_t)v);
  if (h == 0) h = 1;

  const std::size_t mask = table.tags.size() - 1;
  const std::size_t n = extents.size();
  const std::size_t nt = tile_key.size();
  constexpr std::size_t kWindow = 4;  // linear-probe window; then evict
  std::size_t empty_slot = SIZE_MAX;
  for (std::size_t w = 0; w < kWindow; ++w) {
    const std::size_t idx = (h + w) & mask;
    const std::uint64_t t = table.tags[idx];
    if (t == 0) {
      if (empty_slot == SIZE_MAX) empty_slot = idx;
      continue;
    }
    if (t != h) continue;
    detail::ProbeEntry& entry = table.entries[idx];
    if (entry.epoch == scratch.epoch && entry.kind == kind && entry.ref == (std::uint32_t)ref &&
        entry.dim_mask == dim_mask && entry.base == base && entry.ndims == (std::uint8_t)n &&
        entry.n_tiles == (std::uint8_t)nt &&
        std::equal(extents.begin(), extents.end(), entry.extents.begin()) &&
        std::equal(tile_key.begin(), tile_key.end(), entry.tiles.begin())) {
      hit = true;
      return &entry;
    }
  }
  // Miss: fill an empty window slot, or evict the home slot. The caller
  // assigns `verdict` after computing it.
  const std::size_t slot_idx = empty_slot != SIZE_MAX ? empty_slot : (h & mask);
  table.tags[slot_idx] = h;
  detail::ProbeEntry& slot = table.entries[slot_idx];
  slot.kind = kind;
  slot.ref = (std::uint32_t)ref;
  slot.epoch = scratch.epoch;
  slot.dim_mask = dim_mask;
  slot.base = base;
  slot.ndims = (std::uint8_t)n;
  slot.n_tiles = (std::uint8_t)nt;
  std::copy(extents.begin(), extents.end(), slot.extents.begin());
  std::copy(tile_key.begin(), tile_key.end(), slot.tiles.begin());
  return &slot;
}

Outcome NestAnalysis::classify(std::span<const i64> z, std::size_t ref) const {
  Scratch scratch;  // fresh per call: the un-batched, uncached reference path
  prepare_point(z, scratch);
  const Outcome outcome = classify_impl(z, ref, scratch);
  counters_ += scratch.counters;
  return outcome;
}

Outcome NestAnalysis::classify_store_generation(std::span<const i64> z, std::size_t ref) const {
  expects(ref < nest_->refs.size() && nest_->refs[ref].kind == ir::AccessKind::Write,
          "classify_store_generation: ref must be a store");
  Scratch scratch;
  scratch.stores_only = true;
  prepare_point(z, scratch);
  const Outcome outcome = classify_impl(z, ref, scratch);
  counters_ += scratch.counters;
  return outcome;
}

void NestAnalysis::prepare_point(std::span<const i64> z, Scratch& scratch) const {
  expects(z.size() == nest_->depth(), "classify: point arity mismatch");
  space_.to_tiled_into(z, scratch.p_to_buf);
  const std::size_t n_refs = refs_.size();
  scratch.pt_addr_buf.resize(n_refs);
  scratch.pt_line_buf.resize(n_refs);
  scratch.pt_set_buf.resize(n_refs);
  for (std::size_t b = 0; b < n_refs; ++b) {
    const i64 addr = address_at(b, z);
    // line_bytes is a validated power of two: the arithmetic shift is
    // exactly floor_div.
    const i64 line = addr >> line_shift_;
    scratch.pt_addr_buf[b] = addr;
    scratch.pt_line_buf[b] = line;
    scratch.pt_set_buf[b] = set_mask_ >= 0 ? (line & set_mask_) : floor_mod(line, sets_);
  }
  scratch.p_to = scratch.p_to_buf.data();
  scratch.pt_addr = scratch.pt_addr_buf.data();
  scratch.pt_line = scratch.pt_line_buf.data();
  scratch.pt_set = scratch.pt_set_buf.data();
}

void NestAnalysis::prepare_block(std::span<const std::vector<i64>> points, std::size_t first,
                                 std::size_t count, bool addresses, Scratch& scratch) const {
  const std::size_t k = nest_->depth();
  const std::size_t n_refs = refs_.size();
  scratch.blk_p_to.resize(4 * 2 * k);
  scratch.lane_buf.resize(4 * k);
  if (addresses) {
    scratch.blk_addr.resize(4 * n_refs);
    scratch.blk_line.resize(4 * n_refs);
    scratch.blk_set.resize(4 * n_refs);
  }
  // Transpose the points to lanes. Tail lanes repeat the last point:
  // duplicate computation, but no writes for i >= count, so outcomes
  // cannot depend on the block's phase within the shard.
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<i64>& zp = points[first + std::min(i, count - 1)];
    expects(zp.size() == k, "classify_batch: point arity mismatch");
    for (std::size_t d = 0; d < k; ++d) scratch.lane_buf[d * 4 + i] = zp[d];
  }
  // Tiled coordinates: one exact floor div/mod per dimension for all four
  // lanes (z is nonnegative and below the 2^52 guard, so the f64 path is
  // bit-identical to the scalar / and %).
  alignas(32) i64 tmp_q[4];
  alignas(32) i64 tmp_r[4];
  for (std::size_t d = 0; d < k; ++d) {
    simd::I64x4 q, r;
    simd::floor_div_mod_u52(simd::load(&scratch.lane_buf[d * 4]), space_.tile(d), q, r);
    simd::store(tmp_q, q);
    simd::store(tmp_r, r);
    for (std::size_t i = 0; i < count; ++i) {
      scratch.blk_p_to[i * 2 * k + d] = tmp_q[i];
      scratch.blk_p_to[i * 2 * k + k + d] = tmp_r[i];
    }
  }
  if (!addresses) return;
  alignas(32) i64 tmp[4];
  for (std::size_t b = 0; b < n_refs; ++b) {
    const RefData& data = refs_[b];
    simd::I64x4 addr = simd::splat(data.base0);
    for (std::size_t d = 0; d < k; ++d) {
      addr = simd::add(addr,
                       simd::mul(simd::splat(data.coeffs0[d]), simd::load(&scratch.lane_buf[d * 4])));
    }
    const simd::I64x4 line = simd::shr_arith(addr, line_shift_);
    simd::store(tmp, addr);
    for (std::size_t i = 0; i < count; ++i) scratch.blk_addr[i * n_refs + b] = tmp[i];
    simd::store(tmp, line);
    for (std::size_t i = 0; i < count; ++i) scratch.blk_line[i * n_refs + b] = tmp[i];
    if (set_mask_ >= 0) {
      simd::store(tmp, simd::bit_and(line, simd::splat(set_mask_)));
      for (std::size_t i = 0; i < count; ++i) scratch.blk_set[i * n_refs + b] = tmp[i];
    } else {
      for (std::size_t i = 0; i < count; ++i)
        scratch.blk_set[i * n_refs + b] = floor_mod(scratch.blk_line[i * n_refs + b], sets_);
    }
  }
}

void NestAnalysis::bind_block_row(std::size_t i, bool addresses, Scratch& scratch) const {
  const std::size_t k = nest_->depth();
  scratch.p_to = &scratch.blk_p_to[i * 2 * k];
  if (addresses) {
    const std::size_t n_refs = refs_.size();
    scratch.pt_addr = &scratch.blk_addr[i * n_refs];
    scratch.pt_line = &scratch.blk_line[i * n_refs];
    scratch.pt_set = &scratch.blk_set[i * n_refs];
  }
}

std::vector<Outcome> NestAnalysis::classify_batch(std::span<const std::vector<i64>> points,
                                                  int shards) const {
  const std::size_t n_refs = refs_.size();
  std::vector<Outcome> out(points.size() * n_refs, Outcome::Hit);
  if (points.empty() || n_refs == 0) return out;

  // Inside an already-parallel region (the GA evaluating its population)
  // nested parallel_for is serialized: run a single shard there, so the
  // whole sample shares one scratch and one probe cache instead of
  // paying per-shard setup for no concurrency.
  const std::size_t want = shards > 0 ? (std::size_t)shards
                           : parallel_active() ? 1
                                               : (std::size_t)parallel_threads();
  const std::size_t n_shards = std::min(std::max<std::size_t>(want, 1), points.size());
  std::vector<ProbeCounters> shard_counters(n_shards);
  const bool use_simd = options_.simd && simd_ok_;

  // Contiguous shards: every worker touches a disjoint slice of `out` and
  // its own Scratch, so the parallel region is write-race-free.
  parallel_for(n_shards, [&](std::size_t s) {
    Scratch scratch;
    // dim_mask keys need one bit per tiled dimension; deeper nests (never
    // seen in practice) bypass the cache rather than alias keys.
    scratch.use_cache = options_.probe_cache && space_.tiled_dims() <= 64;
    const std::size_t lo = points.size() * s / n_shards;
    const std::size_t hi = points.size() * (s + 1) / n_shards;
    // Size the probe table to the shard's workload: small batches (the
    // GA's 164-point samples) should not pay a full-capacity table init.
    scratch.probe_cache_hint = (hi - lo) * n_refs * 4;
    for (std::size_t p = lo; p < hi;) {
      const std::size_t block = use_simd ? std::min<std::size_t>(4, hi - p) : 1;
      if (use_simd) prepare_block(points, p, block, /*addresses=*/true, scratch);
      for (std::size_t i = 0; i < block; ++i) {
        if (use_simd) {
          bind_block_row(i, /*addresses=*/true, scratch);
        } else {
          prepare_point(points[p + i], scratch);
        }
        for (std::size_t r = 0; r < n_refs; ++r) {
          out[(p + i) * n_refs + r] = classify_impl(points[p + i], r, scratch);
        }
      }
      p += block;
    }
    shard_counters[s] = scratch.counters;
  });
  for (const ProbeCounters& c : shard_counters) counters_ += c;
  record_batch_telemetry(points.size(), use_simd, shard_counters);
  return out;
}

std::vector<Outcome> NestAnalysis::classify_batch(std::span<const std::vector<i64>> points,
                                                  EvalCache& cache, std::size_t level,
                                                  int shards) const {
  const std::size_t n_refs = refs_.size();
  std::vector<Outcome> out(points.size() * n_refs, Outcome::Hit);
  if (points.empty() || n_refs == 0) return out;
  expects(nest_->depth() <= 32, "EvalCache: nest too deep for S0 masks");

  detail::EvalLevel& lv = cache.level(level);
  {
    std::lock_guard lock(lv.mutex);
    bind_eval_level(lv, points);
  }
  // Bound state is immutable until the next bind (same binding => no-op),
  // so shards read it without the lock.
  const detail::EvalPrepared& prep = lv.prepared;
  const std::uint32_t epoch = lv.epoch;
  const EvalCacheOptions& copts = cache.options();

  const std::size_t want = shards > 0 ? (std::size_t)shards
                           : parallel_active() ? 1
                                               : (std::size_t)parallel_threads();
  const std::size_t n_shards = std::min(std::max<std::size_t>(want, 1), points.size());
  std::vector<ProbeCounters> shard_counters(n_shards);

  // Per-genome warm tables, shared read-only by every shard: z's tiled
  // coordinates per point and the tiled coordinates of z − delta per
  // (point, distinct step). One division per cell serves every
  // (ref, entry) sharing the step — the warm gather is pure lookups.
  const std::size_t k = nest_->depth();
  const std::size_t nd = prep.dstep_dim.size();
  std::vector<i64> zto, qt_tab, qo_tab;
  // Scalar on purpose, independent of options_.simd: at warm-table size
  // (points × (depth + dsteps) divisions per genome) the hardware divider
  // beats the u52 lanes plus their transpose, measurably so on the MM GA
  // (bench_perf_solver BM_GaSolveFull). The SIMD variant stays for the
  // cold SoA prepare, where the work amortizes across full blocks.
  build_warm_tables(points, prep, false, zto, qt_tab, qo_tab);

  // Current tile sizes per dim (the verdict-memo footprint comparand)
  // and a per-genome salt for victim rotation in verdict_probe.
  std::vector<i64> cur_tiles(k);
  std::uint64_t tile_salt = 0x2545F4914F6CDD1DULL;
  for (std::size_t d = 0; d < k; ++d) {
    cur_tiles[d] = space_.tile(d);
    tile_salt = (tile_salt ^ (std::uint64_t)cur_tiles[d]) * 0x100000001B3ULL;
  }

  // Persistent tables are sized to the binding's unresolved-pair volume
  // (clamped by the configured capacities): kernels whose pre-verdicts
  // resolve most pairs get small, cache-resident tables instead of
  // scattering every lookup across the maximum-capacity arrays. The
  // factors leave room for several footprint variants per pair (verdict
  // memo) and the box population a pair's probes generate across genomes
  // (probe table). A table kept from an earlier, smaller binding grows.
  const std::size_t n_unres = std::max<std::size_t>(prep.n_unresolved, 1);
  const std::size_t verdict_size =
      std::bit_ceil(std::max<std::size_t>(std::min(n_unres * 4, copts.verdict_capacity), 64));
  const std::size_t probe_size =
      std::bit_ceil(std::max<std::size_t>(std::min(n_unres * 16, copts.probe_capacity), 64));

  parallel_for(n_shards, [&](std::size_t s) {
    detail::EvalWorker* worker = lv.acquire();
    Scratch scratch;
    scratch.use_cache = options_.probe_cache && space_.tiled_dims() <= 64;
    scratch.epoch = epoch;
    EvalCacheStats stats;
    const std::size_t lo = points.size() * s / n_shards;
    const std::size_t hi = points.size() * (s + 1) / n_shards;
    scratch.probe_cache_hint = (hi - lo) * n_refs * 4;
    // Route probes into the worker's persistent table — it must serve
    // the whole run, not one batch.
    if (copts.probe_memo && scratch.use_cache) {
      if (worker->probes.tags.size() < probe_size) worker->probes.reset(probe_size);
      scratch.probe_cache = &worker->probes;
      scratch.eval_stats = &stats;
    }
    const bool memo = copts.verdict_memo;
    if (memo && worker->verdicts.tags.size() < verdict_size) {
      worker->verdicts.reset(verdict_size);
    }
    for (std::size_t pi = lo; pi < hi; ++pi) {
      // Bind-time verdicts first: a fully pre-resolved point needs no
      // classification at all (the dominant case on stencil kernels,
      // where same-iteration group reuse decides most pairs).
      if (prep.point_unresolved[pi] == 0) {
        for (std::size_t j = pi * n_refs; j < (pi + 1) * n_refs; ++j) {
          out[j] = (Outcome)prep.pre_verdict[j];
        }
        continue;
      }
      // Tiled coordinates and addresses/lines/sets come from the shared
      // per-genome tables and the binding's prepared tables.
      scratch.p_to = &zto[pi * 2 * k];
      scratch.pt_addr = &prep.pt_addr[pi * n_refs];
      scratch.pt_line = &prep.pt_line[pi * n_refs];
      scratch.pt_set = &prep.pt_set[pi * n_refs];
      const i64* qt_row = qt_tab.data() + pi * nd;
      const i64* qo_row = qo_tab.data() + pi * nd;
      for (std::size_t r = 0; r < n_refs; ++r) {
        const std::size_t pr = pi * n_refs + r;
        const std::uint8_t pv = prep.pre_verdict[pr];
        if (pv != detail::kNoPreVerdict) {
          out[pr] = (Outcome)pv;
          continue;
        }
        std::size_t slot = SIZE_MAX;
        std::uint64_t tag = 0;
        if (memo) {
          ++stats.verdict_lookups;
          bool hit = false;
          slot = verdict_probe(worker->verdicts, (std::uint32_t)pi, (std::uint16_t)r, epoch,
                               cur_tiles, tile_salt, hit, tag);
          if (hit) {
            ++stats.verdict_hits;
            out[pr] = (Outcome)worker->verdicts.entries[slot].verdict;
            continue;
          }
        }
        std::uint32_t footprint = 0;
        const Outcome outcome = classify_warm(r, scratch, prep, pr, qt_row, qo_row, &footprint);
        out[pr] = outcome;
        if (slot != SIZE_MAX && std::popcount(footprint) <= (int)detail::kMaxMemoDims) {
          detail::VerdictEntry& entry = worker->verdicts.entries[slot];
          worker->verdicts.tags[slot] = tag;
          entry.point = (std::uint32_t)pi;
          entry.epoch = epoch;
          entry.dim_mask = footprint;
          entry.ref = (std::uint16_t)r;
          entry.verdict = (std::uint8_t)outcome;
          std::size_t i = 0;
          for (std::uint32_t m = footprint; m != 0; m &= m - 1) {
            entry.tiles[i++] = cur_tiles[(std::size_t)std::countr_zero(m)];
          }
        }
      }
    }
    worker->stats += stats;
    shard_counters[s] = scratch.counters;
    lv.release(worker);
  });
  for (const ProbeCounters& c : shard_counters) counters_ += c;
  // The warm path is scalar by design (see build_warm_tables above).
  record_batch_telemetry(points.size(), /*used_simd=*/false, shard_counters);
  return out;
}

void NestAnalysis::bind_eval_level(detail::EvalLevel& level,
                                   std::span<const std::vector<i64>> points) const {
  const std::size_t k = nest_->depth();
  const std::size_t n_refs = refs_.size();

  // Binding digest: everything classification depends on besides the tile
  // vector (eval_cache.hpp). Fields are folded in a fixed order; sizes are
  // folded before elements so concatenations cannot alias.
  std::uint64_t lo = kFnvOffsetBasis;
  const auto fold = [&lo](std::uint64_t v) { lo = fnv1a_u64(v, lo); };
  fold(k);
  for (const i64 trip : trips_) fold((std::uint64_t)trip);
  // Non-rectangular domains with the same bounding box differ in which
  // candidate sources exist: fold the affine bounds in. Rectangular nests
  // skip this so their digests are unchanged.
  if (!rectangular_) {
    for (const ir::Loop& loop : nest_->loops) {
      fold((std::uint64_t)loop.lower);
      fold(loop.has_affine_lower() ? 1u : 0u);
      if (loop.has_affine_lower()) {
        for (const i64 c : loop.lower_bound.coeffs()) fold((std::uint64_t)c);
        fold((std::uint64_t)loop.lower_bound.constant_term());
      }
      fold(loop.has_affine_upper() ? 1u : 0u);
      if (loop.has_affine_upper()) {
        for (const i64 c : loop.upper_bound.coeffs()) fold((std::uint64_t)c);
        fold((std::uint64_t)loop.upper_bound.constant_term());
      }
    }
  }
  fold((std::uint64_t)cache_.line_bytes);
  fold((std::uint64_t)sets_);
  fold((std::uint64_t)cache_.way_bytes());
  fold((std::uint64_t)cache_.associativity);
  fold((std::uint64_t)options_.probe_work_cap);
  fold((std::uint64_t)options_.enumerate_cap);
  fold(options_.binding_salt);
  fold(n_refs);
  for (const RefData& data : refs_) {
    fold(data.array);
    fold((std::uint64_t)data.base0);
    for (const i64 c : data.coeffs0) fold((std::uint64_t)c);
  }
  for (std::size_t r = 0; r < n_refs; ++r) {
    fold(prepared_reuse_[r].size());
    for (const PreparedReuse& rc : prepared_reuse_[r]) {
      fold(rc.source);
      fold(rc.steps.size());
      for (const ReuseStep& st : rc.steps) {
        fold(st.dim);
        fold((std::uint64_t)st.delta);
      }
    }
  }
  // Sample identity: span address + length fast path (the caller keeps the
  // sample stable — eval_cache.hpp contract); content hash otherwise.
  const std::vector<i64>* pts_ptr = points.data();
  if (!(level.bound && level.points_ptr == pts_ptr && level.points_len == points.size())) {
    std::uint64_t ph = fnv1a_u64(points.size());
    for (const std::vector<i64>& z : points) {
      for (const i64 v : z) ph = fnv1a_u64((std::uint64_t)v, ph);
    }
    level.points_hash = ph;
    level.points_ptr = pts_ptr;
    level.points_len = points.size();
  }
  fold(level.points_hash);
  // Second digest over different bases: one 64-bit collision cannot
  // silently alias two bindings.
  std::uint64_t hi = fnv1a_u64(lo, 0x84222325CBF29CE4ULL);
  hi = fnv1a_u64(level.points_hash, hi);

  if (level.bound && level.binding_lo == lo && level.binding_hi == hi) return;
  level.binding_lo = lo;
  level.binding_hi = hi;
  level.bound = true;
  ++level.epoch;  // lazily invalidates every worker's memo + probe entries
  ++level.rebinds;

  // Rebuild the tile-independent prepared tables (scalar: runs once per
  // binding, not once per genome).
  detail::EvalPrepared& prep = level.prepared;
  const std::size_t total = points.size() * n_refs;
  prep.pt_addr.resize(total);
  prep.pt_line.resize(total);
  prep.pt_set.resize(total);
  prep.s0_mask.assign(total, 0);
  prep.pre_verdict.assign(total, detail::kNoPreVerdict);
  prep.point_unresolved.assign(points.size(), 0);
  prep.n_unresolved = 0;
  prep.cand_offsets.clear();
  prep.cand_offsets.reserve(total + 1);
  prep.cand_entries.clear();
  prep.cand_flags.clear();
  prep.q_lines_off.clear();
  prep.q_lines.clear();
  prep.pair_flags.assign(total, 0);
  prep.p_lines_off.clear();
  prep.p_lines_off.reserve(total + 1);
  prep.p_lines.clear();
  // Distinct (dim, delta) steps and per-entry index lists — shared by
  // every point, the basis of the per-genome warm tables (classify_warm).
  prep.dstep_dim.clear();
  prep.dstep_delta.clear();
  prep.entry_dstep_off.assign(n_refs, {});
  prep.entry_dstep.assign(n_refs, {});
  for (std::size_t r = 0; r < n_refs; ++r) {
    std::vector<std::uint32_t>& offs = prep.entry_dstep_off[r];
    std::vector<std::uint16_t>& data = prep.entry_dstep[r];
    offs.reserve(prepared_reuse_[r].size() + 1);
    for (const PreparedReuse& rc : prepared_reuse_[r]) {
      offs.push_back((std::uint32_t)data.size());
      for (const ReuseStep& st : rc.steps) {
        std::size_t s = 0;
        for (; s < prep.dstep_dim.size(); ++s) {
          if (prep.dstep_dim[s] == st.dim && prep.dstep_delta[s] == st.delta) break;
        }
        if (s == prep.dstep_dim.size()) {
          expects(s <= 0xFFFF, "EvalCache: too many distinct reuse steps");
          prep.dstep_dim.push_back(st.dim);
          prep.dstep_delta.push_back(st.delta);
        }
        data.push_back((std::uint16_t)s);
      }
    }
    offs.push_back((std::uint32_t)data.size());
  }
  std::vector<i64> lines;    // distinct-line scratch for the endpoint scans
  std::vector<i64> q_point;  // original-coordinate scratch for domain checks
  for (std::size_t p = 0; p < points.size(); ++p) {
    const std::vector<i64>& z = points[p];
    expects(z.size() == k, "classify_batch: point arity mismatch");
    for (std::size_t b = 0; b < n_refs; ++b) {
      const i64 addr = address_at(b, z);
      const i64 line = addr >> line_shift_;
      prep.pt_addr[p * n_refs + b] = addr;
      prep.pt_line[p * n_refs + b] = line;
      prep.pt_set[p * n_refs + b] = set_mask_ >= 0 ? (line & set_mask_) : floor_mod(line, sets_);
    }
    for (std::size_t r = 0; r < n_refs; ++r) {
      const std::size_t pr = p * n_refs + r;
      prep.cand_offsets.push_back((std::uint32_t)prep.cand_entries.size());
      const i64 line_a = prep.pt_line[pr];
      std::uint32_t mask = 0;
      const std::vector<PreparedReuse>& list = prepared_reuse_[r];
      expects(list.size() <= 0xFFFF, "EvalCache: too many reuse candidates per ref");
      for (std::size_t e = 0; e < list.size(); ++e) {
        const PreparedReuse& rc = list[e];
        // The tile-independent filters: inside-bounds and the compulsory
        // same-line check. Survivors' stepped dims form the S0 mask.
        bool inside = true;
        for (const ReuseStep& st : rc.steps) {
          const i64 qd = z[st.dim] - st.delta;
          if (qd < 0 || qd >= trips_[st.dim]) {
            inside = false;
            break;
          }
        }
        if (!inside) continue;
        if (((prep.pt_addr[p * n_refs + rc.source] - rc.addr_delta) >> line_shift_) != line_a)
          continue;
        // Domain membership of q is also tile-independent: filter here so
        // the warm path never sees bounding-box-only sources.
        if (!rectangular_ && !source_in_domain(z, rc, q_point)) continue;
        prep.cand_entries.push_back((std::uint16_t)e);
        for (const ReuseStep& st : rc.steps) mask |= 1u << st.dim;
      }
      prep.s0_mask[pr] = mask;
      // Same-iteration theorem: a candidate has cmp == 0 iff its reuse
      // vector is zero (steps hold only NONZERO dims, and a nonzero step
      // forces q != z in that tiled dim), so the cmp == 0 candidate set
      // is tile-independent, its interference scans read only body
      // positions at z (interval_interference_free's cmp == 0 branch),
      // and q_to == p_to sorts those candidates before every
      // cross-iteration one. Hence, under EVERY tile vector:
      //   * some same-iteration candidate passes its scan  => Hit;
      //   * no stepped survivor at all => the candidate set never grows:
      //     all-fail => ReplacementMiss, no candidate => ColdMiss.
      // Everything needed is in the prepared point tables — resolve now,
      // once per binding, instead of once per genome.
      bool any_same_iter = false, sure_hit = false;
      const i64 set_a = prep.pt_set[pr];
      const std::size_t assoc = (std::size_t)cache_.associativity;
      for (std::uint32_t ei = prep.cand_offsets[pr];
           ei < (std::uint32_t)prep.cand_entries.size() && !sure_hit; ++ei) {
        const PreparedReuse& rc = list[prep.cand_entries[ei]];
        if (!rc.steps.empty() || rc.source >= r) continue;
        any_same_iter = true;
        lines.clear();
        bool pass = true;
        for (std::size_t b = rc.source + 1; b < r && pass; ++b) {
          if (prep.pt_set[p * n_refs + b] != set_a) continue;
          const i64 lb = prep.pt_line[p * n_refs + b];
          if (lb == line_a) continue;
          if (std::find(lines.begin(), lines.end(), lb) == lines.end()) {
            lines.push_back(lb);
            if (lines.size() >= assoc) pass = false;
          }
        }
        sure_hit = pass;
      }
      if (sure_hit) {
        prep.pre_verdict[pr] = (std::uint8_t)Outcome::Hit;
      } else if (mask == 0) {
        prep.pre_verdict[pr] =
            (std::uint8_t)(any_same_iter ? Outcome::ReplacementMiss : Outcome::ColdMiss);
      } else {
        prep.point_unresolved[p] = 1;
      }
      // Endpoint interference scans for unresolved pairs — also
      // tile-independent (interval_interference_free's q-endpoint uses
      // pt_addr − addr_delta_by_ref, its p-endpoint the z tables), so
      // classify_warm starts every cross-iteration candidate from these
      // precomputed distinct-line lists and only probes the interior.
      // Lists are capped below assoc: reaching assoc alone is a fail bit.
      const bool unresolved = prep.pre_verdict[pr] == detail::kNoPreVerdict;
      if (unresolved) ++prep.n_unresolved;
      prep.p_lines_off.push_back((std::uint32_t)prep.p_lines.size());
      if (unresolved) {
        lines.clear();
        bool fail = false;
        for (std::size_t b = 0; b < r && !fail; ++b) {
          if (prep.pt_set[p * n_refs + b] != set_a) continue;
          const i64 lb = prep.pt_line[p * n_refs + b];
          if (lb == line_a) continue;
          if (std::find(lines.begin(), lines.end(), lb) == lines.end()) {
            lines.push_back(lb);
            if (lines.size() >= assoc) fail = true;
          }
        }
        if (fail) {
          prep.pair_flags[pr] |= detail::kPairPFail;
        } else {
          prep.p_lines.insert(prep.p_lines.end(), lines.begin(), lines.end());
        }
      }
      for (std::uint32_t ei = prep.cand_offsets[pr];
           ei < (std::uint32_t)prep.cand_entries.size(); ++ei) {
        const PreparedReuse& rc = list[prep.cand_entries[ei]];
        std::uint8_t flags = 0;
        prep.q_lines_off.push_back((std::uint32_t)prep.q_lines.size());
        if (rc.steps.empty()) {
          flags |= detail::kCandSameIter;
        } else if (unresolved) {
          lines.clear();
          bool fail = false;
          for (std::size_t b = rc.source + 1; b < n_refs && !fail; ++b) {
            const i64 addr = prep.pt_addr[p * n_refs + b] - rc.addr_delta_by_ref[b];
            const i64 lb = floor_div(addr, cache_.line_bytes);
            if (floor_mod(lb, sets_) != set_a || lb == line_a) continue;
            if (std::find(lines.begin(), lines.end(), lb) == lines.end()) {
              lines.push_back(lb);
              if (lines.size() >= assoc) fail = true;
            }
          }
          if (fail) {
            flags |= detail::kCandQFail;
          } else {
            prep.q_lines.insert(prep.q_lines.end(), lines.begin(), lines.end());
          }
        }
        prep.cand_flags.push_back(flags);
      }
    }
  }
  prep.cand_offsets.push_back((std::uint32_t)prep.cand_entries.size());
  prep.q_lines_off.push_back((std::uint32_t)prep.q_lines.size());
  prep.p_lines_off.push_back((std::uint32_t)prep.p_lines.size());
}

Outcome NestAnalysis::classify_impl(std::span<const i64> z, std::size_t ref, Scratch& scratch,
                                    const std::uint16_t* pre, std::size_t n_pre) const {
  const std::size_t k = nest_->depth();
  const i64 line_a = scratch.pt_line[ref];
  const std::vector<PreparedReuse>& list = prepared_reuse_[ref];

  // --- Step 1: gather valid reuse candidates. ---
  // q = z ∓ r differs from z only on the reuse vector's nonzero dimensions
  // (PreparedReuse::steps), so bounds checks, tiled coordinates and the
  // source address are updated incrementally from the prepared point.
  scratch.n_candidates = 0;
  const auto gather = [&](const PreparedReuse& rc, std::size_t entry, bool prefiltered) {
    // Write-back path: a line stays dirty only across store-to-store
    // reuse, so read sources cannot extend a dirty generation.
    if (scratch.stores_only && nest_->refs[rc.source].kind != ir::AccessKind::Write) return;
    // Bounds and lexicographic position are decided from the stepped
    // dimensions alone (q_to == p_to elsewhere); q_to is only
    // materialized for candidates that survive all filters. Steps are
    // in ascending dimension order, so the first differing tile
    // coordinate — then the first differing offset — decides cmp.
    int cmp = 0;
    if (!prefiltered) {
      for (const ReuseStep& st : rc.steps) {
        const i64 qd = z[st.dim] - st.delta;
        if (qd < 0 || qd >= trips_[st.dim]) return;
        if (cmp == 0) {
          const i64 qt = qd / space_.tile(st.dim);
          const i64 pt = scratch.p_to[st.dim];
          if (qt != pt) cmp = qt < pt ? -1 : 1;
        }
      }
      // Compulsory-equation line check via the precomputed displacement.
      if (((scratch.pt_addr[rc.source] - rc.addr_delta) >> line_shift_) != line_a) return;
      // Triangular/trapezoidal domains: q must be an actual iteration,
      // not just a bounding-box point.
      if (!rectangular_ && !source_in_domain(z, rc, scratch.q_point)) return;
    } else {
      // Prefiltered (EvalCache binding): bounds and line check already
      // passed — both are tile-independent — so only cmp remains.
      for (const ReuseStep& st : rc.steps) {
        const i64 qd = z[st.dim] - st.delta;
        const i64 qt = qd / space_.tile(st.dim);
        const i64 pt = scratch.p_to[st.dim];
        if (qt != pt) {
          cmp = qt < pt ? -1 : 1;
          break;
        }
      }
    }
    if (cmp == 0) {
      for (const ReuseStep& st : rc.steps) {
        const i64 qd = z[st.dim] - st.delta;
        const i64 qo = qd % space_.tile(st.dim);
        const i64 po = scratch.p_to[k + st.dim];
        if (qo != po) {
          cmp = qo < po ? -1 : 1;
          break;
        }
      }
    }
    if (cmp > 0) return;
    if (cmp == 0 && rc.source >= ref) return;  // body order at the same point
    // Fill a pooled slot (buffers keep their capacity across points).
    if (scratch.n_candidates == scratch.candidates.size()) scratch.candidates.emplace_back();
    Candidate& slot = scratch.candidates[scratch.n_candidates++];
    slot.source = rc.source;
    slot.entry = (std::uint32_t)entry;
    slot.cmp = cmp;
    slot.q_to.assign(scratch.p_to, scratch.p_to + 2 * k);
    for (const ReuseStep& st : rc.steps) {
      const i64 qd = z[st.dim] - st.delta;
      slot.q_to[st.dim] = qd / space_.tile(st.dim);
      slot.q_to[k + st.dim] = qd % space_.tile(st.dim);
    }
  };
  if (pre != nullptr) {
    for (std::size_t i = 0; i < n_pre; ++i) gather(list[pre[i]], pre[i], true);
  } else {
    for (std::size_t e = 0; e < list.size(); ++e) gather(list[e], e, false);
  }

  if (scratch.n_candidates == 0) return Outcome::ColdMiss;

  // --- Step 2: try candidates closest-in-tiled-order first. ---
  // Candidate counts are tiny (reuse generators × 2), so a hand-rolled
  // insertion sort over the index array beats std::sort's setup cost.
  scratch.order.resize(scratch.n_candidates);
  std::iota(scratch.order.begin(), scratch.order.end(), (std::size_t)0);
  const auto before = [&](std::size_t a, std::size_t b) {
    const int cmp = space_.compare(scratch.candidates[a].q_to, scratch.candidates[b].q_to);
    if (cmp != 0) return cmp > 0;  // later q first
    return scratch.candidates[a].source > scratch.candidates[b].source;
  };
  for (std::size_t i = 1; i < scratch.n_candidates; ++i) {
    const std::size_t key = scratch.order[i];
    std::size_t j = i;
    while (j > 0 && before(key, scratch.order[j - 1])) {
      scratch.order[j] = scratch.order[j - 1];
      --j;
    }
    scratch.order[j] = key;
  }

  for (const std::size_t c : scratch.order) {
    const Candidate& cand = scratch.candidates[c];
    if (interval_interference_free(cand, {scratch.p_to, 2 * k}, ref, line_a, scratch)) {
      return Outcome::Hit;
    }
  }
  return Outcome::ReplacementMiss;
}

void NestAnalysis::build_warm_tables(std::span<const std::vector<i64>> points,
                                     const detail::EvalPrepared& prep, bool simd,
                                     std::vector<i64>& zto, std::vector<i64>& qt_tab,
                                     std::vector<i64>& qo_tab) const {
  const std::size_t k = nest_->depth();
  const std::size_t nd = prep.dstep_dim.size();
  const std::size_t n = points.size();
  zto.resize(n * 2 * k);
  qt_tab.resize(n * nd);
  qo_tab.resize(n * nd);
  if (simd) {
    alignas(32) i64 zs[4], qs[4], rs[4];
    for (std::size_t p0 = 0; p0 < n; p0 += 4) {
      const std::size_t cnt = std::min<std::size_t>(4, n - p0);
      for (std::size_t d = 0; d < k; ++d) {
        const i64 tile = space_.tile(d);
        for (std::size_t i = 0; i < cnt; ++i) zs[i] = points[p0 + i][d];
        for (std::size_t i = cnt; i < 4; ++i) zs[i] = zs[0];
        simd::I64x4 q, r;
        simd::floor_div_mod_u52(simd::load(zs), tile, q, r);
        simd::store(qs, q);
        simd::store(rs, r);
        for (std::size_t i = 0; i < cnt; ++i) {
          zto[(p0 + i) * 2 * k + d] = qs[i];
          zto[(p0 + i) * 2 * k + k + d] = rs[i];
        }
      }
      for (std::size_t s = 0; s < nd; ++s) {
        const std::size_t d = prep.dstep_dim[s];
        const i64 tile = space_.tile(d);
        const i64 delta = prep.dstep_delta[s];
        const i64 top = trips_[d] - 1;
        for (std::size_t i = 0; i < cnt; ++i)
          zs[i] = std::clamp(points[p0 + i][d] - delta, i64{0}, top);
        for (std::size_t i = cnt; i < 4; ++i) zs[i] = zs[0];
        simd::I64x4 q, r;
        simd::floor_div_mod_u52(simd::load(zs), tile, q, r);
        simd::store(qs, q);
        simd::store(rs, r);
        for (std::size_t i = 0; i < cnt; ++i) {
          qt_tab[(p0 + i) * nd + s] = qs[i];
          qo_tab[(p0 + i) * nd + s] = rs[i];
        }
      }
    }
    return;
  }
  for (std::size_t p = 0; p < n; ++p) {
    const std::vector<i64>& z = points[p];
    for (std::size_t d = 0; d < k; ++d) {
      const i64 tile = space_.tile(d);
      zto[p * 2 * k + d] = z[d] / tile;
      zto[p * 2 * k + k + d] = z[d] % tile;
    }
    for (std::size_t s = 0; s < nd; ++s) {
      const std::size_t d = prep.dstep_dim[s];
      const i64 tile = space_.tile(d);
      const i64 qd = std::clamp(z[d] - prep.dstep_delta[s], i64{0}, trips_[d] - 1);
      qt_tab[p * nd + s] = qd / tile;
      qo_tab[p * nd + s] = qd % tile;
    }
  }
}

Outcome NestAnalysis::classify_warm(std::size_t ref, Scratch& scratch,
                                    const detail::EvalPrepared& prep, std::size_t pr,
                                    const i64* qt_row, const i64* qo_row,
                                    std::uint32_t* footprint) const {
  const std::size_t k = nest_->depth();
  const i64 line_a = scratch.pt_line[ref];
  const std::vector<PreparedReuse>& list = prepared_reuse_[ref];
  const std::vector<std::uint32_t>& ed_off = prep.entry_dstep_off[ref];
  const std::vector<std::uint16_t>& ed = prep.entry_dstep[ref];

  // --- Step 1: gather, table-driven. Bounds and line checks passed at
  // bind time; cmp comes from the per-genome q tables — no division.
  scratch.n_candidates = 0;
  const std::uint32_t first = prep.cand_offsets[pr];
  const std::uint32_t last = prep.cand_offsets[pr + 1];
  for (std::uint32_t ei = first; ei < last; ++ei) {
    const std::uint16_t e = prep.cand_entries[ei];
    const std::uint32_t s_lo = ed_off[e], s_hi = ed_off[e + 1];
    int cmp = 0;
    for (std::uint32_t si = s_lo; si < s_hi; ++si) {
      const std::uint16_t s = ed[si];
      const i64 qt = qt_row[s];
      const i64 pt = scratch.p_to[prep.dstep_dim[s]];
      if (qt != pt) {
        cmp = qt < pt ? -1 : 1;
        break;
      }
    }
    if (cmp == 0) {
      for (std::uint32_t si = s_lo; si < s_hi; ++si) {
        const std::uint16_t s = ed[si];
        const i64 qo = qo_row[s];
        const i64 po = scratch.p_to[k + prep.dstep_dim[s]];
        if (qo != po) {
          cmp = qo < po ? -1 : 1;
          break;
        }
      }
    }
    if (cmp > 0) continue;
    const PreparedReuse& rc = list[e];
    if (cmp == 0 && rc.source >= ref) continue;  // body order at the same point
    if (scratch.n_candidates == scratch.candidates.size()) scratch.candidates.emplace_back();
    Candidate& slot = scratch.candidates[scratch.n_candidates++];
    slot.source = rc.source;
    slot.entry = e;
    slot.aux = ei;
    slot.cmp = cmp;
    slot.q_to.assign(scratch.p_to, scratch.p_to + 2 * k);
    for (std::uint32_t si = s_lo; si < s_hi; ++si) {
      const std::uint16_t s = ed[si];
      const std::size_t d = prep.dstep_dim[s];
      slot.q_to[d] = qt_row[s];
      slot.q_to[k + d] = qo_row[s];
    }
  }

  // Footprint accumulation (the memo key — analysis.hpp doc): the gather,
  // the sort and every candidate's reuse coordinates consult only the S0
  // dims' tiles; interior probes below widen the set.
  std::uint32_t fp = prep.s0_mask[pr];
  const std::uint32_t all_dims = k >= 32 ? ~0u : (std::uint32_t)((1u << k) - 1);

  if (scratch.n_candidates == 0) {
    // Every cross-iteration entry had cmp > 0 under this tiling (and any
    // same-iteration entry has source >= ref): the candidate-set filters
    // depend on the S0 tiles alone.
    if (footprint != nullptr) *footprint = fp;
    return Outcome::ColdMiss;
  }

  // --- Step 2: same insertion sort as classify_impl.
  scratch.order.resize(scratch.n_candidates);
  std::iota(scratch.order.begin(), scratch.order.end(), (std::size_t)0);
  const auto before = [&](std::size_t a, std::size_t b) {
    const int cmp = space_.compare(scratch.candidates[a].q_to, scratch.candidates[b].q_to);
    if (cmp != 0) return cmp > 0;  // later q first
    return scratch.candidates[a].source > scratch.candidates[b].source;
  };
  for (std::size_t i = 1; i < scratch.n_candidates; ++i) {
    const std::size_t key = scratch.order[i];
    std::size_t j = i;
    while (j > 0 && before(key, scratch.order[j - 1])) {
      scratch.order[j] = scratch.order[j - 1];
      --j;
    }
    scratch.order[j] = key;
  }

  // --- Step 3: winner scan with the precomputed endpoint interference.
  // Same-iteration candidates all failed at bind time (else the pair
  // would carry a Hit pre-verdict); cross-iteration candidates start from
  // the precomputed q/p endpoint line lists and only probe the interior.
  const std::size_t assoc = (std::size_t)cache_.associativity;
  const bool p_fail = (prep.pair_flags[pr] & detail::kPairPFail) != 0;
  const i64* p_lines = prep.p_lines.data() + prep.p_lines_off[pr];
  const std::size_t n_p_lines = prep.p_lines_off[pr + 1] - prep.p_lines_off[pr];
  for (const std::size_t c : scratch.order) {
    const Candidate& cand = scratch.candidates[c];
    if (cand.cmp == 0) continue;  // bind-time fail
    if (p_fail || (prep.cand_flags[cand.aux] & detail::kCandQFail) != 0) continue;
    std::vector<i64>& lines_found = scratch.lines_found;
    const i64* q_lines = prep.q_lines.data() + prep.q_lines_off[cand.aux];
    const std::size_t n_q_lines = prep.q_lines_off[cand.aux + 1] - prep.q_lines_off[cand.aux];
    lines_found.assign(q_lines, q_lines + n_q_lines);
    bool fail = false;
    for (std::size_t i = 0; i < n_p_lines && !fail; ++i) {
      const i64 lb = p_lines[i];
      if (std::find(lines_found.begin(), lines_found.end(), lb) == lines_found.end()) {
        lines_found.push_back(lb);
        if (lines_found.size() >= assoc) fail = true;
      }
    }
    if (fail) continue;
    // The interior probe consults tiles beyond the S0 dims: the lex
    // interval's suffix components range over full extents. If the
    // endpoints differ in a tile coordinate the suffix spans every
    // offset extent — all dims enter the footprint; if they differ
    // first at an offset coordinate (same tile along every stepped
    // dim), only the dims after it do. The box bases and the varying
    // coefficients are functions of those tiles and of S0-derived
    // values, so the footprint bounds everything the probe reads.
    std::size_t pos = 0;
    while (cand.q_to[pos] == scratch.p_to[pos]) ++pos;  // cmp != 0: a diff exists
    if (pos < k) {
      fp = all_dims;
    } else {
      fp |= all_dims & ~(std::uint32_t)((1ull << (pos - k + 1)) - 1);
    }
    if (interior_interference_free(cand, {scratch.p_to, 2 * k}, ref, line_a, scratch)) {
      if (footprint != nullptr) *footprint = fp;
      return Outcome::Hit;
    }
  }
  if (footprint != nullptr) *footprint = fp;
  return Outcome::ReplacementMiss;
}

Emptiness NestAnalysis::cached_probe(const CongruenceBox& box, std::size_t ref,
                                     std::uint64_t dim_mask, std::span<const i64> tile_key,
                                     Scratch& scratch) const {
  const std::size_t n = box.extents.size();
  if (!scratch.use_cache || n > detail::kMaxCacheDims ||
      tile_key.size() > detail::kMaxProbeTileDims)
    return probe_nonempty(box, options_.probe_work_cap, &scratch.counters);
  // Fold the base: probe verdicts only depend on it modulo the way size,
  // so boxes from different cache lines collide (the way size is almost
  // always a validated power of two — then the fold is a mask; two's
  // complement & gives the mathematical mod).
  const i64 m = box.modulus;
  const i64 folded_base = (m & (m - 1)) == 0 ? (box.base & (m - 1)) : floor_mod(box.base, m);
  bool hit = false;
  detail::ProbeEntry* slot = find_probe_slot(scratch, kEmptiness, ref, dim_mask, folded_base,
                                             {box.extents.data(), n}, tile_key, hit);
  if (scratch.eval_stats != nullptr) {
    ++scratch.eval_stats->probe_lookups;
    if (hit) ++scratch.eval_stats->probe_hits;
  }
  if (hit) {
    ++scratch.counters.cache_hits;
    return (Emptiness)slot->verdict;
  }
  const Emptiness result = probe_nonempty(box, options_.probe_work_cap, &scratch.counters);
  slot->verdict = (std::uint8_t)result;
  return result;
}

bool NestAnalysis::same_array_box_interferes(const CongruenceBox& box, std::size_t ref,
                                             std::uint64_t dim_mask, std::span<const i64> tile_key,
                                             Scratch& scratch) const {
  const i64 line_bytes = cache_.line_bytes;
  const auto compute = [&]() {
    if (probe_nonempty(box, options_.probe_work_cap, &scratch.counters) == Emptiness::Empty)
      return false;
    // Same array: touches on R_A's own line do not interfere; any other
    // solution is a witness.
    bool witness = false;
    const EnumStatus status = enumerate_solutions(box, options_.enumerate_cap, [&](i64 value) {
      if (!own_line_value(value, line_bytes)) {
        witness = true;
        return false;
      }
      return true;
    });
    return witness || status == EnumStatus::Capped;  // capped: conservative
  };
  const std::size_t n = box.extents.size();
  if (!scratch.use_cache || n > detail::kMaxCacheDims ||
      tile_key.size() > detail::kMaxProbeTileDims)
    return compute();
  // True (unfolded) base: the verdict depends on actual address values.
  bool hit = false;
  detail::ProbeEntry* slot = find_probe_slot(scratch, kSameArrayInterference, ref, dim_mask,
                                             box.base, {box.extents.data(), n}, tile_key, hit);
  if (scratch.eval_stats != nullptr) {
    ++scratch.eval_stats->probe_lookups;
    if (hit) ++scratch.eval_stats->probe_hits;
  }
  if (hit) {
    ++scratch.counters.cache_hits;
    return slot->verdict != 0;
  }
  const bool result = compute();
  slot->verdict = (std::uint8_t)(result ? 1 : 0);
  return result;
}

bool NestAnalysis::interval_interference_free(const Candidate& cand, std::span<const i64> p_to,
                                              std::size_t ref, i64 line_a,
                                              Scratch& scratch) const {
  const i64 line_bytes = cache_.line_bytes;
  const i64 sets = cache_.sets();
  const i64 set_a = scratch.pt_set[ref];
  const std::size_t assoc = (std::size_t)cache_.associativity;
  const std::size_t n_refs = refs_.size();

  // Distinct interfering lines seen so far (k-way LRU needs `assoc` of them
  // to evict; direct-mapped needs one). Returns true when the budget is hit.
  std::vector<i64>& lines_found = scratch.lines_found;
  lines_found.clear();
  auto add_line = [&](i64 line) {
    if (line == line_a) return false;
    if (std::find(lines_found.begin(), lines_found.end(), line) != lines_found.end())
      return false;
    lines_found.push_back(line);
    return lines_found.size() >= assoc;
  };
  // Access by reference `b` at the prepared point z (line/set from the
  // per-point tables): interference?
  auto point_z_interferes = [&](std::size_t b) {
    if (scratch.pt_set[b] != set_a) return false;
    return add_line(scratch.pt_line[b]);
  };

  if (cand.cmp == 0) {
    // Same iteration: only body positions strictly between source and ref.
    for (std::size_t b = cand.source + 1; b < ref; ++b) {
      if (point_z_interferes(b)) return false;
    }
    return true;
  }

  // Concrete access by reference `b` at the candidate endpoint q: the
  // address is the prepared address displaced along the reuse vector
  // (PreparedReuse::addr_delta_by_ref) — q itself never materializes.
  const PreparedReuse& rc = prepared_reuse_[ref][cand.entry];
  auto point_q_interferes = [&](std::size_t b) {
    const i64 addr = scratch.pt_addr[b] - rc.addr_delta_by_ref[b];
    const i64 line = floor_div(addr, line_bytes);
    if (floor_mod(line, sets) != set_a) return false;
    return add_line(line);
  };

  // Endpoint q: references executed after the source within q's iteration.
  for (std::size_t b = cand.source + 1; b < n_refs; ++b) {
    if (point_q_interferes(b)) return false;
  }
  // Endpoint p: references executed before R_A within z's iteration.
  for (std::size_t b = 0; b < ref; ++b) {
    if (point_z_interferes(b)) return false;
  }

  return interior_interference_free(cand, p_to, ref, line_a, scratch);
}

bool NestAnalysis::interior_interference_free(const Candidate& cand, std::span<const i64> p_to,
                                              std::size_t ref, i64 line_a,
                                              Scratch& scratch) const {
  const i64 line_bytes = cache_.line_bytes;
  const i64 way_bytes = cache_.way_bytes();
  const std::size_t assoc = (std::size_t)cache_.associativity;
  const std::size_t n_refs = refs_.size();
  const std::size_t half = nest_->depth();  // dims < half are tile coordinates

  // Continues the distinct-line budget the endpoint scans started.
  std::vector<i64>& lines_found = scratch.lines_found;
  auto add_line = [&](i64 line) {
    if (line == line_a) return false;
    if (std::find(lines_found.begin(), lines_found.end(), line) != lines_found.end())
      return false;
    lines_found.push_back(line);
    return lines_found.size() >= assoc;
  };

  // Strict interior: congruence boxes per (box, reference).
  lex_interval_boxes_into(space_, cand.q_to, p_to, scratch.boxes);
  const std::size_t dims = space_.tiled_dims();
  CongruenceBox& cb = scratch.box;
  for (std::size_t bi = 0; bi < scratch.boxes.count(); ++bi) {
    const std::span<const Interval> ranges = scratch.boxes.box(bi);
    for (std::size_t b = 0; b < n_refs; ++b) {
      const RefData& data = refs_[b];
      cb.modulus = way_bytes;
      cb.target = Interval{0, line_bytes - 1};
      cb.base = data.base0 - line_a * line_bytes;
      cb.extents.clear();
      cb.coeffs.clear();
      cb.extents.reserve(dims);
      cb.coeffs.reserve(dims);
      std::uint64_t dim_mask = 0;  // probe-cache key part; dims is 2k <= 64
      // Tile sizes of the filtered tile-coordinate dims: with the dim
      // mask, they determine the box's coefficient vector — the key part
      // that keeps probe entries valid across tile vectors.
      std::array<i64, detail::kMaxCacheDims> tile_key{};
      std::size_t n_tile_key = 0;
      // A tile coordinate whose offset ranges over the full tile merges
      // with it into one contiguous dimension: the pair covers exactly
      // the values A_d · [tr.lo · T_d, (tr.hi + 1) · T_d) — the same
      // value set, so every probe verdict is unchanged, while the box
      // loses a dimension (cheaper probe math) and its cache key loses
      // the tile size (coefficient and mask entry no longer mention
      // T_d), letting probe entries survive retilings of other dims.
      // Merged entries are emitted in the second pass, at the offset
      // dim's canonical position, so a given dim_mask always maps to one
      // ordering of (coefficient, extent) pairs — the probe-cache key
      // depends on it.
      std::array<i64, 64> merged_extent;  // indexed by d, valid where tile_merged
      std::uint64_t tile_merged = 0;      // offset dims consumed by a merge
      for (std::size_t d = 0; d < half; ++d) {
        const Interval& range = ranges[d];
        cb.base += data.tiled_coeffs[d] * range.lo;
        if (range.length() <= 1 || data.tiled_coeffs[d] == 0) continue;
        const Interval& off = ranges[half + d];
        const i64 tile = space_.tile(d);
        if (off.lo == 0 && off.length() == tile && half + d < 64) {
          merged_extent[d] = range.length() * tile;
          tile_merged |= 1ull << d;
          continue;
        }
        cb.extents.push_back(range.length());
        cb.coeffs.push_back(data.tiled_coeffs[d]);
        if (d < 64) dim_mask |= 1ull << d;
        if (n_tile_key < detail::kMaxCacheDims) tile_key[n_tile_key++] = tile;
      }
      for (std::size_t d = half; d < dims; ++d) {
        if (d - half < 64 && ((tile_merged >> (d - half)) & 1) != 0) {
          cb.extents.push_back(merged_extent[d - half]);
          cb.coeffs.push_back(data.tiled_coeffs[d]);
          dim_mask |= 1ull << d;
          continue;
        }
        const Interval& range = ranges[d];
        cb.base += data.tiled_coeffs[d] * range.lo;
        if (range.length() > 1 && data.tiled_coeffs[d] != 0) {
          cb.extents.push_back(range.length());
          cb.coeffs.push_back(data.tiled_coeffs[d]);
          if (d < 64) dim_mask |= 1ull << d;
        }
      }

      if (assoc == 1 && cb.box_points() <= 8) {
        // Tiny box (each filtered extent is >= 2, so at most 3 dims, at
        // most 8 concrete values): enumerate the values directly — exact,
        // and cheaper than the probe machinery and its cache. The
        // verdict rule is the shared one (own_line_value), identical to
        // same_array_box_interferes; different arrays are the degenerate
        // case where no value can be R_A's own line.
        ++scratch.counters.probes;  // parity with the probe path
        const bool same_array = data.array == refs_[ref].array;
        const bool po2 = (way_bytes & (way_bytes - 1)) == 0;
        const std::size_t n = cb.extents.size();
        bool interfere = false;
        if (options_.simd && po2) {
          // Vector form: materialize the concrete values, then test four
          // lanes at a time. Tail lanes repeat values[0] — duplicates
          // cannot change an existence verdict — so the result is
          // bit-identical to the scalar odometer below.
          alignas(32) i64 values[8];
          std::size_t count = 0;
          std::array<i64, 4> x{};
          while (true) {
            i64 value = cb.base;
            for (std::size_t d = 0; d < n; ++d) value += cb.coeffs[d] * x[d];
            values[count++] = value;
            std::size_t d = 0;
            for (; d < n; ++d) {
              if (x[d] + 1 < cb.extents[d]) {
                ++x[d];
                std::fill(x.begin(), x.begin() + (std::ptrdiff_t)d, 0);
                break;
              }
            }
            if (d == n) break;
          }
          for (std::size_t i = count; i < 8; ++i) values[i] = values[0];
          const simd::I64x4 line_splat = simd::splat(line_bytes);
          const std::size_t groups = count <= 4 ? 1 : 2;
          for (std::size_t g = 0; g < groups; ++g) {
            const simd::I64x4 v = simd::load(&values[g * 4]);
            // residue = value mod way_bytes (mask == floor_mod for po2);
            // residue < line_bytes <=> the value touches R_A's set.
            const simd::I64x4 residue = simd::bit_and(v, simd::splat(way_bytes - 1));
            simd::I64x4 bad = simd::cmp_gt(line_splat, residue);
            if (same_array) {
              // Own-line values (0 <= v < line_bytes) do not interfere.
              const simd::I64x4 own =
                  simd::bit_and(simd::cmp_gt(line_splat, v), simd::cmp_gt(v, simd::splat(-1)));
              bad = simd::bit_andnot(bad, own);
            }
            if (simd::any(bad)) {
              interfere = true;
              break;
            }
          }
        } else {
          std::array<i64, 4> x{};
          while (true) {
            i64 value = cb.base;
            for (std::size_t d = 0; d < n; ++d) value += cb.coeffs[d] * x[d];
            const i64 residue = po2 ? (value & (way_bytes - 1)) : floor_mod(value, way_bytes);
            if (residue < line_bytes &&  // touches R_A's set
                (!same_array || !own_line_value(value, line_bytes))) {
              interfere = true;
              break;
            }
            std::size_t d = 0;
            for (; d < n; ++d) {
              if (x[d] + 1 < cb.extents[d]) {
                ++x[d];
                std::fill(x.begin(), x.begin() + (std::ptrdiff_t)d, 0);
                break;
              }
            }
            if (d == n) break;
          }
        }
        if (interfere) return false;
        continue;
      }

      if (assoc == 1) {
        const std::span<const i64> key{tile_key.data(), n_tile_key};
        if (data.array != refs_[ref].array) {
          // Arrays are line-aligned and disjoint: any witness is a
          // different-line interference.
          if (cached_probe(cb, b, dim_mask, key, scratch) != Emptiness::Empty) return false;
        } else {
          // Emptiness and own-line exclusion as one cached verdict.
          if (same_array_box_interferes(cb, b, dim_mask, key, scratch)) return false;
        }
      } else {
        bool budget_hit = false;
        const EnumStatus status =
            enumerate_solutions(cb, options_.enumerate_cap, [&](i64 value) {
              const i64 line = line_a + floor_div(value, line_bytes);
              if (add_line(line)) {
                budget_hit = true;
                return false;
              }
              return true;
            });
        if (budget_hit) return false;
        if (status == EnumStatus::Capped) return false;  // conservative
      }
    }
  }
  return lines_found.size() < assoc;
}

}  // namespace cmetile::cme

#include "cme/analysis.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace cmetile::cme {

NestAnalysis::NestAnalysis(const ir::LoopNest& nest, ir::MemoryLayout layout,
                           cache::CacheConfig cache, transform::TileVector tiles,
                           AnalysisOptions options)
    : nest_(&nest),
      layout_(std::move(layout)),
      cache_(cache),
      tiles_(std::move(tiles)),
      space_(nest.trip_counts(), tiles_),
      reuse_(reuse::analyze_reuse(nest, layout_, cache.line_bytes)),
      options_(options),
      trips_(nest.trip_counts()) {
  cache_.validate();
  nest.validate();
  expects(tiles_.t.size() == nest.depth(), "NestAnalysis: tile vector arity mismatch");

  const std::size_t k = nest.depth();
  refs_.reserve(nest.refs.size());
  for (const ir::Reference& ref : nest.refs) {
    RefData data;
    data.array = ref.array;
    // 0-based address polynomial: substitute i_d = lower_d + z_d.
    const ir::LinExpr addr = layout_.address_expr(nest, ref);
    data.coeffs0.assign(addr.coeffs().begin(), addr.coeffs().end());
    data.base0 = addr.constant_term();
    for (std::size_t d = 0; d < k; ++d) data.base0 += data.coeffs0[d] * nest.loops[d].lower;
    // Tiled coordinates: z_d = T_d * t_d + o_d.
    data.tiled_coeffs.resize(2 * k);
    for (std::size_t d = 0; d < k; ++d) {
      data.tiled_coeffs[d] = data.coeffs0[d] * space_.tile(d);
      data.tiled_coeffs[k + d] = data.coeffs0[d];
    }
    refs_.push_back(std::move(data));
  }
}

i64 NestAnalysis::address_at(std::size_t ref, std::span<const i64> z) const {
  const RefData& data = refs_[ref];
  i64 addr = data.base0;
  for (std::size_t d = 0; d < z.size(); ++d) addr += data.coeffs0[d] * z[d];
  return addr;
}

Outcome NestAnalysis::classify(std::span<const i64> z, std::size_t ref) const {
  const std::size_t k = nest_->depth();
  expects(z.size() == k, "classify: point arity mismatch");
  const i64 line_bytes = cache_.line_bytes;
  const i64 addr_a = address_at(ref, z);
  const i64 line_a = floor_div(addr_a, line_bytes);
  const std::vector<i64> p_to = space_.to_tiled(z);

  // --- Step 1: gather valid reuse candidates. ---
  std::vector<Candidate> candidates;
  std::vector<i64> q(k);
  for (const reuse::ReuseCandidate& rc : reuse_.per_ref[ref]) {
    for (const int sign : {+1, -1}) {
      bool inside = true;
      for (std::size_t d = 0; d < k; ++d) {
        q[d] = z[d] - sign * rc.vector[d];
        if (q[d] < 0 || q[d] >= trips_[d]) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      std::vector<i64> q_to = space_.to_tiled(q);
      const int cmp = space_.compare(q_to, p_to);
      if (cmp > 0) continue;
      if (cmp == 0 && rc.source_ref >= ref) continue;  // body order at the same point
      if (floor_div(address_at(rc.source_ref, q), line_bytes) != line_a) continue;
      // Deduplicate identical (source, q) candidates.
      bool duplicate = false;
      for (const Candidate& c : candidates) {
        if (c.source == rc.source_ref && c.q == q) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      candidates.push_back(Candidate{rc.source_ref, q, std::move(q_to)});
    }
  }

  if (candidates.empty()) return Outcome::ColdMiss;

  // --- Step 2: try candidates closest-in-tiled-order first. ---
  std::sort(candidates.begin(), candidates.end(), [&](const Candidate& a, const Candidate& b) {
    const int cmp = space_.compare(a.q_to, b.q_to);
    if (cmp != 0) return cmp > 0;  // later q first
    return a.source > b.source;
  });

  for (const Candidate& cand : candidates) {
    if (interval_interference_free(cand, z, p_to, ref, line_a)) return Outcome::Hit;
  }
  return Outcome::ReplacementMiss;
}

bool NestAnalysis::interval_interference_free(const Candidate& cand, std::span<const i64> z,
                                              std::span<const i64> p_to, std::size_t ref,
                                              i64 line_a) const {
  const i64 line_bytes = cache_.line_bytes;
  const i64 way_bytes = cache_.way_bytes();
  const i64 sets = cache_.sets();
  const i64 set_a = floor_mod(line_a, sets);
  const std::size_t assoc = (std::size_t)cache_.associativity;
  const std::size_t n_refs = refs_.size();

  // Distinct interfering lines seen so far (k-way LRU needs `assoc` of them
  // to evict; direct-mapped needs one). Returns true when the budget is hit.
  std::vector<i64> lines_found;
  auto add_line = [&](i64 line) {
    if (line == line_a) return false;
    if (std::find(lines_found.begin(), lines_found.end(), line) != lines_found.end())
      return false;
    lines_found.push_back(line);
    return lines_found.size() >= assoc;
  };
  // Concrete access at point `pt` by reference `b`: interference?
  auto point_interferes = [&](std::size_t b, std::span<const i64> pt) {
    const i64 addr = address_at(b, pt);
    const i64 line = floor_div(addr, line_bytes);
    if (floor_mod(line, sets) != set_a) return false;
    return add_line(line);
  };

  const int cmp = space_.compare(cand.q_to, p_to);
  if (cmp == 0) {
    // Same iteration: only body positions strictly between source and ref.
    for (std::size_t b = cand.source + 1; b < ref; ++b) {
      if (point_interferes(b, z)) return false;
    }
    return true;
  }

  // Endpoint q: references executed after the source within q's iteration.
  for (std::size_t b = cand.source + 1; b < n_refs; ++b) {
    if (point_interferes(b, cand.q)) return false;
  }
  // Endpoint p: references executed before R_A within z's iteration.
  for (std::size_t b = 0; b < ref; ++b) {
    if (point_interferes(b, z)) return false;
  }

  // Strict interior: congruence boxes per (box, reference).
  const std::vector<TiledBox> boxes = lex_interval_boxes(space_, cand.q_to, p_to);
  const std::size_t dims = space_.tiled_dims();
  for (const TiledBox& tiled_box : boxes) {
    for (std::size_t b = 0; b < n_refs; ++b) {
      const RefData& data = refs_[b];
      CongruenceBox cb;
      cb.modulus = way_bytes;
      cb.target = Interval{0, line_bytes - 1};
      cb.base = data.base0 - line_a * line_bytes;
      cb.extents.reserve(dims);
      cb.coeffs.reserve(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        const Interval& range = tiled_box.ranges[d];
        cb.base += data.tiled_coeffs[d] * range.lo;
        if (range.length() > 1 && data.tiled_coeffs[d] != 0) {
          cb.extents.push_back(range.length());
          cb.coeffs.push_back(data.tiled_coeffs[d]);
        }
      }

      if (assoc == 1) {
        if (data.array != refs_[ref].array) {
          // Arrays are line-aligned and disjoint: any witness is a
          // different-line interference.
          if (probe_nonempty(cb, options_.probe_work_cap, &counters_) != Emptiness::Empty)
            return false;
        } else {
          const Emptiness e = probe_nonempty(cb, options_.probe_work_cap, &counters_);
          if (e == Emptiness::Empty) continue;
          // Same array: exclude touches of R_A's own line (value in
          // [0, line_bytes) means the same line — no interference).
          bool witness = false;
          const EnumStatus status =
              enumerate_solutions(cb, options_.enumerate_cap, [&](i64 value) {
                if (value < 0 || value >= line_bytes) {
                  witness = true;
                  return false;
                }
                return true;
              });
          if (witness) return false;
          if (status == EnumStatus::Capped) return false;  // conservative
        }
      } else {
        bool budget_hit = false;
        const EnumStatus status =
            enumerate_solutions(cb, options_.enumerate_cap, [&](i64 value) {
              const i64 line = line_a + floor_div(value, line_bytes);
              if (add_line(line)) {
                budget_hit = true;
                return false;
              }
              return true;
            });
        if (budget_hit) return false;
        if (status == EnumStatus::Capped) return false;  // conservative
      }
    }
  }
  return lines_found.size() < assoc;
}

}  // namespace cmetile::cme

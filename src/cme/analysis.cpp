#include "cme/analysis.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "support/contracts.hpp"
#include "support/parallel.hpp"

namespace cmetile::cme {

namespace {

/// Same-array accesses with a concrete replacement value in
/// [0, line_bytes) touch R_A's own line — the only touches of R_A's set
/// that do not interfere (arrays are line-aligned and disjoint). The one
/// definition of the own-line rule, shared by the tiny-box enumeration
/// and same_array_box_interferes.
inline bool own_line_value(i64 value, i64 line_bytes) {
  return value >= 0 && value < line_bytes;
}

}  // namespace

NestAnalysis::NestAnalysis(const ir::LoopNest& nest, ir::MemoryLayout layout,
                           cache::CacheConfig cache, transform::TileVector tiles,
                           AnalysisOptions options)
    : nest_(&nest),
      layout_(std::move(layout)),
      cache_(cache),
      tiles_(std::move(tiles)),
      space_(nest.trip_counts(), tiles_),
      reuse_(reuse::analyze_reuse(nest, layout_, cache.line_bytes)),
      options_(options),
      trips_(nest.trip_counts()) {
  cache_.validate();
  nest.validate();
  expects(tiles_.t.size() == nest.depth(), "NestAnalysis: tile vector arity mismatch");

  const std::size_t k = nest.depth();
  refs_.reserve(nest.refs.size());
  for (const ir::Reference& ref : nest.refs) {
    RefData data;
    data.array = ref.array;
    // 0-based address polynomial: substitute i_d = lower_d + z_d.
    const ir::LinExpr addr = layout_.address_expr(nest, ref);
    data.coeffs0.assign(addr.coeffs().begin(), addr.coeffs().end());
    data.base0 = addr.constant_term();
    for (std::size_t d = 0; d < k; ++d) data.base0 += data.coeffs0[d] * nest.loops[d].lower;
    // Tiled coordinates: z_d = T_d * t_d + o_d.
    data.tiled_coeffs.resize(2 * k);
    for (std::size_t d = 0; d < k; ++d) {
      data.tiled_coeffs[d] = data.coeffs0[d] * space_.tile(d);
      data.tiled_coeffs[k + d] = data.coeffs0[d];
    }
    refs_.push_back(std::move(data));
  }

  // Pre-resolve the reuse generators for the gather loop: one candidate
  // per (generator, ±) with signs applied and structural duplicates
  // (same source, same signed vector — they always produce the same q)
  // removed. q(z) = z − steps is a bijection of the tiled coordinates, so
  // dropping duplicates here preserves the candidate set at every point.
  prepared_reuse_.resize(refs_.size());
  for (std::size_t r = 0; r < refs_.size(); ++r) {
    std::vector<std::pair<std::size_t, std::vector<i64>>> seen;
    prepared_reuse_[r].reserve(2 * reuse_.per_ref[r].size());
    for (const reuse::ReuseCandidate& rc : reuse_.per_ref[r]) {
      for (const int sign : {+1, -1}) {
        std::vector<i64> signed_vec(k);
        for (std::size_t d = 0; d < k; ++d) signed_vec[d] = sign * rc.vector[d];
        bool duplicate = false;
        for (const auto& [source, vec] : seen) {
          if (source == rc.source_ref && vec == signed_vec) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        PreparedReuse prepared;
        prepared.source = rc.source_ref;
        const std::vector<i64>& src_coeffs = refs_[rc.source_ref].coeffs0;
        for (std::size_t d = 0; d < k; ++d) {
          if (signed_vec[d] != 0)
            prepared.steps.push_back(ReuseStep{(std::uint32_t)d, signed_vec[d]});
          prepared.addr_delta += src_coeffs[d] * signed_vec[d];
        }
        prepared_reuse_[r].push_back(std::move(prepared));
        seen.emplace_back(rc.source_ref, std::move(signed_vec));
      }
    }
  }

  line_shift_ = std::countr_zero((std::uint64_t)cache_.line_bytes);
  sets_ = cache_.sets();
  set_mask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : -1;
}

i64 NestAnalysis::address_at(std::size_t ref, std::span<const i64> z) const {
  const RefData& data = refs_[ref];
  i64 addr = data.base0;
  for (std::size_t d = 0; d < z.size(); ++d) addr += data.coeffs0[d] * z[d];
  return addr;
}

NestAnalysis::ProbeEntry* NestAnalysis::find_probe_slot(Scratch& scratch, std::uint8_t kind,
                                                        std::size_t ref, std::uint64_t dim_mask,
                                                        i64 base, std::span<const i64> extents,
                                                        bool& hit) const {
  hit = false;
  if (scratch.probe_cache.empty()) {
    std::size_t want = options_.probe_cache_capacity;
    if (scratch.probe_cache_hint > 0) want = std::min(want, scratch.probe_cache_hint);
    scratch.probe_cache.assign(std::bit_ceil(std::max<std::size_t>(want, 64)), ProbeEntry{});
  }
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ ((std::uint64_t)kind << 32) ^ (std::uint64_t)ref;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(dim_mask);
  mix((std::uint64_t)base);
  for (const i64 v : extents) mix((std::uint64_t)v);
  if (h == 0) h = 1;

  const std::size_t mask = scratch.probe_cache.size() - 1;
  const std::size_t n = extents.size();
  constexpr std::size_t kWindow = 4;  // linear-probe window; then evict
  ProbeEntry* empty_slot = nullptr;
  for (std::size_t w = 0; w < kWindow; ++w) {
    ProbeEntry& entry = scratch.probe_cache[(h + w) & mask];
    if (entry.tag == 0) {
      if (empty_slot == nullptr) empty_slot = &entry;
      continue;
    }
    if (entry.tag == h && entry.kind == kind && entry.ref == (std::uint32_t)ref &&
        entry.dim_mask == dim_mask && entry.base == base && entry.ndims == (std::uint8_t)n &&
        std::equal(extents.begin(), extents.end(), entry.extents.begin())) {
      hit = true;
      return &entry;
    }
  }
  // Miss: fill an empty window slot, or evict the home slot. The caller
  // assigns `verdict` after computing it.
  ProbeEntry& slot = empty_slot != nullptr ? *empty_slot : scratch.probe_cache[h & mask];
  slot.tag = h;
  slot.kind = kind;
  slot.ref = (std::uint32_t)ref;
  slot.dim_mask = dim_mask;
  slot.base = base;
  slot.ndims = (std::uint8_t)n;
  std::copy(extents.begin(), extents.end(), slot.extents.begin());
  return &slot;
}

Outcome NestAnalysis::classify(std::span<const i64> z, std::size_t ref) const {
  Scratch scratch;  // fresh per call: the un-batched, uncached reference path
  prepare_point(z, scratch);
  const Outcome outcome = classify_impl(z, ref, scratch);
  counters_ += scratch.counters;
  return outcome;
}

void NestAnalysis::prepare_point(std::span<const i64> z, Scratch& scratch) const {
  expects(z.size() == nest_->depth(), "classify: point arity mismatch");
  space_.to_tiled_into(z, scratch.p_to);
  const std::size_t n_refs = refs_.size();
  scratch.pt_addr.resize(n_refs);
  scratch.pt_line.resize(n_refs);
  scratch.pt_set.resize(n_refs);
  for (std::size_t b = 0; b < n_refs; ++b) {
    const i64 addr = address_at(b, z);
    // line_bytes is a validated power of two: the arithmetic shift is
    // exactly floor_div.
    const i64 line = addr >> line_shift_;
    scratch.pt_addr[b] = addr;
    scratch.pt_line[b] = line;
    scratch.pt_set[b] = set_mask_ >= 0 ? (line & set_mask_) : floor_mod(line, sets_);
  }
}

std::vector<Outcome> NestAnalysis::classify_batch(std::span<const std::vector<i64>> points,
                                                  int shards) const {
  const std::size_t n_refs = refs_.size();
  std::vector<Outcome> out(points.size() * n_refs, Outcome::Hit);
  if (points.empty() || n_refs == 0) return out;

  // Inside an already-parallel region (the GA evaluating its population)
  // nested parallel_for is serialized: run a single shard there, so the
  // whole sample shares one scratch and one probe cache instead of
  // paying per-shard setup for no concurrency.
  const std::size_t want = shards > 0 ? (std::size_t)shards
                           : parallel_active() ? 1
                                               : (std::size_t)parallel_threads();
  const std::size_t n_shards = std::min(std::max<std::size_t>(want, 1), points.size());
  std::vector<ProbeCounters> shard_counters(n_shards);

  // Contiguous shards: every worker touches a disjoint slice of `out` and
  // its own Scratch, so the parallel region is write-race-free.
  parallel_for(n_shards, [&](std::size_t s) {
    Scratch scratch;
    // dim_mask keys need one bit per tiled dimension; deeper nests (never
    // seen in practice) bypass the cache rather than alias keys.
    scratch.use_cache = options_.probe_cache && space_.tiled_dims() <= 64;
    const std::size_t lo = points.size() * s / n_shards;
    const std::size_t hi = points.size() * (s + 1) / n_shards;
    // Size the probe table to the shard's workload: small batches (the
    // GA's 164-point samples) should not pay a full-capacity table init.
    scratch.probe_cache_hint = (hi - lo) * n_refs * 4;
    for (std::size_t p = lo; p < hi; ++p) {
      prepare_point(points[p], scratch);
      for (std::size_t r = 0; r < n_refs; ++r) {
        out[p * n_refs + r] = classify_impl(points[p], r, scratch);
      }
    }
    shard_counters[s] = scratch.counters;
  });
  for (const ProbeCounters& c : shard_counters) counters_ += c;
  return out;
}

Outcome NestAnalysis::classify_impl(std::span<const i64> z, std::size_t ref,
                                    Scratch& scratch) const {
  const std::size_t k = nest_->depth();
  const i64 line_a = scratch.pt_line[ref];

  // --- Step 1: gather valid reuse candidates. ---
  // q = z ∓ r differs from z only on the reuse vector's nonzero dimensions
  // (PreparedReuse::steps), so bounds checks, tiled coordinates and the
  // source address are updated incrementally from the prepared point.
  scratch.n_candidates = 0;
  for (const PreparedReuse& rc : prepared_reuse_[ref]) {
    // Bounds and lexicographic position are decided from the stepped
    // dimensions alone (q_to == p_to elsewhere); q and q_to are only
    // materialized for candidates that survive all filters. Steps are
    // in ascending dimension order, so the first differing tile
    // coordinate — then the first differing offset — decides cmp.
    bool inside = true;
    int cmp = 0;
    for (const ReuseStep& st : rc.steps) {
      const i64 qd = z[st.dim] - st.delta;
      if (qd < 0 || qd >= trips_[st.dim]) {
        inside = false;
        break;
      }
      if (cmp == 0) {
        const i64 qt = qd / space_.tile(st.dim);
        const i64 pt = scratch.p_to[st.dim];
        if (qt != pt) cmp = qt < pt ? -1 : 1;
      }
    }
    if (!inside) continue;
    if (cmp == 0) {
      for (const ReuseStep& st : rc.steps) {
        const i64 qd = z[st.dim] - st.delta;
        const i64 qo = qd % space_.tile(st.dim);
        const i64 po = scratch.p_to[k + st.dim];
        if (qo != po) {
          cmp = qo < po ? -1 : 1;
          break;
        }
      }
    }
    if (cmp > 0) continue;
    if (cmp == 0 && rc.source >= ref) continue;  // body order at the same point
    // Compulsory-equation line check via the precomputed displacement.
    const i64 addr_q = scratch.pt_addr[rc.source] - rc.addr_delta;
    if ((addr_q >> line_shift_) != line_a) continue;
    // Fill a pooled slot (buffers keep their capacity across points).
    if (scratch.n_candidates == scratch.candidates.size()) scratch.candidates.emplace_back();
    Candidate& slot = scratch.candidates[scratch.n_candidates++];
    slot.source = rc.source;
    slot.cmp = cmp;
    slot.q.assign(z.begin(), z.end());
    slot.q_to.assign(scratch.p_to.begin(), scratch.p_to.end());
    for (const ReuseStep& st : rc.steps) {
      const i64 qd = z[st.dim] - st.delta;
      slot.q[st.dim] = qd;
      slot.q_to[st.dim] = qd / space_.tile(st.dim);
      slot.q_to[k + st.dim] = qd % space_.tile(st.dim);
    }
  }

  if (scratch.n_candidates == 0) return Outcome::ColdMiss;

  // --- Step 2: try candidates closest-in-tiled-order first. ---
  // Candidate counts are tiny (reuse generators × 2), so a hand-rolled
  // insertion sort over the index array beats std::sort's setup cost.
  scratch.order.resize(scratch.n_candidates);
  std::iota(scratch.order.begin(), scratch.order.end(), (std::size_t)0);
  const auto before = [&](std::size_t a, std::size_t b) {
    const int cmp = space_.compare(scratch.candidates[a].q_to, scratch.candidates[b].q_to);
    if (cmp != 0) return cmp > 0;  // later q first
    return scratch.candidates[a].source > scratch.candidates[b].source;
  };
  for (std::size_t i = 1; i < scratch.n_candidates; ++i) {
    const std::size_t key = scratch.order[i];
    std::size_t j = i;
    while (j > 0 && before(key, scratch.order[j - 1])) {
      scratch.order[j] = scratch.order[j - 1];
      --j;
    }
    scratch.order[j] = key;
  }

  for (const std::size_t c : scratch.order) {
    if (interval_interference_free(scratch.candidates[c], scratch.p_to, ref, line_a, scratch)) {
      return Outcome::Hit;
    }
  }
  return Outcome::ReplacementMiss;
}

Emptiness NestAnalysis::cached_probe(const CongruenceBox& box, std::size_t ref,
                                     std::uint64_t dim_mask, Scratch& scratch) const {
  const std::size_t n = box.extents.size();
  if (!scratch.use_cache || n > kMaxCacheDims)
    return probe_nonempty(box, options_.probe_work_cap, &scratch.counters);
  // Fold the base: probe verdicts only depend on it modulo the way size,
  // so boxes from different cache lines collide (the way size is almost
  // always a validated power of two — then the fold is a mask; two's
  // complement & gives the mathematical mod).
  const i64 m = box.modulus;
  const i64 folded_base = (m & (m - 1)) == 0 ? (box.base & (m - 1)) : floor_mod(box.base, m);
  bool hit = false;
  ProbeEntry* slot = find_probe_slot(scratch, kEmptiness, ref, dim_mask, folded_base,
                                     {box.extents.data(), n}, hit);
  if (hit) {
    ++scratch.counters.cache_hits;
    return (Emptiness)slot->verdict;
  }
  const Emptiness result = probe_nonempty(box, options_.probe_work_cap, &scratch.counters);
  slot->verdict = (std::uint8_t)result;
  return result;
}

bool NestAnalysis::same_array_box_interferes(const CongruenceBox& box, std::size_t ref,
                                             std::uint64_t dim_mask, Scratch& scratch) const {
  const i64 line_bytes = cache_.line_bytes;
  const auto compute = [&]() {
    if (probe_nonempty(box, options_.probe_work_cap, &scratch.counters) == Emptiness::Empty)
      return false;
    // Same array: touches on R_A's own line do not interfere; any other
    // solution is a witness.
    bool witness = false;
    const EnumStatus status = enumerate_solutions(box, options_.enumerate_cap, [&](i64 value) {
      if (!own_line_value(value, line_bytes)) {
        witness = true;
        return false;
      }
      return true;
    });
    return witness || status == EnumStatus::Capped;  // capped: conservative
  };
  const std::size_t n = box.extents.size();
  if (!scratch.use_cache || n > kMaxCacheDims) return compute();
  // True (unfolded) base: the verdict depends on actual address values.
  bool hit = false;
  ProbeEntry* slot = find_probe_slot(scratch, kSameArrayInterference, ref, dim_mask, box.base,
                                     {box.extents.data(), n}, hit);
  if (hit) {
    ++scratch.counters.cache_hits;
    return slot->verdict != 0;
  }
  const bool result = compute();
  slot->verdict = (std::uint8_t)(result ? 1 : 0);
  return result;
}

bool NestAnalysis::interval_interference_free(const Candidate& cand, std::span<const i64> p_to,
                                              std::size_t ref, i64 line_a,
                                              Scratch& scratch) const {
  const i64 line_bytes = cache_.line_bytes;
  const i64 way_bytes = cache_.way_bytes();
  const i64 sets = cache_.sets();
  const i64 set_a = scratch.pt_set[ref];
  const std::size_t assoc = (std::size_t)cache_.associativity;
  const std::size_t n_refs = refs_.size();

  // Distinct interfering lines seen so far (k-way LRU needs `assoc` of them
  // to evict; direct-mapped needs one). Returns true when the budget is hit.
  std::vector<i64>& lines_found = scratch.lines_found;
  lines_found.clear();
  auto add_line = [&](i64 line) {
    if (line == line_a) return false;
    if (std::find(lines_found.begin(), lines_found.end(), line) != lines_found.end())
      return false;
    lines_found.push_back(line);
    return lines_found.size() >= assoc;
  };
  // Access by reference `b` at the prepared point z (line/set from the
  // per-point tables): interference?
  auto point_z_interferes = [&](std::size_t b) {
    if (scratch.pt_set[b] != set_a) return false;
    return add_line(scratch.pt_line[b]);
  };
  // Concrete access at point `pt` by reference `b`: interference?
  auto point_interferes = [&](std::size_t b, std::span<const i64> pt) {
    const i64 addr = address_at(b, pt);
    const i64 line = floor_div(addr, line_bytes);
    if (floor_mod(line, sets) != set_a) return false;
    return add_line(line);
  };

  if (cand.cmp == 0) {
    // Same iteration: only body positions strictly between source and ref.
    for (std::size_t b = cand.source + 1; b < ref; ++b) {
      if (point_z_interferes(b)) return false;
    }
    return true;
  }

  // Endpoint q: references executed after the source within q's iteration.
  for (std::size_t b = cand.source + 1; b < n_refs; ++b) {
    if (point_interferes(b, cand.q)) return false;
  }
  // Endpoint p: references executed before R_A within z's iteration.
  for (std::size_t b = 0; b < ref; ++b) {
    if (point_z_interferes(b)) return false;
  }

  // Strict interior: congruence boxes per (box, reference).
  lex_interval_boxes_into(space_, cand.q_to, p_to, scratch.boxes);
  const std::size_t dims = space_.tiled_dims();
  CongruenceBox& cb = scratch.box;
  for (std::size_t bi = 0; bi < scratch.boxes.count(); ++bi) {
    const std::span<const Interval> ranges = scratch.boxes.box(bi);
    for (std::size_t b = 0; b < n_refs; ++b) {
      const RefData& data = refs_[b];
      cb.modulus = way_bytes;
      cb.target = Interval{0, line_bytes - 1};
      cb.base = data.base0 - line_a * line_bytes;
      cb.extents.clear();
      cb.coeffs.clear();
      cb.extents.reserve(dims);
      cb.coeffs.reserve(dims);
      std::uint64_t dim_mask = 0;  // probe-cache key part; dims is 2k <= 64
      for (std::size_t d = 0; d < dims; ++d) {
        const Interval& range = ranges[d];
        cb.base += data.tiled_coeffs[d] * range.lo;
        if (range.length() > 1 && data.tiled_coeffs[d] != 0) {
          cb.extents.push_back(range.length());
          cb.coeffs.push_back(data.tiled_coeffs[d]);
          if (d < 64) dim_mask |= 1ull << d;
        }
      }

      if (assoc == 1 && cb.box_points() <= 8) {
        // Tiny box (each filtered extent is >= 2, so at most 3 dims, at
        // most 8 concrete values): enumerate the values directly — exact,
        // and cheaper than the probe machinery and its cache. The
        // verdict rule is the shared one (own_line_value), identical to
        // same_array_box_interferes; different arrays are the degenerate
        // case where no value can be R_A's own line.
        ++scratch.counters.probes;  // parity with the probe path
        const bool same_array = data.array == refs_[ref].array;
        const bool po2 = (way_bytes & (way_bytes - 1)) == 0;
        const std::size_t n = cb.extents.size();
        std::array<i64, 4> x{};
        bool interfere = false;
        while (true) {
          i64 value = cb.base;
          for (std::size_t d = 0; d < n; ++d) value += cb.coeffs[d] * x[d];
          const i64 residue = po2 ? (value & (way_bytes - 1)) : floor_mod(value, way_bytes);
          if (residue < line_bytes &&  // touches R_A's set
              (!same_array || !own_line_value(value, line_bytes))) {
            interfere = true;
            break;
          }
          std::size_t d = 0;
          for (; d < n; ++d) {
            if (x[d] + 1 < cb.extents[d]) {
              ++x[d];
              std::fill(x.begin(), x.begin() + (std::ptrdiff_t)d, 0);
              break;
            }
          }
          if (d == n) break;
        }
        if (interfere) return false;
        continue;
      }

      if (assoc == 1) {
        if (data.array != refs_[ref].array) {
          // Arrays are line-aligned and disjoint: any witness is a
          // different-line interference.
          if (cached_probe(cb, b, dim_mask, scratch) != Emptiness::Empty) return false;
        } else {
          // Emptiness and own-line exclusion as one cached verdict.
          if (same_array_box_interferes(cb, b, dim_mask, scratch)) return false;
        }
      } else {
        bool budget_hit = false;
        const EnumStatus status =
            enumerate_solutions(cb, options_.enumerate_cap, [&](i64 value) {
              const i64 line = line_a + floor_div(value, line_bytes);
              if (add_line(line)) {
                budget_hit = true;
                return false;
              }
              return true;
            });
        if (budget_hit) return false;
        if (status == EnumStatus::Capped) return false;  // conservative
      }
    }
  }
  return lines_found.size() < assoc;
}

}  // namespace cmetile::cme

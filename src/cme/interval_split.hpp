#pragma once
// Decomposition of the CME replacement interval. For a reuse source q and
// current point p (both in tiled coordinates (t_1..t_k, o_1..o_k)), the
// set of iteration points executed strictly between them,
//
//     { x : q ≺ x ≺ p }   (≺ = lexicographic order in tiled coordinates),
//
// decomposes into at most 2·D+1 boxes (D = 2k). Each box is a product of
// per-dimension intervals — after resolving the coupling between tile
// coordinates and offset extents at truncated boundary tiles, which is
// exactly the paper's "multiple convex regions" treatment (§2.4): a free
// tile range splits into its interior part (full tiles) and the boundary
// tile (truncated offset range).

#include <span>
#include <vector>

#include "support/int_math.hpp"
#include "transform/tiling.hpp"

namespace cmetile::cme {

/// A box over the 2k tiled dimensions: ranges[0..k) are tile coordinates,
/// ranges[k..2k) are intra-tile offsets. All intervals are closed.
struct TiledBox {
  std::vector<Interval> ranges;

  i64 points() const {
    i64 n = 1;
    for (const Interval& r : ranges) {
      if (r.empty()) return 0;
      n *= r.length();
    }
    return n;
  }
};

/// Flattened list of boxes sharing one dimensionality: all ranges stored
/// back-to-back (count() boxes × dims intervals each). The classifier's
/// scratch representation — refilling an existing list performs no heap
/// allocation once the buffers have warmed up.
struct TiledBoxList {
  std::size_t dims = 0;
  std::vector<Interval> ranges;  ///< count() * dims, box-major
  TiledBox scratch;              ///< working box reused by the splitter
  std::vector<Interval> domains; ///< per-dimension maximal domains (refilled per call)

  std::size_t count() const { return dims == 0 ? 0 : ranges.size() / dims; }
  std::span<const Interval> box(std::size_t i) const {
    return {ranges.data() + i * dims, dims};
  }
};

/// Boxes covering { x : q ≺ x ≺ p } exactly (disjoint union), with
/// boundary-tile coupling resolved. Requires q ≺ p.
std::vector<TiledBox> lex_interval_boxes(const transform::TiledSpace& space,
                                         std::span<const i64> q, std::span<const i64> p);

/// Scratch-reusing variant: `out` is cleared and refilled (capacity is
/// kept across calls — the batched classifier's hot loop).
void lex_interval_boxes_into(const transform::TiledSpace& space, std::span<const i64> q,
                             std::span<const i64> p, TiledBoxList& out);

}  // namespace cmetile::cme

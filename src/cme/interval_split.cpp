#include "cme/interval_split.hpp"

#include "support/contracts.hpp"

namespace cmetile::cme {

namespace {

/// Maximal domain of tiled dimension `idx` (offset domains use the full
/// tile size; boundary truncation is resolved afterwards).
Interval max_domain(const transform::TiledSpace& space, std::size_t idx) {
  const std::size_t k = space.depth();
  if (idx < k) return Interval{0, space.tile_count(idx) - 1};
  return Interval{0, space.tile(idx - k) - 1};
}

/// Resolve the o/t coupling: for every dimension whose tile range reaches a
/// truncated boundary tile, split the box into interior + boundary parts.
/// Mutates `box` in place; resolved leaves append their ranges to `out`.
void resolve_boundaries(const transform::TiledSpace& space, TiledBox& box, TiledBoxList& out) {
  const std::size_t k = space.depth();
  for (std::size_t d = 0; d < k; ++d) {
    const i64 last = space.tile_count(d) - 1;
    if (space.last_tile_size(d) == space.tile(d)) continue;  // divisible: no truncation
    Interval& t_range = box.ranges[d];
    Interval& o_range = box.ranges[k + d];
    if (t_range.hi < last) continue;  // interior only
    if (t_range.lo == last) {
      // Entirely in the boundary tile: clamp the offset range.
      o_range = o_range.intersect(Interval{0, space.last_tile_size(d) - 1});
      if (o_range.empty()) return;  // box vanished
      continue;
    }
    // Mixed: split into interior ([lo, last-1]) and boundary ({last}) parts.
    TiledBox interior = box;
    interior.ranges[d] = Interval{t_range.lo, last - 1};
    resolve_boundaries(space, interior, out);
    t_range = Interval{last, last};
    o_range = o_range.intersect(Interval{0, space.last_tile_size(d) - 1});
    if (o_range.empty()) return;
  }
  if (box.points() > 0)
    out.ranges.insert(out.ranges.end(), box.ranges.begin(), box.ranges.end());
}

}  // namespace

std::vector<TiledBox> lex_interval_boxes(const transform::TiledSpace& space,
                                         std::span<const i64> q, std::span<const i64> p) {
  TiledBoxList list;
  lex_interval_boxes_into(space, q, p, list);
  std::vector<TiledBox> out;
  out.reserve(list.count());
  for (std::size_t i = 0; i < list.count(); ++i) {
    const std::span<const Interval> ranges = list.box(i);
    TiledBox box;
    box.ranges.assign(ranges.begin(), ranges.end());
    out.push_back(std::move(box));
  }
  return out;
}

void lex_interval_boxes_into(const transform::TiledSpace& space, std::span<const i64> q,
                             std::span<const i64> p, TiledBoxList& out) {
  const std::size_t dims = space.tiled_dims();
  expects(q.size() == dims && p.size() == dims, "lex_interval_boxes: arity mismatch");
  expects(space.compare(q, p) < 0, "lex_interval_boxes requires q < p");
  out.dims = dims;
  out.ranges.clear();
  // Hoist the per-dimension maximal domains out of the box-building loops
  // (they are O(dims) to fill, vs O(dims^2) max_domain calls otherwise).
  // Refilled on every call: the list may be reused across spaces.
  out.domains.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) out.domains[d] = max_domain(space, d);
  const std::vector<Interval>& domains = out.domains;

  // First dimension where q and p differ.
  std::size_t c = 0;
  while (q[c] == p[c]) ++c;

  // Raw boxes are staged in the reused working box and resolved (boundary
  // coupling) straight into the flat list — same order as staging them all
  // first, without the per-box allocations.
  TiledBox& box = out.scratch;
  auto make_box = [&](std::span<const i64> fixed_from, std::size_t fixed_upto,
                      std::size_t var_dim, Interval var_range) {
    box.ranges.resize(dims);
    for (std::size_t d = 0; d < fixed_upto; ++d)
      box.ranges[d] = Interval{fixed_from[d], fixed_from[d]};
    box.ranges[var_dim] = var_range.intersect(domains[var_dim]);
    for (std::size_t d = var_dim + 1; d < dims; ++d) box.ranges[d] = domains[d];
    if (!box.ranges[var_dim].empty()) resolve_boundaries(space, box, out);
  };

  // Middle piece: prefix equal, dimension c strictly between q_c and p_c.
  if (p[c] - q[c] >= 2) make_box(q, c, c, Interval{q[c] + 1, p[c] - 1});
  // q-side pieces: prefix q up to m-1, dimension m above q_m.
  for (std::size_t m = c + 1; m < dims; ++m)
    make_box(q, m, m, Interval{q[m] + 1, domains[m].hi});
  // p-side pieces: prefix p up to m-1, dimension m below p_m.
  for (std::size_t m = c + 1; m < dims; ++m)
    make_box(p, m, m, Interval{0, p[m] - 1});
}

}  // namespace cmetile::cme

#pragma once
// Replacement-equation polyhedra, specialized. After substituting the
// sampled iteration point, every CME replacement condition this library
// needs is of the form
//
//     ∃ x ∈ [0,L_1)×…×[0,L_n) :  (a·x + c) mod M ∈ [lo, hi]
//
// — a box plus a single congruence-interval constraint ("congruence box").
// This file provides an *exact* emptiness probe for it, the analogue of the
// paper's specialized replacement-polyhedra techniques ([4],[8]): large
// dimensions are folded through the subgroup structure of Z_M (gcd
// folding, O(log M) per fold), and the remaining small dimensions are
// enumerated with the largest one resolved analytically by a floor-sum
// count. A work cap bounds pathological cases; the caller treats the
// resulting `Unknown` conservatively (as interference).
//
// A bounded solution enumerator (true address values, not residues) serves
// the same-line exclusion and the k-way associativity distinct-line count.

#include <functional>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile::cme {

struct CongruenceBox {
  std::vector<i64> extents;  ///< x_d ∈ [0, extents[d])
  std::vector<i64> coeffs;   ///< true (unreduced) coefficients a_d
  i64 base = 0;              ///< true constant c
  i64 modulus = 1;           ///< M (the cache way size in bytes)
  Interval target;           ///< required residues, 0 <= lo <= hi < M

  /// Number of points in the box (0 if any extent is empty).
  i64 box_points() const;
};

enum class Emptiness : std::uint8_t { Empty, NonEmpty, Unknown };

/// Diagnostics accumulated across probes (per-analysis, not thread-safe).
struct ProbeCounters {
  i64 probes = 0;
  i64 fold_rounds = 0;
  i64 enumerated_leaves = 0;
  i64 unknown_results = 0;
};

/// Exact emptiness test with a work cap (leaf evaluations); returns Unknown
/// when the cap is exceeded before a witness is found.
Emptiness probe_nonempty(const CongruenceBox& box, i64 work_cap = 1 << 14,
                         ProbeCounters* counters = nullptr);

/// Reference implementation: brute-force enumeration of the whole box.
/// Only for tests/benches on small instances.
Emptiness probe_nonempty_bruteforce(const CongruenceBox& box);

/// Exact solution count by brute force (tests only).
i64 count_solutions_bruteforce(const CongruenceBox& box);

enum class EnumStatus : std::uint8_t { Exhausted, Capped, StoppedByCallback };

/// Enumerate solution *values* (a·x + c, true arithmetic) of the box's
/// congruence condition. The callback returns false to stop early. At most
/// `cap` units of work (leaves visited + solutions emitted) are spent.
EnumStatus enumerate_solutions(const CongruenceBox& box, i64 cap,
                               const std::function<bool(i64 value)>& fn);

}  // namespace cmetile::cme

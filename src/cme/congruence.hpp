#pragma once
// Replacement-equation polyhedra, specialized. After substituting the
// sampled iteration point, every CME replacement condition this library
// needs is of the form
//
//     ∃ x ∈ [0,L_1)×…×[0,L_n) :  (a·x + c) mod M ∈ [lo, hi]
//
// — a box plus a single congruence-interval constraint ("congruence box").
// This file provides an *exact* emptiness probe for it, the analogue of the
// paper's specialized replacement-polyhedra techniques ([4],[8]): large
// dimensions are folded through the subgroup structure of Z_M (gcd
// folding, O(log M) per fold), and the remaining small dimensions are
// enumerated with the largest one resolved analytically by a floor-sum
// count. A work cap bounds pathological cases; the caller treats the
// resulting `Unknown` conservatively (as interference).
//
// A bounded solution enumerator (true address values, not residues) serves
// the same-line exclusion and the k-way associativity distinct-line count.

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile::cme {

struct CongruenceBox {
  std::vector<i64> extents;  ///< x_d ∈ [0, extents[d])
  std::vector<i64> coeffs;   ///< true (unreduced) coefficients a_d
  i64 base = 0;              ///< true constant c
  i64 modulus = 1;           ///< M (the cache way size in bytes)
  Interval target;           ///< required residues, 0 <= lo <= hi < M

  /// Number of points in the box (0 if any extent is empty).
  i64 box_points() const;
};

enum class Emptiness : std::uint8_t { Empty, NonEmpty, Unknown };

/// Diagnostics accumulated across probes. Not thread-safe: each worker
/// accumulates its own instance and merges with operator+= afterwards
/// (see NestAnalysis::classify_batch).
struct ProbeCounters {
  i64 probes = 0;
  i64 fold_rounds = 0;
  i64 enumerated_leaves = 0;
  i64 unknown_results = 0;
  i64 cache_hits = 0;  ///< probe-cache hits (no probe ran; see cme/analysis)

  ProbeCounters& operator+=(const ProbeCounters& other) {
    probes += other.probes;
    fold_rounds += other.fold_rounds;
    enumerated_leaves += other.enumerated_leaves;
    unknown_results += other.unknown_results;
    cache_hits += other.cache_hits;
    return *this;
  }
};

/// Exact emptiness test with a work cap (leaf evaluations); returns Unknown
/// when the cap is exceeded before a witness is found.
Emptiness probe_nonempty(const CongruenceBox& box, i64 work_cap = 1 << 14,
                         ProbeCounters* counters = nullptr);

/// Reference implementation: brute-force enumeration of the whole box.
/// Only for tests/benches on small instances.
Emptiness probe_nonempty_bruteforce(const CongruenceBox& box);

/// Exact solution count by brute force (tests only).
i64 count_solutions_bruteforce(const CongruenceBox& box);

enum class EnumStatus : std::uint8_t { Exhausted, Capped, StoppedByCallback };

/// Enumerate solution *values* (a·x + c, true arithmetic) of the box's
/// congruence condition. The callback returns false to stop early. At most
/// `cap` units of work (leaves visited + solutions emitted) are spent.
///
/// Templated on the callback so the per-solution call in the innermost
/// loop of the interference check is a direct (inlinable) call, not a
/// type-erased std::function dispatch.
template <typename Fn>
EnumStatus enumerate_solutions(const CongruenceBox& box, i64 cap, Fn&& fn) {
  expects(box.modulus >= 1, "enumerate_solutions: modulus must be >= 1");
  const i64 m = box.modulus;
  const Interval target = box.target.intersect(Interval{0, m - 1});
  if (target.empty() || box.box_points() == 0) return EnumStatus::Exhausted;

  if (box.extents.empty()) {
    if (target.contains(floor_mod(box.base, m)) && !fn(box.base))
      return EnumStatus::StoppedByCallback;
    return EnumStatus::Exhausted;
  }

  // Leaf dimension: largest extent (solved by congruence stepping).
  std::vector<std::size_t> others;
  std::size_t leaf = 0;
  for (std::size_t d = 1; d < box.extents.size(); ++d)
    if (box.extents[d] > box.extents[leaf]) leaf = d;
  for (std::size_t d = 0; d < box.extents.size(); ++d)
    if (d != leaf && box.extents[d] > 1) others.push_back(d);

  const i64 a_true = box.coeffs[leaf];
  const i64 leaf_extent = box.extents[leaf];
  const i64 a_mod = floor_mod(a_true, m);

  i64 budget = cap;
  std::vector<i64> x(others.size(), 0);
  while (true) {
    i64 partial = box.base;
    for (std::size_t d = 0; d < others.size(); ++d) partial += box.coeffs[others[d]] * x[d];
    if (--budget <= 0) return EnumStatus::Capped;

    const i64 cm = floor_mod(partial, m);
    if (a_mod == 0) {
      if (target.contains(cm)) {
        for (i64 xv = 0; xv < leaf_extent; ++xv) {
          if (--budget <= 0) return EnumStatus::Capped;
          if (!fn(partial + a_true * xv)) return EnumStatus::StoppedByCallback;
        }
      }
    } else {
      const i64 g = std::gcd(a_mod, m);
      const i64 m2 = m / g;
      const i64 inv = mod_inverse(a_mod / g, m2);
      // Target residues t with t ≡ cm (mod g), stepped by g.
      const i64 t_start = target.lo + floor_mod(cm - target.lo, g);
      for (i64 t = t_start; t <= target.hi; t += g) {
        const i64 x0 = floor_mod((t - cm) / g % m2 * inv, m2);
        for (i64 xv = x0; xv < leaf_extent; xv += m2) {
          if (--budget <= 0) return EnumStatus::Capped;
          if (!fn(partial + a_true * xv)) return EnumStatus::StoppedByCallback;
        }
      }
    }

    std::size_t d = 0;
    for (; d < others.size(); ++d) {
      if (x[d] + 1 < box.extents[others[d]]) {
        ++x[d];
        std::fill(x.begin(), x.begin() + (std::ptrdiff_t)d, 0);
        break;
      }
    }
    if (d == others.size()) return EnumStatus::Exhausted;
  }
}

}  // namespace cmetile::cme

#pragma once
// Per-level CME analysis of a cache hierarchy (DESIGN.md §12). The CME
// construction is level-agnostic: a HierarchyAnalysis builds one full
// NestAnalysis — equation sets, prepared reuse vectors and (per shard) a
// probe-verdict cache — per level, all sharing the same nest, layout and
// tile vector. Estimation classifies the *same* sample points against
// every level (common random numbers across levels as well as across
// individuals), so per-level estimates are comparable and the weighted
// cost is a smooth function of the tile vector.
//
// Level l's misses are defined as the misses of level l's *effective*
// cache (cache::Hierarchy::effective_config — the level's own geometry
// for inclusive levels, the merged stack for exclusive levels, the
// fully-associative union for victim levels) run standalone over the full
// access stream — the convention under which the HierarchySimulator
// reproduces them (exactly for inclusive/exclusive LRU, as an optimistic
// bound for victim levels; DESIGN.md §16). Each level's NestAnalysis is
// salted with the level's replacement policy and mode so EvalCache
// bindings cannot alias across mode retunes.
//
// Invariant (pinned by hierarchy_test): a single-level hierarchy with
// miss latency 1.0 produces estimates and weighted costs bit-identical to
// the legacy single-cache estimator path (level 0 is always inclusive
// LRU, so its effective config is its own config and its salt is 0).

#include <span>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cme/estimator.hpp"

namespace cmetile::cme {

/// Immutable per-level analysis bundle. Same threading contract as
/// NestAnalysis: classification may run from one thread at a time per
/// instance (classify_batch parallelizes internally); the GA parallelizes
/// across instances. Holds a copy of the hierarchy and references the
/// nest (caller keeps it alive, same as NestAnalysis).
class HierarchyAnalysis {
 public:
  /// Validates the hierarchy; builds one NestAnalysis per level.
  /// `shared_reuse_by_level` (optional) supplies a precomputed ReuseInfo
  /// per level — level l's entry becomes options.shared_reuse for that
  /// level's NestAnalysis (same ownership contract as AnalysisOptions).
  /// Must be empty or exactly hierarchy depth.
  HierarchyAnalysis(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                    cache::Hierarchy hierarchy, const transform::TileVector& tiles,
                    AnalysisOptions options = {},
                    std::span<const reuse::ReuseInfo> shared_reuse_by_level = {});

  std::size_t depth() const { return levels_.size(); }
  const NestAnalysis& level(std::size_t l) const { return levels_[l]; }
  const cache::Hierarchy& hierarchy() const { return hierarchy_; }

 private:
  cache::Hierarchy hierarchy_;
  std::vector<NestAnalysis> levels_;
};

/// Per-level miss estimates plus the latency-weighted scalar the GA
/// minimizes. `levels[l]` pairs with `hierarchy.levels[l]` (0 = L1).
struct HierarchyEstimate {
  std::vector<MissEstimate> levels;
  /// Per-level write-back estimates (dirty-generation model, DESIGN.md
  /// §16). Only computed for levels with writeback_latency > 0 — other
  /// levels hold default (zero) entries, so the legacy read-only paths
  /// never pay for or depend on the store classifier. Empty when the
  /// whole hierarchy has zero write-back latency.
  std::vector<WritebackEstimate> writebacks;
  /// Σ_level replacement_misses(level) × miss_latency(level)
  /// + Σ_level writebacks(level) × writeback_latency(level) — absolute
  /// stall units (latency unit × events). Cold misses are excluded for
  /// consistency with the paper's replacement-miss objective. For the
  /// tiling search they are also tiling-invariant, so the argmin is
  /// unchanged; in the padding searches pads can shift cold counts, where
  /// replacement-only simply mirrors the paper's single-cache choice.
  /// Write-backs (whole generations) are NOT tiling-invariant — that is
  /// the point of folding them in.
  double weighted_cost = 0.0;
};

/// Estimate every level on one shared sample (the hierarchy analogue of
/// estimate_with_points; see that function for the sampling contract).
/// `cache` (optional) routes each level's classification through the
/// EvalCache slice of the same index — bit-identical estimates with
/// cross-genome reuse (cme/eval_cache.hpp).
HierarchyEstimate estimate_hierarchy_with_points(const HierarchyAnalysis& analysis,
                                                 std::span<const std::vector<i64>> points,
                                                 double confidence = 0.90,
                                                 EvalCache* cache = nullptr);

/// Estimate every level with options (sampled, or exact under the
/// threshold — the hierarchy analogue of estimate_misses).
HierarchyEstimate estimate_hierarchy(const HierarchyAnalysis& analysis,
                                     const EstimatorOptions& options = {});

/// Weighted cost of an already-computed per-level estimate set.
double weighted_cost(const cache::Hierarchy& hierarchy, std::span<const MissEstimate> levels);

}  // namespace cmetile::cme

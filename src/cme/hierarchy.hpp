#pragma once
// Per-level CME analysis of a cache hierarchy (DESIGN.md §12). The CME
// construction is level-agnostic: a HierarchyAnalysis builds one full
// NestAnalysis — equation sets, prepared reuse vectors and (per shard) a
// probe-verdict cache — per level, all sharing the same nest, layout and
// tile vector. Estimation classifies the *same* sample points against
// every level (common random numbers across levels as well as across
// individuals), so per-level estimates are comparable and the weighted
// cost is a smooth function of the tile vector.
//
// Level l's misses are defined as the misses of level l's cache run
// standalone over the full access stream — the convention under which the
// inclusive HierarchySimulator reproduces them exactly (cache/simulator).
//
// Invariant (pinned by hierarchy_test): a single-level hierarchy with
// miss latency 1.0 produces estimates and weighted costs bit-identical to
// the legacy single-cache estimator path.

#include <span>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cme/estimator.hpp"

namespace cmetile::cme {

/// Immutable per-level analysis bundle. Same threading contract as
/// NestAnalysis: classification may run from one thread at a time per
/// instance (classify_batch parallelizes internally); the GA parallelizes
/// across instances. Holds a copy of the hierarchy and references the
/// nest (caller keeps it alive, same as NestAnalysis).
class HierarchyAnalysis {
 public:
  /// Validates the hierarchy; builds one NestAnalysis per level.
  /// `shared_reuse_by_level` (optional) supplies a precomputed ReuseInfo
  /// per level — level l's entry becomes options.shared_reuse for that
  /// level's NestAnalysis (same ownership contract as AnalysisOptions).
  /// Must be empty or exactly hierarchy depth.
  HierarchyAnalysis(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                    cache::Hierarchy hierarchy, const transform::TileVector& tiles,
                    AnalysisOptions options = {},
                    std::span<const reuse::ReuseInfo> shared_reuse_by_level = {});

  std::size_t depth() const { return levels_.size(); }
  const NestAnalysis& level(std::size_t l) const { return levels_[l]; }
  const cache::Hierarchy& hierarchy() const { return hierarchy_; }

 private:
  cache::Hierarchy hierarchy_;
  std::vector<NestAnalysis> levels_;
};

/// Per-level miss estimates plus the latency-weighted scalar the GA
/// minimizes. `levels[l]` pairs with `hierarchy.levels[l]` (0 = L1).
struct HierarchyEstimate {
  std::vector<MissEstimate> levels;
  /// Σ_level replacement_misses(level) × miss_latency(level) — absolute
  /// stall units (latency unit × misses). Cold misses are excluded for
  /// consistency with the paper's replacement-miss objective. For the
  /// tiling search they are also tiling-invariant, so the argmin is
  /// unchanged; in the padding searches pads can shift cold counts, where
  /// replacement-only simply mirrors the paper's single-cache choice.
  double weighted_cost = 0.0;
};

/// Estimate every level on one shared sample (the hierarchy analogue of
/// estimate_with_points; see that function for the sampling contract).
/// `cache` (optional) routes each level's classification through the
/// EvalCache slice of the same index — bit-identical estimates with
/// cross-genome reuse (cme/eval_cache.hpp).
HierarchyEstimate estimate_hierarchy_with_points(const HierarchyAnalysis& analysis,
                                                 std::span<const std::vector<i64>> points,
                                                 double confidence = 0.90,
                                                 EvalCache* cache = nullptr);

/// Estimate every level with options (sampled, or exact under the
/// threshold — the hierarchy analogue of estimate_misses).
HierarchyEstimate estimate_hierarchy(const HierarchyAnalysis& analysis,
                                     const EstimatorOptions& options = {});

/// Weighted cost of an already-computed per-level estimate set.
double weighted_cost(const cache::Hierarchy& hierarchy, std::span<const MissEstimate> levels);

}  // namespace cmetile::cme

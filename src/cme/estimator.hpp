#pragma once
// Miss-ratio estimation from the CME point classifier.
//
// Exact mode traverses every iteration point (paper §2.2, feasible only for
// small spaces). Sampled mode implements §2.3: Simple Random Sampling of
// iteration points, the miss outcome as a Bernoulli variable, and a sample
// size chosen for a confidence interval of width 0.1 at 90% confidence —
// the paper's 164 points (conventions in DESIGN.md §7).
// Sampling happens in the *original* rectangular
// space, which is the same point multiset for every tile vector; a GA run
// can therefore reuse one sample set across all evaluated tilings (common
// random numbers) — see core/objective. The hierarchy estimator
// (cme/hierarchy.hpp) reuses the same sample across cache levels too.
//
// Threading: every function here is a pure function of its arguments and
// may be called concurrently on distinct NestAnalysis instances; for one
// instance, the NestAnalysis contract applies (one caller at a time —
// classify_batch parallelizes internally across shards).

#include <span>
#include <vector>

#include "cme/analysis.hpp"
#include "support/stats.hpp"

namespace cmetile::cme {

/// The paper's sample size: "only 164 points of the iteration space must
/// be explored" for a width-0.1 / 90% interval. Our exact formula gives
/// 165 (the paper evidently used z = 1.28); we pin the default to the
/// published constant and cross-check the formula in tests.
inline constexpr i64 kPaperSampleCount = 164;

struct EstimatorOptions {
  double ci_width = 0.1;       ///< total CI width (paper: 0.1)
  double confidence = 0.90;    ///< paper: 90% (see stats.hpp for the convention)
  i64 sample_count = 0;        ///< 0 = derive from ci_width/confidence (the paper's 164)
  std::uint64_t seed = 0xC3E5EEDULL;  ///< sample-draw seed (common random numbers)
  i64 exact_threshold = 0;     ///< traverse exactly when points <= threshold
};

/// One estimate. Ratios are misses per access in [0, 1]; *_half_width are
/// the CI half-widths of the corresponding ratio at the requested
/// confidence (0 in exact mode); access_count is the absolute number of
/// accesses the full nest executes, so ratio × access_count converts any
/// ratio into an absolute miss count.
struct MissEstimate {
  double total_ratio = 0.0;
  double replacement_ratio = 0.0;
  double cold_ratio = 0.0;
  double total_half_width = 0.0;        ///< CI half-width of total_ratio
  double replacement_half_width = 0.0;  ///< CI half-width of replacement_ratio
  i64 sampled_points = 0;
  bool exact = false;
  i64 access_count = 0;  ///< accesses in the full space

  /// Estimated absolute number of replacement misses — the GA objective f
  /// (paper §3.1: MIN f(T_1..T_k) = #ReplacementMisses).
  double replacement_misses() const { return replacement_ratio * (double)access_count; }
  double total_misses() const { return total_ratio * (double)access_count; }
};

/// 0-based sample points drawn uniformly from the nest's iteration space
/// (with replacement). Deterministic in (nest shape, count, seed).
std::vector<std::vector<i64>> sample_points(const ir::LoopNest& nest, i64 count,
                                            std::uint64_t seed);

/// Sample size the options resolve to (164 for the paper's width 0.1 /
/// 90% defaults; otherwise the exact formula of support/stats.hpp).
i64 resolved_sample_count(const EstimatorOptions& options);

/// Write-back traffic estimate under the dirty-generation model
/// (DESIGN.md §16): every store whose store-restricted classification
/// (NestAnalysis::classify_store_generation) is a miss begins a new dirty
/// generation of its line, and each generation produces exactly one
/// write-back — a dirty eviction during the run or a line flushed dirty at
/// the end. Ratios are generation starts per *store* access.
struct WritebackEstimate {
  double generation_ratio = 0.0;
  double half_width = 0.0;  ///< CI half-width of generation_ratio
  i64 sampled_points = 0;
  bool exact = false;
  i64 store_access_count = 0;  ///< store accesses in the full space

  /// Estimated absolute write-back count (dirty evictions + final flush).
  double writebacks() const { return generation_ratio * (double)store_access_count; }
};

/// Estimate write-back traffic on a caller-provided sample (the same
/// shared sample the miss estimators use — common random numbers). A nest
/// with no store references returns a zero estimate.
WritebackEstimate estimate_writebacks_with_points(const NestAnalysis& analysis,
                                                  std::span<const std::vector<i64>> points,
                                                  double confidence = 0.90);

/// Exact write-back count by full traversal (small spaces / tests).
WritebackEstimate estimate_writebacks_exact(const NestAnalysis& analysis);

/// Estimate with a caller-provided sample (enables common random numbers).
/// Classification goes through the batched engine (classify_batch):
/// scratch reuse + probe cache, sharded across threads when OpenMP is on.
MissEstimate estimate_with_points(const NestAnalysis& analysis,
                                  std::span<const std::vector<i64>> points,
                                  double confidence = 0.90);

/// Incremental variant: classification goes through the EvalCache overload
/// of classify_batch — bit-identical estimates, but prepared tables and
/// verdicts are reused across analyses sharing everything but the tile
/// vector (cme/eval_cache.hpp). `level` selects the cache slice.
MissEstimate estimate_with_points(const NestAnalysis& analysis,
                                  std::span<const std::vector<i64>> points, double confidence,
                                  EvalCache& cache, std::size_t level);

/// Estimate with options (sampled, or exact under the threshold).
MissEstimate estimate_misses(const NestAnalysis& analysis, const EstimatorOptions& options = {});

/// Exact miss counts by full traversal (use only for small spaces).
MissEstimate estimate_exact(const NestAnalysis& analysis);

/// Exact per-reference counts by full traversal, indexed by reference
/// with the aggregate as the last element (tests/validation).
std::vector<cache::MissStats> classify_all_points(const NestAnalysis& analysis);

}  // namespace cmetile::cme

#pragma once
// Per-configuration CME analysis context and the point classifier
// ("traversing the iteration space", paper §2.2–2.3). A NestAnalysis binds
// a loop nest + memory layout (possibly padded) + cache + tile vector and
// answers, for any iteration point and reference: hit, compulsory miss or
// replacement miss.
//
// Classification of reference R_A at 0-based point z:
//  1. Candidate reuse sources: for every reuse generator r (reuse module),
//     q = z − r and q = z + r (tiling can reverse execution order across
//     tiles); keep q's that are inside the iteration space, precede z in
//     *tiled* execution order, and touch R_A's current memory line
//     (concrete-address check — this is the compulsory-equation test with
//     the point substituted; paper §2.3 "Counting Compulsory Polyhedra").
//     No candidate ⇒ compulsory (cold) miss.
//  2. Candidates are tried from closest (in tiled order) to farthest; a
//     candidate survives if the execution interval (q, z] contains no
//     interference: for a k-way cache, fewer than k distinct other lines
//     mapping to R_A's set (paper §2.2). Intervals decompose into
//     congruence boxes (interval_split + congruence); single-point pieces
//     (endpoints) are evaluated with concrete addresses.
//  3. Any surviving candidate ⇒ hit; otherwise ⇒ replacement miss.
//
// classify() is the per-point reference path. classify_batch() is the
// batched engine (DESIGN.md §11): it shards the points with parallel_for,
// reuses per-shard scratch buffers (no per-point heap churn), and memoizes
// congruence-probe verdicts in a per-shard cache keyed on the *folded* box
// — the same box recurs for many sampled points within one tile vector.
// Outcomes are bit-identical to per-point classify() for any shard count,
// with or without the probe cache.
//
// Thread safety: the instance is immutable after construction except for
// the diagnostic counters, which are only written outside parallel regions
// (per-shard counters are merged after the batch completes). classify()
// and classify_batch() may be called from one thread at a time per
// instance; the GA parallelizes across NestAnalysis instances, and
// classify_batch parallelizes internally across shards.

#include <array>
#include <span>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cme/congruence.hpp"
#include "cme/interval_split.hpp"
#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "reuse/reuse.hpp"
#include "transform/padding.hpp"
#include "transform/tiling.hpp"

namespace cmetile::cme {

enum class Outcome : std::uint8_t { Hit, ColdMiss, ReplacementMiss };

struct AnalysisOptions {
  i64 probe_work_cap = 1 << 14;   ///< leaf budget per emptiness probe
  i64 enumerate_cap = 1 << 15;    ///< witness budget per exclusion/assoc scan
  bool probe_cache = true;        ///< memoize probe verdicts in classify_batch
  std::size_t probe_cache_capacity = 1u << 13;  ///< cached boxes per shard
};

class NestAnalysis {
 public:
  NestAnalysis(const ir::LoopNest& nest, ir::MemoryLayout layout, cache::CacheConfig cache,
               transform::TileVector tiles, AnalysisOptions options = {});

  /// Classify one access; z is the 0-based iteration point (z_d = i_d - lower_d).
  Outcome classify(std::span<const i64> z, std::size_t ref) const;

  /// Classify every (point, reference) pair of the batch. Outcomes are
  /// point-major: result[p * n_refs + r]. `shards == 0` uses one shard per
  /// hardware thread; any positive count gives the same outcomes.
  std::vector<Outcome> classify_batch(std::span<const std::vector<i64>> points,
                                      int shards = 0) const;

  const ir::LoopNest& nest() const { return *nest_; }
  const ir::MemoryLayout& layout() const { return layout_; }
  const cache::CacheConfig& cache_config() const { return cache_; }
  const transform::TiledSpace& space() const { return space_; }
  const transform::TileVector& tiles() const { return tiles_; }
  const reuse::ReuseInfo& reuse_info() const { return reuse_; }

  const ProbeCounters& probe_counters() const { return counters_; }

 private:
  struct RefData {
    std::vector<i64> coeffs0;       ///< byte-address coefficients over z
    i64 base0 = 0;                  ///< byte address at z = 0
    std::vector<i64> tiled_coeffs;  ///< coefficients over (t_1..t_k, o_1..o_k)
    std::size_t array = 0;
  };

  /// Reuse generator pre-resolved for the classifier: one entry per
  /// (generator, ±) with the sign already applied (q = z − steps) and
  /// structural duplicates — identical (source, signed vector) — removed
  /// at construction, so the gather loop needs no runtime deduplication.
  /// Only the nonzero dimensions are stored (most vectors step one or two
  /// loops), plus the source-reference address displacement along the
  /// vector, so gathering touches only the changed coordinates.
  struct ReuseStep {
    std::uint32_t dim = 0;
    i64 delta = 0;
  };
  struct PreparedReuse {
    std::size_t source = 0;
    i64 addr_delta = 0;  ///< Σ_d coeffs0[source][d] · delta_d
    std::vector<ReuseStep> steps;
  };

  struct Candidate {
    std::size_t source = 0;
    int cmp = 0;            ///< compare(q_to, p_to), cached from gathering
    std::vector<i64> q;     ///< 0-based source point
    std::vector<i64> q_to;  ///< tiled coordinates of q
  };

  /// Probe-cache entry (open-addressed, fixed capacity, inline key — no
  /// heap traffic on lookups). The modulus (way size) and residue target
  /// are fixed per analysis, and a box's coefficient vector is fully
  /// determined by the reference and the set of box dimensions that
  /// survive filtering (they are that reference's tiled coefficients), so
  /// a box is identified by (kind, ref, dim mask, base, extents) — no
  /// coefficients stored or compared. kEmptiness folds the base modulo
  /// the way size (probe verdicts are invariant under that fold, which is
  /// what makes boxes from different cache lines collide — the set
  /// structure is periodic); kSameArrayInterference keys the true base
  /// (its verdict depends on actual address values, not residues). Boxes
  /// with more than kMaxCacheDims filtered dimensions bypass the cache.
  static constexpr std::size_t kMaxCacheDims = 8;
  static constexpr std::uint8_t kEmptiness = 0;
  static constexpr std::uint8_t kSameArrayInterference = 1;
  struct ProbeEntry {
    std::uint64_t tag = 0;  ///< key hash, forced nonzero; 0 = empty slot
    i64 base = 0;
    std::uint64_t dim_mask = 0;  ///< tiled dims contributing an extent
    std::uint32_t ref = 0;
    std::uint8_t kind = 0;
    std::uint8_t ndims = 0;
    std::uint8_t verdict = 0;
    std::array<i64, kMaxCacheDims> extents{};
  };

  /// Per-shard mutable state: reused buffers, the probe cache and the
  /// shard's counters. One Scratch is owned by exactly one worker.
  struct Scratch {
    std::vector<Candidate> candidates;  ///< slot pool (inner buffers reused)
    std::size_t n_candidates = 0;
    std::vector<std::size_t> order;     ///< sorted candidate indices
    std::vector<i64> p_to;     ///< tiled coordinates of the prepared point
    std::vector<i64> pt_addr;  ///< byte address of each reference at the point
    std::vector<i64> pt_line;  ///< cache line of each reference at the point
    std::vector<i64> pt_set;   ///< cache set of each reference at the point
    std::vector<i64> lines_found;
    TiledBoxList boxes;
    CongruenceBox box;
    std::vector<ProbeEntry> probe_cache;  ///< power-of-two slots, lazily sized
    std::size_t probe_cache_hint = 0;  ///< expected probe volume (sizes the table)
    ProbeCounters counters;
    bool use_cache = false;
  };

  i64 address_at(std::size_t ref, std::span<const i64> z) const;
  /// Fill the point-shared parts of the scratch (tiled coordinates, cache
  /// line and set per reference): one call serves all n_refs
  /// classifications of the same point.
  void prepare_point(std::span<const i64> z, Scratch& scratch) const;
  /// Classify one access; prepare_point(z, scratch) must have run.
  Outcome classify_impl(std::span<const i64> z, std::size_t ref, Scratch& scratch) const;
  bool interval_interference_free(const Candidate& cand, std::span<const i64> p_to,
                                  std::size_t ref, i64 line_a, Scratch& scratch) const;
  Emptiness cached_probe(const CongruenceBox& box, std::size_t ref, std::uint64_t dim_mask,
                         Scratch& scratch) const;
  bool same_array_box_interferes(const CongruenceBox& box, std::size_t ref,
                                 std::uint64_t dim_mask, Scratch& scratch) const;
  /// Locate the cache slot for a key; on a miss the slot's key fields are
  /// written (possibly evicting an older entry) and the caller fills
  /// `verdict`.
  ProbeEntry* find_probe_slot(Scratch& scratch, std::uint8_t kind, std::size_t ref,
                              std::uint64_t dim_mask, i64 base, std::span<const i64> extents,
                              bool& hit) const;

  const ir::LoopNest* nest_;
  ir::MemoryLayout layout_;
  cache::CacheConfig cache_;
  transform::TileVector tiles_;
  transform::TiledSpace space_;
  reuse::ReuseInfo reuse_;
  AnalysisOptions options_;
  std::vector<RefData> refs_;
  std::vector<std::vector<PreparedReuse>> prepared_reuse_;  ///< per reference
  std::vector<i64> trips_;
  int line_shift_ = 0;  ///< log2(line_bytes); line size is a validated po2
  i64 sets_ = 1;
  i64 set_mask_ = -1;   ///< sets - 1 when the set count is po2, else -1
  /// Written only outside parallel regions: by the scalar classify()
  /// (single-thread contract) and by the post-batch merge of per-shard
  /// counters. Never touched inside classify_batch's parallel_for.
  mutable ProbeCounters counters_;
};

}  // namespace cmetile::cme

#pragma once
// Per-configuration CME analysis context and the point classifier
// ("traversing the iteration space", paper §2.2–2.3). A NestAnalysis binds
// a loop nest + memory layout (possibly padded) + cache + tile vector and
// answers, for any iteration point and reference: hit, compulsory miss or
// replacement miss.
//
// Classification of reference R_A at 0-based point z:
//  1. Candidate reuse sources: for every reuse generator r (reuse module),
//     q = z − r and q = z + r (tiling can reverse execution order across
//     tiles); keep q's that are inside the iteration space, precede z in
//     *tiled* execution order, and touch R_A's current memory line
//     (concrete-address check — this is the compulsory-equation test with
//     the point substituted; paper §2.3 "Counting Compulsory Polyhedra").
//     No candidate ⇒ compulsory (cold) miss.
//  2. Candidates are tried from closest (in tiled order) to farthest; a
//     candidate survives if the execution interval (q, z] contains no
//     interference: for a k-way cache, fewer than k distinct other lines
//     mapping to R_A's set (paper §2.2). Intervals decompose into
//     congruence boxes (interval_split + congruence); single-point pieces
//     (endpoints) are evaluated with concrete addresses.
//  3. Any surviving candidate ⇒ hit; otherwise ⇒ replacement miss.
//
// classify() is the per-point reference path. classify_batch() is the
// batched engine (DESIGN.md §11): it shards the points with parallel_for,
// reuses per-shard scratch buffers (no per-point heap churn), and memoizes
// congruence-probe verdicts in a per-shard cache keyed on the *folded* box
// — the same box recurs for many sampled points within one tile vector.
// Point preparation (tiled coordinates, per-reference addresses/lines/sets)
// runs in structure-of-arrays blocks of four points through the portable
// SIMD wrapper (support/simd.hpp) when AnalysisOptions::simd is on.
// Outcomes are bit-identical to per-point classify() for any shard count,
// with or without the probe cache, and for every SIMD backend including
// the scalar fallback (DESIGN.md §14).
//
// The EvalCache overload of classify_batch() additionally reuses work
// *across analyses* that share everything but the tile vector — the GA
// re-evaluating mutated genomes. See cme/eval_cache.hpp for the keying and
// invalidation invariants.
//
// Thread safety: the instance is immutable after construction except for
// the diagnostic counters, which are only written outside parallel regions
// (per-shard counters are merged after the batch completes). classify()
// and classify_batch() may be called from one thread at a time per
// instance; the GA parallelizes across NestAnalysis instances, and
// classify_batch parallelizes internally across shards.

#include <array>
#include <span>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cme/congruence.hpp"
#include "cme/interval_split.hpp"
#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "reuse/reuse.hpp"
#include "transform/padding.hpp"
#include "transform/tiling.hpp"

namespace cmetile::cme {

class EvalCache;
struct EvalCacheOptions;
struct EvalCacheStats;
namespace detail {
struct EvalLevel;
struct EvalPrepared;
}  // namespace detail

enum class Outcome : std::uint8_t { Hit, ColdMiss, ReplacementMiss };

struct AnalysisOptions {
  i64 probe_work_cap = 1 << 14;   ///< leaf budget per emptiness probe
  i64 enumerate_cap = 1 << 15;    ///< witness budget per exclusion/assoc scan
  bool probe_cache = true;        ///< memoize probe verdicts in classify_batch
  std::size_t probe_cache_capacity = 1u << 13;  ///< cached boxes per shard
  /// Use the SIMD batch-prepare / tiny-box paths (bit-identical to scalar
  /// on every backend; off = plain scalar loops, the benchmark baseline).
  bool simd = true;
  /// Optional precomputed reuse analysis for exactly this (nest, layout,
  /// line_bytes) binding — skips analyze_reuse in the constructor. The
  /// caller owns it and keeps it alive for the analysis lifetime; passing
  /// a mismatched ReuseInfo is undefined. core/objective uses this to
  /// amortize reuse analysis across every genome of a GA run.
  const reuse::ReuseInfo* shared_reuse = nullptr;
  /// Folded verbatim into the EvalCache binding digest. Classification is
  /// a pure function of the geometry, but callers can model distinctions
  /// the CMEs cannot see — HierarchyAnalysis salts each level with its
  /// replacement policy and level mode so retuning either invalidates
  /// warm entries instead of silently serving stale verdict memos
  /// (eval_cache.hpp). 0 (the default) leaves digests unchanged.
  std::uint64_t binding_salt = 0;
};

namespace detail {

/// Probe-cache entry (open-addressed, fixed capacity, inline key — no
/// heap traffic on lookups). The modulus (way size) and residue target
/// are fixed per analysis, and a box's coefficient vector is fully
/// determined by the reference, the set of box dimensions that survive
/// filtering, and the tile sizes of the filtered *tile-coordinate* dims
/// (d < k: coefficient = coeffs0[d]·T_d; offset dims carry coeffs0
/// unchanged), so a box is identified by (kind, ref, dim mask, base,
/// extents, masked tile sizes) — no coefficients stored or compared.
/// kEmptiness folds the base modulo the way size (probe verdicts are
/// invariant under that fold, which is what makes boxes from different
/// cache lines collide — the set structure is periodic);
/// kSameArrayInterference keys the true base (its verdict depends on
/// actual address values, not residues). Boxes with more than
/// kMaxCacheDims filtered dimensions, or more than kMaxProbeTileDims
/// filtered tile-coordinate dimensions, bypass the cache.
///
/// The tile-size key component and the epoch make entries valid *across*
/// tile vectors: a table that outlives one batch (EvalCache's persistent
/// per-worker table) keeps returning correct verdicts for re-encountered
/// boxes under new tilings. Entries whose epoch differs from the current
/// one are stale (the binding changed) and are treated as empty.
inline constexpr std::size_t kMaxCacheDims = 8;
inline constexpr std::size_t kMaxProbeTileDims = 4;
struct ProbeEntry {
  i64 base = 0;
  std::uint64_t dim_mask = 0;  ///< tiled dims contributing an extent
  std::uint32_t ref = 0;
  std::uint32_t epoch = 0;  ///< binding epoch; mismatch = stale slot
  std::uint8_t kind = 0;
  std::uint8_t ndims = 0;
  std::uint8_t verdict = 0;
  std::uint8_t n_tiles = 0;
  std::array<i64, kMaxCacheDims> extents{};
  std::array<i64, kMaxProbeTileDims> tiles{};  ///< T_d of masked dims < k
};

/// Open-addressed table split into a tag array and a payload array: a
/// window scan reads only tags (one cache line instead of one per
/// payload slot, which matters once the table outgrows L2) and touches
/// a payload entry only on a tag match or to fill a miss. The tag is
/// the key hash with the binding epoch folded in, forced nonzero
/// (0 = empty slot), so entries from a previous binding simply never
/// match again.
template <typename Entry>
struct TagTable {
  std::vector<std::uint64_t> tags;
  std::vector<Entry> entries;
  bool empty() const { return tags.empty(); }
  void reset(std::size_t size) {  ///< size must be a power of two
    tags.assign(size, 0);
    entries.assign(size, Entry{});
  }
  void clear() {
    tags.clear();
    entries.clear();
  }
};
using ProbeTable = TagTable<ProbeEntry>;

}  // namespace detail

class NestAnalysis {
 public:
  NestAnalysis(const ir::LoopNest& nest, ir::MemoryLayout layout, cache::CacheConfig cache,
               transform::TileVector tiles, AnalysisOptions options = {});

  /// Classify one access; z is the 0-based iteration point (z_d = i_d - lower_d).
  Outcome classify(std::span<const i64> z, std::size_t ref) const;

  /// Write-back variant of classify(): reuse candidates are restricted to
  /// *store* sources. Under the dirty-generation model (DESIGN.md §16) a
  /// store whose restricted classification is a miss begins a new dirty
  /// generation of its memory line, and each generation produces exactly
  /// one write-back (a dirty eviction, or a line left dirty at the end).
  /// `ref` must be a Write reference. Scalar path only (the write-back
  /// estimator samples far fewer trials than the miss estimator).
  Outcome classify_store_generation(std::span<const i64> z, std::size_t ref) const;

  /// Classify every (point, reference) pair of the batch. Outcomes are
  /// point-major: result[p * n_refs + r]. `shards == 0` uses one shard per
  /// hardware thread; any positive count gives the same outcomes.
  std::vector<Outcome> classify_batch(std::span<const std::vector<i64>> points,
                                      int shards = 0) const;

  /// Incremental variant: bit-identical outcomes to the plain overload,
  /// but per-reference prepared tables, classification verdicts and probe
  /// verdicts are reused through `cache` across every analysis sharing
  /// this nest/layout/cache-config/points binding — only the tile vector
  /// may differ. `level` selects the cache slice (hierarchy level index;
  /// 0 for single-cache). The caller must keep `points` alive and
  /// unmodified at a stable address while the binding is in use (the
  /// sample-identity fast path compares the span's address).
  std::vector<Outcome> classify_batch(std::span<const std::vector<i64>> points, EvalCache& cache,
                                      std::size_t level, int shards = 0) const;

  const ir::LoopNest& nest() const { return *nest_; }
  const ir::MemoryLayout& layout() const { return layout_; }
  const cache::CacheConfig& cache_config() const { return cache_; }
  const transform::TiledSpace& space() const { return space_; }
  const transform::TileVector& tiles() const { return tiles_; }
  const reuse::ReuseInfo& reuse_info() const { return reuse_; }

  const ProbeCounters& probe_counters() const { return counters_; }

 private:
  struct RefData {
    std::vector<i64> coeffs0;       ///< byte-address coefficients over z
    i64 base0 = 0;                  ///< byte address at z = 0
    std::vector<i64> tiled_coeffs;  ///< coefficients over (t_1..t_k, o_1..o_k)
    std::size_t array = 0;
  };

  /// Reuse generator pre-resolved for the classifier: one entry per
  /// (generator, ±) with the sign already applied (q = z − steps) and
  /// structural duplicates — identical (source, signed vector) — removed
  /// at construction, so the gather loop needs no runtime deduplication.
  /// Only the nonzero dimensions are stored (most vectors step one or two
  /// loops), plus the address displacement along the vector for *every*
  /// reference: address_at(b, q) = pt_addr[b] − addr_delta_by_ref[b], so
  /// neither q nor per-endpoint address polynomials are ever materialized.
  struct ReuseStep {
    std::uint32_t dim = 0;
    i64 delta = 0;
  };
  struct PreparedReuse {
    std::size_t source = 0;
    i64 addr_delta = 0;  ///< addr_delta_by_ref[source], kept hot for the line check
    std::vector<ReuseStep> steps;
    std::vector<i64> addr_delta_by_ref;  ///< Σ_d coeffs0[b][d] · delta_d per ref b
  };

  struct Candidate {
    std::size_t source = 0;
    std::uint32_t entry = 0;  ///< index into prepared_reuse_[ref]
    std::uint32_t aux = 0;  ///< warm path: position in the binding's cand_entries
    int cmp = 0;            ///< compare(q_to, p_to), cached from gathering
    std::vector<i64> q_to;  ///< tiled coordinates of q
  };

  /// Per-shard mutable state: reused buffers, the probe cache and the
  /// shard's counters. One Scratch is owned by exactly one worker.
  struct Scratch {
    std::vector<Candidate> candidates;  ///< slot pool (inner buffers reused)
    std::size_t n_candidates = 0;
    std::vector<std::size_t> order;     ///< sorted candidate indices
    // Views the classifier reads. They alias either the scalar per-point
    // buffers (prepare_point), one row of the SIMD block tables
    // (prepare_block), or — for the address tables in EvalCache mode —
    // rows of the binding's prepared tables.
    const i64* p_to = nullptr;     ///< tiled coordinates of the point [2k]
    const i64* pt_addr = nullptr;  ///< byte address per reference [n_refs]
    const i64* pt_line = nullptr;  ///< cache line per reference [n_refs]
    const i64* pt_set = nullptr;   ///< cache set per reference [n_refs]
    std::vector<i64> p_to_buf;
    std::vector<i64> pt_addr_buf;
    std::vector<i64> pt_line_buf;
    std::vector<i64> pt_set_buf;
    std::vector<i64> blk_p_to;   ///< SoA block rows: [i * 2k + d], i < 4
    std::vector<i64> blk_addr;   ///< [i * n_refs + b]
    std::vector<i64> blk_line;
    std::vector<i64> blk_set;
    std::vector<i64> lane_buf;   ///< z transposed to lanes: [d * 4 + i]
    std::vector<i64> q_point;    ///< original-coordinate q for domain checks
    std::vector<i64> lines_found;
    TiledBoxList boxes;
    CongruenceBox box;
    detail::ProbeTable probe_cache_storage;
    /// The probe table in use: the per-batch storage above, or a
    /// persistent per-worker table owned by an EvalCache.
    detail::ProbeTable* probe_cache = &probe_cache_storage;
    std::size_t probe_cache_hint = 0;  ///< expected probe volume (sizes the table)
    std::uint32_t epoch = 0;  ///< binding epoch stamped into new entries
    /// Persistent-probe-table statistics sink (EvalCache mode only).
    EvalCacheStats* eval_stats = nullptr;
    ProbeCounters counters;
    bool use_cache = false;
    /// Restrict gathered reuse candidates to store sources (the
    /// classify_store_generation path). Never set in batch mode.
    bool stores_only = false;
  };

  i64 address_at(std::size_t ref, std::span<const i64> z) const;
  /// Non-rectangular nests only: whether the reuse source q = z − steps is
  /// an actual iteration of the (triangular/trapezoidal) domain, not just
  /// inside the bounding box. Tile-independent, so it runs with the other
  /// bind-time prefilters. `point` is a caller-owned scratch buffer.
  bool source_in_domain(std::span<const i64> z, const PreparedReuse& rc,
                        std::vector<i64>& point) const;
  /// Fill the point-shared parts of the scratch (tiled coordinates, cache
  /// line and set per reference) for one point, scalar: one call serves
  /// all n_refs classifications of the same point. Rebinds the views.
  void prepare_point(std::span<const i64> z, Scratch& scratch) const;
  /// SIMD batch prepare: same tables for up to four points at once in
  /// structure-of-arrays form (lane = point). `addresses` false computes
  /// only the tiled coordinates (EvalCache mode reads addresses from the
  /// binding's prepared tables). Callers bind the views per point with
  /// bind_block_row.
  void prepare_block(std::span<const std::vector<i64>> points, std::size_t first,
                     std::size_t count, bool addresses, Scratch& scratch) const;
  void bind_block_row(std::size_t i, bool addresses, Scratch& scratch) const;
  /// Classify one access; the scratch views must be bound for z.
  /// `pre` (optional) is the prefiltered candidate-entry list from an
  /// EvalCache binding: indices into prepared_reuse_[ref] that pass the
  /// tile-independent inside-bounds and same-line filters at z, letting
  /// the gather skip those checks.
  Outcome classify_impl(std::span<const i64> z, std::size_t ref, Scratch& scratch,
                        const std::uint16_t* pre = nullptr, std::size_t n_pre = 0) const;
  bool interval_interference_free(const Candidate& cand, std::span<const i64> p_to,
                                  std::size_t ref, i64 line_a, Scratch& scratch) const;
  /// The strict-interior part of the interference test (congruence boxes
  /// over the open lex interval (q, p)): scratch.lines_found must already
  /// hold the distinct conflicting lines from both endpoint scans.
  bool interior_interference_free(const Candidate& cand, std::span<const i64> p_to,
                                  std::size_t ref, i64 line_a, Scratch& scratch) const;
  /// Warm-path classification against an EvalCache binding: the gather
  /// reads per-genome tiled-coordinate tables (one floor_div/floor_mod
  /// per (point, distinct step) instead of per (point, ref, entry)), and
  /// the tile-independent endpoint interference scans come precomputed
  /// from the binding (EvalPrepared::cand_flags / q_lines / p_lines);
  /// only the interior box probes run per genome. Bit-identical to
  /// classify_impl by construction. `footprint` (out) is the set of dims
  /// whose tile sizes the evaluation consulted — the verdict-memo key
  /// (eval_cache.hpp §2): the pair's S0 dims always; plus, per interior
  /// probe, the lex-interval suffix dims (every dim when a tile
  /// coordinate differs, the dims after the first differing offset
  /// coordinate otherwise — those suffix extents are the tile sizes).
  Outcome classify_warm(std::size_t ref, Scratch& scratch, const detail::EvalPrepared& prep,
                        std::size_t pr, const i64* qt_row, const i64* qo_row,
                        std::uint32_t* footprint) const;
  /// Build the per-genome warm tables: z's tiled coordinates per point
  /// (zto, [p * 2k + {d | k + d}], to_tiled_into layout) and the tiled
  /// coordinates of z − delta per (point, dstep) (qt/qo, [p * nd + s]).
  /// With `simd`, four points share each divisor via floor_div_mod_u52 —
  /// bit-identical to the scalar division (simd_test pins). Cells whose
  /// z − delta falls outside [0, trips) are clamped into range: no
  /// prefiltered entry reads them (the bind-time bounds check failed),
  /// the clamp only keeps the u52 guard satisfied.
  void build_warm_tables(std::span<const std::vector<i64>> points,
                         const detail::EvalPrepared& prep, bool simd, std::vector<i64>& zto,
                         std::vector<i64>& qt_tab, std::vector<i64>& qo_tab) const;
  Emptiness cached_probe(const CongruenceBox& box, std::size_t ref, std::uint64_t dim_mask,
                         std::span<const i64> tile_key, Scratch& scratch) const;
  bool same_array_box_interferes(const CongruenceBox& box, std::size_t ref,
                                 std::uint64_t dim_mask, std::span<const i64> tile_key,
                                 Scratch& scratch) const;
  /// Locate the cache slot for a key; on a miss the slot's key fields are
  /// written (possibly evicting an older entry) and the caller fills
  /// `verdict`.
  detail::ProbeEntry* find_probe_slot(Scratch& scratch, std::uint8_t kind, std::size_t ref,
                                      std::uint64_t dim_mask, i64 base,
                                      std::span<const i64> extents, std::span<const i64> tile_key,
                                      bool& hit) const;
  /// Bind (or validate) an EvalCache level against this analysis:
  /// computes the binding digest, rebuilding the tile-independent
  /// prepared tables and bumping the epoch when it changed. Caller holds
  /// the level mutex.
  void bind_eval_level(detail::EvalLevel& level, std::span<const std::vector<i64>> points) const;

  const ir::LoopNest* nest_;
  ir::MemoryLayout layout_;
  cache::CacheConfig cache_;
  transform::TileVector tiles_;
  transform::TiledSpace space_;
  reuse::ReuseInfo reuse_;
  AnalysisOptions options_;
  std::vector<RefData> refs_;
  std::vector<std::vector<PreparedReuse>> prepared_reuse_;  ///< per reference
  std::vector<i64> trips_;
  /// Constant bounds everywhere: candidate bounds checks stay pure box
  /// tests and sampling needs no rejection (the common, fast case).
  bool rectangular_ = true;
  int line_shift_ = 0;  ///< log2(line_bytes); line size is a validated po2
  i64 sets_ = 1;
  i64 set_mask_ = -1;   ///< sets - 1 when the set count is po2, else -1
  /// Trip counts fit the SIMD floor-div's exact f64 range (always true
  /// for realistic nests; guards the batch-prepare fast path).
  bool simd_ok_ = false;
  /// Written only outside parallel regions: by the scalar classify()
  /// (single-thread contract) and by the post-batch merge of per-shard
  /// counters. Never touched inside classify_batch's parallel_for.
  mutable ProbeCounters counters_;
};

}  // namespace cmetile::cme

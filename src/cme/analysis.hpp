#pragma once
// Per-configuration CME analysis context and the point classifier
// ("traversing the iteration space", paper §2.2–2.3). A NestAnalysis binds
// a loop nest + memory layout (possibly padded) + cache + tile vector and
// answers, for any iteration point and reference: hit, compulsory miss or
// replacement miss.
//
// Classification of reference R_A at 0-based point z:
//  1. Candidate reuse sources: for every reuse generator r (reuse module),
//     q = z − r and q = z + r (tiling can reverse execution order across
//     tiles); keep q's that are inside the iteration space, precede z in
//     *tiled* execution order, and touch R_A's current memory line
//     (concrete-address check — this is the compulsory-equation test with
//     the point substituted; paper §2.3 "Counting Compulsory Polyhedra").
//     No candidate ⇒ compulsory (cold) miss.
//  2. Candidates are tried from closest (in tiled order) to farthest; a
//     candidate survives if the execution interval (q, z] contains no
//     interference: for a k-way cache, fewer than k distinct other lines
//     mapping to R_A's set (paper §2.2). Intervals decompose into
//     congruence boxes (interval_split + congruence); single-point pieces
//     (endpoints) are evaluated with concrete addresses.
//  3. Any surviving candidate ⇒ hit; otherwise ⇒ replacement miss.
//
// The instance is immutable after construction except for diagnostic
// counters; classify() is safe to call from one thread at a time (the GA
// parallelizes across NestAnalysis instances, not within one).

#include <span>
#include <memory>

#include "cache/cache.hpp"
#include "cme/congruence.hpp"
#include "cme/interval_split.hpp"
#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "reuse/reuse.hpp"
#include "transform/padding.hpp"
#include "transform/tiling.hpp"

namespace cmetile::cme {

enum class Outcome : std::uint8_t { Hit, ColdMiss, ReplacementMiss };

struct AnalysisOptions {
  i64 probe_work_cap = 1 << 14;   ///< leaf budget per emptiness probe
  i64 enumerate_cap = 1 << 15;    ///< witness budget per exclusion/assoc scan
};

class NestAnalysis {
 public:
  NestAnalysis(const ir::LoopNest& nest, ir::MemoryLayout layout, cache::CacheConfig cache,
               transform::TileVector tiles, AnalysisOptions options = {});

  /// Classify one access; z is the 0-based iteration point (z_d = i_d - lower_d).
  Outcome classify(std::span<const i64> z, std::size_t ref) const;

  const ir::LoopNest& nest() const { return *nest_; }
  const ir::MemoryLayout& layout() const { return layout_; }
  const cache::CacheConfig& cache_config() const { return cache_; }
  const transform::TiledSpace& space() const { return space_; }
  const transform::TileVector& tiles() const { return tiles_; }
  const reuse::ReuseInfo& reuse_info() const { return reuse_; }

  const ProbeCounters& probe_counters() const { return counters_; }

 private:
  struct RefData {
    std::vector<i64> coeffs0;       ///< byte-address coefficients over z
    i64 base0 = 0;                  ///< byte address at z = 0
    std::vector<i64> tiled_coeffs;  ///< coefficients over (t_1..t_k, o_1..o_k)
    std::size_t array = 0;
  };

  struct Candidate {
    std::size_t source = 0;
    std::vector<i64> q;     ///< 0-based source point
    std::vector<i64> q_to;  ///< tiled coordinates of q
  };

  i64 address_at(std::size_t ref, std::span<const i64> z) const;
  bool interval_interference_free(const Candidate& cand, std::span<const i64> z,
                                  std::span<const i64> p_to, std::size_t ref,
                                  i64 line_a) const;

  const ir::LoopNest* nest_;
  ir::MemoryLayout layout_;
  cache::CacheConfig cache_;
  transform::TileVector tiles_;
  transform::TiledSpace space_;
  reuse::ReuseInfo reuse_;
  AnalysisOptions options_;
  std::vector<RefData> refs_;
  std::vector<i64> trips_;
  mutable ProbeCounters counters_;
};

}  // namespace cmetile::cme

#include "cme/equations.hpp"

#include <sstream>

#include "reuse/reuse.hpp"

namespace cmetile::cme {

namespace {

std::string render_vector(std::span<const i64> v) {
  std::ostringstream out;
  out << '(';
  for (std::size_t d = 0; d < v.size(); ++d) {
    if (d) out << ',';
    out << v[d];
  }
  out << ')';
  return out.str();
}

std::string ref_name(const ir::LoopNest& nest, std::size_t r) {
  const ir::Reference& ref = nest.refs[r];
  std::string text = nest.arrays[ref.array].name + "[";
  const auto names = nest.loop_names();
  for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
    if (d) text += ",";
    text += ref.subscripts[d].to_string(names);
  }
  return text + "]";
}

}  // namespace

std::string EquationSet::summary() const {
  std::ostringstream out;
  out << "convex regions: " << convex_regions << ", compulsory equations: " << compulsory_count
      << ", replacement equations: " << replacement_count << '\n';
  for (const Equation& e : equations) {
    if (!e.text.empty()) out << e.text << '\n';
  }
  return out.str();
}

EquationSet generate_equations(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                               const cache::CacheConfig& cache,
                               const transform::TileVector& tiles, std::size_t render_limit) {
  const transform::TiledSpace space(nest.trip_counts(), tiles);
  const reuse::ReuseInfo reuse_info = reuse::analyze_reuse(nest);
  const i64 regions = space.convex_regions();

  EquationSet set;
  set.convex_regions = regions;

  for (std::size_t a = 0; a < nest.refs.size(); ++a) {
    const ir::LinExpr addr_a = layout.address_expr(nest, nest.refs[a]);
    const auto names = nest.loop_names();
    for (const reuse::ReuseCandidate& rc : reuse_info.per_ref[a]) {
      // Compulsory equations: one per convex region of the tiled space
      // (paper §2.4: "every compulsory equation should be defined for each
      // convex region, so the number is increased by a factor of n").
      for (i64 ra = 0; ra < regions; ++ra) {
        Equation eq;
        eq.kind = EquationKind::Compulsory;
        eq.ref = a;
        eq.source_ref = rc.source_ref;
        eq.reuse_vector = rc.vector;
        eq.region_a = ra;
        if (set.equations.size() < render_limit) {
          std::ostringstream out;
          out << "Compulsory[" << ref_name(nest, a) << ", r=" << render_vector(rc.vector)
              << ", region " << ra << "]: i - r outside region  or  "
              << "Line(" << addr_a.to_string(names) << ") != Line@(i-r)";
          eq.text = out.str();
        }
        set.equations.push_back(std::move(eq));
        ++set.compulsory_count;
      }
      // Replacement equations: one per interfering reference and per
      // ordered *pair* of convex regions (factor n²; §2.4).
      for (std::size_t b = 0; b < nest.refs.size(); ++b) {
        const ir::LinExpr addr_b = layout.address_expr(nest, nest.refs[b]);
        for (i64 ra = 0; ra < regions; ++ra) {
          for (i64 rb = 0; rb < regions; ++rb) {
            Equation eq;
            eq.kind = EquationKind::Replacement;
            eq.ref = a;
            eq.source_ref = rc.source_ref;
            eq.reuse_vector = rc.vector;
            eq.interfering_ref = b;
            eq.region_a = ra;
            eq.region_b = rb;
            if (set.equations.size() < render_limit) {
              std::ostringstream out;
              out << "Replacement[" << ref_name(nest, a) << ", r=" << render_vector(rc.vector)
                  << ", vs " << ref_name(nest, b) << ", regions (" << ra << ',' << rb << ")]: "
                  << '(' << addr_b.to_string(names) << ")@j = (" << addr_a.to_string(names)
                  << ")@i + n*" << cache.way_bytes() << " + b, b in [0," << cache.line_bytes - 1
                  << "], j in (i-r, i]";
              eq.text = out.str();
            }
            set.equations.push_back(std::move(eq));
            ++set.replacement_count;
          }
        }
      }
    }
  }
  return set;
}

}  // namespace cmetile::cme

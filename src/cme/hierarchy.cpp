#include "cme/hierarchy.hpp"

#include "support/contracts.hpp"

namespace cmetile::cme {

HierarchyAnalysis::HierarchyAnalysis(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     cache::Hierarchy hierarchy,
                                     const transform::TileVector& tiles, AnalysisOptions options,
                                     std::span<const reuse::ReuseInfo> shared_reuse_by_level)
    : hierarchy_(std::move(hierarchy)) {
  hierarchy_.validate();
  expects(shared_reuse_by_level.empty() || shared_reuse_by_level.size() == hierarchy_.depth(),
          "HierarchyAnalysis: shared reuse arity mismatch");
  levels_.reserve(hierarchy_.depth());
  for (std::size_t l = 0; l < hierarchy_.depth(); ++l) {
    AnalysisOptions level_options = options;
    if (!shared_reuse_by_level.empty()) level_options.shared_reuse = &shared_reuse_by_level[l];
    levels_.emplace_back(nest, layout, hierarchy_.levels[l].config, tiles, level_options);
  }
}

double weighted_cost(const cache::Hierarchy& hierarchy, std::span<const MissEstimate> levels) {
  std::vector<double> misses;
  misses.reserve(levels.size());
  for (const MissEstimate& level : levels) misses.push_back(level.replacement_misses());
  return hierarchy.weighted_cost(misses);
}

HierarchyEstimate estimate_hierarchy_with_points(const HierarchyAnalysis& analysis,
                                                 std::span<const std::vector<i64>> points,
                                                 double confidence, EvalCache* cache) {
  HierarchyEstimate estimate;
  estimate.levels.reserve(analysis.depth());
  for (std::size_t l = 0; l < analysis.depth(); ++l) {
    estimate.levels.push_back(
        cache != nullptr ? estimate_with_points(analysis.level(l), points, confidence, *cache, l)
                         : estimate_with_points(analysis.level(l), points, confidence));
  }
  estimate.weighted_cost = weighted_cost(analysis.hierarchy(), estimate.levels);
  return estimate;
}

HierarchyEstimate estimate_hierarchy(const HierarchyAnalysis& analysis,
                                     const EstimatorOptions& options) {
  HierarchyEstimate estimate;
  estimate.levels.reserve(analysis.depth());
  for (std::size_t l = 0; l < analysis.depth(); ++l)
    estimate.levels.push_back(estimate_misses(analysis.level(l), options));
  estimate.weighted_cost = weighted_cost(analysis.hierarchy(), estimate.levels);
  return estimate;
}

}  // namespace cmetile::cme

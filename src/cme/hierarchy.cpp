#include "cme/hierarchy.hpp"

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace cmetile::cme {

HierarchyAnalysis::HierarchyAnalysis(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     cache::Hierarchy hierarchy,
                                     const transform::TileVector& tiles, AnalysisOptions options,
                                     std::span<const reuse::ReuseInfo> shared_reuse_by_level)
    : hierarchy_(std::move(hierarchy)) {
  hierarchy_.validate();
  expects(shared_reuse_by_level.empty() || shared_reuse_by_level.size() == hierarchy_.depth(),
          "HierarchyAnalysis: shared reuse arity mismatch");
  levels_.reserve(hierarchy_.depth());
  for (std::size_t l = 0; l < hierarchy_.depth(); ++l) {
    AnalysisOptions level_options = options;
    if (!shared_reuse_by_level.empty()) level_options.shared_reuse = &shared_reuse_by_level[l];
    const cache::CacheLevel& level = hierarchy_.levels[l];
    // Policy and mode are invisible to the equations (they only shift the
    // effective geometry), but must still split EvalCache bindings: salt
    // every non-default level. Default levels keep salt 0 so the legacy
    // single-cache digest — and TilingObjective::evaluate's level-0
    // binding — is unchanged.
    if (level.replacement != cache::ReplacementPolicy::LRU ||
        level.mode != cache::LevelMode::Inclusive) {
      level_options.binding_salt = derive_seed(options.binding_salt ^ 0xD1E77B17ULL,
                                               (std::uint64_t)level.replacement,
                                               (std::uint64_t)level.mode);
    }
    levels_.emplace_back(nest, layout, hierarchy_.effective_config(l), tiles, level_options);
  }
}

double weighted_cost(const cache::Hierarchy& hierarchy, std::span<const MissEstimate> levels) {
  std::vector<double> misses;
  misses.reserve(levels.size());
  for (const MissEstimate& level : levels) misses.push_back(level.replacement_misses());
  return hierarchy.weighted_cost(misses);
}

namespace {

/// Append the per-level write-back estimates (levels with zero write-back
/// latency get default entries — the store classifier never runs for
/// them) and return the Σ writebacks × writeback_latency cost term.
/// `estimate.writebacks` stays empty when no level charges write-backs,
/// which keeps the legacy read-only paths bit-identical and free.
double fold_writebacks(const HierarchyAnalysis& analysis,
                       std::span<const std::vector<i64>> points, double confidence,
                       HierarchyEstimate& estimate) {
  const cache::Hierarchy& hierarchy = analysis.hierarchy();
  bool any = false;
  for (const cache::CacheLevel& level : hierarchy.levels) any |= level.writeback_latency > 0.0;
  if (!any) return 0.0;
  estimate.writebacks.resize(hierarchy.depth());
  double cost = 0.0;
  for (std::size_t l = 0; l < hierarchy.depth(); ++l) {
    if (hierarchy.levels[l].writeback_latency <= 0.0) continue;
    estimate.writebacks[l] = estimate_writebacks_with_points(analysis.level(l), points, confidence);
    cost += estimate.writebacks[l].writebacks() * hierarchy.levels[l].writeback_latency;
  }
  return cost;
}

}  // namespace

HierarchyEstimate estimate_hierarchy_with_points(const HierarchyAnalysis& analysis,
                                                 std::span<const std::vector<i64>> points,
                                                 double confidence, EvalCache* cache) {
  HierarchyEstimate estimate;
  estimate.levels.reserve(analysis.depth());
  for (std::size_t l = 0; l < analysis.depth(); ++l) {
    estimate.levels.push_back(
        cache != nullptr ? estimate_with_points(analysis.level(l), points, confidence, *cache, l)
                         : estimate_with_points(analysis.level(l), points, confidence));
  }
  estimate.weighted_cost = weighted_cost(analysis.hierarchy(), estimate.levels) +
                           fold_writebacks(analysis, points, confidence, estimate);
  return estimate;
}

HierarchyEstimate estimate_hierarchy(const HierarchyAnalysis& analysis,
                                     const EstimatorOptions& options) {
  HierarchyEstimate estimate;
  estimate.levels.reserve(analysis.depth());
  for (std::size_t l = 0; l < analysis.depth(); ++l)
    estimate.levels.push_back(estimate_misses(analysis.level(l), options));
  // Write-backs ride on their own sample here (estimate_misses draws per
  // level internally too); the shared-points overload is the GA path.
  const cache::Hierarchy& hierarchy = analysis.hierarchy();
  bool any = false;
  for (const cache::CacheLevel& level : hierarchy.levels) any |= level.writeback_latency > 0.0;
  double wb_cost = 0.0;
  if (any) {
    const ir::LoopNest& nest = analysis.level(0).nest();
    estimate.writebacks.resize(hierarchy.depth());
    for (std::size_t l = 0; l < hierarchy.depth(); ++l) {
      if (hierarchy.levels[l].writeback_latency <= 0.0) continue;
      if (options.exact_threshold > 0 && nest.iteration_count() <= options.exact_threshold) {
        estimate.writebacks[l] = estimate_writebacks_exact(analysis.level(l));
      } else {
        const auto points =
            sample_points(nest, resolved_sample_count(options), options.seed);
        estimate.writebacks[l] =
            estimate_writebacks_with_points(analysis.level(l), points, options.confidence);
      }
      wb_cost += estimate.writebacks[l].writebacks() * hierarchy.levels[l].writeback_latency;
    }
  }
  estimate.weighted_cost = weighted_cost(analysis.hierarchy(), estimate.levels) + wb_cost;
  return estimate;
}

}  // namespace cmetile::cme

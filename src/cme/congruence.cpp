#include "cme/congruence.hpp"

#include <algorithm>
#include <numeric>

#include "support/contracts.hpp"

namespace cmetile::cme {

i64 CongruenceBox::box_points() const {
  i64 n = 1;
  for (const i64 e : extents) {
    if (e <= 0) return 0;
    n *= e;
  }
  return n;
}

namespace {

struct Dim {
  i64 coeff;   ///< reduced modulo the current modulus, nonzero
  i64 extent;  ///< >= 2
};

/// Merge-sort intervals and coalesce overlaps; returns at most the inputs.
void normalize_targets(std::vector<Interval>& targets) {
  std::sort(targets.begin(), targets.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (const Interval& t : targets) {
    if (t.empty()) continue;
    if (!merged.empty() && t.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, t.hi);
    } else {
      merged.push_back(t);
    }
  }
  targets = std::move(merged);
}

}  // namespace

Emptiness probe_nonempty(const CongruenceBox& box, i64 work_cap, ProbeCounters* counters) {
  if (counters != nullptr) ++counters->probes;
  expects(box.modulus >= 1, "probe_nonempty: modulus must be >= 1");
  expects(box.extents.size() == box.coeffs.size(), "probe_nonempty: arity mismatch");

  if (box.box_points() == 0) return Emptiness::Empty;

  i64 m = box.modulus;
  i64 base = floor_mod(box.base, m);
  std::vector<Interval> targets{
      box.target.intersect(Interval{0, m - 1})};
  if (targets[0].empty()) return Emptiness::Empty;

  std::vector<Dim> dims;
  dims.reserve(box.extents.size());
  for (std::size_t d = 0; d < box.extents.size(); ++d) {
    const i64 a = floor_mod(box.coeffs[d], m);
    if (a != 0 && box.extents[d] >= 2) dims.push_back(Dim{a, box.extents[d]});
  }

  // --- Fold full-cycle dimensions through the subgroup structure of Z_m. ---
  while (true) {
    if (targets.empty()) return Emptiness::Empty;
    // Any target covering all residues => non-empty (x = 0 is in the box).
    for (const Interval& t : targets)
      if (t.length() >= m) return Emptiness::NonEmpty;

    i64 g = 0;  // gcd of full-cycle coefficients (0 = none found yet)
    std::vector<Dim> partial;
    for (const Dim& dim : dims) {
      const i64 ga = std::gcd(dim.coeff, m);
      // x spanning >= m/ga consecutive values makes a·x mod m reach every
      // multiple of ga: the dimension contributes the whole subgroup <ga>.
      if (dim.extent >= m / ga) {
        g = std::gcd(g, dim.coeff);
      } else {
        partial.push_back(dim);
      }
    }
    if (g == 0) {
      dims = std::move(partial);
      break;
    }
    if (counters != nullptr) ++counters->fold_rounds;
    g = std::gcd(g, m);
    // Residues reachable via full-cycle dims: base' + <g>. The condition
    // becomes (base + Σ a_p·x_p) mod g ∈ (targets mod g).
    std::vector<Interval> folded;
    for (const Interval& t : targets) {
      const i64 w = t.length();
      if (w >= g) return Emptiness::NonEmpty;  // covers all residues mod g
      const i64 lo = floor_mod(t.lo, g);
      if (lo + w <= g) {
        folded.push_back(Interval{lo, lo + w - 1});
      } else {  // wraps around 0 modulo g
        folded.push_back(Interval{lo, g - 1});
        folded.push_back(Interval{0, lo + w - 1 - g});
      }
    }
    m = g;
    base = floor_mod(base, m);
    targets = std::move(folded);
    normalize_targets(targets);
    if (targets.size() > 16) return Emptiness::Unknown;  // degenerate; be conservative

    std::vector<Dim> reduced;
    for (const Dim& dim : partial) {
      const i64 a = floor_mod(dim.coeff, m);
      if (a != 0) reduced.push_back(Dim{a, dim.extent});
    }
    dims = std::move(reduced);
  }

  // --- No large dimensions left. ---
  if (targets.empty()) return Emptiness::Empty;
  if (dims.empty()) {
    for (const Interval& t : targets)
      if (t.contains(base)) return Emptiness::NonEmpty;
    return Emptiness::Empty;
  }

  // Resolve the largest dimension analytically; enumerate the rest.
  std::size_t analytic = 0;
  for (std::size_t d = 1; d < dims.size(); ++d)
    if (dims[d].extent > dims[analytic].extent) analytic = d;
  const Dim leaf = dims[analytic];
  dims.erase(dims.begin() + (std::ptrdiff_t)analytic);

  std::vector<i64> x(dims.size(), 0);
  i64 budget = work_cap;
  while (true) {
    i64 c = base;
    for (std::size_t d = 0; d < dims.size(); ++d) c += dims[d].coeff * x[d];
    c = floor_mod(c, m);
    if (counters != nullptr) ++counters->enumerated_leaves;
    for (const Interval& t : targets) {
      if (count_mod_in_range(leaf.extent, m, leaf.coeff, c, t.lo, t.hi) > 0)
        return Emptiness::NonEmpty;
    }
    if (--budget <= 0) {
      if (counters != nullptr) ++counters->unknown_results;
      return Emptiness::Unknown;
    }
    // Odometer over the enumerated dimensions.
    std::size_t d = 0;
    for (; d < dims.size(); ++d) {
      if (x[d] + 1 < dims[d].extent) {
        ++x[d];
        std::fill(x.begin(), x.begin() + (std::ptrdiff_t)d, 0);
        break;
      }
    }
    if (d == dims.size()) break;
  }
  return Emptiness::Empty;
}

Emptiness probe_nonempty_bruteforce(const CongruenceBox& box) {
  if (box.box_points() == 0) return Emptiness::Empty;
  std::vector<i64> x(box.extents.size(), 0);
  while (true) {
    i64 v = box.base;
    for (std::size_t d = 0; d < x.size(); ++d) v += box.coeffs[d] * x[d];
    const i64 r = floor_mod(v, box.modulus);
    if (box.target.contains(r)) return Emptiness::NonEmpty;
    std::size_t d = 0;
    for (; d < x.size(); ++d) {
      if (x[d] + 1 < box.extents[d]) {
        ++x[d];
        std::fill(x.begin(), x.begin() + (std::ptrdiff_t)d, 0);
        break;
      }
    }
    if (d == x.size()) return Emptiness::Empty;
  }
}

i64 count_solutions_bruteforce(const CongruenceBox& box) {
  if (box.box_points() == 0) return 0;
  i64 count = 0;
  std::vector<i64> x(box.extents.size(), 0);
  while (true) {
    i64 v = box.base;
    for (std::size_t d = 0; d < x.size(); ++d) v += box.coeffs[d] * x[d];
    if (box.target.contains(floor_mod(v, box.modulus))) ++count;
    std::size_t d = 0;
    for (; d < x.size(); ++d) {
      if (x[d] + 1 < box.extents[d]) {
        ++x[d];
        std::fill(x.begin(), x.begin() + (std::ptrdiff_t)d, 0);
        break;
      }
    }
    if (d == x.size()) return count;
  }
}

}  // namespace cmetile::cme

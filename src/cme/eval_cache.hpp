#pragma once
// Cross-genome evaluation cache for the GA's inner loop (DESIGN.md §14).
// A GA child genome shares most tile dimensions with previously evaluated
// genomes; everything in the CME pipeline that does not depend on the
// changed dims can be reused instead of recomputed. An EvalCache carries
// that state across NestAnalysis instances — one logical slice ("level")
// per cache-hierarchy level, each holding:
//
//  1. Prepared tables (tile-INDEPENDENT, rebuilt only when the binding
//     changes): per-point per-reference byte addresses, cache lines and
//     sets; per (point, ref) the prefiltered reuse-candidate list (the
//     prepared_reuse entries passing the inside-bounds and same-line
//     checks, which depend only on the point), its S0 mask — the union
//     of the candidates' stepped dims — and, where the same-iteration
//     theorem applies (bind_eval_level), a pre-resolved verdict that is
//     exact under every tile vector: those (point, ref) pairs skip
//     classification entirely, for every genome of the run.
//
//  2. A verdict memo (per worker): Outcome keyed by (point index, ref,
//     epoch) plus the evaluation's tile FOOTPRINT — the set of dims whose
//     tile sizes classification actually consulted, recorded alongside
//     the verdict with their tile values. The footprint is exact by a
//     trace argument: every tile-dependent value the evaluation reads is
//     a function of the footprint dims' tiles (classify_warm documents
//     the accumulation rule — S0 dims for the candidate set, sort order
//     and reuse coordinates; interior-probe suffix dims for the
//     congruence boxes, whose extents, coefficients and folded bases
//     depend only on those tiles once the endpoint scans are bound), so
//     under any tile vector agreeing on the footprint the whole trace —
//     and hence the Outcome — is identical. Warm lookups are therefore
//     bit-identical to cold evaluation, which eval_cache_test pins
//     across random mutation chains. Verdicts with footprints wider than
//     kMaxMemoDims are not stored.
//
//  3. A persistent probe table (per worker): the batch classifier's
//     congruence-probe verdict cache, lifted to run lifetime. Entries key
//     the tile sizes of the box's filtered tile-coordinate dims (see
//     detail::ProbeEntry), so a box re-encountered under a different tile
//     vector with the same key *is* the same box and its verdict is
//     reused.
//
// Binding and invalidation: a level is bound to the FNV-1a digest of
// everything the classification depends on besides the tile vector —
// nest shape (trips), cache geometry (line/sets/ways/assoc), probe
// budgets, per-reference address polynomials, the prepared reuse
// structure, and the sample points. Rebinding to a different digest
// rebuilds the prepared tables and bumps the 32-bit epoch; memo and probe
// entries are invalidated lazily by their epoch field. The sample-points
// span is identity-checked by address (contract: the caller keeps the
// sample alive, unmodified and at a stable address while the cache is in
// use — core/objective owns both the cache and the sample, so this holds
// by construction).
//
// Concurrency: levels are created on demand under the cache mutex; each
// concurrent classify_batch shard checks out its own worker (verdict +
// probe tables) from the level's pool, so outcomes are bit-identical
// regardless of scheduling. Hit *counts* can vary across runs when
// multiple workers race to populate their private tables; with one
// thread (the GA's nested-parallel case) they are deterministic.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cme/analysis.hpp"

namespace cmetile::cme {

struct EvalCacheOptions {
  std::size_t verdict_capacity = 1u << 16;  ///< verdict slots per worker (rounded to po2)
  std::size_t probe_capacity = 1u << 17;    ///< persistent probe slots per worker
  bool verdict_memo = true;  ///< reuse classification verdicts across genomes
  bool probe_memo = true;    ///< persist probe verdicts across genomes
};

struct EvalCacheStats {
  i64 verdict_lookups = 0;  ///< verdict-memo lookups (one per unresolved (point, ref) pair)
  i64 verdict_hits = 0;     ///< classifications answered from the memo
  i64 probe_lookups = 0;    ///< persistent-probe-table lookups
  i64 probe_hits = 0;
  i64 rebinds = 0;          ///< binding changes (prepared tables rebuilt)

  EvalCacheStats& operator+=(const EvalCacheStats& o) {
    verdict_lookups += o.verdict_lookups;
    verdict_hits += o.verdict_hits;
    probe_lookups += o.probe_lookups;
    probe_hits += o.probe_hits;
    rebinds += o.rebinds;
    return *this;
  }
};

namespace detail {

/// Verdict-memo entry: Outcome of (point, ref) under the tile sizes of
/// the evaluation's footprint dims (dim_mask, values in ascending dim
/// order). Slots are addressed by (point, ref) alone so a lookup finds
/// the entry whatever its footprint; the stored tiles are compared
/// against the current genome's. Epoch mismatch = stale.
inline constexpr std::size_t kMaxMemoDims = 4;
struct VerdictEntry {
  std::uint32_t point = 0;
  std::uint32_t epoch = 0;
  std::uint32_t dim_mask = 0;  ///< footprint: bit d = tile of dim d consulted
  std::uint16_t ref = 0;
  std::uint8_t verdict = 0;
  std::array<i64, kMaxMemoDims> tiles{};
};
using VerdictTable = TagTable<VerdictEntry>;

/// pre_verdict value for "not decided at bind time — classify normally".
inline constexpr std::uint8_t kNoPreVerdict = 0xFF;

/// EvalPrepared::cand_flags bits (per prefiltered candidate entry).
inline constexpr std::uint8_t kCandSameIter = 1;  ///< zero reuse vector (cmp == 0 always)
inline constexpr std::uint8_t kCandQFail = 2;     ///< q-endpoint scan alone reaches assoc
/// EvalPrepared::pair_flags bits (per (point, ref) pair).
inline constexpr std::uint8_t kPairPFail = 1;  ///< p-endpoint scan alone reaches assoc

/// Tile-independent per-binding tables (eval_cache.hpp header comment §1).
struct EvalPrepared {
  std::vector<i64> pt_addr;  ///< [p * n_refs + b]
  std::vector<i64> pt_line;
  std::vector<i64> pt_set;
  /// Prefiltered candidate lists, flattened: entries for (p, r) are
  /// cand_entries[cand_offsets[p * n_refs + r] .. cand_offsets[.. + 1]).
  std::vector<std::uint32_t> cand_offsets;
  std::vector<std::uint16_t> cand_entries;  ///< indices into prepared_reuse_[r]
  std::vector<std::uint32_t> s0_mask;       ///< [p * n_refs + r]; bit d = dim d stepped
  /// Bind-time verdicts (the same-iteration theorem — see bind_eval_level):
  /// an Outcome valid under EVERY tile vector, or kNoPreVerdict.
  std::vector<std::uint8_t> pre_verdict;  ///< [p * n_refs + r]
  std::vector<std::uint8_t> point_unresolved;  ///< [p]; 0 = all refs pre-decided
  /// Pairs left for per-genome classification (pre_verdict == kNoPreVerdict):
  /// the volume the per-worker memo tables are sized against.
  std::size_t n_unresolved = 0;
  /// Distinct (dim, delta) pairs across every reuse generator's steps.
  /// classify_batch builds per-genome tables of floor_div / floor_mod of
  /// (z_d − delta) by T_d per (point, dstep): one division serves every
  /// (ref, entry) sharing the step, and the warm gather becomes lookups.
  std::vector<std::uint32_t> dstep_dim;
  std::vector<i64> dstep_delta;
  /// Per ref: flattened entry → dstep-index lists, in PreparedReuse::steps
  /// order (ascending dim): entry e's dsteps are
  /// entry_dstep[r][entry_dstep_off[r][e] .. entry_dstep_off[r][e + 1]).
  std::vector<std::vector<std::uint32_t>> entry_dstep_off;
  std::vector<std::vector<std::uint16_t>> entry_dstep;
  /// Tile-independent endpoint-interference scans, precomputed for
  /// unresolved pairs (classify_warm): per candidate entry the q-endpoint
  /// distinct conflicting lines (kCandQFail when they alone reach assoc),
  /// per pair the p-endpoint equivalent. Lists are capped below assoc.
  std::vector<std::uint8_t> cand_flags;    ///< parallel to cand_entries
  std::vector<std::uint32_t> q_lines_off;  ///< parallel to cand_entries (+1 sentinel)
  std::vector<i64> q_lines;
  std::vector<std::uint8_t> pair_flags;    ///< [p * n_refs + r]
  std::vector<std::uint32_t> p_lines_off;  ///< [p * n_refs + r] (+1 sentinel)
  std::vector<i64> p_lines;
};

/// One checkout-exclusive bundle of mutable state.
struct EvalWorker {
  VerdictTable verdicts;
  ProbeTable probes;
  EvalCacheStats stats;
};

struct EvalLevel {
  std::uint64_t binding_lo = 0;
  std::uint64_t binding_hi = 0;
  bool bound = false;
  std::uint32_t epoch = 0;
  /// Sample-identity fast path: when the span address and length match,
  /// the cached content hash is reused instead of rehashing every point.
  const std::vector<i64>* points_ptr = nullptr;
  std::size_t points_len = 0;
  std::uint64_t points_hash = 0;
  EvalPrepared prepared;
  std::vector<std::unique_ptr<EvalWorker>> workers;
  std::vector<EvalWorker*> free_workers;
  i64 rebinds = 0;
  std::mutex mutex;

  /// Check out a worker (creating one if the pool is dry) / return it.
  EvalWorker* acquire();
  void release(EvalWorker* worker);
};

}  // namespace detail

class EvalCache {
 public:
  explicit EvalCache(EvalCacheOptions options = {}) : options_(options) {}
  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  const EvalCacheOptions& options() const { return options_; }

  /// Aggregate statistics across all levels and workers.
  EvalCacheStats stats() const;

  /// Drop every binding, verdict and probe entry (levels stay allocated).
  void clear();

  /// Internal (used by NestAnalysis::classify_batch): the per-level state,
  /// created on demand; the reference stays valid for the cache lifetime.
  detail::EvalLevel& level(std::size_t index);

 private:
  EvalCacheOptions options_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail::EvalLevel>> levels_;
};

}  // namespace cmetile::cme

#pragma once
// Explicit Cache Miss Equation generation (paper §2.1, §2.4). The point
// solver in analysis.hpp never materializes the symbolic equations — it
// solves them with the sampled point substituted — but the equations
// themselves are part of the paper's framework: this module enumerates
// them (compulsory and replacement, per convex region / region pair) so
// that users can inspect what is being solved and tests can verify the
// §2.4 scaling: tiling with n convex regions multiplies compulsory
// equations by n and replacement equations by n².

#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "transform/tiling.hpp"

namespace cmetile::cme {

enum class EquationKind : std::uint8_t { Compulsory, Replacement };

struct Equation {
  EquationKind kind = EquationKind::Compulsory;
  std::size_t ref = 0;          ///< reference R_A the equation belongs to
  std::size_t source_ref = 0;   ///< reuse source (compulsory: == ref's source)
  std::vector<i64> reuse_vector;
  std::size_t interfering_ref = 0;  ///< replacement only: R_B
  i64 region_a = 0;                 ///< convex region of the current point
  i64 region_b = 0;                 ///< replacement only: region of the interval
  std::string text;                 ///< rendered equation
};

struct EquationSet {
  std::vector<Equation> equations;
  i64 convex_regions = 1;
  i64 compulsory_count = 0;
  i64 replacement_count = 0;

  std::string summary() const;
};

/// Generate the CME set for the (possibly tiled) nest.
/// `render_limit` bounds how many equations receive rendered text
/// (the counts always cover everything).
EquationSet generate_equations(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                               const cache::CacheConfig& cache, const transform::TileVector& tiles,
                               std::size_t render_limit = 32);

}  // namespace cmetile::cme

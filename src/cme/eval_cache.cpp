#include "cme/eval_cache.hpp"

namespace cmetile::cme {

namespace detail {

EvalWorker* EvalLevel::acquire() {
  std::lock_guard lock(mutex);
  if (!free_workers.empty()) {
    EvalWorker* worker = free_workers.back();
    free_workers.pop_back();
    return worker;
  }
  workers.push_back(std::make_unique<EvalWorker>());
  return workers.back().get();
}

void EvalLevel::release(EvalWorker* worker) {
  std::lock_guard lock(mutex);
  free_workers.push_back(worker);
}

}  // namespace detail

detail::EvalLevel& EvalCache::level(std::size_t index) {
  std::lock_guard lock(mutex_);
  while (levels_.size() <= index) levels_.push_back(std::make_unique<detail::EvalLevel>());
  return *levels_[index];
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats total;
  std::lock_guard lock(mutex_);
  for (const auto& level : levels_) {
    std::lock_guard level_lock(level->mutex);
    total.rebinds += level->rebinds;
    for (const auto& worker : level->workers) total += worker->stats;
  }
  return total;
}

void EvalCache::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& level : levels_) {
    std::lock_guard level_lock(level->mutex);
    level->bound = false;
    level->points_ptr = nullptr;
    level->points_len = 0;
    level->prepared = detail::EvalPrepared{};
    // Epoch is NOT reset: existing worker entries stay stale forever.
    for (const auto& worker : level->workers) {
      worker->verdicts.clear();
      worker->probes.clear();
      worker->stats = EvalCacheStats{};
    }
    level->rebinds = 0;
  }
}

}  // namespace cmetile::cme

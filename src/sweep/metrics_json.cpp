#include "sweep/metrics_json.hpp"

namespace cmetile::sweep {

Json json_of_metrics(const obs::MetricsSnapshot& snapshot) {
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : snapshot.counters) counters.set(name, Json::integer(value));
  out.set("counters", std::move(counters));
  Json sums = Json::object();
  for (const auto& [name, value] : snapshot.sums) sums.set(name, Json::number(value));
  out.set("sums", std::move(sums));
  Json gauges = Json::object();
  for (const auto& [name, value] : snapshot.gauges) gauges.set(name, Json::number(value));
  out.set("gauges", std::move(gauges));
  Json histograms = Json::array();
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    Json hist = Json::object();
    hist.set("name", Json::string(h.name));
    hist.set("count", Json::integer(h.count));
    hist.set("sum", Json::number(h.sum));
    Json buckets = Json::array();
    for (const auto& [index, count] : h.buckets) {
      Json pair = Json::array();
      pair.push(Json::integer((i64)index));
      pair.push(Json::integer(count));
      buckets.push(std::move(pair));
    }
    hist.set("buckets", std::move(buckets));
    histograms.push(std::move(hist));
  }
  out.set("histograms", std::move(histograms));
  return out;
}

std::optional<obs::MetricsSnapshot> metrics_of_json(const Json& json) {
  if (json.kind() != Json::Kind::Object) return std::nullopt;
  obs::MetricsSnapshot snap;

  const Json* counters = json.find("counters");
  const Json* sums = json.find("sums");
  const Json* gauges = json.find("gauges");
  const Json* histograms = json.find("histograms");
  if (counters == nullptr || counters->kind() != Json::Kind::Object || sums == nullptr ||
      sums->kind() != Json::Kind::Object || gauges == nullptr ||
      gauges->kind() != Json::Kind::Object || histograms == nullptr ||
      histograms->kind() != Json::Kind::Array)
    return std::nullopt;

  for (const auto& [name, value] : counters->members())
    snap.counters.emplace_back(name, value.as_int());
  for (const auto& [name, value] : sums->members()) snap.sums.emplace_back(name, value.as_double());
  for (const auto& [name, value] : gauges->members())
    snap.gauges.emplace_back(name, value.as_double());
  for (const Json& h : histograms->items()) {
    if (h.kind() != Json::Kind::Object) return std::nullopt;
    obs::HistogramSnapshot hist;
    const Json* name = h.find("name");
    const Json* count = h.find("count");
    const Json* sum = h.find("sum");
    const Json* buckets = h.find("buckets");
    if (name == nullptr || name->kind() != Json::Kind::String || count == nullptr ||
        sum == nullptr || buckets == nullptr || buckets->kind() != Json::Kind::Array)
      return std::nullopt;
    hist.name = name->as_string();
    hist.count = count->as_int();
    hist.sum = sum->as_double();
    for (const Json& pair : buckets->items()) {
      if (pair.kind() != Json::Kind::Array || pair.items().size() != 2) return std::nullopt;
      const i64 index = pair.items()[0].as_int();
      if (index < 0 || (std::size_t)index >= obs::kHistogramBuckets) return std::nullopt;
      hist.buckets.emplace_back((std::size_t)index, pair.items()[1].as_int());
    }
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

}  // namespace cmetile::sweep

#include "sweep/cell.hpp"

#include <cstdio>

#include "support/contracts.hpp"
#include "support/hash.hpp"
#include "sweep/json_codec.hpp"

namespace cmetile::sweep {

namespace {

// The cell options encoding is "seed" followed by the shared
// OptimizerOptions members inlined at top level (not nested under an
// "options" key): that flat shape predates the shared codec and is frozen
// because it is a fingerprint preimage — existing caches depend on the
// exact bytes.
Json json_of_options(const core::ExperimentOptions& options) {
  Json out = Json::object();
  out.set("seed", Json::integer((i64)options.seed));
  const Json optimizer = json_of_optimizer_options(options.optimizer);
  for (const auto& [key, value] : optimizer.members()) out.set(key, value);
  return out;
}

bool options_of_json(const Json& json, core::ExperimentOptions& out) {
  i64 seed = 0;
  if (!get_int(json, "seed", seed)) return false;
  core::ExperimentOptions options;
  options.seed = (std::uint64_t)seed;
  if (!optimizer_options_of_json(json, options.optimizer)) return false;
  out = std::move(options);
  return true;
}

}  // namespace

const char* to_string(SweepKind kind) {
  switch (kind) {
    case SweepKind::Tiling: return "tiling";
    case SweepKind::Padding: return "padding";
    case SweepKind::Hierarchy: return "hierarchy";
  }
  return "?";
}

SweepCell SweepCell::tiling(kernels::FigureEntry entry, const cache::CacheConfig& cache,
                            core::ExperimentOptions options) {
  SweepCell cell;
  cell.kind = SweepKind::Tiling;
  cell.entry = std::move(entry);
  cell.hierarchy = cache::Hierarchy::single(cache, 1.0);
  cell.options = std::move(options);
  return cell;
}

SweepCell SweepCell::padding(kernels::FigureEntry entry, const cache::CacheConfig& cache,
                             core::ExperimentOptions options) {
  SweepCell cell = tiling(std::move(entry), cache, std::move(options));
  cell.kind = SweepKind::Padding;
  return cell;
}

SweepCell SweepCell::hierarchy_study(kernels::FigureEntry entry, cache::Hierarchy hierarchy,
                                     core::ExperimentOptions options) {
  SweepCell cell;
  cell.kind = SweepKind::Hierarchy;
  cell.entry = std::move(entry);
  cell.hierarchy = std::move(hierarchy);
  cell.options = std::move(options);
  return cell;
}

CellResult run_cell(const SweepCell& cell) {
  expects(!cell.hierarchy.levels.empty(), "sweep: cell without a cache geometry");
  CellResult result;
  result.kind = cell.kind;
  switch (cell.kind) {
    case SweepKind::Tiling:
      result.tiling = core::run_tiling_experiment(cell.entry, cell.hierarchy.levels[0].config,
                                                  cell.options);
      break;
    case SweepKind::Padding:
      result.padding = core::run_padding_experiment(cell.entry, cell.hierarchy.levels[0].config,
                                                    cell.options);
      break;
    case SweepKind::Hierarchy:
      result.hierarchy = core::run_hierarchy_experiment(cell.entry, cell.hierarchy, cell.options);
      break;
  }
  return result;
}

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", (unsigned long long)hi,
                (unsigned long long)lo);
  return buf;
}

Fingerprint fingerprint_of(const SweepCell& cell, std::uint64_t salt) {
  const std::string canonical = json_of_cell(cell).dump();
  Fingerprint fp;
  // Two independent FNV streams (distinct offset bases), salt folded last.
  fp.hi = fnv1a_u64(salt, fnv1a_bytes(canonical));
  fp.lo = fnv1a_u64(salt, fnv1a_bytes(canonical, 0x84222325CBF29CE4ULL));
  return fp;
}

Json json_of_cell(const SweepCell& cell) {
  Json levels = Json::array();
  for (const cache::CacheLevel& level : cell.hierarchy.levels) {
    Json l = Json::object();
    l.set("size", Json::integer(level.config.size_bytes));
    l.set("line", Json::integer(level.config.line_bytes));
    l.set("assoc", Json::integer(level.config.associativity));
    l.set("latency", Json::number(level.miss_latency));
    levels.push(std::move(l));
  }
  Json out = Json::object();
  out.set("kind", Json::string(to_string(cell.kind)));
  out.set("kernel", Json::string(cell.entry.name));
  out.set("size", Json::integer(cell.entry.size));
  out.set("levels", std::move(levels));
  out.set("options", json_of_options(cell.options));
  return out;
}

std::optional<SweepCell> cell_of_json(const Json& json) {
  SweepCell cell;
  std::string kind;
  if (!get_string(json, "kind", kind)) return std::nullopt;
  if (kind == "tiling") {
    cell.kind = SweepKind::Tiling;
  } else if (kind == "padding") {
    cell.kind = SweepKind::Padding;
  } else if (kind == "hierarchy") {
    cell.kind = SweepKind::Hierarchy;
  } else {
    return std::nullopt;
  }
  if (!get_string(json, "kernel", cell.entry.name) || !get_int(json, "size", cell.entry.size))
    return std::nullopt;
  const Json* levels = json.find("levels");
  if (levels == nullptr || levels->kind() != Json::Kind::Array || levels->items().empty())
    return std::nullopt;
  for (const Json& l : levels->items()) {
    cache::CacheLevel level;
    if (!get_int(l, "size", level.config.size_bytes) ||
        !get_int(l, "line", level.config.line_bytes) ||
        !get_int(l, "assoc", level.config.associativity) ||
        !get_double(l, "latency", level.miss_latency))
      return std::nullopt;
    cell.hierarchy.levels.push_back(level);
  }
  const Json* options = json.find("options");
  if (options == nullptr || !options_of_json(*options, cell.options)) return std::nullopt;
  return cell;
}

Json json_of_result(const CellResult& result) {
  Json row = Json::object();
  switch (result.kind) {
    case SweepKind::Tiling: {
      const core::TilingRow& r = result.tiling;
      row.set("label", Json::string(r.label));
      row.set("no_tiling_total", Json::number(r.no_tiling_total));
      row.set("no_tiling_repl", Json::number(r.no_tiling_repl));
      row.set("tiling_total", Json::number(r.tiling_total));
      row.set("tiling_repl", Json::number(r.tiling_repl));
      row.set("tiles", json_of_ivec(r.tiles.t));
      row.set("ga_evaluations", Json::integer(r.ga_evaluations));
      row.set("ga_generations", Json::integer(r.ga_generations));
      row.set("eval_cache_lookups", Json::integer(r.eval_cache_lookups));
      row.set("eval_cache_hits", Json::integer(r.eval_cache_hits));
      row.set("seconds", Json::number(r.seconds));
      break;
    }
    case SweepKind::Padding: {
      const core::PaddingRow& r = result.padding;
      row.set("label", Json::string(r.label));
      row.set("original_repl", Json::number(r.original_repl));
      row.set("padding_repl", Json::number(r.padding_repl));
      row.set("padding_tiling_repl", Json::number(r.padding_tiling_repl));
      row.set("pads_intra", json_of_ivec(r.pads.intra));
      row.set("pads_inter", json_of_ivec(r.pads.inter));
      row.set("tiles", json_of_ivec(r.tiles.t));
      row.set("seconds", Json::number(r.seconds));
      break;
    }
    case SweepKind::Hierarchy: {
      const core::HierarchyRow& r = result.hierarchy;
      row.set("label", Json::string(r.label));
      row.set("l1_tiles", json_of_ivec(r.l1_tiles.t));
      row.set("tiles", json_of_ivec(r.tiles.t));
      row.set("cost_l1_tiles", Json::number(r.cost_l1_tiles));
      row.set("cost_tiles", Json::number(r.cost_tiles));
      row.set("level_repl", json_of_dvec(r.level_repl));
      row.set("level_half_width", json_of_dvec(r.level_half_width));
      row.set("ga_evaluations", Json::integer(r.ga_evaluations));
      row.set("eval_cache_lookups", Json::integer(r.eval_cache_lookups));
      row.set("eval_cache_hits", Json::integer(r.eval_cache_hits));
      row.set("seconds", Json::number(r.seconds));
      break;
    }
  }
  Json out = Json::object();
  out.set("kind", Json::string(to_string(result.kind)));
  out.set("row", std::move(row));
  return out;
}

std::optional<CellResult> result_of_json(const Json& json) {
  std::string kind;
  const Json* row = json.find("row");
  if (!get_string(json, "kind", kind) || row == nullptr) return std::nullopt;
  CellResult result;
  if (kind == "tiling") {
    result.kind = SweepKind::Tiling;
    core::TilingRow& r = result.tiling;
    i64 generations = 0;
    if (!get_string(*row, "label", r.label) ||
        !get_double(*row, "no_tiling_total", r.no_tiling_total) ||
        !get_double(*row, "no_tiling_repl", r.no_tiling_repl) ||
        !get_double(*row, "tiling_total", r.tiling_total) ||
        !get_double(*row, "tiling_repl", r.tiling_repl) ||
        !ivec_of_json(row->find("tiles"), r.tiles.t) ||
        !get_int(*row, "ga_evaluations", r.ga_evaluations) ||
        !get_int(*row, "ga_generations", generations) ||
        !get_int(*row, "eval_cache_lookups", r.eval_cache_lookups) ||
        !get_int(*row, "eval_cache_hits", r.eval_cache_hits) ||
        !get_double(*row, "seconds", r.seconds))
      return std::nullopt;
    r.ga_generations = (int)generations;
  } else if (kind == "padding") {
    result.kind = SweepKind::Padding;
    core::PaddingRow& r = result.padding;
    if (!get_string(*row, "label", r.label) ||
        !get_double(*row, "original_repl", r.original_repl) ||
        !get_double(*row, "padding_repl", r.padding_repl) ||
        !get_double(*row, "padding_tiling_repl", r.padding_tiling_repl) ||
        !ivec_of_json(row->find("pads_intra"), r.pads.intra) ||
        !ivec_of_json(row->find("pads_inter"), r.pads.inter) ||
        !ivec_of_json(row->find("tiles"), r.tiles.t) ||
        !get_double(*row, "seconds", r.seconds))
      return std::nullopt;
  } else if (kind == "hierarchy") {
    result.kind = SweepKind::Hierarchy;
    core::HierarchyRow& r = result.hierarchy;
    if (!get_string(*row, "label", r.label) ||
        !ivec_of_json(row->find("l1_tiles"), r.l1_tiles.t) ||
        !ivec_of_json(row->find("tiles"), r.tiles.t) ||
        !get_double(*row, "cost_l1_tiles", r.cost_l1_tiles) ||
        !get_double(*row, "cost_tiles", r.cost_tiles) ||
        !dvec_of_json(row->find("level_repl"), r.level_repl) ||
        !dvec_of_json(row->find("level_half_width"), r.level_half_width) ||
        !get_int(*row, "ga_evaluations", r.ga_evaluations) ||
        !get_int(*row, "eval_cache_lookups", r.eval_cache_lookups) ||
        !get_int(*row, "eval_cache_hits", r.eval_cache_hits) ||
        !get_double(*row, "seconds", r.seconds))
      return std::nullopt;
  } else {
    return std::nullopt;
  }
  return result;
}

}  // namespace cmetile::sweep

#include "sweep/result_cache.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef __unix__
#include <unistd.h>
#endif

#include "support/contracts.hpp"
#include "support/hash.hpp"

namespace cmetile::sweep {

namespace {

constexpr const char* kHeader = "cmetile-cache v1";

std::string checksum_hex(std::string_view payload) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)fnv1a_bytes(payload));
  return buf;
}

/// Unique-enough temp suffix: pid + a process-wide counter, so concurrent
/// threads of one process and concurrent processes never share a temp
/// file. (Being wrong here would interleave writes, but the final rename
/// would still be atomic.)
std::string temp_suffix() {
  static std::atomic<unsigned> counter{0};
#ifdef __unix__
  const long pid = (long)::getpid();
#else
  const long pid = 0;
#endif
  std::ostringstream out;
  out << ".tmp." << pid << "." << counter.fetch_add(1);
  return out.str();
}

}  // namespace

ResultCache::ResultCache(std::string directory) : directory_(std::move(directory)) {
  expects(!directory_.empty(), "ResultCache: empty directory");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  expects(!ec && std::filesystem::is_directory(directory_),
          "ResultCache: cannot create cache directory");
}

std::string ResultCache::path_of(const Fingerprint& fingerprint) const {
  return directory_ + "/" + fingerprint.hex() + ".cell";
}

std::optional<CellResult> ResultCache::load(const Fingerprint& fingerprint) const {
  std::ifstream in(path_of(fingerprint));
  if (!in) return std::nullopt;

  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  const std::string want_fp = fingerprint.hex();
  std::optional<CellResult> last_valid;
  while (std::getline(in, line)) {
    // Record: "row <fp> <checksum> <json>". Any deviation skips the line.
    std::istringstream fields(line);
    std::string tag, fp, checksum;
    if (!(fields >> tag >> fp >> checksum) || tag != "row") continue;
    std::string payload;
    std::getline(fields, payload);
    if (payload.size() < 2 || payload[0] != ' ') continue;
    payload.erase(0, 1);
    if (fp != want_fp) continue;
    if (checksum != checksum_hex(payload)) continue;
    const std::optional<Json> json = Json::parse(payload);
    if (!json) continue;
    std::optional<CellResult> result = result_of_json(*json);
    if (!result) continue;
    result->from_cache = true;
    last_valid = std::move(result);
  }
  return last_valid;
}

bool ResultCache::store(const Fingerprint& fingerprint, const CellResult& result) const {
  const std::string payload = json_of_result(result).dump();
  const std::string final_path = path_of(fingerprint);
  const std::string temp_path = final_path + temp_suffix();
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) return false;
    out << kHeader << "\n"
        << "row " << fingerprint.hex() << " " << checksum_hex(payload) << " " << payload << "\n";
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      return false;
    }
  }
  // rename(2) is atomic within a filesystem: readers see the old bytes or
  // the new bytes, never a mix — this is the whole crash-safety story.
  if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return false;
  }
  return true;
}

std::size_t ResultCache::cell_count() const {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".cell") ++count;
  }
  return count;
}

}  // namespace cmetile::sweep

#include "sweep/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "support/contracts.hpp"
#include "support/hash.hpp"

namespace cmetile::sweep {

namespace {

constexpr const char* kHeader = "cmetile-cache v1";

std::string checksum_hex(std::string_view payload) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)fnv1a_bytes(payload));
  return buf;
}

/// Unique-enough temp suffix: pid + a process-wide counter, so concurrent
/// threads of one process and concurrent processes never share a temp
/// file. (Being wrong here would interleave writes, but the final rename
/// would still be atomic.)
std::string temp_suffix() {
  static std::atomic<unsigned> counter{0};
#ifdef __unix__
  const long pid = (long)::getpid();
#else
  const long pid = 0;
#endif
  std::ostringstream out;
  out << ".tmp." << pid << "." << counter.fetch_add(1);
  return out.str();
}

/// All checksum-valid record payloads for this fingerprint, in file order.
/// "Valid" here is the record framing only (tag, fingerprint, checksum);
/// each loader applies its own payload decoding on top and walks the list
/// from the back — preserving last-valid-record-wins under its own notion
/// of valid.
std::vector<std::string> valid_payloads(const std::string& path, const std::string& want_fp) {
  std::vector<std::string> payloads;
  std::ifstream in(path);
  if (!in) return payloads;

  std::string line;
  if (!std::getline(in, line) || line != kHeader) return payloads;

  while (std::getline(in, line)) {
    // Record: "row <fp> <checksum> <json>". Any deviation skips the line.
    std::istringstream fields(line);
    std::string tag, fp, checksum;
    if (!(fields >> tag >> fp >> checksum) || tag != "row") continue;
    std::string payload;
    std::getline(fields, payload);
    if (payload.size() < 2 || payload[0] != ' ') continue;
    payload.erase(0, 1);
    if (fp != want_fp) continue;
    if (checksum != checksum_hex(payload)) continue;
    payloads.push_back(std::move(payload));
  }
  return payloads;
}

/// LRU touch: a hit makes this cell the youngest, so gc() evicts cold
/// cells first and never the ones a live sweep is replaying. Best effort —
/// a read-only store still serves hits.
void touch(const std::string& path) {
  std::error_code ec;
  std::filesystem::last_write_time(path, std::filesystem::file_time_type::clock::now(), ec);
}

}  // namespace

ResultCache::ResultCache(std::string directory) : directory_(std::move(directory)) {
  expects(!directory_.empty(), "ResultCache: empty directory");
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  expects(!ec && std::filesystem::is_directory(directory_),
          "ResultCache: cannot create cache directory");
}

std::string ResultCache::path_of(const Fingerprint& fingerprint) const {
  return directory_ + "/" + fingerprint.hex() + ".cell";
}

std::optional<CellResult> ResultCache::load(const Fingerprint& fingerprint) const {
  const std::string path = path_of(fingerprint);
  const std::vector<std::string> payloads = valid_payloads(path, fingerprint.hex());
  for (auto it = payloads.rbegin(); it != payloads.rend(); ++it) {
    const std::optional<Json> json = Json::parse(*it);
    if (!json) continue;
    std::optional<CellResult> result = result_of_json(*json);
    if (!result) continue;
    result->from_cache = true;
    touch(path);
    return result;
  }
  return std::nullopt;
}

std::optional<std::string> ResultCache::load_json(const Fingerprint& fingerprint) const {
  const std::string path = path_of(fingerprint);
  std::vector<std::string> payloads = valid_payloads(path, fingerprint.hex());
  for (auto it = payloads.rbegin(); it != payloads.rend(); ++it) {
    if (!Json::parse(*it)) continue;
    touch(path);
    return std::move(*it);
  }
  return std::nullopt;
}

bool ResultCache::store(const Fingerprint& fingerprint, const CellResult& result) const {
  return store_json(fingerprint, json_of_result(result).dump());
}

bool ResultCache::store_json(const Fingerprint& fingerprint, std::string_view payload) const {
  const std::string final_path = path_of(fingerprint);
  const std::string temp_path = final_path + temp_suffix();
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) return false;
    out << kHeader << "\n"
        << "row " << fingerprint.hex() << " " << checksum_hex(payload) << " " << payload << "\n";
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      return false;
    }
  }
  // rename(2) is atomic within a filesystem: readers see the old bytes or
  // the new bytes, never a mix — this is the whole crash-safety story.
  if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return false;
  }
  return true;
}

std::size_t ResultCache::cell_count() const {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".cell") ++count;
  }
  return count;
}

namespace {

struct CellFile {
  std::filesystem::path path;
  std::uintmax_t bytes = 0;
  std::filesystem::file_time_type mtime;
};

double age_seconds(const std::filesystem::file_time_type& mtime) {
  const auto now = std::filesystem::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

/// All readable ".cell" entries of the store (unreadable ones skipped —
/// a concurrent gc or writer may race us; every operation here must
/// degrade, never fail).
std::vector<CellFile> scan_cells(const std::string& directory) {
  std::vector<CellFile> cells;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    if (entry.path().extension() != ".cell") continue;
    std::error_code stat_ec;
    CellFile cell;
    cell.path = entry.path();
    cell.bytes = entry.file_size(stat_ec);
    if (stat_ec) continue;
    cell.mtime = entry.last_write_time(stat_ec);
    if (stat_ec) continue;
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace

CacheStats ResultCache::stats() const {
  CacheStats stats;
  for (const CellFile& cell : scan_cells(directory_)) {
    ++stats.cells;
    stats.bytes += cell.bytes;
    const double age = age_seconds(cell.mtime);
    const std::size_t bucket = age < 60.0      ? 0
                               : age < 3600.0  ? 1
                               : age < 86400.0 ? 2
                               : age < 604800.0 ? 3
                                                : 4;
    ++stats.age_histogram[bucket];
  }
  return stats;
}

GcStats ResultCache::gc(const GcOptions& options, std::span<const Fingerprint> keep) const {
  std::unordered_set<std::string> protected_names;
  protected_names.reserve(keep.size());
  for (const Fingerprint& fingerprint : keep) protected_names.insert(fingerprint.hex() + ".cell");

  std::vector<CellFile> cells = scan_cells(directory_);
  GcStats stats;
  stats.scanned = cells.size();
  for (const CellFile& cell : cells) stats.bytes_before += cell.bytes;
  stats.bytes_after = stats.bytes_before;

  // Oldest (least recently hit) first; load()'s mtime touch makes every
  // cell this run read or wrote the youngest in the store.
  std::sort(cells.begin(), cells.end(),
            [](const CellFile& a, const CellFile& b) { return a.mtime < b.mtime; });

  const auto evict = [&](const CellFile& cell) {
    std::error_code ec;
    if (!std::filesystem::remove(cell.path, ec) || ec) return;
    ++stats.evicted;
    stats.bytes_after -= cell.bytes;
  };

  for (const CellFile& cell : cells) {
    if (protected_names.count(cell.path.filename().string()) > 0) continue;
    const bool too_old =
        options.max_age_seconds > 0.0 && age_seconds(cell.mtime) > options.max_age_seconds;
    const bool over_budget = stats.bytes_after > options.max_bytes;
    if (too_old || over_budget) evict(cell);
  }

  // Crash litter: a writer killed between open and rename leaves a
  // ".tmp.<pid>.<n>" file behind. Anything that old is not an in-flight
  // store (stores are subsecond) — sweep it, outside the cell accounting.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().filename().string().find(".tmp.") == std::string::npos) continue;
    std::error_code stat_ec;
    const auto mtime = entry.last_write_time(stat_ec);
    if (stat_ec || age_seconds(mtime) < 3600.0) continue;
    std::error_code rm_ec;
    std::filesystem::remove(entry.path(), rm_ec);
  }
  return stats;
}

}  // namespace cmetile::sweep

#pragma once
// One experiment cell of a sweep: the unit the scheduler caches, ships to
// worker subprocesses, and checkpoints. A cell is a pure description —
// (experiment kind, kernel entry, cache geometry, ExperimentOptions) — and
// run_cell() maps it to exactly one core experiment-driver call, so a
// cell's result is a deterministic function of the cell (the drivers
// derive all seeds from the entry/geometry/options, never from wall clock
// or thread ids).
//
// Cells and results round-trip through the sweep JSON encoding: the same
// object is the worker-protocol job payload, the fingerprint preimage, and
// the cached on-disk payload. Doubles serialize in shortest-round-trip
// form, so a result loaded from cache (or received from a worker) is
// bit-identical to the locally computed one.

#include <optional>
#include <string>

#include "cache/hierarchy.hpp"
#include "core/experiment.hpp"
#include "kernels/kernels.hpp"
#include "sweep/json.hpp"

namespace cmetile::sweep {

/// Bump when the meaning of a cached result changes (objective semantics,
/// estimator conventions, kernel reconstructions, ...). Stale caches then
/// miss cleanly instead of replaying outdated rows.
inline constexpr std::uint64_t kCodeVersionSalt = 20260808'0001ULL;

enum class SweepKind { Tiling, Padding, Hierarchy };

const char* to_string(SweepKind kind);

struct SweepCell {
  SweepKind kind = SweepKind::Tiling;
  kernels::FigureEntry entry;
  /// Geometry under test. Tiling/Padding cells are the paper's single-
  /// cache experiments: depth-1 hierarchy, level 0's config is the cache
  /// (latency forced to 1 so equal geometries fingerprint equally).
  cache::Hierarchy hierarchy;
  core::ExperimentOptions options;

  static SweepCell tiling(kernels::FigureEntry entry, const cache::CacheConfig& cache,
                          core::ExperimentOptions options);
  static SweepCell padding(kernels::FigureEntry entry, const cache::CacheConfig& cache,
                           core::ExperimentOptions options);
  static SweepCell hierarchy_study(kernels::FigureEntry entry, cache::Hierarchy hierarchy,
                                   core::ExperimentOptions options);
};

/// Result of one cell; only the member matching `kind` is meaningful.
struct CellResult {
  SweepKind kind = SweepKind::Tiling;
  core::TilingRow tiling;
  core::PaddingRow padding;
  core::HierarchyRow hierarchy;
  bool from_cache = false;  ///< satisfied from the ResultCache, not computed
};

/// Execute the cell's experiment (one core driver call).
CellResult run_cell(const SweepCell& cell);

/// 128-bit content fingerprint (two independent FNV-1a streams over the
/// canonical cell encoding). Collisions across even millions of cells are
/// negligible; the cache re-checks the stored fingerprint on load anyway.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  std::string hex() const;  ///< 32 lowercase hex chars (the cache filename)
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Fingerprint of a cell: hash of its canonical JSON plus the code-version
/// salt. Everything that can change the result is in the preimage — the
/// kernel entry, every cache level's geometry and latency, and the full
/// ExperimentOptions including seeds and GA/estimator/analysis knobs.
Fingerprint fingerprint_of(const SweepCell& cell, std::uint64_t salt = kCodeVersionSalt);

// -- JSON round-trips (worker protocol + cache payloads) -----------------
Json json_of_cell(const SweepCell& cell);
std::optional<SweepCell> cell_of_json(const Json& json);

Json json_of_result(const CellResult& result);
std::optional<CellResult> result_of_json(const Json& json);

}  // namespace cmetile::sweep

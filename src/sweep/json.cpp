#include "sweep/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/contracts.hpp"

namespace cmetile::sweep {

namespace {

const std::string kEmptyString;

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if ((unsigned char)c < 0x20) {
          // Control characters the protocol never produces; keep the
          // output valid JSON anyway.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", (unsigned)(unsigned char)c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over [pos, end); every helper leaves pos just
/// past what it consumed or returns false with pos unspecified.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;  // corrupt input must not smash the stack

  void skip_ws() {
    while (pos < text.size() && is_ws(text[pos])) ++pos;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_hex4(unsigned& code) {
    if (pos + 4 > text.size()) return false;
    const auto res = std::from_chars(text.data() + pos, text.data() + pos + 4, code, 16);
    if (res.ec != std::errc() || res.ptr != text.data() + pos + 4) return false;
    pos += 4;
    return true;
  }

  /// Append one code point (<= 0x10FFFF, not a surrogate) as UTF-8.
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += (char)cp;
    } else if (cp < 0x800) {
      out += (char)(0xC0 | (cp >> 6));
      out += (char)(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += (char)(0xE0 | (cp >> 12));
      out += (char)(0x80 | ((cp >> 6) & 0x3F));
      out += (char)(0x80 | (cp & 0x3F));
    } else {
      out += (char)(0xF0 | (cp >> 18));
      out += (char)(0x80 | ((cp >> 12) & 0x3F));
      out += (char)(0x80 | ((cp >> 6) & 0x3F));
      out += (char)(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            if (!parse_hex4(code)) return false;
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: must be immediately followed by an escaped
              // low surrogate; together they name one supplementary-plane
              // code point.
              if (pos + 2 > text.size() || text[pos] != '\\' || text[pos + 1] != 'u')
                return false;
              pos += 2;
              unsigned low = 0;
              if (!parse_hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) return false;
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return false;  // lone low surrogate
            }
            append_utf8(out, code);
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool digits = false, fractional = false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos;
      } else {
        break;
      }
    }
    if (!digits) return false;
    const std::string_view token = text.substr(start, pos - start);
    if (!fractional) {
      i64 value = 0;
      const auto res = std::from_chars(token.data(), token.data() + token.size(), value);
      if (res.ec == std::errc() && res.ptr == token.data() + token.size()) {
        out = Json::integer(value);
        return true;
      }
      // Fall through: out-of-range integer parses as double.
    }
    double value = 0.0;
    const auto res = std::from_chars(token.data(), token.data() + token.size(), value);
    if (res.ec != std::errc() || res.ptr != token.data() + token.size()) return false;
    if (!std::isfinite(value)) return false;
    out = Json::number(value);
    return true;
  }

  bool parse_value(Json& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (pos >= text.size()) return false;
    bool ok = false;
    const char c = text[pos];
    if (c == 'n') {
      ok = literal("null");
      if (ok) out = Json::null();
    } else if (c == 't') {
      ok = literal("true");
      if (ok) out = Json::boolean(true);
    } else if (c == 'f') {
      ok = literal("false");
      if (ok) out = Json::boolean(false);
    } else if (c == '"') {
      std::string s;
      ok = parse_string(s);
      if (ok) out = Json::string(std::move(s));
    } else if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        ok = true;
      } else {
        while (true) {
          Json item;
          if (!parse_value(item)) return --depth, false;
          out.push(std::move(item));
          skip_ws();
          if (pos >= text.size()) return --depth, false;
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == ']') {
            ++pos;
            ok = true;
            break;
          }
          return --depth, false;
        }
      }
    } else if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        ok = true;
      } else {
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return --depth, false;
          skip_ws();
          if (pos >= text.size() || text[pos] != ':') return --depth, false;
          ++pos;
          Json value;
          if (!parse_value(value)) return --depth, false;
          out.set(std::move(key), std::move(value));
          skip_ws();
          if (pos >= text.size()) return --depth, false;
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == '}') {
            ++pos;
            ok = true;
            break;
          }
          return --depth, false;
        }
      }
    } else {
      ok = parse_number(out);
    }
    --depth;
    return ok;
  }
};

void dump_into(const Json& value, std::string& out) {
  switch (value.kind()) {
    case Json::Kind::Null: out += "null"; break;
    case Json::Kind::Bool: out += value.as_bool() ? "true" : "false"; break;
    case Json::Kind::Int: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, value.as_int());
      out.append(buf, res.ptr);
      break;
    }
    case Json::Kind::Double: {
      // Shortest round-trip form: parsing it back yields the identical
      // IEEE-754 double, which is what makes cached rows bit-identical.
      char buf[32];
      const auto res = std::to_chars(buf, buf + sizeof buf, value.as_double());
      out.append(buf, res.ptr);
      break;
    }
    case Json::Kind::String: append_escaped(out, value.as_string()); break;
    case Json::Kind::Array: {
      out += '[';
      bool first = true;
      for (const Json& item : value.items()) {
        if (!first) out += ',';
        first = false;
        dump_into(item, out);
      }
      out += ']';
      break;
    }
    case Json::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, key);
        out += ':';
        dump_into(member, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

Json Json::boolean(bool b) {
  Json v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Json Json::integer(i64 i) {
  Json v;
  v.kind_ = Kind::Int;
  v.int_ = i;
  return v;
}

Json Json::number(double d) {
  Json v;
  v.kind_ = Kind::Double;
  v.double_ = d;
  return v;
}

Json Json::string(std::string s) {
  Json v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

Json Json::array() {
  Json v;
  v.kind_ = Kind::Array;
  return v;
}

Json Json::object() {
  Json v;
  v.kind_ = Kind::Object;
  return v;
}

void Json::push(Json value) {
  expects(kind_ == Kind::Array, "Json::push on a non-array");
  items_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  expects(kind_ == Kind::Object, "Json::set on a non-object");
  members_.emplace_back(std::move(key), std::move(value));
}

bool Json::as_bool(bool fallback) const { return kind_ == Kind::Bool ? bool_ : fallback; }

i64 Json::as_int(i64 fallback) const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double) {
    // Casting an out-of-range double to i64 is UB, and this path is
    // reachable from untrusted worker output — range-check first.
    // 2^63 is exactly representable; values in [-2^63, 2^63) convert.
    if (double_ >= -9223372036854775808.0 && double_ < 9223372036854775808.0)
      return (i64)double_;
    return fallback;
  }
  return fallback;
}

double Json::as_double(double fallback) const {
  if (kind_ == Kind::Double) return double_;
  if (kind_ == Kind::Int) return (double)int_;
  return fallback;
}

const std::string& Json::as_string() const {
  return kind_ == Kind::String ? string_ : kEmptyString;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, member] : members_)
    if (name == key) return &member;
  return nullptr;
}

std::string Json::dump() const {
  std::string out;
  dump_into(*this, out);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  Parser parser{text};
  Json value;
  if (!parser.parse_value(value)) return std::nullopt;
  parser.skip_ws();
  if (parser.pos != text.size()) return std::nullopt;
  return value;
}

}  // namespace cmetile::sweep

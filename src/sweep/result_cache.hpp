#pragma once
// Persistent, content-addressed store for sweep cell results.
//
// Layout: one file per cell under the cache directory, named by the
// cell's 128-bit fingerprint hex ("<fp>.cell"). Each file is line-
// oriented and append-friendly:
//
//   cmetile-cache v1                                  <- versioned header
//   row <fp-hex> <fnv64-hex-of-json> <result-json>    <- 1+ records
//
// load() scans every record, skips anything malformed (wrong header,
// truncated line, checksum mismatch, unparseable JSON, fingerprint that
// doesn't match the request) and returns the LAST valid record — so a
// partially appended record, garbage bytes, or a stale rename can only
// degrade to a cache miss (cold recompute), never to a crash or a wrong
// row.
//
// store() is crash- and concurrency-safe via the classic atomic-rename
// path: the record is written to a unique temp file in the same directory
// and rename(2)'d over the final name. Two processes storing the same
// cell concurrently both succeed; whichever rename lands last wins, and
// both wrote identical bytes anyway (results are deterministic functions
// of the fingerprinted cell).
//
// Lifecycle: long-lived stores grow without bound (every new geometry,
// seed or salt bump adds cells), so the cache is an LRU keyed on file
// mtime — load() bumps the mtime of every hit, and gc() evicts
// oldest-first down to a byte budget (and/or an age limit). Fingerprints
// in gc()'s keep-set are never evicted regardless of budget; the
// scheduler passes the current sweep's fingerprints, so a GC'd run can
// never evict a cell it just computed or replayed.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "support/cli.hpp"  // kDefaultCacheDir (shared with the bench flags)
#include "sweep/cell.hpp"

namespace cmetile::sweep {

/// Default gc() byte budget (matches the --cache-max-mb flag default).
inline constexpr std::uintmax_t kDefaultCacheMaxBytes = 256ull << 20;

struct CacheStats {
  std::size_t cells = 0;
  std::uintmax_t bytes = 0;
  /// Cell counts by age-since-last-hit (mtime): < 1 min, < 1 h, < 1 day,
  /// < 1 week, older. Sums to `cells`.
  std::array<std::size_t, 5> age_histogram{};
};

struct GcOptions {
  std::uintmax_t max_bytes = kDefaultCacheMaxBytes;  ///< evict LRU beyond this
  double max_age_seconds = 0.0;  ///< evict cells idle longer; 0 = no age limit
};

struct GcStats {
  std::size_t scanned = 0;
  std::size_t evicted = 0;
  std::uintmax_t bytes_before = 0;
  std::uintmax_t bytes_after = 0;
};

class ResultCache {
 public:
  /// Opens (and creates, including parents) the cache directory. Throws
  /// contract_error if the path exists but is not a directory or cannot
  /// be created.
  explicit ResultCache(std::string directory);

  const std::string& directory() const { return directory_; }

  /// The cached result for this fingerprint, or nullopt on any miss
  /// (absent, unreadable, corrupt, version/fingerprint mismatch). A hit
  /// bumps the cell file's mtime — the LRU signal gc() evicts by.
  std::optional<CellResult> load(const Fingerprint& fingerprint) const;

  /// Persist one result atomically; returns false on I/O failure (the
  /// sweep then simply stays uncached — never fatal).
  bool store(const Fingerprint& fingerprint, const CellResult& result) const;

  /// Raw-payload variants: the same record format with the caller's
  /// canonical JSON line as the payload. cmetile-serve stores
  /// OptimizeResponse encodings (sweep/request_json.hpp) next to cell
  /// rows — fingerprints keep the two namespaces apart (the request
  /// schema is a domain separator in the preimage), and the shared
  /// header/checksum/atomic-rename machinery is reused byte for byte.
  /// The caller decodes the returned payload (nullopt = any miss).
  std::optional<std::string> load_json(const Fingerprint& fingerprint) const;
  bool store_json(const Fingerprint& fingerprint, std::string_view payload) const;

  /// Number of "*.cell" files currently in the directory (tests/stats).
  std::size_t cell_count() const;

  /// Size and age profile of the store (".cell" files only).
  CacheStats stats() const;

  /// Evict cells oldest-mtime-first until the store fits `max_bytes` (and
  /// drop anything idle beyond `max_age_seconds` outright). Fingerprints
  /// in `keep` are never evicted. Unreadable entries are skipped; eviction
  /// failures are non-fatal (counted as not evicted). Also sweeps stale
  /// ".tmp." litter left by crashed writers (> 1 h old, not counted).
  GcStats gc(const GcOptions& options, std::span<const Fingerprint> keep = {}) const;

  std::string path_of(const Fingerprint& fingerprint) const;

 private:
  std::string directory_;
};

}  // namespace cmetile::sweep

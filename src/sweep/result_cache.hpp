#pragma once
// Persistent, content-addressed store for sweep cell results.
//
// Layout: one file per cell under the cache directory, named by the
// cell's 128-bit fingerprint hex ("<fp>.cell"). Each file is line-
// oriented and append-friendly:
//
//   cmetile-cache v1                                  <- versioned header
//   row <fp-hex> <fnv64-hex-of-json> <result-json>    <- 1+ records
//
// load() scans every record, skips anything malformed (wrong header,
// truncated line, checksum mismatch, unparseable JSON, fingerprint that
// doesn't match the request) and returns the LAST valid record — so a
// partially appended record, garbage bytes, or a stale rename can only
// degrade to a cache miss (cold recompute), never to a crash or a wrong
// row.
//
// store() is crash- and concurrency-safe via the classic atomic-rename
// path: the record is written to a unique temp file in the same directory
// and rename(2)'d over the final name. Two processes storing the same
// cell concurrently both succeed; whichever rename lands last wins, and
// both wrote identical bytes anyway (results are deterministic functions
// of the fingerprinted cell).

#include <optional>
#include <string>

#include "support/cli.hpp"  // kDefaultCacheDir (shared with the bench flags)
#include "sweep/cell.hpp"

namespace cmetile::sweep {

class ResultCache {
 public:
  /// Opens (and creates, including parents) the cache directory. Throws
  /// contract_error if the path exists but is not a directory or cannot
  /// be created.
  explicit ResultCache(std::string directory);

  const std::string& directory() const { return directory_; }

  /// The cached result for this fingerprint, or nullopt on any miss
  /// (absent, unreadable, corrupt, version/fingerprint mismatch).
  std::optional<CellResult> load(const Fingerprint& fingerprint) const;

  /// Persist one result atomically; returns false on I/O failure (the
  /// sweep then simply stays uncached — never fatal).
  bool store(const Fingerprint& fingerprint, const CellResult& result) const;

  /// Number of "*.cell" files currently in the directory (tests/stats).
  std::size_t cell_count() const;

  std::string path_of(const Fingerprint& fingerprint) const;

 private:
  std::string directory_;
};

}  // namespace cmetile::sweep

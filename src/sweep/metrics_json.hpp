#pragma once
// obs::MetricsSnapshot <-> sweep::Json bridge. Lives in the sweep layer
// (not obs) so obs stays dependency-free above support; the sweep protocol
// and the --metrics report are the only serialization consumers.
//
// The encoding is canonical: snapshots are sorted by name (obs contract)
// and Json objects preserve insertion order, so equal snapshots dump to
// identical bytes — the transport test round-trips a snapshot over pipe
// and TCP and byte-compares the dumps.

#include <optional>

#include "obs/metrics.hpp"
#include "sweep/json.hpp"

namespace cmetile::sweep {

Json json_of_metrics(const obs::MetricsSnapshot& snapshot);
std::optional<obs::MetricsSnapshot> metrics_of_json(const Json& json);

}  // namespace cmetile::sweep

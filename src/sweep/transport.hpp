#pragma once
// Worker transports for the sweep scheduler (DESIGN.md §13). A Channel is
// one connected worker speaking the line protocol of sweep/protocol.hpp;
// a Transport establishes channels. Two backends:
//
//  - PipeTransport: fork+exec N copies of a worker binary with stdin/
//    stdout on fresh pipes (the original --jobs=N mode, single machine).
//    Pipe workers run the same binary image the scheduler resolved, so
//    their channels start trusted; the hello they send is still verified
//    when it arrives (a custom --worker-command from a stale build is
//    refused by the salt check).
//  - TcpTransport: bind a listening socket ("host:port", port 0 picks an
//    ephemeral one) and adopt workers that connect with --connect. TCP
//    channels start untrusted: no job is dispatched until their hello
//    passes the protocol-version + code-version-salt handshake. The
//    listener stays open for the whole run, so late joiners and restarted
//    workers are absorbed mid-sweep (reconnect-tolerant dispatch).
//
// The scheduler owns the event loop (poll over Channel::read_fd plus
// Transport::accept_fd); channels only move bytes. Everything here is
// POSIX-only — on other platforms the factories return nullptr and the
// scheduler computes in-process.

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cmetile::sweep {

/// One connected worker. All methods are scheduler-thread only.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Send one protocol line (terminator appended). False = peer is gone;
  /// the caller discards the channel (the line was not delivered).
  virtual bool send_line(std::string_view line) = 0;

  /// No more jobs will be sent: close/half-close the write side so the
  /// worker's read loop sees EOF and exits cleanly. Reading still works.
  virtual void finish_input() = 0;

  /// Readable fd for poll(); -1 once shut down.
  virtual int read_fd() const = 0;

  /// Nonblocking-ish read after poll() flagged read_fd readable:
  /// > 0 bytes read, 0 = EOF/peer dead, -1 = transient (EINTR), retry.
  virtual long read_some(char* buffer, std::size_t size) = 0;

  /// Tear the connection down immediately (kills a subprocess worker; a
  /// TCP peer just sees its socket close). Idempotent.
  virtual void shutdown() = 0;

  /// Loggable peer identity ("pid 1234", "127.0.0.1:51324").
  virtual std::string describe() const = 0;

  /// True when jobs may be dispatched before the hello arrives (pipe
  /// workers); TCP workers must complete the handshake first.
  virtual bool trusted() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* name() const = 0;

  /// Establish the initial channels, at most `want`. PipeTransport spawns
  /// subprocesses; TcpTransport waits up to its accept window for the
  /// first worker(s) to connect. Empty = transport unusable (the
  /// scheduler falls back in-process).
  virtual std::vector<std::unique_ptr<Channel>> open(int want) = 0;

  /// fd to poll for new incoming connections; -1 when the transport
  /// cannot accept mid-run (pipes).
  virtual int accept_fd() const { return -1; }

  /// Accept one pending connection after accept_fd() polled readable;
  /// nullptr when none is actually ready.
  virtual std::unique_ptr<Channel> accept() { return nullptr; }
};

struct PipeTransportOptions {
  std::string executable;            ///< worker binary (required)
  double heartbeat_seconds = 5.0;    ///< forwarded as --heartbeat=S
  int total_threads = 1;             ///< machine budget split across workers
};

struct TcpTransportOptions {
  std::string listen;                ///< "host:port"; port 0 = ephemeral
  double accept_wait_seconds = 30.0; ///< open(): max wait for first worker
  /// Invoked once with the bound "host:port" (the resolved ephemeral port
  /// included) before waiting for workers — tests and drivers launch
  /// their --connect workers from here.
  std::function<void(const std::string&)> on_listen;
  std::ostream* log = nullptr;
};

/// nullptr on non-POSIX platforms or when the executable is empty.
std::unique_ptr<Transport> make_pipe_transport(PipeTransportOptions options);

/// Binds and listens immediately; throws contract_error when the listen
/// spec is malformed or the socket cannot be bound. nullptr on non-POSIX.
std::unique_ptr<Transport> make_tcp_transport(TcpTransportOptions options);

/// Worker side of the TCP transport: connect to a scheduler's --listen
/// address (retrying for `connect_wait_seconds` so a worker may start
/// before its scheduler), send the hello, and serve the protocol loop
/// until the scheduler closes the connection. Returns false when the
/// connection could not be established or was lost mid-job.
bool run_tcp_worker(const std::string& connect_spec, double heartbeat_seconds,
                    double connect_wait_seconds = 15.0);

/// Outbound side of the line protocol as a Channel: connect to
/// "host:port" (retrying up to `wait_seconds` — the peer may not be
/// listening yet) and wrap the socket. cmetile-serve clients use this to
/// speak the client role of the protocol; the caller drives its own
/// send/read loop. nullptr when the connection cannot be established (or
/// on non-POSIX platforms).
std::unique_ptr<Channel> connect_channel(const std::string& connect_spec,
                                         double wait_seconds = 15.0);

}  // namespace cmetile::sweep

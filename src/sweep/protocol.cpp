#include "sweep/protocol.hpp"

#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>

#include "sweep/metrics_json.hpp"

namespace cmetile::sweep {

namespace {

std::string salt_hex(std::uint64_t salt) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)salt);
  return buf;
}

/// Periodic side-channel writer: beats every `interval_seconds` on its own
/// thread until destroyed. Destruction joins, so the beat callback can
/// never fire after the owner's scope ends (no write can interleave with
/// the result line that follows).
class HeartbeatTimer {
 public:
  HeartbeatTimer(double interval_seconds, std::function<void()> beat) {
    if (interval_seconds <= 0.0) return;
    thread_ = std::thread([this, interval_seconds, beat = std::move(beat)] {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto interval = std::chrono::duration<double>(interval_seconds);
      while (!cv_.wait_for(lock, interval, [this] { return stop_; })) beat();
    });
  }

  ~HeartbeatTimer() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

std::string hello_line(std::uint64_t salt, i64 pid) {
  Json msg = Json::object();
  msg.set("hello", Json::boolean(true));
  msg.set("protocol", Json::integer(kProtocolVersion));
  msg.set("salt", Json::string(salt_hex(salt)));
  msg.set("pid", Json::integer(pid < 0 ? (i64)::getpid() : pid));
  return msg.dump();
}

std::string client_hello_line(std::uint64_t salt, i64 pid) {
  Json msg = Json::object();
  msg.set("hello", Json::boolean(true));
  msg.set("protocol", Json::integer(kProtocolVersion));
  msg.set("salt", Json::string(salt_hex(salt)));
  msg.set("pid", Json::integer(pid < 0 ? (i64)::getpid() : pid));
  msg.set("client", Json::boolean(true));
  return msg.dump();
}

std::string job_line(i64 id, const SweepCell& cell) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("cell", json_of_cell(cell));
  return msg.dump();
}

std::string job_line(i64 id, const core::OptimizeRequest& request) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("request", json_of_request(request));
  return msg.dump();
}

std::string ack_line(i64 id) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("ack", Json::boolean(true));
  return msg.dump();
}

std::string heartbeat_line(i64 id, const obs::MetricsSnapshot* stats) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("heartbeat", Json::boolean(true));
  if (stats != nullptr) msg.set("stats", json_of_metrics(*stats));
  return msg.dump();
}

std::string result_line(i64 id, const CellResult& result, const obs::MetricsSnapshot* stats) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("ok", Json::boolean(true));
  msg.set("result", json_of_result(result));
  if (stats != nullptr) msg.set("stats", json_of_metrics(*stats));
  return msg.dump();
}

std::string response_line(i64 id, const core::OptimizeResponse& response,
                          const obs::MetricsSnapshot* stats) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("ok", Json::boolean(true));
  msg.set("response", json_of_response(response));
  if (stats != nullptr) msg.set("stats", json_of_metrics(*stats));
  return msg.dump();
}

std::string error_line(i64 id, const std::string& error) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("ok", Json::boolean(false));
  msg.set("error", Json::string(error));
  return msg.dump();
}

WorkerMessage parse_worker_message(std::string_view line) {
  WorkerMessage msg;
  const std::optional<Json> json = Json::parse(std::string(line));
  if (!json) return msg;

  if (const Json* hello = json->find("hello"); hello != nullptr && hello->as_bool(false)) {
    const Json* protocol = json->find("protocol");
    const Json* salt = json->find("salt");
    if (protocol == nullptr || salt == nullptr || salt->kind() != Json::Kind::String) return msg;
    char* end = nullptr;
    const std::string& hex = salt->as_string();
    msg.salt = std::strtoull(hex.c_str(), &end, 16);
    if (hex.empty() || end != hex.c_str() + hex.size()) return msg;
    msg.protocol = protocol->as_int(0);
    if (const Json* pid = json->find("pid"); pid != nullptr) msg.pid = pid->as_int(-1);
    if (const Json* client = json->find("client"); client != nullptr)
      msg.client = client->as_bool(false);
    msg.kind = WorkerMessage::Kind::Hello;
    return msg;
  }

  // Piggybacked stats (v3) are best-effort telemetry: a malformed stats
  // object degrades to "no stats", never to a dropped worker.
  const auto parse_stats = [&json, &msg] {
    if (const Json* stats = json->find("stats"); stats != nullptr)
      msg.stats = metrics_of_json(*stats);
  };

  const Json* id = json->find("id");
  if (id == nullptr) return msg;
  msg.id = id->as_int(-1);

  if (const Json* ack = json->find("ack"); ack != nullptr && ack->as_bool(false)) {
    msg.kind = WorkerMessage::Kind::Ack;
    return msg;
  }
  if (const Json* hb = json->find("heartbeat"); hb != nullptr && hb->as_bool(false)) {
    msg.kind = WorkerMessage::Kind::Heartbeat;
    parse_stats();
    return msg;
  }

  const Json* ok = json->find("ok");
  if (ok == nullptr) return msg;
  msg.ok = ok->as_bool(false);
  if (msg.ok) {
    // Exactly one payload member names the codec: "result" for cell jobs,
    // "response" (v4) for request jobs.
    if (const Json* payload = json->find("result"); payload != nullptr) {
      msg.result = result_of_json(*payload);
      if (!msg.result) return msg;
    } else if (const Json* payload2 = json->find("response"); payload2 != nullptr) {
      msg.response = response_of_json(*payload2);
      if (!msg.response) return msg;
    } else {
      return msg;
    }
  } else if (const Json* error = json->find("error"); error != nullptr) {
    msg.error = error->as_string();
  }
  msg.kind = WorkerMessage::Kind::Result;
  parse_stats();
  return msg;
}

bool handshake_accepts(const WorkerMessage& hello, std::string* detail) {
  if (hello.kind != WorkerMessage::Kind::Hello) {
    if (detail != nullptr) *detail = "first line is not a hello";
    return false;
  }
  if (hello.protocol != kProtocolVersion) {
    if (detail != nullptr)
      *detail = "protocol mismatch (worker " + std::to_string(hello.protocol) + ", scheduler " +
                std::to_string(kProtocolVersion) + ")";
    return false;
  }
  if (hello.salt != kCodeVersionSalt) {
    if (detail != nullptr)
      *detail = "code-version salt mismatch (worker " + salt_hex(hello.salt) + ", scheduler " +
                salt_hex(kCodeVersionSalt) + ") — rebuild the worker from this source tree";
    return false;
  }
  return true;
}

void run_worker_loop(std::istream& in, std::ostream& out, const WorkerLoopOptions& options) {
  std::mutex out_mutex;
  const auto emit = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << line << "\n" << std::flush;
  };
  if (options.collect_stats) obs::set_enabled(true);
  // Cumulative process snapshot (not per-job deltas): the scheduler keeps
  // the latest one per worker, so a dropped heartbeat or dead connection
  // loses no telemetry that a later line doesn't resend.
  const auto stats_now = [&]() -> std::optional<obs::MetricsSnapshot> {
    if (!options.collect_stats) return std::nullopt;
    return obs::Registry::instance().snapshot();
  };
  if (options.send_hello) emit(hello_line(options.salt));

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    i64 id = -1;
    std::optional<SweepCell> cell;
    std::optional<core::OptimizeRequest> request;
    std::string error = "malformed job line";
    if (const std::optional<Json> job = Json::parse(line)) {
      if (const Json* id_field = job->find("id"); id_field != nullptr) id = id_field->as_int(-1);
      if (const Json* cell_json = job->find("cell"); cell_json != nullptr) {
        cell = cell_of_json(*cell_json);
        if (!cell) error = "malformed cell";
      } else if (const Json* request_json = job->find("request"); request_json != nullptr) {
        request = request_of_json(*request_json);
        if (!request) error = "malformed request";
      }
    }
    if (!cell && !request) {
      emit(error_line(id, error));
      continue;
    }

    emit(ack_line(id));
    std::optional<CellResult> result;
    std::optional<core::OptimizeResponse> response;
    {
      // Scoped so the timer joins BEFORE the result line goes out — the
      // result is always the last line written for this job.
      HeartbeatTimer heartbeat(options.heartbeat_seconds, [&, id] {
        const std::optional<obs::MetricsSnapshot> stats = stats_now();
        emit(heartbeat_line(id, stats ? &*stats : nullptr));
      });
      try {
        if (cell)
          result = run_cell(*cell);
        else
          response = core::optimize(*request);
      } catch (const std::exception& e) {
        error = e.what();
      } catch (...) {
        error = "unknown error";
      }
    }
    if (result) {
      const std::optional<obs::MetricsSnapshot> stats = stats_now();
      emit(result_line(id, *result, stats ? &*stats : nullptr));
    } else if (response) {
      const std::optional<obs::MetricsSnapshot> stats = stats_now();
      emit(response_line(id, *response, stats ? &*stats : nullptr));
    } else {
      emit(error_line(id, error));
    }
  }
}

}  // namespace cmetile::sweep

#pragma once
// Canonical JSON round-trip for the unified core::OptimizeRequest /
// OptimizeResponse pair — the wire schema of cmetile-serve and the
// fingerprint preimage of its content-addressed warm cache. The request
// encoding carries everything that determines the response (kind, the full
// generalized nest, layout options, every cache level's geometry +
// latencies + policy + mode, and the complete OptimizerOptions including
// seeds), so equal fingerprints imply bit-identical responses.
//
// The leading "schema" member ("cmetile-request-v1") doubles as a domain
// separator: a request can never fingerprint-collide with a sweep cell,
// whose canonical encoding starts with "kind".
//
// Decoders are total — nullopt on any malformed or non-validating input,
// never an exception — because payloads arrive from sockets.

#include <optional>

#include "core/optimize.hpp"
#include "sweep/cell.hpp"

namespace cmetile::sweep {

inline constexpr std::string_view kRequestSchema = "cmetile-request-v1";
inline constexpr std::string_view kResponseSchema = "cmetile-response-v1";

Json json_of_request(const core::OptimizeRequest& request);
std::optional<core::OptimizeRequest> request_of_json(const Json& json);

Json json_of_response(const core::OptimizeResponse& response);
std::optional<core::OptimizeResponse> response_of_json(const Json& json);

/// Fingerprint of a request: same two-stream FNV recipe as cell
/// fingerprints (sweep/cell.hpp), over the canonical request encoding,
/// salted with the code version so semantic changes miss cleanly.
Fingerprint fingerprint_of(const core::OptimizeRequest& request,
                           std::uint64_t salt = kCodeVersionSalt);

}  // namespace cmetile::sweep

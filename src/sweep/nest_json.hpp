#pragma once
// JSON round-trip for generalized loop nests. The sweep cells themselves
// reference kernels by (name, size) — that encoding, and every cached
// fingerprint, is untouched. This encoding is for shipping a *custom* nest
// to workers or checkpoints: it captures the full generalized IR — affine
// (triangular) bounds, bounding boxes, sunk-statement provenance — so a
// decoded nest is structurally identical to the encoded one and validates.
//
// Affine expressions encode as {"c": [coeffs...], "k": constant}; a loop
// carries its box ("lo"/"hi") always and a bound expression ("lob"/"hib")
// only when affine, mirroring the in-memory sentinel convention.

#include <optional>

#include "ir/nest.hpp"
#include "sweep/json.hpp"

namespace cmetile::sweep {

Json json_of_nest(const ir::LoopNest& nest);

/// Decode and validate; nullopt on any structural or validation failure
/// (malformed input never throws, matching cell_of_json).
std::optional<ir::LoopNest> nest_of_json(const Json& json);

}  // namespace cmetile::sweep

#include "sweep/request_json.hpp"

#include "support/contracts.hpp"
#include "support/hash.hpp"
#include "sweep/json_codec.hpp"
#include "sweep/nest_json.hpp"

namespace cmetile::sweep {

namespace {

std::optional<cache::ReplacementPolicy> replacement_of_string(std::string_view name) {
  if (name == "lru") return cache::ReplacementPolicy::LRU;
  if (name == "plru") return cache::ReplacementPolicy::TreePLRU;
  if (name == "random") return cache::ReplacementPolicy::Random;
  return std::nullopt;
}

std::optional<cache::LevelMode> mode_of_string(std::string_view name) {
  if (name == "inclusive") return cache::LevelMode::Inclusive;
  if (name == "exclusive") return cache::LevelMode::Exclusive;
  if (name == "victim") return cache::LevelMode::Victim;
  return std::nullopt;
}

// Request levels carry the full CacheLevel — strictly more general than
// the sweep-cell level encoding (size/line/assoc/latency), which predates
// write-back and replacement modelling and is frozen by cache fingerprints.
Json json_of_level(const cache::CacheLevel& level) {
  Json l = Json::object();
  l.set("size", Json::integer(level.config.size_bytes));
  l.set("line", Json::integer(level.config.line_bytes));
  l.set("assoc", Json::integer(level.config.associativity));
  l.set("latency", Json::number(level.miss_latency));
  l.set("writeback_latency", Json::number(level.writeback_latency));
  l.set("replacement", Json::string(to_string(level.replacement)));
  l.set("mode", Json::string(to_string(level.mode)));
  return l;
}

bool level_of_json(const Json& json, cache::CacheLevel& out) {
  std::string replacement, mode;
  if (!get_int(json, "size", out.config.size_bytes) ||
      !get_int(json, "line", out.config.line_bytes) ||
      !get_int(json, "assoc", out.config.associativity) ||
      !get_double(json, "latency", out.miss_latency) ||
      !get_double(json, "writeback_latency", out.writeback_latency) ||
      !get_string(json, "replacement", replacement) || !get_string(json, "mode", mode))
    return false;
  const auto policy = replacement_of_string(replacement);
  const auto level_mode = mode_of_string(mode);
  if (!policy || !level_mode) return false;
  out.replacement = *policy;
  out.mode = *level_mode;
  return true;
}

Json json_of_layout(const ir::LayoutOptions& layout) {
  Json padding = Json::array();
  for (const ir::ArrayPadding& pad : layout.padding) {
    Json p = Json::object();
    p.set("dim_pad", json_of_ivec(pad.dim_pad));
    p.set("pre_gap_lines", Json::integer(pad.pre_gap_lines));
    padding.push(std::move(p));
  }
  Json out = Json::object();
  out.set("alignment", Json::integer(layout.alignment));
  out.set("padding", std::move(padding));
  return out;
}

bool layout_of_json(const Json& json, ir::LayoutOptions& out) {
  if (!get_int(json, "alignment", out.alignment)) return false;
  const Json* padding = json.find("padding");
  if (padding == nullptr || padding->kind() != Json::Kind::Array) return false;
  out.padding.clear();
  for (const Json& p : padding->items()) {
    ir::ArrayPadding pad;
    if (!ivec_of_json(p.find("dim_pad"), pad.dim_pad) ||
        !get_int(p, "pre_gap_lines", pad.pre_gap_lines))
      return false;
    out.padding.push_back(std::move(pad));
  }
  return true;
}

Json json_of_miss_estimate(const cme::MissEstimate& e) {
  Json out = Json::object();
  out.set("total_ratio", Json::number(e.total_ratio));
  out.set("replacement_ratio", Json::number(e.replacement_ratio));
  out.set("cold_ratio", Json::number(e.cold_ratio));
  out.set("total_half_width", Json::number(e.total_half_width));
  out.set("replacement_half_width", Json::number(e.replacement_half_width));
  out.set("sampled_points", Json::integer(e.sampled_points));
  out.set("exact", Json::boolean(e.exact));
  out.set("access_count", Json::integer(e.access_count));
  return out;
}

bool miss_estimate_of_json(const Json& json, cme::MissEstimate& out) {
  return get_double(json, "total_ratio", out.total_ratio) &&
         get_double(json, "replacement_ratio", out.replacement_ratio) &&
         get_double(json, "cold_ratio", out.cold_ratio) &&
         get_double(json, "total_half_width", out.total_half_width) &&
         get_double(json, "replacement_half_width", out.replacement_half_width) &&
         get_int(json, "sampled_points", out.sampled_points) &&
         get_bool(json, "exact", out.exact) &&
         get_int(json, "access_count", out.access_count);
}

Json json_of_writeback_estimate(const cme::WritebackEstimate& e) {
  Json out = Json::object();
  out.set("generation_ratio", Json::number(e.generation_ratio));
  out.set("half_width", Json::number(e.half_width));
  out.set("sampled_points", Json::integer(e.sampled_points));
  out.set("exact", Json::boolean(e.exact));
  out.set("store_access_count", Json::integer(e.store_access_count));
  return out;
}

bool writeback_estimate_of_json(const Json& json, cme::WritebackEstimate& out) {
  return get_double(json, "generation_ratio", out.generation_ratio) &&
         get_double(json, "half_width", out.half_width) &&
         get_int(json, "sampled_points", out.sampled_points) &&
         get_bool(json, "exact", out.exact) &&
         get_int(json, "store_access_count", out.store_access_count);
}

Json json_of_estimate(const cme::HierarchyEstimate& estimate) {
  Json levels = Json::array();
  for (const cme::MissEstimate& e : estimate.levels) levels.push(json_of_miss_estimate(e));
  Json writebacks = Json::array();
  for (const cme::WritebackEstimate& e : estimate.writebacks)
    writebacks.push(json_of_writeback_estimate(e));
  Json out = Json::object();
  out.set("levels", std::move(levels));
  out.set("writebacks", std::move(writebacks));
  out.set("weighted_cost", Json::number(estimate.weighted_cost));
  return out;
}

bool estimate_of_json(const Json* json, cme::HierarchyEstimate& out) {
  if (json == nullptr) return false;
  const Json* levels = json->find("levels");
  const Json* writebacks = json->find("writebacks");
  if (levels == nullptr || levels->kind() != Json::Kind::Array || writebacks == nullptr ||
      writebacks->kind() != Json::Kind::Array)
    return false;
  out.levels.clear();
  for (const Json& l : levels->items()) {
    cme::MissEstimate e;
    if (!miss_estimate_of_json(l, e)) return false;
    out.levels.push_back(e);
  }
  out.writebacks.clear();
  for (const Json& w : writebacks->items()) {
    cme::WritebackEstimate e;
    if (!writeback_estimate_of_json(w, e)) return false;
    out.writebacks.push_back(e);
  }
  return get_double(*json, "weighted_cost", out.weighted_cost);
}

// GaResult minus `history`: the per-generation trace is a diagnostic, not
// part of the answer, and would bloat every cached response.
Json json_of_ga(const ga::GaResult& ga) {
  Json out = Json::object();
  out.set("best_values", json_of_ivec(ga.best_values));
  out.set("best_cost", Json::number(ga.best_cost));
  out.set("objective_calls", Json::integer(ga.objective_calls));
  out.set("evaluations", Json::integer(ga.evaluations));
  out.set("eval_cache_lookups", Json::integer(ga.eval_cache_lookups));
  out.set("eval_cache_hits", Json::integer(ga.eval_cache_hits));
  out.set("generations", Json::integer(ga.generations));
  out.set("converged", Json::boolean(ga.converged));
  return out;
}

bool ga_of_json(const Json* json, ga::GaResult& out) {
  if (json == nullptr) return false;
  i64 generations = 0;
  if (!ivec_of_json(json->find("best_values"), out.best_values) ||
      !get_double(*json, "best_cost", out.best_cost) ||
      !get_int(*json, "objective_calls", out.objective_calls) ||
      !get_int(*json, "evaluations", out.evaluations) ||
      !get_int(*json, "eval_cache_lookups", out.eval_cache_lookups) ||
      !get_int(*json, "eval_cache_hits", out.eval_cache_hits) ||
      !get_int(*json, "generations", generations) || !get_bool(*json, "converged", out.converged))
    return false;
  out.generations = (int)generations;
  return true;
}

}  // namespace

Json json_of_request(const core::OptimizeRequest& request) {
  Json levels = Json::array();
  for (const cache::CacheLevel& level : request.hierarchy.levels)
    levels.push(json_of_level(level));
  Json out = Json::object();
  out.set("schema", Json::string(std::string(kRequestSchema)));
  out.set("kind", Json::string(core::to_string(request.kind)));
  out.set("nest", json_of_nest(request.nest));
  out.set("layout", json_of_layout(request.layout));
  out.set("levels", std::move(levels));
  out.set("options", json_of_optimizer_options(request.options));
  return out;
}

std::optional<core::OptimizeRequest> request_of_json(const Json& json) {
  std::string schema, kind;
  if (!get_string(json, "schema", schema) || schema != kRequestSchema) return std::nullopt;
  if (!get_string(json, "kind", kind)) return std::nullopt;
  const std::optional<core::OptimizeKind> parsed_kind = core::optimize_kind_of(kind);
  if (!parsed_kind) return std::nullopt;

  core::OptimizeRequest request;
  request.kind = *parsed_kind;

  const Json* nest = json.find("nest");
  if (nest == nullptr) return std::nullopt;
  std::optional<ir::LoopNest> decoded_nest = nest_of_json(*nest);
  if (!decoded_nest) return std::nullopt;
  request.nest = std::move(*decoded_nest);

  const Json* layout = json.find("layout");
  if (layout == nullptr || !layout_of_json(*layout, request.layout)) return std::nullopt;

  const Json* levels = json.find("levels");
  if (levels == nullptr || levels->kind() != Json::Kind::Array || levels->items().empty())
    return std::nullopt;
  for (const Json& l : levels->items()) {
    cache::CacheLevel level;
    if (!level_of_json(l, level)) return std::nullopt;
    request.hierarchy.levels.push_back(level);
  }

  const Json* options = json.find("options");
  if (options == nullptr || !optimizer_options_of_json(*options, request.options))
    return std::nullopt;

  // Structural decode succeeded; semantic validation (geometry contracts,
  // level count, padding/array-rank agreement) reuses the same contracts
  // optimize() enforces, demoted from throw to reject.
  try {
    request.hierarchy.validate();
    if (!request.layout.padding.empty()) {
      const ir::MemoryLayout probe(request.nest, request.layout);
      (void)probe;
    }
  } catch (const contract_error&) {
    return std::nullopt;
  }
  return request;
}

Json json_of_response(const core::OptimizeResponse& response) {
  Json out = Json::object();
  out.set("schema", Json::string(std::string(kResponseSchema)));
  out.set("kind", Json::string(core::to_string(response.kind)));
  out.set("tiles", json_of_ivec(response.tiles.t));
  out.set("pads_intra", json_of_ivec(response.pads.intra));
  out.set("pads_inter", json_of_ivec(response.pads.inter));
  out.set("before", json_of_estimate(response.before));
  out.set("after", json_of_estimate(response.after));
  out.set("ga", json_of_ga(response.ga));
  return out;
}

std::optional<core::OptimizeResponse> response_of_json(const Json& json) {
  std::string schema, kind;
  if (!get_string(json, "schema", schema) || schema != kResponseSchema) return std::nullopt;
  if (!get_string(json, "kind", kind)) return std::nullopt;
  const std::optional<core::OptimizeKind> parsed_kind = core::optimize_kind_of(kind);
  if (!parsed_kind) return std::nullopt;
  core::OptimizeResponse response;
  response.kind = *parsed_kind;
  if (!ivec_of_json(json.find("tiles"), response.tiles.t) ||
      !ivec_of_json(json.find("pads_intra"), response.pads.intra) ||
      !ivec_of_json(json.find("pads_inter"), response.pads.inter) ||
      !estimate_of_json(json.find("before"), response.before) ||
      !estimate_of_json(json.find("after"), response.after) ||
      !ga_of_json(json.find("ga"), response.ga))
    return std::nullopt;
  return response;
}

Fingerprint fingerprint_of(const core::OptimizeRequest& request, std::uint64_t salt) {
  const std::string canonical = json_of_request(request).dump();
  Fingerprint fp;
  fp.hi = fnv1a_u64(salt, fnv1a_bytes(canonical));
  fp.lo = fnv1a_u64(salt, fnv1a_bytes(canonical, 0x84222325CBF29CE4ULL));
  return fp;
}

}  // namespace cmetile::sweep

#include "sweep/json_codec.hpp"

namespace cmetile::sweep {

Json json_of_ivec(std::span<const i64> values) {
  Json array = Json::array();
  for (const i64 v : values) array.push(Json::integer(v));
  return array;
}

bool ivec_of_json(const Json* json, std::vector<i64>& out) {
  if (json == nullptr || json->kind() != Json::Kind::Array) return false;
  out.clear();
  for (const Json& item : json->items()) {
    if (item.kind() != Json::Kind::Int) return false;
    out.push_back(item.as_int());
  }
  return true;
}

Json json_of_ivecs(const std::vector<std::vector<i64>>& vectors) {
  Json array = Json::array();
  for (const std::vector<i64>& v : vectors) array.push(json_of_ivec(v));
  return array;
}

bool ivecs_of_json(const Json* json, std::vector<std::vector<i64>>& out) {
  if (json == nullptr || json->kind() != Json::Kind::Array) return false;
  out.clear();
  for (const Json& item : json->items()) {
    std::vector<i64> v;
    if (!ivec_of_json(&item, v)) return false;
    out.push_back(std::move(v));
  }
  return true;
}

Json json_of_dvec(const std::vector<double>& values) {
  Json array = Json::array();
  for (const double v : values) array.push(Json::number(v));
  return array;
}

bool dvec_of_json(const Json* json, std::vector<double>& out) {
  if (json == nullptr || json->kind() != Json::Kind::Array) return false;
  out.clear();
  for (const Json& item : json->items()) {
    if (item.kind() != Json::Kind::Double && item.kind() != Json::Kind::Int) return false;
    out.push_back(item.as_double());
  }
  return true;
}

bool get_double(const Json& obj, std::string_view key, double& out) {
  const Json* v = obj.find(key);
  if (v == nullptr ||
      (v->kind() != Json::Kind::Double && v->kind() != Json::Kind::Int))
    return false;
  out = v->as_double();
  return true;
}

bool get_int(const Json& obj, std::string_view key, i64& out) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->kind() != Json::Kind::Int) return false;
  out = v->as_int();
  return true;
}

bool get_bool(const Json& obj, std::string_view key, bool& out) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->kind() != Json::Kind::Bool) return false;
  out = v->as_bool();
  return true;
}

bool get_string(const Json& obj, std::string_view key, std::string& out) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->kind() != Json::Kind::String) return false;
  out = v->as_string();
  return true;
}

Json json_of_optimizer_options(const core::OptimizerOptions& opt) {
  Json ga = Json::object();
  ga.set("population", Json::integer((i64)opt.ga.population));
  ga.set("crossover_prob", Json::number(opt.ga.crossover_prob));
  ga.set("mutation_prob", Json::number(opt.ga.mutation_prob));
  ga.set("min_generations", Json::integer(opt.ga.min_generations));
  ga.set("max_generations", Json::integer(opt.ga.max_generations));
  ga.set("convergence_threshold", Json::number(opt.ga.convergence_threshold));
  ga.set("seed", Json::integer((i64)opt.ga.seed));
  ga.set("initial_seeds", json_of_ivecs(opt.ga.initial_seeds));

  Json estimator = Json::object();
  estimator.set("ci_width", Json::number(opt.objective.estimator.ci_width));
  estimator.set("confidence", Json::number(opt.objective.estimator.confidence));
  estimator.set("sample_count", Json::integer(opt.objective.estimator.sample_count));
  estimator.set("seed", Json::integer((i64)opt.objective.estimator.seed));
  estimator.set("exact_threshold", Json::integer(opt.objective.estimator.exact_threshold));

  // Probe caching and parallel evaluation are documented bit-identical to
  // their off forms, so they stay out of the fingerprint preimage; the
  // work caps below can change classification verdicts and stay in.
  Json analysis = Json::object();
  analysis.set("probe_work_cap", Json::integer(opt.objective.analysis.probe_work_cap));
  analysis.set("enumerate_cap", Json::integer(opt.objective.analysis.enumerate_cap));

  Json out = Json::object();
  out.set("ga", std::move(ga));
  out.set("estimator", std::move(estimator));
  out.set("analysis", std::move(analysis));
  out.set("check_legality", Json::boolean(opt.check_legality));
  out.set("seed_population", Json::boolean(opt.seed_population));
  out.set("extra_tile_seeds", json_of_ivecs(opt.extra_tile_seeds));
  out.set("max_intra_pad_elems", Json::integer(opt.max_intra_pad_elems));
  out.set("max_inter_pad_units", Json::integer(opt.max_inter_pad_units));
  return out;
}

bool optimizer_options_of_json(const Json& json, core::OptimizerOptions& out) {
  const Json* ga = json.find("ga");
  const Json* estimator = json.find("estimator");
  const Json* analysis = json.find("analysis");
  if (ga == nullptr || estimator == nullptr || analysis == nullptr) return false;

  i64 population = 0, min_gen = 0, max_gen = 0, ga_seed = 0;
  if (!get_int(*ga, "population", population) ||
      !get_int(*ga, "min_generations", min_gen) || !get_int(*ga, "max_generations", max_gen) ||
      !get_int(*ga, "seed", ga_seed))
    return false;
  core::OptimizerOptions opt;
  opt.ga.population = (std::size_t)population;
  opt.ga.min_generations = (int)min_gen;
  opt.ga.max_generations = (int)max_gen;
  opt.ga.seed = (std::uint64_t)ga_seed;
  if (!get_double(*ga, "crossover_prob", opt.ga.crossover_prob) ||
      !get_double(*ga, "mutation_prob", opt.ga.mutation_prob) ||
      !get_double(*ga, "convergence_threshold", opt.ga.convergence_threshold) ||
      !ivecs_of_json(ga->find("initial_seeds"), opt.ga.initial_seeds))
    return false;

  cme::EstimatorOptions& est = opt.objective.estimator;
  i64 est_seed = 0;
  if (!get_double(*estimator, "ci_width", est.ci_width) ||
      !get_double(*estimator, "confidence", est.confidence) ||
      !get_int(*estimator, "sample_count", est.sample_count) ||
      !get_int(*estimator, "seed", est_seed) ||
      !get_int(*estimator, "exact_threshold", est.exact_threshold))
    return false;
  est.seed = (std::uint64_t)est_seed;

  if (!get_int(*analysis, "probe_work_cap", opt.objective.analysis.probe_work_cap) ||
      !get_int(*analysis, "enumerate_cap", opt.objective.analysis.enumerate_cap))
    return false;

  if (!get_bool(json, "check_legality", opt.check_legality) ||
      !get_bool(json, "seed_population", opt.seed_population) ||
      !ivecs_of_json(json.find("extra_tile_seeds"), opt.extra_tile_seeds) ||
      !get_int(json, "max_intra_pad_elems", opt.max_intra_pad_elems) ||
      !get_int(json, "max_inter_pad_units", opt.max_inter_pad_units))
    return false;
  out = std::move(opt);
  return true;
}

}  // namespace cmetile::sweep

#pragma once
// Sweep orchestration (DESIGN.md §13): expand a declarative SweepSpec into
// experiment cells, satisfy what the persistent ResultCache already knows,
// and shard the remaining cold cells either across in-process parallel_for
// workers or across N spawned worker subprocesses speaking a line-
// delimited JSON job/result protocol over pipes.
//
// Guarantees:
//  - Determinism: results depend only on the spec. Serial, in-process
//    parallel, multi-process, and cache-replayed runs all produce
//    bit-identical rows (doubles round-trip exactly through the JSON
//    encoding; every row's seeds derive from its own cell).
//  - Resumability: every computed cell is checkpointed to the cache the
//    moment it finishes. Kill a sweep at any point and the rerun computes
//    only the missing cells.
//  - Robustness: a corrupt cache entry degrades to a recompute; a dead or
//    babbling worker degrades to computing its in-flight cell in-process.
//
// Multi-process mode re-executes the *current binary* with --sweep-worker
// (any main that calls maybe_run_worker first can serve as a worker: all
// benches via bench::BenchContext, the sweep_runner example, sweep_test).

#include <iosfwd>
#include <span>

#include "sweep/result_cache.hpp"

namespace cmetile::sweep {

/// Declarative cross-product sweep: kernels × geometries under one base
/// ExperimentOptions (per-row seeds are derived by the core drivers).
/// Tiling/Padding sweeps enumerate `caches`; Hierarchy sweeps enumerate
/// `hierarchies`. Cell order is geometry-major, matching the bench loops:
/// for each geometry, all entries in order.
struct SweepSpec {
  SweepKind kind = SweepKind::Tiling;
  std::vector<kernels::FigureEntry> entries;
  std::vector<cache::CacheConfig> caches;
  std::vector<cache::Hierarchy> hierarchies;
  core::ExperimentOptions options;

  std::vector<SweepCell> cells() const;
};

struct SchedulerOptions {
  std::string cache_dir = kDefaultCacheDir;
  bool use_cache = true;   ///< false: never read nor write the store
  /// Shard width. 1 = in-process (cells still run concurrently via
  /// parallel_for, matching the plural core drivers); >= 2 = spawn that
  /// many worker subprocesses and feed them cells dynamically.
  int jobs = 1;
  /// Executable to spawn as a worker; empty resolves the current binary
  /// via /proc/self/exe. It is invoked as `<exe> --sweep-worker` and must
  /// reach maybe_run_worker() before writing anything to stdout.
  std::string worker_command;
  std::ostream* log = nullptr;  ///< progress/diagnostics; nullptr = silent
};

struct SweepStats {
  std::size_t cells = 0;
  std::size_t cache_hits = 0;
  std::size_t computed = 0;
  /// Cells a worker subprocess failed on (crash, protocol garbage) that
  /// were then recomputed in-process. Included in `computed`.
  std::size_t worker_failures = 0;
};

struct SweepRun {
  std::vector<CellResult> results;  ///< cell order (SweepSpec::cells())
  SweepStats stats;
};

/// Run the sweep: cache, shard, checkpoint. Throws contract_error on an
/// unusable spec (no entries / no geometry) or an unusable cache dir.
SweepRun run_sweep(const SweepSpec& spec, const SchedulerOptions& options = {});

// -- Cache-aware counterparts of the core plural drivers -----------------
// Same rows as core::run_*_experiments (bit for bit), but routed through
// the scheduler: cached, resumable, and optionally multi-process. The
// span-of-geometries forms run ONE sweep over the whole cross-product
// (rows geometry-major: all entries for geometry 0, then geometry 1, ...)
// so a multi-geometry bench shares one worker pool and one load-balancing
// queue instead of respawning workers per geometry.
std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);
std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);

std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);
std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);

std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::Hierarchy> hierarchies,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);
std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::Hierarchy& hierarchy,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);

// -- Worker side ---------------------------------------------------------

/// The flag (as `--sweep-worker`) that switches a binary into worker mode.
inline constexpr const char* kWorkerFlag = "sweep-worker";

/// If argv contains --sweep-worker, serve the job/result protocol on
/// stdin/stdout until EOF and _never return_ (std::exit(0)). Call this
/// first in main(), before any other output.
void maybe_run_worker(int argc, const char* const* argv);

/// The protocol loop itself (exposed for tests): reads one JSON job per
/// line — {"id":N,"cell":{...}} — and answers one JSON result per line —
/// {"id":N,"ok":true,"result":{...}} or {"id":N,"ok":false,"error":"..."}.
/// Returns at EOF.
void run_worker_loop(std::istream& in, std::ostream& out);

}  // namespace cmetile::sweep

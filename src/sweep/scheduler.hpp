#pragma once
// Sweep orchestration (DESIGN.md §13): expand a declarative SweepSpec into
// experiment cells, satisfy what the persistent ResultCache already knows,
// and shard the remaining cold cells — in-process across parallel_for
// workers, across N spawned subprocesses over pipes, or across TCP
// workers on any machine that can reach the scheduler's --listen port
// (sweep/transport.hpp carries the connections, sweep/protocol.hpp the
// line protocol and handshake).
//
// Guarantees:
//  - Determinism: results depend only on the spec. Serial, in-process
//    parallel, multi-process, distributed-TCP, and cache-replayed runs
//    all produce bit-identical rows (doubles round-trip exactly through
//    the JSON encoding; every row's seeds derive from its own cell).
//  - Resumability: every computed cell is checkpointed to the cache the
//    moment it finishes. Kill a sweep at any point and the rerun computes
//    only the missing cells.
//  - Robustness: a corrupt cache entry degrades to a recompute; a dead,
//    hung (per-cell timeout, heartbeat-aware) or babbling worker degrades
//    to computing its in-flight cell in-process; a worker built from
//    different sources is refused at the handshake (code-version salt).
//
// Multi-process pipe mode re-executes the *current binary* with
// --sweep-worker (any main that calls maybe_run_worker first can serve as
// a worker: all benches via bench::BenchContext, the sweep_runner
// example, the sweep tests). TCP workers are the same binaries started
// with --connect=host:port, locally or on another machine.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>

#include "sweep/protocol.hpp"
#include "sweep/result_cache.hpp"

namespace cmetile::sweep {

/// Declarative cross-product sweep: kernels × geometries under one base
/// ExperimentOptions (per-row seeds are derived by the core drivers).
/// Tiling/Padding sweeps enumerate `caches`; Hierarchy sweeps enumerate
/// `hierarchies`. Cell order is geometry-major, matching the bench loops:
/// for each geometry, all entries in order.
struct SweepSpec {
  SweepKind kind = SweepKind::Tiling;
  std::vector<kernels::FigureEntry> entries;
  std::vector<cache::CacheConfig> caches;
  std::vector<cache::Hierarchy> hierarchies;
  core::ExperimentOptions options;

  std::vector<SweepCell> cells() const;
};

/// Scheduler progress snapshot, reported once after cache satisfaction
/// and once per finished cell. Callbacks are serialized (never invoked
/// concurrently), whichever execution mode produced the cell.
struct SweepProgress {
  std::size_t cells_total = 0;
  std::size_t done = 0;  ///< cache_hits + computed so far
  std::size_t cache_hits = 0;
  std::size_t computed_local = 0;   ///< in-process (including fallback)
  std::size_t computed_remote = 0;  ///< by a pipe or TCP worker
  /// Cells that died on a worker (crash, hang past the per-cell timeout,
  /// protocol garbage) and were/will be recomputed in-process.
  std::size_t failed_workers = 0;
  std::size_t workers_live = 0;  ///< connected workers right now
  double elapsed_seconds = 0.0;
  /// Projected time to finish: 0 when nothing remains (e.g. a fully
  /// warm-cache replay), extrapolated from the compute-phase rate once a
  /// cell has been computed; < 0 = unknown. Cache hits never enter the
  /// rate — a warm burst at the front of a mixed run says nothing about
  /// how fast the cold cells will compute.
  double eta_seconds = -1.0;
  /// EvalCache verdict-memo traffic summed over COMPUTED cells' rows
  /// (cache-hit rows are replays; their counters describe a past run).
  i64 eval_cache_lookups = 0;
  i64 eval_cache_hits = 0;
  /// Computed cells per second of compute-phase wall clock; 0 until the
  /// first computed cell. Divide by workers_live for a per-worker rate.
  double cells_per_second = 0.0;
};
using SweepProgressFn = std::function<void(const SweepProgress&)>;

struct SchedulerOptions {
  std::string cache_dir = kDefaultCacheDir;
  bool use_cache = true;   ///< false: never read nor write the store
  /// Shard width. 1 = in-process (cells still run concurrently via
  /// parallel_for, matching the plural core drivers); >= 2 = spawn that
  /// many worker subprocesses over pipes. Ignored when `listen` is set.
  int jobs = 1;
  /// Executable to spawn as a pipe worker; empty resolves the current
  /// binary via /proc/self/exe. It is invoked as `<exe> --sweep-worker`
  /// and must reach maybe_run_worker() before writing anything to stdout.
  std::string worker_command;
  std::ostream* log = nullptr;  ///< progress/diagnostics; nullptr = silent

  // -- Distributed (TCP) transport ---------------------------------------
  /// Non-empty = listen on "host:port" (port 0 = ephemeral) and dispatch
  /// cold cells to --connect workers instead of spawning subprocesses.
  std::string listen;
  /// TCP: how long open() waits for the first worker, and how long the
  /// run waits for a reconnect once every worker has died, before the
  /// in-process fallback takes over.
  double accept_wait_seconds = 30.0;
  /// Invoked with the bound "host:port" once the TCP listener is up
  /// (tests and drivers launch their --connect workers from here).
  std::function<void(const std::string&)> on_listen;

  // -- Liveness ----------------------------------------------------------
  /// Kill a worker whose in-flight cell produced no line (ack, heartbeat
  /// or result) for this long and recompute the cell in-process; also the
  /// handshake deadline for a connected-but-silent TCP worker. <= 0
  /// disables. Heartbeats (protocol.hpp) keep any healthy worker alive
  /// regardless of cell cost.
  double cell_timeout_seconds = 120.0;
  /// Heartbeat interval forwarded to spawned pipe workers (TCP workers
  /// set their own via --heartbeat).
  double worker_heartbeat_seconds = kDefaultHeartbeatSeconds;

  // -- Observability -----------------------------------------------------
  SweepProgressFn progress;
  /// Non-empty: enable the obs registry for this process, collect each
  /// worker's piggybacked snapshots (protocol v3), and write a fleet
  /// metrics JSON report to this path after the sweep — per-worker and
  /// aggregated (scheduler + workers) sections next to the sweep totals.
  std::string metrics_path;

  // -- Cache lifecycle ---------------------------------------------------
  /// Run ResultCache::gc after the sweep, protecting every cell this
  /// sweep read or wrote.
  bool cache_gc = false;
  std::uintmax_t cache_max_bytes = kDefaultCacheMaxBytes;
  double cache_max_age_seconds = 0.0;  ///< 0 = no age limit
};

struct SweepStats {
  std::size_t cells = 0;
  std::size_t cache_hits = 0;
  std::size_t computed = 0;
  /// Cells computed by a worker (pipe or TCP). Included in `computed`.
  std::size_t remote = 0;
  /// Cells a worker failed on (crash, timeout, protocol garbage) that
  /// were then recomputed in-process. Included in `computed`.
  std::size_t worker_failures = 0;
};

struct SweepRun {
  std::vector<CellResult> results;  ///< cell order (SweepSpec::cells())
  SweepStats stats;
};

/// Run the sweep: cache, shard, checkpoint. Throws contract_error on an
/// unusable spec (no entries / no geometry), an unusable cache dir, or an
/// unbindable --listen address.
SweepRun run_sweep(const SweepSpec& spec, const SchedulerOptions& options = {});

// -- Cache-aware counterparts of the core plural drivers -----------------
// Same rows as core::run_*_experiments (bit for bit), but routed through
// the scheduler: cached, resumable, and optionally multi-process. The
// span-of-geometries forms run ONE sweep over the whole cross-product
// (rows geometry-major: all entries for geometry 0, then geometry 1, ...)
// so a multi-geometry bench shares one worker pool and one load-balancing
// queue instead of respawning workers per geometry.
std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);
std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);

std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);
std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);

std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::Hierarchy> hierarchies,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);
std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::Hierarchy& hierarchy,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats = nullptr);

// -- Worker side ---------------------------------------------------------

/// The flag (as `--sweep-worker`) that switches a binary into pipe worker
/// mode, and the flag (as `--connect=host:port`) that turns it into a TCP
/// worker for a remote scheduler. `--heartbeat=SECONDS` tunes liveness
/// reporting for either (0 disables).
inline constexpr const char* kWorkerFlag = "sweep-worker";
inline constexpr const char* kConnectFlag = "connect";

/// If argv contains --sweep-worker or --connect=..., serve the job/result
/// protocol (stdin/stdout, or the TCP connection) and _never return_
/// (std::exit). Call this first in main(), before any other output.
void maybe_run_worker(int argc, const char* const* argv);

}  // namespace cmetile::sweep

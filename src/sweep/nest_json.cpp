#include "sweep/nest_json.hpp"

#include "support/contracts.hpp"

namespace cmetile::sweep {

namespace {

Json json_of_ivec(std::span<const i64> values) {
  Json array = Json::array();
  for (const i64 v : values) array.push(Json::integer(v));
  return array;
}

bool ivec_of_json(const Json* json, std::vector<i64>& out) {
  if (json == nullptr || json->kind() != Json::Kind::Array) return false;
  out.clear();
  for (const Json& item : json->items()) {
    if (item.kind() != Json::Kind::Int) return false;
    out.push_back(item.as_int());
  }
  return true;
}

bool get_int(const Json& obj, std::string_view key, i64& out) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->kind() != Json::Kind::Int) return false;
  out = v->as_int();
  return true;
}

bool get_string(const Json& obj, std::string_view key, std::string& out) {
  const Json* v = obj.find(key);
  if (v == nullptr || v->kind() != Json::Kind::String) return false;
  out = v->as_string();
  return true;
}

Json json_of_expr(const ir::LinExpr& expr) {
  Json obj = Json::object();
  obj.set("c", json_of_ivec(expr.coeffs()));
  obj.set("k", Json::integer(expr.constant_term()));
  return obj;
}

bool expr_of_json(const Json* json, ir::LinExpr& out) {
  if (json == nullptr || json->kind() != Json::Kind::Object) return false;
  std::vector<i64> coeffs;
  i64 constant = 0;
  if (!ivec_of_json(json->find("c"), coeffs) || !get_int(*json, "k", constant)) return false;
  out = ir::LinExpr(std::move(coeffs), constant);
  return true;
}

}  // namespace

Json json_of_nest(const ir::LoopNest& nest) {
  Json obj = Json::object();
  obj.set("name", Json::string(nest.name));

  Json loops = Json::array();
  for (const ir::Loop& loop : nest.loops) {
    Json l = Json::object();
    l.set("name", Json::string(loop.name));
    l.set("lo", Json::integer(loop.lower));
    l.set("hi", Json::integer(loop.upper));
    if (loop.has_affine_lower()) l.set("lob", json_of_expr(loop.lower_bound));
    if (loop.has_affine_upper()) l.set("hib", json_of_expr(loop.upper_bound));
    loops.push(std::move(l));
  }
  obj.set("loops", std::move(loops));

  Json arrays = Json::array();
  for (const ir::ArrayDecl& a : nest.arrays) {
    Json decl = Json::object();
    decl.set("name", Json::string(a.name));
    decl.set("extents", json_of_ivec(a.extents));
    decl.set("lower_bounds", json_of_ivec(a.lower_bounds));
    decl.set("element_size", Json::integer(a.element_size));
    arrays.push(std::move(decl));
  }
  obj.set("arrays", std::move(arrays));

  Json refs = Json::array();
  for (const ir::Reference& ref : nest.refs) {
    Json r = Json::object();
    r.set("array", Json::integer((i64)ref.array));
    Json subs = Json::array();
    for (const ir::LinExpr& s : ref.subscripts) subs.push(json_of_expr(s));
    r.set("subscripts", std::move(subs));
    r.set("write", Json::boolean(ref.kind == ir::AccessKind::Write));
    r.set("statement", Json::integer((i64)ref.statement));
    refs.push(std::move(r));
  }
  obj.set("refs", std::move(refs));

  if (!nest.statement_depths.empty()) {
    Json depths = Json::array();
    for (const std::size_t d : nest.statement_depths) depths.push(Json::integer((i64)d));
    obj.set("statement_depths", std::move(depths));
  }
  return obj;
}

std::optional<ir::LoopNest> nest_of_json(const Json& json) {
  if (json.kind() != Json::Kind::Object) return std::nullopt;
  ir::LoopNest nest;
  if (!get_string(json, "name", nest.name)) return std::nullopt;

  const Json* loops = json.find("loops");
  if (loops == nullptr || loops->kind() != Json::Kind::Array) return std::nullopt;
  for (const Json& l : loops->items()) {
    if (l.kind() != Json::Kind::Object) return std::nullopt;
    ir::Loop loop;
    if (!get_string(l, "name", loop.name) || !get_int(l, "lo", loop.lower) ||
        !get_int(l, "hi", loop.upper))
      return std::nullopt;
    if (l.find("lob") != nullptr && !expr_of_json(l.find("lob"), loop.lower_bound))
      return std::nullopt;
    if (l.find("hib") != nullptr && !expr_of_json(l.find("hib"), loop.upper_bound))
      return std::nullopt;
    nest.loops.push_back(std::move(loop));
  }

  const Json* arrays = json.find("arrays");
  if (arrays == nullptr || arrays->kind() != Json::Kind::Array) return std::nullopt;
  for (const Json& a : arrays->items()) {
    if (a.kind() != Json::Kind::Object) return std::nullopt;
    ir::ArrayDecl decl;
    if (!get_string(a, "name", decl.name) || !ivec_of_json(a.find("extents"), decl.extents) ||
        !ivec_of_json(a.find("lower_bounds"), decl.lower_bounds) ||
        !get_int(a, "element_size", decl.element_size))
      return std::nullopt;
    nest.arrays.push_back(std::move(decl));
  }

  const Json* refs = json.find("refs");
  if (refs == nullptr || refs->kind() != Json::Kind::Array) return std::nullopt;
  for (const Json& r : refs->items()) {
    if (r.kind() != Json::Kind::Object) return std::nullopt;
    ir::Reference ref;
    i64 array = 0, statement = 0;
    if (!get_int(r, "array", array) || !get_int(r, "statement", statement) || array < 0 ||
        statement < 0)
      return std::nullopt;
    ref.array = (std::size_t)array;
    ref.statement = (std::size_t)statement;
    const Json* write = r.find("write");
    if (write == nullptr || write->kind() != Json::Kind::Bool) return std::nullopt;
    ref.kind = write->as_bool() ? ir::AccessKind::Write : ir::AccessKind::Read;
    const Json* subs = r.find("subscripts");
    if (subs == nullptr || subs->kind() != Json::Kind::Array) return std::nullopt;
    for (const Json& s : subs->items()) {
      ir::LinExpr expr;
      if (!expr_of_json(&s, expr)) return std::nullopt;
      ref.subscripts.push_back(std::move(expr));
    }
    ref.body_position = nest.refs.size();
    nest.refs.push_back(std::move(ref));
  }

  if (const Json* depths = json.find("statement_depths"); depths != nullptr) {
    std::vector<i64> values;
    if (!ivec_of_json(depths, values)) return std::nullopt;
    for (const i64 d : values) {
      if (d < 1) return std::nullopt;
      nest.statement_depths.push_back((std::size_t)d);
    }
  }

  try {
    nest.validate();
  } catch (const contract_error&) {
    return std::nullopt;
  }
  return nest;
}

}  // namespace cmetile::sweep

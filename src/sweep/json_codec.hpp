#pragma once
// Shared JSON (de)serialization helpers for the sweep wire formats. The
// cell codec (sweep/cell.cpp) and the request codec (sweep/request_json)
// encode overlapping structures — integer/double vectors, OptimizerOptions
// — and both feed fingerprint preimages, so there must be exactly one
// spelling of each. Decoders are total: they return false/nullopt on any
// malformed input instead of throwing, because payloads arrive from
// sockets and cache files.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/optimize.hpp"
#include "sweep/json.hpp"

namespace cmetile::sweep {

Json json_of_ivec(std::span<const i64> values);
bool ivec_of_json(const Json* json, std::vector<i64>& out);

Json json_of_ivecs(const std::vector<std::vector<i64>>& vectors);
bool ivecs_of_json(const Json* json, std::vector<std::vector<i64>>& out);

Json json_of_dvec(const std::vector<double>& values);
bool dvec_of_json(const Json* json, std::vector<double>& out);

// Doubles that are semantically doubles (latencies, ratios) serialize as
// Kind::Double, but shortest-round-trip form drops the decimal point for
// integral values (80.0 dumps as "80", which re-parses as Kind::Int), so
// every double reader MUST accept Int — the value is still exact.
bool get_double(const Json& obj, std::string_view key, double& out);
bool get_int(const Json& obj, std::string_view key, i64& out);
bool get_bool(const Json& obj, std::string_view key, bool& out);
bool get_string(const Json& obj, std::string_view key, std::string& out);

/// Canonical encoding of core::OptimizerOptions — the fingerprint preimage
/// fragment shared by cell and request fingerprints. Key order is frozen
/// (ga, estimator, analysis, check_legality, seed_population,
/// extra_tile_seeds, max_intra_pad_elems, max_inter_pad_units): changing
/// it would silently invalidate every existing cache entry.
Json json_of_optimizer_options(const core::OptimizerOptions& options);
bool optimizer_options_of_json(const Json& json, core::OptimizerOptions& out);

}  // namespace cmetile::sweep

#pragma once
// The sweep worker wire protocol (DESIGN.md §13): line-delimited JSON
// messages between the scheduler and its workers, independent of the
// transport carrying the lines (stdin/stdout pipes or a TCP socket —
// see sweep/transport.hpp).
//
// Worker -> scheduler, in order per connection:
//
//   {"hello":true,"protocol":2,"salt":"<16-hex>"}   handshake, once
//   {"id":N,"ack":true}                             job N accepted
//   {"id":N,"heartbeat":true}                       job N still computing
//   {"id":N,"ok":true,"result":{...}}               job N finished
//   {"id":N,"ok":false,"error":"..."}               job N failed
//
// Scheduler -> worker: one job line per cell, {"id":N,"cell":{...}}.
//
// The handshake pins the protocol version AND the code-version salt
// (sweep/cell.hpp): a worker built from different sources would compute
// rows under different semantics, so the scheduler refuses it instead of
// silently mixing results — this is what makes cross-machine TCP workers
// safe. Acks and heartbeats exist for liveness only: any line refreshes
// the scheduler's per-worker deadline, so a long GA cell on a healthy
// worker survives the per-cell timeout while a hung or dead worker is
// detected and its cell recomputed in-process.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "sweep/cell.hpp"

namespace cmetile::sweep {

/// Bump on any wire-format change; mismatched workers are refused at the
/// handshake (independently of kCodeVersionSalt, which tracks result
/// semantics rather than message shape).
inline constexpr i64 kProtocolVersion = 2;

/// Default worker heartbeat interval while a cell computes. Far below the
/// scheduler's default per-cell timeout so a healthy-but-slow worker is
/// never mistaken for a dead one.
inline constexpr double kDefaultHeartbeatSeconds = 5.0;

// -- Message builders (each returns one line WITHOUT the trailing \n) ----
std::string hello_line(std::uint64_t salt = kCodeVersionSalt);
std::string job_line(i64 id, const SweepCell& cell);
std::string ack_line(i64 id);
std::string heartbeat_line(i64 id);
std::string result_line(i64 id, const CellResult& result);
std::string error_line(i64 id, const std::string& error);

/// One parsed worker -> scheduler line. Anything that is not a well-formed
/// hello / ack / heartbeat / result parses as Malformed — the scheduler
/// treats that as a babbling worker and drops the connection.
struct WorkerMessage {
  enum class Kind { Hello, Ack, Heartbeat, Result, Malformed };
  Kind kind = Kind::Malformed;
  i64 id = -1;                       ///< job id (Ack/Heartbeat/Result)
  bool ok = false;                   ///< Result: worker-side success
  std::optional<CellResult> result;  ///< Result with ok == true
  std::string error;                 ///< Result with ok == false
  i64 protocol = 0;                  ///< Hello
  std::uint64_t salt = 0;            ///< Hello
};

WorkerMessage parse_worker_message(std::string_view line);

/// True when the hello matches this build (protocol version and code-
/// version salt); `detail` receives a loggable mismatch description.
bool handshake_accepts(const WorkerMessage& hello, std::string* detail = nullptr);

// -- The worker protocol loop --------------------------------------------

struct WorkerLoopOptions {
  /// Heartbeat interval while a cell computes; <= 0 disables heartbeats
  /// (the scheduler then sees no liveness signal between ack and result).
  double heartbeat_seconds = kDefaultHeartbeatSeconds;
  bool send_hello = true;
  std::uint64_t salt = kCodeVersionSalt;  ///< tests inject mismatches
};

/// Serve the protocol on a stream pair until EOF: hello first, then one
/// (ack, heartbeat*, result) sequence per job line. All writes are
/// mutex-serialized (the heartbeat runs on its own thread) and flushed
/// per line. Returns at EOF; used directly by --sweep-worker (stdin/
/// stdout) and by the TCP worker over a socket-backed stream.
void run_worker_loop(std::istream& in, std::ostream& out, const WorkerLoopOptions& options = {});

}  // namespace cmetile::sweep

#pragma once
// The sweep worker wire protocol (DESIGN.md §13): line-delimited JSON
// messages between the scheduler and its workers, independent of the
// transport carrying the lines (stdin/stdout pipes or a TCP socket —
// see sweep/transport.hpp).
//
// Worker -> scheduler, in order per connection (protocol v4):
//
//   {"hello":true,"protocol":4,"salt":"<16-hex>","pid":P}   handshake, once
//   {"id":N,"ack":true}                             job N accepted
//   {"id":N,"heartbeat":true,"stats":{...}}         job N still computing
//   {"id":N,"ok":true,"result":{...},"stats":{...}} cell job N finished
//   {"id":N,"ok":true,"response":{...},"stats":{...}} request job N finished
//   {"id":N,"ok":false,"error":"..."}               job N failed
//
// Scheduler -> worker: one job line per unit of work — either a sweep
// cell {"id":N,"cell":{...}} or (v4) a unified optimization request
// {"id":N,"request":{...}} (sweep/request_json.hpp); the payload member
// names the codec. cmetile-serve clients speak the same framing in the
// other role: a client handshake is a hello with "client":true, after
// which the client SENDS job lines and receives response lines.
//
// The handshake pins the protocol version AND the code-version salt
// (sweep/cell.hpp): a worker built from different sources would compute
// rows under different semantics, so the scheduler refuses it instead of
// silently mixing results — this is what makes cross-machine TCP workers
// safe. Acks and heartbeats exist for liveness only: any line refreshes
// the scheduler's per-worker deadline, so a long GA cell on a healthy
// worker survives the per-cell timeout while a hung or dead worker is
// detected and its cell recomputed in-process.
//
// v3 (DESIGN.md §17) piggybacks telemetry on the existing lines rather
// than adding message kinds: `stats` is a CUMULATIVE obs::MetricsSnapshot
// for the worker process (sweep/metrics_json.hpp), so the scheduler keeps
// only the latest snapshot per worker — no delta bookkeeping, and a lost
// heartbeat loses nothing. The hello's `pid` lets the scheduler's metrics
// report name workers by process, matching the pids in their --trace
// files. v2 peers are refused at the handshake by the version check — a
// v2 worker never reaches the point of omitting stats silently.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "sweep/cell.hpp"
#include "sweep/request_json.hpp"

namespace cmetile::sweep {

/// Bump on any wire-format change; mismatched workers are refused at the
/// handshake (independently of kCodeVersionSalt, which tracks result
/// semantics rather than message shape). v4 added request jobs, response
/// results, and the client-role hello.
inline constexpr i64 kProtocolVersion = 4;

/// Default worker heartbeat interval while a cell computes. Far below the
/// scheduler's default per-cell timeout so a healthy-but-slow worker is
/// never mistaken for a dead one.
inline constexpr double kDefaultHeartbeatSeconds = 5.0;

// -- Message builders (each returns one line WITHOUT the trailing \n) ----
/// `pid` < 0 stamps the calling process's own pid.
std::string hello_line(std::uint64_t salt = kCodeVersionSalt, i64 pid = -1);
/// A hello carrying "client":true — a cmetile-serve client announcing it
/// will SEND job lines rather than serve them. Same version/salt pinning.
std::string client_hello_line(std::uint64_t salt = kCodeVersionSalt, i64 pid = -1);
std::string job_line(i64 id, const SweepCell& cell);
/// v4 request job: {"id":N,"request":{...}} (unified optimize API).
std::string job_line(i64 id, const core::OptimizeRequest& request);
std::string ack_line(i64 id);
/// `stats` (optional) piggybacks a cumulative metrics snapshot.
std::string heartbeat_line(i64 id, const obs::MetricsSnapshot* stats = nullptr);
std::string result_line(i64 id, const CellResult& result,
                        const obs::MetricsSnapshot* stats = nullptr);
/// v4 result of a request job: {"id":N,"ok":true,"response":{...}}.
std::string response_line(i64 id, const core::OptimizeResponse& response,
                          const obs::MetricsSnapshot* stats = nullptr);
std::string error_line(i64 id, const std::string& error);

/// One parsed worker -> scheduler line. Anything that is not a well-formed
/// hello / ack / heartbeat / result parses as Malformed — the scheduler
/// treats that as a babbling worker and drops the connection.
struct WorkerMessage {
  enum class Kind { Hello, Ack, Heartbeat, Result, Malformed };
  Kind kind = Kind::Malformed;
  i64 id = -1;                       ///< job id (Ack/Heartbeat/Result)
  bool ok = false;                   ///< Result: worker-side success
  std::optional<CellResult> result;  ///< Result with ok == true ("result" payload)
  /// Result with ok == true and a "response" payload (v4 request job).
  std::optional<core::OptimizeResponse> response;
  std::string error;                 ///< Result with ok == false
  i64 protocol = 0;                  ///< Hello
  std::uint64_t salt = 0;            ///< Hello
  i64 pid = -1;                      ///< Hello (v3; -1 when absent)
  bool client = false;               ///< Hello (v4): peer is a serve client
  /// Heartbeat/Result (v3): cumulative worker metrics, when piggybacked.
  std::optional<obs::MetricsSnapshot> stats;
};

WorkerMessage parse_worker_message(std::string_view line);

/// True when the hello matches this build (protocol version and code-
/// version salt); `detail` receives a loggable mismatch description.
bool handshake_accepts(const WorkerMessage& hello, std::string* detail = nullptr);

// -- The worker protocol loop --------------------------------------------

struct WorkerLoopOptions {
  /// Heartbeat interval while a cell computes; <= 0 disables heartbeats
  /// (the scheduler then sees no liveness signal between ack and result).
  double heartbeat_seconds = kDefaultHeartbeatSeconds;
  bool send_hello = true;
  std::uint64_t salt = kCodeVersionSalt;  ///< tests inject mismatches
  /// Enable the obs registry for this process and piggyback cumulative
  /// snapshots on heartbeat and result lines (protocol v3 stats).
  bool collect_stats = true;
};

/// Serve the protocol on a stream pair until EOF: hello first, then one
/// (ack, heartbeat*, result) sequence per job line. All writes are
/// mutex-serialized (the heartbeat runs on its own thread) and flushed
/// per line. Returns at EOF; used directly by --sweep-worker (stdin/
/// stdout) and by the TCP worker over a socket-backed stream.
void run_worker_loop(std::istream& in, std::ostream& out, const WorkerLoopOptions& options = {});

}  // namespace cmetile::sweep

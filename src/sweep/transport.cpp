#include "sweep/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ostream>

#include "support/cli.hpp"  // split_host_port (shared with flag validation)
#include "support/contracts.hpp"
#include "sweep/protocol.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <istream>
#include <streambuf>
#include <thread>

extern char** environ;
#endif

namespace cmetile::sweep {

#ifdef __unix__

namespace {

void transport_log(std::ostream* log, const std::string& message) {
  if (log != nullptr) *log << message << "\n";
}

bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::write(fd, bytes.data(), bytes.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix((std::size_t)n);
  }
  return true;
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

// -- Pipe transport -------------------------------------------------------

class PipeChannel final : public Channel {
 public:
  PipeChannel(pid_t pid, int job_fd, int result_fd)
      : pid_(pid), job_fd_(job_fd), result_fd_(result_fd) {}

  ~PipeChannel() override { shutdown(); }

  bool send_line(std::string_view line) override {
    if (job_fd_ < 0) return false;
    return write_all(job_fd_, std::string(line) + "\n");
  }

  void finish_input() override {
    if (job_fd_ >= 0) {
      ::close(job_fd_);
      job_fd_ = -1;
    }
  }

  int read_fd() const override { return result_fd_; }

  long read_some(char* buffer, std::size_t size) override {
    if (result_fd_ < 0) return 0;
    const ssize_t n = ::read(result_fd_, buffer, size);
    if (n < 0) return errno == EINTR ? -1 : 0;
    return (long)n;
  }

  void shutdown() override {
    finish_input();
    if (result_fd_ >= 0) {
      ::close(result_fd_);
      result_fd_ = -1;
    }
    if (pid_ > 0) {
      // The worker's results are unusable once the channel closes, and a
      // discarded-for-cause worker may be hung mid-cell: kill rather than
      // wait (a normally exiting worker is already gone; the extra signal
      // is a no-op on its zombie). The negative pid targets the worker's
      // whole process group (see the setpgid at spawn) so descendants
      // cannot linger holding the inherited pipe ends.
      ::kill(-pid_, SIGKILL);
      ::kill(pid_, SIGKILL);  // belt and braces if setpgid lost a race
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
  }

  std::string describe() const override { return "pid " + std::to_string(pid_); }
  bool trusted() const override { return true; }

 private:
  pid_t pid_ = -1;
  int job_fd_ = -1;
  int result_fd_ = -1;
};

class PipeTransport final : public Transport {
 public:
  explicit PipeTransport(PipeTransportOptions options) : options_(std::move(options)) {}

  const char* name() const override { return "pipe"; }

  std::vector<std::unique_ptr<Channel>> open(int want) override {
    std::vector<std::unique_ptr<Channel>> channels;
    if (want <= 0) return channels;

    // argv/envp prepared before any fork — between fork and exec only
    // async-signal-safe calls are allowed (the parent may be running
    // OpenMP threads). Workers split the machine's threads so N workers
    // × OpenMP don't oversubscribe N-fold.
    const std::string flag = "--sweep-worker";
    const std::string heartbeat =
        "--heartbeat=" + std::to_string(options_.heartbeat_seconds);
    std::vector<char*> argv = {const_cast<char*>(options_.executable.c_str()),
                               const_cast<char*>(flag.c_str()),
                               const_cast<char*>(heartbeat.c_str()), nullptr};
    const int threads = std::max(1, options_.total_threads / std::max(1, want));
    std::vector<std::string> env_storage;
    for (char** e = environ; *e != nullptr; ++e) {
      if (std::strncmp(*e, "OMP_NUM_THREADS=", 16) != 0) env_storage.emplace_back(*e);
    }
    env_storage.push_back("OMP_NUM_THREADS=" + std::to_string(threads));
    std::vector<char*> envp;
    envp.reserve(env_storage.size() + 1);
    for (std::string& e : env_storage) envp.push_back(e.data());
    envp.push_back(nullptr);

    for (int w = 0; w < want; ++w) {
      auto channel = spawn(argv.data(), envp.data());
      if (channel) channels.push_back(std::move(channel));
    }
    return channels;
  }

 private:
  std::unique_ptr<Channel> spawn(char* const* argv, char* const* envp) {
    int job_pipe[2] = {-1, -1};
    int result_pipe[2] = {-1, -1};
    if (::pipe(job_pipe) != 0) return nullptr;
    if (::pipe(result_pipe) != 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      return nullptr;
    }
    // Parent-side ends must not leak into later-spawned siblings (a
    // leaked job write-end would keep a worker's stdin open forever).
    set_cloexec(job_pipe[1]);
    set_cloexec(result_pipe[0]);

    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const int fd : {job_pipe[0], job_pipe[1], result_pipe[0], result_pipe[1]})
        ::close(fd);
      return nullptr;
    }
    if (pid == 0) {
      // Own process group, so shutdown's kill(-pid) reaps the worker AND
      // anything it spawned (a --worker-command wrapper's children would
      // otherwise outlive the timeout holding the inherited pipe ends).
      ::setpgid(0, 0);
      // The parent-side ends are CLOEXEC and vanish at exec; only the two
      // child ends need moving. Guard the close for the launched-with-
      // closed-stdio case where pipe() handed us fd 0 or 1 directly.
      if (job_pipe[0] != STDIN_FILENO) {
        ::dup2(job_pipe[0], STDIN_FILENO);
        ::close(job_pipe[0]);
      }
      if (result_pipe[1] != STDOUT_FILENO) {
        ::dup2(result_pipe[1], STDOUT_FILENO);
        ::close(result_pipe[1]);
      }
      ::execve(argv[0], argv, envp);
      _exit(127);  // exec failed; the parent sees EOF and falls back
    }
    ::close(job_pipe[0]);
    ::close(result_pipe[1]);
    return std::make_unique<PipeChannel>(pid, job_pipe[1], result_pipe[0]);
  }

  PipeTransportOptions options_;
};

// -- TCP transport --------------------------------------------------------

class TcpChannel final : public Channel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    char host[NI_MAXHOST], port[NI_MAXSERV];
    if (::getpeername(fd_, (sockaddr*)&addr, &len) == 0 &&
        ::getnameinfo((sockaddr*)&addr, len, host, sizeof host, port, sizeof port,
                      NI_NUMERICHOST | NI_NUMERICSERV) == 0) {
      peer_ = std::string(host) + ":" + port;
    } else {
      peer_ = "tcp fd " + std::to_string(fd_);
    }
  }

  ~TcpChannel() override { shutdown(); }

  bool send_line(std::string_view line) override {
    if (fd_ < 0) return false;
    return write_all(fd_, std::string(line) + "\n");
  }

  void finish_input() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);  // worker's read loop sees EOF
  }

  int read_fd() const override { return fd_; }

  long read_some(char* buffer, std::size_t size) override {
    if (fd_ < 0) return 0;
    const ssize_t n = ::read(fd_, buffer, size);
    if (n < 0) return errno == EINTR ? -1 : 0;
    return (long)n;
  }

  void shutdown() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::string describe() const override { return peer_; }
  bool trusted() const override { return false; }

 private:
  int fd_ = -1;
  std::string peer_;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options) : options_(std::move(options)) {
    std::string host, port;
    expects(split_host_port(options_.listen, host, port),
            "sweep: --listen expects host:port, got \"" + options_.listen + "\"");

    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* found = nullptr;
    expects(::getaddrinfo(host.c_str(), port.c_str(), &hints, &found) == 0 && found != nullptr,
            "sweep: cannot resolve listen address \"" + options_.listen + "\"");
    for (addrinfo* ai = found; ai != nullptr && listen_fd_ < 0; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0) {
        set_cloexec(fd);
        // Nonblocking accepts: a client that resets between poll() and
        // accept() (the documented race) must yield EAGAIN, not block
        // the whole scheduler event loop. Accepted sockets do not
        // inherit the flag, so channels stay blocking as intended.
        const int fl = ::fcntl(fd, F_GETFL);
        if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
        listen_fd_ = fd;
      } else {
        ::close(fd);
      }
    }
    ::freeaddrinfo(found);
    expects(listen_fd_ >= 0, "sweep: cannot bind/listen on \"" + options_.listen + "\"");

    // Resolve the actual port (the listen spec may have asked for 0).
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    char bound_host[NI_MAXHOST], bound_port[NI_MAXSERV];
    if (::getsockname(listen_fd_, (sockaddr*)&bound, &len) == 0 &&
        ::getnameinfo((sockaddr*)&bound, len, bound_host, sizeof bound_host, bound_port,
                      sizeof bound_port, NI_NUMERICHOST | NI_NUMERICSERV) == 0) {
      address_ = host + ":" + bound_port;  // keep the caller's host (0.0.0.0 etc.)
    } else {
      address_ = options_.listen;
    }
  }

  ~TcpTransport() override {
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  const char* name() const override { return "tcp"; }

  std::vector<std::unique_ptr<Channel>> open(int want) override {
    transport_log(options_.log, "[sweep] tcp: listening on " + address_);
    if (options_.on_listen) options_.on_listen(address_);

    std::vector<std::unique_ptr<Channel>> channels;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(options_.accept_wait_seconds);
    // Wait for the first worker up to the accept window, then grab
    // whatever else is already queued on the listener; late joiners are
    // absorbed mid-run through accept_fd().
    while ((int)channels.size() < want) {
      const auto now = std::chrono::steady_clock::now();
      int timeout_ms = 0;
      if (channels.empty()) {
        if (now >= deadline) break;
        timeout_ms = (int)std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
                         .count() +
                     1;
      }
      pollfd fd = {listen_fd_, POLLIN, 0};
      const int ready = ::poll(&fd, 1, timeout_ms);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) break;
      auto channel = accept();
      if (channel) {
        transport_log(options_.log, "[sweep] tcp: worker connected from " + channel->describe());
        channels.push_back(std::move(channel));
      }
    }
    return channels;
  }

  int accept_fd() const override { return listen_fd_; }

  std::unique_ptr<Channel> accept() override {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        set_cloexec(fd);
        return std::make_unique<TcpChannel>(fd);
      }
      if (errno == EINTR) continue;
      return nullptr;
    }
  }

 private:
  TcpTransportOptions options_;
  int listen_fd_ = -1;
  std::string address_;
};

// -- TCP worker side ------------------------------------------------------

/// Minimal bidirectional streambuf over one socket fd, so the TCP worker
/// reuses the exact run_worker_loop the pipe worker runs on stdin/stdout.
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) { setp(out_, out_ + sizeof out_ - 1); }

 protected:
  int_type underflow() override {
    while (true) {
      const ssize_t n = ::read(fd_, in_, sizeof in_);
      if (n > 0) {
        setg(in_, in_, in_ + n);
        return traits_type::to_int_type(*gptr());
      }
      if (n < 0 && errno == EINTR) continue;
      return traits_type::eof();
    }
  }

  int_type overflow(int_type c) override {
    if (!traits_type::eq_int_type(c, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(c);
      pbump(1);
    }
    return sync() == 0 ? traits_type::not_eof(c) : traits_type::eof();
  }

  int sync() override {
    const std::size_t pending = (std::size_t)(pptr() - pbase());
    if (pending > 0 && !write_all(fd_, std::string_view(pbase(), pending))) return -1;
    setp(out_, out_ + sizeof out_ - 1);
    return 0;
  }

 private:
  int fd_;
  char in_[4096];
  char out_[4096];
};

int connect_with_retry(const std::string& host, const std::string& port, double wait_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(wait_seconds);
  while (true) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &found) == 0) {
      for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
          ::freeaddrinfo(found);
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          return fd;
        }
        ::close(fd);
      }
      ::freeaddrinfo(found);
    }
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    // The scheduler may simply not be listening yet (a worker fleet is
    // often launched before or alongside its scheduler) — retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
}

}  // namespace

std::unique_ptr<Transport> make_pipe_transport(PipeTransportOptions options) {
  if (options.executable.empty()) return nullptr;
  return std::make_unique<PipeTransport>(std::move(options));
}

std::unique_ptr<Transport> make_tcp_transport(TcpTransportOptions options) {
  return std::make_unique<TcpTransport>(std::move(options));
}

bool run_tcp_worker(const std::string& connect_spec, double heartbeat_seconds,
                    double connect_wait_seconds) {
  std::string host, port;
  if (!split_host_port(connect_spec, host, port)) return false;

  // A scheduler that times this worker out closes the socket mid-write;
  // that must surface as a stream error, not a fatal SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  const int fd = connect_with_retry(host, port, connect_wait_seconds);
  if (fd < 0) return false;

  FdStreamBuf buffer(fd);
  std::istream in(&buffer);
  std::ostream out(&buffer);
  WorkerLoopOptions options;
  options.heartbeat_seconds = heartbeat_seconds;
  run_worker_loop(in, out, options);
  // Clean end = the scheduler drained its queue and half-closed; a write
  // failure mid-job leaves the stream bad.
  const bool clean = !out.bad();
  ::close(fd);
  return clean;
}

std::unique_ptr<Channel> connect_channel(const std::string& connect_spec, double wait_seconds) {
  std::string host, port;
  if (!split_host_port(connect_spec, host, port)) return nullptr;
  const int fd = connect_with_retry(host, port, wait_seconds);
  if (fd < 0) return nullptr;
  set_cloexec(fd);
  return std::make_unique<TcpChannel>(fd);
}

#else  // !__unix__

std::unique_ptr<Transport> make_pipe_transport(PipeTransportOptions) { return nullptr; }
std::unique_ptr<Transport> make_tcp_transport(TcpTransportOptions) { return nullptr; }
bool run_tcp_worker(const std::string&, double, double) { return false; }
std::unique_ptr<Channel> connect_channel(const std::string&, double) { return nullptr; }

#endif  // __unix__

}  // namespace cmetile::sweep

#include "sweep/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <optional>
#include <string_view>

#include "support/contracts.hpp"
#include "support/parallel.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
extern char** environ;
#endif

namespace cmetile::sweep {

namespace {

std::string self_executable_path() {
#ifdef __linux__
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
#endif
  return {};
}

void log_line(const SchedulerOptions& options, const std::string& message) {
  if (options.log != nullptr) *options.log << message << "\n";
}

/// Compute `indices` in-process (parallel across cells like the core
/// plural drivers) and checkpoint each cell the moment it completes.
/// Exceptions cannot escape an OpenMP structured block (std::terminate),
/// so per-cell errors are captured and the first one rethrown afterwards
/// — run_sweep's throw-on-unusable-spec contract holds for errors only
/// detectable per cell (e.g. an unknown kernel name).
void compute_in_process(const std::vector<SweepCell>& cells,
                        const std::vector<Fingerprint>& fingerprints,
                        const std::vector<std::size_t>& indices, const ResultCache* cache,
                        std::vector<CellResult>& results) {
  std::vector<std::string> errors(indices.size());
  std::atomic<bool> any_error{false};
  parallel_for(indices.size(), [&](std::size_t m) {
    const std::size_t idx = indices[m];
    try {
      results[idx] = run_cell(cells[idx]);
      if (cache != nullptr) cache->store(fingerprints[idx], results[idx]);
    } catch (const std::exception& e) {
      errors[m] = e.what();
      any_error.store(true, std::memory_order_release);
    } catch (...) {
      errors[m] = "unknown error";
      any_error.store(true, std::memory_order_release);
    }
  });
  if (!any_error.load(std::memory_order_acquire)) return;
  for (std::size_t m = 0; m < indices.size(); ++m) {
    if (!errors[m].empty())
      throw contract_error("sweep: cell " + cells[indices[m]].entry.label() + " failed: " +
                           errors[m]);
  }
}

#ifdef __unix__

struct Worker {
  pid_t pid = -1;
  int job_fd = -1;     ///< parent writes job lines (worker stdin)
  int result_fd = -1;  ///< parent reads result lines (worker stdout)
  std::string buffer;
  long long job = -1;  ///< in-flight cell index, -1 when idle

  bool alive() const { return result_fd >= 0; }
};

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Fork+exec one worker with stdin/stdout on fresh pipes. argv/envp are
/// prepared by the caller — between fork and exec only async-signal-safe
/// calls are allowed (the parent may be running OpenMP threads).
bool spawn_worker(const char* exe, char* const* argv, char* const* envp, Worker& worker) {
  int job_pipe[2] = {-1, -1};
  int result_pipe[2] = {-1, -1};
  if (::pipe(job_pipe) != 0) return false;
  if (::pipe(result_pipe) != 0) {
    ::close(job_pipe[0]);
    ::close(job_pipe[1]);
    return false;
  }
  // Parent-side ends must not leak into later-spawned siblings (a leaked
  // job write-end would keep a worker's stdin open forever).
  set_cloexec(job_pipe[1]);
  set_cloexec(result_pipe[0]);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {job_pipe[0], job_pipe[1], result_pipe[0], result_pipe[1]}) ::close(fd);
    return false;
  }
  if (pid == 0) {
    // The parent-side ends are CLOEXEC and vanish at exec; only the two
    // child ends need moving. Guard the close for the launched-with-
    // closed-stdio case where pipe() handed us fd 0 or 1 directly.
    if (job_pipe[0] != STDIN_FILENO) {
      ::dup2(job_pipe[0], STDIN_FILENO);
      ::close(job_pipe[0]);
    }
    if (result_pipe[1] != STDOUT_FILENO) {
      ::dup2(result_pipe[1], STDOUT_FILENO);
      ::close(result_pipe[1]);
    }
    ::execve(exe, argv, envp);
    _exit(127);  // exec failed; the parent sees EOF and falls back
  }
  ::close(job_pipe[0]);
  ::close(result_pipe[1]);
  worker.pid = pid;
  worker.job_fd = job_pipe[1];
  worker.result_fd = result_pipe[0];
  return true;
}

bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::write(fd, bytes.data(), bytes.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix((std::size_t)n);
  }
  return true;
}

void reap_worker(Worker& worker) {
  if (worker.job_fd >= 0) ::close(worker.job_fd);
  if (worker.result_fd >= 0) ::close(worker.result_fd);
  worker.job_fd = worker.result_fd = -1;
  if (worker.pid > 0) {
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.pid = -1;
  }
}

/// Restore-on-destruction SIGPIPE ignore: a worker that died mid-job must
/// surface as a failed write, not kill the scheduler.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_ {};
};

/// Multi-process sharding: feed cells to workers one at a time (dynamic
/// load balancing — GA cells vary widely in cost), checkpoint each result
/// as it arrives. Any worker failure routes its cell into `failed` for
/// the in-process fallback. Returns false only when no worker could be
/// spawned at all.
bool run_multiprocess(const std::vector<SweepCell>& cells,
                      const std::vector<Fingerprint>& fingerprints,
                      const std::vector<std::size_t>& misses, const ResultCache* cache,
                      const SchedulerOptions& options, std::vector<CellResult>& results,
                      SweepStats& stats, std::vector<std::size_t>& failed) {
  const std::string exe =
      options.worker_command.empty() ? self_executable_path() : options.worker_command;
  if (exe.empty()) return false;

  const int worker_count = (int)std::min((std::size_t)options.jobs, misses.size());

  // argv/envp prepared before any fork. Workers split the machine's
  // threads so N workers × OpenMP don't oversubscribe N-fold.
  const std::string flag = std::string("--") + kWorkerFlag;
  std::vector<char*> argv = {const_cast<char*>(exe.c_str()), const_cast<char*>(flag.c_str()),
                             nullptr};
  const int threads_per_worker = std::max(1, parallel_threads() / std::max(1, worker_count));
  std::vector<std::string> env_storage;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "OMP_NUM_THREADS=", 16) != 0) env_storage.emplace_back(*e);
  }
  env_storage.push_back("OMP_NUM_THREADS=" + std::to_string(threads_per_worker));
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (std::string& e : env_storage) envp.push_back(e.data());
  envp.push_back(nullptr);

  ScopedSigpipeIgnore sigpipe_guard;

  std::vector<Worker> workers((std::size_t)worker_count);
  int spawned = 0;
  for (Worker& worker : workers) {
    if (spawn_worker(exe.c_str(), argv.data(), envp.data(), worker)) ++spawned;
  }
  if (spawned == 0) return false;
  log_line(options, "[sweep] " + std::to_string(spawned) + " worker processes (" +
                        std::to_string(threads_per_worker) + " threads each)");

  std::size_t next = 0;  // next unassigned entry of `misses`

  auto kill_worker = [&](Worker& worker) {
    if (worker.job >= 0) {
      failed.push_back((std::size_t)worker.job);
      worker.job = -1;
    }
    reap_worker(worker);
  };

  // Hand the next queued cell to `worker`; closes its stdin when the
  // queue is drained (the worker then exits on EOF).
  auto assign = [&](Worker& worker) {
    while (next < misses.size()) {
      const std::size_t idx = misses[next];
      Json job = Json::object();
      job.set("id", Json::integer((i64)idx));
      job.set("cell", json_of_cell(cells[idx]));
      if (write_all(worker.job_fd, job.dump() + "\n")) {
        ++next;
        worker.job = (long long)idx;
        return;
      }
      // Broken pipe before the job was accepted: the cell is NOT lost —
      // leave it queued for a healthier worker; this worker is done.
      kill_worker(worker);
      return;
    }
    if (worker.job_fd >= 0) {
      ::close(worker.job_fd);
      worker.job_fd = -1;
    }
  };

  // One result line: validate, record, checkpoint, hand out the next job.
  auto handle_line = [&](Worker& worker, std::string_view line) {
    if (line.empty()) return;
    if (worker.job < 0) {
      // A line with no job in flight (e.g. an idle worker babbling
      // {"id":-1,...}) must not be matched against cells[] — drop the
      // worker, nothing is lost.
      log_line(options, "[sweep] unexpected output from an idle worker");
      kill_worker(worker);
      return;
    }
    const std::optional<Json> response = Json::parse(std::string(line));
    bool ok = false;
    std::optional<CellResult> result;
    if (response) {
      const Json* id = response->find("id");
      const Json* ok_field = response->find("ok");
      const Json* payload = response->find("result");
      if (id != nullptr && id->as_int(-1) == worker.job && ok_field != nullptr &&
          ok_field->as_bool(false) && payload != nullptr) {
        result = result_of_json(*payload);
        ok = result.has_value() && result->kind == cells[(std::size_t)worker.job].kind;
      }
    }
    if (!ok) {
      // Wrong id, failed cell, or protocol garbage: stop trusting this
      // worker entirely. Surface the worker's own diagnostic if it sent
      // one — it is usually the only explanation of the failure.
      std::string detail;
      if (response) {
        if (const Json* error = response->find("error"); error != nullptr)
          detail = error->as_string();
      }
      log_line(options, "[sweep] worker failed on cell " + std::to_string(worker.job) +
                            (detail.empty() ? "" : " (" + detail + ")"));
      kill_worker(worker);
      return;
    }
    const std::size_t idx = (std::size_t)worker.job;
    results[idx] = std::move(*result);
    if (cache != nullptr) cache->store(fingerprints[idx], results[idx]);
    ++stats.computed;
    worker.job = -1;
    assign(worker);
  };

  for (Worker& worker : workers)
    if (worker.alive()) assign(worker);

  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_owner;
  while (true) {
    fds.clear();
    fd_owner.clear();
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].alive()) continue;
      fds.push_back({workers[w].result_fd, POLLIN, 0});
      fd_owner.push_back(w);
    }
    if (fds.empty()) break;

    const int ready = ::poll(fds.data(), (nfds_t)fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      for (Worker& worker : workers)
        if (worker.alive()) kill_worker(worker);
      break;
    }
    for (std::size_t f = 0; f < fds.size(); ++f) {
      if (fds[f].revents == 0) continue;
      Worker& worker = workers[fd_owner[f]];
      char chunk[4096];
      const ssize_t n = ::read(worker.result_fd, chunk, sizeof chunk);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        // EOF with a job in flight = the worker died mid-cell.
        if (worker.job >= 0)
          log_line(options, "[sweep] worker exited on cell " + std::to_string(worker.job));
        kill_worker(worker);
        continue;
      }
      worker.buffer.append(chunk, (std::size_t)n);
      std::size_t newline;
      while (worker.alive() && (newline = worker.buffer.find('\n')) != std::string::npos) {
        const std::string line = worker.buffer.substr(0, newline);
        worker.buffer.erase(0, newline + 1);
        handle_line(worker, line);
      }
    }
  }

  // Workers all gone. Only cells a worker actually received and then
  // failed on count as worker failures; cells never handed out (all
  // workers died early) join the fallback list uncounted.
  stats.worker_failures = failed.size();
  for (; next < misses.size(); ++next) failed.push_back(misses[next]);
  return true;
}

#endif  // __unix__

}  // namespace

std::vector<SweepCell> SweepSpec::cells() const {
  std::vector<SweepCell> out;
  if (kind == SweepKind::Hierarchy) {
    for (const cache::Hierarchy& hierarchy : hierarchies)
      for (const kernels::FigureEntry& entry : entries)
        out.push_back(SweepCell::hierarchy_study(entry, hierarchy, options));
  } else {
    for (const cache::CacheConfig& cache : caches)
      for (const kernels::FigureEntry& entry : entries)
        out.push_back(kind == SweepKind::Tiling ? SweepCell::tiling(entry, cache, options)
                                                : SweepCell::padding(entry, cache, options));
  }
  return out;
}

SweepRun run_sweep(const SweepSpec& spec, const SchedulerOptions& options) {
  const std::vector<SweepCell> cells = spec.cells();
  expects(!cells.empty(), "sweep: spec expands to zero cells");
  expects(options.jobs >= 1, "sweep: jobs must be >= 1");

  SweepRun run;
  run.results.resize(cells.size());
  run.stats.cells = cells.size();

  std::vector<Fingerprint> fingerprints;
  fingerprints.reserve(cells.size());
  for (const SweepCell& cell : cells) fingerprints.push_back(fingerprint_of(cell));

  std::optional<ResultCache> cache;
  if (options.use_cache) cache.emplace(options.cache_dir);

  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::optional<CellResult> hit;
    if (cache) hit = cache->load(fingerprints[i]);
    if (hit) {
      run.results[i] = std::move(*hit);
      ++run.stats.cache_hits;
    } else {
      misses.push_back(i);
    }
  }
  log_line(options, "[sweep] " + std::to_string(cells.size()) + " cells, " +
                        std::to_string(run.stats.cache_hits) + " cache hits, " +
                        std::to_string(misses.size()) + " to compute" +
                        (cache ? " (cache: " + cache->directory() + ")" : " (cache off)"));
  if (misses.empty()) return run;

  const ResultCache* store = cache ? &*cache : nullptr;
  std::vector<std::size_t> failed;
  bool sharded = false;
#ifdef __unix__
  if (options.jobs > 1) {
    sharded = run_multiprocess(cells, fingerprints, misses, store, options, run.results,
                               run.stats, failed);
    if (!sharded)
      log_line(options, "[sweep] could not spawn workers; computing in-process");
  }
#else
  if (options.jobs > 1)
    log_line(options, "[sweep] multi-process sharding unavailable on this platform; "
                      "computing in-process");
#endif
  if (!sharded) {
    failed = misses;  // never attempted remotely; not a worker failure
  } else if (!failed.empty()) {
    // run_multiprocess already set stats.worker_failures (failed may also
    // carry cells no worker ever received).
    log_line(options, "[sweep] recomputing " + std::to_string(failed.size()) +
                          " cells in-process (" +
                          std::to_string(run.stats.worker_failures) + " worker failures)");
  }
  compute_in_process(cells, fingerprints, failed, store, run.results);
  run.stats.computed += failed.size();
  return run;
}

namespace {

/// Run the spec and project the kind-matching row out of every cell.
template <typename Row>
std::vector<Row> sweep_rows(SweepSpec spec, const SchedulerOptions& scheduler,
                            SweepStats* stats, Row CellResult::* member) {
  SweepRun run = run_sweep(spec, scheduler);
  if (stats != nullptr) *stats = run.stats;
  std::vector<Row> rows;
  rows.reserve(run.results.size());
  for (CellResult& result : run.results) rows.push_back(std::move(result.*member));
  return rows;
}

}  // namespace

std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  SweepSpec spec;
  spec.kind = SweepKind::Tiling;
  spec.entries.assign(entries.begin(), entries.end());
  spec.caches.assign(caches.begin(), caches.end());
  spec.options = options;
  return sweep_rows(std::move(spec), scheduler, stats, &CellResult::tiling);
}

std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  return run_tiling_experiments(entries, std::span<const cache::CacheConfig>(&cache, 1),
                                options, scheduler, stats);
}

std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  SweepSpec spec;
  spec.kind = SweepKind::Padding;
  spec.entries.assign(entries.begin(), entries.end());
  spec.caches.assign(caches.begin(), caches.end());
  spec.options = options;
  return sweep_rows(std::move(spec), scheduler, stats, &CellResult::padding);
}

std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  return run_padding_experiments(entries, std::span<const cache::CacheConfig>(&cache, 1),
                                 options, scheduler, stats);
}

std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::Hierarchy> hierarchies,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  SweepSpec spec;
  spec.kind = SweepKind::Hierarchy;
  spec.entries.assign(entries.begin(), entries.end());
  spec.hierarchies.assign(hierarchies.begin(), hierarchies.end());
  spec.options = options;
  return sweep_rows(std::move(spec), scheduler, stats, &CellResult::hierarchy);
}

std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::Hierarchy& hierarchy,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  return run_hierarchy_experiments(entries, std::span<const cache::Hierarchy>(&hierarchy, 1),
                                   options, scheduler, stats);
}

void maybe_run_worker(int argc, const char* const* argv) {
  const std::string flag = std::string("--") + kWorkerFlag;
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      run_worker_loop(std::cin, std::cout);
      std::exit(0);
    }
  }
}

void run_worker_loop(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    i64 id = -1;
    Json response = Json::object();
    std::string error;
    std::optional<CellResult> result;

    const std::optional<Json> job = Json::parse(line);
    if (job) {
      const Json* id_field = job->find("id");
      if (id_field != nullptr) id = id_field->as_int(-1);
      const Json* cell_json = job->find("cell");
      std::optional<SweepCell> cell;
      if (cell_json != nullptr) cell = cell_of_json(*cell_json);
      if (cell) {
        try {
          result = run_cell(*cell);
        } catch (const std::exception& e) {
          error = e.what();
        }
      } else {
        error = "malformed cell";
      }
    } else {
      error = "malformed job line";
    }

    response.set("id", Json::integer(id));
    response.set("ok", Json::boolean(result.has_value()));
    if (result)
      response.set("result", json_of_result(*result));
    else
      response.set("error", Json::string(error));
    out << response.dump() << "\n" << std::flush;
  }
}

}  // namespace cmetile::sweep

#include "sweep/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/contracts.hpp"
#include "support/parallel.hpp"
#include "sweep/metrics_json.hpp"
#include "sweep/transport.hpp"

#ifdef __unix__
#include <poll.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace cmetile::sweep {

namespace {

std::string self_executable_path() {
#ifdef __linux__
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
#endif
  return {};
}

void log_line(const SchedulerOptions& options, const std::string& message) {
  if (options.log != nullptr) *options.log << message << "\n";
}

/// Serialized progress accounting shared by every execution mode: the
/// distributed event loop reports remote cells, the parallel_for fallback
/// reports local cells from worker threads, and both see one mutex.
class ProgressReporter {
 public:
  ProgressReporter(const SchedulerOptions& options, std::size_t cells_total)
      : fn_(options.progress), start_(std::chrono::steady_clock::now()) {
    snapshot_.cells_total = cells_total;
  }

  /// Cache satisfaction happened; emits the first snapshot. Compute time
  /// is measured from here: the warm-cache hit scan precedes it, and an
  /// ETA extrapolated from a rate that includes hit-scan time would
  /// overestimate mostly-warm sweeps.
  void satisfied(std::size_t cache_hits) {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_.cache_hits = cache_hits;
    snapshot_.done = cache_hits;
    compute_start_ = std::chrono::steady_clock::now();
    emit_locked();
  }

  void cell_done(bool remote, const CellResult& result) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++(remote ? snapshot_.computed_remote : snapshot_.computed_local);
    ++snapshot_.done;
    // Eval-cache traffic comes from the finished row itself, so remote
    // cells contribute identically to local ones.
    switch (result.kind) {
      case SweepKind::Tiling:
        snapshot_.eval_cache_lookups += result.tiling.eval_cache_lookups;
        snapshot_.eval_cache_hits += result.tiling.eval_cache_hits;
        break;
      case SweepKind::Hierarchy:
        snapshot_.eval_cache_lookups += result.hierarchy.eval_cache_lookups;
        snapshot_.eval_cache_hits += result.hierarchy.eval_cache_hits;
        break;
      case SweepKind::Padding:
        break;
    }
    emit_locked();
  }

  void worker_failed() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++snapshot_.failed_workers;
    emit_locked();
  }

  void set_workers(std::size_t live) {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_.workers_live = live;
  }

  /// Final state for the metrics report (elapsed brought up to date).
  SweepProgress current() {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    return snapshot_;
  }

 private:
  void emit_locked() {
    if (!fn_) return;
    const auto now = std::chrono::steady_clock::now();
    snapshot_.elapsed_seconds = std::chrono::duration<double>(now - start_).count();
    const std::size_t computed = snapshot_.computed_local + snapshot_.computed_remote;
    const std::size_t remaining = snapshot_.cells_total - snapshot_.done;
    const double compute_seconds = std::chrono::duration<double>(now - compute_start_).count();
    snapshot_.cells_per_second =
        (computed > 0 && compute_seconds > 0.0) ? (double)computed / compute_seconds : 0.0;
    // ETA ladder: a fully-satisfied sweep is simply done (0, not "unknown"
    // — warm replays used to report -1 forever because `computed` never
    // advanced); with computed cells, extrapolate from the compute-phase
    // rate (excluding the hit-scan time folded into elapsed_seconds);
    // otherwise unknown. Cache hits deliberately never feed the rate: on a
    // cold/warm mixed run the warm burst lands first and a done-rate ETA
    // would promise the cold remainder at replay speed.
    if (remaining == 0) {
      snapshot_.eta_seconds = 0.0;
    } else if (computed > 0) {
      snapshot_.eta_seconds = compute_seconds / (double)computed * (double)remaining;
    } else {
      snapshot_.eta_seconds = -1.0;
    }
    fn_(snapshot_);
  }

  std::mutex mutex_;
  SweepProgress snapshot_;
  SweepProgressFn fn_;
  std::chrono::steady_clock::time_point start_;
  /// Start of the compute phase (set when cache satisfaction is known);
  /// defaults to construction time for paths that skip satisfied().
  std::chrono::steady_clock::time_point compute_start_ = std::chrono::steady_clock::now();
};

/// Compute `indices` in-process (parallel across cells like the core
/// plural drivers) and checkpoint each cell the moment it completes.
/// Exceptions cannot escape an OpenMP structured block (std::terminate),
/// so per-cell errors are captured and the first one rethrown afterwards
/// — run_sweep's throw-on-unusable-spec contract holds for errors only
/// detectable per cell (e.g. an unknown kernel name).
void compute_in_process(const std::vector<SweepCell>& cells,
                        const std::vector<Fingerprint>& fingerprints,
                        const std::vector<std::size_t>& indices, const ResultCache* cache,
                        std::vector<CellResult>& results, ProgressReporter& progress) {
  std::vector<std::string> errors(indices.size());
  std::atomic<bool> any_error{false};
  parallel_for(indices.size(), [&](std::size_t m) {
    const std::size_t idx = indices[m];
    try {
      results[idx] = run_cell(cells[idx]);
      if (cache != nullptr) cache->store(fingerprints[idx], results[idx]);
      progress.cell_done(/*remote=*/false, results[idx]);
    } catch (const std::exception& e) {
      errors[m] = e.what();
      any_error.store(true, std::memory_order_release);
    } catch (...) {
      errors[m] = "unknown error";
      any_error.store(true, std::memory_order_release);
    }
  });
  if (!any_error.load(std::memory_order_acquire)) return;
  for (std::size_t m = 0; m < indices.size(); ++m) {
    if (!errors[m].empty())
      throw contract_error("sweep: cell " + cells[indices[m]].entry.label() + " failed: " +
                           errors[m]);
  }
}

/// Per-worker telemetry for the --metrics report, keyed by a monotonically
/// increasing serial — NOT by pid or peer address: a reconnecting TCP
/// worker is a fresh process with a fresh registry, so each connection
/// gets its own record and cumulative snapshots never mix across lives.
struct WorkerTelemetry {
  i64 pid = -1;       ///< from the v3 hello; -1 before the handshake
  std::string peer;   ///< transport description at adoption
  std::size_t cells = 0;
  obs::MetricsSnapshot metrics;  ///< latest cumulative snapshot
};

/// The --metrics report: sweep totals, the scheduler's own registry, each
/// worker's last cumulative snapshot, and the fleet-wide merge of all of
/// them. Written next to the CSV so per-level miss/writeback and cache-hit
/// totals can be reconciled row-by-row (tools/check_trace.py metrics).
void write_metrics_report(const SchedulerOptions& options, const SweepStats& stats,
                          const SweepProgress& progress,
                          const std::vector<WorkerTelemetry>& worker_telemetry) {
  Json report = Json::object();
  report.set("schema", Json::string("cmetile-metrics-v1"));

  Json sweep = Json::object();
  sweep.set("cells", Json::integer((i64)stats.cells));
  sweep.set("cache_hits", Json::integer((i64)stats.cache_hits));
  sweep.set("computed", Json::integer((i64)stats.computed));
  sweep.set("remote", Json::integer((i64)stats.remote));
  sweep.set("worker_failures", Json::integer((i64)stats.worker_failures));
  sweep.set("eval_cache_lookups", Json::integer(progress.eval_cache_lookups));
  sweep.set("eval_cache_hits", Json::integer(progress.eval_cache_hits));
  sweep.set("elapsed_seconds", Json::number(progress.elapsed_seconds));
  report.set("sweep", std::move(sweep));

  const obs::MetricsSnapshot scheduler_snap = obs::Registry::instance().snapshot();
  obs::MetricsSnapshot fleet = scheduler_snap;
  Json workers = Json::array();
  for (std::size_t w = 0; w < worker_telemetry.size(); ++w) {
    const WorkerTelemetry& t = worker_telemetry[w];
    Json entry = Json::object();
    entry.set("id", Json::integer((i64)w));
    entry.set("pid", Json::integer(t.pid));
    entry.set("peer", Json::string(t.peer));
    entry.set("cells", Json::integer((i64)t.cells));
    entry.set("metrics", json_of_metrics(t.metrics));
    workers.push(std::move(entry));
    fleet.merge(t.metrics);
  }
  report.set("scheduler", json_of_metrics(scheduler_snap));
  report.set("fleet", json_of_metrics(fleet));
  report.set("workers", std::move(workers));

  std::ofstream out(options.metrics_path, std::ios::trunc);
  if (!out.is_open()) {
    log_line(options, "[sweep] could not write metrics report to " + options.metrics_path);
    return;
  }
  out << report.dump() << "\n";
  log_line(options, "[sweep] metrics report: " + options.metrics_path);
}

#ifdef __unix__

/// Upper bound on one worker->scheduler protocol line (results are a few
/// KB); a peer exceeding it without a newline is babbling and dropped.
constexpr std::size_t kMaxWorkerLineBytes = 1 << 20;

/// Restore-on-destruction SIGPIPE ignore: a worker that died mid-job must
/// surface as a failed write, not kill the scheduler.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_ {};
};

struct LiveWorker {
  std::unique_ptr<Channel> channel;
  std::string buffer;
  std::size_t serial = 0;  ///< index into the telemetry vector
  long long job = -1;  ///< in-flight cell index, -1 when idle
  /// Jobs may be dispatched. Pipe workers start ready (their hello
  /// arrives after the first assignment); TCP workers become ready when
  /// their hello passes the handshake.
  bool ready = false;
  /// A hello passed the handshake. No ack, heartbeat, or result is
  /// accepted before it — a stale pre-handshake build that answers jobs
  /// without a hello is refused at its first line, salt unseen or not.
  bool hello_ok = false;
  std::chrono::steady_clock::time_point last_seen;

  bool alive() const { return channel != nullptr && channel->read_fd() >= 0; }
};

/// Transport-generic distributed dispatch: feed cells to workers one at a
/// time (dynamic load balancing — GA cells vary widely in cost),
/// checkpoint each result as it arrives, absorb reconnecting TCP workers
/// mid-run, and expire workers whose in-flight cell went silent past the
/// per-cell timeout. Any worker failure routes its cell into `failed` for
/// the in-process fallback. Returns false only when no worker could be
/// established at all.
bool run_distributed(const std::vector<SweepCell>& cells,
                     const std::vector<Fingerprint>& fingerprints,
                     const std::vector<std::size_t>& misses, const ResultCache* cache,
                     const SchedulerOptions& options, Transport& transport, int want,
                     std::vector<CellResult>& results, SweepStats& stats,
                     std::vector<std::size_t>& failed, ProgressReporter& progress,
                     std::vector<WorkerTelemetry>& telemetry) {
  using clock = std::chrono::steady_clock;
  ScopedSigpipeIgnore sigpipe_guard;

  std::vector<LiveWorker> workers;
  const auto adopt = [&](std::unique_ptr<Channel> channel) {
    LiveWorker worker;
    worker.channel = std::move(channel);
    worker.ready = worker.channel->trusted();
    worker.last_seen = clock::now();
    worker.serial = telemetry.size();
    WorkerTelemetry record;
    record.peer = worker.channel->describe();
    telemetry.push_back(std::move(record));
    workers.push_back(std::move(worker));
  };
  for (auto& channel : transport.open(want)) adopt(std::move(channel));
  if (workers.empty()) return false;
  log_line(options, "[sweep] " + std::string(transport.name()) + ": " +
                        std::to_string(workers.size()) + " workers connected");
  progress.set_workers(workers.size());

  const bool can_accept = transport.accept_fd() >= 0;
  std::size_t next = 0;  // next unassigned entry of `misses`

  // Worker death: the in-flight cell (if any) is routed to the in-process
  // fallback and counted; the log line carries the running count so a
  // degrading fleet is visible while the sweep still succeeds.
  const auto kill_worker = [&](LiveWorker& worker, const std::string& reason) {
    const long long job = worker.job;
    const std::string who = worker.channel->describe();
    if (job >= 0) {
      failed.push_back((std::size_t)job);
      ++stats.worker_failures;
      progress.worker_failed();
      worker.job = -1;
    }
    worker.channel->shutdown();
    std::string message = "[sweep] worker " + who + " " + reason;
    if (job >= 0)
      message += " on cell " + std::to_string(job) + " — will recompute in-process (" +
                 std::to_string(stats.worker_failures) + " failed worker cells so far)";
    log_line(options, message);
  };

  // Hand the next queued cell to `worker`; half-closes its input when the
  // queue is drained (the worker then exits on EOF).
  const auto assign = [&](LiveWorker& worker) {
    if (!worker.ready) return;
    while (next < misses.size()) {
      const std::size_t idx = misses[next];
      if (worker.channel->send_line(job_line((i64)idx, cells[idx]))) {
        ++next;
        worker.job = (long long)idx;
        worker.last_seen = clock::now();
        return;
      }
      // Peer vanished before the job was accepted: the cell is NOT lost —
      // leave it queued for a healthier worker; this worker is done.
      kill_worker(worker, "went away before accepting a job");
      return;
    }
    worker.channel->finish_input();
  };

  const auto handle_line = [&](LiveWorker& worker, std::string_view line) {
    if (line.empty()) return;
    // Not const: the accepted result is moved out below.
    WorkerMessage msg = parse_worker_message(line);
    switch (msg.kind) {
      case WorkerMessage::Kind::Hello: {
        std::string detail;
        if (!handshake_accepts(msg, &detail)) {
          kill_worker(worker, "refused: " + detail);
          return;
        }
        if (worker.hello_ok) {
          // Every line must advance the protocol or kill the worker —
          // otherwise a babbler could refresh its liveness deadline
          // forever and pin the scheduler. A repeated hello is babble.
          kill_worker(worker, "sent a second hello");
          return;
        }
        worker.hello_ok = true;
        telemetry[worker.serial].pid = msg.pid;
        if (!worker.ready) {
          worker.ready = true;
          assign(worker);
        }
        return;
      }
      case WorkerMessage::Kind::Ack:
      case WorkerMessage::Kind::Heartbeat:
        // Liveness was refreshed at read time; a control line before the
        // handshake, from an idle worker, or for a job this worker does
        // not hold is protocol confusion.
        if (!worker.hello_ok || worker.job < 0 || msg.id != worker.job) {
          kill_worker(worker, "sent a stray control line");
          return;
        }
        // Snapshots are cumulative, so the latest one supersedes all
        // earlier ones from this worker.
        if (msg.stats) telemetry[worker.serial].metrics = std::move(*msg.stats);
        return;
      case WorkerMessage::Kind::Result: {
        if (!worker.hello_ok) {
          kill_worker(worker, "sent a result before its handshake");
          return;
        }
        if (worker.job < 0 || msg.id != worker.job || !msg.ok || !msg.result ||
            msg.result->kind != cells[(std::size_t)worker.job].kind) {
          // Wrong id, failed cell, or mismatched payload: stop trusting
          // this worker entirely. Surface the worker's own diagnostic if
          // it sent one — it is usually the only explanation.
          kill_worker(worker, "failed" + (msg.error.empty() ? "" : " (" + msg.error + ")"));
          return;
        }
        const std::size_t idx = (std::size_t)worker.job;
        results[idx] = std::move(*msg.result);
        if (cache != nullptr) cache->store(fingerprints[idx], results[idx]);
        ++stats.computed;
        ++stats.remote;
        ++telemetry[worker.serial].cells;
        if (msg.stats) telemetry[worker.serial].metrics = std::move(*msg.stats);
        progress.cell_done(/*remote=*/true, results[idx]);
        worker.job = -1;
        assign(worker);
        return;
      }
      case WorkerMessage::Kind::Malformed:
        kill_worker(worker, "babbled an unparseable line");
        return;
    }
  };

  for (LiveWorker& worker : workers)
    if (worker.alive()) assign(worker);

  const auto timeout = std::chrono::duration<double>(
      options.cell_timeout_seconds > 0 ? options.cell_timeout_seconds : 0);
  const auto accept_wait = std::chrono::duration<double>(options.accept_wait_seconds);
  // Plain flag + value instead of optional<time_point>: GCC 12's
  // -Wmaybe-uninitialized cannot see through the optional's guard.
  bool all_dead = false;
  clock::time_point all_dead_since{};
  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_owner;  // workers.size() marks the accept fd

  while (true) {
    const auto now = clock::now();

    // Dead entries are done informing anything; drop them so a flapping,
    // reconnecting fleet doesn't grow the scan set (and retain buffers)
    // for the whole run.
    std::erase_if(workers, [](const LiveWorker& worker) { return !worker.alive(); });

    // Expire workers whose in-flight cell (or pending handshake) went
    // silent past the per-cell timeout. Heartbeats refresh last_seen, so
    // only a hung/dead/partitioned worker can trip this.
    if (timeout.count() > 0) {
      for (LiveWorker& worker : workers) {
        if (!worker.alive() || (worker.job < 0 && worker.ready)) continue;
        if (now - worker.last_seen > timeout)
          kill_worker(worker, "timed out (silent for " +
                                  std::to_string(options.cell_timeout_seconds) + "s)");
      }
    }

    std::size_t live = 0;
    for (const LiveWorker& worker : workers) live += worker.alive() ? 1 : 0;
    progress.set_workers(live);
    const bool queue_open = next < misses.size();
    if (live == 0) {
      // All workers gone. With an accepting transport and cells still
      // queued, give replacements one accept window to show up; anything
      // else means the distributed phase is over.
      if (!queue_open || !can_accept) break;
      if (!all_dead) {
        all_dead = true;
        all_dead_since = now;
      }
      if (now - all_dead_since >= accept_wait) {
        log_line(options, "[sweep] no workers reconnected; finishing in-process");
        break;
      }
    } else {
      all_dead = false;
    }

    // Nearest deadline bounds the poll: cell timeouts and, when
    // workerless, the reconnect window.
    int timeout_ms = -1;
    const auto consider = [&](clock::time_point deadline) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
      const int ms = (int)std::max<long long>(0, remaining) + 1;
      timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
    };
    if (timeout.count() > 0) {
      for (const LiveWorker& worker : workers) {
        if (!worker.alive() || (worker.job < 0 && worker.ready)) continue;
        consider(worker.last_seen +
                 std::chrono::duration_cast<clock::duration>(timeout));
      }
    }
    if (all_dead)
      consider(all_dead_since + std::chrono::duration_cast<clock::duration>(accept_wait));

    fds.clear();
    fd_owner.clear();
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].alive()) continue;
      fds.push_back({workers[w].channel->read_fd(), POLLIN, 0});
      fd_owner.push_back(w);
    }
    if (can_accept && queue_open) {
      fds.push_back({transport.accept_fd(), POLLIN, 0});
      fd_owner.push_back(workers.size());
    }
    if (fds.empty()) break;

    const int ready = ::poll(fds.data(), (nfds_t)fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      for (LiveWorker& worker : workers)
        if (worker.alive()) kill_worker(worker, "dropped (poll failed)");
      break;
    }
    if (ready == 0) continue;  // a deadline fired; handled at loop top

    for (std::size_t f = 0; f < fds.size(); ++f) {
      if (fds[f].revents == 0) continue;
      if (fd_owner[f] == workers.size()) {
        // A (re)connecting TCP worker joins the pool mid-run; it gets
        // jobs once its handshake passes.
        if (auto channel = transport.accept()) {
          log_line(options, "[sweep] tcp: worker connected from " + channel->describe());
          adopt(std::move(channel));
        }
        continue;
      }
      LiveWorker& worker = workers[fd_owner[f]];
      if (!worker.alive()) continue;  // killed earlier in this pass
      char chunk[4096];
      const long n = worker.channel->read_some(chunk, sizeof chunk);
      if (n < 0) continue;  // transient (EINTR)
      if (n == 0) {
        // EOF. With a job in flight the worker died mid-cell; idle EOF is
        // the normal end of a drained worker.
        if (worker.job >= 0)
          kill_worker(worker, "exited");
        else
          worker.channel->shutdown();
        continue;
      }
      worker.buffer.append(chunk, (std::size_t)n);
      if (worker.buffer.find('\n') == std::string::npos) {
        // No complete line: do NOT refresh liveness — a peer dripping
        // newline-less bytes must still hit the timeout, and its buffer
        // must not grow without bound (protocol lines are a few KB).
        if (worker.buffer.size() > kMaxWorkerLineBytes)
          kill_worker(worker, "sent an oversized line");
        continue;
      }
      worker.last_seen = clock::now();
      std::size_t newline;
      while (worker.alive() && (newline = worker.buffer.find('\n')) != std::string::npos) {
        const std::string line = worker.buffer.substr(0, newline);
        worker.buffer.erase(0, newline + 1);
        handle_line(worker, line);
      }
    }

    // Queue drained: half-close every idle worker (including ones that
    // connected but never finished the handshake) so they exit cleanly
    // and the loop can end on their EOFs.
    if (next >= misses.size()) {
      for (LiveWorker& worker : workers)
        if (worker.alive() && worker.job < 0) worker.channel->finish_input();
    }
  }

  for (LiveWorker& worker : workers)
    if (worker.alive()) kill_worker(worker, "dropped at shutdown");
  progress.set_workers(0);

  // Cells never handed out (all workers died early) join the fallback
  // list uncounted as worker failures.
  for (; next < misses.size(); ++next) failed.push_back(misses[next]);
  return true;
}

#endif  // __unix__

}  // namespace

std::vector<SweepCell> SweepSpec::cells() const {
  std::vector<SweepCell> out;
  if (kind == SweepKind::Hierarchy) {
    for (const cache::Hierarchy& hierarchy : hierarchies)
      for (const kernels::FigureEntry& entry : entries)
        out.push_back(SweepCell::hierarchy_study(entry, hierarchy, options));
  } else {
    for (const cache::CacheConfig& cache : caches)
      for (const kernels::FigureEntry& entry : entries)
        out.push_back(kind == SweepKind::Tiling ? SweepCell::tiling(entry, cache, options)
                                                : SweepCell::padding(entry, cache, options));
  }
  return out;
}

SweepRun run_sweep(const SweepSpec& spec, const SchedulerOptions& options) {
  const std::vector<SweepCell> cells = spec.cells();
  expects(!cells.empty(), "sweep: spec expands to zero cells");
  expects(options.jobs >= 1, "sweep: jobs must be >= 1");
  if (!options.metrics_path.empty()) obs::set_enabled(true);
  obs::Span sweep_span("sweep.run");

  SweepRun run;
  run.results.resize(cells.size());
  run.stats.cells = cells.size();

  std::vector<Fingerprint> fingerprints;
  fingerprints.reserve(cells.size());
  for (const SweepCell& cell : cells) fingerprints.push_back(fingerprint_of(cell));

  std::optional<ResultCache> cache;
  if (options.use_cache) cache.emplace(options.cache_dir);

  ProgressReporter progress(options, cells.size());

  std::vector<std::size_t> misses;
  {
    obs::Span scan_span("sweep.cache_scan");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::optional<CellResult> hit;
      if (cache) hit = cache->load(fingerprints[i]);
      if (hit) {
        run.results[i] = std::move(*hit);
        ++run.stats.cache_hits;
      } else {
        misses.push_back(i);
      }
    }
  }
  progress.satisfied(run.stats.cache_hits);
  log_line(options, "[sweep] " + std::to_string(cells.size()) + " cells, " +
                        std::to_string(run.stats.cache_hits) + " cache hits, " +
                        std::to_string(misses.size()) + " to compute" +
                        (cache ? " (cache: " + cache->directory() + ")" : " (cache off)"));

  std::vector<WorkerTelemetry> worker_telemetry;
  if (!misses.empty()) {
    const ResultCache* store = cache ? &*cache : nullptr;
    const bool want_tcp = !options.listen.empty();
    std::vector<std::size_t> failed;
    bool sharded = false;
#ifdef __unix__
    if (want_tcp || options.jobs > 1) {
      std::unique_ptr<Transport> transport;
      int want = 0;
      if (want_tcp) {
        TcpTransportOptions tcp;
        tcp.listen = options.listen;
        tcp.accept_wait_seconds = options.accept_wait_seconds;
        tcp.on_listen = options.on_listen;
        tcp.log = options.log;
        transport = make_tcp_transport(std::move(tcp));  // throws on a bad spec
        // TCP worker fleets size themselves; cap only by useful width.
        want = (int)std::min<std::size_t>(misses.size(), 512);
      } else {
        PipeTransportOptions pipe;
        pipe.executable =
            options.worker_command.empty() ? self_executable_path() : options.worker_command;
        pipe.heartbeat_seconds = options.worker_heartbeat_seconds;
        pipe.total_threads = parallel_threads();
        transport = make_pipe_transport(std::move(pipe));
        want = (int)std::min((std::size_t)options.jobs, misses.size());
      }
      if (transport) {
        obs::Span span("sweep.distributed");
        sharded = run_distributed(cells, fingerprints, misses, store, options, *transport, want,
                                  run.results, run.stats, failed, progress, worker_telemetry);
      }
      if (!sharded) log_line(options, "[sweep] no workers available; computing in-process");
    }
#else
    if (want_tcp || options.jobs > 1)
      log_line(options, "[sweep] distributed sharding unavailable on this platform; "
                        "computing in-process");
#endif
    if (!sharded) {
      failed = misses;  // never attempted remotely; not a worker failure
    } else {
      log_line(options, "[sweep] " + std::to_string(run.stats.remote) +
                            " cells computed remotely" +
                            (failed.empty() ? ""
                                            : ", recomputing " + std::to_string(failed.size()) +
                                                  " in-process (" +
                                                  std::to_string(run.stats.worker_failures) +
                                                  " worker failures)"));
    }
    {
      obs::Span span("sweep.compute_in_process");
      compute_in_process(cells, fingerprints, failed, store, run.results, progress);
    }
    run.stats.computed += failed.size();
  }

  if (!options.metrics_path.empty())
    write_metrics_report(options, run.stats, progress.current(), worker_telemetry);

  if (cache && options.cache_gc) {
    GcOptions gc_options;
    gc_options.max_bytes = options.cache_max_bytes;
    gc_options.max_age_seconds = options.cache_max_age_seconds;
    const GcStats gc = cache->gc(gc_options, fingerprints);
    log_line(options, "[sweep] cache gc: evicted " + std::to_string(gc.evicted) + " of " +
                          std::to_string(gc.scanned) + " cells (" +
                          std::to_string(gc.bytes_before) + " -> " +
                          std::to_string(gc.bytes_after) + " bytes)");
  }
  return run;
}

namespace {

/// Run the spec and project the kind-matching row out of every cell.
template <typename Row>
std::vector<Row> sweep_rows(SweepSpec spec, const SchedulerOptions& scheduler,
                            SweepStats* stats, Row CellResult::* member) {
  SweepRun run = run_sweep(spec, scheduler);
  if (stats != nullptr) *stats = run.stats;
  std::vector<Row> rows;
  rows.reserve(run.results.size());
  for (CellResult& result : run.results) rows.push_back(std::move(result.*member));
  return rows;
}

}  // namespace

std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  SweepSpec spec;
  spec.kind = SweepKind::Tiling;
  spec.entries.assign(entries.begin(), entries.end());
  spec.caches.assign(caches.begin(), caches.end());
  spec.options = options;
  return sweep_rows(std::move(spec), scheduler, stats, &CellResult::tiling);
}

std::vector<core::TilingRow> run_tiling_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  return run_tiling_experiments(entries, std::span<const cache::CacheConfig>(&cache, 1),
                                options, scheduler, stats);
}

std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::CacheConfig> caches,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  SweepSpec spec;
  spec.kind = SweepKind::Padding;
  spec.entries.assign(entries.begin(), entries.end());
  spec.caches.assign(caches.begin(), caches.end());
  spec.options = options;
  return sweep_rows(std::move(spec), scheduler, stats, &CellResult::padding);
}

std::vector<core::PaddingRow> run_padding_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::CacheConfig& cache,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  return run_padding_experiments(entries, std::span<const cache::CacheConfig>(&cache, 1),
                                 options, scheduler, stats);
}

std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, std::span<const cache::Hierarchy> hierarchies,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  SweepSpec spec;
  spec.kind = SweepKind::Hierarchy;
  spec.entries.assign(entries.begin(), entries.end());
  spec.hierarchies.assign(hierarchies.begin(), hierarchies.end());
  spec.options = options;
  return sweep_rows(std::move(spec), scheduler, stats, &CellResult::hierarchy);
}

std::vector<core::HierarchyRow> run_hierarchy_experiments(
    std::span<const kernels::FigureEntry> entries, const cache::Hierarchy& hierarchy,
    const core::ExperimentOptions& options, const SchedulerOptions& scheduler,
    SweepStats* stats) {
  return run_hierarchy_experiments(entries, std::span<const cache::Hierarchy>(&hierarchy, 1),
                                   options, scheduler, stats);
}

void maybe_run_worker(int argc, const char* const* argv) {
  const CliArgs args(argc, argv);
  // Strict: a typo'd --heartbeat read as 0.0 would silently disable
  // liveness reporting and get healthy workers expired mid-cell.
  const double heartbeat = args.get_double_strict("heartbeat", kDefaultHeartbeatSeconds);
  expects(heartbeat >= 0.0, "--heartbeat must be >= 0 seconds (0 disables)");
  if (!args.has(kWorkerFlag) && !args.has(kConnectFlag)) return;
  // Per-process trace file (the scheduler opens its own); spans from this
  // worker land in it pid-tagged, so the files merge into one timeline.
  // Both exits below go through std::exit — init_trace's atexit hook is
  // what closes the JSON document.
  if (const std::string trace = args.get("trace", ""); !trace.empty())
    obs::init_trace(trace, "cmetile sweep worker");
  if (args.has(kWorkerFlag)) {
    WorkerLoopOptions options;
    options.heartbeat_seconds = heartbeat;
    run_worker_loop(std::cin, std::cout, options);
    std::exit(0);
  }
  std::exit(run_tcp_worker(args.get(kConnectFlag, ""), heartbeat) ? 0 : 1);
}

}  // namespace cmetile::sweep

#pragma once
// Minimal JSON for the sweep subsystem: the worker job/result protocol
// (one line-delimited message per job) and the on-disk cell payloads both
// need a self-describing, append-friendly text encoding without external
// dependencies. This is deliberately a small subset implementation:
//
//  - Values: null, bool, 64-bit integers, doubles, strings, arrays,
//    objects. Integers and doubles are distinct kinds so i64 round-trips
//    exactly beyond 2^53 and double VALUES round-trip bit-for-bit
//    (shortest std::to_chars form — the bit-identity of cached sweep rows
//    depends on this). The KIND of an integral double does not survive:
//    80.0 dumps as "80" and re-parses as Int, so double readers accept
//    both kinds (as_double does).
//  - Objects preserve insertion order, so a given writer always produces
//    one canonical byte string — fingerprints hash dump() output.
//  - parse() is tolerant in exactly one way: it either returns a fully
//    valid value or nullopt. Truncated/garbage input never throws and
//    never returns a partial value (the result cache treats nullopt as a
//    cold cell).
//
//  - Strings are byte sequences; non-ASCII bytes pass through untouched
//    in both directions. parse() decodes \uXXXX escapes to UTF-8,
//    including surrogate pairs (supplementary-plane code points); a lone
//    surrogate makes the whole parse return nullopt. dump() emits \uXXXX
//    only for control characters.
//
// Not supported (the sweep protocol doesn't need them): comments,
// duplicate-key detection.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile::sweep {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json integer(i64 i);
  static Json number(double d);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }

  // -- Builders (no-ops with a contract failure on kind mismatch) --------
  /// Append to an Array.
  void push(Json value);
  /// Append a key to an Object (insertion order preserved; keys assumed
  /// unique by construction).
  void set(std::string key, Json value);

  // -- Accessors ---------------------------------------------------------
  bool as_bool(bool fallback = false) const;
  /// Int returns the exact value; Double is truncated toward zero.
  i64 as_int(i64 fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  const std::string& as_string() const;  ///< empty string unless Kind::String
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Canonical single-line serialization (no whitespace).
  std::string dump() const;

  /// Full-input parse: leading/trailing whitespace allowed, anything else
  /// after the value (or any malformed byte) yields nullopt.
  static std::optional<Json> parse(std::string_view text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  i64 int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace cmetile::sweep

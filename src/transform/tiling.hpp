#pragma once
// Loop tiling (paper §3): strip-mining + interchange. A tile vector
// (T_1..T_k) turns the k-deep nest into a 2k-deep one whose execution
// order is lexicographic in *tile coordinates*
//
//     (t_1 .. t_k, o_1 .. o_k),   z_d = T_d·t_d + o_d,
//
// where z_d is the 0-based original coordinate (z_d = i_d − lower_d).
// When T_d does not divide the trip count U_d the last tile of dimension d
// is truncated — exactly the paper's "multiple convex regions" (§2.4,
// Fig. 2): the iteration space is the union of up to 2^k boxes
// (interior/boundary per dimension).
//
// All tiled-order reasoning in the CME solver happens in these coordinates;
// the original nest is never rewritten. `for_each_point_tiled` replays the
// tiled execution order for the trace simulator, and `tiled_source` renders
// the equivalent Fortran-style tiled code (Fig. 3 style) for humans.

#include <span>
#include <functional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "ir/layout.hpp"
#include "ir/nest.hpp"
#include "support/contracts.hpp"

namespace cmetile::transform {

/// Tile sizes, one per loop (1 <= T_d <= U_d; T_d = U_d means "untiled").
struct TileVector {
  std::vector<i64> t;

  /// The identity tiling (every T_d = U_d): original execution order.
  static TileVector untiled(const ir::LoopNest& nest);

  /// Clamp each entry into [1, U_d].
  static TileVector clamped(std::vector<i64> t, const ir::LoopNest& nest);

  std::string to_string() const;
  friend bool operator==(const TileVector&, const TileVector&) = default;
};

class TiledSpace {
 public:
  /// trips = trip counts U_d of the (0-based) original space.
  TiledSpace(std::vector<i64> trips, TileVector tiles);

  std::size_t depth() const { return trips_.size(); }          ///< k
  std::size_t tiled_dims() const { return 2 * trips_.size(); } ///< D = 2k

  i64 trip(std::size_t d) const { return trips_[d]; }
  i64 tile(std::size_t d) const { return tiles_[d]; }
  i64 tile_count(std::size_t d) const { return tile_counts_[d]; }     ///< NT_d
  i64 last_tile_size(std::size_t d) const { return last_sizes_[d]; }  ///< size of tile NT_d-1

  /// Extent of the o_d coordinate inside tile t_d.
  i64 o_extent(std::size_t d, i64 t) const {
    return t == tile_counts_[d] - 1 ? last_sizes_[d] : tiles_[d];
  }

  /// True if the trip count of every dimension is a multiple of its tile
  /// size (single convex region).
  bool divisible() const;

  /// Map a 0-based original point to (t_1..t_k, o_1..o_k).
  std::vector<i64> to_tiled(std::span<const i64> z) const;
  /// Allocation-free variant: writes into `to` (resized to 2k). Inline —
  /// this is the classifier's per-candidate hot path.
  void to_tiled_into(std::span<const i64> z, std::vector<i64>& to) const {
    expects(z.size() == trips_.size(), "TiledSpace::to_tiled: arity mismatch");
    to.resize(2 * trips_.size());
    for (std::size_t d = 0; d < trips_.size(); ++d) {
      to[d] = z[d] / tiles_[d];
      to[trips_.size() + d] = z[d] % tiles_[d];
    }
  }
  /// Inverse mapping.
  std::vector<i64> to_original(std::span<const i64> to) const;

  /// Lexicographic comparison of two points in tiled coordinates.
  /// Returns <0, 0, >0. Inline — the classifier's per-candidate hot path.
  int compare(std::span<const i64> to_a, std::span<const i64> to_b) const {
    expects(to_a.size() == to_b.size() && to_a.size() == tiled_dims(),
            "TiledSpace::compare: arity mismatch");
    for (std::size_t d = 0; d < to_a.size(); ++d) {
      if (to_a[d] != to_b[d]) return to_a[d] < to_b[d] ? -1 : 1;
    }
    return 0;
  }

  /// Visit all 0-based original points in *tiled* execution order.
  void for_each_point_tiled(const std::function<void(std::span<const i64> z)>& fn) const;

  /// Number of convex regions of the tiled iteration space (2^b where b is
  /// the number of dimensions with a truncated boundary tile) — paper §2.4.
  i64 convex_regions() const;

 private:
  std::vector<i64> trips_;
  std::vector<i64> tiles_;
  std::vector<i64> tile_counts_;
  std::vector<i64> last_sizes_;
};

/// Render the tiled nest as Fortran-like source (paper Fig. 3 (b) shape).
std::string tiled_source(const ir::LoopNest& nest, const TileVector& tiles);

/// Simulate the nest in tiled execution order (ground truth for tiled
/// miss ratios). Returns per-reference stats plus aggregate (last element).
std::vector<cache::MissStats> simulate_tiled(const ir::LoopNest& nest,
                                             const ir::MemoryLayout& layout,
                                             const cache::CacheConfig& config,
                                             const TileVector& tiles);

}  // namespace cmetile::transform

#include "transform/legality.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "reuse/reuse.hpp"
#include "support/contracts.hpp"

namespace cmetile::transform {

namespace {

/// Is the distance vector realizable inside the iteration space, i.e. is
/// there a pair of in-bounds iterations i, j = i - r? True iff |r_d| < U_d.
bool realizable(std::span<const i64> r, std::span<const i64> trips) {
  for (std::size_t d = 0; d < r.size(); ++d) {
    const i64 mag = r[d] < 0 ? -r[d] : r[d];
    if (mag >= trips[d]) return false;
  }
  return true;
}

bool lex_positive(std::span<const i64> r) {
  for (const i64 x : r) {
    if (x > 0) return true;
    if (x < 0) return false;
  }
  return false;  // zero vector
}

bool has_negative(std::span<const i64> r) {
  return std::any_of(r.begin(), r.end(), [](i64 x) { return x < 0; });
}

std::string render(std::span<const i64> r) {
  std::ostringstream out;
  out << '(';
  for (std::size_t d = 0; d < r.size(); ++d) {
    if (d) out << ',';
    out << r[d];
  }
  out << ')';
  return out.str();
}

}  // namespace

namespace {

/// Enumerate realizable lex-positive dependence distances of the nest and
/// call `fn(r, ref_a, ref_b)`; returns false on a non-uniform pair.
bool scan_dependences(const ir::LoopNest& nest, i64 lattice_bound,
                      const std::function<void(std::span<const i64>, std::size_t,
                                               std::size_t)>& fn) {
  const std::vector<i64> trips = nest.trip_counts();
  const std::size_t depth = nest.depth();

  for (std::size_t a = 0; a < nest.refs.size(); ++a) {
    for (std::size_t b = 0; b < nest.refs.size(); ++b) {
      const ir::Reference& ra = nest.refs[a];
      const ir::Reference& rb = nest.refs[b];
      if (ra.array != rb.array) continue;
      if (ra.kind != ir::AccessKind::Write && rb.kind != ir::AccessKind::Write) continue;

      const reuse::SubscriptForm fa = reuse::subscript_form(nest, ra);
      const reuse::SubscriptForm fb = reuse::subscript_form(nest, rb);
      if (!(fa.h == fb.h)) return false;

      // Distance lattice: r0 + span(ker H), H·r0 = c_B - c_A.
      std::vector<i64> rhs(fa.c.size());
      for (std::size_t d = 0; d < rhs.size(); ++d) rhs[d] = fb.c[d] - fa.c[d];
      const auto r0 = reuse::solve_integer(fa.h, rhs);
      if (!r0) continue;  // no dependence between this pair
      const auto kernel = reuse::nullspace_basis(fa.h);

      // Scan lattice coefficients in [-B, B]^|kernel|.
      std::vector<i64> lambda(kernel.size(), -lattice_bound);
      while (true) {
        std::vector<i64> r = *r0;
        for (std::size_t v = 0; v < kernel.size(); ++v)
          for (std::size_t d = 0; d < depth; ++d) r[d] += lambda[v] * kernel[v][d];

        if (realizable(r, trips) && lex_positive(r)) fn(r, a, b);

        // Odometer over lambda; empty kernel means a single iteration.
        std::size_t v = 0;
        for (; v < lambda.size(); ++v) {
          if (lambda[v] < lattice_bound) {
            ++lambda[v];
            std::fill(lambda.begin(), lambda.begin() + (std::ptrdiff_t)v, -lattice_bound);
            break;
          }
        }
        if (v == lambda.size()) break;
      }
    }
  }
  return true;
}

}  // namespace

LegalityReport check_tiling_legality(const ir::LoopNest& nest, i64 lattice_bound) {
  LegalityReport report{Legality::Legal, "all dependence distances non-negative"};
  const bool uniform = scan_dependences(
      nest, lattice_bound, [&](std::span<const i64> r, std::size_t a, std::size_t b) {
        if (report.verdict == Legality::Legal && has_negative(r)) {
          report.verdict = Legality::Illegal;
          report.detail = "dependence distance " + render(r) + " between refs " +
                          std::to_string(a) + " and " + std::to_string(b) +
                          " is lexicographically positive but has a negative component: "
                          "nest is not fully permutable";
        }
      });
  if (!uniform)
    return LegalityReport{Legality::Unknown, "non-uniform dependence pair encountered"};
  return report;
}

std::vector<std::vector<i64>> risky_dependence_vectors(const ir::LoopNest& nest,
                                                       i64 lattice_bound) {
  std::vector<std::vector<i64>> risky;
  const bool uniform = scan_dependences(
      nest, lattice_bound, [&](std::span<const i64> r, std::size_t, std::size_t) {
        if (!has_negative(r)) return;
        std::vector<i64> v(r.begin(), r.end());
        for (const auto& existing : risky)
          if (existing == v) return;
        risky.push_back(std::move(v));
      });
  expects(uniform, "risky_dependence_vectors: non-uniform dependence pair (unsupported)");
  return risky;
}

namespace {

/// Is dependence r violated at dimension m under this tile vector?
bool violated_at(std::span<const i64> r, std::span<const i64> trips, std::span<const i64> tiles,
                 std::size_t m) {
  if (r[m] >= 0) return false;
  if (tiles[m] >= trips[m]) return false;  // dimension not really tiled
  for (std::size_t e = 0; e < m; ++e) {
    if (r[e] > tiles[e] - 1) return false;  // earlier dim must cross a tile forward
  }
  return true;
}

}  // namespace

bool tile_vector_legal(std::span<const std::vector<i64>> risky_deps,
                       std::span<const i64> trips, std::span<const i64> tiles) {
  for (const std::vector<i64>& r : risky_deps) {
    for (std::size_t m = 0; m < r.size(); ++m) {
      if (violated_at(r, trips, tiles, m)) return false;
    }
  }
  return true;
}

double tile_vector_violation(std::span<const std::vector<i64>> risky_deps,
                             std::span<const i64> trips, std::span<const i64> tiles) {
  double total = 0.0;
  for (const std::vector<i64>& r : risky_deps) {
    for (std::size_t m = 0; m < r.size(); ++m) {
      if (!violated_at(r, trips, tiles, m)) continue;
      // Cheapest single-dimension repair, as a fraction of that domain:
      // raise T_m to U_m (untile the violating dimension) ...
      double repair = (double)(trips[m] - tiles[m]) / (double)trips[m];
      // ... or shrink an earlier forward dimension e to T_e <= r_e so the
      // pair must cross an e-tile boundary forward.
      for (std::size_t e = 0; e < m; ++e) {
        if (r[e] > 0 && tiles[e] > r[e]) {
          repair = std::min(repair, (double)(tiles[e] - r[e]) / (double)trips[e]);
        }
      }
      total += 1.0 + repair;
    }
  }
  return total;
}

}  // namespace cmetile::transform

#include "transform/legality.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "reuse/reuse.hpp"
#include "support/contracts.hpp"

namespace cmetile::transform {

namespace {

/// Is the distance vector realizable inside the iteration space, i.e. is
/// there a pair of in-bounds iterations i, j = i - r? True iff |r_d| < U_d.
bool realizable(std::span<const i64> r, std::span<const i64> trips) {
  for (std::size_t d = 0; d < r.size(); ++d) {
    const i64 mag = r[d] < 0 ? -r[d] : r[d];
    if (mag >= trips[d]) return false;
  }
  return true;
}

bool lex_positive(std::span<const i64> r) {
  for (const i64 x : r) {
    if (x > 0) return true;
    if (x < 0) return false;
  }
  return false;  // zero vector
}

bool has_negative(std::span<const i64> r) {
  return std::any_of(r.begin(), r.end(), [](i64 x) { return x < 0; });
}

std::string render(std::span<const i64> r) {
  std::ostringstream out;
  out << '(';
  for (std::size_t d = 0; d < r.size(); ++d) {
    if (d) out << ',';
    out << r[d];
  }
  out << ')';
  return out.str();
}

/// Should this ordered reference pair be dependence-tested at all?
bool dependence_pair(const ir::Reference& ra, const ir::Reference& rb) {
  if (ra.array != rb.array) return false;
  return ra.kind == ir::AccessKind::Write || rb.kind == ir::AccessKind::Write;
}

}  // namespace

// ---------------------------------------------------------------------------
// Polyhedral engine (primary).
//
// Variable layout of a dependence polyhedron for a nest of depth k:
// columns 0..k-1 are the distance r, columns k..2k-1 the source iteration
// i; the sink is j = i + r. Putting r first lets IntPolyhedron's projected
// enumeration emit distance vectors directly (each with an integer witness
// completion for i).
// ---------------------------------------------------------------------------

namespace {

/// Add the iteration-domain rows for the source point i (shifted == false)
/// or the sink point i + r (shifted == true): for every dim d,
/// x_d - lower_d(x) >= 0 and upper_d(x) - x_d >= 0, with affine bounds
/// substituted through the (r, i) coordinates.
void add_domain_rows(reuse::IntPolyhedron& poly, const ir::LoopNest& nest, bool shifted) {
  const std::size_t k = nest.depth();
  for (std::size_t d = 0; d < k; ++d) {
    const ir::Loop& loop = nest.loops[d];
    std::vector<i64> lower_row(2 * k, 0);
    std::vector<i64> upper_row(2 * k, 0);
    i64 lower_b = 0;
    i64 upper_b = 0;
    auto add_var = [&](std::vector<i64>& row, std::size_t e, i64 c) {
      row[k + e] += c;          // i_e column
      if (shifted) row[e] += c;  // r_e column (x_e = i_e + r_e)
    };
    add_var(lower_row, d, 1);
    if (loop.has_affine_lower()) {
      for (std::size_t e = 0; e < loop.lower_bound.depth(); ++e)
        if (loop.lower_bound.coeff(e) != 0) add_var(lower_row, e, -loop.lower_bound.coeff(e));
      lower_b = -loop.lower_bound.constant_term();
    } else {
      lower_b = -loop.lower;
    }
    add_var(upper_row, d, -1);
    if (loop.has_affine_upper()) {
      for (std::size_t e = 0; e < loop.upper_bound.depth(); ++e)
        if (loop.upper_bound.coeff(e) != 0) add_var(upper_row, e, loop.upper_bound.coeff(e));
      upper_b = loop.upper_bound.constant_term();
    } else {
      upper_b = loop.upper;
    }
    poly.add_inequality(std::move(lower_row), lower_b);
    poly.add_inequality(std::move(upper_row), upper_b);
  }
}

/// The dependence polyhedron of an ordered reference pair: both endpoints
/// in the domain, touching the same array element, i.e.
/// (H_a - H_b)·i - H_b·r + (c_a - c_b) = 0.
reuse::IntPolyhedron dependence_polyhedron(const ir::LoopNest& nest,
                                           const reuse::SubscriptForm& fa,
                                           const reuse::SubscriptForm& fb) {
  const std::size_t k = nest.depth();
  reuse::IntPolyhedron poly(2 * k);
  add_domain_rows(poly, nest, /*shifted=*/false);
  add_domain_rows(poly, nest, /*shifted=*/true);
  for (std::size_t row = 0; row < fa.h.rows(); ++row) {
    std::vector<i64> a(2 * k, 0);
    for (std::size_t e = 0; e < k; ++e) {
      a[k + e] = fa.h.at(row, e) - fb.h.at(row, e);
      a[e] = -fb.h.at(row, e);
    }
    poly.add_equality(std::move(a), fa.c[row] - fb.c[row]);
  }
  return poly;
}

struct PairScan {
  bool exact = true;                      ///< false iff a budget was exhausted
  std::vector<std::vector<i64>> risky;    ///< may contain duplicates across (l, m)
};

/// Enumerate the risky distances of one ordered pair. The risky set is the
/// union over lex level l and later dim m of the convex regions
/// { r_e = 0 (e < l), r_l >= 1, r_m <= -1 }; each region is first tested
/// for provable emptiness (the Legal fast path needs no enumeration).
PairScan scan_pair(const ir::LoopNest& nest, const reuse::SubscriptForm& fa,
                   const reuse::SubscriptForm& fb, const DependenceOptions& options) {
  const std::size_t k = nest.depth();
  PairScan scan;
  const reuse::IntPolyhedron base = dependence_polyhedron(nest, fa, fb);
  if (base.definitely_empty()) return scan;  // no dependence at all
  for (std::size_t l = 0; l < k; ++l) {
    reuse::IntPolyhedron level = base;
    for (std::size_t e = 0; e < l; ++e) {
      level.add_lower_bound(e, 0);
      level.add_upper_bound(e, 0);
    }
    level.add_lower_bound(l, 1);
    if (level.definitely_empty()) continue;
    for (std::size_t m = l + 1; m < k; ++m) {
      reuse::IntPolyhedron region = level;
      region.add_upper_bound(m, -1);
      if (region.definitely_empty()) continue;
      const reuse::IntPolyhedron::Search search = region.for_each_projected_point(
          k, options.enumerate_cap, [&](std::span<const i64> r) {
            scan.risky.emplace_back(r.begin(), r.end());
            return true;
          });
      if (!search.complete) scan.exact = false;
    }
  }
  return scan;
}

struct NestScan {
  bool exact = true;
  std::set<std::vector<i64>> risky;
  std::vector<i64> first_vector;  ///< first risky vector encountered ...
  std::size_t first_ref_a = 0;    ///< ... and the pair that produced it
  std::size_t first_ref_b = 0;
};

NestScan scan_nest(const ir::LoopNest& nest, const DependenceOptions& options) {
  NestScan result;
  for (std::size_t a = 0; a < nest.refs.size(); ++a) {
    for (std::size_t b = 0; b < nest.refs.size(); ++b) {
      if (!dependence_pair(nest.refs[a], nest.refs[b])) continue;
      const reuse::SubscriptForm fa = reuse::subscript_form(nest, nest.refs[a]);
      const reuse::SubscriptForm fb = reuse::subscript_form(nest, nest.refs[b]);
      const PairScan scan = scan_pair(nest, fa, fb, options);
      if (!scan.exact) result.exact = false;
      for (const std::vector<i64>& r : scan.risky) {
        if (result.risky.empty()) {
          result.first_vector = r;
          result.first_ref_a = a;
          result.first_ref_b = b;
        }
        result.risky.insert(r);
      }
    }
  }
  return result;
}

}  // namespace

LegalityReport check_tiling_legality(const ir::LoopNest& nest,
                                     const DependenceOptions& options) {
  const NestScan scan = scan_nest(nest, options);
  if (!scan.risky.empty()) {
    return LegalityReport{
        Legality::Illegal,
        "dependence distance " + render(scan.first_vector) + " between refs " +
            std::to_string(scan.first_ref_a) + " and " + std::to_string(scan.first_ref_b) +
            " is lexicographically positive but has a negative component: "
            "nest is not fully permutable"};
  }
  if (!scan.exact)
    return LegalityReport{Legality::Unknown,
                          "dependence enumeration budget exhausted; raise "
                          "DependenceOptions::enumerate_cap for an exact verdict"};
  return LegalityReport{Legality::Legal, "all dependence distances non-negative"};
}

std::vector<std::vector<i64>> risky_dependence_vectors(const ir::LoopNest& nest,
                                                       const DependenceOptions& options) {
  const NestScan scan = scan_nest(nest, options);
  expects(scan.exact,
          "risky_dependence_vectors: dependence enumeration budget exhausted");
  return {scan.risky.begin(), scan.risky.end()};
}

// ---------------------------------------------------------------------------
// Lattice-scan oracle (the pre-polyhedral implementation, kept for
// cross-checking): exact for uniformly generated pairs whenever the
// coefficient window covers the realizable range.
// ---------------------------------------------------------------------------

namespace {

/// Enumerate realizable lex-positive dependence distances of the nest and
/// call `fn(r, ref_a, ref_b)`; returns false on a non-uniform pair.
bool scan_dependences(const ir::LoopNest& nest, i64 lattice_bound,
                      const std::function<void(std::span<const i64>, std::size_t,
                                               std::size_t)>& fn) {
  const std::vector<i64> trips = nest.trip_counts();
  const std::size_t depth = nest.depth();

  for (std::size_t a = 0; a < nest.refs.size(); ++a) {
    for (std::size_t b = 0; b < nest.refs.size(); ++b) {
      if (!dependence_pair(nest.refs[a], nest.refs[b])) continue;

      const reuse::SubscriptForm fa = reuse::subscript_form(nest, nest.refs[a]);
      const reuse::SubscriptForm fb = reuse::subscript_form(nest, nest.refs[b]);
      if (!(fa.h == fb.h)) return false;

      // Distance lattice: r0 + span(ker H), H·r0 = c_B - c_A.
      std::vector<i64> rhs(fa.c.size());
      for (std::size_t d = 0; d < rhs.size(); ++d) rhs[d] = fb.c[d] - fa.c[d];
      const auto r0 = reuse::solve_integer(fa.h, rhs);
      if (!r0) continue;  // no dependence between this pair
      const auto kernel = reuse::nullspace_basis(fa.h);

      // Scan lattice coefficients in [-B, B]^|kernel|.
      std::vector<i64> lambda(kernel.size(), -lattice_bound);
      while (true) {
        std::vector<i64> r = *r0;
        for (std::size_t v = 0; v < kernel.size(); ++v)
          for (std::size_t d = 0; d < depth; ++d) r[d] += lambda[v] * kernel[v][d];

        if (realizable(r, trips) && lex_positive(r)) fn(r, a, b);

        // Odometer over lambda; empty kernel means a single iteration.
        std::size_t v = 0;
        for (; v < lambda.size(); ++v) {
          if (lambda[v] < lattice_bound) {
            ++lambda[v];
            std::fill(lambda.begin(), lambda.begin() + (std::ptrdiff_t)v, -lattice_bound);
            break;
          }
        }
        if (v == lambda.size()) break;
      }
    }
  }
  return true;
}

}  // namespace

LegalityReport lattice_check_tiling_legality(const ir::LoopNest& nest, i64 lattice_bound) {
  LegalityReport report{Legality::Legal, "all dependence distances non-negative"};
  const bool uniform = scan_dependences(
      nest, lattice_bound, [&](std::span<const i64> r, std::size_t a, std::size_t b) {
        if (report.verdict == Legality::Legal && has_negative(r)) {
          report.verdict = Legality::Illegal;
          report.detail = "dependence distance " + render(r) + " between refs " +
                          std::to_string(a) + " and " + std::to_string(b) +
                          " is lexicographically positive but has a negative component: "
                          "nest is not fully permutable";
        }
      });
  if (!uniform)
    return LegalityReport{Legality::Unknown, "non-uniform dependence pair encountered"};
  return report;
}

std::vector<std::vector<i64>> lattice_risky_dependence_vectors(const ir::LoopNest& nest,
                                                               i64 lattice_bound) {
  std::vector<std::vector<i64>> risky;
  const bool uniform = scan_dependences(
      nest, lattice_bound, [&](std::span<const i64> r, std::size_t, std::size_t) {
        if (!has_negative(r)) return;
        std::vector<i64> v(r.begin(), r.end());
        for (const auto& existing : risky)
          if (existing == v) return;
        risky.push_back(std::move(v));
      });
  expects(uniform, "lattice_risky_dependence_vectors: non-uniform dependence pair (unsupported)");
  return risky;
}

namespace {

/// Is dependence r violated at dimension m under this tile vector?
bool violated_at(std::span<const i64> r, std::span<const i64> trips, std::span<const i64> tiles,
                 std::size_t m) {
  if (r[m] >= 0) return false;
  if (tiles[m] >= trips[m]) return false;  // dimension not really tiled
  for (std::size_t e = 0; e < m; ++e) {
    if (r[e] > tiles[e] - 1) return false;  // earlier dim must cross a tile forward
  }
  return true;
}

}  // namespace

bool tile_vector_legal(std::span<const std::vector<i64>> risky_deps,
                       std::span<const i64> trips, std::span<const i64> tiles) {
  for (const std::vector<i64>& r : risky_deps) {
    for (std::size_t m = 0; m < r.size(); ++m) {
      if (violated_at(r, trips, tiles, m)) return false;
    }
  }
  return true;
}

double tile_vector_violation(std::span<const std::vector<i64>> risky_deps,
                             std::span<const i64> trips, std::span<const i64> tiles) {
  double total = 0.0;
  for (const std::vector<i64>& r : risky_deps) {
    for (std::size_t m = 0; m < r.size(); ++m) {
      if (!violated_at(r, trips, tiles, m)) continue;
      // Cheapest single-dimension repair, as a fraction of that domain:
      // raise T_m to U_m (untile the violating dimension) ...
      double repair = (double)(trips[m] - tiles[m]) / (double)trips[m];
      // ... or shrink an earlier forward dimension e to T_e <= r_e so the
      // pair must cross an e-tile boundary forward.
      for (std::size_t e = 0; e < m; ++e) {
        if (r[e] > 0 && tiles[e] > r[e]) {
          repair = std::min(repair, (double)(tiles[e] - r[e]) / (double)trips[e]);
        }
      }
      total += 1.0 + repair;
    }
  }
  return total;
}

}  // namespace cmetile::transform

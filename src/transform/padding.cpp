#include "transform/padding.hpp"

#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::transform {

PadVector PadVector::none(const ir::LoopNest& nest) {
  PadVector p;
  p.intra.assign(nest.arrays.size(), 0);
  p.inter.assign(nest.arrays.size(), 0);
  return p;
}

std::string PadVector::to_string(const ir::LoopNest& nest) const {
  std::ostringstream out;
  for (std::size_t a = 0; a < nest.arrays.size(); ++a) {
    if (a) out << ' ';
    out << nest.arrays[a].name << ":+" << intra[a] << "e/+" << inter[a] << "L";
  }
  return out.str();
}

ir::LayoutOptions padded_layout_options(const ir::LoopNest& nest, const PadVector& pads,
                                        i64 alignment) {
  expects(pads.intra.size() == nest.arrays.size() && pads.inter.size() == nest.arrays.size(),
          "padded_layout_options: one pad pair per array required");
  ir::LayoutOptions options;
  options.alignment = alignment;
  options.padding.resize(nest.arrays.size());
  for (std::size_t a = 0; a < nest.arrays.size(); ++a) {
    expects(pads.intra[a] >= 0 && pads.inter[a] >= 0, "padding must be non-negative");
    ir::ArrayPadding& pad = options.padding[a];
    pad.dim_pad.assign(nest.arrays[a].rank(), 0);
    pad.dim_pad[0] = pads.intra[a];
    pad.pre_gap_lines = pads.inter[a];
  }
  return options;
}

ir::MemoryLayout padded_layout(const ir::LoopNest& nest, const PadVector& pads, i64 alignment) {
  return ir::MemoryLayout(nest, padded_layout_options(nest, pads, alignment));
}

}  // namespace cmetile::transform

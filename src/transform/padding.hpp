#pragma once
// Padding (paper §4.3 / Table 3, after Vera, González & Llosa,
// UPC-DAC-2000-71): a data-layout transformation that removes conflict
// misses loop tiling cannot touch. Two families of parameters, both
// searched by the same genetic algorithm that searches tile sizes:
//
//  * intra-array padding  — extra elements appended to the leading
//    (fastest-varying) dimension, changing the column stride;
//  * inter-array padding  — extra memory lines inserted before an array's
//    base address, shifting its cache-set alignment.

#include <string>
#include <vector>

#include "ir/layout.hpp"
#include "ir/nest.hpp"

namespace cmetile::transform {

/// Padding parameters: one (intra, inter) pair per array of the nest.
struct PadVector {
  std::vector<i64> intra;  ///< extra elements on the leading dimension
  std::vector<i64> inter;  ///< extra lines before the base address

  static PadVector none(const ir::LoopNest& nest);

  std::string to_string(const ir::LoopNest& nest) const;
  friend bool operator==(const PadVector&, const PadVector&) = default;
};

/// Translate pad parameters into layout options (alignment = one line by
/// default so inter pads move bases in line-sized steps).
ir::LayoutOptions padded_layout_options(const ir::LoopNest& nest, const PadVector& pads,
                                        i64 alignment = 128);

/// Convenience: build the padded layout directly.
ir::MemoryLayout padded_layout(const ir::LoopNest& nest, const PadVector& pads,
                               i64 alignment = 128);

}  // namespace cmetile::transform

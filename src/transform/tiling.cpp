#include "transform/tiling.hpp"

#include <sstream>

#include "cache/simulator.hpp"
#include "support/contracts.hpp"

namespace cmetile::transform {

TileVector TileVector::untiled(const ir::LoopNest& nest) {
  return TileVector{nest.trip_counts()};
}

TileVector TileVector::clamped(std::vector<i64> t, const ir::LoopNest& nest) {
  expects(t.size() == nest.depth(), "TileVector::clamped: arity mismatch");
  const std::vector<i64> trips = nest.trip_counts();
  for (std::size_t d = 0; d < t.size(); ++d) {
    if (t[d] < 1) t[d] = 1;
    if (t[d] > trips[d]) t[d] = trips[d];
  }
  return TileVector{std::move(t)};
}

std::string TileVector::to_string() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t d = 0; d < t.size(); ++d) {
    if (d) out << ',';
    out << t[d];
  }
  out << ')';
  return out.str();
}

TiledSpace::TiledSpace(std::vector<i64> trips, TileVector tiles)
    : trips_(std::move(trips)), tiles_(std::move(tiles.t)) {
  expects(trips_.size() == tiles_.size(), "TiledSpace: arity mismatch");
  tile_counts_.resize(trips_.size());
  last_sizes_.resize(trips_.size());
  for (std::size_t d = 0; d < trips_.size(); ++d) {
    expects(trips_[d] >= 1, "TiledSpace: empty dimension");
    expects(tiles_[d] >= 1 && tiles_[d] <= trips_[d], "TiledSpace: tile size out of [1, U]");
    tile_counts_[d] = ceil_div(trips_[d], tiles_[d]);
    last_sizes_[d] = trips_[d] - (tile_counts_[d] - 1) * tiles_[d];
  }
}

bool TiledSpace::divisible() const {
  for (std::size_t d = 0; d < trips_.size(); ++d)
    if (last_sizes_[d] != tiles_[d]) return false;
  return true;
}

std::vector<i64> TiledSpace::to_tiled(std::span<const i64> z) const {
  std::vector<i64> to;
  to_tiled_into(z, to);
  return to;
}

std::vector<i64> TiledSpace::to_original(std::span<const i64> to) const {
  expects(to.size() == 2 * trips_.size(), "TiledSpace::to_original: arity mismatch");
  std::vector<i64> z(trips_.size());
  for (std::size_t d = 0; d < trips_.size(); ++d) {
    z[d] = to[d] * tiles_[d] + to[trips_.size() + d];
  }
  return z;
}

void TiledSpace::for_each_point_tiled(
    const std::function<void(std::span<const i64> z)>& fn) const {
  const std::size_t k = trips_.size();
  std::vector<i64> t(k, 0);
  std::vector<i64> z(k, 0);

  // Odometer over tiles; inside each tile an odometer over offsets.
  while (true) {
    // Visit one tile.
    std::vector<i64> o(k, 0);
    std::vector<i64> o_hi(k);
    for (std::size_t d = 0; d < k; ++d) o_hi[d] = o_extent(d, t[d]) - 1;
    while (true) {
      for (std::size_t d = 0; d < k; ++d) z[d] = t[d] * tiles_[d] + o[d];
      fn(z);
      std::size_t d = k;
      bool done = true;
      while (d > 0) {
        --d;
        if (o[d] < o_hi[d]) {
          ++o[d];
          done = false;
          break;
        }
        o[d] = 0;
      }
      if (done) break;
    }
    // Advance tile odometer.
    std::size_t d = k;
    bool done = true;
    while (d > 0) {
      --d;
      if (t[d] < tile_counts_[d] - 1) {
        ++t[d];
        done = false;
        break;
      }
      t[d] = 0;
    }
    if (done) return;
  }
}

i64 TiledSpace::convex_regions() const {
  i64 regions = 1;
  for (std::size_t d = 0; d < trips_.size(); ++d) {
    if (last_sizes_[d] != tiles_[d]) regions *= 2;
  }
  return regions;
}

std::string tiled_source(const ir::LoopNest& nest, const TileVector& tiles) {
  std::ostringstream out;
  std::string indent;
  std::vector<std::string> names;
  names.reserve(nest.depth());
  for (const ir::Loop& loop : nest.loops) names.push_back(loop.name);
  // Affine bounds: the tile loops stride over the bounding box; the point
  // loops clamp against the affine bound (max for lower, min for upper).
  const auto lower_text = [&](const ir::Loop& loop) {
    return loop.has_affine_lower() ? loop.lower_bound.to_string(names)
                                   : std::to_string(loop.lower);
  };
  const auto upper_text = [&](const ir::Loop& loop) {
    return loop.has_affine_upper() ? loop.upper_bound.to_string(names)
                                   : std::to_string(loop.upper);
  };
  // Tile loops (skip dimensions left untiled for readability).
  for (std::size_t d = 0; d < nest.depth(); ++d) {
    const ir::Loop& loop = nest.loops[d];
    if (tiles.t[d] >= loop.trip_count()) continue;
    out << indent << "do " << loop.name << loop.name << " = " << loop.lower << ", "
        << loop.upper << ", " << tiles.t[d] << '\n';
    indent += "  ";
  }
  for (std::size_t d = 0; d < nest.depth(); ++d) {
    const ir::Loop& loop = nest.loops[d];
    if (tiles.t[d] >= loop.trip_count()) {
      out << indent << "do " << loop.name << " = " << lower_text(loop) << ", "
          << upper_text(loop) << '\n';
    } else {
      std::string lo = loop.name + loop.name;
      if (loop.has_affine_lower()) lo = "max(" + lo + ", " + lower_text(loop) + ")";
      std::string hi = loop.name + loop.name + "+" + std::to_string(tiles.t[d] - 1);
      hi = "min(" + hi + ", " + upper_text(loop) + ")";
      out << indent << "do " << loop.name << " = " << lo << ", " << hi << '\n';
    }
    indent += "  ";
  }
  out << indent << "<body>\n";
  return out.str();
}

std::vector<cache::MissStats> simulate_tiled(const ir::LoopNest& nest,
                                             const ir::MemoryLayout& layout,
                                             const cache::CacheConfig& config,
                                             const TileVector& tiles) {
  const TiledSpace space(nest.trip_counts(), tiles);
  cache::Simulator sim(config);
  std::vector<cache::MissStats> per_ref(nest.refs.size() + 1);

  std::vector<ir::LinExpr> addr;
  addr.reserve(nest.refs.size());
  for (const ir::Reference& ref : nest.refs) addr.push_back(layout.address_expr(nest, ref));

  // Non-rectangular nests: the tiled walk covers the bounding box; skip
  // box points outside the actual (triangular/trapezoidal) domain. Tiled
  // execution order over the surviving points is preserved.
  const bool rectangular = nest.rectangular();
  std::vector<i64> point(nest.depth());
  space.for_each_point_tiled([&](std::span<const i64> z) {
    for (std::size_t d = 0; d < nest.depth(); ++d) point[d] = nest.loops[d].lower + z[d];
    if (!rectangular && !nest.contains(point)) return;
    for (std::size_t r = 0; r < nest.refs.size(); ++r) {
      const bool is_write = nest.refs[r].kind == ir::AccessKind::Write;
      const cache::AccessOutcome outcome = sim.access(addr[r].eval(point), is_write);
      cache::MissStats& s = per_ref[r];
      ++s.accesses;
      if (outcome == cache::AccessOutcome::ColdMiss) ++s.cold_misses;
      if (outcome == cache::AccessOutcome::ReplacementMiss) ++s.replacement_misses;
      const cache::EvictedLine& evicted = sim.last_eviction();
      if (evicted.valid) {
        if (evicted.dirty)
          ++s.dirty_evictions;
        else
          ++s.clean_evictions;
      }
    }
  });
  for (std::size_t r = 0; r < nest.refs.size(); ++r) per_ref.back() += per_ref[r];
  return per_ref;
}

}  // namespace cmetile::transform

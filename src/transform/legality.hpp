#pragma once
// Tiling legality: rectangular tiling of a nest is legal when the nest is
// *fully permutable*, i.e. every data-dependence distance vector is
// component-wise non-negative. The paper assumes its kernels are tileable;
// we make that assumption checkable so the optimizer can refuse an illegal
// request instead of silently producing a wrong transformation.
//
// The test covers uniformly generated dependences (pairs of references to
// the same array with identical subscript matrices — every dependence in
// the shipped kernels is of this form): the dependence distances form a
// lattice r0 + L(ker H), which we scan over a bounded set of lattice
// coefficients. Non-uniform pairs are reported as "unknown" and treated
// conservatively as illegal unless the caller overrides.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ir/nest.hpp"

namespace cmetile::transform {

enum class Legality : std::uint8_t { Legal, Illegal, Unknown };

struct LegalityReport {
  Legality verdict = Legality::Legal;
  /// Human-readable explanation (offending dependence, if any).
  std::string detail;
};

/// Check full permutability of the nest (legality of rectangular tiling
/// with *every* tile vector). `lattice_bound` bounds the lattice-
/// coefficient scan (default 3 covers the shipped kernels with margin).
LegalityReport check_tiling_legality(const ir::LoopNest& nest, i64 lattice_bound = 3);

/// Realizable lexicographically-positive dependence distance vectors that
/// carry a negative component ("risky": they constrain which tile vectors
/// are legal). Empty for fully permutable nests.
std::vector<std::vector<i64>> risky_dependence_vectors(const ir::LoopNest& nest,
                                                       i64 lattice_bound = 3);

/// Per-tile-vector legality. Tiling reorders iterations so that a
/// dependence d is violated iff some dimension m has d_m < 0, dimension m
/// is really tiled (T_m < U_m), and every earlier dimension e can keep
/// source and sink in the same tile (d_e <= T_e - 1). Untiled dimensions
/// never cross tiles, and whenever an earlier dimension must cross a tile
/// boundary forward the source stays ordered first.
bool tile_vector_legal(std::span<const std::vector<i64>> risky_deps,
                       std::span<const i64> trips, std::span<const i64> tiles);

/// Graded illegality magnitude: 0.0 iff the tile vector is legal;
/// otherwise, per violated (dependence, dimension) pair, 1.0 plus the
/// cheapest single-dimension repair as a fraction of that dimension's
/// domain (untile the violating dimension, or shrink an earlier
/// forward-dependence dimension until the pair must cross tiles). The GA's
/// illegal-tile penalty scales with this, so selection can climb toward
/// the legal region even in an all-illegal population (a constant penalty
/// makes avg == best and trips the convergence test prematurely).
double tile_vector_violation(std::span<const std::vector<i64>> risky_deps,
                             std::span<const i64> trips, std::span<const i64> tiles);

}  // namespace cmetile::transform

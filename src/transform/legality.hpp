#pragma once
// Tiling legality: rectangular tiling of a nest is legal when the nest is
// *fully permutable*, i.e. every data-dependence distance vector is
// component-wise non-negative. The paper assumes its kernels are tileable;
// we make that assumption checkable so the optimizer can refuse an illegal
// request instead of silently producing a wrong transformation.
//
// The primary engine is polyhedral (DESIGN.md §15): for every pair of
// references to the same array (at least one a write) we build the
// dependence polyhedron over (r, i) — i ranges over the iteration domain,
// i + r does too, and both references touch the same array element — and
// interrogate it with Fourier–Motzkin projection:
//
//  * a provably empty "risky" region (leading distance component positive,
//    some later component negative) certifies full permutability — exact
//    even for non-uniform pairs (different subscript matrices) and for
//    triangular/trapezoidal domains;
//  * otherwise the integer risky distances are enumerated together with an
//    in-domain witness iteration, yielding an exact Illegal certificate;
//  * only a blown work budget degrades the verdict to Unknown.
//
// The older bounded lattice scan over uniformly generated pairs is kept as
// the `lattice_*` cross-check oracle (see dependence_cross_check_test).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ir/nest.hpp"

namespace cmetile::transform {

enum class Legality : std::uint8_t { Legal, Illegal, Unknown };

struct LegalityReport {
  Legality verdict = Legality::Legal;
  /// Human-readable explanation (offending dependence, if any).
  std::string detail;
};

/// Budgets for the polyhedral dependence engine. The defaults decide every
/// shipped kernel exactly with orders-of-magnitude headroom; exhaustion is
/// reported (Unknown / contract error), never silently truncated.
struct DependenceOptions {
  /// DFS budget (candidate coordinate values tried) per risky-distance
  /// enumeration, integer witnesses included.
  i64 enumerate_cap = i64(1) << 20;
};

/// Check full permutability of the nest with the exact polyhedral engine.
LegalityReport check_tiling_legality(const ir::LoopNest& nest,
                                     const DependenceOptions& options = {});

/// Realizable lexicographically-positive dependence distance vectors that
/// carry a negative component ("risky": they constrain which tile vectors
/// are legal). Empty for fully permutable nests. Exact; throws
/// contract_error if the enumeration budget is exhausted.
std::vector<std::vector<i64>> risky_dependence_vectors(const ir::LoopNest& nest,
                                                       const DependenceOptions& options = {});

/// Cross-check oracle: the pre-polyhedral bounded lattice scan. Covers
/// uniformly generated dependences (pairs with identical subscript
/// matrices) by scanning lattice coefficients in [-lattice_bound,
/// lattice_bound]; non-uniform pairs are reported Unknown.
LegalityReport lattice_check_tiling_legality(const ir::LoopNest& nest, i64 lattice_bound = 3);

/// Lattice-scan counterpart of `risky_dependence_vectors`; throws on
/// non-uniform pairs. Complete only when `lattice_bound` covers the
/// realizable coefficient range (true for the shipped kernels at 3).
std::vector<std::vector<i64>> lattice_risky_dependence_vectors(const ir::LoopNest& nest,
                                                               i64 lattice_bound = 3);

/// Per-tile-vector legality. Tiling reorders iterations so that a
/// dependence d is violated iff some dimension m has d_m < 0, dimension m
/// is really tiled (T_m < U_m), and every earlier dimension e can keep
/// source and sink in the same tile (d_e <= T_e - 1). Untiled dimensions
/// never cross tiles, and whenever an earlier dimension must cross a tile
/// boundary forward the source stays ordered first.
bool tile_vector_legal(std::span<const std::vector<i64>> risky_deps,
                       std::span<const i64> trips, std::span<const i64> tiles);

/// Graded illegality magnitude: 0.0 iff the tile vector is legal;
/// otherwise, per violated (dependence, dimension) pair, 1.0 plus the
/// cheapest single-dimension repair as a fraction of that dimension's
/// domain (untile the violating dimension, or shrink an earlier
/// forward-dependence dimension until the pair must cross tiles). The GA's
/// illegal-tile penalty scales with this, so selection can climb toward
/// the legal region even in an all-illegal population (a constant penalty
/// makes avg == best and trips the convergence test prematurely).
double tile_vector_violation(std::span<const std::vector<i64>> risky_deps,
                             std::span<const i64> trips, std::span<const i64> tiles);

}  // namespace cmetile::transform

#include "serve/queue.hpp"

#include <algorithm>

namespace cmetile::serve {

void RequestQueue::push_queued(i64 client, const std::string& key, bool front) {
  if (std::find(client_order_.begin(), client_order_.end(), client) == client_order_.end())
    client_order_.push_back(client);
  std::deque<std::string>& queue = client_queues_[client];
  if (front)
    queue.push_front(key);
  else
    queue.push_back(key);
  ++queued_count_;
}

Admit RequestQueue::submit(const Waiter& waiter, const sweep::Fingerprint& fingerprint,
                           const core::OptimizeRequest& request) {
  const std::string key = fingerprint.hex();
  if (auto it = pending_.find(key); it != pending_.end()) {
    it->second.waiters.push_back(waiter);
    return Admit::Coalesced;
  }
  if (queued_count_ >= max_queued_) return Admit::Rejected;
  Computation computation;
  computation.fingerprint = fingerprint;
  computation.request = request;
  computation.waiters.push_back(waiter);
  computation.initiator_client = waiter.client;
  pending_.emplace(key, std::move(computation));
  push_queued(waiter.client, key, /*front=*/false);
  return Admit::Cold;
}

std::optional<sweep::Fingerprint> RequestQueue::schedule() {
  if (queued_count_ == 0 || client_order_.empty()) return std::nullopt;
  for (std::size_t step = 0; step < client_order_.size(); ++step) {
    const std::size_t at = (cursor_ + step) % client_order_.size();
    std::deque<std::string>& queue = client_queues_[client_order_[at]];
    if (queue.empty()) continue;
    const std::string key = std::move(queue.front());
    queue.pop_front();
    --queued_count_;
    cursor_ = (at + 1) % client_order_.size();  // next client's turn
    auto it = pending_.find(key);
    if (it == pending_.end()) continue;  // dropped while queued (defensive)
    it->second.running = true;
    return it->second.fingerprint;
  }
  return std::nullopt;
}

const core::OptimizeRequest* RequestQueue::request_of(
    const sweep::Fingerprint& fingerprint) const {
  const auto it = pending_.find(fingerprint.hex());
  return it == pending_.end() ? nullptr : &it->second.request;
}

std::vector<Waiter> RequestQueue::complete(const sweep::Fingerprint& fingerprint) {
  const auto it = pending_.find(fingerprint.hex());
  if (it == pending_.end()) return {};
  if (!it->second.running) {
    // Still queued (complete() without schedule() — the in-process drain
    // path does this): remove the queue entry too.
    std::deque<std::string>& queue = client_queues_[it->second.initiator_client];
    const auto at = std::find(queue.begin(), queue.end(), it->first);
    if (at != queue.end()) {
      queue.erase(at);
      --queued_count_;
    }
  }
  std::vector<Waiter> waiters = std::move(it->second.waiters);
  pending_.erase(it);
  return waiters;
}

void RequestQueue::requeue(const sweep::Fingerprint& fingerprint) {
  const auto it = pending_.find(fingerprint.hex());
  if (it == pending_.end() || !it->second.running) return;
  it->second.running = false;
  push_queued(it->second.initiator_client, it->first, /*front=*/true);
}

void RequestQueue::drop_client(i64 client) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    Computation& computation = it->second;
    std::erase_if(computation.waiters, [client](const Waiter& w) { return w.client == client; });
    if (computation.waiters.empty() && !computation.running) {
      std::deque<std::string>& queue = client_queues_[computation.initiator_client];
      const auto at = std::find(queue.begin(), queue.end(), it->first);
      if (at != queue.end()) {
        queue.erase(at);
        --queued_count_;
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cmetile::serve

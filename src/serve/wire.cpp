#include "serve/wire.hpp"

#include "sweep/json_codec.hpp"
#include "sweep/request_json.hpp"

namespace cmetile::serve {

using sweep::Json;

std::string reply_line(i64 id, std::string_view status, const Json& payload) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("ok", Json::boolean(true));
  msg.set("status", Json::string(std::string(status)));
  msg.set("response", payload);
  return msg.dump();
}

std::string reject_line(i64 id, const std::string& error, i64 retry_after_ms) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("ok", Json::boolean(false));
  msg.set("error", Json::string(error));
  msg.set("retry_after_ms", Json::integer(retry_after_ms));
  return msg.dump();
}

std::string fail_line(i64 id, const std::string& error) {
  Json msg = Json::object();
  msg.set("id", Json::integer(id));
  msg.set("ok", Json::boolean(false));
  msg.set("error", Json::string(error));
  return msg.dump();
}

std::optional<Reply> reply_of_line(std::string_view line) {
  const std::optional<Json> json = Json::parse(std::string(line));
  if (!json) return std::nullopt;
  Reply reply;
  bool ok = false;
  if (!sweep::get_int(*json, "id", reply.id) || !sweep::get_bool(*json, "ok", ok))
    return std::nullopt;
  reply.ok = ok;
  if (!ok) {
    if (!sweep::get_string(*json, "error", reply.error)) return std::nullopt;
    sweep::get_int(*json, "retry_after_ms", reply.retry_after_ms);  // optional
    return reply;
  }
  const Json* payload = json->find("response");
  if (!sweep::get_string(*json, "status", reply.status) || payload == nullptr)
    return std::nullopt;
  reply.response = sweep::response_of_json(*payload);
  if (!reply.response) return std::nullopt;
  return reply;
}

}  // namespace cmetile::serve

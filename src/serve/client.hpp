#pragma once
// Client side of cmetile-serve: connect to a daemon, speak the client role
// of the line protocol (hello with "client":true, then job lines), and
// read reply lines back. One ServeClient is one connection; it is
// single-threaded but supports multiple outstanding requests (send
// several ids, then collect replies in whatever order the daemon answers
// — warm replies overtake cold ones by design).

#include <memory>
#include <optional>
#include <string>

#include "core/optimize.hpp"
#include "serve/wire.hpp"

namespace cmetile::sweep {
class Channel;
}

namespace cmetile::serve {

class ServeClient {
 public:
  /// Connect (retrying up to wait_seconds — the daemon may still be
  /// binding) and send the client hello. nullptr when unreachable or on
  /// non-POSIX platforms.
  static std::unique_ptr<ServeClient> connect(const std::string& spec,
                                              double wait_seconds = 15.0);

  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one request under a fresh id; returns the id, or -1 when the
  /// connection is gone.
  i64 send(const core::OptimizeRequest& request);

  /// Next reply in arrival order (a reply buffered by ask() counts).
  /// timeout_seconds <= 0 blocks until the daemon answers or hangs up;
  /// nullopt on timeout, EOF, or an unparseable reply line.
  std::optional<Reply> receive(double timeout_seconds = 0.0);

  /// send() + wait for THAT id's reply; replies to other outstanding ids
  /// arriving first are buffered for later receive()/ask() calls.
  std::optional<Reply> ask(const core::OptimizeRequest& request, double timeout_seconds = 0.0);

 private:
  explicit ServeClient(std::unique_ptr<sweep::Channel> channel);

  /// One raw reply line off the wire (buffer-aware); nullopt on
  /// timeout/EOF.
  std::optional<Reply> read_reply(double timeout_seconds);

  std::unique_ptr<sweep::Channel> channel_;
  std::string buffer_;
  std::vector<Reply> pending_;  ///< replies that overtook an ask()
  i64 next_id_ = 0;
};

}  // namespace cmetile::serve

#pragma once
// Admission control, fair scheduling, and request coalescing for
// cmetile-serve — the pure bookkeeping core of the daemon, no I/O, so the
// policies are unit-testable without sockets.
//
// One *computation* per distinct request fingerprint: any number of
// client requests (waiters) attach to it. The first waiter is the
// initiator (its reply is "cold"); later arrivals coalesce (replies
// "coalesced") whether the computation is still queued or already running
// on a worker — two clients racing the same fingerprint can never trigger
// two GA runs.
//
// Admission bounds the number of QUEUED computations (running ones have
// already been paid for): a submit that would start computation number
// max_queued+1 is rejected and the client told to retry. Coalescing and
// warm hits are never rejected — they add no work.
//
// Fairness is per-client round-robin over computation initiators: the
// scheduler pops the oldest queued computation of each client in turn, so
// a client flooding the queue delays its own requests, not everyone
// else's.

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/optimize.hpp"
#include "sweep/cell.hpp"  // Fingerprint

namespace cmetile::serve {

/// One client request attached to a computation. `arrival_us` (trace
/// timebase) lets the server stamp per-request spans at reply time.
struct Waiter {
  i64 client = -1;      ///< server-assigned client serial
  i64 request_id = -1;  ///< the id the client sent (echoed in the reply)
  i64 arrival_us = 0;
};

enum class Admit {
  Cold,       ///< new computation queued; this waiter is the initiator
  Coalesced,  ///< joined an existing queued/running computation
  Rejected,   ///< queue full; nothing recorded
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t max_queued) : max_queued_(max_queued) {}

  Admit submit(const Waiter& waiter, const sweep::Fingerprint& fingerprint,
               const core::OptimizeRequest& request);

  /// Fairly pick the next queued computation and mark it running;
  /// nullopt when nothing is queued.
  std::optional<sweep::Fingerprint> schedule();

  /// The request of a known (queued or running) computation; nullptr
  /// otherwise. Valid until complete() removes the computation.
  const core::OptimizeRequest* request_of(const sweep::Fingerprint& fingerprint) const;

  /// Computation finished (or failed): remove it and surface its waiters,
  /// initiator first. Empty when the fingerprint is unknown (e.g. every
  /// waiter disconnected while it ran).
  std::vector<Waiter> complete(const sweep::Fingerprint& fingerprint);

  /// A running computation lost its worker: put it back at the FRONT of
  /// its initiator's queue (it has waited longest). No-op when unknown.
  void requeue(const sweep::Fingerprint& fingerprint);

  /// Client disconnected: detach its waiters everywhere. A queued
  /// computation left with no waiters is dropped (nobody wants it); a
  /// running one keeps going (the result still warms the cache).
  void drop_client(i64 client);

  std::size_t queued() const { return queued_count_; }
  std::size_t running() const { return pending_.size() - queued_count_; }
  bool idle() const { return pending_.empty(); }

 private:
  struct Computation {
    sweep::Fingerprint fingerprint;
    core::OptimizeRequest request;
    std::vector<Waiter> waiters;  ///< front = initiator
    bool running = false;
    i64 initiator_client = -1;
  };

  void push_queued(i64 client, const std::string& key, bool front);

  std::size_t max_queued_;
  std::size_t queued_count_ = 0;
  std::unordered_map<std::string, Computation> pending_;  ///< key = fp.hex()
  /// Per-client FIFO of queued (not running) computation keys + the
  /// round-robin client order (first-submit order; cursor wraps).
  std::unordered_map<i64, std::deque<std::string>> client_queues_;
  std::vector<i64> client_order_;
  std::size_t cursor_ = 0;
};

}  // namespace cmetile::serve

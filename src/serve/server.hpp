#pragma once
// cmetile-serve: tiling-as-a-service (DESIGN.md §18). One daemon process
// listens on a single TCP port and speaks the sweep line protocol
// (sweep/protocol.hpp) with two kinds of peers, told apart by their
// hello: workers (plain hello — they RECEIVE request jobs) and clients
// (hello with "client":true — they SEND request jobs and get reply lines,
// serve/wire.hpp).
//
// Request path:
//   warm  — the request fingerprint is in the content-addressed
//           ResultCache: the cached response bytes are forwarded
//           immediately, no GA run, microseconds.
//   cold  — admitted into the RequestQueue (bounded; overflow rejects
//           with a retry_after_ms hint), scheduled per-client fair, and
//           dispatched to an idle worker. The result is cached, so the
//           next identical request anywhere in the fleet is warm.
//   coalesced — an identical request is already queued or in flight:
//           attach, share the single computation, reply to both.
//
// Degradation: a worker that dies mid-request gets its computation
// requeued; when no ready workers remain, the daemon computes queued
// requests in-process (synchronously — admission control bounds the
// damage) so a reply is never dropped. With no workers at all the daemon
// is a correct, if serial, single-node service.
//
// Observability: per-request spans (serve.request containing
// serve.enqueue/serve.schedule/serve.respond, emitted retroactively in
// end-time order — obs::trace_complete_event) plus warm/cold/coalesced/
// rejected counters and a queue-depth gauge in the registry; --metrics
// writes a "cmetile-serve-metrics-v1" report reconciling them
// (tools/check_trace.py serve).

#include <functional>
#include <iosfwd>
#include <string>

#include "support/cli.hpp"  // kDefaultCacheDir

namespace cmetile::serve {

struct ServeOptions {
  std::string listen;  ///< "host:port"; port 0 = ephemeral (required)
  std::string cache_dir = kDefaultCacheDir;
  bool use_cache = true;  ///< false: every request is cold (no warm path)
  /// Admission bound: max QUEUED computations (running ones excluded).
  /// The bound keeps the in-process degradation path finite too.
  std::size_t queue_max = 64;
  i64 retry_after_ms = 250;  ///< backoff hint on admission reject
  /// Kill a worker whose in-flight request produced no line for this
  /// long (heartbeats refresh it); its computation is requeued. <= 0
  /// disables.
  double worker_timeout_seconds = 120.0;
  /// Exit after answering this many client requests (every reply line
  /// counts: ok, reject, malformed). 0 = serve forever. Tests and the CI
  /// smoke job use this for deterministic shutdown.
  i64 max_requests = 0;
  std::ostream* log = nullptr;
  /// Invoked with the bound "host:port" once listening (ephemeral port
  /// resolved) — tests and drivers connect workers/clients from here.
  std::function<void(const std::string&)> on_listen;
  /// Non-empty: enable the registry and write the serve metrics report
  /// here on shutdown.
  std::string metrics_path;
};

struct ServeStats {
  std::size_t requests = 0;   ///< reply lines sent to clients
  std::size_t warm = 0;       ///< answered from the cache
  std::size_t cold = 0;       ///< computed for the initiating request
  std::size_t coalesced = 0;  ///< shared another request's computation
  std::size_t rejected = 0;   ///< admission-control rejects
  std::size_t malformed = 0;  ///< unparseable / invalid request lines
  std::size_t failed = 0;     ///< computation errors surfaced to clients
  std::size_t computed_remote = 0;  ///< computations done by workers
  std::size_t computed_local = 0;   ///< in-process degradation computations
  std::size_t worker_failures = 0;  ///< workers killed/lost mid-request
};

/// Run the daemon until max_requests is reached (never returns when 0
/// unless the listener dies). Throws contract_error on an unusable
/// listen spec or cache directory.
ServeStats run_server(const ServeOptions& options);

}  // namespace cmetile::serve

#pragma once
// Client-facing reply lines of cmetile-serve. Clients send the same job
// framing the workers receive — {"id":N,"request":{...}} after a
// client-role hello (sweep/protocol.hpp) — and get back one reply line
// per request:
//
//   {"id":N,"ok":true,"status":"warm|cold|coalesced","response":{...}}
//   {"id":N,"ok":false,"error":"...","retry_after_ms":M}   admission reject
//   {"id":N,"ok":false,"error":"..."}                      malformed/failed
//
// `status` names how the daemon satisfied the request: "warm" from the
// content-addressed cache, "cold" computed for this request, "coalesced"
// sharing a computation another in-flight request triggered. A reject
// carries retry_after_ms as a backoff hint; the request was NOT queued.

#include <optional>
#include <string>

#include "core/optimize.hpp"
#include "sweep/json.hpp"

namespace cmetile::serve {

struct Reply {
  i64 id = -1;
  bool ok = false;
  std::string status;            ///< ok: "warm" / "cold" / "coalesced"
  std::string error;             ///< !ok: reason
  i64 retry_after_ms = 0;        ///< !ok admission reject: backoff hint (0 = no hint)
  std::optional<core::OptimizeResponse> response;  ///< ok only
};

/// `payload` is the canonical response JSON (already encoded — the warm
/// path forwards cached bytes without re-encoding).
std::string reply_line(i64 id, std::string_view status, const sweep::Json& payload);
std::string reject_line(i64 id, const std::string& error, i64 retry_after_ms);
std::string fail_line(i64 id, const std::string& error);

/// Parse one reply line; nullopt on anything malformed (including an ok
/// reply whose response payload does not decode).
std::optional<Reply> reply_of_line(std::string_view line);

}  // namespace cmetile::serve

#include "serve/client.hpp"

#include <chrono>

#include "sweep/protocol.hpp"
#include "sweep/transport.hpp"

#ifdef __unix__
#include <poll.h>
#endif

namespace cmetile::serve {

ServeClient::ServeClient(std::unique_ptr<sweep::Channel> channel)
    : channel_(std::move(channel)) {}

ServeClient::~ServeClient() = default;

std::unique_ptr<ServeClient> ServeClient::connect(const std::string& spec,
                                                  double wait_seconds) {
  std::unique_ptr<sweep::Channel> channel = sweep::connect_channel(spec, wait_seconds);
  if (channel == nullptr) return nullptr;
  if (!channel->send_line(sweep::client_hello_line())) return nullptr;
  return std::unique_ptr<ServeClient>(new ServeClient(std::move(channel)));
}

i64 ServeClient::send(const core::OptimizeRequest& request) {
  const i64 id = next_id_++;
  if (channel_ == nullptr || !channel_->send_line(sweep::job_line(id, request))) return -1;
  return id;
}

std::optional<Reply> ServeClient::read_reply(double timeout_seconds) {
#ifdef __unix__
  using clock = std::chrono::steady_clock;
  const bool bounded = timeout_seconds > 0;
  const auto deadline = clock::now() + std::chrono::duration_cast<clock::duration>(
                                           std::chrono::duration<double>(
                                               bounded ? timeout_seconds : 0.0));
  while (channel_ != nullptr && channel_->read_fd() >= 0) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return reply_of_line(line);  // nullopt = protocol error, surfaced as-is
    }
    int timeout_ms = -1;
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - clock::now()).count();
      if (remaining <= 0) return std::nullopt;
      timeout_ms = (int)remaining + 1;
    }
    pollfd fd{channel_->read_fd(), POLLIN, 0};
    const int ready = ::poll(&fd, 1, timeout_ms);
    if (ready < 0) continue;  // EINTR
    if (ready == 0) return std::nullopt;
    char chunk[4096];
    const long n = channel_->read_some(chunk, sizeof chunk);
    if (n < 0) continue;
    if (n == 0) return std::nullopt;  // daemon hung up
    buffer_.append(chunk, (std::size_t)n);
  }
#else
  (void)timeout_seconds;
#endif
  return std::nullopt;
}

std::optional<Reply> ServeClient::receive(double timeout_seconds) {
  if (!pending_.empty()) {
    Reply reply = std::move(pending_.front());
    pending_.erase(pending_.begin());
    return reply;
  }
  return read_reply(timeout_seconds);
}

std::optional<Reply> ServeClient::ask(const core::OptimizeRequest& request,
                                      double timeout_seconds) {
  const i64 id = send(request);
  if (id < 0) return std::nullopt;
  while (true) {
    std::optional<Reply> reply = read_reply(timeout_seconds);
    if (!reply) return std::nullopt;
    if (reply->id == id) return reply;
    pending_.push_back(std::move(*reply));
  }
}

}  // namespace cmetile::serve

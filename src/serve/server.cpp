#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/queue.hpp"
#include "serve/wire.hpp"
#include "support/contracts.hpp"
#include "sweep/json_codec.hpp"
#include "sweep/metrics_json.hpp"
#include "sweep/protocol.hpp"
#include "sweep/request_json.hpp"
#include "sweep/result_cache.hpp"
#include "sweep/transport.hpp"

#ifdef __unix__
#include <poll.h>
#include <signal.h>
#endif

namespace cmetile::serve {

namespace {

using sweep::Json;

void log_line(const ServeOptions& options, const std::string& message) {
  if (options.log != nullptr) *options.log << message << "\n";
}

/// Per-worker telemetry for the metrics report, keyed by connection serial
/// (a reconnecting worker is a fresh process — see sweep/scheduler.cpp).
struct WorkerRecord {
  i64 pid = -1;
  std::string peer;
  std::size_t requests = 0;      ///< computations this worker completed
  obs::MetricsSnapshot metrics;  ///< latest cumulative snapshot
};

/// The --metrics report, mirroring the sweep's "cmetile-metrics-v1" shape:
/// serve totals, the daemon's own registry, each worker's last snapshot,
/// and the fleet merge — tools/check_trace.py serve reconciles
/// warm+cold+coalesced+rejected+malformed+failed == requests against it.
void write_serve_report(const ServeOptions& options, const ServeStats& stats,
                        const std::vector<WorkerRecord>& worker_records) {
  Json report = Json::object();
  report.set("schema", Json::string("cmetile-serve-metrics-v1"));

  Json serve = Json::object();
  serve.set("requests", Json::integer((i64)stats.requests));
  serve.set("warm", Json::integer((i64)stats.warm));
  serve.set("cold", Json::integer((i64)stats.cold));
  serve.set("coalesced", Json::integer((i64)stats.coalesced));
  serve.set("rejected", Json::integer((i64)stats.rejected));
  serve.set("malformed", Json::integer((i64)stats.malformed));
  serve.set("failed", Json::integer((i64)stats.failed));
  serve.set("computed_remote", Json::integer((i64)stats.computed_remote));
  serve.set("computed_local", Json::integer((i64)stats.computed_local));
  serve.set("worker_failures", Json::integer((i64)stats.worker_failures));
  report.set("serve", std::move(serve));

  const obs::MetricsSnapshot server_snap = obs::Registry::instance().snapshot();
  obs::MetricsSnapshot fleet = server_snap;
  Json workers = Json::array();
  for (std::size_t w = 0; w < worker_records.size(); ++w) {
    const WorkerRecord& record = worker_records[w];
    Json entry = Json::object();
    entry.set("id", Json::integer((i64)w));
    entry.set("pid", Json::integer(record.pid));
    entry.set("peer", Json::string(record.peer));
    entry.set("requests", Json::integer((i64)record.requests));
    entry.set("metrics", sweep::json_of_metrics(record.metrics));
    workers.push(std::move(entry));
    fleet.merge(record.metrics);
  }
  report.set("server", sweep::json_of_metrics(server_snap));
  report.set("fleet", sweep::json_of_metrics(fleet));
  report.set("workers", std::move(workers));

  std::ofstream out(options.metrics_path, std::ios::trunc);
  if (!out.is_open()) {
    log_line(options, "[serve] could not write metrics report to " + options.metrics_path);
    return;
  }
  out << report.dump() << "\n";
  log_line(options, "[serve] metrics report: " + options.metrics_path);
}

#ifdef __unix__

/// Upper bound on one peer line (requests and responses are a few KB); a
/// peer exceeding it without a newline is babbling and dropped.
constexpr std::size_t kMaxPeerLineBytes = 1 << 20;

/// A connected peer that never identifies itself (no hello) is dropped
/// after this long — it holds an fd but can never do protocol work.
constexpr std::chrono::seconds kUnknownPeerTimeout{10};

/// Restore-on-destruction SIGPIPE ignore (same rationale as the sweep
/// scheduler: a peer dying mid-write must surface as a failed send).
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_ {};
};

/// One connection. Role is decided by the first line: a plain hello makes
/// a Worker (jobs are dispatched to it), a hello with "client":true makes
/// a Client (it sends job lines and receives reply lines).
struct Peer {
  std::unique_ptr<sweep::Channel> channel;
  std::string buffer;
  enum class Role { Unknown, Worker, Client } role = Role::Unknown;
  bool hello_ok = false;
  i64 serial = -1;       ///< Client: queue identity. Worker: telemetry index.
  i64 job = -1;          ///< Worker: in-flight job id, -1 when idle
  std::optional<sweep::Fingerprint> job_fp;  ///< Worker: in-flight computation
  std::chrono::steady_clock::time_point last_seen;

  bool alive() const { return channel != nullptr && channel->read_fd() >= 0; }
};

/// Span timing of one computation, keyed by fingerprint hex. The serve
/// spans are emitted retroactively at the moment each phase ENDS (enqueue
/// at dispatch, schedule/respond/request at reply), so the trace file
/// stays in the non-decreasing end-time order check_trace.py requires.
struct Inflight {
  i64 enqueue_us = 0;  ///< initiator's arrival (span "serve.enqueue" start)
  i64 sched_us = 0;    ///< dispatch time (span "serve.schedule" start)
};

ServeStats run_server_posix(const ServeOptions& options) {
  using clock = std::chrono::steady_clock;
  expects(!options.listen.empty(), "serve: --listen is required");
  ScopedSigpipeIgnore sigpipe_guard;

  std::optional<sweep::ResultCache> cache;
  if (options.use_cache) cache.emplace(options.cache_dir);

  sweep::TcpTransportOptions tcp;
  tcp.listen = options.listen;
  tcp.accept_wait_seconds = 0.0;  // open(0) binds and returns immediately
  tcp.log = options.log;
  tcp.on_listen = [&](const std::string& bound) {
    log_line(options, "[serve] listening on " + bound);
    if (options.on_listen) options.on_listen(bound);
  };
  const std::unique_ptr<sweep::Transport> transport = sweep::make_tcp_transport(std::move(tcp));
  if (transport == nullptr)
    throw contract_error("serve: could not establish the TCP listener");

  obs::Registry& registry = obs::Registry::instance();
  obs::Counter& c_requests = registry.counter("serve.requests");
  obs::Counter& c_warm = registry.counter("serve.warm");
  obs::Counter& c_cold = registry.counter("serve.cold");
  obs::Counter& c_coalesced = registry.counter("serve.coalesced");
  obs::Counter& c_rejected = registry.counter("serve.rejected");
  obs::Counter& c_malformed = registry.counter("serve.malformed");
  obs::Counter& c_failed = registry.counter("serve.failed");
  obs::Counter& c_remote = registry.counter("serve.computed.remote");
  obs::Counter& c_local = registry.counter("serve.computed.local");
  obs::Counter& c_worker_failures = registry.counter("serve.worker_failures");
  obs::Gauge& g_queue_depth = registry.gauge("serve.queue_depth");
  if (!options.metrics_path.empty()) obs::set_enabled(true);

  ServeStats stats;
  RequestQueue queue(options.queue_max);
  std::vector<Peer> peers;
  std::vector<WorkerRecord> telemetry;
  std::unordered_map<std::string, Inflight> inflight;  // key = fp.hex()
  i64 next_client_serial = 0;
  i64 next_job = 0;

  enum class Status { Warm, Cold, Coalesced, Rejected, Malformed, Failed };
  const auto account = [&](Status status) {
    ++stats.requests;
    c_requests.increment();
    switch (status) {
      case Status::Warm: ++stats.warm; c_warm.increment(); break;
      case Status::Cold: ++stats.cold; c_cold.increment(); break;
      case Status::Coalesced: ++stats.coalesced; c_coalesced.increment(); break;
      case Status::Rejected: ++stats.rejected; c_rejected.increment(); break;
      case Status::Malformed: ++stats.malformed; c_malformed.increment(); break;
      case Status::Failed: ++stats.failed; c_failed.increment(); break;
    }
  };

  const auto adopt = [&](std::unique_ptr<sweep::Channel> channel) {
    Peer peer;
    peer.channel = std::move(channel);
    peer.last_seen = clock::now();
    peers.push_back(std::move(peer));
  };

  const auto ready_workers = [&]() {
    std::size_t n = 0;
    for (const Peer& peer : peers)
      n += (peer.alive() && peer.role == Peer::Role::Worker && peer.hello_ok) ? 1 : 0;
    return n;
  };

  const auto client_of = [&](i64 serial) -> Peer* {
    for (Peer& peer : peers)
      if (peer.alive() && peer.role == Peer::Role::Client && peer.serial == serial) return &peer;
    return nullptr;
  };

  /// Worker death: its in-flight computation is requeued (front of the
  /// initiator's queue — it has waited longest); the waiters keep their
  /// replies pending and another worker, or the in-process drain, answers.
  const auto kill_worker = [&](Peer& worker, const std::string& reason) {
    const std::string who = worker.channel->describe();
    std::string message = "[serve] worker " + who + " " + reason;
    if (worker.job_fp) {
      queue.requeue(*worker.job_fp);
      ++stats.worker_failures;
      c_worker_failures.increment();
      message += " — request requeued (" + std::to_string(stats.worker_failures) +
                 " worker failures so far)";
    }
    worker.job = -1;
    worker.job_fp.reset();
    worker.channel->shutdown();
    log_line(options, message);
  };

  const auto kill_client = [&](Peer& client, const std::string& reason) {
    log_line(options, "[serve] client " + client.channel->describe() + " " + reason);
    if (client.serial >= 0) queue.drop_client(client.serial);
    client.channel->shutdown();
  };

  const auto kill_peer = [&](Peer& peer, const std::string& reason) {
    switch (peer.role) {
      case Peer::Role::Worker: kill_worker(peer, reason); break;
      case Peer::Role::Client: kill_client(peer, reason); break;
      case Peer::Role::Unknown:
        log_line(options, "[serve] peer " + peer.channel->describe() + " " + reason);
        peer.channel->shutdown();
        break;
    }
  };

  /// Mark a computation scheduled: the "serve.enqueue" span ends NOW (it
  /// covered the queue wait), and the schedule phase starts.
  const auto mark_scheduled = [&](const sweep::Fingerprint& fingerprint) {
    const auto it = inflight.find(fingerprint.hex());
    if (it == inflight.end()) return;
    const i64 now_us = obs::trace_now_us();
    obs::trace_complete_event("serve.enqueue", it->second.enqueue_us, now_us);
    it->second.sched_us = now_us;
  };

  /// A computation finished (payload = canonical response JSON) or failed
  /// (error non-empty): cache it, reply to every waiter still connected
  /// (first reply "cold", the rest "coalesced"), and emit the retroactive
  /// spans. Waiters whose client vanished get nothing and count nothing
  /// (drop_client normally removed them already; this is the race window).
  const auto finish = [&](const sweep::Fingerprint& fingerprint, const std::optional<Json>& payload,
                          const std::string& error, bool remote) {
    const i64 t_result = obs::trace_now_us();
    if (payload) {
      if (cache) cache->store_json(fingerprint, payload->dump());
      ++(remote ? stats.computed_remote : stats.computed_local);
      (remote ? c_remote : c_local).increment();
    }
    const std::vector<Waiter> waiters = queue.complete(fingerprint);
    std::vector<Waiter> replied;
    for (const Waiter& waiter : waiters) {
      Peer* peer = client_of(waiter.client);
      if (peer == nullptr) continue;
      std::string line;
      Status status;
      if (payload) {
        status = replied.empty() ? Status::Cold : Status::Coalesced;
        line = reply_line(waiter.request_id, replied.empty() ? "cold" : "coalesced", *payload);
      } else {
        status = Status::Failed;
        line = fail_line(waiter.request_id, "optimize failed: " + error);
      }
      if (!peer->channel->send_line(line)) {
        kill_client(*peer, "went away before its reply");
        continue;
      }
      replied.push_back(waiter);
      account(status);
    }
    const auto it = inflight.find(fingerprint.hex());
    if (!replied.empty()) {
      const i64 t_done = obs::trace_now_us();
      if (it != inflight.end())
        obs::trace_complete_event("serve.schedule", it->second.sched_us, t_result);
      obs::trace_complete_event("serve.respond", t_result, t_done);
      for (const Waiter& waiter : replied)
        obs::trace_complete_event("serve.request", waiter.arrival_us, t_done);
    }
    if (it != inflight.end()) inflight.erase(it);
  };

  /// Hand queued computations to idle workers, one at a time (dynamic load
  /// balancing — request costs vary as widely as GA cells do).
  const auto pump = [&]() {
    while (true) {
      Peer* idle = nullptr;
      for (Peer& peer : peers) {
        if (peer.alive() && peer.role == Peer::Role::Worker && peer.hello_ok && peer.job < 0) {
          idle = &peer;
          break;
        }
      }
      if (idle == nullptr) return;
      const std::optional<sweep::Fingerprint> fingerprint = queue.schedule();
      if (!fingerprint) return;
      const core::OptimizeRequest* request = queue.request_of(*fingerprint);
      const i64 job = next_job++;
      if (!idle->channel->send_line(sweep::job_line(job, *request))) {
        // The computation is NOT lost: back to the queue for a healthier
        // worker (or the in-process drain); this worker is done.
        queue.requeue(*fingerprint);
        kill_worker(*idle, "went away before accepting a request");
        continue;
      }
      idle->job = job;
      idle->job_fp = *fingerprint;
      idle->last_seen = clock::now();
      mark_scheduled(*fingerprint);
    }
  };

  /// Degradation path: with zero ready workers, compute queued requests
  /// synchronously in-process so no admitted request is ever dropped.
  /// Busy-but-alive workers suppress this (their results are coming).
  const auto drain_local = [&]() {
    while (ready_workers() == 0) {
      const std::optional<sweep::Fingerprint> fingerprint = queue.schedule();
      if (!fingerprint) return;
      mark_scheduled(*fingerprint);
      const core::OptimizeRequest* request = queue.request_of(*fingerprint);
      std::optional<Json> payload;
      std::string error;
      try {
        payload = sweep::json_of_response(core::optimize(*request));
      } catch (const std::exception& e) {
        error = e.what();
      }
      finish(*fingerprint, payload, error, /*remote=*/false);
    }
  };

  /// One request line from a client: answer warm from the cache, or admit
  /// it (cold/coalesced/rejected). Warm/reject/malformed replies go out
  /// immediately with their spans; admitted requests reply at finish().
  const auto handle_request = [&](Peer& client, std::string_view line) {
    const i64 arrival_us = obs::trace_now_us();
    i64 id = -1;
    std::optional<core::OptimizeRequest> request;
    if (const std::optional<Json> json = Json::parse(std::string(line))) {
      sweep::get_int(*json, "id", id);
      if (const Json* payload = json->find("request")) request = sweep::request_of_json(*payload);
    }
    const auto reply_now = [&](const std::string& reply, Status status) {
      if (!client.channel->send_line(reply)) {
        kill_client(client, "went away before its reply");
        return;
      }
      account(status);
      const i64 now_us = obs::trace_now_us();
      obs::trace_complete_event("serve.respond", arrival_us, now_us);
      obs::trace_complete_event("serve.request", arrival_us, now_us);
    };
    if (!request) {
      reply_now(fail_line(id, "malformed request"), Status::Malformed);
      return;
    }
    const sweep::Fingerprint fingerprint = sweep::fingerprint_of(*request);
    if (cache) {
      if (const std::optional<std::string> cached = cache->load_json(fingerprint)) {
        if (const std::optional<Json> payload = Json::parse(*cached)) {
          reply_now(reply_line(id, "warm", *payload), Status::Warm);
          return;
        }
      }
    }
    const Waiter waiter{client.serial, id, arrival_us};
    switch (queue.submit(waiter, fingerprint, *request)) {
      case Admit::Rejected:
        reply_now(reject_line(id, "queue full", options.retry_after_ms), Status::Rejected);
        return;
      case Admit::Coalesced:
        return;  // replies with the computation it joined
      case Admit::Cold:
        inflight[fingerprint.hex()] = Inflight{arrival_us, arrival_us};
        return;  // the loop top pumps/drains before the next poll
    }
  };

  const auto handle_worker_line = [&](Peer& worker, std::string_view line) {
    sweep::WorkerMessage msg = sweep::parse_worker_message(line);
    switch (msg.kind) {
      case sweep::WorkerMessage::Kind::Hello:
        kill_worker(worker, "sent a second hello");
        return;
      case sweep::WorkerMessage::Kind::Ack:
      case sweep::WorkerMessage::Kind::Heartbeat:
        if (worker.job < 0 || msg.id != worker.job) {
          kill_worker(worker, "sent a stray control line");
          return;
        }
        if (msg.stats) telemetry[(std::size_t)worker.serial].metrics = std::move(*msg.stats);
        return;
      case sweep::WorkerMessage::Kind::Result: {
        if (worker.job < 0 || msg.id != worker.job) {
          kill_worker(worker, "answered a job it does not hold");
          return;
        }
        if (msg.ok && !msg.response) {
          // A cell result for a request job is protocol confusion.
          kill_worker(worker, "sent a mismatched result payload");
          return;
        }
        const sweep::Fingerprint fingerprint = *worker.job_fp;
        worker.job = -1;
        worker.job_fp.reset();
        if (msg.stats) telemetry[(std::size_t)worker.serial].metrics = std::move(*msg.stats);
        if (!msg.ok) {
          // The REQUEST failed (e.g. an illegal nest slipped through):
          // surface the error to its waiters; the worker stays trusted.
          finish(fingerprint, std::nullopt, msg.error.empty() ? "worker error" : msg.error,
                 /*remote=*/true);
        } else {
          ++telemetry[(std::size_t)worker.serial].requests;
          finish(fingerprint, sweep::json_of_response(*msg.response), "", /*remote=*/true);
        }
        pump();
        return;
      }
      case sweep::WorkerMessage::Kind::Malformed:
        kill_worker(worker, "babbled an unparseable line");
        return;
    }
  };

  /// First line of an Unknown peer: must be a hello passing the version +
  /// code-salt handshake; "client":true selects the client role.
  const auto handle_first_line = [&](Peer& peer, std::string_view line) {
    const sweep::WorkerMessage msg = sweep::parse_worker_message(line);
    if (msg.kind != sweep::WorkerMessage::Kind::Hello) {
      kill_peer(peer, "spoke before its hello");
      return;
    }
    std::string detail;
    if (!sweep::handshake_accepts(msg, &detail)) {
      kill_peer(peer, "refused: " + detail);
      return;
    }
    peer.hello_ok = true;
    if (msg.client) {
      peer.role = Peer::Role::Client;
      peer.serial = next_client_serial++;
      log_line(options, "[serve] client connected from " + peer.channel->describe());
      return;
    }
    peer.role = Peer::Role::Worker;
    peer.serial = (i64)telemetry.size();
    WorkerRecord record;
    record.pid = msg.pid;
    record.peer = peer.channel->describe();
    telemetry.push_back(std::move(record));
    log_line(options, "[serve] worker connected from " + peer.channel->describe() + " (" +
                          std::to_string(ready_workers()) + " ready)");
    pump();
  };

  const auto handle_line = [&](Peer& peer, std::string_view line) {
    if (line.empty()) return;
    switch (peer.role) {
      case Peer::Role::Unknown: handle_first_line(peer, line); return;
      case Peer::Role::Worker: handle_worker_line(peer, line); return;
      case Peer::Role::Client: handle_request(peer, line); return;
    }
  };

  // open(0) binds + fires on_listen and returns without waiting for a
  // connection; everything (workers included) joins via accept() mid-run.
  for (auto& channel : transport->open(0)) adopt(std::move(channel));
  if (transport->accept_fd() < 0)
    throw contract_error("serve: could not establish the TCP listener");

  const auto worker_timeout = std::chrono::duration<double>(
      options.worker_timeout_seconds > 0 ? options.worker_timeout_seconds : 0);
  std::vector<pollfd> fds;
  std::vector<std::size_t> fd_owner;  // peers.size() marks the accept fd

  while (true) {
    const auto now = clock::now();
    std::erase_if(peers, [](const Peer& peer) { return !peer.alive(); });

    // Expire peers that cannot make progress: connections that never sent
    // a hello, and workers whose in-flight request went silent past the
    // timeout (heartbeats refresh last_seen — only a hung or partitioned
    // worker trips this; its computation is requeued).
    for (Peer& peer : peers) {
      if (!peer.alive()) continue;
      if (peer.role == Peer::Role::Unknown && now - peer.last_seen > kUnknownPeerTimeout)
        kill_peer(peer, "never sent a hello");
      else if (peer.role == Peer::Role::Worker && worker_timeout.count() > 0 && peer.job >= 0 &&
               now - peer.last_seen > worker_timeout)
        kill_worker(peer, "timed out (silent for " +
                              std::to_string(options.worker_timeout_seconds) + "s)");
    }

    pump();
    drain_local();
    g_queue_depth.set((double)queue.queued());

    if (options.max_requests > 0 && (i64)stats.requests >= options.max_requests && queue.idle())
      break;

    int timeout_ms = -1;
    const auto consider = [&](clock::time_point deadline) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
      const int ms = (int)std::max<long long>(0, remaining) + 1;
      timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
    };
    for (const Peer& peer : peers) {
      if (!peer.alive()) continue;
      if (peer.role == Peer::Role::Unknown)
        consider(peer.last_seen + kUnknownPeerTimeout);
      else if (peer.role == Peer::Role::Worker && worker_timeout.count() > 0 && peer.job >= 0)
        consider(peer.last_seen + std::chrono::duration_cast<clock::duration>(worker_timeout));
    }

    fds.clear();
    fd_owner.clear();
    for (std::size_t p = 0; p < peers.size(); ++p) {
      if (!peers[p].alive()) continue;
      fds.push_back({peers[p].channel->read_fd(), POLLIN, 0});
      fd_owner.push_back(p);
    }
    fds.push_back({transport->accept_fd(), POLLIN, 0});
    fd_owner.push_back(peers.size());

    const int ready = ::poll(fds.data(), (nfds_t)fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      log_line(options, "[serve] poll failed; shutting down");
      break;
    }
    if (ready == 0) continue;  // a deadline fired; handled at loop top

    for (std::size_t f = 0; f < fds.size(); ++f) {
      if (fds[f].revents == 0) continue;
      if (fd_owner[f] == peers.size()) {
        if (auto channel = transport->accept()) adopt(std::move(channel));
        continue;
      }
      Peer& peer = peers[fd_owner[f]];
      if (!peer.alive()) continue;  // killed earlier in this pass
      char chunk[4096];
      const long n = peer.channel->read_some(chunk, sizeof chunk);
      if (n < 0) continue;  // transient (EINTR)
      if (n == 0) {
        // EOF: a worker mid-request died (requeue); a client is done with
        // its session (detach its waiters); anything else just left.
        if (peer.role == Peer::Role::Worker && peer.job >= 0)
          kill_worker(peer, "exited");
        else if (peer.role == Peer::Role::Client)
          kill_client(peer, "disconnected");
        else
          peer.channel->shutdown();
        continue;
      }
      peer.buffer.append(chunk, (std::size_t)n);
      if (peer.buffer.find('\n') == std::string::npos) {
        // No complete line: liveness is NOT refreshed, and the buffer must
        // not grow without bound (protocol lines are a few KB).
        if (peer.buffer.size() > kMaxPeerLineBytes) kill_peer(peer, "sent an oversized line");
        continue;
      }
      peer.last_seen = clock::now();
      std::size_t newline;
      while (peer.alive() && (newline = peer.buffer.find('\n')) != std::string::npos) {
        const std::string line = peer.buffer.substr(0, newline);
        peer.buffer.erase(0, newline + 1);
        handle_line(peer, line);
      }
    }
  }

  for (Peer& peer : peers) {
    if (!peer.alive()) continue;
    peer.channel->finish_input();
    peer.channel->shutdown();
  }
  if (!options.metrics_path.empty()) write_serve_report(options, stats, telemetry);
  log_line(options, "[serve] served " + std::to_string(stats.requests) + " requests (" +
                        std::to_string(stats.warm) + " warm, " + std::to_string(stats.cold) +
                        " cold, " + std::to_string(stats.coalesced) + " coalesced, " +
                        std::to_string(stats.rejected) + " rejected)");
  return stats;
}

#endif  // __unix__

}  // namespace

ServeStats run_server(const ServeOptions& options) {
#ifdef __unix__
  return run_server_posix(options);
#else
  (void)options;
  throw contract_error("cmetile-serve requires a POSIX platform");
#endif
}

}  // namespace cmetile::serve

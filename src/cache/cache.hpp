#pragma once
// Cache geometry shared by the CME model and the trace simulator.
// The paper evaluates 8KB and 32KB direct-mapped caches with 32-byte
// lines; the CME framework (and our solver) also supports k-way LRU
// caches, and cache/hierarchy.hpp stacks 1–3 of these into a multi-level
// hierarchy with per-level miss latencies.

#include <string>

#include "support/int_math.hpp"

namespace cmetile::cache {

/// One cache's geometry. Plain value type — copy freely; immutable data
/// is safe to read concurrently. All sizes are bytes; addresses are byte
/// addresses from ir::MemoryLayout. The solver assumes a power-of-two
/// line size and set count (see validate()) — the total size need not be
/// a power of two, which admits the merged "effective" geometries of
/// exclusive hierarchies (e.g. 8KB 1-way + 64KB 8-way = 72KB 9-way).
/// Callers construct aggregate-style and call validate() once, which
/// every consumer (Simulator, NestAnalysis, Hierarchy) does on entry.
struct CacheConfig {
  i64 size_bytes = 8 * 1024;
  i64 line_bytes = 32;
  i64 associativity = 1;  ///< 1 = direct-mapped

  /// Total lines in the cache (= sets() × associativity).
  i64 lines() const { return size_bytes / line_bytes; }
  i64 sets() const { return lines() / associativity; }
  /// Bytes spanned by one way (the modulus of the CME congruences).
  i64 way_bytes() const { return size_bytes / associativity; }

  /// Memory line holding a byte address (floor division — valid for
  /// negative addresses too, though layouts only produce non-negative).
  i64 line_of(i64 address) const { return floor_div(address, line_bytes); }
  /// Cache set a byte address maps to (bit-selection indexing).
  i64 set_of(i64 address) const { return floor_mod(line_of(address), sets()); }

  /// Throws contract_error on non-power-of-two line/set or inconsistent
  /// geometry.
  void validate() const;

  /// Human-readable geometry, e.g. "8KB/32B direct-mapped".
  std::string to_string() const;

  static CacheConfig direct_mapped(i64 size_bytes, i64 line_bytes = 32) {
    return CacheConfig{size_bytes, line_bytes, 1};
  }
};

/// Replacement policy of one cache (per hierarchy level). LRU is the
/// paper's assumption and the one the CMEs model exactly; TreePLRU is the
/// binary-tree pseudo-LRU used by most real L1s (requires a power-of-two
/// associativity; identical to LRU at associativity <= 2); Random picks
/// the victim with a seeded xorshift stream, so runs are deterministic and
/// reproducible.
enum class ReplacementPolicy : std::uint8_t { LRU, TreePLRU, Random };

std::string to_string(ReplacementPolicy policy);

/// Aggregated miss counts; the paper's two metrics are
/// total miss ratio = (cold + replacement)/accesses and
/// replacement miss ratio = replacement/accesses (§3.1: replacement misses
/// include both capacity and conflict misses). Counts are absolute access
/// counts (not ratios); ratio helpers return 0 for an empty window.
/// Evictions are split clean/dirty (write-back model): `writebacks()` is
/// the dirty-eviction count — the write traffic the cache sends outward,
/// excluding lines still dirty at the end of the run (the simulator
/// exposes those separately as `dirty_lines()`).
struct MissStats {
  i64 accesses = 0;
  i64 cold_misses = 0;
  i64 replacement_misses = 0;
  i64 clean_evictions = 0;
  i64 dirty_evictions = 0;

  i64 total_misses() const { return cold_misses + replacement_misses; }
  i64 writebacks() const { return dirty_evictions; }
  double total_ratio() const { return accesses ? (double)total_misses() / (double)accesses : 0.0; }
  double replacement_ratio() const {
    return accesses ? (double)replacement_misses / (double)accesses : 0.0;
  }

  MissStats& operator+=(const MissStats& other) {
    accesses += other.accesses;
    cold_misses += other.cold_misses;
    replacement_misses += other.replacement_misses;
    clean_evictions += other.clean_evictions;
    dirty_evictions += other.dirty_evictions;
    return *this;
  }
};

}  // namespace cmetile::cache

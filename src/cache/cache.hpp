#pragma once
// Cache geometry shared by the CME model and the trace simulator.
// The paper evaluates 8KB and 32KB direct-mapped caches with 32-byte lines;
// the CME framework (and our solver) also supports k-way LRU caches.

#include <string>

#include "support/int_math.hpp"

namespace cmetile::cache {

struct CacheConfig {
  i64 size_bytes = 8 * 1024;
  i64 line_bytes = 32;
  i64 associativity = 1;  ///< 1 = direct-mapped

  i64 lines() const { return size_bytes / line_bytes; }
  i64 sets() const { return lines() / associativity; }
  /// Bytes spanned by one way (the modulus of the CME congruences).
  i64 way_bytes() const { return size_bytes / associativity; }

  i64 line_of(i64 address) const { return floor_div(address, line_bytes); }
  i64 set_of(i64 address) const { return floor_mod(line_of(address), sets()); }

  /// Throws contract_error on non-power-of-two / inconsistent geometry.
  void validate() const;

  std::string to_string() const;

  static CacheConfig direct_mapped(i64 size_bytes, i64 line_bytes = 32) {
    return CacheConfig{size_bytes, line_bytes, 1};
  }
};

/// Aggregated miss counts; the paper's two metrics are
/// total miss ratio = (cold + replacement)/accesses and
/// replacement miss ratio = replacement/accesses (§3.1: replacement misses
/// include both capacity and conflict misses).
struct MissStats {
  i64 accesses = 0;
  i64 cold_misses = 0;
  i64 replacement_misses = 0;

  i64 total_misses() const { return cold_misses + replacement_misses; }
  double total_ratio() const { return accesses ? (double)total_misses() / (double)accesses : 0.0; }
  double replacement_ratio() const {
    return accesses ? (double)replacement_misses / (double)accesses : 0.0;
  }

  MissStats& operator+=(const MissStats& other) {
    accesses += other.accesses;
    cold_misses += other.cold_misses;
    replacement_misses += other.replacement_misses;
    return *this;
  }
};

}  // namespace cmetile::cache

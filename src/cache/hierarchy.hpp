#pragma once
// Multi-level cache hierarchy: 1–3 levels of CacheConfig, each with a miss
// latency, optimized jointly by the latency-weighted objective
//
//     cost(T) = Σ_level  misses_level(T) · miss_latency_level
//
// (DESIGN.md §12). The CME analysis treats every level independently on
// the full access stream — level l's misses are those of level l's cache
// simulated standalone — which coincides with an inclusive hierarchy where
// every access probes all levels. A single-level hierarchy with latency 1
// reproduces the paper's single-cache pipeline bit for bit.

#include <string>
#include <vector>

#include "cache/cache.hpp"

namespace cmetile::cache {

/// One level of the hierarchy: a cache geometry plus the cost of missing
/// in it. `miss_latency` is the *additional* stall charged per miss at
/// this level (i.e. the access latency of the next level down: an L1 miss
/// pays the L2 hit latency, an L2 miss pays the memory latency), in
/// arbitrary but consistent units (typically cycles). A miss in both
/// levels of a two-level hierarchy therefore pays both latencies — the
/// standard additive stall decomposition.
struct CacheLevel {
  CacheConfig config;
  double miss_latency = 1.0;
};

/// An ordered hierarchy, levels[0] = the level closest to the processor
/// (L1). Value type: copy freely, no ownership concerns. Thread-safe for
/// concurrent reads after construction (it is immutable plain data).
struct Hierarchy {
  std::vector<CacheLevel> levels;

  static constexpr std::size_t kMaxLevels = 3;

  std::size_t depth() const { return levels.size(); }

  /// Σ_level miss_latency — the worst-case stall of one access, used to
  /// scale the illegal-tile penalty above any feasible weighted cost.
  double latency_sum() const;

  /// Latency-weighted cost of per-level miss counts (`misses[l]` pairs
  /// with `levels[l]`). Precondition: misses.size() == depth().
  double weighted_cost(const std::vector<double>& misses_per_level) const;

  /// Throws contract_error unless: 1..kMaxLevels levels, every level's
  /// geometry validates, all levels share one line size, capacities
  /// strictly increase outward, latencies are finite and >= 0, and at
  /// least one latency is > 0 (an all-zero weighting would also zero the
  /// illegal-tile penalty). (It does NOT require LRU inclusion to hold —
  /// see HierarchySimulator, which counts inclusion violations
  /// empirically.)
  void validate() const;

  std::string to_string() const;

  /// The paper's single-cache setup: one level, unit latency. With the
  /// default latency the weighted cost *is* the replacement miss count,
  /// bit-identical to the single-cache pipeline.
  static Hierarchy single(CacheConfig config, double miss_latency = 1.0);

  /// Convenience two-level constructor (L1 then L2).
  static Hierarchy two_level(CacheConfig l1, double l1_miss_latency, CacheConfig l2,
                             double l2_miss_latency);
};

}  // namespace cmetile::cache

#pragma once
// Multi-level cache hierarchy: 1–3 levels of CacheConfig, each with a miss
// latency, optimized jointly by the latency-weighted objective
//
//     cost(T) = Σ_level  misses_level(T) · miss_latency_level
//             + Σ_level  writebacks_level(T) · writeback_latency_level
//
// (DESIGN.md §12, §16). The CME analysis treats every level independently
// on the full access stream — level l's misses are those of level l's
// *effective* cache simulated standalone. For the default Inclusive mode
// the effective cache is the level's own geometry (every access probes all
// levels). An Exclusive level holds only lines evicted from the level
// above; with a shared set count the level-above + exclusive-level stack
// behaves exactly like one merged cache of summed associativity, so its
// effective geometry is that merged cache (DESIGN.md §16). A Victim level
// (Jouppi) is a small fully-associative exclusive buffer; its effective
// geometry is the fully-associative union of all capacities up to it — an
// optimistic bound the differential tests bracket rather than pin.
// A single-level hierarchy with latency 1 reproduces the paper's
// single-cache pipeline bit for bit.

#include <string>
#include <vector>

#include "cache/cache.hpp"

namespace cmetile::cache {

/// How a level participates in the hierarchy. Inclusive levels see the
/// full access stream (the PR 3 convention). Exclusive levels hold only
/// lines evicted from the previous level: they are probed only when every
/// level above missed, a hit extracts the line back into L1 (swap), and
/// L1's evictions are installed here. Victim is the fully-associative
/// special case of Exclusive (sets() == 1), exempt from the
/// capacity-increase rule so a classic 4–16 line victim buffer validates.
enum class LevelMode : std::uint8_t { Inclusive, Exclusive, Victim };

std::string to_string(LevelMode mode);

/// One level of the hierarchy: a cache geometry plus the cost of missing
/// in it. `miss_latency` is the *additional* stall charged per miss at
/// this level (i.e. the access latency of the next level down: an L1 miss
/// pays the L2 hit latency, an L2 miss pays the memory latency), in
/// arbitrary but consistent units (typically cycles). A miss in both
/// levels of a two-level hierarchy therefore pays both latencies — the
/// standard additive stall decomposition. `writeback_latency` is the
/// stall charged per dirty eviction leaving this level (0 = the PR 3
/// read-only model; the legacy paths are bit-identical at 0 because the
/// write-back estimator is skipped entirely then).
struct CacheLevel {
  CacheConfig config;
  double miss_latency = 1.0;
  double writeback_latency = 0.0;
  ReplacementPolicy replacement = ReplacementPolicy::LRU;
  LevelMode mode = LevelMode::Inclusive;
};

/// An ordered hierarchy, levels[0] = the level closest to the processor
/// (L1). Value type: copy freely, no ownership concerns. Thread-safe for
/// concurrent reads after construction (it is immutable plain data).
struct Hierarchy {
  std::vector<CacheLevel> levels;

  static constexpr std::size_t kMaxLevels = 3;

  std::size_t depth() const { return levels.size(); }

  /// Σ_level (miss_latency + writeback_latency) — the worst-case stall of
  /// one access, used to scale the illegal-tile penalty above any feasible
  /// weighted cost.
  double latency_sum() const;

  /// Latency-weighted cost of per-level miss counts (`misses[l]` pairs
  /// with `levels[l]`). Precondition: misses.size() == depth(). Write-back
  /// traffic is folded in separately (cme::HierarchyEstimate).
  double weighted_cost(const std::vector<double>& misses_per_level) const;

  /// The standalone cache geometry whose misses equal level l's misses
  /// under its mode (header comment): the level's own config (Inclusive),
  /// the running merged config of summed size/associativity at the shared
  /// set count (Exclusive), or the fully-associative union of capacities
  /// (Victim). This is what the per-level CME analysis binds to.
  CacheConfig effective_config(std::size_t level) const;

  /// Throws contract_error unless: 1..kMaxLevels levels, every level's
  /// geometry validates, all levels share one line size, effective
  /// capacities strictly increase outward, latencies are finite and >= 0,
  /// and at least one latency is > 0 (an all-zero weighting would also
  /// zero the illegal-tile penalty). Mode rules: level 0 is Inclusive; an
  /// Exclusive level shares the set count of the previous level's
  /// effective geometry (the merged-stack condition); a Victim level is
  /// fully associative (sets() == 1). (It does NOT require LRU inclusion
  /// to hold — see HierarchySimulator, which counts inclusion violations
  /// empirically.)
  void validate() const;

  std::string to_string() const;

  /// The paper's single-cache setup: one level, unit latency. With the
  /// default latency the weighted cost *is* the replacement miss count,
  /// bit-identical to the single-cache pipeline.
  static Hierarchy single(CacheConfig config, double miss_latency = 1.0);

  /// Convenience two-level constructor (L1 then L2).
  static Hierarchy two_level(CacheConfig l1, double l1_miss_latency, CacheConfig l2,
                             double l2_miss_latency);
};

}  // namespace cmetile::cache

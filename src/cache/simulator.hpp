#pragma once
// Trace-driven cache simulator: the ground truth against which the CME
// model is validated (integration tests) and the paper's "counting
// replacement misses" oracle for small search spaces. LRU replacement;
// cold misses are first-ever touches of a memory line, every other miss is
// a replacement miss (capacity or conflict — the paper does not split them).

#include <span>
#include <unordered_set>
#include <vector>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "ir/trace.hpp"

namespace cmetile::cache {

enum class AccessOutcome : std::uint8_t { Hit, ColdMiss, ReplacementMiss };

/// Single-level trace simulator. Not thread-safe: one instance per thread
/// (it mutates LRU state on every access).
class Simulator {
 public:
  /// Validates the geometry (throws contract_error on a bad config).
  explicit Simulator(const CacheConfig& config);

  /// Simulate one access at a byte address; updates LRU state and counters.
  AccessOutcome access(i64 address);

  /// Reset cache content and counters (the touched-lines history too).
  void reset();

  const MissStats& stats() const { return stats_; }

 private:
  CacheConfig config_;
  // tags_[set * assoc + way] = line id, most recently used first; -1 empty.
  std::vector<i64> tags_;
  std::unordered_set<i64> touched_lines_;
  MissStats stats_;
};

/// Inclusive multi-level mode: every access probes *all* levels, so each
/// level's content (and stats) is exactly what a standalone simulation of
/// that level over the full stream produces — the same convention the
/// per-level CMEs use (DESIGN.md §12). Under that model LRU inclusion
/// (level-l content ⊆ level-(l+1) content) holds for nested geometries;
/// `inclusion_violations()` counts the accesses where it did not (a hit at
/// level l that missed at level l+1), so tests and benches can verify the
/// inclusive reading of the per-level numbers instead of assuming it.
/// Not thread-safe (same contract as Simulator).
class HierarchySimulator {
 public:
  /// Validates the hierarchy (throws contract_error on a bad geometry).
  explicit HierarchySimulator(const Hierarchy& hierarchy);

  /// Simulate one access against every level; returns per-level outcomes
  /// (valid until the next call).
  std::span<const AccessOutcome> access(i64 address);

  void reset();

  std::size_t depth() const { return sims_.size(); }
  const MissStats& stats(std::size_t level) const { return sims_[level].stats(); }
  i64 inclusion_violations() const { return inclusion_violations_; }

 private:
  std::vector<Simulator> sims_;
  std::vector<AccessOutcome> outcomes_;
  i64 inclusion_violations_ = 0;
};

/// Simulate a whole nest in original order; returns per-reference stats
/// (indexed by reference) plus the aggregate as the last element.
std::vector<MissStats> simulate_nest(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     const CacheConfig& config);

/// Multi-level variant: result[level] is the per-reference stats vector
/// (aggregate last) of that level over the full access stream.
std::vector<std::vector<MissStats>> simulate_nest(const ir::LoopNest& nest,
                                                  const ir::MemoryLayout& layout,
                                                  const Hierarchy& hierarchy);

}  // namespace cmetile::cache

#pragma once
// Trace-driven cache simulator: the ground truth against which the CME
// model is validated (integration tests) and the paper's "counting
// replacement misses" oracle for small search spaces. LRU replacement;
// cold misses are first-ever touches of a memory line, every other miss is
// a replacement miss (capacity or conflict — the paper does not split them).

#include <unordered_set>
#include <vector>

#include "cache/cache.hpp"
#include "ir/trace.hpp"

namespace cmetile::cache {

enum class AccessOutcome : std::uint8_t { Hit, ColdMiss, ReplacementMiss };

class Simulator {
 public:
  explicit Simulator(const CacheConfig& config);

  /// Simulate one access; updates LRU state and counters.
  AccessOutcome access(i64 address);

  /// Reset cache content and counters (the touched-lines history too).
  void reset();

  const MissStats& stats() const { return stats_; }

 private:
  CacheConfig config_;
  // tags_[set * assoc + way] = line id, most recently used first; -1 empty.
  std::vector<i64> tags_;
  std::unordered_set<i64> touched_lines_;
  MissStats stats_;
};

/// Simulate a whole nest in original order; returns per-reference stats
/// (indexed by reference) plus the aggregate as the last element.
std::vector<MissStats> simulate_nest(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     const CacheConfig& config);

}  // namespace cmetile::cache

#pragma once
// Trace-driven cache simulator: the ground truth against which the CME
// model is validated (integration tests) and the paper's "counting
// replacement misses" oracle for small search spaces. Replacement is
// pluggable per instance (LRU — the paper's assumption — tree-pseudo-LRU,
// or seeded random); cold misses are first-ever touches of a memory line,
// every other miss is a replacement miss (capacity or conflict — the paper
// does not split them). Write accesses set a per-line dirty bit; evictions
// are counted clean/dirty (MissStats), the write-back model of DESIGN.md
// §16.

#include <span>
#include <unordered_set>
#include <vector>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "ir/trace.hpp"

namespace cmetile::cache {

/// Bypass is reported by HierarchySimulator for an exclusive/victim level
/// that was not probed (a level above already hit): the level's content
/// and stats are untouched by that access.
enum class AccessOutcome : std::uint8_t { Hit, ColdMiss, ReplacementMiss, Bypass };

/// A line displaced from a cache (by an access install or a fill).
/// `valid` false = nothing was displaced (the set had a free way).
struct EvictedLine {
  i64 line = -1;
  bool valid = false;
  bool dirty = false;
};

/// Single-level trace simulator. Not thread-safe: one instance per thread
/// (it mutates replacement state on every access).
class Simulator {
 public:
  /// Validates the geometry (throws contract_error on a bad config; also
  /// rejects TreePLRU with a non-power-of-two associativity). `seed` only
  /// matters for ReplacementPolicy::Random (deterministic stream).
  explicit Simulator(const CacheConfig& config, ReplacementPolicy policy = ReplacementPolicy::LRU,
                     std::uint64_t seed = 0x5EEDULL);

  /// Simulate one access at a byte address; updates replacement state and
  /// counters. `is_write` marks the line dirty (on hit or install).
  AccessOutcome access(i64 address, bool is_write = false);

  /// Cascade probe for exclusive/victim levels: counts the access like
  /// access(), but a hit *extracts* the line — it is removed here and its
  /// dirty bit handed back for promotion into the level above — and a miss
  /// installs nothing. Never evicts.
  AccessOutcome probe_extract(i64 address, bool& dirty);

  /// Install a line evicted from the level above without counting an
  /// access (exclusive/victim fill). Under LRU the fill enters at MRU
  /// position — together with probe_extract this makes an L1 + exclusive
  /// L2 stack of shared set count behave exactly like one merged cache of
  /// summed associativity (DESIGN.md §16). Returns the line displaced to
  /// make room (recorded in the eviction counters).
  EvictedLine fill_line(i64 line, bool dirty);

  /// Is the memory line currently cached? (Self-check helper; O(assoc).)
  bool contains_line(i64 line) const;

  /// Mark an already-present line dirty (promotion merge after a dirty
  /// extract from an outer level). No-op if the line is absent.
  void set_dirty(i64 line);

  /// Currently cached dirty lines — the write-backs still pending at the
  /// end of a run (total write traffic = stats().dirty_evictions + this).
  i64 dirty_lines() const;

  /// The line displaced by the most recent access()/fill_line() call
  /// (`valid` false if none). probe_extract never evicts.
  const EvictedLine& last_eviction() const { return last_eviction_; }

  /// Reset cache content and counters (the touched-lines history too; the
  /// random replacement stream restarts from the seed).
  void reset();

  const MissStats& stats() const { return stats_; }
  ReplacementPolicy policy() const { return policy_; }

 private:
  i64 set_of_line(i64 line) const { return floor_mod(line, config_.sets()); }
  /// Classify a miss (cold on first-ever touch) and count it.
  AccessOutcome classify_miss(i64 line);
  /// Install `line` into `set` displacing a victim if the set is full;
  /// counts the displaced line's eviction. `mru` inserts at MRU position
  /// (LRU representation only; position-stable policies ignore it).
  EvictedLine install(i64 set, i64 line, bool dirty);
  /// Victim way of a full set under the configured policy.
  std::size_t victim_way(i64 set);
  /// Update replacement metadata after way `w` of `set` was used.
  void touch(i64 set, std::size_t w);

  CacheConfig config_;
  ReplacementPolicy policy_;
  std::uint64_t seed_;
  std::uint64_t rng_state_;
  // tags_[set * assoc + way] = line id, -1 empty. Under LRU ways are kept
  // most-recently-used first (move-to-front, the pre-write-back scheme —
  // bit-identity pin); under TreePLRU/Random ways are position-stable.
  std::vector<i64> tags_;
  std::vector<std::uint8_t> dirty_;      ///< parallel to tags_
  std::vector<std::uint8_t> plru_bits_;  ///< [set * (assoc-1) + node-1], TreePLRU only
  std::unordered_set<i64> touched_lines_;
  MissStats stats_;
  EvictedLine last_eviction_;
};

/// Multi-level mode. Inclusive levels probe on *every* access, so each
/// level's content (and stats) is exactly what a standalone simulation of
/// that level over the full stream produces — the same convention the
/// per-level CMEs use (DESIGN.md §12). Under that model LRU inclusion
/// (level-l content ⊆ level-(l+1) content) holds for nested geometries;
/// `inclusion_violations()` counts the accesses where it did not (a hit at
/// level l that missed at an inclusive level l+1), so tests and benches
/// can verify the inclusive reading of the per-level numbers instead of
/// assuming it.
///
/// Exclusive/victim levels (LevelMode) are probed only when every level
/// above missed; a hit extracts the line and promotes its dirty bit into
/// L1, a miss leaves the level untouched (demand fetches install only at
/// L1), and evictions of the level above are installed here (the fill
/// cascade). `exclusion_violations()` counts accesses after which the
/// accessed line was present both in an exclusive/victim level and in some
/// level above it — the exclusion invariant self-check the differential
/// suite asserts is zero.
///
/// With every level Inclusive, LRU, and a read-only stream this is
/// bit-identical to the pre-write-back simulator. Not thread-safe (same
/// contract as Simulator).
class HierarchySimulator {
 public:
  /// Validates the hierarchy (throws contract_error on a bad geometry).
  /// `seed` feeds the per-level random replacement streams (level l draws
  /// from an independent derived stream).
  explicit HierarchySimulator(const Hierarchy& hierarchy, std::uint64_t seed = 0x5EEDULL);

  /// Simulate one access; returns per-level outcomes (valid until the
  /// next call). Levels not probed report AccessOutcome::Bypass.
  std::span<const AccessOutcome> access(i64 address, bool is_write = false);

  void reset();

  std::size_t depth() const { return sims_.size(); }
  const MissStats& stats(std::size_t level) const { return sims_[level].stats(); }
  i64 dirty_lines(std::size_t level) const { return sims_[level].dirty_lines(); }
  i64 inclusion_violations() const { return inclusion_violations_; }
  i64 exclusion_violations() const { return exclusion_violations_; }

 private:
  Hierarchy hierarchy_;
  std::vector<Simulator> sims_;
  std::vector<AccessOutcome> outcomes_;
  std::vector<EvictedLine> evictions_;  ///< per-level scratch, one access
  i64 inclusion_violations_ = 0;
  i64 exclusion_violations_ = 0;
};

/// Simulate a whole nest in original order; returns per-reference stats
/// (indexed by reference) plus the aggregate as the last element. Write
/// references mark lines dirty; eviction counters are attributed to the
/// access that displaced the line.
std::vector<MissStats> simulate_nest(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     const CacheConfig& config,
                                     ReplacementPolicy policy = ReplacementPolicy::LRU,
                                     std::uint64_t seed = 0x5EEDULL);

/// Multi-level variant: result[level] is the per-reference stats vector
/// (aggregate last) of that level over the full access stream. Accesses a
/// level did not see (Bypass) are not counted anywhere in its rows.
std::vector<std::vector<MissStats>> simulate_nest(const ir::LoopNest& nest,
                                                  const ir::MemoryLayout& layout,
                                                  const Hierarchy& hierarchy,
                                                  std::uint64_t seed = 0x5EEDULL);

}  // namespace cmetile::cache

#include "cache/cache.hpp"

#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::cache {

namespace {
bool is_power_of_two(i64 v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

void CacheConfig::validate() const {
  expects(is_power_of_two(size_bytes), "CacheConfig: size must be a power of two");
  expects(is_power_of_two(line_bytes), "CacheConfig: line size must be a power of two");
  expects(line_bytes <= size_bytes, "CacheConfig: line larger than cache");
  expects(associativity >= 1, "CacheConfig: associativity must be >= 1");
  expects(lines() % associativity == 0, "CacheConfig: associativity must divide line count");
}

std::string CacheConfig::to_string() const {
  std::ostringstream out;
  out << size_bytes / 1024 << "KB/" << line_bytes << "B";
  if (associativity == 1)
    out << " direct-mapped";
  else
    out << " " << associativity << "-way";
  return out.str();
}

}  // namespace cmetile::cache

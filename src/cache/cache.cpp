#include "cache/cache.hpp"

#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::cache {

namespace {
bool is_power_of_two(i64 v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

void CacheConfig::validate() const {
  expects(is_power_of_two(line_bytes), "CacheConfig: line size must be a power of two");
  expects(size_bytes > 0 && size_bytes % line_bytes == 0,
          "CacheConfig: size must be a positive multiple of the line size");
  expects(line_bytes <= size_bytes, "CacheConfig: line larger than cache");
  expects(associativity >= 1, "CacheConfig: associativity must be >= 1");
  expects(lines() % associativity == 0, "CacheConfig: associativity must divide line count");
  // The CME congruence modulus is way_bytes = sets × line, which must stay
  // a power of two; requiring a power-of-two set count guarantees it. The
  // total size need not be one: merged effective geometries of exclusive
  // hierarchies have associativity a1 + a2 (e.g. 72KB 9-way, 256 sets).
  expects(is_power_of_two(sets()), "CacheConfig: set count must be a power of two");
}

std::string to_string(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::LRU: return "lru";
    case ReplacementPolicy::TreePLRU: return "plru";
    case ReplacementPolicy::Random: return "random";
  }
  return "?";
}

std::string CacheConfig::to_string() const {
  std::ostringstream out;
  out << size_bytes / 1024 << "KB/" << line_bytes << "B";
  if (associativity == 1)
    out << " direct-mapped";
  else
    out << " " << associativity << "-way";
  return out.str();
}

}  // namespace cmetile::cache

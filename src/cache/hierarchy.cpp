#include "cache/hierarchy.hpp"

#include <cmath>
#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::cache {

std::string to_string(LevelMode mode) {
  switch (mode) {
    case LevelMode::Inclusive: return "inclusive";
    case LevelMode::Exclusive: return "exclusive";
    case LevelMode::Victim: return "victim";
  }
  return "?";
}

double Hierarchy::latency_sum() const {
  double sum = 0.0;
  for (const CacheLevel& level : levels) sum += level.miss_latency + level.writeback_latency;
  return sum;
}

double Hierarchy::weighted_cost(const std::vector<double>& misses_per_level) const {
  expects(misses_per_level.size() == levels.size(),
          "Hierarchy::weighted_cost: one miss count per level required");
  double cost = 0.0;
  for (std::size_t l = 0; l < levels.size(); ++l)
    cost += misses_per_level[l] * levels[l].miss_latency;
  return cost;
}

CacheConfig Hierarchy::effective_config(std::size_t level) const {
  expects(level < levels.size(), "Hierarchy::effective_config: level out of range");
  CacheConfig effective = levels[0].config;
  for (std::size_t l = 1; l <= level; ++l) {
    const CacheConfig& config = levels[l].config;
    switch (levels[l].mode) {
      case LevelMode::Inclusive:
        effective = config;
        break;
      case LevelMode::Exclusive:
        // Merged stack: same sets, summed ways (header comment). The sum
        // of two caches with a power-of-two shared set count keeps a
        // power-of-two set count, so the merged config validates.
        effective.size_bytes += config.size_bytes;
        effective.associativity += config.associativity;
        break;
      case LevelMode::Victim:
        // Fully-associative union of capacities: optimistic bound.
        effective.size_bytes += config.size_bytes;
        effective.associativity = effective.size_bytes / effective.line_bytes;
        break;
    }
  }
  return effective;
}

void Hierarchy::validate() const {
  expects(!levels.empty(), "Hierarchy: at least one level required");
  expects(levels.size() <= kMaxLevels, "Hierarchy: at most 3 levels supported");
  for (const CacheLevel& level : levels) {
    level.config.validate();
    expects(level.miss_latency >= 0.0 && std::isfinite(level.miss_latency),
            "Hierarchy: miss latency must be finite and >= 0");
    expects(level.writeback_latency >= 0.0 && std::isfinite(level.writeback_latency),
            "Hierarchy: write-back latency must be finite and >= 0");
    expects(level.replacement != ReplacementPolicy::TreePLRU ||
                (level.config.associativity & (level.config.associativity - 1)) == 0,
            "Hierarchy: tree-PLRU needs a power-of-two associativity");
  }
  // All-zero latencies would zero the weighted cost AND the illegal-tile
  // penalty, letting the GA return dependence-violating tiles unopposed.
  expects(latency_sum() > 0.0, "Hierarchy: at least one level needs a positive miss latency");
  expects(levels[0].mode == LevelMode::Inclusive, "Hierarchy: level 0 must be inclusive");
  for (std::size_t l = 1; l < levels.size(); ++l) {
    const CacheLevel& level = levels[l];
    expects(level.config.line_bytes == levels[0].config.line_bytes,
            "Hierarchy: all levels must share one line size");
    switch (level.mode) {
      case LevelMode::Inclusive:
        break;
      case LevelMode::Exclusive:
        expects(level.config.sets() == effective_config(l - 1).sets(),
                "Hierarchy: exclusive level must share the previous level's set count");
        break;
      case LevelMode::Victim:
        expects(level.config.sets() == 1, "Hierarchy: victim level must be fully associative");
        break;
    }
    // Effective capacities strictly increase outward by construction for
    // exclusive/victim levels (they add capacity); inclusive levels must
    // grow on their own.
    expects(effective_config(l).size_bytes > effective_config(l - 1).size_bytes,
            "Hierarchy: capacities must strictly increase outward");
  }
}

std::string Hierarchy::to_string() const {
  std::ostringstream out;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (l > 0) out << " + ";
    out << "L" << (l + 1) << " " << levels[l].config.to_string();
    if (levels[l].mode != LevelMode::Inclusive)
      out << " " << cache::to_string(levels[l].mode);
    if (levels[l].replacement != ReplacementPolicy::LRU)
      out << " " << cache::to_string(levels[l].replacement);
    out << " (miss " << levels[l].miss_latency;
    if (levels[l].writeback_latency > 0.0) out << ", wb " << levels[l].writeback_latency;
    out << ")";
  }
  return out.str();
}

Hierarchy Hierarchy::single(CacheConfig config, double miss_latency) {
  return Hierarchy{{CacheLevel{config, miss_latency}}};
}

Hierarchy Hierarchy::two_level(CacheConfig l1, double l1_miss_latency, CacheConfig l2,
                               double l2_miss_latency) {
  return Hierarchy{{CacheLevel{l1, l1_miss_latency}, CacheLevel{l2, l2_miss_latency}}};
}

}  // namespace cmetile::cache

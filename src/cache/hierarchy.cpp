#include "cache/hierarchy.hpp"

#include <cmath>
#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::cache {

double Hierarchy::latency_sum() const {
  double sum = 0.0;
  for (const CacheLevel& level : levels) sum += level.miss_latency;
  return sum;
}

double Hierarchy::weighted_cost(const std::vector<double>& misses_per_level) const {
  expects(misses_per_level.size() == levels.size(),
          "Hierarchy::weighted_cost: one miss count per level required");
  double cost = 0.0;
  for (std::size_t l = 0; l < levels.size(); ++l)
    cost += misses_per_level[l] * levels[l].miss_latency;
  return cost;
}

void Hierarchy::validate() const {
  expects(!levels.empty(), "Hierarchy: at least one level required");
  expects(levels.size() <= kMaxLevels, "Hierarchy: at most 3 levels supported");
  for (const CacheLevel& level : levels) {
    level.config.validate();
    expects(level.miss_latency >= 0.0 && std::isfinite(level.miss_latency),
            "Hierarchy: miss latency must be finite and >= 0");
  }
  // All-zero latencies would zero the weighted cost AND the illegal-tile
  // penalty, letting the GA return dependence-violating tiles unopposed.
  expects(latency_sum() > 0.0, "Hierarchy: at least one level needs a positive miss latency");
  for (std::size_t l = 1; l < levels.size(); ++l) {
    expects(levels[l].config.line_bytes == levels[0].config.line_bytes,
            "Hierarchy: all levels must share one line size");
    expects(levels[l].config.size_bytes > levels[l - 1].config.size_bytes,
            "Hierarchy: capacities must strictly increase outward");
  }
}

std::string Hierarchy::to_string() const {
  std::ostringstream out;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (l > 0) out << " + ";
    out << "L" << (l + 1) << " " << levels[l].config.to_string() << " (miss "
        << levels[l].miss_latency << ")";
  }
  return out.str();
}

Hierarchy Hierarchy::single(CacheConfig config, double miss_latency) {
  return Hierarchy{{CacheLevel{config, miss_latency}}};
}

Hierarchy Hierarchy::two_level(CacheConfig l1, double l1_miss_latency, CacheConfig l2,
                               double l2_miss_latency) {
  return Hierarchy{{CacheLevel{l1, l1_miss_latency}, CacheLevel{l2, l2_miss_latency}}};
}

}  // namespace cmetile::cache

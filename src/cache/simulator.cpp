#include "cache/simulator.hpp"

namespace cmetile::cache {

Simulator::Simulator(const CacheConfig& config) : config_(config) {
  config_.validate();
  tags_.assign((std::size_t)(config_.sets() * config_.associativity), -1);
}

AccessOutcome Simulator::access(i64 address) {
  ++stats_.accesses;
  const i64 line = config_.line_of(address);
  const i64 set = floor_mod(line, config_.sets());
  const std::size_t assoc = (std::size_t)config_.associativity;
  i64* ways = &tags_[(std::size_t)set * assoc];

  // LRU search: ways[0] is most recent.
  for (std::size_t w = 0; w < assoc; ++w) {
    if (ways[w] == line) {
      // Move to front.
      for (std::size_t v = w; v > 0; --v) ways[v] = ways[v - 1];
      ways[0] = line;
      return AccessOutcome::Hit;
    }
  }

  // Miss: insert at front, evict last.
  for (std::size_t v = assoc - 1; v > 0; --v) ways[v] = ways[v - 1];
  ways[0] = line;

  if (touched_lines_.insert(line).second) {
    ++stats_.cold_misses;
    return AccessOutcome::ColdMiss;
  }
  ++stats_.replacement_misses;
  return AccessOutcome::ReplacementMiss;
}

void Simulator::reset() {
  tags_.assign(tags_.size(), -1);
  touched_lines_.clear();
  stats_ = MissStats{};
}

std::vector<MissStats> simulate_nest(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     const CacheConfig& config) {
  Simulator sim(config);
  std::vector<MissStats> per_ref(nest.refs.size() + 1);
  ir::for_each_access(nest, layout, [&](std::size_t ref, i64 address, bool) {
    const AccessOutcome outcome = sim.access(address);
    MissStats& s = per_ref[ref];
    ++s.accesses;
    if (outcome == AccessOutcome::ColdMiss) ++s.cold_misses;
    if (outcome == AccessOutcome::ReplacementMiss) ++s.replacement_misses;
  });
  MissStats& total = per_ref.back();
  for (std::size_t r = 0; r < nest.refs.size(); ++r) total += per_ref[r];
  return per_ref;
}

}  // namespace cmetile::cache

#include "cache/simulator.hpp"

namespace cmetile::cache {

Simulator::Simulator(const CacheConfig& config) : config_(config) {
  config_.validate();
  tags_.assign((std::size_t)(config_.sets() * config_.associativity), -1);
}

AccessOutcome Simulator::access(i64 address) {
  ++stats_.accesses;
  const i64 line = config_.line_of(address);
  const i64 set = floor_mod(line, config_.sets());
  const std::size_t assoc = (std::size_t)config_.associativity;
  i64* ways = &tags_[(std::size_t)set * assoc];

  // LRU search: ways[0] is most recent.
  for (std::size_t w = 0; w < assoc; ++w) {
    if (ways[w] == line) {
      // Move to front.
      for (std::size_t v = w; v > 0; --v) ways[v] = ways[v - 1];
      ways[0] = line;
      return AccessOutcome::Hit;
    }
  }

  // Miss: insert at front, evict last.
  for (std::size_t v = assoc - 1; v > 0; --v) ways[v] = ways[v - 1];
  ways[0] = line;

  if (touched_lines_.insert(line).second) {
    ++stats_.cold_misses;
    return AccessOutcome::ColdMiss;
  }
  ++stats_.replacement_misses;
  return AccessOutcome::ReplacementMiss;
}

void Simulator::reset() {
  tags_.assign(tags_.size(), -1);
  touched_lines_.clear();
  stats_ = MissStats{};
}

HierarchySimulator::HierarchySimulator(const Hierarchy& hierarchy) {
  hierarchy.validate();
  sims_.reserve(hierarchy.depth());
  for (const CacheLevel& level : hierarchy.levels) sims_.emplace_back(level.config);
  outcomes_.resize(hierarchy.depth());
}

std::span<const AccessOutcome> HierarchySimulator::access(i64 address) {
  for (std::size_t l = 0; l < sims_.size(); ++l) outcomes_[l] = sims_[l].access(address);
  for (std::size_t l = 0; l + 1 < sims_.size(); ++l) {
    if (outcomes_[l] == AccessOutcome::Hit && outcomes_[l + 1] != AccessOutcome::Hit)
      ++inclusion_violations_;
  }
  return outcomes_;
}

void HierarchySimulator::reset() {
  for (Simulator& sim : sims_) sim.reset();
  inclusion_violations_ = 0;
}

std::vector<MissStats> simulate_nest(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     const CacheConfig& config) {
  Simulator sim(config);
  std::vector<MissStats> per_ref(nest.refs.size() + 1);
  ir::for_each_access(nest, layout, [&](std::size_t ref, i64 address, bool) {
    const AccessOutcome outcome = sim.access(address);
    MissStats& s = per_ref[ref];
    ++s.accesses;
    if (outcome == AccessOutcome::ColdMiss) ++s.cold_misses;
    if (outcome == AccessOutcome::ReplacementMiss) ++s.replacement_misses;
  });
  MissStats& total = per_ref.back();
  for (std::size_t r = 0; r < nest.refs.size(); ++r) total += per_ref[r];
  return per_ref;
}

std::vector<std::vector<MissStats>> simulate_nest(const ir::LoopNest& nest,
                                                  const ir::MemoryLayout& layout,
                                                  const Hierarchy& hierarchy) {
  HierarchySimulator sim(hierarchy);
  std::vector<std::vector<MissStats>> per_level(hierarchy.depth());
  for (auto& per_ref : per_level) per_ref.resize(nest.refs.size() + 1);
  ir::for_each_access(nest, layout, [&](std::size_t ref, i64 address, bool) {
    const std::span<const AccessOutcome> outcomes = sim.access(address);
    for (std::size_t l = 0; l < outcomes.size(); ++l) {
      MissStats& s = per_level[l][ref];
      ++s.accesses;
      if (outcomes[l] == AccessOutcome::ColdMiss) ++s.cold_misses;
      if (outcomes[l] == AccessOutcome::ReplacementMiss) ++s.replacement_misses;
    }
  });
  for (auto& per_ref : per_level) {
    for (std::size_t r = 0; r < nest.refs.size(); ++r) per_ref.back() += per_ref[r];
  }
  return per_level;
}

}  // namespace cmetile::cache

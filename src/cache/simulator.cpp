#include "cache/simulator.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace cmetile::cache {

Simulator::Simulator(const CacheConfig& config, ReplacementPolicy policy, std::uint64_t seed)
    : config_(config), policy_(policy), seed_(seed), rng_state_(splitmix64(seed)) {
  config_.validate();
  expects(policy_ != ReplacementPolicy::TreePLRU ||
              (config_.associativity & (config_.associativity - 1)) == 0,
          "Simulator: tree-PLRU needs a power-of-two associativity");
  tags_.assign((std::size_t)(config_.sets() * config_.associativity), -1);
  dirty_.assign(tags_.size(), 0);
  if (policy_ == ReplacementPolicy::TreePLRU && config_.associativity > 1)
    plru_bits_.assign((std::size_t)(config_.sets() * (config_.associativity - 1)), 0);
}

AccessOutcome Simulator::classify_miss(i64 line) {
  if (touched_lines_.insert(line).second) {
    ++stats_.cold_misses;
    return AccessOutcome::ColdMiss;
  }
  ++stats_.replacement_misses;
  return AccessOutcome::ReplacementMiss;
}

std::size_t Simulator::victim_way(i64 set) {
  const std::size_t assoc = (std::size_t)config_.associativity;
  if (policy_ == ReplacementPolicy::Random) {
    rng_state_ = splitmix64(rng_state_);
    return (std::size_t)(rng_state_ % assoc);
  }
  // TreePLRU: follow the tree bits (0 = victim in the left half).
  std::uint8_t* bits = &plru_bits_[(std::size_t)set * (assoc - 1)];
  std::size_t node = 1, lo = 0, size = assoc;
  while (size > 1) {
    size >>= 1;
    if (bits[node - 1]) {
      lo += size;
      node = 2 * node + 1;
    } else {
      node = 2 * node;
    }
  }
  return lo;
}

void Simulator::touch(i64 set, std::size_t w) {
  // Point every tree bit on w's root path away from w.
  const std::size_t assoc = (std::size_t)config_.associativity;
  if (assoc <= 1) return;
  std::uint8_t* bits = &plru_bits_[(std::size_t)set * (assoc - 1)];
  std::size_t node = 1, lo = 0, size = assoc;
  while (size > 1) {
    size >>= 1;
    const bool right = w >= lo + size;
    bits[node - 1] = right ? 0 : 1;
    if (right) {
      lo += size;
      node = 2 * node + 1;
    } else {
      node = 2 * node;
    }
  }
}

EvictedLine Simulator::install(i64 set, i64 line, bool dirty) {
  const std::size_t assoc = (std::size_t)config_.associativity;
  i64* ways = &tags_[(std::size_t)set * assoc];
  std::uint8_t* dirt = &dirty_[(std::size_t)set * assoc];
  EvictedLine evicted;
  if (policy_ == ReplacementPolicy::LRU) {
    // Insert at MRU; the tail is the victim (the pre-write-back scheme).
    if (ways[assoc - 1] != -1)
      evicted = EvictedLine{ways[assoc - 1], true, dirt[assoc - 1] != 0};
    for (std::size_t v = assoc - 1; v > 0; --v) {
      ways[v] = ways[v - 1];
      dirt[v] = dirt[v - 1];
    }
    ways[0] = line;
    dirt[0] = dirty ? 1 : 0;
  } else {
    // Position-stable: fill a free way first, then the policy's victim.
    std::size_t w = assoc;
    for (std::size_t i = 0; i < assoc; ++i) {
      if (ways[i] == -1) {
        w = i;
        break;
      }
    }
    if (w == assoc) w = victim_way(set);
    if (ways[w] != -1) evicted = EvictedLine{ways[w], true, dirt[w] != 0};
    ways[w] = line;
    dirt[w] = dirty ? 1 : 0;
    if (policy_ == ReplacementPolicy::TreePLRU) touch(set, w);
  }
  if (evicted.valid) {
    if (evicted.dirty)
      ++stats_.dirty_evictions;
    else
      ++stats_.clean_evictions;
  }
  last_eviction_ = evicted;
  return evicted;
}

AccessOutcome Simulator::access(i64 address, bool is_write) {
  ++stats_.accesses;
  last_eviction_ = EvictedLine{};
  const i64 line = config_.line_of(address);
  const i64 set = set_of_line(line);
  const std::size_t assoc = (std::size_t)config_.associativity;
  i64* ways = &tags_[(std::size_t)set * assoc];
  std::uint8_t* dirt = &dirty_[(std::size_t)set * assoc];

  for (std::size_t w = 0; w < assoc; ++w) {
    if (ways[w] == line) {
      std::size_t pos = w;
      if (policy_ == ReplacementPolicy::LRU) {
        // Move to front (tags and dirty bits travel together).
        const std::uint8_t d = dirt[w];
        for (std::size_t v = w; v > 0; --v) {
          ways[v] = ways[v - 1];
          dirt[v] = dirt[v - 1];
        }
        ways[0] = line;
        dirt[0] = d;
        pos = 0;
      } else if (policy_ == ReplacementPolicy::TreePLRU) {
        touch(set, w);
      }
      if (is_write) dirt[pos] = 1;
      return AccessOutcome::Hit;
    }
  }

  const AccessOutcome outcome = classify_miss(line);
  install(set, line, is_write);
  return outcome;
}

AccessOutcome Simulator::probe_extract(i64 address, bool& dirty) {
  ++stats_.accesses;
  last_eviction_ = EvictedLine{};
  dirty = false;
  const i64 line = config_.line_of(address);
  const i64 set = set_of_line(line);
  const std::size_t assoc = (std::size_t)config_.associativity;
  i64* ways = &tags_[(std::size_t)set * assoc];
  std::uint8_t* dirt = &dirty_[(std::size_t)set * assoc];

  for (std::size_t w = 0; w < assoc; ++w) {
    if (ways[w] == line) {
      dirty = dirt[w] != 0;
      if (policy_ == ReplacementPolicy::LRU) {
        // Compact so the valid prefix stays contiguous in recency order.
        for (std::size_t v = w; v + 1 < assoc; ++v) {
          ways[v] = ways[v + 1];
          dirt[v] = dirt[v + 1];
        }
        ways[assoc - 1] = -1;
        dirt[assoc - 1] = 0;
      } else {
        ways[w] = -1;
        dirt[w] = 0;
      }
      return AccessOutcome::Hit;
    }
  }
  return classify_miss(line);
}

EvictedLine Simulator::fill_line(i64 line, bool dirty) {
  const i64 set = set_of_line(line);
  const std::size_t assoc = (std::size_t)config_.associativity;
  i64* ways = &tags_[(std::size_t)set * assoc];
  std::uint8_t* dirt = &dirty_[(std::size_t)set * assoc];
  // Exclusive discipline never fills a line that is already present, but
  // guard anyway: merging the dirty bit is the only sound response.
  for (std::size_t w = 0; w < assoc; ++w) {
    if (ways[w] == line) {
      if (dirty) dirt[w] = 1;
      last_eviction_ = EvictedLine{};
      return EvictedLine{};
    }
  }
  return install(set, line, dirty);
}

bool Simulator::contains_line(i64 line) const {
  const i64 set = set_of_line(line);
  const std::size_t assoc = (std::size_t)config_.associativity;
  const i64* ways = &tags_[(std::size_t)set * assoc];
  for (std::size_t w = 0; w < assoc; ++w) {
    if (ways[w] == line) return true;
  }
  return false;
}

void Simulator::set_dirty(i64 line) {
  const i64 set = set_of_line(line);
  const std::size_t assoc = (std::size_t)config_.associativity;
  const i64* ways = &tags_[(std::size_t)set * assoc];
  for (std::size_t w = 0; w < assoc; ++w) {
    if (ways[w] == line) {
      dirty_[(std::size_t)set * assoc + w] = 1;
      return;
    }
  }
}

i64 Simulator::dirty_lines() const {
  i64 count = 0;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] != -1 && dirty_[i] != 0) ++count;
  }
  return count;
}

void Simulator::reset() {
  tags_.assign(tags_.size(), -1);
  dirty_.assign(dirty_.size(), 0);
  plru_bits_.assign(plru_bits_.size(), 0);
  touched_lines_.clear();
  stats_ = MissStats{};
  last_eviction_ = EvictedLine{};
  rng_state_ = splitmix64(seed_);
}

HierarchySimulator::HierarchySimulator(const Hierarchy& hierarchy, std::uint64_t seed)
    : hierarchy_(hierarchy) {
  hierarchy_.validate();
  sims_.reserve(hierarchy_.depth());
  for (std::size_t l = 0; l < hierarchy_.depth(); ++l) {
    const CacheLevel& level = hierarchy_.levels[l];
    sims_.emplace_back(level.config, level.replacement, derive_seed(seed, l));
  }
  outcomes_.resize(hierarchy_.depth());
  evictions_.resize(hierarchy_.depth());
}

std::span<const AccessOutcome> HierarchySimulator::access(i64 address, bool is_write) {
  const std::size_t n = sims_.size();
  const i64 line = hierarchy_.levels[0].config.line_of(address);

  // Probe pass. Inclusive levels always see the access (the standalone
  // convention); exclusive/victim levels only when everything above
  // missed, and a hit there extracts the line + promotes its dirty bit
  // into L1 (which just installed the line via its own miss).
  bool all_missed = true;
  for (std::size_t l = 0; l < n; ++l) {
    evictions_[l] = EvictedLine{};
    if (hierarchy_.levels[l].mode == LevelMode::Inclusive) {
      outcomes_[l] = sims_[l].access(address, is_write);
      evictions_[l] = sims_[l].last_eviction();
      if (outcomes_[l] == AccessOutcome::Hit) all_missed = false;
    } else if (all_missed) {
      bool extracted_dirty = false;
      outcomes_[l] = sims_[l].probe_extract(address, extracted_dirty);
      if (outcomes_[l] == AccessOutcome::Hit) {
        all_missed = false;
        if (extracted_dirty) sims_[0].set_dirty(line);
      }
    } else {
      outcomes_[l] = AccessOutcome::Bypass;
    }
  }

  // Fill cascade: a level's eviction is installed into the next level iff
  // that level is exclusive/victim (inclusive levels already saw the full
  // stream); the displaced line chains outward.
  for (std::size_t l = 0; l + 1 < n; ++l) {
    if (hierarchy_.levels[l + 1].mode != LevelMode::Inclusive && evictions_[l].valid)
      evictions_[l + 1] = sims_[l + 1].fill_line(evictions_[l].line, evictions_[l].dirty);
  }

  // Self-checks on the accessed line. Inclusion between adjacent levels
  // where the outer one is inclusive (the legacy check); exclusion for
  // exclusive/victim levels against every level above.
  for (std::size_t l = 0; l + 1 < n; ++l) {
    if (hierarchy_.levels[l + 1].mode == LevelMode::Inclusive &&
        outcomes_[l] != AccessOutcome::Bypass && outcomes_[l] == AccessOutcome::Hit &&
        outcomes_[l + 1] != AccessOutcome::Hit)
      ++inclusion_violations_;
  }
  for (std::size_t l = 1; l < n; ++l) {
    if (hierarchy_.levels[l].mode == LevelMode::Inclusive || !sims_[l].contains_line(line))
      continue;
    for (std::size_t j = 0; j < l; ++j) {
      if (sims_[j].contains_line(line)) {
        ++exclusion_violations_;
        break;
      }
    }
  }
  return outcomes_;
}

void HierarchySimulator::reset() {
  for (Simulator& sim : sims_) sim.reset();
  inclusion_violations_ = 0;
  exclusion_violations_ = 0;
}

std::vector<MissStats> simulate_nest(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                     const CacheConfig& config, ReplacementPolicy policy,
                                     std::uint64_t seed) {
  Simulator sim(config, policy, seed);
  std::vector<MissStats> per_ref(nest.refs.size() + 1);
  ir::for_each_access(nest, layout, [&](std::size_t ref, i64 address, bool is_write) {
    const AccessOutcome outcome = sim.access(address, is_write);
    MissStats& s = per_ref[ref];
    ++s.accesses;
    if (outcome == AccessOutcome::ColdMiss) ++s.cold_misses;
    if (outcome == AccessOutcome::ReplacementMiss) ++s.replacement_misses;
    const EvictedLine& evicted = sim.last_eviction();
    if (evicted.valid) {
      if (evicted.dirty)
        ++s.dirty_evictions;
      else
        ++s.clean_evictions;
    }
  });
  MissStats& total = per_ref.back();
  for (std::size_t r = 0; r < nest.refs.size(); ++r) total += per_ref[r];
  // One registry interaction per simulated nest (millions of accesses),
  // so the by-name lookup cost is irrelevant.
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::instance();
    reg.counter("sim.runs").increment();
    reg.counter("sim.l1.accesses").add(total.accesses);
    reg.counter("sim.l1.misses").add(total.total_misses());
    reg.counter("sim.l1.writebacks").add(total.writebacks());
  }
  return per_ref;
}

std::vector<std::vector<MissStats>> simulate_nest(const ir::LoopNest& nest,
                                                  const ir::MemoryLayout& layout,
                                                  const Hierarchy& hierarchy,
                                                  std::uint64_t seed) {
  HierarchySimulator sim(hierarchy, seed);
  const std::size_t depth = hierarchy.depth();
  std::vector<std::vector<MissStats>> per_level(depth);
  for (auto& per_ref : per_level) per_ref.resize(nest.refs.size() + 1);
  std::vector<i64> clean0(depth), dirty0(depth);
  ir::for_each_access(nest, layout, [&](std::size_t ref, i64 address, bool is_write) {
    for (std::size_t l = 0; l < depth; ++l) {
      clean0[l] = sim.stats(l).clean_evictions;
      dirty0[l] = sim.stats(l).dirty_evictions;
    }
    const std::span<const AccessOutcome> outcomes = sim.access(address, is_write);
    for (std::size_t l = 0; l < outcomes.size(); ++l) {
      MissStats& s = per_level[l][ref];
      if (outcomes[l] != AccessOutcome::Bypass) {
        ++s.accesses;
        if (outcomes[l] == AccessOutcome::ColdMiss) ++s.cold_misses;
        if (outcomes[l] == AccessOutcome::ReplacementMiss) ++s.replacement_misses;
      }
      // Evictions can land at a level the access bypassed (fill cascade):
      // attribute them by counter delta, not by outcome.
      s.clean_evictions += sim.stats(l).clean_evictions - clean0[l];
      s.dirty_evictions += sim.stats(l).dirty_evictions - dirty0[l];
    }
  });
  for (auto& per_ref : per_level) {
    for (std::size_t r = 0; r < nest.refs.size(); ++r) per_ref.back() += per_ref[r];
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::instance();
    reg.counter("sim.runs").increment();
    for (std::size_t l = 0; l < depth; ++l) {
      const MissStats& total = per_level[l].back();
      const std::string prefix = "sim.l" + std::to_string(l + 1) + ".";
      reg.counter(prefix + "accesses").add(total.accesses);
      reg.counter(prefix + "misses").add(total.total_misses());
      reg.counter(prefix + "writebacks").add(total.writebacks());
    }
  }
  return per_level;
}

}  // namespace cmetile::cache

#include "kernels/kernels.hpp"

#include "support/contracts.hpp"

namespace cmetile::kernels {

using ir::LoopNest;
using ir::NestBuilder;

namespace {

// ---- common kernels ------------------------------------------------------

/// 2D matrix transposition: a(j,i) = b(i,j).
LoopNest build_t2d(i64 n) {
  NestBuilder b("T2D");
  auto i = b.loop("i", 1, n);
  auto j = b.loop("j", 1, n);
  auto a = b.array("a", {n, n});
  auto bb = b.array("b", {n, n});
  b.statement().read(bb, {i, j}).write(a, {j, i});
  return b.build();
}

/// 3D matrix transposition, loop order j,i,k: a(k,j,i) = b(j,i,k).
LoopNest build_t3djik(i64 n) {
  NestBuilder b("T3DJIK");
  auto j = b.loop("j", 1, n);
  auto i = b.loop("i", 1, n);
  auto k = b.loop("k", 1, n);
  auto a = b.array("a", {n, n, n});
  auto bb = b.array("b", {n, n, n});
  b.statement().read(bb, {j, i, k}).write(a, {k, j, i});
  return b.build();
}

/// 3D matrix transposition, loop order i,k,j: a(k,j,i) = b(i,k,j).
LoopNest build_t3dikj(i64 n) {
  NestBuilder b("T3DIKJ");
  auto i = b.loop("i", 1, n);
  auto k = b.loop("k", 1, n);
  auto j = b.loop("j", 1, n);
  auto a = b.array("a", {n, n, n});
  auto bb = b.array("b", {n, n, n});
  b.statement().read(bb, {i, k, j}).write(a, {k, j, i});
  return b.build();
}

/// 3D Jacobi-style PDE sweep: 7-point stencil over b into a.
LoopNest build_jacobi3d(i64 n) {
  expects(n >= 4, "JACOBI3D requires n >= 4");
  NestBuilder b("JACOBI3D");
  auto k = b.loop("k", 2, n - 1);
  auto j = b.loop("j", 2, n - 1);
  auto i = b.loop("i", 2, n - 1);
  auto a = b.array("a", {n, n, n});
  auto bb = b.array("b", {n, n, n});
  b.statement()
      .read(bb, {i, j, k})
      .read(bb, {i - 1, j, k})
      .read(bb, {i + 1, j, k})
      .read(bb, {i, j - 1, k})
      .read(bb, {i, j + 1, k})
      .read(bb, {i, j, k - 1})
      .read(bb, {i, j, k + 1})
      .write(a, {i, j, k});
  return b.build();
}

/// Matrix by vector multiplication (Table 1, 3 nested loops): the matrix A
/// is applied to a small batch of vectors, y(i,r) += A(i,j)·x(j,r), which
/// gives A temporal reuse at distance N² that only tiling can capture (and
/// keeps the nest fully permutable, unlike a single 1D accumulator).
LoopNest build_matmul(i64 n) {
  NestBuilder b("MATMUL");
  auto r = b.loop("r", 1, 4);
  auto j = b.loop("j", 1, n);
  auto i = b.loop("i", 1, n);
  auto y = b.array("y", {n, 4});
  auto a = b.array("a", {n, n});
  auto x = b.array("x", {n, 4});
  b.statement().read(y, {i, r}).read(a, {i, j}).read(x, {j, r}).write(y, {i, r});
  return b.build();
}

/// Matrix multiplication, verbatim paper Fig. 1: a(i,j) += b(i,k)*c(k,j).
LoopNest build_mm(i64 n) {
  NestBuilder b("MM");
  auto i = b.loop("i", 1, n);
  auto j = b.loop("j", 1, n);
  auto k = b.loop("k", 1, n);
  auto a = b.array("a", {n, n});
  auto bb = b.array("b", {n, n});
  auto c = b.array("c", {n, n});
  b.statement().read(a, {i, j}).read(bb, {i, k}).read(c, {k, j}).write(a, {i, j});
  return b.build();
}

/// 2D ADI integration sweep (LIVERMORE kernel 8 flavour), j innermost so the
/// inner stride is 8·N bytes — near the 8KB cache size for N = 1000/2000.
LoopNest build_adi(i64 n) {
  expects(n >= 2, "ADI requires n >= 2");
  NestBuilder b("ADI");
  auto i = b.loop("i", 2, n);
  auto j = b.loop("j", 1, n);
  auto x = b.array("x", {n, n});
  auto a = b.array("a", {n, n});
  auto bb = b.array("b", {n, n});
  b.statement().read(x, {i, j}).read(x, {i - 1, j}).read(a, {i, j}).read(bb, {i - 1, j}).write(
      x, {i, j});
  b.statement().read(bb, {i, j}).read(a, {i, j}).read(bb, {i - 1, j}).write(bb, {i, j});
  return b.build();
}

// ---- triangular / imperfect kernels (extended registry) ------------------

/// LU decomposition without pivoting. Triangular (i and j start at k+1) and
/// imperfectly nested: the row-scale statement sits at depth 2 and is sunk
/// to full depth by ir::normalize (replicated per j — a dependence-sound
/// over-approximation recorded in statement_depths).
LoopNest build_lu(i64 n) {
  expects(n >= 2, "LU requires n >= 2");
  NestBuilder b("LU");
  auto k = b.loop("k", 1, n - 1);
  auto i = b.loop("i", k + 1, n);
  auto a = b.array("a", {n, n});
  b.statement().read(a, {i, k}).read(a, {k, k}).write(a, {i, k});
  auto j = b.loop("j", k + 1, n);
  b.statement().read(a, {i, j}).read(a, {i, k}).read(a, {k, j}).write(a, {i, j});
  return b.build();
}

/// Symmetric rank-k update, lower triangle only: c(i,j) += a(i,k)*a(j,k)
/// for j <= i (triangular upper bound).
LoopNest build_syrk(i64 n) {
  NestBuilder b("SYRK");
  auto i = b.loop("i", 1, n);
  auto j = b.loop("j", 1, i);
  auto k = b.loop("k", 1, n);
  auto c = b.array("c", {n, n});
  auto a = b.array("a", {n, n});
  b.statement().read(c, {i, j}).read(a, {i, k}).read(a, {j, k}).write(c, {i, j});
  return b.build();
}

// ---- NAS kernels ---------------------------------------------------------

/// Addition of update to a matrix (4 loops). Power-of-two layout: a and b
/// share cache sets exactly (column stride 4096B, bases ≡ 0 mod 32KB), so
/// neither tiling nor padding alone helps — the Table 3 "ADD" shape.
LoopNest build_add() {
  const i64 n = 512;
  NestBuilder b("ADD");
  auto l = b.loop("l", 1, 4);
  auto k = b.loop("k", 1, 4);
  auto i = b.loop("i", 1, n);
  auto j = b.loop("j", 1, n);
  auto a = b.array("a", {n, n});
  auto bb = b.array("b", {n, n, 4});
  auto u = b.array("u", {4, 4});
  b.statement().read(a, {i, j}).read(bb, {i, j, k}).read(u, {k, l}).write(a, {i, j});
  return b.build();
}

/// Block tri-diagonal solver, backward block sweep (3 loops). Four 32³
/// arrays, each exactly 8 × 32KB: every base aliases in both caches, so
/// only (inter-array) padding helps — the Table 3 "BTRIX" shape.
LoopNest build_btrix() {
  const i64 n = 32;
  NestBuilder b("BTRIX");
  auto l = b.loop("l", 1, n);
  auto k = b.loop("k", 2, n);
  auto j = b.loop("j", 1, n);
  auto s = b.array("s", {n, n, n});
  auto a = b.array("a", {n, n, n});
  auto bb = b.array("b", {n, n, n});
  auto c = b.array("c", {n, n, n});
  b.statement()
      .read(s, {j, k, l})
      .read(a, {j, k, l})
      .read(s, {j, k - 1, l})
      .read(bb, {j, k, l})
      .read(c, {j, k, l})
      .write(s, {j, k, l});
  return b.build();
}

/// Invert 3 pentadiagonals simultaneously, loop 1 (2 loops). The classic
/// nasa7 128×128 pathology: 1KB column stride, 128KB aliased bases.
LoopNest build_vpenta1() {
  const i64 n = 128;
  NestBuilder b("VPENTA1");
  auto k = b.loop("k", 3, n);
  auto j = b.loop("j", 1, n);
  auto a = b.array("a", {n, n});
  auto bb = b.array("b", {n, n});
  auto c = b.array("c", {n, n});
  auto d = b.array("d", {n, n});
  auto x = b.array("x", {n, n});
  b.statement()
      .read(a, {j, k})
      .read(bb, {j, k})
      .read(c, {j, k})
      .read(d, {j, k})
      .read(x, {j, k - 1})
      .read(x, {j, k - 2})
      .write(x, {j, k});
  return b.build();
}

/// Invert 3 pentadiagonals simultaneously, loop 2 (backward substitution).
LoopNest build_vpenta2() {
  const i64 n = 128;
  NestBuilder b("VPENTA2");
  auto k = b.loop("k", 1, n - 2);
  auto j = b.loop("j", 1, n);
  auto f = b.array("f", {n, n});
  auto x = b.array("x", {n, n});
  auto y = b.array("y", {n, n});
  auto e = b.array("e", {n, n});
  b.statement()
      .read(f, {j, k})
      .read(x, {j, k + 1})
      .read(y, {j, k})
      .read(x, {j, k + 2})
      .read(e, {j, k})
      .write(f, {j, k});
  return b.build();
}

// ---- BIHAR (FFTPACK) kernels ---------------------------------------------

/// Backward transform of a complex periodic sequence (dpssb): FFT pass
/// combining a strided twiddle operand with a transposed store. The
/// twiddle table w(k,i) (30KB) is swept once per j at a reuse distance of
/// L1*IDO iterations - a pure capacity pattern that tiling k and i fixes.
/// IDO = 60 keeps array footprints off the 8KB alias grid.
LoopNest build_dpssb() {
  const i64 ido = 60, ip = 8, l1 = 64;
  NestBuilder b("DPSSB");
  auto j = b.loop("j", 1, ip);
  auto k = b.loop("k", 1, l1);
  auto i = b.loop("i", 1, ido);
  auto cc = b.array("cc", {ido, ip, l1});
  auto ch = b.array("ch", {ido, l1, ip});
  auto w = b.array("w", {l1, ido});
  b.statement().read(cc, {i, j, k}).read(w, {k, i}).write(ch, {i, k, j});
  return b.build();
}

/// Forward transform of a complex periodic sequence (dpssf): mirrored pass.
LoopNest build_dpssf() {
  const i64 ido = 60, ip = 8, l1 = 64;
  NestBuilder b("DPSSF");
  auto j = b.loop("j", 1, ip);
  auto k = b.loop("k", 1, l1);
  auto i = b.loop("i", 1, ido);
  auto cc = b.array("cc", {ido, l1, ip});
  auto ch = b.array("ch", {ido, ip, l1});
  auto w = b.array("w", {l1, ido});
  b.statement().read(cc, {i, k, j}).read(w, {k, i}).write(ch, {i, j, k});
  return b.build();
}

/// Backward transform of a real coefficient array, loop 1 (dradbg): radix-g
/// butterfly gather. The coefficient block x(j,i) is reused across the
/// outer k loop; together with the cc/ch streams the working set exceeds
/// 8KB untiled. IDO = 31 (odd) keeps bases off the alias grid.
LoopNest build_dradbg1() {
  const i64 ido = 31, ip = 16, l1 = 32;
  NestBuilder b("DRADBG1");
  auto k = b.loop("k", 1, l1);
  auto j = b.loop("j", 1, ip);
  auto i = b.loop("i", 1, ido);
  auto cc = b.array("cc", {ido, ip, l1});
  auto ch = b.array("ch", {ido, l1, ip});
  auto x = b.array("x", {ip, ido});
  b.statement().read(cc, {i, j, k}).read(x, {j, i}).write(ch, {i, k, j});
  return b.build();
}

/// Backward transform of a real coefficient array, loop 2: scatter back
/// with a twiddle table w2(k,i) reused across the outer j loop (~8KB).
LoopNest build_dradbg2() {
  const i64 ido = 31, ip = 16, l1 = 32;
  NestBuilder b("DRADBG2");
  auto j = b.loop("j", 1, ip);
  auto k = b.loop("k", 1, l1);
  auto i = b.loop("i", 1, ido);
  auto cc = b.array("cc", {ido, ip, l1});
  auto ch = b.array("ch", {ido, l1, ip});
  auto w2 = b.array("w2", {l1, ido});
  b.statement().read(ch, {i, k, j}).read(w2, {k, i}).write(cc, {i, j, k});
  return b.build();
}

/// Forward transform of a real periodic sequence, loop 1 (dradfg): the
/// j-innermost variant - both cc (248B) and ch (7936B) stride per j step,
/// so spatial reuse along the middle i loop is fragile untiled.
LoopNest build_dradfg1() {
  const i64 ido = 31, ip = 16, l1 = 32;
  NestBuilder b("DRADFG1");
  auto k = b.loop("k", 1, l1);
  auto i = b.loop("i", 1, ido);
  auto j = b.loop("j", 1, ip);
  auto cc = b.array("cc", {ido, ip, l1});
  auto ch = b.array("ch", {ido, l1, ip});
  auto w = b.array("w", {ip, l1});
  b.statement().read(cc, {i, j, k}).read(w, {j, k}).write(ch, {i, k, j});
  return b.build();
}

/// Forward transform of a real periodic sequence, loop 2: i outermost, so
/// the w2(k,j) table (4KB) is re-swept per i against the cc/ch streams.
LoopNest build_dradfg2() {
  const i64 ido = 31, ip = 16, l1 = 32;
  NestBuilder b("DRADFG2");
  auto i = b.loop("i", 1, ido);
  auto k = b.loop("k", 1, l1);
  auto j = b.loop("j", 1, ip);
  auto cc = b.array("cc", {ido, ip, l1});
  auto ch = b.array("ch", {ido, l1, ip});
  auto w2 = b.array("w2", {l1, ip});
  b.statement().read(ch, {i, k, j}).read(w2, {k, j}).write(cc, {i, j, k});
  return b.build();
}

}  // namespace

const std::vector<KernelSpec>& registry() {
  static const std::vector<KernelSpec> kernels = {
      {"T2D", "-", "2D Matrix transposition", 2, true, 500},
      {"T3DJIK", "-", "3D Matrix transposition a[k,j,i] = b[j,i,k]", 3, true, 100},
      {"T3DIKJ", "-", "3D Matrix transposition a[k,j,i] = b[i,k,j]", 3, true, 100},
      {"JACOBI3D", "-", "Partial differential equations solver", 3, true, 100},
      {"MATMUL", "-", "Matrix by vector multiplication", 3, true, 500},
      {"MM", "LIVERMORE", "Matrix multiplication", 3, true, 500},
      {"ADI", "LIVERMORE", "2D ADI integration", 2, true, 500},
      {"ADD", "NAS", "Addition of update to a matrix", 4, false, 0},
      {"BTRIX", "NAS", "Block Tri-diagonal solver. Backward block sweep", 3, false, 0},
      {"VPENTA1", "NAS", "Invert 3 pentadiagonals simultaneously. Loop 1", 2, false, 0},
      {"VPENTA2", "NAS", "Invert 3 pentadiagonals simultaneously. Loop 2", 2, false, 0},
      {"DPSSB", "BIHAR", "unnormalized inverse of a forward transform of a complex periodic sequence",
       3, false, 0},
      {"DPSSF", "BIHAR", "forward transform of a complex periodic sequence", 3, false, 0},
      {"DRADBG1", "BIHAR", "backward transform of a real coefficient array. Loop 1", 3, false, 0},
      {"DRADBG2", "BIHAR", "backward transform of a real coefficient array. Loop 2", 3, false, 0},
      {"DRADFG1", "BIHAR", "forward transform of a real periodic sequence. Loop 1", 3, false, 0},
      {"DRADFG2", "BIHAR", "forward transform of a real periodic sequence. Loop 2", 3, false, 0},
  };
  return kernels;
}

const std::vector<KernelSpec>& extended_registry() {
  static const std::vector<KernelSpec> kernels = {
      {"LU", "-", "LU decomposition without pivoting (triangular, imperfect nest)", 3, true, 60},
      {"SYRK", "-", "Symmetric rank-k update on the lower triangle", 3, true, 60},
  };
  return kernels;
}

std::optional<KernelSpec> find_kernel(const std::string& name) {
  for (const KernelSpec& spec : registry())
    if (spec.name == name) return spec;
  for (const KernelSpec& spec : extended_registry())
    if (spec.name == name) return spec;
  return std::nullopt;
}

ir::LoopNest build_kernel(const std::string& name, i64 n) {
  if (name == "T2D") return build_t2d(n);
  if (name == "T3DJIK") return build_t3djik(n);
  if (name == "T3DIKJ") return build_t3dikj(n);
  if (name == "JACOBI3D") return build_jacobi3d(n);
  if (name == "MATMUL") return build_matmul(n);
  if (name == "MM") return build_mm(n);
  if (name == "ADI") return build_adi(n);
  if (name == "ADD") return build_add();
  if (name == "BTRIX") return build_btrix();
  if (name == "VPENTA1") return build_vpenta1();
  if (name == "VPENTA2") return build_vpenta2();
  if (name == "DPSSB") return build_dpssb();
  if (name == "DPSSF") return build_dpssf();
  if (name == "DRADBG1") return build_dradbg1();
  if (name == "DRADBG2") return build_dradbg2();
  if (name == "DRADFG1") return build_dradfg1();
  if (name == "DRADFG2") return build_dradfg2();
  if (name == "LU") return build_lu(n);
  if (name == "SYRK") return build_syrk(n);
  throw contract_error("unknown kernel: " + name);
}

std::vector<FigureEntry> figure_bars() {
  return {
      {"T2D", 100},     {"T2D", 500},      {"T2D", 2000},     {"T3DJIK", 20},
      {"T3DJIK", 100},  {"T3DJIK", 200},   {"T3DIKJ", 20},    {"T3DIKJ", 100},
      {"T3DIKJ", 200},  {"JACOBI3D", 20},  {"JACOBI3D", 100}, {"JACOBI3D", 200},
      {"MATMUL", 100},  {"MATMUL", 500},   {"MATMUL", 2000},  {"MM", 100},
      {"MM", 500},      {"MM", 2000},      {"ADI", 100},      {"ADI", 500},
      {"ADI", 2000},    {"ADD", 0},        {"BTRIX", 0},      {"VPENTA2", 0},
      {"DPSSB", 0},     {"DRADBG1", 0},    {"DRADFG1", 0},
  };
}

std::vector<FigureEntry> table3_entries(i64 cache_bytes) {
  std::vector<FigureEntry> entries = {
      {"ADD", 0}, {"BTRIX", 0}, {"VPENTA1", 0}, {"VPENTA2", 0}};
  if (cache_bytes <= 8 * 1024) {
    entries.push_back({"ADI", 1000});
    entries.push_back({"ADI", 2000});
  }
  return entries;
}

}  // namespace cmetile::kernels

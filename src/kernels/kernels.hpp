#pragma once
// The paper's benchmark kernels (Table 1): 17 perfectly nested affine
// kernels from NAS, BIHAR, LIVERMORE and "frequently used kernels".
// The original Fortran suites are not part of the paper, so these are
// reconstructions that match the published name, suite, nest depth and
// one-line description, and are engineered to exhibit the failure mode the
// paper's evaluation reports for each kernel (see DESIGN.md §6):
// capacity-dominated for the kernels tiling fixes, power-of-two
// stride/base aliasing for the padding-dominated ones (ADD, BTRIX,
// VPENTA1/2), and the ≈8KB row stride that makes ADI conflicty at 8KB
// but clean at 32KB.

#include <optional>
#include <string>
#include <vector>

#include "ir/builder.hpp"

namespace cmetile::kernels {

struct KernelSpec {
  std::string name;
  std::string suite;        ///< Table 1 "Program" column
  std::string description;  ///< Table 1 description
  int depth = 0;            ///< Table 1 "Nested loops"
  bool sized = true;        ///< takes a problem size N (figures suffix _N)
  i64 default_size = 0;     ///< for sized kernels, a representative N
};

/// All Table-1 kernels, in the paper's order.
const std::vector<KernelSpec>& registry();

/// Kernels beyond Table 1 exercising the polyhedral front-end: triangular
/// domains (LU, SYRK) and imperfect nesting (LU's row-scale statement).
/// Kept separate so the Table-1 registry — and everything derived from it
/// (figures, sweeps, fingerprints) — is unchanged.
const std::vector<KernelSpec>& extended_registry();

/// Look up a spec by name (case-sensitive); nullopt if unknown.
std::optional<KernelSpec> find_kernel(const std::string& name);

/// Build a kernel; `n` is ignored for fixed-size kernels (pass 0).
ir::LoopNest build_kernel(const std::string& name, i64 n);

/// One bar of Figures 8/9: kernel name + problem size (0 = fixed size).
struct FigureEntry {
  std::string name;
  i64 size = 0;

  std::string label() const { return size > 0 ? name + "_" + std::to_string(size) : name; }
};

/// The 27 bars of Figures 8 and 9, in the paper's x-axis order.
std::vector<FigureEntry> figure_bars();

/// The kernels of Table 3 (padding study): ADD, BTRIX, VPENTA1, VPENTA2
/// for both caches, plus ADI_1000 / ADI_2000 for the 8KB cache.
std::vector<FigureEntry> table3_entries(i64 cache_bytes);

}  // namespace cmetile::kernels

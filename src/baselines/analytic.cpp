#include "baselines/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace cmetile::baselines {

namespace {

/// Minimum circular gap (in bytes) between the first `rows` row addresses
/// spaced `stride` apart, modulo the cache way size.
i64 min_gap(i64 stride, i64 rows, i64 way_bytes) {
  i64 gap = way_bytes;
  for (i64 j = 1; j < rows; ++j) {
    const i64 r = floor_mod(j * stride, way_bytes);
    gap = std::min({gap, r, way_bytes - r});
  }
  return gap;
}

/// Pick the two innermost loops indexing the dominant array's first two
/// dimensions; returns {row_loop, col_loop} or nullopt-like {-1,-1}.
struct LoopPair {
  int row = -1;
  int col = -1;
  std::size_t array = 0;
};

LoopPair dominant_loop_pair(const ir::LoopNest& nest, const ir::MemoryLayout& layout) {
  LoopPair pair;
  i64 best_footprint = -1;
  for (std::size_t a = 0; a < nest.arrays.size(); ++a) {
    if (nest.arrays[a].rank() < 2) continue;
    if (layout.placement(a).footprint <= best_footprint) continue;
    // Find a reference to this array and the loops driving dims 0 and 1.
    for (const ir::Reference& ref : nest.refs) {
      if (ref.array != a) continue;
      int row = -1, col = -1;
      for (std::size_t d = 0; d < nest.depth(); ++d) {
        if (ref.subscripts[0].coeff(d) != 0 && row < 0) row = (int)d;
        if (ref.subscripts[1].coeff(d) != 0 && col < 0) col = (int)d;
      }
      if (row >= 0 && col >= 0 && row != col) {
        pair.row = row;
        pair.col = col;
        pair.array = a;
        best_footprint = layout.placement(a).footprint;
      }
      break;
    }
  }
  return pair;
}

}  // namespace

i64 ess_square_tile(i64 column_stride_bytes, i64 element_bytes, const cache::CacheConfig& cache) {
  expects(column_stride_bytes > 0 && element_bytes > 0, "ess_square_tile: bad strides");
  const i64 way = cache.way_bytes();
  i64 best = 1;
  // Largest T with min circular gap among T rows >= T elements (so that a
  // TxT tile's rows cannot evict each other).
  i64 gap = way;
  for (i64 t = 2; (i64)t * element_bytes <= way; ++t) {
    const i64 r = floor_mod((t - 1) * column_stride_bytes, way);
    gap = std::min({gap, r, way - r});
    if (gap >= t * element_bytes)
      best = t;
    else
      break;
  }
  return best;
}

transform::TileVector lrw_tiles(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                const cache::CacheConfig& cache) {
  transform::TileVector tiles = transform::TileVector::untiled(nest);
  const LoopPair pair = dominant_loop_pair(nest, layout);
  if (pair.row < 0) return tiles;
  const i64 stride = layout.placement(pair.array).strides[1];
  const i64 elem = nest.arrays[pair.array].element_size;
  const i64 t = ess_square_tile(stride, elem, cache);
  tiles.t[(std::size_t)pair.row] = std::min(tiles.t[(std::size_t)pair.row], t);
  tiles.t[(std::size_t)pair.col] = std::min(tiles.t[(std::size_t)pair.col], t);
  return tiles;
}

transform::TileVector tss_tiles(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                const cache::CacheConfig& cache) {
  transform::TileVector tiles = transform::TileVector::untiled(nest);
  const LoopPair pair = dominant_loop_pair(nest, layout);
  if (pair.row < 0) return tiles;
  const i64 stride = layout.placement(pair.array).strides[1];
  const i64 elem = nest.arrays[pair.array].element_size;
  const i64 way = cache.way_bytes();
  const i64 u_row = tiles.t[(std::size_t)pair.row];
  const i64 u_col = tiles.t[(std::size_t)pair.col];

  // Candidate heights from the gap sequence (the Euclidean remainders of
  // (way, stride) generate exactly the break points of min_gap).
  i64 best_rows = 1, best_cols = 1, best_footprint = 0;
  const i64 cache_budget = way * 3 / 4;  // leave room for cross interference
  for (i64 cols = 1; cols <= std::min<i64>(u_col, 128); ++cols) {
    const i64 gap = min_gap(stride, cols, way);
    const i64 rows = std::min<i64>(u_row, gap / elem);
    if (rows < 1) break;
    const i64 footprint = rows * cols * elem;
    if (footprint > cache_budget) continue;
    if (footprint > best_footprint) {
      best_footprint = footprint;
      best_rows = rows;
      best_cols = cols;
    }
  }
  tiles.t[(std::size_t)pair.row] = best_rows;
  tiles.t[(std::size_t)pair.col] = best_cols;
  return tiles;
}

transform::TileVector sarkar_megiddo_tiles(const ir::LoopNest& nest,
                                           const ir::MemoryLayout& layout,
                                           const cache::CacheConfig& cache) {
  transform::TileVector tiles = transform::TileVector::untiled(nest);
  const LoopPair pair = dominant_loop_pair(nest, layout);
  if (pair.row < 0) return tiles;
  const i64 elem = nest.arrays[pair.array].element_size;
  const i64 line = cache.line_bytes;
  const i64 way = cache.way_bytes();
  const i64 u_row = tiles.t[(std::size_t)pair.row];
  const i64 u_col = tiles.t[(std::size_t)pair.col];

  // Analytic capacity model: lines touched per tile ≈ rows/line_elems·cols
  // (dominant array) + rows + cols (the other operands); cost per iteration
  // = lines / (rows·cols). Evaluate on a constant candidate family.
  const i64 line_elems = std::max<i64>(1, line / elem);
  const i64 capacity_elems = way / elem / 2;  // half-cache working-set target
  double best_cost = 1e300;
  i64 best_rows = 1, best_cols = 1;
  const i64 side = std::max<i64>(1, (i64)std::sqrt((double)capacity_elems));
  const i64 candidates[] = {side,
                            side / 2,
                            side * 2,
                            line_elems,
                            line_elems * 4,
                            capacity_elems / std::max<i64>(1, line_elems),
                            u_row,
                            u_col};
  for (const i64 rows_raw : candidates) {
    for (const i64 cols_raw : candidates) {
      const i64 rows = std::clamp<i64>(rows_raw, 1, u_row);
      const i64 cols = std::clamp<i64>(cols_raw, 1, u_col);
      if (rows * cols > capacity_elems) continue;
      const double lines_touched =
          (double)(ceil_div(rows, line_elems) * cols + rows + cols);
      const double cost = lines_touched / (double)(rows * cols);
      if (cost < best_cost) {
        best_cost = cost;
        best_rows = rows;
        best_cols = cols;
      }
    }
  }
  tiles.t[(std::size_t)pair.row] = best_rows;
  tiles.t[(std::size_t)pair.col] = best_cols;
  return tiles;
}

}  // namespace cmetile::baselines

#include "baselines/search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace cmetile::baselines {

namespace {

std::vector<i64> random_point(const std::vector<VarDomain>& domains, Rng& rng) {
  std::vector<i64> x(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d)
    x[d] = rng.uniform_int(domains[d].lo, domains[d].hi);
  return x;
}

/// Coordinate neighbourhood: ±1 and ±max(1, 25% of the domain) per variable.
std::vector<std::vector<i64>> neighbours(const std::vector<VarDomain>& domains,
                                         std::span<const i64> x) {
  std::vector<std::vector<i64>> out;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    const i64 big = std::max<i64>(1, domains[d].size() / 4);
    for (const i64 step : {i64{1}, -i64{1}, big, -big}) {
      std::vector<i64> y(x.begin(), x.end());
      y[d] = std::clamp(y[d] + step, domains[d].lo, domains[d].hi);
      if (y[d] != x[d]) out.push_back(std::move(y));
    }
  }
  return out;
}

}  // namespace

SearchResult random_search(const std::vector<VarDomain>& domains, const Objective& objective,
                           i64 budget, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0xA11CE));
  SearchResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  for (i64 e = 0; e < budget; ++e) {
    std::vector<i64> x = random_point(domains, rng);
    const double cost = objective(x);
    ++result.evaluations;
    if (cost < result.best_cost) {
      result.best_cost = cost;
      result.best_values = std::move(x);
    }
  }
  return result;
}

SearchResult hill_climb(const std::vector<VarDomain>& domains, const Objective& objective,
                        i64 budget, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0xC11E3));
  SearchResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  while (result.evaluations < budget) {
    std::vector<i64> x = random_point(domains, rng);
    double cost = objective(x);
    ++result.evaluations;
    bool improved = true;
    while (improved && result.evaluations < budget) {
      improved = false;
      for (std::vector<i64>& y : neighbours(domains, x)) {
        if (result.evaluations >= budget) break;
        const double c = objective(y);
        ++result.evaluations;
        if (c < cost) {
          cost = c;
          x = std::move(y);
          improved = true;
          break;  // first-improvement descent
        }
      }
    }
    if (cost < result.best_cost) {
      result.best_cost = cost;
      result.best_values = x;
    }
  }
  return result;
}

SearchResult simulated_annealing(const std::vector<VarDomain>& domains,
                                 const Objective& objective, i64 budget, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0x5AD0E));
  SearchResult result;
  std::vector<i64> x = random_point(domains, rng);
  double cost = objective(x);
  result.evaluations = 1;
  result.best_cost = cost;
  result.best_values = x;

  // Initial temperature from a short random probe of cost deltas.
  double t0 = std::abs(cost) + 1.0;
  const double t_end = t0 * 1e-4;
  const double steps = (double)std::max<i64>(budget - 1, 1);
  const double alpha = std::pow(t_end / t0, 1.0 / steps);

  double temp = t0;
  while (result.evaluations < budget) {
    // Propose: jump one coordinate to a nearby value.
    std::vector<i64> y = x;
    const std::size_t d = (std::size_t)rng.uniform_int(0, (i64)domains.size() - 1);
    const i64 span = std::max<i64>(1, domains[d].size() / 8);
    y[d] = std::clamp(y[d] + rng.uniform_int(-span, span), domains[d].lo, domains[d].hi);
    const double c = objective(y);
    ++result.evaluations;
    if (c <= cost || rng.bernoulli(std::exp((cost - c) / std::max(temp, 1e-12)))) {
      cost = c;
      x = std::move(y);
      if (cost < result.best_cost) {
        result.best_cost = cost;
        result.best_values = x;
      }
    }
    temp *= alpha;
  }
  return result;
}

SearchResult exhaustive_search(const std::vector<VarDomain>& domains, const Objective& objective) {
  SearchResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  std::vector<i64> x(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d) x[d] = domains[d].lo;
  while (true) {
    const double cost = objective(x);
    ++result.evaluations;
    if (cost < result.best_cost) {
      result.best_cost = cost;
      result.best_values = x;
    }
    std::size_t d = domains.size();
    bool done = true;
    while (d > 0) {
      --d;
      if (x[d] < domains[d].hi) {
        ++x[d];
        done = false;
        break;
      }
      x[d] = domains[d].lo;
    }
    if (done) return result;
  }
}

}  // namespace cmetile::baselines

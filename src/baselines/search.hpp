#pragma once
// Generic global-search baselines over integer box domains, used by the
// ablation bench to justify the paper's choice of a genetic algorithm
// (§3.1 discusses NLP alternatives: the objective is non-linear, integer,
// multi-modal). All searches minimize the same objective interface as the
// GA and run on a fixed evaluation budget so comparisons are fair.

#include <span>
#include <functional>
#include <vector>

#include "ga/encoding.hpp"

namespace cmetile::baselines {

using ga::VarDomain;
using Objective = std::function<double(std::span<const i64> values)>;

struct SearchResult {
  std::vector<i64> best_values;
  double best_cost = 0.0;
  i64 evaluations = 0;
};

/// Uniform random sampling of the domain box.
SearchResult random_search(const std::vector<VarDomain>& domains, const Objective& objective,
                           i64 budget, std::uint64_t seed);

/// Random-restart steepest-descent over ±1/±25% coordinate neighbourhoods.
SearchResult hill_climb(const std::vector<VarDomain>& domains, const Objective& objective,
                        i64 budget, std::uint64_t seed);

/// Simulated annealing (geometric cooling, coordinate-step proposals).
SearchResult simulated_annealing(const std::vector<VarDomain>& domains,
                                 const Objective& objective, i64 budget, std::uint64_t seed);

/// Full enumeration of the domain box ("the optimal solution" oracle the
/// paper compares against; only for small boxes).
SearchResult exhaustive_search(const std::vector<VarDomain>& domains, const Objective& objective);

}  // namespace cmetile::baselines

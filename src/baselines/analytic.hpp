#pragma once
// Analytic tile-size selectors from the related work the paper discusses
// (§5). They are orders of magnitude cheaper than the CME+GA search but
// model far less: LRW only avoids self-interference of one array, TSS adds
// a cross-interference footprint heuristic, and the Sarkar–Megiddo-style
// selector evaluates a capacity cost model on a constant-size candidate
// set. The ablation bench compares the replacement miss ratios of their
// tiles against the GA's on the same kernels.
//
// Faithfulness notes (documented deviations):
//  * LRW is the ESS algorithm from Lam/Rothberg/Wolf '91: the largest
//    square tile whose rows do not self-interfere in the cache.
//  * TSS follows Coleman–McKinley '95 in spirit: candidate tile heights
//    come from the gap structure of row addresses modulo the cache (their
//    Euclidean-remainder sequence generates the same candidates); the
//    selected tile maximizes footprint under a cache budget.
//  * Sarkar–Megiddo '00 derive a closed form from an analytical model; we
//    evaluate the same style of model (distinct-lines-per-tile) on a small
//    candidate family, which preserves the "constant number of model
//    evaluations" property.
//
// All selectors tile the two innermost loops that actually index the
// dominant (largest-footprint) array and leave other loops untiled;
// kernels without such structure fall back to the untiled vector.

#include "cache/cache.hpp"
#include "ir/layout.hpp"
#include "transform/tiling.hpp"

namespace cmetile::baselines {

/// Largest square tile side avoiding self-interference between rows spaced
/// `column_stride_bytes` apart (ESS); result in iterations, >= 1.
i64 ess_square_tile(i64 column_stride_bytes, i64 element_bytes,
                    const cache::CacheConfig& cache);

transform::TileVector lrw_tiles(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                const cache::CacheConfig& cache);

transform::TileVector tss_tiles(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                                const cache::CacheConfig& cache);

transform::TileVector sarkar_megiddo_tiles(const ir::LoopNest& nest,
                                           const ir::MemoryLayout& layout,
                                           const cache::CacheConfig& cache);

}  // namespace cmetile::baselines

#pragma once
// Process-wide metrics registry (DESIGN.md §17): named counters, sums,
// gauges and log₂-bucket histograms shared by every layer. Two design
// rules keep this safe to leave compiled into production binaries:
//
//  - Disabled by default, ≈zero cost. Every mutator starts with one
//    relaxed atomic load of the global enable flag and returns when it is
//    off (the null-sink fast path; bench_perf_solver's
//    BM_ClassifyBatchTelemetry guards the enabled-vs-disabled delta, and
//    instrumentation sites record at batch/run granularity — never inside
//    per-point loops).
//  - Lock-free recording. A Counter/Sum spreads its adds across a small
//    set of cache-line-padded atomic cells indexed by a per-thread slot,
//    mirroring the per-shard-accumulate-then-merge discipline of
//    cme::classify_batch — concurrent writers (parallel_for shards, the
//    GA's population evaluation, the worker heartbeat thread) never
//    contend on one line, and snapshot() merges the cells with relaxed
//    loads at read time. Registration (the first use of a name) takes a
//    mutex; call sites therefore cache the handle in a function-local
//    static.
//
// Snapshots are deterministic in *shape*: metrics appear sorted by name,
// so a given set of recordings always serializes to one canonical byte
// string (the sweep worker protocol piggybacks snapshots on result and
// heartbeat lines and round-trips them byte-identically).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile::obs {

/// Global telemetry switch. Off (the default) turns every Counter/Sum/
/// Gauge/Histogram mutator into a load-and-branch; on, recording is
/// relaxed atomics only. Flipping it mid-run is safe (worker processes
/// enable it when they enter the sweep protocol loop).
bool enabled();
void set_enabled(bool on);

/// Number of histogram buckets. Bucket 0 counts values <= 0; bucket b >= 1
/// counts values in [2^(b-1), 2^b) — i.e. bucket index = bit_width(value),
/// clamped to the last bucket.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Histogram bucket index for a value (exposed for tests/goldens).
inline std::size_t histogram_bucket(i64 value) {
  if (value <= 0) return 0;
  const std::size_t b = (std::size_t)std::bit_width((std::uint64_t)value);
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

namespace detail {

/// One cache line per cell so concurrent writers on different slots never
/// false-share.
struct alignas(64) PaddedCell {
  std::atomic<i64> value{0};
};

struct alignas(64) PaddedDoubleCell {
  std::atomic<double> value{0.0};
};

/// Per-thread shard slot: threads are striped across kShards cells. The
/// stripe count trades memory per metric against contention; 16 padded
/// cells = 1KB per counter, and recording sites are batch-granularity so
/// residual collisions are rare and still lock-free.
inline constexpr std::size_t kShards = 16;
std::size_t shard_slot();

}  // namespace detail

/// Monotonic integer counter.
class Counter {
 public:
  void add(i64 n) {
    if (!enabled()) return;
    cells_[detail::shard_slot()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  i64 value() const {
    i64 total = 0;
    for (const auto& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedCell, detail::kShards> cells_;
};

/// Monotonic double accumulator (e.g. summed miss ratios across rows).
class Sum {
 public:
  void add(double v) {
    if (!enabled()) return;
    auto& cell = cells_[detail::shard_slot()].value;
    double cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }

  double value() const {
    double total = 0.0;
    for (const auto& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& cell : cells_) cell.value.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedDoubleCell, detail::kShards> cells_;
};

/// Last-observed value (best fitness of the most recent GA generation,
/// ...). Concurrent setters race benignly: one of the written values wins.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// log₂-bucket histogram of integer observations (batch sizes, costs).
/// Buckets are single atomics, not striped: observation sites are batch-
/// granularity, so contention is negligible next to the work observed.
class Histogram {
 public:
  void observe(i64 value) {
    if (!enabled()) return;
    buckets_[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    auto& sum = sum_;
    double cur = sum.load(std::memory_order_relaxed);
    while (!sum.compare_exchange_weak(cur, cur + (double)value, std::memory_order_relaxed)) {
    }
  }

  i64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  i64 bucket(std::size_t b) const { return buckets_[b].load(std::memory_order_relaxed); }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<i64>, kHistogramBuckets> buckets_{};
  std::atomic<i64> count_{0};
  std::atomic<double> sum_{0.0};
};

// -- Snapshots ------------------------------------------------------------

struct HistogramSnapshot {
  std::string name;
  i64 count = 0;
  double sum = 0.0;
  /// Sparse: only non-empty buckets, ascending index.
  std::vector<std::pair<std::size_t, i64>> buckets;

  friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

/// A merged, point-in-time view of one registry — or, via merge(), of a
/// whole fleet. Every section is sorted by name, so equal contents always
/// compare (and serialize) equal.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, i64>> counters;
  std::vector<std::pair<std::string, double>> sums;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && sums.empty() && gauges.empty() && histograms.empty();
  }

  /// Name-wise fleet aggregation: counters/sums/histogram buckets add;
  /// gauges keep the maximum (a deterministic choice for last-observed
  /// values coming from peers with no global ordering).
  void merge(const MetricsSnapshot& other);

  /// Counter value by name; 0 when absent.
  i64 counter(std::string_view name) const;
  /// Sum value by name; 0.0 when absent.
  double sum(std::string_view name) const;

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

// -- Registry -------------------------------------------------------------

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// The process-wide registry every instrumentation site records into.
  static Registry& instance();

  /// Intern a metric by name. The returned reference lives as long as the
  /// registry; call sites cache it in a function-local static. A name is
  /// one kind only — re-interning it as a different kind is a contract
  /// error.
  Counter& counter(std::string_view name);
  Sum& sum(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Merged point-in-time view, sorted by name. Metrics that were never
  /// recorded (all-zero) are included — the shape of a snapshot depends
  /// only on which sites have been reached, not on timing.
  MetricsSnapshot snapshot() const;

  /// Zero every metric (handles stay valid). Tests and per-run deltas.
  void reset();

 private:
  struct Entry;
  Entry& intern(std::string_view name, int kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace cmetile::obs

#include "obs/metrics.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace cmetile::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {

std::size_t shard_slot() {
  // Thread ids are assigned on first use and never reused for the life of
  // the thread, so each thread records into a stable stripe.
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

// One tagged entry per interned name. The kind tag exists only to catch
// the contract error of reusing a name across kinds.
struct Registry::Entry {
  std::string name;
  int kind;  // 0 counter, 1 sum, 2 gauge, 3 histogram
  Counter counter;
  Sum sum;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;  // heap: 64 atomics, only when used

  Entry(std::string_view n, int k) : name(n), kind(k) {
    if (kind == 3) histogram = std::make_unique<Histogram>();
  }
};

Registry::~Registry() = default;

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leak: usable during atexit
  return *registry;
}

Registry::Entry& Registry::intern(std::string_view name, int kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      expects(entry->kind == kind, "metric name reused with a different kind");
      return *entry;
    }
  }
  entries_.push_back(std::make_unique<Entry>(name, kind));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name) { return intern(name, 0).counter; }
Sum& Registry::sum(std::string_view name) { return intern(name, 1).sum; }
Gauge& Registry::gauge(std::string_view name) { return intern(name, 2).gauge; }
Histogram& Registry::histogram(std::string_view name) { return *intern(name, 3).histogram; }

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : entries_) {
      switch (entry->kind) {
        case 0:
          snap.counters.emplace_back(entry->name, entry->counter.value());
          break;
        case 1:
          snap.sums.emplace_back(entry->name, entry->sum.value());
          break;
        case 2:
          snap.gauges.emplace_back(entry->name, entry->gauge.value());
          break;
        case 3: {
          HistogramSnapshot h;
          h.name = entry->name;
          h.count = entry->histogram->count();
          h.sum = entry->histogram->sum();
          for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
            const i64 n = entry->histogram->bucket(b);
            if (n != 0) h.buckets.emplace_back(b, n);
          }
          snap.histograms.push_back(std::move(h));
          break;
        }
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.sums.begin(), snap.sums.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) { return a.name < b.name; });
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case 0: entry->counter.reset(); break;
      case 1: entry->sum.reset(); break;
      case 2: entry->gauge.reset(); break;
      case 3: entry->histogram->reset(); break;
    }
  }
}

namespace {

// Name-keyed additive merge of two sorted (name, value) lists.
template <typename T, typename Combine>
void merge_sorted(std::vector<std::pair<std::string, T>>& into,
                  const std::vector<std::pair<std::string, T>>& from, Combine combine) {
  std::vector<std::pair<std::string, T>> merged;
  merged.reserve(into.size() + from.size());
  std::size_t i = 0, j = 0;
  while (i < into.size() || j < from.size()) {
    if (j >= from.size() || (i < into.size() && into[i].first < from[j].first)) {
      merged.push_back(into[i++]);
    } else if (i >= into.size() || from[j].first < into[i].first) {
      merged.push_back(from[j++]);
    } else {
      merged.emplace_back(into[i].first, combine(into[i].second, from[j].second));
      ++i;
      ++j;
    }
  }
  into = std::move(merged);
}

void merge_histogram(HistogramSnapshot& into, const HistogramSnapshot& from) {
  into.count += from.count;
  into.sum += from.sum;
  std::vector<std::pair<std::size_t, i64>> merged;
  merged.reserve(into.buckets.size() + from.buckets.size());
  std::size_t i = 0, j = 0;
  while (i < into.buckets.size() || j < from.buckets.size()) {
    if (j >= from.buckets.size() ||
        (i < into.buckets.size() && into.buckets[i].first < from.buckets[j].first)) {
      merged.push_back(into.buckets[i++]);
    } else if (i >= into.buckets.size() || from.buckets[j].first < into.buckets[i].first) {
      merged.push_back(from.buckets[j++]);
    } else {
      merged.emplace_back(into.buckets[i].first, into.buckets[i].second + from.buckets[j].second);
      ++i;
      ++j;
    }
  }
  into.buckets = std::move(merged);
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_sorted(counters, other.counters, [](i64 a, i64 b) { return a + b; });
  merge_sorted(sums, other.sums, [](double a, double b) { return a + b; });
  merge_sorted(gauges, other.gauges, [](double a, double b) { return a > b ? a : b; });

  std::vector<HistogramSnapshot> merged;
  merged.reserve(histograms.size() + other.histograms.size());
  std::size_t i = 0, j = 0;
  while (i < histograms.size() || j < other.histograms.size()) {
    if (j >= other.histograms.size() ||
        (i < histograms.size() && histograms[i].name < other.histograms[j].name)) {
      merged.push_back(std::move(histograms[i++]));
    } else if (i >= histograms.size() || other.histograms[j].name < histograms[i].name) {
      merged.push_back(other.histograms[j++]);
    } else {
      merge_histogram(histograms[i], other.histograms[j]);
      merged.push_back(std::move(histograms[i]));
      ++i;
      ++j;
    }
  }
  histograms = std::move(merged);
}

i64 MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::sum(std::string_view name) const {
  for (const auto& [n, v] : sums) {
    if (n == name) return v;
  }
  return 0.0;
}

}  // namespace cmetile::obs

#pragma once
// RAII trace spans emitting Chrome trace_event JSON (DESIGN.md §17).
// `init_trace(path, process_name)` opens one file per process; Span
// records a "X" (complete) event with microsecond start/duration from
// steady_clock, tagged with the process pid and the OS thread id.
// steady_clock is CLOCK_MONOTONIC on Linux — a system-wide clock — so
// scheduler and worker traces taken on the same host share a timeline and
// can be merged into one Perfetto-loadable file (tools/check_trace.py
// merge).
//
// Like the metrics registry, tracing is off unless initialized: Span's
// constructor is a single relaxed load when no trace file is open, so
// spans stay compiled into production code paths.

#include <cstdint>
#include <string>
#include <string_view>

#include "support/int_math.hpp"

namespace cmetile::obs {

/// Open the per-process trace file and emit process metadata. Returns
/// false (leaving tracing off) if the file cannot be opened. Registers an
/// atexit hook so processes that leave via std::exit — the sweep worker
/// does — still flush a well-formed JSON document.
bool init_trace(const std::string& path, std::string_view process_name);

/// Close the trace file (idempotent). Emitted automatically at exit.
void shutdown_trace();

/// True when a trace file is open.
bool trace_active();

/// Microseconds since the steady_clock epoch (the trace timebase).
i64 trace_now_us();

/// Emit a "C" counter event (a named time-series Perfetto plots as a
/// track), e.g. GA best fitness per generation. No-op when inactive.
void trace_counter(std::string_view name, std::string_view series, double value);

/// Emit an "i" instant event. No-op when inactive.
void trace_instant(std::string_view name);

/// Emit an "X" complete event with explicit bounds (from trace_now_us()).
/// For retroactive spans whose lifetime does not match a C++ scope — e.g.
/// cmetile-serve stamps enqueue/schedule/respond phases of a request when
/// the response goes out, not while it waits. Callers must emit in
/// non-decreasing end-time order per thread to keep the file compatible
/// with check_trace.py's monotonicity check. No-op when inactive;
/// negative durations clamp to zero like Span.
void trace_complete_event(std::string_view name, i64 start_us, i64 end_us);

/// RAII scope producing one "X" complete event covering its lifetime.
/// Cheap to construct when tracing is off; never throws.
class Span {
 public:
  explicit Span(std::string_view name) {
    if (trace_active()) begin(name);
  }
  ~Span() {
    if (start_us_ >= 0) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(std::string_view name);
  void end();

  std::string name_;
  i64 start_us_ = -1;
};

}  // namespace cmetile::obs

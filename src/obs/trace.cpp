#include "obs/trace.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace cmetile::obs {

namespace {

// All writer state behind one mutex; events are a line each so the file is
// greppable and a truncated trace (crash before shutdown) salvages by
// dropping the last partial line and closing the array.
struct TraceWriter {
  std::mutex mutex;
  std::ofstream out;
  bool first_event = true;
  int pid = 0;
};

TraceWriter& writer() {
  static TraceWriter* w = new TraceWriter();  // leak: usable during atexit
  return *w;
}

std::atomic<bool> g_active{false};

i64 os_thread_id() {
#ifdef SYS_gettid
  return (i64)::syscall(SYS_gettid);
#else
  return (i64)::getpid();
#endif
}

// Minimal JSON string escape; trace names are ASCII identifiers but user
// paths can reach here via process names.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if ((unsigned char)c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Append one event object. Caller holds no lock.
void emit_event(const std::string& body) {
  TraceWriter& w = writer();
  std::lock_guard<std::mutex> lock(w.mutex);
  if (!w.out.is_open()) return;
  if (!w.first_event) w.out << ",\n";
  w.first_event = false;
  w.out << body;
}

}  // namespace

bool trace_active() { return g_active.load(std::memory_order_relaxed); }

i64 trace_now_us() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch()).count();
}

bool init_trace(const std::string& path, std::string_view process_name) {
  TraceWriter& w = writer();
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.out.is_open()) return true;
  w.out.open(path, std::ios::trunc);
  if (!w.out.is_open()) return false;
  w.pid = (int)::getpid();
  w.first_event = true;
  w.out << "{\"traceEvents\":[\n";
  // Process metadata so Perfetto labels the track by role, not pid.
  w.out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << w.pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << escape(process_name) << "\"}}";
  w.first_event = false;
  g_active.store(true, std::memory_order_relaxed);
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(shutdown_trace);
  }
  return true;
}

void shutdown_trace() {
  TraceWriter& w = writer();
  std::lock_guard<std::mutex> lock(w.mutex);
  if (!w.out.is_open()) return;
  g_active.store(false, std::memory_order_relaxed);
  w.out << "\n]}\n";
  w.out.close();
}

void trace_counter(std::string_view name, std::string_view series, double value) {
  if (!trace_active()) return;
  TraceWriter& w = writer();
  std::string body = "{\"ph\":\"C\",\"name\":\"" + escape(name) +
                     "\",\"pid\":" + std::to_string(w.pid) + ",\"tid\":" +
                     std::to_string(os_thread_id()) + ",\"ts\":" + std::to_string(trace_now_us()) +
                     ",\"args\":{\"" + escape(series) + "\":" + std::to_string(value) + "}}";
  emit_event(body);
}

void trace_instant(std::string_view name) {
  if (!trace_active()) return;
  TraceWriter& w = writer();
  std::string body = "{\"ph\":\"i\",\"name\":\"" + escape(name) +
                     "\",\"pid\":" + std::to_string(w.pid) + ",\"tid\":" +
                     std::to_string(os_thread_id()) + ",\"ts\":" + std::to_string(trace_now_us()) +
                     ",\"s\":\"t\"}";
  emit_event(body);
}

void trace_complete_event(std::string_view name, i64 start_us, i64 end_us) {
  if (!trace_active()) return;
  i64 dur = end_us - start_us;
  if (dur < 0) dur = 0;
  TraceWriter& w = writer();
  std::string body = "{\"ph\":\"X\",\"name\":\"" + escape(name) +
                     "\",\"pid\":" + std::to_string(w.pid) + ",\"tid\":" +
                     std::to_string(os_thread_id()) + ",\"ts\":" + std::to_string(start_us) +
                     ",\"dur\":" + std::to_string(dur) + "}";
  emit_event(body);
}

void Span::begin(std::string_view name) {
  name_ = name;
  start_us_ = trace_now_us();
}

void Span::end() {
  // The trace may have shut down while the span was open (atexit during an
  // in-flight scope); emit_event handles the closed file.
  const i64 end_us = trace_now_us();
  i64 dur = end_us - start_us_;
  if (dur < 0) dur = 0;
  TraceWriter& w = writer();
  std::string body = "{\"ph\":\"X\",\"name\":\"" + escape(name_) +
                     "\",\"pid\":" + std::to_string(w.pid) + ",\"tid\":" +
                     std::to_string(os_thread_id()) + ",\"ts\":" + std::to_string(start_us_) +
                     ",\"dur\":" + std::to_string(dur) + "}";
  emit_event(body);
}

}  // namespace cmetile::obs

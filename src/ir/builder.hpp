#pragma once
// Fluent construction of loop nests. This is the user-facing substitute for
// the paper's Fortran front end: a kernel is declared with loops, arrays
// and statements, and the builder assembles a validated LoopNest.
//
//   NestBuilder b("MM");
//   auto i = b.loop("i", 1, n);
//   auto j = b.loop("j", 1, n);
//   auto k = b.loop("k", 1, n);
//   auto A = b.array("a", {n, n});
//   auto B = b.array("b", {n, n});
//   auto C = b.array("c", {n, n});
//   b.statement().read(A, {i, j}).read(B, {i, k}).read(C, {k, j}).write(A, {i, j});
//   LoopNest nest = b.build();

#include <string>
#include <vector>

#include "ir/nest.hpp"

namespace cmetile::ir {

class NestBuilder;

/// Handle to a declared loop; implicitly converts to the LinExpr `iv`.
class LoopVar {
 public:
  operator LinExpr() const;
  LinExpr expr() const;
  friend LinExpr operator+(const LoopVar& v, i64 c) { return v.expr() + c; }
  friend LinExpr operator-(const LoopVar& v, i64 c) { return v.expr() - c; }
  friend LinExpr operator*(const LoopVar& v, i64 c) { return v.expr() * c; }
  friend LinExpr operator*(i64 c, const LoopVar& v) { return v.expr() * c; }
  friend LinExpr operator+(const LoopVar& a, const LoopVar& b) { return a.expr() + b.expr(); }
  friend LinExpr operator-(const LoopVar& a, const LoopVar& b) { return a.expr() - b.expr(); }

 private:
  friend class NestBuilder;
  LoopVar(const NestBuilder* builder, std::size_t index) : builder_(builder), index_(index) {}
  const NestBuilder* builder_;
  std::size_t index_;
};

/// Handle to a declared array.
class ArrayHandle {
 public:
  std::size_t index() const { return index_; }

 private:
  friend class NestBuilder;
  explicit ArrayHandle(std::size_t index) : index_(index) {}
  std::size_t index_;
};

/// Statement scope: reads execute before the write, in call order.
class StatementBuilder {
 public:
  StatementBuilder& read(ArrayHandle array, std::vector<LinExpr> subscripts);
  StatementBuilder& write(ArrayHandle array, std::vector<LinExpr> subscripts);

 private:
  friend class NestBuilder;
  StatementBuilder(NestBuilder* builder, std::size_t stmt) : builder_(builder), stmt_(stmt) {}
  NestBuilder* builder_;
  std::size_t stmt_;
};

class NestBuilder {
 public:
  explicit NestBuilder(std::string name);

  /// Declare the next (inner) loop with constant bounds.
  LoopVar loop(std::string name, i64 lower, i64 upper);

  /// Declare the next (inner) loop with affine bounds in already-declared
  /// (outer) induction variables, e.g. `b.loop("i", k + 1, n)` for a
  /// triangular nest. Bounding boxes are derived by `ir::normalize` at
  /// build time.
  LoopVar loop(std::string name, LinExpr lower, LinExpr upper);
  LoopVar loop(std::string name, i64 lower, LinExpr upper);
  LoopVar loop(std::string name, LinExpr lower, i64 upper);

  /// Declare an array (Fortran column-major, lower bounds default to 1).
  ArrayHandle array(std::string name, std::vector<i64> extents, i64 element_size = 8);
  ArrayHandle array(std::string name, std::vector<i64> extents, std::vector<i64> lower_bounds,
                    i64 element_size);

  /// Open the next body statement at the current depth. Loops may be
  /// declared after statements (imperfect nesting): such statements are
  /// sunk to full depth by `ir::normalize` at build time, with their
  /// original depth recorded in `LoopNest::statement_depths`.
  StatementBuilder statement();

  /// Finish: normalizes (widening, box derivation, statement sinking),
  /// validates and returns the nest.
  LoopNest build();

  std::size_t current_depth() const { return nest_.loops.size(); }

 private:
  friend class LoopVar;
  friend class StatementBuilder;
  void add_ref(ArrayHandle array, std::vector<LinExpr> subscripts, AccessKind kind,
               std::size_t stmt);
  /// Widen an expression built at an earlier depth to the final depth.
  LinExpr widen(const LinExpr& e) const;

  LoopNest nest_;
  std::size_t statements_ = 0;
  std::vector<std::size_t> statement_depths_;
};

}  // namespace cmetile::ir

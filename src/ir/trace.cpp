#include "ir/trace.hpp"

namespace cmetile::ir {

void for_each_point(const LoopNest& nest, const PointCallback& callback) {
  const std::size_t depth = nest.depth();
  std::vector<i64> point(depth);
  for (std::size_t d = 0; d < depth; ++d) point[d] = nest.loops[d].lower;

  while (true) {
    callback(point);
    // Odometer increment, innermost dimension fastest.
    std::size_t d = depth;
    while (d > 0) {
      --d;
      if (point[d] < nest.loops[d].upper) {
        ++point[d];
        break;
      }
      point[d] = nest.loops[d].lower;
      if (d == 0) return;
    }
  }
}

void for_each_access(const LoopNest& nest, const MemoryLayout& layout,
                     const AccessCallback& callback) {
  // Pre-resolve address expressions once; evaluating a LinExpr per access is
  // the hot path of simulator-backed validation.
  std::vector<LinExpr> addr;
  addr.reserve(nest.refs.size());
  for (const Reference& ref : nest.refs) addr.push_back(layout.address_expr(nest, ref));

  for_each_point(nest, [&](std::span<const i64> point) {
    for (std::size_t r = 0; r < nest.refs.size(); ++r) {
      callback(r, addr[r].eval(point), nest.refs[r].kind == AccessKind::Write);
    }
  });
}

}  // namespace cmetile::ir

#include "ir/trace.hpp"

namespace cmetile::ir {

namespace {

/// Recursive walk for affine-bounded nests: each loop's range is evaluated
/// at the outer prefix; empty per-prefix ranges simply contribute nothing.
void walk_affine(const LoopNest& nest, std::vector<i64>& point, std::size_t d,
                 const PointCallback& callback) {
  if (d == nest.depth()) {
    callback(point);
    return;
  }
  const i64 lo = nest.loops[d].lower_at(point);
  const i64 hi = nest.loops[d].upper_at(point);
  for (i64 v = lo; v <= hi; ++v) {
    point[d] = v;
    walk_affine(nest, point, d + 1, callback);
  }
}

}  // namespace

void for_each_point(const LoopNest& nest, const PointCallback& callback) {
  const std::size_t depth = nest.depth();
  std::vector<i64> point(depth);
  if (!nest.rectangular()) {
    walk_affine(nest, point, 0, callback);
    return;
  }
  for (std::size_t d = 0; d < depth; ++d) point[d] = nest.loops[d].lower;

  while (true) {
    callback(point);
    // Odometer increment, innermost dimension fastest.
    std::size_t d = depth;
    while (d > 0) {
      --d;
      if (point[d] < nest.loops[d].upper) {
        ++point[d];
        break;
      }
      point[d] = nest.loops[d].lower;
      if (d == 0) return;
    }
  }
}

void for_each_access(const LoopNest& nest, const MemoryLayout& layout,
                     const AccessCallback& callback) {
  // Pre-resolve address expressions once; evaluating a LinExpr per access is
  // the hot path of simulator-backed validation.
  std::vector<LinExpr> addr;
  addr.reserve(nest.refs.size());
  for (const Reference& ref : nest.refs) addr.push_back(layout.address_expr(nest, ref));

  for_each_point(nest, [&](std::span<const i64> point) {
    for (std::size_t r = 0; r < nest.refs.size(); ++r) {
      callback(r, addr[r].eval(point), nest.refs[r].kind == AccessKind::Write);
    }
  });
}

}  // namespace cmetile::ir

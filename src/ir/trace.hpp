#pragma once
// Iteration and memory-trace generation for a loop nest in its *original*
// execution order (the tiled order lives in transform/tiling.hpp). The
// trace feeds the cache simulator — our ground truth for validating the
// CME model — via a streaming callback, so no trace is ever materialized.

#include <span>
#include <functional>

#include "ir/layout.hpp"
#include "ir/nest.hpp"

namespace cmetile::ir {

/// Called for every executed access: reference index, byte address, write?
using AccessCallback =
    std::function<void(std::size_t ref_index, i64 address, bool is_write)>;

/// Called for every iteration point (actual iv values, outermost first).
using PointCallback = std::function<void(std::span<const i64> point)>;

/// Visit every iteration point of the nest in original lexicographic order.
void for_each_point(const LoopNest& nest, const PointCallback& callback);

/// Emit the memory trace of the nest in original execution order:
/// points in lexicographic order, references in body order within a point.
void for_each_access(const LoopNest& nest, const MemoryLayout& layout,
                     const AccessCallback& callback);

}  // namespace cmetile::ir

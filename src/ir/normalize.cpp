#include "ir/normalize.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace cmetile::ir {

namespace {

LinExpr widen_to(const LinExpr& expr, std::size_t depth) {
  if (expr.depth() == depth) return expr;
  expects(expr.depth() < depth, "normalize: expression wider than the nest");
  std::vector<i64> coeffs(expr.coeffs().begin(), expr.coeffs().end());
  coeffs.resize(depth, 0);
  return LinExpr(std::move(coeffs), expr.constant_term());
}

}  // namespace

void refresh_bounding_boxes(std::vector<Loop>& loops) {
  // Outermost-in: each hull only consults the boxes of strictly outer loops,
  // which are final by the time we reach this one.
  for (std::size_t d = 0; d < loops.size(); ++d) {
    Loop& loop = loops[d];
    if (loop.has_affine_lower()) loop.lower = interval_min(loop.lower_bound, loops);
    if (loop.has_affine_upper()) loop.upper = interval_max(loop.upper_bound, loops);
    expects(loop.lower <= loop.upper, "normalize: loop bounding box is empty");
  }
}

LoopNest normalize(LoopNest nest) {
  const std::size_t depth = nest.loops.size();
  expects(depth >= 1, "normalize: at least one loop required");

  for (Loop& loop : nest.loops) {
    // Constant affine bounds collapse into the plain i64 fields so the
    // rectangular fast paths stay on for nests that merely *spelled* their
    // bounds as expressions.
    if (loop.lower_bound.depth() != 0 && loop.lower_bound.is_constant()) {
      loop.lower = loop.lower_bound.constant_term();
      loop.lower_bound = LinExpr();
    }
    if (loop.upper_bound.depth() != 0 && loop.upper_bound.is_constant()) {
      loop.upper = loop.upper_bound.constant_term();
      loop.upper_bound = LinExpr();
    }
    if (loop.lower_bound.depth() != 0) loop.lower_bound = widen_to(loop.lower_bound, depth);
    if (loop.upper_bound.depth() != 0) loop.upper_bound = widen_to(loop.upper_bound, depth);
  }
  refresh_bounding_boxes(nest.loops);

  for (Reference& ref : nest.refs)
    for (LinExpr& subscript : ref.subscripts) subscript = widen_to(subscript, depth);

  // Statement sinking is positional: a statement opened before the inner
  // loops existed already has zero coefficients there; recording its depth
  // is all that remains. A full-depth vector normalizes to "empty".
  if (!nest.statement_depths.empty() &&
      std::all_of(nest.statement_depths.begin(), nest.statement_depths.end(),
                  [depth](std::size_t sd) { return sd == depth; }))
    nest.statement_depths.clear();

  nest.validate();
  return nest;
}

}  // namespace cmetile::ir

#include "ir/nest.hpp"

#include <algorithm>
#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::ir {

i64 ArrayDecl::logical_elements() const {
  i64 n = 1;
  for (const i64 e : extents) n *= e;
  return n;
}

i64 LoopNest::iteration_count() const {
  i64 n = 1;
  for (const Loop& loop : loops) n *= loop.trip_count();
  return n;
}

std::vector<i64> LoopNest::trip_counts() const {
  std::vector<i64> u;
  u.reserve(loops.size());
  for (const Loop& loop : loops) u.push_back(loop.trip_count());
  return u;
}

bool LoopNest::contains(std::span<const i64> point) const {
  if (point.size() != loops.size()) return false;
  for (std::size_t d = 0; d < loops.size(); ++d)
    if (point[d] < loops[d].lower || point[d] > loops[d].upper) return false;
  return true;
}

void LoopNest::validate() const {
  expects(!loops.empty(), "LoopNest: at least one loop required");
  for (const Loop& loop : loops)
    expects(loop.lower <= loop.upper, "LoopNest: loop with empty range");
  for (const ArrayDecl& a : arrays) {
    expects(!a.extents.empty(), "LoopNest: array with no dimensions");
    expects(a.extents.size() == a.lower_bounds.size(), "LoopNest: array bounds arity");
    for (const i64 e : a.extents) expects(e >= 1, "LoopNest: array extent must be >= 1");
    expects(a.element_size >= 1, "LoopNest: element size must be >= 1");
  }
  expects(!refs.empty(), "LoopNest: at least one reference required");
  for (std::size_t r = 0; r < refs.size(); ++r) {
    const Reference& ref = refs[r];
    expects(ref.array < arrays.size(), "LoopNest: reference to unknown array");
    expects(ref.subscripts.size() == arrays[ref.array].rank(),
            "LoopNest: subscript arity must match array rank");
    for (const LinExpr& s : ref.subscripts)
      expects(s.depth() == loops.size(), "LoopNest: subscript arity must match nest depth");
    expects(ref.body_position == r, "LoopNest: refs must be sorted by body_position");
  }
}

std::vector<std::string> LoopNest::loop_names() const {
  std::vector<std::string> names;
  names.reserve(loops.size());
  for (const Loop& loop : loops) names.push_back(loop.name);
  return names;
}

std::string LoopNest::to_string() const {
  const std::vector<std::string> names = loop_names();
  std::ostringstream out;
  std::string indent;
  for (const Loop& loop : loops) {
    out << indent << "do " << loop.name << " = " << loop.lower << ", " << loop.upper << '\n';
    indent += "  ";
  }
  auto render_ref = [&](const Reference& ref) {
    std::string text = arrays[ref.array].name + "(";
    for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
      if (d) text += ",";
      text += ref.subscripts[d].to_string(names);
    }
    text += ")";
    return text;
  };
  // Group references by statement; render "write = f(reads...)".
  std::size_t stmt_count = 0;
  for (const Reference& ref : refs) stmt_count = std::max(stmt_count, ref.statement + 1);
  for (std::size_t s = 0; s < stmt_count; ++s) {
    std::vector<std::string> reads;
    std::string write;
    for (const Reference& ref : refs) {
      if (ref.statement != s) continue;
      if (ref.kind == AccessKind::Write)
        write = render_ref(ref);
      else
        reads.push_back(render_ref(ref));
    }
    out << indent << (write.empty() ? std::string("<no-write>") : write) << " = f(";
    for (std::size_t i = 0; i < reads.size(); ++i) {
      if (i) out << ", ";
      out << reads[i];
    }
    out << ")\n";
  }
  for (std::size_t d = loops.size(); d-- > 0;) {
    out << std::string(2 * d, ' ') << "enddo\n";
  }
  return out.str();
}

}  // namespace cmetile::ir

#include "ir/nest.hpp"

#include <algorithm>
#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::ir {

i64 ArrayDecl::logical_elements() const {
  i64 n = 1;
  for (const i64 e : extents) n *= e;
  return n;
}

i64 interval_min(const LinExpr& expr, std::span<const Loop> loops) {
  i64 value = expr.constant_term();
  for (std::size_t d = 0; d < expr.depth(); ++d) {
    const i64 c = expr.coeff(d);
    if (c == 0) continue;
    value += c * (c > 0 ? loops[d].lower : loops[d].upper);
  }
  return value;
}

i64 interval_max(const LinExpr& expr, std::span<const Loop> loops) {
  i64 value = expr.constant_term();
  for (std::size_t d = 0; d < expr.depth(); ++d) {
    const i64 c = expr.coeff(d);
    if (c == 0) continue;
    value += c * (c > 0 ? loops[d].upper : loops[d].lower);
  }
  return value;
}

bool LoopNest::rectangular() const {
  return std::all_of(loops.begin(), loops.end(),
                     [](const Loop& loop) { return loop.rectangular(); });
}

namespace {

/// Does any loop in [d, end) have a bound referencing a dim in [d, its own)?
/// If not, every remaining trip count is determined by the prefix alone and
/// the point count is a plain product.
bool prefix_determines_rest(const std::vector<Loop>& loops, std::size_t d) {
  for (std::size_t e = d; e < loops.size(); ++e) {
    const Loop& loop = loops[e];
    for (const LinExpr* bound : {&loop.lower_bound, &loop.upper_bound}) {
      for (std::size_t v = d; v < bound->depth(); ++v)
        if (bound->coeff(v) != 0) return false;
    }
  }
  return true;
}

i64 count_points(const std::vector<Loop>& loops, std::vector<i64>& point, std::size_t d) {
  if (prefix_determines_rest(loops, d)) {
    i64 total = 1;
    for (std::size_t e = d; e < loops.size(); ++e) {
      const i64 trip = loops[e].upper_at(point) - loops[e].lower_at(point) + 1;
      if (trip <= 0) return 0;
      total *= trip;
    }
    return total;
  }
  const i64 lo = loops[d].lower_at(point);
  const i64 hi = loops[d].upper_at(point);
  i64 total = 0;
  for (i64 v = lo; v <= hi; ++v) {
    point[d] = v;
    total += count_points(loops, point, d + 1);
  }
  return total;
}

}  // namespace

i64 LoopNest::iteration_count() const {
  if (rectangular()) {
    i64 n = 1;
    for (const Loop& loop : loops) n *= loop.trip_count();
    return n;
  }
  std::vector<i64> point(loops.size(), 0);
  return count_points(loops, point, 0);
}

std::vector<i64> LoopNest::trip_counts() const {
  std::vector<i64> u;
  u.reserve(loops.size());
  for (const Loop& loop : loops) u.push_back(loop.trip_count());
  return u;
}

bool LoopNest::contains(std::span<const i64> point) const {
  if (point.size() != loops.size()) return false;
  for (std::size_t d = 0; d < loops.size(); ++d)
    if (point[d] < loops[d].lower_at(point) || point[d] > loops[d].upper_at(point)) return false;
  return true;
}

void LoopNest::validate() const {
  expects(!loops.empty(), "LoopNest: at least one loop required");
  for (std::size_t d = 0; d < loops.size(); ++d) {
    const Loop& loop = loops[d];
    expects(loop.lower <= loop.upper, "LoopNest: loop with empty range");
    for (const LinExpr* bound : {&loop.lower_bound, &loop.upper_bound}) {
      if (bound->depth() == 0) continue;
      expects(bound->depth() == loops.size(),
              "LoopNest: affine bound arity must match nest depth");
      for (std::size_t v = d; v < bound->depth(); ++v)
        expects(bound->coeff(v) == 0,
                "LoopNest: affine bound may only reference outer loops");
    }
    // The constant box must be the interval hull of the affine bounds —
    // normalize() keeps this invariant; consumers rely on it for tiling
    // domains and 0-based z coordinates.
    if (loop.has_affine_lower())
      expects(loop.lower == interval_min(loop.lower_bound, loops),
              "LoopNest: bounding-box lower out of sync with affine bound");
    if (loop.has_affine_upper())
      expects(loop.upper == interval_max(loop.upper_bound, loops),
              "LoopNest: bounding-box upper out of sync with affine bound");
  }
  for (const ArrayDecl& a : arrays) {
    expects(!a.extents.empty(), "LoopNest: array with no dimensions");
    expects(a.extents.size() == a.lower_bounds.size(), "LoopNest: array bounds arity");
    for (const i64 e : a.extents) expects(e >= 1, "LoopNest: array extent must be >= 1");
    expects(a.element_size >= 1, "LoopNest: element size must be >= 1");
  }
  expects(!refs.empty(), "LoopNest: at least one reference required");
  for (std::size_t r = 0; r < refs.size(); ++r) {
    const Reference& ref = refs[r];
    expects(ref.array < arrays.size(), "LoopNest: reference to unknown array");
    expects(ref.subscripts.size() == arrays[ref.array].rank(),
            "LoopNest: subscript arity must match array rank");
    for (const LinExpr& s : ref.subscripts)
      expects(s.depth() == loops.size(), "LoopNest: subscript arity must match nest depth");
    expects(ref.body_position == r, "LoopNest: refs must be sorted by body_position");
  }
  if (!statement_depths.empty()) {
    std::size_t stmt_count = 0;
    for (const Reference& ref : refs) stmt_count = std::max(stmt_count, ref.statement + 1);
    expects(statement_depths.size() == stmt_count,
            "LoopNest: statement_depths arity must match statement count");
    for (const std::size_t sd : statement_depths)
      expects(sd >= 1 && sd <= loops.size(), "LoopNest: statement depth out of range");
  }
}

std::vector<std::string> LoopNest::loop_names() const {
  std::vector<std::string> names;
  names.reserve(loops.size());
  for (const Loop& loop : loops) names.push_back(loop.name);
  return names;
}

std::string LoopNest::to_string() const {
  const std::vector<std::string> names = loop_names();
  std::ostringstream out;
  std::string indent;
  for (const Loop& loop : loops) {
    const std::string lo =
        loop.has_affine_lower() ? loop.lower_bound.to_string(names) : std::to_string(loop.lower);
    const std::string hi =
        loop.has_affine_upper() ? loop.upper_bound.to_string(names) : std::to_string(loop.upper);
    out << indent << "do " << loop.name << " = " << lo << ", " << hi << '\n';
    indent += "  ";
  }
  auto render_ref = [&](const Reference& ref) {
    std::string text = arrays[ref.array].name + "(";
    for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
      if (d) text += ",";
      text += ref.subscripts[d].to_string(names);
    }
    text += ")";
    return text;
  };
  // Group references by statement; render "write = f(reads...)".
  std::size_t stmt_count = 0;
  for (const Reference& ref : refs) stmt_count = std::max(stmt_count, ref.statement + 1);
  for (std::size_t s = 0; s < stmt_count; ++s) {
    std::vector<std::string> reads;
    std::string write;
    for (const Reference& ref : refs) {
      if (ref.statement != s) continue;
      if (ref.kind == AccessKind::Write)
        write = render_ref(ref);
      else
        reads.push_back(render_ref(ref));
    }
    out << indent << (write.empty() ? std::string("<no-write>") : write) << " = f(";
    for (std::size_t i = 0; i < reads.size(); ++i) {
      if (i) out << ", ";
      out << reads[i];
    }
    out << ")";
    if (s < statement_depths.size() && statement_depths[s] < loops.size())
      out << "  ! sunk from depth " << statement_depths[s];
    out << "\n";
  }
  for (std::size_t d = loops.size(); d-- > 0;) {
    out << std::string(2 * d, ' ') << "enddo\n";
  }
  return out.str();
}

}  // namespace cmetile::ir

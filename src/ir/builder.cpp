#include "ir/builder.hpp"

#include "ir/normalize.hpp"
#include "support/contracts.hpp"

namespace cmetile::ir {

LoopVar::operator LinExpr() const { return expr(); }

LinExpr LoopVar::expr() const {
  return LinExpr::var(builder_->current_depth(), index_);
}

StatementBuilder& StatementBuilder::read(ArrayHandle array, std::vector<LinExpr> subscripts) {
  builder_->add_ref(array, std::move(subscripts), AccessKind::Read, stmt_);
  return *this;
}

StatementBuilder& StatementBuilder::write(ArrayHandle array, std::vector<LinExpr> subscripts) {
  builder_->add_ref(array, std::move(subscripts), AccessKind::Write, stmt_);
  return *this;
}

NestBuilder::NestBuilder(std::string name) { nest_.name = std::move(name); }

LoopVar NestBuilder::loop(std::string name, i64 lower, i64 upper) {
  expects(lower <= upper, "NestBuilder: loop range must be non-empty");
  nest_.loops.push_back(Loop{std::move(name), lower, upper});
  return LoopVar(this, nest_.loops.size() - 1);
}

LoopVar NestBuilder::loop(std::string name, LinExpr lower, LinExpr upper) {
  Loop decl;
  decl.name = std::move(name);
  // Constant expressions collapse to plain i64 bounds right away (a depth-0
  // LinExpr is the "constant bound" sentinel, so it cannot carry a value);
  // genuinely affine bounds get their i64 box derived by normalize() in
  // build() — until then the box holds a placeholder.
  if (lower.is_constant()) {
    decl.lower = lower.constant_term();
  } else {
    decl.lower_bound = std::move(lower);
    decl.lower = 0;
  }
  if (upper.is_constant()) {
    decl.upper = upper.constant_term();
  } else {
    decl.upper_bound = std::move(upper);
    decl.upper = 0;
  }
  nest_.loops.push_back(std::move(decl));
  return LoopVar(this, nest_.loops.size() - 1);
}

LoopVar NestBuilder::loop(std::string name, i64 lower, LinExpr upper) {
  return loop(std::move(name), LinExpr::constant(current_depth(), lower), std::move(upper));
}

LoopVar NestBuilder::loop(std::string name, LinExpr lower, i64 upper) {
  return loop(std::move(name), std::move(lower), LinExpr::constant(current_depth(), upper));
}

ArrayHandle NestBuilder::array(std::string name, std::vector<i64> extents, i64 element_size) {
  std::vector<i64> lower_bounds(extents.size(), 1);
  return array(std::move(name), std::move(extents), std::move(lower_bounds), element_size);
}

ArrayHandle NestBuilder::array(std::string name, std::vector<i64> extents,
                               std::vector<i64> lower_bounds, i64 element_size) {
  expects(extents.size() == lower_bounds.size(), "NestBuilder: array bounds arity");
  ArrayDecl decl;
  decl.name = std::move(name);
  decl.extents = std::move(extents);
  decl.lower_bounds = std::move(lower_bounds);
  decl.element_size = element_size;
  nest_.arrays.push_back(std::move(decl));
  return ArrayHandle(nest_.arrays.size() - 1);
}

StatementBuilder NestBuilder::statement() {
  expects(!nest_.loops.empty(), "NestBuilder: declare a loop before any statement");
  statement_depths_.push_back(nest_.loops.size());
  return StatementBuilder(this, statements_++);
}

LinExpr NestBuilder::widen(const LinExpr& e) const {
  if (e.depth() == nest_.loops.size()) return e;
  expects(e.depth() < nest_.loops.size(), "NestBuilder: expression wider than the nest");
  std::vector<i64> coeffs(e.coeffs().begin(), e.coeffs().end());
  coeffs.resize(nest_.loops.size(), 0);
  return LinExpr(std::move(coeffs), e.constant_term());
}

void NestBuilder::add_ref(ArrayHandle array, std::vector<LinExpr> subscripts, AccessKind kind,
                          std::size_t stmt) {
  Reference ref;
  ref.array = array.index();
  ref.subscripts.reserve(subscripts.size());
  for (LinExpr& s : subscripts) ref.subscripts.push_back(widen(s));
  ref.kind = kind;
  ref.statement = stmt;
  ref.body_position = nest_.refs.size();
  nest_.refs.push_back(std::move(ref));
}

LoopNest NestBuilder::build() {
  LoopNest nest = nest_;
  nest.statement_depths = statement_depths_;
  return normalize(std::move(nest));
}

}  // namespace cmetile::ir

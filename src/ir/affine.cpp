#include "ir/affine.hpp"

#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::ir {

LinExpr LinExpr::var(std::size_t depth, std::size_t d, i64 scale) {
  expects(d < depth, "LinExpr::var: dimension out of range");
  LinExpr e(depth);
  e.coeffs_[d] = scale;
  return e;
}

LinExpr LinExpr::constant(std::size_t depth, i64 c) {
  LinExpr e(depth);
  e.constant_ = c;
  return e;
}

i64 LinExpr::eval(std::span<const i64> point) const {
  expects(point.size() == coeffs_.size(), "LinExpr::eval: point arity mismatch");
  i64 value = constant_;
  for (std::size_t d = 0; d < coeffs_.size(); ++d) value += coeffs_[d] * point[d];
  return value;
}

bool LinExpr::is_constant() const {
  for (const i64 c : coeffs_)
    if (c != 0) return false;
  return true;
}

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  expects(other.coeffs_.size() == coeffs_.size(), "LinExpr: arity mismatch");
  for (std::size_t d = 0; d < coeffs_.size(); ++d) coeffs_[d] += other.coeffs_[d];
  constant_ += other.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& other) {
  expects(other.coeffs_.size() == coeffs_.size(), "LinExpr: arity mismatch");
  for (std::size_t d = 0; d < coeffs_.size(); ++d) coeffs_[d] -= other.coeffs_[d];
  constant_ -= other.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(i64 scalar) {
  for (i64& c : coeffs_) c *= scalar;
  constant_ *= scalar;
  return *this;
}

std::string LinExpr::to_string(std::span<const std::string> names) const {
  std::ostringstream out;
  bool first = true;
  for (std::size_t d = 0; d < coeffs_.size(); ++d) {
    const i64 c = coeffs_[d];
    if (c == 0) continue;
    // Built in two steps: the one-expression form trips GCC 12's -Wrestrict
    // false positive (PR 105329) when inlined at -O3.
    std::string name = d < names.size() ? names[d] : "i";
    if (d >= names.size()) name += std::to_string(d);
    if (first) {
      if (c == -1)
        out << '-';
      else if (c != 1)
        out << c << '*';
      out << name;
      first = false;
    } else {
      out << (c < 0 ? " - " : " + ");
      const i64 mag = c < 0 ? -c : c;
      if (mag != 1) out << mag << '*';
      out << name;
    }
  }
  if (first) {
    out << constant_;
  } else if (constant_ != 0) {
    out << (constant_ < 0 ? " - " : " + ") << (constant_ < 0 ? -constant_ : constant_);
  }
  return out.str();
}

}  // namespace cmetile::ir

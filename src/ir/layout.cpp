#include "ir/layout.hpp"

#include <sstream>

#include "support/contracts.hpp"

namespace cmetile::ir {

MemoryLayout::MemoryLayout(const LoopNest& nest, const LayoutOptions& options)
    : options_(options) {
  expects(options_.alignment >= 1, "MemoryLayout: alignment must be >= 1");
  expects(options_.padding.empty() || options_.padding.size() == nest.arrays.size(),
          "MemoryLayout: padding must have one entry per array (or be empty)");

  i64 cursor = 0;
  placements_.reserve(nest.arrays.size());
  for (std::size_t a = 0; a < nest.arrays.size(); ++a) {
    const ArrayDecl& array = nest.arrays[a];
    const ArrayPadding* pad = options_.padding.empty() ? nullptr : &options_.padding[a];
    if (pad != nullptr) {
      expects(pad->dim_pad.empty() || pad->dim_pad.size() == array.rank(),
              "MemoryLayout: dim_pad must match array rank (or be empty)");
      expects(pad->pre_gap_lines >= 0, "MemoryLayout: pre_gap_lines must be >= 0");
    }

    ArrayPlacement placement;
    placement.strides.resize(array.rank());
    i64 stride = array.element_size;
    for (std::size_t d = 0; d < array.rank(); ++d) {
      placement.strides[d] = stride;
      i64 padded_extent = array.extents[d];
      if (pad != nullptr && !pad->dim_pad.empty()) {
        expects(pad->dim_pad[d] >= 0, "MemoryLayout: dim_pad must be >= 0");
        padded_extent += pad->dim_pad[d];
      }
      stride *= padded_extent;
    }
    placement.footprint = stride;

    if (pad != nullptr) cursor += pad->pre_gap_lines * options_.alignment;
    cursor = ceil_div(cursor, options_.alignment) * options_.alignment;
    placement.base = cursor;
    cursor += placement.footprint;

    placements_.push_back(std::move(placement));
  }
  total_footprint_ = cursor;
}

LinExpr MemoryLayout::address_expr(const LoopNest& nest, const Reference& ref) const {
  const ArrayDecl& array = nest.arrays.at(ref.array);
  const ArrayPlacement& placement = placements_.at(ref.array);
  LinExpr addr = LinExpr::constant(nest.depth(), placement.base);
  for (std::size_t d = 0; d < array.rank(); ++d) {
    LinExpr offset = ref.subscripts[d];
    offset -= array.lower_bounds[d];
    addr += offset * placement.strides[d];
  }
  return addr;
}

i64 MemoryLayout::address_at(const LoopNest& nest, const Reference& ref,
                             std::span<const i64> point) const {
  const ArrayDecl& array = nest.arrays.at(ref.array);
  const ArrayPlacement& placement = placements_.at(ref.array);
  i64 addr = placement.base;
  for (std::size_t d = 0; d < array.rank(); ++d) {
    addr += (ref.subscripts[d].eval(point) - array.lower_bounds[d]) * placement.strides[d];
  }
  return addr;
}

std::string MemoryLayout::to_string(const LoopNest& nest) const {
  std::ostringstream out;
  for (std::size_t a = 0; a < placements_.size(); ++a) {
    const ArrayPlacement& p = placements_[a];
    out << nest.arrays[a].name << ": base=" << p.base << " strides=[";
    for (std::size_t d = 0; d < p.strides.size(); ++d) {
      if (d) out << ',';
      out << p.strides[d];
    }
    out << "] footprint=" << p.footprint << "B\n";
  }
  out << "total footprint: " << total_footprint_ << "B\n";
  return out.str();
}

}  // namespace cmetile::ir

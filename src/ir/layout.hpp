#pragma once
// Memory layout: assigns byte base addresses and per-dimension byte strides
// to every array of a nest (column-major, Fortran order). Padding — the
// paper's companion transformation for conflict misses (§4.3, Table 3) —
// is expressed here: intra-array padding adds elements to a dimension's
// extent (changing strides), inter-array padding inserts a gap before the
// array's base. Every array base is line-aligned so that two different
// arrays can never share a memory line (the CME solver relies on this).

#include <span>
#include <string>
#include <vector>

#include "ir/nest.hpp"

namespace cmetile::ir {

/// Padding applied to one array.
struct ArrayPadding {
  /// Extra elements appended to each dimension (affects strides of the
  /// following dimensions). Size must equal the array rank; last entry
  /// only grows the footprint.
  std::vector<i64> dim_pad;
  /// Extra memory lines inserted before the array's base address.
  i64 pre_gap_lines = 0;
};

struct LayoutOptions {
  i64 alignment = 128;        ///< base-address alignment in bytes (multiple of any line size used)
  std::vector<ArrayPadding> padding;  ///< empty = no padding; else one entry per array
};

/// Concrete placement of one array.
struct ArrayPlacement {
  i64 base = 0;                  ///< byte address of the element at the lower bounds
  std::vector<i64> strides;      ///< bytes per unit step in each dimension
  i64 footprint = 0;             ///< bytes occupied (with padding)
};

class MemoryLayout {
 public:
  /// Pack the nest's arrays consecutively in declaration order.
  MemoryLayout(const LoopNest& nest, const LayoutOptions& options = {});

  const ArrayPlacement& placement(std::size_t array) const { return placements_.at(array); }
  std::size_t array_count() const { return placements_.size(); }
  i64 total_footprint() const { return total_footprint_; }
  const LayoutOptions& options() const { return options_; }

  /// Byte address of reference `ref` as an affine function of the nest's
  /// induction variables.
  LinExpr address_expr(const LoopNest& nest, const Reference& ref) const;

  /// Byte address of reference `ref` at a concrete iteration point.
  i64 address_at(const LoopNest& nest, const Reference& ref, std::span<const i64> point) const;

  /// Human-readable placement summary.
  std::string to_string(const LoopNest& nest) const;

 private:
  LayoutOptions options_;
  std::vector<ArrayPlacement> placements_;
  i64 total_footprint_ = 0;
};

}  // namespace cmetile::ir

#pragma once
// The loop-nest intermediate representation. This replaces the paper's
// Polaris/Ictineo front end (DESIGN.md §5): it carries exactly the
// compile-time facts CME generation needs — rectangular perfectly nested
// loops, column-major arrays, affine subscripts and the textual order of
// the references inside the body.

#include <span>
#include <string>
#include <vector>

#include "ir/affine.hpp"
#include "support/int_math.hpp"

namespace cmetile::ir {

/// One loop of the nest: `do name = lower, upper` (step 1, constant bounds).
struct Loop {
  std::string name;
  i64 lower = 1;
  i64 upper = 1;

  i64 trip_count() const { return upper - lower + 1; }
};

/// A Fortran-style array: column-major, per-dimension lower bound (default 1).
struct ArrayDecl {
  std::string name;
  std::vector<i64> extents;       ///< logical extent per dimension
  std::vector<i64> lower_bounds;  ///< subscript origin per dimension (Fortran: 1)
  i64 element_size = 8;           ///< bytes per element (REAL*8 by default)

  std::size_t rank() const { return extents.size(); }
  i64 logical_elements() const;
};

enum class AccessKind : std::uint8_t { Read, Write };

/// One array reference in the loop body, e.g. `a(i, j+1)`.
struct Reference {
  std::size_t array = 0;            ///< index into LoopNest::arrays
  std::vector<LinExpr> subscripts;  ///< one affine expression per array dim
  AccessKind kind = AccessKind::Read;
  std::size_t statement = 0;        ///< body statement this reference belongs to
  /// Execution order inside one iteration: references are performed in
  /// increasing `body_position` (reads of a statement before its write).
  std::size_t body_position = 0;
};

/// A perfectly nested, rectangular affine loop nest (paper §4.1 restriction).
class LoopNest {
 public:
  std::string name;
  std::vector<Loop> loops;          ///< outermost first
  std::vector<ArrayDecl> arrays;
  std::vector<Reference> refs;      ///< sorted by body_position

  std::size_t depth() const { return loops.size(); }

  /// Total number of iteration points (product of trip counts).
  i64 iteration_count() const;

  /// Total memory accesses executed = iteration_count() * refs.size().
  i64 access_count() const { return iteration_count() * (i64)refs.size(); }

  /// Upper bounds U_i as used by the tile-size search domain [1, U_i].
  std::vector<i64> trip_counts() const;

  /// Is `point` (actual iv values, outermost first) inside the nest bounds?
  bool contains(std::span<const i64> point) const;

  /// Throws contract_error if the nest is malformed (arity mismatches,
  /// empty loops, out-of-range array ids, non-monotonic body positions).
  void validate() const;

  /// Fortran-like rendering of the nest (used by examples and docs).
  std::string to_string() const;

  /// Names of the induction variables, outermost first.
  std::vector<std::string> loop_names() const;
};

}  // namespace cmetile::ir

#pragma once
// The loop-nest intermediate representation. This replaces the paper's
// Polaris/Ictineo front end (DESIGN.md §5, §15): it carries exactly the
// compile-time facts CME generation needs — perfectly nested loops with
// constant or affine (triangular) bounds, column-major arrays, affine
// subscripts and the textual order of the references inside the body.
// Imperfect nests are normalized into this form by `ir::normalize`.

#include <span>
#include <string>
#include <vector>

#include "ir/affine.hpp"
#include "support/int_math.hpp"

namespace cmetile::ir {

/// One loop of the nest: `do name = lower, upper` (step 1). `lower`/`upper`
/// are always the loop's constant *bounding box* (so every rectangular
/// consumer keeps working bit-identically); when a bound is actually affine
/// in outer induction variables (triangular nests), the expression is in
/// `lower_bound`/`upper_bound` (depth == nest depth, coefficients only on
/// strictly outer dims) and the box is its interval-arithmetic hull, kept
/// in sync by `ir::normalize`.
struct Loop {
  std::string name;
  i64 lower = 1;
  i64 upper = 1;
  LinExpr lower_bound;  ///< depth 0 = "constant bound, use `lower`"
  LinExpr upper_bound;  ///< depth 0 = "constant bound, use `upper`"

  i64 trip_count() const { return upper - lower + 1; }  ///< bounding-box trip

  bool has_affine_lower() const { return lower_bound.depth() != 0 && !lower_bound.is_constant(); }
  bool has_affine_upper() const { return upper_bound.depth() != 0 && !upper_bound.is_constant(); }
  bool rectangular() const { return !has_affine_lower() && !has_affine_upper(); }

  /// Effective bounds at a concrete iteration point (outer dims of `point`
  /// must be filled in; this loop's own dim and deeper are ignored because
  /// bound expressions carry zero coefficients there).
  i64 lower_at(std::span<const i64> point) const {
    return has_affine_lower() ? lower_bound.eval(point) : lower;
  }
  i64 upper_at(std::span<const i64> point) const {
    return has_affine_upper() ? upper_bound.eval(point) : upper;
  }
};

/// A Fortran-style array: column-major, per-dimension lower bound (default 1).
struct ArrayDecl {
  std::string name;
  std::vector<i64> extents;       ///< logical extent per dimension
  std::vector<i64> lower_bounds;  ///< subscript origin per dimension (Fortran: 1)
  i64 element_size = 8;           ///< bytes per element (REAL*8 by default)

  std::size_t rank() const { return extents.size(); }
  i64 logical_elements() const;
};

enum class AccessKind : std::uint8_t { Read, Write };

/// One array reference in the loop body, e.g. `a(i, j+1)`.
struct Reference {
  std::size_t array = 0;            ///< index into LoopNest::arrays
  std::vector<LinExpr> subscripts;  ///< one affine expression per array dim
  AccessKind kind = AccessKind::Read;
  std::size_t statement = 0;        ///< body statement this reference belongs to
  /// Execution order inside one iteration: references are performed in
  /// increasing `body_position` (reads of a statement before its write).
  std::size_t body_position = 0;
};

/// A canonical perfect affine loop nest. Rectangular nests are the paper's
/// §4.1 form; triangular/trapezoidal domains carry affine bounds per loop
/// (bounding box + exact membership), and imperfectly nested statements are
/// sunk to full depth by `ir::normalize` with their original depth recorded
/// in `statement_depths`.
class LoopNest {
 public:
  std::string name;
  std::vector<Loop> loops;          ///< outermost first
  std::vector<ArrayDecl> arrays;
  std::vector<Reference> refs;      ///< sorted by body_position
  /// Original nesting depth per statement (empty = every statement at full
  /// depth). A sunk statement executes once per iteration of the canonical
  /// nest — a documented over-approximation of the imperfect original.
  std::vector<std::size_t> statement_depths;

  std::size_t depth() const { return loops.size(); }

  /// True iff every loop has constant bounds (the paper's original form;
  /// consumers use this to keep the rectangular fast paths bit-identical).
  bool rectangular() const;

  /// Exact number of iteration points: product of trips for rectangular
  /// nests, exact trapezoidal enumeration (closed-form per fixed prefix)
  /// otherwise.
  i64 iteration_count() const;

  /// Total memory accesses executed = iteration_count() * refs.size().
  i64 access_count() const { return iteration_count() * (i64)refs.size(); }

  /// Bounding-box trip counts U_i as used by the tile-size search domain
  /// [1, U_i] (box, not exact, by design: tiles span the box).
  std::vector<i64> trip_counts() const;

  /// Is `point` (actual iv values, outermost first) inside the nest domain?
  /// Exact for affine bounds: each dim is checked against its bounds
  /// evaluated at the outer coordinates.
  bool contains(std::span<const i64> point) const;

  /// Throws contract_error if the nest is malformed (arity mismatches,
  /// empty loops, out-of-range array ids, non-monotonic body positions,
  /// affine bounds referencing the loop itself or inner loops, bounding
  /// boxes out of sync with the affine bounds).
  void validate() const;

  /// Fortran-like rendering of the nest (used by examples and docs);
  /// affine bounds render symbolically, sunk statements are annotated.
  std::string to_string() const;

  /// Names of the induction variables, outermost first.
  std::vector<std::string> loop_names() const;
};

/// Interval-arithmetic minimum/maximum of an affine bound over the bounding
/// boxes of the outer loops (the expression may only reference loops with
/// index strictly below the one it bounds). Used to derive and validate the
/// constant boxes of triangular loops.
i64 interval_min(const LinExpr& expr, std::span<const Loop> loops);
i64 interval_max(const LinExpr& expr, std::span<const Loop> loops);

}  // namespace cmetile::ir

#pragma once
// Affine (linear + constant) expressions over the induction variables of a
// loop nest. Array subscripts, linearized addresses and CME address
// polynomials are all LinExpr values; the CME restriction "subscripts are
// affine functions of the induction variables" (paper §4.1) is enforced by
// construction.

#include <span>
#include <string>
#include <vector>

#include "support/int_math.hpp"

namespace cmetile::ir {

/// c0 + sum_i coeffs[i] * iv_i, where iv_i is the i-th loop (outermost first).
class LinExpr {
 public:
  LinExpr() = default;
  explicit LinExpr(std::size_t depth) : coeffs_(depth, 0) {}
  LinExpr(std::vector<i64> coeffs, i64 constant)
      : coeffs_(std::move(coeffs)), constant_(constant) {}

  /// The expression `iv_d` for a nest of the given depth.
  static LinExpr var(std::size_t depth, std::size_t d, i64 scale = 1);
  /// The constant expression.
  static LinExpr constant(std::size_t depth, i64 c);

  std::size_t depth() const { return coeffs_.size(); }
  i64 coeff(std::size_t d) const { return coeffs_.at(d); }
  i64 constant_term() const { return constant_; }
  std::span<const i64> coeffs() const { return coeffs_; }

  i64& coeff_ref(std::size_t d) { return coeffs_.at(d); }
  i64& constant_ref() { return constant_; }

  /// Evaluate at a concrete iteration point (point.size() == depth()).
  i64 eval(std::span<const i64> point) const;

  /// True if no induction variable appears.
  bool is_constant() const;

  LinExpr& operator+=(const LinExpr& other);
  LinExpr& operator-=(const LinExpr& other);
  LinExpr& operator*=(i64 scalar);
  LinExpr& operator+=(i64 scalar) { constant_ += scalar; return *this; }
  LinExpr& operator-=(i64 scalar) { constant_ -= scalar; return *this; }

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(LinExpr a, i64 s) { return a *= s; }
  friend LinExpr operator*(i64 s, LinExpr a) { return a *= s; }
  friend LinExpr operator+(LinExpr a, i64 s) { return a += s; }
  friend LinExpr operator+(i64 s, LinExpr a) { return a += s; }
  friend LinExpr operator-(LinExpr a, i64 s) { return a -= s; }
  friend bool operator==(const LinExpr&, const LinExpr&) = default;

  /// Render like "i0 + 2*i2 - 1" using the provided variable names.
  std::string to_string(std::span<const std::string> names) const;

 private:
  std::vector<i64> coeffs_;
  i64 constant_ = 0;
};

}  // namespace cmetile::ir

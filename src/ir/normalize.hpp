#pragma once
// Canonicalization of generalized nests (DESIGN.md §15). Builders and JSON
// decoders may produce loops whose affine bounds were written at a shallower
// depth, statements opened before inner loops were declared (imperfect
// nesting), and bounding boxes that have never been derived. `normalize`
// sinks everything into the canonical perfect-nest form the rest of the
// stack consumes:
//
//  * every bound/subscript expression is widened to the final nest depth;
//  * constant affine bounds collapse into the plain `lower`/`upper` fields
//    (so `LoopNest::rectangular()` and the fast paths fire);
//  * `lower`/`upper` of affine loops become the interval-arithmetic hull of
//    the bound over the outer boxes, derived outermost-in;
//  * statements declared at a shallower depth keep their subscripts (zero
//    coefficients on the inner dims) and are recorded in `statement_depths`
//    — the canonical nest re-executes them once per inner iteration, a
//    deliberate over-approximation that is redundant but dependence-sound.
//
// The pass is idempotent, and the identity on already-canonical nests.

#include "ir/nest.hpp"

namespace cmetile::ir {

/// Recompute `lower`/`upper` of every loop with affine bounds as the
/// interval hull of the bound expression, outermost first. Throws if a
/// loop's box comes out empty (the nest could never execute).
void refresh_bounding_boxes(std::vector<Loop>& loops);

/// Canonicalize (see file comment) and validate. Returns the nest.
LoopNest normalize(LoopNest nest);

}  // namespace cmetile::ir

#include "ga/ga.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/contracts.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"

namespace cmetile::ga {

GeneticOptimizer::GeneticOptimizer(Encoding encoding, GaOptions options)
    : encoding_(std::move(encoding)), options_(options) {
  expects(options_.population >= 2, "GA: population must be >= 2");
  expects(options_.population % 2 == 0, "GA: population must be even (pairing)");
  expects(options_.min_generations >= 1 &&
              options_.max_generations >= options_.min_generations,
          "GA: generation bounds inconsistent");
}

bool GeneticOptimizer::converged(std::span<const double> costs) const {
  const double best = *std::min_element(costs.begin(), costs.end());
  double avg = 0.0;
  for (const double c : costs) avg += c;
  avg /= (double)costs.size();
  if (avg <= 0.0) return true;  // population of perfect individuals
  return (avg - best) / avg < options_.convergence_threshold;
}

GaResult GeneticOptimizer::run(const Objective& objective) {
  obs::Span run_span("ga.run");
  Rng rng(derive_seed(options_.seed, 0x6A5EED));
  GaResult result;
  result.best_cost = std::numeric_limits<double>::infinity();

  // Memo keyed on the decoded value vector via its stable hash: O(|v|)
  // per lookup instead of a lexicographic tree walk, and the GA looks the
  // population up twice per generation. Never iterated, so the unordered
  // order cannot leak into results (pinned by ga_test's determinism and
  // memo-hit regressions).
  std::unordered_map<std::vector<i64>, double, I64VecHash> memo;
  // Reserve one generation's worth of entries, not population ×
  // generations: the memo exists precisely because later generations
  // mostly revisit earlier individuals, so pre-reserving the no-hit
  // worst case wasted buckets on every run. The map still grows on
  // demand if a run really does keep finding new individuals.
  memo.reserve(options_.population);

  std::vector<Genome> population(options_.population);
  for (Genome& genome : population) genome = encoding_.random_genome(rng);
  for (std::size_t s = 0; s < options_.initial_seeds.size() && s < population.size(); ++s) {
    std::vector<i64> values = options_.initial_seeds[s];
    expects(values.size() == encoding_.var_count(), "GA: seed individual arity mismatch");
    for (std::size_t v = 0; v < values.size(); ++v) {
      const VarDomain& d = encoding_.domain(v);
      values[v] = std::clamp(values[v], d.lo, d.hi);
    }
    population[s] = encoding_.encode(values);
  }
  std::vector<double> costs(options_.population, 0.0);

  auto evaluate_population = [&]() {
    // Decode all, find genomes whose value vectors are not memoized yet.
    std::vector<std::vector<i64>> decoded(population.size());
    for (std::size_t i = 0; i < population.size(); ++i)
      decoded[i] = encoding_.decode(population[i]);

    std::vector<const std::vector<i64>*> pending;
    for (const std::vector<i64>& values : decoded) {
      if (memo.count(values) == 0) {
        bool queued = false;
        for (const auto* p : pending) {
          if (*p == values) {
            queued = true;
            break;
          }
        }
        if (!queued) pending.push_back(&values);
      }
    }

    std::vector<double> pending_costs(pending.size());
    if (options_.parallel_evaluation) {
      parallel_for(pending.size(),
                   [&](std::size_t i) { pending_costs[i] = objective(*pending[i]); });
    } else {
      for (std::size_t i = 0; i < pending.size(); ++i) pending_costs[i] = objective(*pending[i]);
    }
    for (std::size_t i = 0; i < pending.size(); ++i) memo.emplace(*pending[i], pending_costs[i]);
    result.objective_calls += (i64)pending.size();

    for (std::size_t i = 0; i < population.size(); ++i) {
      costs[i] = memo.at(decoded[i]);
      ++result.evaluations;
      if (costs[i] < result.best_cost) {
        result.best_cost = costs[i];
        result.best_values = decoded[i];
      }
    }
  };

  auto record = [&]() {
    GenerationStats g;
    g.best = *std::min_element(costs.begin(), costs.end());
    double avg = 0.0;
    for (const double c : costs) avg += c;
    g.average = avg / (double)costs.size();
    g.best_ever = result.best_cost;
    result.history.push_back(g);
    if (obs::enabled()) {
      obs::Registry& reg = obs::Registry::instance();
      static obs::Gauge& best = reg.gauge("ga.generation.best");
      static obs::Gauge& average = reg.gauge("ga.generation.average");
      best.set(g.best);
      average.set(g.average);
    }
    if (obs::trace_active()) {
      obs::trace_counter("ga fitness", "best", g.best);
      obs::trace_counter("ga fitness", "average", g.average);
    }
  };

  auto next_generation = [&]() {
    const std::vector<std::size_t> selected = select_remainder_stochastic(costs, rng);
    std::vector<Genome> next;
    next.reserve(population.size());
    for (std::size_t pair = 0; pair + 1 < selected.size(); pair += 2) {
      Genome a = population[selected[pair]];
      Genome b = population[selected[pair + 1]];
      if (rng.bernoulli(options_.crossover_prob)) crossover_single_point(a, b, rng);
      mutate(a, options_.mutation_prob, rng);
      mutate(b, options_.mutation_prob, rng);
      next.push_back(std::move(a));
      next.push_back(std::move(b));
    }
    population = std::move(next);
    evaluate_population();
    ++result.generations;
    record();
  };

  evaluate_population();
  record();

  // Paper Fig. 7: the generation-count control algorithm.
  bool finish = false;
  int iters = 0;
  while (!finish) {
    if (iters < options_.min_generations) {
      ++iters;
      next_generation();
    } else if (iters < options_.max_generations) {
      if (!converged(costs)) {
        ++iters;
        next_generation();
      } else {
        result.converged = true;
        finish = true;
      }
    } else {
      finish = true;
    }
  }
  if (!result.converged) result.converged = converged(costs);

  // Run-granularity counters: one add per GA solve, never per individual.
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::instance();
    static obs::Counter& runs = reg.counter("ga.runs");
    static obs::Counter& generations = reg.counter("ga.generations");
    static obs::Counter& evaluations = reg.counter("ga.evaluations");
    static obs::Counter& objective_calls = reg.counter("ga.objective_calls");
    static obs::Counter& memo_hits = reg.counter("ga.memo_hits");
    static obs::Histogram& gens_hist = reg.histogram("ga.generations_per_run");
    runs.increment();
    generations.add(result.generations);
    evaluations.add(result.evaluations);
    objective_calls.add(result.objective_calls);
    memo_hits.add(result.memo_hits());
    gens_hist.observe(result.generations);
  }
  return result;
}

}  // namespace cmetile::ga

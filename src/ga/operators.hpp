#pragma once
// Genetic operators (paper §3.3, Figs 5–6):
//  * remainder stochastic selection without replacement (Goldberg) — the
//    scheme the authors adopted;
//  * simple single-point crossover at a random gene boundary (Fig. 5),
//    applied to each selected pair with probability pc;
//  * mutation flipping one random bit of a gene with per-gene probability pm
//    (the paper's Fig. 6 example flips single bits within a digit).
//
// The GA *minimizes* a cost; selection converts costs to fitness with the
// standard max-cost transform f_i = (max_cost - cost_i).

#include <span>
#include <vector>

#include "ga/encoding.hpp"

namespace cmetile::ga {

/// Select N parents from N individuals (returned as indices, possibly with
/// repetition) by remainder stochastic sampling without replacement:
/// each individual first receives floor(e_i) copies deterministically
/// (e_i = N·f_i/Σf), then the remaining slots are filled by Bernoulli
/// draws on the fractional parts, visiting individuals in random order,
/// each fractional part being usable at most once per sweep.
std::vector<std::size_t> select_remainder_stochastic(std::span<const double> costs, Rng& rng);

/// Swap the tails of a and b after a random cross site (gene granularity).
void crossover_single_point(Genome& a, Genome& b, Rng& rng);

/// With probability `per_gene_prob` per gene, flip one random bit of it.
void mutate(Genome& genome, double per_gene_prob, Rng& rng);

}  // namespace cmetile::ga

#pragma once
// The genetic optimizer (paper Figs 4 & 7). Defaults are the paper's:
// population 30, crossover probability 0.9, mutation probability 0.001,
// at least 15 generations, at most 25, stopping in between once the
// population has converged — "the best individual has a difference of
// replacement misses smaller than 2% with respect to the population
// average of its generation" (§3.3).
//
// Evaluations are memoized on decoded variable values (the GA revisits
// individuals constantly; the memo is an unordered_map keyed on a stable
// hash of the value vector — see support/hash.hpp) and unevaluated
// individuals of a generation are evaluated in parallel with OpenMP; the
// objective must therefore be thread-safe and deterministic for a given
// input.

#include <span>
#include <functional>

#include "ga/operators.hpp"

namespace cmetile::ga {

struct GaOptions {
  std::size_t population = 30;
  double crossover_prob = 0.9;
  double mutation_prob = 0.001;  ///< per gene
  int min_generations = 15;
  int max_generations = 25;
  double convergence_threshold = 0.02;
  std::uint64_t seed = 1;
  bool parallel_evaluation = true;
  /// Individuals injected into the otherwise-random initial population
  /// (decoded variable values; values outside a domain are clamped).
  /// The paper initializes purely randomly; warm starts are our
  /// documented robustness deviation (see DESIGN.md §9) — at N = 2000 the
  /// near-optimal basin can be <3% of the search space and 450 random-ish
  /// draws miss it, while a single heuristic seed lets selection take over.
  std::vector<std::vector<i64>> initial_seeds;
};

struct GenerationStats {
  double best = 0.0;      ///< best cost inside this generation
  double average = 0.0;   ///< population average cost
  double best_ever = 0.0; ///< best cost seen so far across the run
};

struct GaResult {
  std::vector<i64> best_values;
  double best_cost = 0.0;
  i64 objective_calls = 0;     ///< actual objective invocations (memoized away calls excluded)
  i64 evaluations = 0;         ///< individual evaluations incl. memo hits (paper counts these: ~450)
  /// Evaluations the memo answered without invoking the objective.
  i64 memo_hits() const { return evaluations - objective_calls; }
  /// Incremental-evaluation (cme::EvalCache) counters, filled by callers
  /// that own the objective (core/tiler): verdict-memo lookups and hits
  /// across the run. Zero when incremental evaluation is off or the
  /// objective does not use an EvalCache.
  i64 eval_cache_lookups = 0;
  i64 eval_cache_hits = 0;
  int generations = 0;
  bool converged = false;
  std::vector<GenerationStats> history;
};

/// Cost function to minimize; receives decoded variable values.
using Objective = std::function<double(std::span<const i64> values)>;

class GeneticOptimizer {
 public:
  GeneticOptimizer(Encoding encoding, GaOptions options = {});

  GaResult run(const Objective& objective);

  const Encoding& encoding() const { return encoding_; }

 private:
  /// Paper Fig. 7 convergence test on the current population's costs.
  bool converged(std::span<const double> costs) const;

  Encoding encoding_;
  GaOptions options_;
};

}  // namespace cmetile::ga

#pragma once
// Chromosome representation (paper §3.3). An individual is one chromosome
// per decision variable (tile size T_i, or a padding parameter); each
// chromosome is a sequence of base-4 genes — the alphabet {00,01,10,11}
// the authors found to work well — holding k bits where
//
//     k = ceil(log2 |domain|), +1 if odd           (so genes fill evenly)
//
// and the chromosome value x ∈ [0, 2^k − 1] maps into the domain [lo..hi]
// with the paper's Eq. (2):
//
//     g(x) = floor( x · (|domain| − 1) / (2^k − 1) ) + lo
//
// which is total and onto (every domain value has at least one preimage).

#include <span>
#include <vector>

#include "support/rng.hpp"

namespace cmetile::ga {

/// Inclusive integer domain of one decision variable. The defaults
/// ([1, 1], a fixed variable) match the tile-size convention T_d ∈
/// [1, U_d] used by every core objective — tile domains start at 1
/// (untiled dimension), pad domains at 0; the hierarchy objective keeps
/// the same domains (the weighting changes the cost, not the chromosome).
struct VarDomain {
  i64 lo = 1;
  i64 hi = 1;

  i64 size() const { return hi - lo + 1; }
};

/// Gene = one base-4 digit, stored as a byte in {0,1,2,3}.
using Genome = std::vector<std::uint8_t>;

class Encoding {
 public:
  explicit Encoding(std::vector<VarDomain> domains);

  std::size_t var_count() const { return domains_.size(); }
  const VarDomain& domain(std::size_t v) const { return domains_.at(v); }
  /// Genes in chromosome v (= k_v / 2).
  std::size_t genes_of(std::size_t v) const { return gene_counts_.at(v); }
  /// Genes in the whole genome.
  std::size_t total_genes() const { return total_genes_; }

  /// Paper Eq. (2): map chromosome value x into the domain of variable v.
  i64 map_value(i64 x, std::size_t v) const;

  /// Decode a full genome into variable values.
  std::vector<i64> decode(std::span<const std::uint8_t> genome) const;

  /// Produce a genome decoding to the given values (nearest preimage).
  Genome encode(std::span<const i64> values) const;

  Genome random_genome(Rng& rng) const;

 private:
  i64 chromosome_value(std::span<const std::uint8_t> genes) const;

  std::vector<VarDomain> domains_;
  std::vector<std::size_t> gene_counts_;  ///< per chromosome
  std::vector<std::size_t> offsets_;      ///< first gene index per chromosome
  std::size_t total_genes_ = 0;
};

}  // namespace cmetile::ga

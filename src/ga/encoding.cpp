#include "ga/encoding.hpp"

#include "support/contracts.hpp"

namespace cmetile::ga {

Encoding::Encoding(std::vector<VarDomain> domains) : domains_(std::move(domains)) {
  expects(!domains_.empty(), "Encoding: at least one variable required");
  gene_counts_.reserve(domains_.size());
  offsets_.reserve(domains_.size());
  for (const VarDomain& d : domains_) {
    expects(d.lo <= d.hi, "Encoding: empty domain");
    int k = d.size() > 1 ? ceil_log2(d.size()) : 1;
    if (k % 2 != 0) ++k;  // paper: +1 if odd (base-4 alphabet)
    offsets_.push_back(total_genes_);
    gene_counts_.push_back((std::size_t)k / 2);
    total_genes_ += (std::size_t)k / 2;
  }
}

i64 Encoding::chromosome_value(std::span<const std::uint8_t> genes) const {
  i64 x = 0;
  for (const std::uint8_t gene : genes) {
    expects(gene < 4, "Encoding: gene out of base-4 alphabet");
    x = (x << 2) | gene;  // first gene is most significant (paper example)
  }
  return x;
}

i64 Encoding::map_value(i64 x, std::size_t v) const {
  const VarDomain& d = domains_.at(v);
  const int k = (int)gene_counts_[v] * 2;
  const i64 range = (i64{1} << k) - 1;
  expects(x >= 0 && x <= range, "Encoding: chromosome value out of range");
  if (d.size() == 1) return d.lo;
  return x * (d.size() - 1) / range + d.lo;
}

std::vector<i64> Encoding::decode(std::span<const std::uint8_t> genome) const {
  expects(genome.size() == total_genes_, "Encoding: genome length mismatch");
  std::vector<i64> values(domains_.size());
  for (std::size_t v = 0; v < domains_.size(); ++v) {
    values[v] = map_value(
        chromosome_value(genome.subspan(offsets_[v], gene_counts_[v])), v);
  }
  return values;
}

Genome Encoding::encode(std::span<const i64> values) const {
  expects(values.size() == domains_.size(), "Encoding: value arity mismatch");
  Genome genome(total_genes_, 0);
  for (std::size_t v = 0; v < domains_.size(); ++v) {
    const VarDomain& d = domains_[v];
    expects(values[v] >= d.lo && values[v] <= d.hi, "Encoding: value outside domain");
    const int k = (int)gene_counts_[v] * 2;
    const i64 range = (i64{1} << k) - 1;
    i64 x = 0;
    if (d.size() > 1) {
      // Nearest preimage of Eq. (2); adjust for flooring.
      x = (values[v] - d.lo) * range / (d.size() - 1);
      while (x > 0 && map_value(x, v) > values[v]) --x;
      while (x < range && map_value(x, v) < values[v]) ++x;
      ensures(map_value(x, v) == values[v], "Encoding: Eq.(2) must be onto");
    }
    for (std::size_t g = gene_counts_[v]; g-- > 0;) {
      genome[offsets_[v] + g] = (std::uint8_t)(x & 3);
      x >>= 2;
    }
  }
  return genome;
}

Genome Encoding::random_genome(Rng& rng) const {
  Genome genome(total_genes_);
  for (std::uint8_t& gene : genome) gene = (std::uint8_t)rng.uniform_int(0, 3);
  return genome;
}

}  // namespace cmetile::ga

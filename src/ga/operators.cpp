#include "ga/operators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/contracts.hpp"

namespace cmetile::ga {

std::vector<std::size_t> select_remainder_stochastic(std::span<const double> costs, Rng& rng) {
  const std::size_t n = costs.size();
  expects(n > 0, "selection: empty population");

  const double max_cost = *std::max_element(costs.begin(), costs.end());
  std::vector<double> fitness(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fitness[i] = max_cost - costs[i];
    sum += fitness[i];
  }

  std::vector<std::size_t> selected;
  selected.reserve(n);

  if (sum <= 0.0) {
    // Flat population: uniform selection (every individual once).
    for (std::size_t i = 0; i < n; ++i) selected.push_back(i);
    std::shuffle(selected.begin(), selected.end(), rng.engine());
    return selected;
  }

  // Deterministic integer parts.
  std::vector<double> fractional(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = (double)n * fitness[i] / sum;
    const double integer_part = std::floor(expected);
    fractional[i] = expected - integer_part;
    for (i64 c = 0; c < (i64)integer_part && selected.size() < n; ++c) selected.push_back(i);
  }

  // Fractional parts: Bernoulli sweeps in random order, without replacement.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  while (selected.size() < n) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    bool any_left = false;
    for (const std::size_t i : order) {
      if (selected.size() >= n) break;
      if (fractional[i] <= 0.0) continue;
      any_left = true;
      if (rng.bernoulli(fractional[i])) {
        selected.push_back(i);
        fractional[i] = 0.0;
      }
    }
    if (!any_left) {
      // All fractions consumed; fill remaining slots uniformly.
      while (selected.size() < n) selected.push_back((std::size_t)rng.uniform_int(0, (i64)n - 1));
    }
  }

  std::shuffle(selected.begin(), selected.end(), rng.engine());
  return selected;
}

void crossover_single_point(Genome& a, Genome& b, Rng& rng) {
  expects(a.size() == b.size(), "crossover: genome length mismatch");
  if (a.size() < 2) return;
  // Cross site between genes: positions 1 .. size-1 (Fig. 5).
  const std::size_t site = (std::size_t)rng.uniform_int(1, (i64)a.size() - 1);
  for (std::size_t g = site; g < a.size(); ++g) std::swap(a[g], b[g]);
}

void mutate(Genome& genome, double per_gene_prob, Rng& rng) {
  for (std::uint8_t& gene : genome) {
    if (!rng.bernoulli(per_gene_prob)) continue;
    const std::uint8_t bit = rng.bernoulli(0.5) ? 1 : 2;  // flip bit 0 or bit 1
    gene = (std::uint8_t)(gene ^ bit);
  }
}

}  // namespace cmetile::ga

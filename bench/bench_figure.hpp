#pragma once
// Shared driver for Figures 8 and 9: one bar per (kernel, size) from
// kernels::figure_bars(), replacement miss ratio with no tiling vs with
// GA-selected tiling, on the given cache.

#include "bench_common.hpp"

namespace cmetile::bench {

inline int run_figure(int argc, char** argv, const char* name,
                      const cache::CacheConfig& cache) {
  BenchContext ctx(argc, argv, name);

  std::vector<kernels::FigureEntry> bars = kernels::figure_bars();
  if (ctx.fast) {
    std::vector<kernels::FigureEntry> small;
    for (auto& bar : bars)
      if (bar.size <= 500) small.push_back(bar);
    bars = std::move(small);
  }

  TextTable table({"Kernel", "NoTiling Repl", "Tiling Repl", "Tiles", "GA evals", "Seconds"});
  StopWatch total;
  // One scheduler-routed call: cached rows replay from --cache-dir, cold
  // rows run in parallel (in-process or across --jobs workers) with
  // deterministic per-row seeds.
  const std::vector<core::TilingRow> rows = ctx.run_tiling(bars, cache);
  for (const core::TilingRow& row : rows) {
    table.add_row({row.label, format_pct(row.no_tiling_repl), format_pct(row.tiling_repl),
                   row.tiles.to_string(), std::to_string(row.ga_evaluations),
                   format_fixed(row.seconds, 1)});
    std::cout << "  " << row.label << ": " << format_pct(row.no_tiling_repl) << " -> "
              << format_pct(row.tiling_repl) << "\n";
  }
  std::cout << "[cache " << cache.to_string() << ", total " << format_fixed(total.seconds(), 1)
            << "s]\n";
  ctx.finish(table);
  return 0;
}

}  // namespace cmetile::bench

#pragma once
// Shared plumbing for the paper-reproduction benches: CLI flags, cache
// construction, row formatting and CSV output. Every bench prints the
// paper's rows and writes `<bench>.csv` into the working directory.
//
// Common flags:
//   --seed=N        experiment seed (default 2002)
//   --samples=N     CME sample points per estimate (default: paper's 164)
//   --fast          shrink problem sizes / budgets for smoke runs
//   --csv=PATH      override the CSV output path
//   --help          print the flags and exit
//
// Sweep orchestration flags (--jobs/--cache-dir/--no-cache/--listen/
// --progress/--cache-gc/--cache-max-mb, DESIGN.md §13): the figure/table
// benches (fig8/fig9/table2/table3/table4/hierarchy/assoc) route their
// experiment rows through sweep::run_sweep, so rows persist in a shared
// on-disk result cache across runs AND across benches (bench_table4
// reuses the figure-sweep rows bench_fig8 already computed), and cold
// cells can shard across worker subprocesses — or, with --listen, across
// TCP workers on any machine. The study benches with bespoke row types
// (joint, convergence, ablation_*) accept the flags but still compute
// directly — routing them needs new cell kinds. Every bench binary
// doubles as its own worker: BenchContext enters the worker protocol
// loop when invoked with --sweep-worker (pipe) or --connect=host:port
// (TCP, possibly from another machine).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <span>

#include "core/api.hpp"
#include "obs/trace.hpp"
#include "sweep/scheduler.hpp"

namespace cmetile::bench {

struct BenchContext {
  CliArgs args;
  std::uint64_t seed;
  bool fast;
  SweepCliFlags sweep_flags;

  BenchContext(int argc, const char* const* argv, const char* name)
      : args(argc, argv),
        seed((std::uint64_t)args.get_int("seed", 2002)),
        fast(args.get_bool("fast", false)),
        name_(name) {
    // Worker mode first, before ANY output: when spawned by the scheduler
    // this process must speak only the JSON protocol on stdout (member
    // construction above has no side effects, so this is early enough).
    sweep::maybe_run_worker(argc, argv);
    // --help wins before flag validation: a user whose --jobs is malformed
    // should get the usage text, not a contract error.
    if (args.has("help")) {
      std::cout << name << " flags:\n"
                << "  --seed=N     experiment seed (default 2002)\n"
                << "  --samples=N  CME sample points per estimate (default: paper's 164)\n"
                << "  --fast       shrink problem sizes / budgets for smoke runs\n"
                << "  --csv=PATH   override the CSV output path\n"
                << sweep_flags_help();
      std::exit(0);
    }
    sweep_flags = parse_sweep_flags(args);
    // Scheduler-side tracing (worker processes handle --trace inside
    // maybe_run_worker, before this line is reached).
    if (!sweep_flags.trace.empty() &&
        !obs::init_trace(sweep_flags.trace, std::string("cmetile ") + name))
      std::cout << "[trace open failed: " << sweep_flags.trace << "]\n";
    std::cout << "== " << name << " ==\n";
  }

  core::ExperimentOptions experiment_options() const {
    core::ExperimentOptions options;
    options.seed = seed;
    const i64 samples = args.get_int("samples", 0);
    if (samples > 0) options.optimizer.objective.estimator.sample_count = samples;
    if (fast) options.optimizer.shrink_for_smoke();
    return options;
  }

  sweep::SchedulerOptions scheduler_options() const {
    sweep::SchedulerOptions options;
    options.cache_dir = sweep_flags.cache_dir;
    options.use_cache = !sweep_flags.no_cache;
    options.jobs = (int)sweep_flags.jobs;
    options.listen = sweep_flags.listen;
    options.cache_gc = sweep_flags.cache_gc;
    options.cache_max_bytes = (std::uintmax_t)sweep_flags.cache_max_mb << 20;
    options.log = &std::cout;
    options.metrics_path = sweep_flags.metrics;
    if (sweep_flags.progress) options.progress = print_progress;
    return options;
  }

  /// The --progress renderer: one status line per finished cell.
  static void print_progress(const sweep::SweepProgress& p) {
    std::cout << "[sweep] " << p.done << "/" << p.cells_total << " cells (" << p.cache_hits
              << " hits, " << p.computed_local << " local, " << p.computed_remote << " remote";
    if (p.failed_workers > 0) std::cout << ", " << p.failed_workers << " worker failures";
    if (p.workers_live > 0) std::cout << ", " << p.workers_live << " workers";
    std::cout << ")";
    if (p.eval_cache_lookups > 0) {
      const double pct = 100.0 * (double)p.eval_cache_hits / (double)p.eval_cache_lookups;
      std::cout << " eval-cache " << (long long)(pct + 0.5) << "%";
    }
    if (p.cells_per_second > 0.0) {
      std::cout << " " << format_rate(p.cells_per_second) << " cells/s";
      if (p.workers_live > 1)
        std::cout << " (" << format_rate(p.cells_per_second / (double)p.workers_live)
                  << "/worker)";
    }
    if (p.eta_seconds >= 0.0 && p.done < p.cells_total)
      std::cout << " eta " << (long long)(p.eta_seconds + 0.5) << "s";
    std::cout << "\n" << std::flush;
  }

  /// Two-significant-ish-digit rate for the progress line (rates span
  /// ~0.01 cells/s for hierarchy cells to hundreds/s for warm replays).
  static std::string format_rate(double rate) {
    char buf[32];
    std::snprintf(buf, sizeof buf, rate >= 10.0 ? "%.0f" : "%.2f", rate);
    return buf;
  }

  // Scheduler-routed experiment drivers (cached + shardable); rows are
  // bit-identical to the direct core::run_*_experiments calls. The span-
  // of-geometries forms run one sweep (one worker pool) over the whole
  // cross-product, rows geometry-major.
  std::vector<core::TilingRow> run_tiling(std::span<const kernels::FigureEntry> entries,
                                          const cache::CacheConfig& cache) const {
    return sweep::run_tiling_experiments(entries, cache, experiment_options(),
                                         scheduler_options());
  }
  std::vector<core::TilingRow> run_tiling(std::span<const kernels::FigureEntry> entries,
                                          std::span<const cache::CacheConfig> caches) const {
    return sweep::run_tiling_experiments(entries, caches, experiment_options(),
                                         scheduler_options());
  }
  std::vector<core::PaddingRow> run_padding(std::span<const kernels::FigureEntry> entries,
                                            const cache::CacheConfig& cache) const {
    return sweep::run_padding_experiments(entries, cache, experiment_options(),
                                          scheduler_options());
  }
  std::vector<core::HierarchyRow> run_hierarchy(std::span<const kernels::FigureEntry> entries,
                                                const cache::Hierarchy& hierarchy) const {
    return sweep::run_hierarchy_experiments(entries, hierarchy, experiment_options(),
                                            scheduler_options());
  }
  std::vector<core::HierarchyRow> run_hierarchy(std::span<const kernels::FigureEntry> entries,
                                                std::span<const cache::Hierarchy> hierarchies) const {
    return sweep::run_hierarchy_experiments(entries, hierarchies, experiment_options(),
                                            scheduler_options());
  }

  void finish(const TextTable& table) const {
    std::cout << table.to_string();
    const std::string path = args.get(std::string("csv"), std::string(name_) + ".csv");
    if (table.write_csv(path))
      std::cout << "[csv written to " << path << "]\n";
    else
      std::cout << "[csv write failed: " << path << "]\n";
  }

 private:
  const char* name_;
};

// Shared cache geometries. Every bench takes its configs from here so the
// legacy single-cache sweeps and the hierarchy sweeps stay comparable —
// do not re-declare geometries inline in a bench.
inline cache::CacheConfig paper_cache_8k() { return cache::CacheConfig::direct_mapped(8192, 32); }
inline cache::CacheConfig paper_cache_32k() {
  return cache::CacheConfig::direct_mapped(32768, 32);
}
/// The paper's 8KB geometry at a different associativity (bench_assoc).
inline cache::CacheConfig paper_cache_8k_assoc(i64 assoc) {
  return cache::CacheConfig{8192, 32, assoc};
}
/// Deliberately tiny cache: makes conflict misses dominate at small N so
/// search-quality ablations stay cheap.
inline cache::CacheConfig small_cache_1k() { return cache::CacheConfig::direct_mapped(1024, 32); }

// Two realistic L1+L2 geometries for the hierarchy sweeps. Latencies are
// the additional stall per miss at each level (an L1 miss pays the L2 hit
// latency, an L2 miss additionally pays the memory latency), in cycles.
inline cache::Hierarchy hierarchy_8k_64k() {
  return cache::Hierarchy::two_level(paper_cache_8k(), 10.0,
                                     cache::CacheConfig{64 * 1024, 32, 4}, 80.0);
}
inline cache::Hierarchy hierarchy_16k_256k() {
  return cache::Hierarchy::two_level(cache::CacheConfig{16 * 1024, 32, 2}, 12.0,
                                     cache::CacheConfig{256 * 1024, 32, 8}, 120.0);
}
/// The paper's 8KB cache as a single write-back level: every dirty
/// eviction pays `writeback_latency` cycles on top of the 10-cycle miss
/// (DESIGN.md §16; bench_writeback sweeps the latency to show the GA
/// optimum shifting on write-heavy kernels).
inline cache::Hierarchy writeback_8k(double writeback_latency) {
  cache::Hierarchy h = cache::Hierarchy::single(paper_cache_8k(), 10.0);
  h.levels[0].writeback_latency = writeback_latency;
  return h;
}

class StopWatch {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

}  // namespace cmetile::bench

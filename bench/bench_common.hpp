#pragma once
// Shared plumbing for the paper-reproduction benches: CLI flags, cache
// construction, row formatting and CSV output. Every bench prints the
// paper's rows and writes `<bench>.csv` into the working directory.
//
// Common flags:
//   --seed=N        experiment seed (default 2002)
//   --samples=N     CME sample points per estimate (default: paper's 164)
//   --fast          shrink problem sizes / budgets for smoke runs
//   --csv=PATH      override the CSV output path

#include <chrono>
#include <iostream>

#include "core/api.hpp"

namespace cmetile::bench {

struct BenchContext {
  CliArgs args;
  std::uint64_t seed;
  bool fast;

  BenchContext(int argc, const char* const* argv, const char* name)
      : args(argc, argv),
        seed((std::uint64_t)args.get_int("seed", 2002)),
        fast(args.get_bool("fast", false)),
        name_(name) {
    std::cout << "== " << name << " ==\n";
  }

  core::ExperimentOptions experiment_options() const {
    core::ExperimentOptions options;
    options.seed = seed;
    const i64 samples = args.get_int("samples", 0);
    if (samples > 0) options.optimizer.objective.estimator.sample_count = samples;
    if (fast) options.optimizer.shrink_for_smoke();
    return options;
  }

  void finish(const TextTable& table) const {
    std::cout << table.to_string();
    const std::string path = args.get(std::string("csv"), std::string(name_) + ".csv");
    if (table.write_csv(path))
      std::cout << "[csv written to " << path << "]\n";
    else
      std::cout << "[csv write failed: " << path << "]\n";
  }

 private:
  const char* name_;
};

inline cache::CacheConfig paper_cache_8k() { return cache::CacheConfig::direct_mapped(8192, 32); }
inline cache::CacheConfig paper_cache_32k() {
  return cache::CacheConfig::direct_mapped(32768, 32);
}

class StopWatch {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

}  // namespace cmetile::bench

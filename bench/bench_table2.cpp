// Reproduces paper Table 2: total and replacement miss ratios before and
// after GA loop tiling for T2D (N=2000), T3DJIK (N=200), T3DIKJ (N=200)
// and JACOBI3D (N=200) on an 8KB direct-mapped cache with 32-byte lines.
//
// Paper values for reference (before -> after):
//   T2D      total 63.3% -> 27.7%, replacement 36.4% -> 0.9%
//   T3DJIK   total 63.4% -> 30.2%, replacement 36.7% -> 3.6%
//   T3DIKJ   total 34.6% -> 27.9%, replacement  7.0% -> 0.3%
//   JACOBI3D total 25.6% -> 19.8%, replacement  7.2% -> 1.3%

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_table2");

  const std::vector<kernels::FigureEntry> entries = {
      {"T2D", ctx.fast ? 200 : 2000},
      {"T3DJIK", ctx.fast ? 50 : 200},
      {"T3DIKJ", ctx.fast ? 50 : 200},
      {"JACOBI3D", ctx.fast ? 50 : 200},
  };
  const cache::CacheConfig cache = bench::paper_cache_8k();

  TextTable table({"Kernel", "Prob size", "NoTiling Total", "NoTiling Repl", "Tiling Total",
                   "Tiling Repl", "Tiles", "GA gens", "Seconds"});
  const std::vector<core::TilingRow> rows = ctx.run_tiling(entries, cache);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const kernels::FigureEntry& entry = entries[i];
    const core::TilingRow& row = rows[i];
    table.add_row({entry.name, "N=" + std::to_string(entry.size),
                   format_pct(row.no_tiling_total), format_pct(row.no_tiling_repl),
                   format_pct(row.tiling_total), format_pct(row.tiling_repl),
                   row.tiles.to_string(), std::to_string(row.ga_generations),
                   format_fixed(row.seconds, 1)});
    std::cout << "  " << entry.label() << ": repl " << format_pct(row.no_tiling_repl) << " -> "
              << format_pct(row.tiling_repl) << " (tiles " << row.tiles.to_string() << ")\n";
  }
  ctx.finish(table);
  return 0;
}

// Ablation of the paper's §2.3 sampling design:
//  * the sample-size formula (width 0.1, 90% confidence -> 164 points);
//  * estimate error vs sample size, measured against the exact CME
//    traversal on a mid-size kernel;
//  * common random numbers (one sample per GA run) vs fresh resampling
//    per evaluation: noise seen by GA selection.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_ablation_sampling");

  std::cout << "paper sample size (width 0.1, confidence 0.90): "
            << required_sample_size(0.1, 0.90) << " (paper: 164)\n";

  const ir::LoopNest nest = kernels::build_kernel("MM", ctx.fast ? 40 : 64);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  const transform::TileVector untiled = transform::TileVector::untiled(nest);

  const cme::NestAnalysis analysis(nest, layout, cache, untiled);
  const cme::MissEstimate exact = cme::estimate_exact(analysis);
  std::cout << "exact replacement ratio (full traversal of " << nest.iteration_count()
            << " points): " << format_pct(exact.replacement_ratio) << "\n";

  TextTable table({"Samples", "Mean abs error", "Max abs error", "Mean CI half-width",
                   "Within CI", "Runs"});
  const int runs = ctx.fast ? 10 : 30;
  for (const i64 samples : {i64{16}, i64{41}, i64{82}, i64{164}, i64{328}, i64{656}}) {
    RunningStats err;
    double max_err = 0.0;
    double hw_sum = 0.0;
    int within = 0;
    for (int r = 0; r < runs; ++r) {
      const auto points = cme::sample_points(nest, samples, derive_seed(ctx.seed, (std::uint64_t)r,
                                                                        (std::uint64_t)samples));
      const cme::MissEstimate e = cme::estimate_with_points(analysis, points);
      const double abs_err = std::abs(e.replacement_ratio - exact.replacement_ratio);
      err.add(abs_err);
      max_err = std::max(max_err, abs_err);
      hw_sum += e.replacement_half_width;
      if (abs_err <= e.replacement_half_width + 1e-12) ++within;
    }
    table.add_row({std::to_string(samples), format_pct(err.mean(), 2), format_pct(max_err, 2),
                   format_pct(hw_sum / runs, 2),
                   format_pct((double)within / (double)runs, 0), std::to_string(runs)});
  }

  // CRN vs resampling: cost difference between two tilings, repeated.
  {
    const transform::TileVector good = transform::TileVector::clamped({64, 8, 8}, nest);
    const transform::TileVector bad = transform::TileVector::clamped({64, 64, 64}, nest);
    RunningStats crn_gap, fresh_gap;
    for (int r = 0; r < runs; ++r) {
      const auto pts = cme::sample_points(nest, 164, derive_seed(ctx.seed, 77, (std::uint64_t)r));
      const cme::NestAnalysis ga(nest, layout, cache, good);
      const cme::NestAnalysis ba(nest, layout, cache, bad);
      // CRN: same points for both tilings.
      crn_gap.add(cme::estimate_with_points(ba, pts).replacement_ratio -
                  cme::estimate_with_points(ga, pts).replacement_ratio);
      // Fresh: independent samples per evaluation.
      const auto pts2 =
          cme::sample_points(nest, 164, derive_seed(ctx.seed, 78, (std::uint64_t)r));
      fresh_gap.add(cme::estimate_with_points(ba, pts2).replacement_ratio -
                    cme::estimate_with_points(ga, pts).replacement_ratio);
    }
    std::cout << "CRN cost-gap stddev:   " << format_pct(crn_gap.stddev(), 2)
              << " (mean gap " << format_pct(crn_gap.mean(), 2) << ")\n"
              << "fresh cost-gap stddev: " << format_pct(fresh_gap.stddev(), 2)
              << " (mean gap " << format_pct(fresh_gap.mean(), 2) << ")\n";
  }

  ctx.finish(table);
  return 0;
}

// Extension bench for the paper's §4.3 future work: searching padding and
// tiling parameters in a single GA step versus sequentially ("padding and
// tiling are applied sequentially in this order"). The paper conjectures
// the joint search "can in general produce better results"; this bench
// measures it on the Table 3 kernels at 8KB.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_joint");
  const cache::CacheConfig cache = bench::paper_cache_8k();

  const std::vector<kernels::FigureEntry> entries = ctx.fast
      ? std::vector<kernels::FigureEntry>{{"VPENTA2", 0}}
      : std::vector<kernels::FigureEntry>{
            {"ADD", 0}, {"BTRIX", 0}, {"VPENTA1", 0}, {"VPENTA2", 0}, {"ADI", 1000}};

  TextTable table({"Kernel", "Original", "Sequential (pad->tile)", "Joint (single step)",
                   "Seq evals", "Joint evals"});
  for (const auto& entry : entries) {
    const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
    core::OptimizerOptions options = ctx.experiment_options().optimizer;
    options.ga.seed = derive_seed(ctx.seed, std::hash<std::string>{}(entry.label()));

    const core::PadTileResult seq = core::optimize_padding_then_tiling(nest, cache, options);
    const core::OptimizeResponse joint = core::optimize(
        core::OptimizeRequest::joint(nest, cache::Hierarchy::single(cache), options));

    table.add_row({entry.label(), format_pct(seq.original.replacement_ratio),
                   format_pct(seq.padded_tiled.replacement_ratio),
                   format_pct(joint.after.levels[0].replacement_ratio),
                   "~2x" + std::to_string(options.ga.population) + "x gens",
                   std::to_string(joint.ga.evaluations)});
    std::cout << "  " << entry.label() << ": original "
              << format_pct(seq.original.replacement_ratio) << ", sequential "
              << format_pct(seq.padded_tiled.replacement_ratio) << ", joint "
              << format_pct(joint.after.levels[0].replacement_ratio) << " (pads "
              << joint.pads.to_string(nest) << ", tiles " << joint.tiles.to_string() << ")\n";
  }
  ctx.finish(table);
  return 0;
}

// Write-back study (DESIGN.md §16): does charging write-back traffic
// move the GA's tiling optimum on write-heavy kernels?
//
// Each kernel is searched twice on the paper's 8KB cache — once with the
// classic read-only objective (write-back latency 0) and once charging
// `--wb-latency` cycles per dirty eviction. Both optima are then evaluated
// under the charged cost model, so the "Shift" column is an apples-to-
// apples statement: a shifted row means the write-back-aware search found
// tiles the read-only search did not, and the cost columns quantify what
// ignoring write traffic would have left on the table. The wb-aware run
// is warm-started with the read-only optimum, so a shift is always an
// active preference, never search noise.
//
// Finally the chosen tiles are cross-checked against the trace simulator:
// the CME dirty-generation estimate must sit within the §3 tolerance of
// the simulated dirty evictions (+ lines still dirty at the end).
//
// Flags: --fast (smaller N + smoke GA budget), --seed=N, --samples=N,
// --wb-latency=N (default 60 cycles), --csv=PATH.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_writeback");
  const double wb_latency = (double)ctx.args.get_int("wb-latency", 60);

  // Write-heavy kernels: T2D stores a full matrix with transposed reuse,
  // SYRK stores on every iteration of a triangular nest, MM is the
  // read-dominated control (2 reads + 1 accumulating store).
  const std::vector<kernels::FigureEntry> entries =
      ctx.fast ? std::vector<kernels::FigureEntry>{{"T2D", 64}, {"SYRK", 24}}
               : std::vector<kernels::FigureEntry>{
                     {"T2D", 300}, {"SYRK", 64}, {"MM", 128}};
  const i64 sim_cap = ctx.fast ? 2'000'000 : 40'000'000;

  TextTable table({"Kernel", "RO tiles", "WB tiles", "Shift", "Cost@ROtiles", "Cost@WBtiles",
                   "Writebacks", "WB cme/sim", "Seconds"});
  int shifted_rows = 0;
  int tolerance_failures = 0;

  for (const auto& entry : entries) {
    const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
    const ir::MemoryLayout layout(nest);
    core::OptimizerOptions options = ctx.experiment_options().optimizer;
    options.ga.seed = derive_seed(ctx.seed, std::hash<std::string>{}(entry.label()));
    const bench::StopWatch watch;

    // Read-only search (the pre-§16 objective), then the charged search
    // warm-started with its optimum.
    const core::OptimizeResponse read_only = core::optimize(
        core::OptimizeRequest::tiling(nest, bench::writeback_8k(0.0), options));
    core::OptimizerOptions charged_options = options;
    charged_options.extra_tile_seeds.push_back(read_only.tiles.t);
    const cache::Hierarchy charged = bench::writeback_8k(wb_latency);
    const core::OptimizeResponse charged_result =
        core::optimize(core::OptimizeRequest::tiling(nest, charged, charged_options));

    // Both optima under the charged model (shared sample via the
    // objective's own estimator): the shift's value in stall cycles.
    const core::TilingObjective judge(nest, layout, charged, options.objective);
    const double cost_ro = judge(read_only.tiles.t);
    const double cost_wb = judge(charged_result.tiles.t);
    const bool shifted = charged_result.tiles.t != read_only.tiles.t;
    if (shifted) ++shifted_rows;

    // Simulator cross-check at the charged optimum: CME generations vs
    // simulated dirty evictions + lines left dirty.
    std::string check = "-";
    double writebacks = 0.0;
    if (!charged_result.after.writebacks.empty())
      writebacks = charged_result.after.writebacks[0].writebacks();
    if (nest.access_count() <= sim_cap) {
      const cme::HierarchyAnalysis analysis(nest, layout, charged, charged_result.tiles);
      const cme::WritebackEstimate wb = cme::estimate_writebacks_exact(analysis.level(0));
      const auto sim = transform::simulate_tiled(nest, layout, charged.levels[0].config,
                                                 charged_result.tiles);
      // simulate_tiled reports evictions only; resident dirty lines are
      // bounded by the cache's line count.
      const double sim_lo = (double)sim.back().dirty_evictions;
      const double sim_hi = sim_lo + (double)charged.levels[0].config.lines();
      const double cme_wb = wb.generation_ratio * (double)wb.store_access_count;
      const double slack = 0.08 * (double)wb.store_access_count;
      const bool ok = cme_wb >= sim_lo - slack && cme_wb <= sim_hi + slack;
      if (!ok) ++tolerance_failures;
      check = format_fixed(cme_wb, 0) + "/" + format_fixed(sim_lo, 0) + (ok ? "" : " !");
    }

    table.add_row({entry.label(), read_only.tiles.to_string(), charged_result.tiles.to_string(),
                   shifted ? "yes" : "no", format_fixed(cost_ro, 0), format_fixed(cost_wb, 0),
                   format_fixed(writebacks, 0), check, format_fixed(watch.seconds(), 1)});
    std::cout << "  " << entry.label() << ": " << (shifted ? "shifted" : "same tiles")
              << ", charged cost " << format_fixed(cost_ro, 0) << " -> "
              << format_fixed(cost_wb, 0) << " (wb latency " << format_fixed(wb_latency, 0)
              << ")\n";
  }

  std::cout << "[" << shifted_rows << " shifted rows; " << tolerance_failures
            << " tolerance failures]\n";
  ctx.finish(table);
  // The cross-check failing means the dirty-generation model cannot be
  // trusted on that row — fail the smoke run loudly.
  return tolerance_failures == 0 ? 0 : 1;
}

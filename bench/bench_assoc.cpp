// Extension bench: set-associative caches. The paper's CME framework
// supports arbitrary associativity (§2.2: "in a k-way set associative
// cache ... k distinct contentions are needed before a cache miss") but
// the evaluation is direct-mapped only. This bench runs a subset of the
// kernels on 1/2/4-way 8KB caches, before and after GA tiling, and
// cross-checks the CME estimates against the trace simulator where the
// iteration space is small enough to simulate.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_assoc");
  const core::ExperimentOptions options = ctx.experiment_options();

  const std::vector<kernels::FigureEntry> entries = ctx.fast
      ? std::vector<kernels::FigureEntry>{{"T2D", 100}}
      : std::vector<kernels::FigureEntry>{
            {"T2D", 100}, {"MM", 100}, {"T3DIKJ", 100}, {"VPENTA2", 0}};

  // One scheduler-routed batch per associativity level: the base seed
  // varies per level (all three geometries share one size, and row seeds
  // fold in only label+size), so each level is its own sweep — but all
  // levels share the result cache and honor --jobs/--no-cache.
  const std::vector<i64> assocs{1, 2, 4};
  std::vector<std::vector<core::TilingRow>> rows_by_assoc;
  for (const i64 assoc : assocs) {
    const cache::CacheConfig cache = bench::paper_cache_8k_assoc(assoc);
    core::ExperimentOptions opts = options;
    opts.seed = derive_seed(options.seed, (std::uint64_t)assoc);
    rows_by_assoc.push_back(
        sweep::run_tiling_experiments(entries, cache, opts, ctx.scheduler_options()));
  }

  TextTable table({"Kernel", "Assoc", "NoTiling Repl (CME)", "NoTiling Repl (sim)",
                   "Tiling Repl (CME)", "Tiles"});
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const auto& entry = entries[e];
    const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
    const ir::MemoryLayout layout(nest);
    for (std::size_t a = 0; a < assocs.size(); ++a) {
      const i64 assoc = assocs[a];
      const cache::CacheConfig cache = bench::paper_cache_8k_assoc(assoc);
      const core::TilingRow& row = rows_by_assoc[a][e];

      std::string sim_ratio = "-";
      if (nest.access_count() <= 8'000'000) {
        const auto sim = cache::simulate_nest(nest, layout, cache);
        sim_ratio = format_pct(sim.back().replacement_ratio());
      }
      table.add_row({row.label, std::to_string(assoc) + "-way", format_pct(row.no_tiling_repl),
                     sim_ratio, format_pct(row.tiling_repl), row.tiles.to_string()});
      std::cout << "  " << row.label << " " << assoc << "-way: " << format_pct(row.no_tiling_repl)
                << " (sim " << sim_ratio << ") -> " << format_pct(row.tiling_repl) << "\n";
    }
  }
  ctx.finish(table);
  return 0;
}

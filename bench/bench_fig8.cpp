// Reproduces paper Figure 8: replacement miss ratio before ("NO Tiling")
// and after ("Tiling") GA loop tiling for all 27 kernel/size bars on the
// 8KB direct-mapped cache (32-byte lines).

#include "bench_figure.hpp"

int main(int argc, char** argv) {
  return cmetile::bench::run_figure(argc, argv, "bench_fig8", cmetile::bench::paper_cache_8k());
}

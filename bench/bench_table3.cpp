// Reproduces paper Table 3: the conflict-dominated kernels where tiling
// alone leaves a high replacement miss ratio (ADD, BTRIX, VPENTA1,
// VPENTA2, plus ADI at N=1000/2000 on the 8KB cache). Columns: original
// replacement ratio, after GA padding, after padding + tiling applied
// sequentially in this order (paper §4.3).
//
// Paper values (8KB): ADD 60.2/59.8/0.5, BTRIX 50.1/0.2/0.2,
//   VPENTA1 78.3/52.4/0.0, VPENTA2 86.0/11.9/0.0, ADI_1000 26.2/12.3/4.1,
//   ADI_2000 25.7/12.4/3.4.
// Paper values (32KB): ADD 60.2/59.8/0.0, BTRIX 34.1/0.0/0.0,
//   VPENTA1 78.1/32.9/0.0, VPENTA2 86.0/11.3/0.0.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_table3");

  TextTable table({"Cache", "Kernel", "Original", "Padding", "Padding+Tiling", "Pads", "Tiles"});
  for (const cache::CacheConfig& cache : {bench::paper_cache_8k(), bench::paper_cache_32k()}) {
    const std::vector<kernels::FigureEntry> entries = kernels::table3_entries(cache.size_bytes);
    const std::vector<core::PaddingRow> rows = ctx.run_padding(entries, cache);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const kernels::FigureEntry& entry = entries[i];
      const core::PaddingRow& row = rows[i];
      const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
      table.add_row({cache.to_string(), row.label, format_pct(row.original_repl),
                     format_pct(row.padding_repl), format_pct(row.padding_tiling_repl),
                     row.pads.to_string(nest), row.tiles.to_string()});
      std::cout << "  " << cache.to_string() << " " << row.label << ": "
                << format_pct(row.original_repl) << " / " << format_pct(row.padding_repl)
                << " / " << format_pct(row.padding_tiling_repl) << "\n";
    }
  }
  ctx.finish(table);
  return 0;
}

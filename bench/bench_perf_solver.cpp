// Solver performance (google-benchmark). The paper reports its specialized
// replacement-polyhedra techniques give an average 20x speedup over vertex
// enumeration, and that 164-point sampling makes whole-nest analysis
// tractable. Our analogues:
//   * congruence-box emptiness: gcd folding + floor_sum vs brute force;
//   * point classification throughput on tiled MM;
//   * full sampled estimate (the GA's objective evaluation);
//   * trace simulation throughput (the ground-truth path).

#include <benchmark/benchmark.h>

#include "core/api.hpp"

namespace {

using namespace cmetile;

cme::CongruenceBox big_box() {
  // A realistic replacement polyhedron: untiled MM-style interval over two
  // large dimensions, 8KB cache.
  cme::CongruenceBox box;
  box.extents = {2000, 2000};
  box.coeffs = {8, 16000};
  box.base = 123456;
  box.modulus = 8192;
  box.target = {0, 31};
  return box;
}

cme::CongruenceBox small_box() {
  cme::CongruenceBox box;
  box.extents = {16, 16, 16};
  box.coeffs = {8, 1600, 320000};
  box.base = 9999;
  box.modulus = 8192;
  box.target = {0, 31};
  return box;
}

void BM_ProbeLargeBox(benchmark::State& state) {
  const cme::CongruenceBox box = big_box();
  for (auto _ : state) benchmark::DoNotOptimize(cme::probe_nonempty(box));
}
BENCHMARK(BM_ProbeLargeBox);

void BM_ProbeLargeBoxBruteForce(benchmark::State& state) {
  // The naive traversal the paper's specialized techniques replace.
  const cme::CongruenceBox box = big_box();
  for (auto _ : state) benchmark::DoNotOptimize(cme::probe_nonempty_bruteforce(box));
}
BENCHMARK(BM_ProbeLargeBoxBruteForce);

void BM_ProbeSmallBox(benchmark::State& state) {
  const cme::CongruenceBox box = small_box();
  for (auto _ : state) benchmark::DoNotOptimize(cme::probe_nonempty(box));
}
BENCHMARK(BM_ProbeSmallBox);

void BM_ClassifyPoint(benchmark::State& state) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(8192);
  const cme::NestAnalysis analysis(nest, layout, cache,
                                   transform::TileVector{{500, (i64)state.range(0),
                                                          (i64)state.range(0)}});
  const auto points = cme::sample_points(nest, 1024, 42);
  std::size_t p = 0, r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.classify(points[p], r));
    r = (r + 1) % nest.refs.size();
    if (r == 0) p = (p + 1) % points.size();
  }
}
BENCHMARK(BM_ClassifyPoint)->Arg(8)->Arg(64)->Arg(500);

void BM_SampledEstimate(benchmark::State& state) {
  // One GA objective evaluation: analysis construction + 164-point sample.
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(8192);
  const core::TilingObjective objective(nest, layout, cache);
  const std::vector<i64> tiles{500, 16, 16};
  for (auto _ : state) benchmark::DoNotOptimize(objective(tiles));
}
BENCHMARK(BM_SampledEstimate);

void BM_SimulatorThroughput(benchmark::State& state) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 64);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::simulate_nest(nest, layout, cache));
  }
  state.SetItemsProcessed(state.iterations() * nest.access_count());
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace

BENCHMARK_MAIN();

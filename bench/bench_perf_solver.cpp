// Solver performance (google-benchmark). The paper reports its specialized
// replacement-polyhedra techniques give an average 20x speedup over vertex
// enumeration, and that 164-point sampling makes whole-nest analysis
// tractable. Our analogues:
//   * congruence-box emptiness: gcd folding + floor_sum vs brute force;
//   * point classification throughput on tiled MM;
//   * full sampled estimate (the GA's objective evaluation);
//   * trace simulation throughput (the ground-truth path).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace cmetile;

cme::CongruenceBox big_box() {
  // A realistic replacement polyhedron: untiled MM-style interval over two
  // large dimensions, 8KB cache.
  cme::CongruenceBox box;
  box.extents = {2000, 2000};
  box.coeffs = {8, 16000};
  box.base = 123456;
  box.modulus = 8192;
  box.target = {0, 31};
  return box;
}

cme::CongruenceBox small_box() {
  cme::CongruenceBox box;
  box.extents = {16, 16, 16};
  box.coeffs = {8, 1600, 320000};
  box.base = 9999;
  box.modulus = 8192;
  box.target = {0, 31};
  return box;
}

void BM_ProbeLargeBox(benchmark::State& state) {
  const cme::CongruenceBox box = big_box();
  for (auto _ : state) benchmark::DoNotOptimize(cme::probe_nonempty(box));
}
BENCHMARK(BM_ProbeLargeBox);

void BM_ProbeLargeBoxBruteForce(benchmark::State& state) {
  // The naive traversal the paper's specialized techniques replace.
  const cme::CongruenceBox box = big_box();
  for (auto _ : state) benchmark::DoNotOptimize(cme::probe_nonempty_bruteforce(box));
}
BENCHMARK(BM_ProbeLargeBoxBruteForce);

void BM_ProbeSmallBox(benchmark::State& state) {
  const cme::CongruenceBox box = small_box();
  for (auto _ : state) benchmark::DoNotOptimize(cme::probe_nonempty(box));
}
BENCHMARK(BM_ProbeSmallBox);

void BM_ClassifyPoint(benchmark::State& state) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  const cme::NestAnalysis analysis(nest, layout, cache,
                                   transform::TileVector{{500, (i64)state.range(0),
                                                          (i64)state.range(0)}});
  const auto points = cme::sample_points(nest, 1024, 42);
  std::size_t p = 0, r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.classify(points[p], r));
    r = (r + 1) % nest.refs.size();
    if (r == 0) p = (p + 1) % points.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyPoint)->Arg(8)->Arg(16)->Arg(64)->Arg(500);

// Batched classification on tiled MM: compare items/s against
// BM_ClassifyPoint (same nest, tiles, sample). The three variants separate
// the contributions: scratch reuse + probe cache (single shard — the
// acceptance baseline), scratch reuse alone (cache off), and full sharding
// across hardware threads.
void classify_batch_bench(benchmark::State& state, bool probe_cache, int shards) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  cme::AnalysisOptions options;
  options.probe_cache = probe_cache;
  const cme::NestAnalysis analysis(
      nest, layout, cache,
      transform::TileVector{{500, (i64)state.range(0), (i64)state.range(0)}}, options);
  const auto points = cme::sample_points(nest, 1024, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.classify_batch(points, shards));
  }
  state.SetItemsProcessed(state.iterations() * (i64)points.size() * (i64)nest.refs.size());
}

void BM_ClassifyBatchCached(benchmark::State& state) { classify_batch_bench(state, true, 1); }
BENCHMARK(BM_ClassifyBatchCached)->Arg(8)->Arg(16)->Arg(64)->Arg(500);

void BM_ClassifyBatchUncached(benchmark::State& state) { classify_batch_bench(state, false, 1); }
BENCHMARK(BM_ClassifyBatchUncached)->Arg(8)->Arg(16)->Arg(64)->Arg(500);

void BM_ClassifyBatchParallel(benchmark::State& state) { classify_batch_bench(state, true, 0); }
BENCHMARK(BM_ClassifyBatchParallel)->Arg(64);

// The telemetry-overhead guard (DESIGN.md §17): BM_ClassifyBatchCached
// with the obs registry ENABLED. record_perf.py pins the ratio against
// the disabled run — instrumentation is recorded at batch granularity
// precisely so this stays within noise (<2%).
void BM_ClassifyBatchTelemetry(benchmark::State& state) {
  obs::set_enabled(true);
  classify_batch_bench(state, true, 1);
  obs::set_enabled(false);
  obs::Registry::instance().reset();
}
BENCHMARK(BM_ClassifyBatchTelemetry)->Arg(64);

void BM_EnumerateSolutions(benchmark::State& state) {
  // Direct-call enumeration (enumerate_solutions is templated on the
  // callback; this measures the innermost-loop dispatch cost).
  const cme::CongruenceBox box = small_box();
  for (auto _ : state) {
    i64 sum = 0;
    cme::enumerate_solutions(box, 1 << 15, [&](i64 value) {
      sum += value;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EnumerateSolutions);

void BM_SampledEstimate(benchmark::State& state) {
  // One COLD GA objective evaluation: analysis construction + 164-point
  // sample. Incremental re-evaluation is disabled here — the loop feeds
  // the same tile vector every iteration, which a warm EvalCache would
  // answer from memory (BM_SampledEstimateWarm measures that).
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  core::ObjectiveOptions options;
  options.incremental = false;
  const core::TilingObjective objective(nest, layout, cache, options);
  const std::vector<i64> tiles{500, 16, 16};
  for (auto _ : state) benchmark::DoNotOptimize(objective(tiles));
}
BENCHMARK(BM_SampledEstimate);

void BM_SampledEstimateWarm(benchmark::State& state) {
  // The same evaluation against a warm EvalCache (the steady state of a
  // converging GA population re-visiting near-identical genomes).
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  const core::TilingObjective objective(nest, layout, cache);
  const std::vector<i64> tiles{500, 16, 16};
  (void)objective(tiles);  // fill the cache
  for (auto _ : state) benchmark::DoNotOptimize(objective(tiles));
}
BENCHMARK(BM_SampledEstimateWarm);

// End-to-end GA tile search (the tentpole acceptance metric): the four
// on/off combinations of the two optimization layers — SIMD batch
// classification and incremental re-evaluation — on the paper's MM 500
// setup. All four produce bit-identical GaResults (pinned by
// eval_cache_test); only the wall clock differs. A fresh objective (and
// thus a fresh EvalCache) is built every iteration, so `incremental` only
// reuses work across genomes WITHIN one GA run, exactly as the solver
// does.
void ga_solve_bench(benchmark::State& state, bool simd, bool incremental) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  core::OptimizerOptions options;
  options.objective.analysis.simd = simd;
  options.objective.incremental = incremental;
  for (auto _ : state) {
    const core::OptimizeResponse result =
        core::optimize(core::OptimizeRequest::tiling(nest, cache::Hierarchy::single(cache), options));
    benchmark::DoNotOptimize(result.ga.best_cost);
  }
}

void BM_GaSolveBaseline(benchmark::State& state) { ga_solve_bench(state, false, false); }
BENCHMARK(BM_GaSolveBaseline)->Unit(benchmark::kMillisecond);

void BM_GaSolveSimd(benchmark::State& state) { ga_solve_bench(state, true, false); }
BENCHMARK(BM_GaSolveSimd)->Unit(benchmark::kMillisecond);

void BM_GaSolveIncremental(benchmark::State& state) { ga_solve_bench(state, false, true); }
BENCHMARK(BM_GaSolveIncremental)->Unit(benchmark::kMillisecond);

void BM_GaSolveFull(benchmark::State& state) { ga_solve_bench(state, true, true); }
BENCHMARK(BM_GaSolveFull)->Unit(benchmark::kMillisecond);

// Polyhedral dependence-analysis cost: the one-time legality check the
// optimizer runs before any GA work. MM is the paper's uniform rectangular
// baseline; LU adds triangular domains, non-uniform pairs and a sunk
// statement (7 refs), the worst case the shipped kernels exercise.
void BM_DependenceAnalysisMM(benchmark::State& state) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform::check_tiling_legality(nest).verdict);
    benchmark::DoNotOptimize(transform::risky_dependence_vectors(nest).size());
  }
}
BENCHMARK(BM_DependenceAnalysisMM);

void BM_DependenceAnalysisLU(benchmark::State& state) {
  const ir::LoopNest nest = kernels::build_kernel("LU", 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform::check_tiling_legality(nest).verdict);
    benchmark::DoNotOptimize(transform::risky_dependence_vectors(nest).size());
  }
}
BENCHMARK(BM_DependenceAnalysisLU);

void BM_WritebackEstimate(benchmark::State& state) {
  // One sampled dirty-generation estimate (DESIGN.md §16): the extra
  // per-evaluation cost a nonzero write-back latency adds to the GA
  // objective. The store classifier runs scalar over far fewer trials
  // than the miss estimator (one store ref vs three refs here).
  const ir::LoopNest nest = kernels::build_kernel("MM", 500);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  const cme::NestAnalysis analysis(nest, layout, cache,
                                   transform::TileVector{{500, 16, 16}});
  const auto points = cme::sample_points(nest, 164, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cme::estimate_writebacks_with_points(analysis, points).generation_ratio);
  }
  state.SetItemsProcessed(state.iterations() * (i64)points.size());
}
BENCHMARK(BM_WritebackEstimate);

void BM_SimulatorThroughput(benchmark::State& state) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 64);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = bench::paper_cache_8k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::simulate_nest(nest, layout, cache));
  }
  state.SetItemsProcessed(state.iterations() * nest.access_count());
}
BENCHMARK(BM_SimulatorThroughput);

}  // namespace

BENCHMARK_MAIN();

// Ablation: is the genetic algorithm the right searcher (paper §3.1/§5)?
// Same CME objective, same evaluation budget (450 = 15 generations × 30):
//   * GA with paper defaults (seeded and pure-random initialization)
//   * random search / hill climbing / simulated annealing
//   * the analytic selectors (LRW, TSS, Sarkar–Megiddo style), which spend
//     no CME evaluations at all
//   * exhaustive optimum on a small kernel (the paper's "optimal" oracle)
// Reported: best replacement-miss ratio found by each method.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_ablation_search");
  const i64 budget = ctx.args.get_int("budget", 450);

  const std::vector<kernels::FigureEntry> entries = ctx.fast
      ? std::vector<kernels::FigureEntry>{{"MM", 100}}
      : std::vector<kernels::FigureEntry>{
            {"MM", 500}, {"T2D", 2000}, {"T3DJIK", 200}, {"ADI", 500}, {"DPSSB", 0}};
  const cache::CacheConfig cache = bench::paper_cache_8k();

  TextTable table({"Kernel", "Method", "Repl ratio", "Tiles", "Evals"});
  for (const auto& entry : entries) {
    const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
    const ir::MemoryLayout layout(nest);
    const core::TilingObjective objective(nest, layout, cache);
    const auto domains = objective.domains();
    const auto cost_fn = [&](std::span<const i64> v) { return objective(v); };
    const std::uint64_t seed = derive_seed(ctx.seed, std::hash<std::string>{}(entry.label()));

    const auto report = [&](const std::string& method, std::span<const i64> values, i64 evals) {
      const auto tiles = transform::TileVector::clamped({values.begin(), values.end()}, nest);
      const double ratio =
          objective.is_legal(tiles) ? objective.evaluate(tiles).replacement_ratio : -1.0;
      table.add_row({entry.label(), method, ratio < 0 ? "illegal" : format_pct(ratio),
                     tiles.to_string(), std::to_string(evals)});
      std::cout << "  " << entry.label() << " " << method << ": "
                << (ratio < 0 ? std::string("illegal") : format_pct(ratio)) << "\n";
    };

    // GA, warm-started (the shipped default).
    {
      core::OptimizerOptions options;
      options.ga.seed = seed;
      const core::OptimizeResponse r =
          core::optimize(core::OptimizeRequest::tiling(nest, cache::Hierarchy::single(cache), options));
      report("GA (seeded)", r.tiles.t, r.ga.evaluations);
    }
    // GA, paper-pure random initialization.
    {
      core::OptimizerOptions options;
      options.ga.seed = seed;
      options.seed_population = false;
      const core::OptimizeResponse r =
          core::optimize(core::OptimizeRequest::tiling(nest, cache::Hierarchy::single(cache), options));
      report("GA (random init)", r.tiles.t, r.ga.evaluations);
    }
    {
      const auto r = baselines::random_search(domains, cost_fn, budget, seed);
      report("random search", r.best_values, r.evaluations);
    }
    {
      const auto r = baselines::hill_climb(domains, cost_fn, budget, seed);
      report("hill climb", r.best_values, r.evaluations);
    }
    {
      const auto r = baselines::simulated_annealing(domains, cost_fn, budget, seed);
      report("simulated annealing", r.best_values, r.evaluations);
    }
    report("LRW (ESS)", baselines::lrw_tiles(nest, layout, cache).t, 0);
    report("TSS", baselines::tss_tiles(nest, layout, cache).t, 0);
    report("Sarkar-Megiddo", baselines::sarkar_megiddo_tiles(nest, layout, cache).t, 0);
  }

  // Exhaustive oracle on a small space: GA must be near it.
  {
    const ir::LoopNest nest = kernels::build_kernel("MM", 16);
    const ir::MemoryLayout layout(nest);
    const cache::CacheConfig small_cache = bench::small_cache_1k();
    const core::TilingObjective objective(nest, layout, small_cache);
    const auto r = baselines::exhaustive_search(objective.domains(),
                                                [&](std::span<const i64> v) { return objective(v); });
    const auto tiles = transform::TileVector::clamped(r.best_values, nest);
    table.add_row({"MM_16(1KB)", "exhaustive optimum",
                   format_pct(objective.evaluate(tiles).replacement_ratio), tiles.to_string(),
                   std::to_string(r.evaluations)});
    core::OptimizerOptions options;
    options.ga.seed = ctx.seed;
    const core::OptimizeResponse g = core::optimize(
        core::OptimizeRequest::tiling(nest, cache::Hierarchy::single(small_cache), options));
    table.add_row({"MM_16(1KB)", "GA (seeded)", format_pct(g.after.levels[0].replacement_ratio),
                   g.tiles.to_string(), std::to_string(g.ga.evaluations)});
    std::cout << "  exhaustive MM_16: optimum "
              << format_pct(objective.evaluate(tiles).replacement_ratio) << ", GA "
              << format_pct(g.after.levels[0].replacement_ratio) << "\n";
  }

  ctx.finish(table);
  return 0;
}

// Hierarchy sweep (DESIGN.md §12): does optimizing the latency-weighted
// L1+L2 cost pick different tiles than optimizing L1 misses alone — and
// are the per-level CME predictions trustworthy?
//
// Each row is one core::run_hierarchy_experiment cell, routed through the
// sweep scheduler like every bench: the GA runs once with the legacy
// L1-only objective and once with the weighted hierarchy objective
// (warm-started with the L1-only optimum, so a "diverged" row always
// means the weighted objective actively preferred different tiles), and
// both tile vectors are evaluated under the hierarchy cost model so the
// two optima are comparable. Finally the chosen hierarchy tiles are
// cross-validated per level against the trace simulator: the sampled CME
// replacement ratio (carried in the row) must sit within its CI
// half-width plus the CME model tolerance (the §3 sampling contract; same
// bound as hierarchy_test).
//
// A "diverged" row where cost(hier tiles) < cost(L1 tiles) is the new
// result class: the L1-only optimum is not the hierarchy optimum.
//
// Flags: --fast (smaller N + smoke GA budget), --seed=N, --samples=N,
// --csv=PATH (default bench_hierarchy.csv), plus the shared sweep flags
// --jobs/--cache-dir/--no-cache (see --help).

#include <algorithm>
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace cmetile;

struct Geometry {
  const char* label;
  cache::Hierarchy hierarchy;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_hierarchy");

  const std::vector<Geometry> geometries{
      {"8K+64K", bench::hierarchy_8k_64k()},
      {"16K+256K", bench::hierarchy_16k_256k()},
  };
  const std::vector<kernels::FigureEntry> entries{
      {"MM", ctx.fast ? 40 : 128},
      {"JACOBI3D", ctx.fast ? 16 : 64},
  };
  // Simulator cross-check cap: per-level trace simulation is
  // O(access_count); skip it above this (the full-size MM rows stay in).
  const i64 sim_cap = ctx.fast ? 2'000'000 : 40'000'000;

  TextTable table({"Kernel", "Caches", "L1-only tiles", "L1+L2 tiles", "Diverged",
                   "Cost@L1tiles", "Cost@L1+L2tiles", "L1 repl cme/sim", "L2 repl cme/sim",
                   "Seconds"});
  int diverged_rows = 0;
  int tolerance_failures = 0;

  // One scheduler call over all geometries (rows geometry-major): cells
  // cache/shard independently, replay bit-identically from --cache-dir,
  // and share one worker pool under --jobs.
  std::vector<cache::Hierarchy> hierarchies;
  for (const Geometry& geometry : geometries) hierarchies.push_back(geometry.hierarchy);
  const std::vector<core::HierarchyRow> all_rows = ctx.run_hierarchy(entries, hierarchies);

  for (std::size_t g = 0; g < geometries.size(); ++g) {
    const Geometry& geometry = geometries[g];
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const core::HierarchyRow& row = all_rows[g * entries.size() + i];
      const bool diverged = row.l1_tiles.t != row.tiles.t;
      if (diverged) ++diverged_rows;

      // Per-level cross-validation at the hierarchy-chosen tiles, against
      // the row's (possibly cache-replayed) CME estimates. The table
      // carries two check columns; a 3-level geometry would need a third,
      // so bound the loop by the array, not the hierarchy.
      const ir::LoopNest nest = kernels::build_kernel(entries[i].name, entries[i].size);
      const ir::MemoryLayout layout(nest);
      std::string check[2] = {"-", "-"};
      if (nest.access_count() <= sim_cap) {
        for (std::size_t l = 0; l < std::min(geometry.hierarchy.depth(), std::size(check)); ++l) {
          const auto sim = transform::simulate_tiled(
              nest, layout, geometry.hierarchy.levels[l].config, row.tiles);
          const double delta = row.level_repl[l] - sim.back().replacement_ratio();
          const double tolerance = row.level_half_width[l] + 0.08;
          const bool ok = std::abs(delta) <= tolerance;
          if (!ok) ++tolerance_failures;
          check[l] = format_pct(row.level_repl[l]) + "/" +
                     format_pct(sim.back().replacement_ratio()) + (ok ? "" : " !");
        }
      }

      table.add_row({row.label, geometry.label, row.l1_tiles.to_string(), row.tiles.to_string(),
                     diverged ? "yes" : "no", format_fixed(row.cost_l1_tiles, 0),
                     format_fixed(row.cost_tiles, 0), check[0], check[1],
                     format_fixed(row.seconds, 1)});
      std::cout << "  " << row.label << " @ " << geometry.label << ": "
                << (diverged ? "diverged" : "same tiles") << ", weighted cost "
                << format_fixed(row.cost_l1_tiles, 0) << " -> "
                << format_fixed(row.cost_tiles, 0) << "\n";
    }
  }

  std::cout << "[" << diverged_rows << " diverged rows; " << tolerance_failures
            << " tolerance failures]\n";
  ctx.finish(table);
  // A tolerance failure means the per-level CME predictions cannot be
  // trusted on that row — fail the smoke run loudly.
  return tolerance_failures == 0 ? 0 : 1;
}

// Hierarchy sweep (DESIGN.md §12): does optimizing the latency-weighted
// L1+L2 cost pick different tiles than optimizing L1 misses alone — and
// are the per-level CME predictions trustworthy?
//
// For each (kernel, L1/L2 geometry) pair this bench runs the GA twice:
// once with the legacy L1-only objective and once with the weighted
// hierarchy objective, then evaluates BOTH tile vectors under the
// hierarchy cost model so the two optima are comparable. Finally the
// chosen hierarchy tiles are cross-validated per level against the trace
// simulator: the sampled CME replacement ratio must sit within its CI
// half-width plus the CME model tolerance (the §3 sampling contract; same
// bound as hierarchy_test).
//
// A "diverged" row where cost(hier tiles) < cost(L1 tiles) is the new
// result class: the L1-only optimum is not the hierarchy optimum.
//
// Flags: --fast (smaller N + smoke GA budget), --seed=N, --samples=N,
// --csv=PATH (default bench_hierarchy.csv).

#include <algorithm>
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace cmetile;

struct Geometry {
  const char* label;
  cache::Hierarchy hierarchy;
};

struct Workload {
  const char* kernel;
  i64 size_full;
  i64 size_fast;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchContext ctx(argc, argv, "bench_hierarchy");
  const core::ExperimentOptions options = ctx.experiment_options();

  const std::vector<Geometry> geometries{
      {"8K+64K", bench::hierarchy_8k_64k()},
      {"16K+256K", bench::hierarchy_16k_256k()},
  };
  const std::vector<Workload> workloads{
      {"MM", 128, 40},
      {"JACOBI3D", 64, 16},
  };
  // Simulator cross-check cap: per-level trace simulation is
  // O(access_count); skip it above this (the full-size MM rows stay in).
  const i64 sim_cap = ctx.fast ? 2'000'000 : 40'000'000;

  TextTable table({"Kernel", "Caches", "L1-only tiles", "L1+L2 tiles", "Diverged",
                   "Cost@L1tiles", "Cost@L1+L2tiles", "L1 repl cme/sim", "L2 repl cme/sim",
                   "Seconds"});
  int diverged_rows = 0;
  int tolerance_failures = 0;

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const Workload& workload = workloads[w];
    const i64 n = ctx.fast ? workload.size_fast : workload.size_full;
    const ir::LoopNest nest = kernels::build_kernel(workload.kernel, n);
    const ir::MemoryLayout layout(nest);
    const std::string label = workload.kernel + std::string("_") + std::to_string(n);

    for (std::size_t g = 0; g < geometries.size(); ++g) {
      const Geometry& geometry = geometries[g];
      bench::StopWatch watch;
      core::OptimizerOptions opt = options.optimizer;
      // Row indices, not string hashes: std::hash is implementation-
      // defined, and --seed must reproduce rows across platforms.
      opt.ga.seed = derive_seed(ctx.seed, (std::uint64_t)w, (std::uint64_t)g);

      // Baseline: the paper's pipeline, blind to L2 — tiles minimize L1
      // replacement misses only.
      const core::TilingResult l1_only =
          core::optimize_tiling(nest, layout, geometry.hierarchy.levels[0].config, opt);

      // The weighted search over the same sample set and GA budget. The
      // L1-only optimum is injected into the warm starts (alongside the
      // driver's own heuristic seeds) so a "diverged" row always means
      // the weighted objective actively preferred different tiles, never
      // that its GA merely failed to find the L1 basin.
      core::OptimizerOptions opt_weighted = opt;
      opt_weighted.extra_tile_seeds.push_back(l1_only.tiles.t);
      const core::HierarchyTilingResult weighted =
          core::optimize_tiling(nest, layout, geometry.hierarchy, opt_weighted);

      // Compare both optima under the hierarchy cost model.
      const core::TilingObjective hier_objective(nest, layout, geometry.hierarchy,
                                                 opt.objective);
      const double cost_l1_tiles =
          hier_objective.evaluate_hierarchy(l1_only.tiles).weighted_cost;
      const double cost_h_tiles = weighted.after.weighted_cost;
      const bool diverged = l1_only.tiles.t != weighted.tiles.t;
      if (diverged) ++diverged_rows;

      // Per-level cross-validation at the hierarchy-chosen tiles. The
      // table carries two check columns; a 3-level geometry would need a
      // third, so bound the loop by the array, not the hierarchy.
      std::string check[2] = {"-", "-"};
      if (nest.access_count() <= sim_cap) {
        for (std::size_t l = 0; l < std::min(geometry.hierarchy.depth(), std::size(check)); ++l) {
          const auto sim = transform::simulate_tiled(
              nest, layout, geometry.hierarchy.levels[l].config, weighted.tiles);
          const cme::MissEstimate& est = weighted.after.levels[l];
          const double delta = est.replacement_ratio - sim.back().replacement_ratio();
          const double tolerance = est.replacement_half_width + 0.08;
          const bool ok = std::abs(delta) <= tolerance;
          if (!ok) ++tolerance_failures;
          check[l] = format_pct(est.replacement_ratio) + "/" +
                     format_pct(sim.back().replacement_ratio()) + (ok ? "" : " !");
        }
      }

      table.add_row({label, geometry.label, l1_only.tiles.to_string(),
                     weighted.tiles.to_string(), diverged ? "yes" : "no",
                     format_fixed(cost_l1_tiles, 0), format_fixed(cost_h_tiles, 0), check[0],
                     check[1], format_fixed(watch.seconds(), 1)});
      std::cout << "  " << label << " @ " << geometry.label << ": "
                << (diverged ? "diverged" : "same tiles") << ", weighted cost "
                << format_fixed(cost_l1_tiles, 0) << " -> " << format_fixed(cost_h_tiles, 0)
                << "\n";
    }
  }

  std::cout << "[" << diverged_rows << " diverged rows; " << tolerance_failures
            << " tolerance failures]\n";
  ctx.finish(table);
  // A tolerance failure means the per-level CME predictions cannot be
  // trusted on that row — fail the smoke run loudly.
  return tolerance_failures == 0 ? 0 : 1;
}

// Reproduces the paper's §3.3 GA behaviour claims:
//  * population 30, pc 0.9, pm 0.001 give near-optimal results in most
//    cases after 15 generations, the rest between 15 and 25;
//  * that is ~450 evaluations per loop nest;
//  * the convergence criterion (best within 2% of the population average)
//    fires only near the optimum.
//
// Output: per kernel, generations run, evaluations, converged?, best-ever
// trajectory (first/mid/last), plus the fast-vs-baseline wall clock: every
// search runs twice, once with SIMD classification + incremental
// re-evaluation (the default) and once with both layers off. The results
// are bit-identical (pinned by eval_cache_test); the Speedup column is
// the end-to-end GA acceptance metric, and EvalHits shows how much of the
// verdict traffic the cross-genome cache answered.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_convergence");

  const std::vector<kernels::FigureEntry> entries = ctx.fast
      ? std::vector<kernels::FigureEntry>{{"MM", 100}, {"T2D", 100}}
      : std::vector<kernels::FigureEntry>{{"MM", 500},     {"T2D", 500}, {"T3DIKJ", 100},
                                          {"JACOBI3D", 100}, {"ADI", 500}, {"MATMUL", 500},
                                          {"DPSSB", 0},    {"DRADBG1", 0}};
  const cache::CacheConfig cache = bench::paper_cache_8k();

  TextTable table({"Kernel", "Generations", "Evaluations", "Converged", "Gen0 best", "Gen5 best",
                   "Final best", "Tiles", "Fast s", "Baseline s", "Speedup", "EvalHits"});
  double fast_total = 0.0, baseline_total = 0.0;
  for (const auto& entry : entries) {
    const ir::LoopNest nest = kernels::build_kernel(entry.name, entry.size);
    const cache::Hierarchy hierarchy = cache::Hierarchy::single(cache);
    core::OptimizerOptions options = ctx.experiment_options().optimizer;
    options.ga.seed = derive_seed(ctx.seed, std::hash<std::string>{}(entry.label()));

    const bench::StopWatch fast_watch;
    const core::OptimizeResponse result =
        core::optimize(core::OptimizeRequest::tiling(nest, hierarchy, options));
    const double fast_seconds = fast_watch.seconds();

    core::OptimizerOptions baseline_options = options;
    baseline_options.objective.analysis.simd = false;
    baseline_options.objective.incremental = false;
    const bench::StopWatch baseline_watch;
    const core::OptimizeResponse baseline =
        core::optimize(core::OptimizeRequest::tiling(nest, hierarchy, baseline_options));
    const double baseline_seconds = baseline_watch.seconds();
    expects(baseline.ga.best_cost == result.ga.best_cost &&
                baseline.ga.best_values == result.ga.best_values,
            "bench_convergence: fast and baseline GA runs diverged");
    fast_total += fast_seconds;
    baseline_total += baseline_seconds;

    const auto& history = result.ga.history;
    const auto pick = [&](std::size_t g) {
      return g < history.size() ? history[g].best_ever : history.back().best_ever;
    };
    table.add_row({entry.label(), std::to_string(result.ga.generations),
                   std::to_string(result.ga.evaluations), result.ga.converged ? "yes" : "no",
                   format_fixed(pick(0), 0), format_fixed(pick(5), 0),
                   format_fixed(history.back().best, 0), result.tiles.to_string(),
                   format_fixed(fast_seconds, 3), format_fixed(baseline_seconds, 3),
                   format_fixed(baseline_seconds / fast_seconds, 2),
                   std::to_string(result.ga.eval_cache_hits)});
    std::cout << "  " << entry.label() << ": " << result.ga.generations << " generations, "
              << result.ga.evaluations << " evaluations, converged="
              << (result.ga.converged ? "yes" : "no") << ", " << format_fixed(fast_seconds, 3)
              << "s vs " << format_fixed(baseline_seconds, 3) << "s baseline ("
              << format_fixed(baseline_seconds / fast_seconds, 2) << "x)\n";
  }
  std::cout << "  total: " << format_fixed(fast_total, 3) << "s vs "
            << format_fixed(baseline_total, 3) << "s baseline ("
            << format_fixed(baseline_total / fast_total, 2) << "x end-to-end)\n";
  ctx.finish(table);
  return 0;
}

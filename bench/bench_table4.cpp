// Reproduces paper Table 4: the percentage of kernels (excluding the
// Table 3 conflict-dominated ones) whose post-tiling replacement miss
// ratio is below 1%, 2% and 5%, for the 8KB and 32KB caches.
//
// Paper values: 8KB 56.4 / 79.5 / 100.0, 32KB 90.2 / 97.6 / 100.0.
//
// The rows are computed from the same experiments as Figures 8/9 (this
// binary re-runs them; pass --fast for the reduced bar set).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmetile;
  bench::BenchContext ctx(argc, argv, "bench_table4");

  // Kernels excluded by the paper: the Table 3 set.
  const std::vector<std::string> excluded = {"ADD", "BTRIX", "VPENTA1", "VPENTA2"};

  std::vector<kernels::FigureEntry> bars = kernels::figure_bars();
  if (ctx.fast) {
    std::vector<kernels::FigureEntry> small;
    for (auto& bar : bars)
      if (bar.size <= 500) small.push_back(bar);
    bars = std::move(small);
  }

  std::vector<kernels::FigureEntry> included;
  for (const auto& bar : bars) {
    if (std::find(excluded.begin(), excluded.end(), bar.name) == excluded.end())
      included.push_back(bar);
  }

  TextTable table({"Cache sizes", "<1%", "<2%", "<5%", "kernels"});
  // One scheduler call over both caches (rows cache-major): one worker
  // pool, one load-balancing queue. These are the same cells as
  // bench_fig8/fig9, so a shared --cache-dir turns this bench into hits.
  const std::vector<cache::CacheConfig> caches = {bench::paper_cache_8k(),
                                                  bench::paper_cache_32k()};
  const std::vector<core::TilingRow> rows = ctx.run_tiling(included, caches);
  for (std::size_t c = 0; c < caches.size(); ++c) {
    const cache::CacheConfig& cache = caches[c];
    i64 total = 0, under1 = 0, under2 = 0, under5 = 0;
    for (std::size_t i = 0; i < included.size(); ++i) {
      const core::TilingRow& row = rows[c * included.size() + i];
      ++total;
      if (row.tiling_repl < 0.01) ++under1;
      if (row.tiling_repl < 0.02) ++under2;
      if (row.tiling_repl < 0.05) ++under5;
      std::cout << "  " << cache.to_string() << " " << row.label << ": "
                << format_pct(row.tiling_repl) << "\n";
    }
    table.add_row({cache.to_string(), format_pct((double)under1 / (double)total),
                   format_pct((double)under2 / (double)total),
                   format_pct((double)under5 / (double)total), std::to_string(total)});
  }
  ctx.finish(table);
  return 0;
}

// Reproduces paper Figure 9: replacement miss ratio before and after GA
// loop tiling for all 27 kernel/size bars on the 32KB direct-mapped cache.

#include "bench_figure.hpp"

int main(int argc, char** argv) {
  return cmetile::bench::run_figure(argc, argv, "bench_fig9", cmetile::bench::paper_cache_32k());
}

// Chromosome encoding tests, pinned to the paper's §3.3 worked example:
// upper bounds 10 and 100 give k = 4 and 8 (2 and 4 genes), chromosome
// values 12 and 74 decode to tile sizes 8 and 29.

#include <gtest/gtest.h>

#include "ga/encoding.hpp"

namespace cmetile::ga {
namespace {

TEST(Encoding, PaperExampleGeneCounts) {
  const Encoding enc({VarDomain{1, 10}, VarDomain{1, 100}});
  EXPECT_EQ(enc.genes_of(0), 2u);  // k1 = 4 bits
  EXPECT_EQ(enc.genes_of(1), 4u);  // k2 = 7 -> 8 bits
  EXPECT_EQ(enc.total_genes(), 6u);
}

TEST(Encoding, PaperExampleMapping) {
  const Encoding enc({VarDomain{1, 10}, VarDomain{1, 100}});
  EXPECT_EQ(enc.map_value(12, 0), 8);   // g1(12) = 8 (paper)
  EXPECT_EQ(enc.map_value(74, 1), 29);  // g2(74) = 29 (paper)
}

TEST(Encoding, PaperExampleGenome) {
  // value 12 = genes {11,00}; value 74 = genes {01,00,10,10} (paper).
  const Encoding enc({VarDomain{1, 10}, VarDomain{1, 100}});
  const Genome genome{3, 0, 1, 0, 2, 2};
  EXPECT_EQ(enc.decode(genome), (std::vector<i64>{8, 29}));
}

TEST(Encoding, MappingIsOntoForManyDomains) {
  // Paper: "every possible tile size has at least one representation".
  for (i64 u = 1; u <= 200; ++u) {
    const Encoding enc({VarDomain{1, u}});
    const i64 k = (i64)enc.genes_of(0) * 2;
    std::vector<bool> hit((std::size_t)u, false);
    for (i64 x = 0; x < (i64{1} << k); ++x) {
      const i64 v = enc.map_value(x, 0);
      ASSERT_GE(v, 1);
      ASSERT_LE(v, u);
      hit[(std::size_t)(v - 1)] = true;
    }
    for (i64 v = 1; v <= u; ++v) EXPECT_TRUE(hit[(std::size_t)(v - 1)]) << "u=" << u << " v=" << v;
  }
}

TEST(Encoding, MappingIsMonotonic) {
  const Encoding enc({VarDomain{1, 37}});
  const i64 k = (i64)enc.genes_of(0) * 2;
  i64 prev = 0;
  for (i64 x = 0; x < (i64{1} << k); ++x) {
    const i64 v = enc.map_value(x, 0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Encoding, EncodeDecodeRoundTrip) {
  const Encoding enc({VarDomain{1, 10}, VarDomain{0, 63}, VarDomain{5, 5}});
  for (const std::vector<i64>& values :
       {std::vector<i64>{1, 0, 5}, {10, 63, 5}, {7, 31, 5}, {3, 1, 5}}) {
    EXPECT_EQ(enc.decode(enc.encode(values)), values);
  }
}

TEST(Encoding, SingletonDomainUsesOneGene) {
  const Encoding enc({VarDomain{4, 4}});
  EXPECT_EQ(enc.genes_of(0), 1u);
  EXPECT_EQ(enc.map_value(0, 0), 4);
  EXPECT_EQ(enc.map_value(3, 0), 4);
}

TEST(Encoding, RandomGenomesDecodeInsideDomains) {
  const Encoding enc({VarDomain{1, 13}, VarDomain{2, 200}});
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto values = enc.decode(enc.random_genome(rng));
    EXPECT_GE(values[0], 1);
    EXPECT_LE(values[0], 13);
    EXPECT_GE(values[1], 2);
    EXPECT_LE(values[1], 200);
  }
}

TEST(Encoding, RejectsMalformedInput) {
  const Encoding enc({VarDomain{1, 10}});
  EXPECT_THROW(enc.map_value(-1, 0), contract_error);
  EXPECT_THROW(enc.map_value(16, 0), contract_error);
  EXPECT_THROW(enc.decode(Genome{1}), contract_error);         // wrong length
  EXPECT_THROW(enc.decode(Genome{4, 0}), contract_error);      // gene out of alphabet
  EXPECT_THROW(Encoding({VarDomain{3, 2}}), contract_error);   // empty domain
}

}  // namespace
}  // namespace cmetile::ga

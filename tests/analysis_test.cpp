// Point-classifier internals: candidate selection in tiled order, body-
// position handling at interval endpoints, same-line exclusion,
// associativity semantics, and the diagnostic probe counters.

#include <gtest/gtest.h>

#include "cme/analysis.hpp"
#include "cme/estimator.hpp"
#include "ir/builder.hpp"
#include "kernels/kernels.hpp"

namespace cmetile::cme {
namespace {

using transform::TileVector;

TEST(Classifier, FirstTouchIsCold) {
  const ir::LoopNest nest = kernels::build_kernel("T2D", 8);
  const NestAnalysis analysis(nest, ir::MemoryLayout(nest),
                              cache::CacheConfig::direct_mapped(512),
                              TileVector::untiled(nest));
  // The very first iteration touches two fresh lines: both refs cold.
  const std::vector<i64> origin{0, 0};
  EXPECT_EQ(analysis.classify(origin, 0), Outcome::ColdMiss);
  EXPECT_EQ(analysis.classify(origin, 1), Outcome::ColdMiss);
}

TEST(Classifier, SpatialNeighbourIsAHit) {
  // b(i,j) at (i=1..3, j fixed): consecutive i share a 4-element line and
  // nothing interferes in a large cache.
  const ir::LoopNest nest = kernels::build_kernel("T2D", 8);
  const NestAnalysis analysis(nest, ir::MemoryLayout(nest),
                              cache::CacheConfig::direct_mapped(8192),
                              TileVector::untiled(nest));
  EXPECT_EQ(analysis.classify(std::vector<i64>{1, 0}, 0), Outcome::Hit);
  EXPECT_EQ(analysis.classify(std::vector<i64>{2, 0}, 0), Outcome::Hit);
  // Line boundary (i=4 -> element 4 starts a new line): cold again.
  EXPECT_EQ(analysis.classify(std::vector<i64>{4, 0}, 0), Outcome::ColdMiss);
}

TEST(Classifier, SameIterationGroupReuseRespectsBodyOrder) {
  // read x; write x at the same subscripts: the write hits behind the
  // read, never the other way around.
  ir::NestBuilder b("rw");
  auto i = b.loop("i", 1, 8);
  auto x = b.array("x", {8});
  b.statement().read(x, {i}).write(x, {i});
  const ir::LoopNest nest = b.build();
  const NestAnalysis analysis(nest, ir::MemoryLayout(nest),
                              cache::CacheConfig::direct_mapped(512),
                              TileVector::untiled(nest));
  EXPECT_EQ(analysis.classify(std::vector<i64>{0}, 0), Outcome::ColdMiss);  // read: first touch
  EXPECT_EQ(analysis.classify(std::vector<i64>{0}, 1), Outcome::Hit);       // write: after read
}

TEST(Classifier, InterferenceBetweenEndpointsIsSeen) {
  // x then y (same set, different line) then x again at the next
  // iteration: y's access at the q endpoint kills x's temporal reuse.
  ir::NestBuilder b("pingpong");
  auto i = b.loop("i", 1, 8);
  (void)i;
  auto x = b.array("x", {4});
  auto y = b.array("y", {4});
  const ir::LinExpr one = ir::LinExpr::constant(1, 1);
  b.statement().read(x, {one}).read(y, {one}).write(x, {one});
  const ir::LoopNest nest = b.build();
  ir::LayoutOptions options;
  options.alignment = 512;  // force x and y onto the same 512B-cache sets
  const ir::MemoryLayout layout(nest, options);
  const NestAnalysis analysis(nest, layout, cache::CacheConfig::direct_mapped(512),
                              TileVector::untiled(nest));
  // The x read hits: the write of the previous iteration reloaded the line
  // and nothing executes in between (endpoint body positions matter).
  EXPECT_EQ(analysis.classify(std::vector<i64>{1}, 0), Outcome::Hit);
  // y's reuse interval contains the x write (q endpoint) and the x read
  // (p endpoint): same set, other line -> replacement miss. The x write's
  // own interval contains the y read: miss too.
  EXPECT_EQ(analysis.classify(std::vector<i64>{1}, 1), Outcome::ReplacementMiss);
  EXPECT_EQ(analysis.classify(std::vector<i64>{1}, 2), Outcome::ReplacementMiss);
  // With a 2-way cache both lines coexist: everything hits.
  const NestAnalysis assoc(nest, layout, cache::CacheConfig{512, 32, 2},
                           TileVector::untiled(nest));
  EXPECT_EQ(assoc.classify(std::vector<i64>{1}, 0), Outcome::Hit);
  EXPECT_EQ(assoc.classify(std::vector<i64>{1}, 1), Outcome::Hit);
  EXPECT_EQ(assoc.classify(std::vector<i64>{1}, 2), Outcome::Hit);
}

TEST(Classifier, TilingChangesTheVerdict) {
  // MM's c(k,j): untiled, its i-direction temporal reuse spans N² inner
  // iterations (miss); with a k/j tile the reuse interval is tiny (hit).
  const ir::LoopNest nest = kernels::build_kernel("MM", 32);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(1024);
  // Point with k on a line boundary so c's spatial reuse cannot carry it:
  // only the i-direction temporal reuse remains, whose untiled interval
  // sweeps far more than the 1KB cache.
  const std::vector<i64> z{5, 8, 8};  // ref 2 = c(k,j)

  const NestAnalysis untiled(nest, layout, cache, TileVector::untiled(nest));
  EXPECT_EQ(untiled.classify(z, 2), Outcome::ReplacementMiss);
  const NestAnalysis tiled(nest, layout, cache, TileVector{{32, 4, 4}});
  EXPECT_EQ(tiled.classify(z, 2), Outcome::Hit);
}

TEST(Classifier, ProbeCountersAccumulate) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 24);
  const NestAnalysis analysis(nest, ir::MemoryLayout(nest),
                              cache::CacheConfig::direct_mapped(1024),
                              TileVector{{24, 6, 6}});
  const auto points = sample_points(nest, 64, 5);
  for (const auto& z : points)
    for (std::size_t r = 0; r < nest.refs.size(); ++r) analysis.classify(z, r);
  EXPECT_GT(analysis.probe_counters().probes, 0);
  EXPECT_EQ(analysis.probe_counters().unknown_results, 0)
      << "shipped kernels must not hit the conservative cap";
}

TEST(Classifier, RejectsArityMismatches) {
  const ir::LoopNest nest = kernels::build_kernel("T2D", 8);
  const NestAnalysis analysis(nest, ir::MemoryLayout(nest),
                              cache::CacheConfig::direct_mapped(512),
                              TileVector::untiled(nest));
  EXPECT_THROW(analysis.classify(std::vector<i64>{0}, 0), contract_error);
}

TEST(Classifier, AssociativityNeedsKDistinctLines) {
  // Three streams in the same set: 2-way still thrashes, 4-way holds all.
  ir::NestBuilder b("threeway");
  auto i = b.loop("i", 1, 16);
  (void)i;
  auto x = b.array("x", {4});
  auto y = b.array("y", {4});
  auto z = b.array("z", {4});
  const ir::LinExpr one = ir::LinExpr::constant(1, 1);
  b.statement().read(x, {one}).read(y, {one}).read(z, {one}).write(x, {one});
  const ir::LoopNest nest = b.build();
  ir::LayoutOptions options;
  options.alignment = 1024;  // all three arrays on the same sets of a 1KB way
  const ir::MemoryLayout layout(nest, options);

  // y's reuse interval (previous y read -> this y read) contains the z
  // read and the x write: two distinct other lines in the set.
  const std::vector<i64> pt{1};
  const NestAnalysis two_way(nest, layout, cache::CacheConfig{2048, 32, 2},
                             TileVector::untiled(nest));
  EXPECT_EQ(two_way.classify(pt, 1), Outcome::ReplacementMiss);
  const NestAnalysis four_way(nest, layout, cache::CacheConfig{4096, 32, 4},
                              TileVector::untiled(nest));
  EXPECT_EQ(four_way.classify(pt, 1), Outcome::Hit);
}

}  // namespace
}  // namespace cmetile::cme

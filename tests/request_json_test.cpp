// Golden fixtures for the cmetile-serve wire schema (sweep/request_json):
// the canonical OptimizeRequest encoding and its fingerprint are pinned to
// exact bytes, because they are the daemon's cache key — an accidental
// codec change would silently invalidate (or worse, alias) every stored
// result. Round-trips must be canonical (decode∘encode reproduces the
// byte string), fingerprints must be deterministic and sensitive to every
// semantic field, and decoders must reject malformed payloads with
// nullopt, never an exception — they read from sockets.
//
// The golden fingerprint is pinned under a FIXED test salt so it survives
// deliberate kCodeVersionSalt bumps; a separate check asserts the default
// salt actually feeds the hash (bumping it must miss the cache).

#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "sweep/request_json.hpp"

namespace cmetile::sweep {
namespace {

constexpr std::uint64_t kGoldenSalt = 0x1CCB2002;  // fixed forever, test-only

/// The golden fixture: the paper's MM kernel at N=8 on the 8KB-style
/// direct-mapped cache, smoke GA budget, seed 2002. Every field is
/// deterministic — the encoding below must never change byte-wise without
/// a conscious schema revision.
core::OptimizeRequest golden_request() {
  core::OptimizerOptions options;
  options.shrink_for_smoke();
  options.ga.seed = 2002;
  return core::OptimizeRequest::tiling(
      kernels::build_kernel("MM", 8),
      cache::Hierarchy::single(cache::CacheConfig::direct_mapped(1024, 32)), options);
}

TEST(RequestJson, GoldenRequestEncodingIsPinned) {
  const std::string golden =
      R"({"schema":"cmetile-request-v1","kind":"tiling","nest":{"name":"MM",)"
      R"("loops":[{"name":"i","lo":1,"hi":8},{"name":"j","lo":1,"hi":8},{"name":"k","lo":1,"hi":8}],)"
      R"("arrays":[{"name":"a","extents":[8,8],"lower_bounds":[1,1],"element_size":8},)"
      R"({"name":"b","extents":[8,8],"lower_bounds":[1,1],"element_size":8},)"
      R"({"name":"c","extents":[8,8],"lower_bounds":[1,1],"element_size":8}],)"
      R"("refs":[{"array":0,"subscripts":[{"c":[1,0,0],"k":0},{"c":[0,1,0],"k":0}],"write":false,"statement":0},)"
      R"({"array":1,"subscripts":[{"c":[1,0,0],"k":0},{"c":[0,0,1],"k":0}],"write":false,"statement":0},)"
      R"({"array":2,"subscripts":[{"c":[0,0,1],"k":0},{"c":[0,1,0],"k":0}],"write":false,"statement":0},)"
      R"({"array":0,"subscripts":[{"c":[1,0,0],"k":0},{"c":[0,1,0],"k":0}],"write":true,"statement":0}]},)"
      R"("layout":{"alignment":128,"padding":[]},)"
      R"("levels":[{"size":1024,"line":32,"assoc":1,"latency":1,"writeback_latency":0,)"
      R"("replacement":"lru","mode":"inclusive"}],)"
      R"("options":{"ga":{"population":30,"crossover_prob":0.9,"mutation_prob":0.001,)"
      R"("min_generations":4,"max_generations":6,"convergence_threshold":0.02,"seed":2002,)"
      R"("initial_seeds":[]},"estimator":{"ci_width":0.1,"confidence":0.9,"sample_count":64,)"
      R"("seed":205414125,"exact_threshold":0},)"
      R"("analysis":{"probe_work_cap":16384,"enumerate_cap":32768},)"
      R"("check_legality":true,"seed_population":true,"extra_tile_seeds":[],)"
      R"("max_intra_pad_elems":8,"max_inter_pad_units":16}})";
  EXPECT_EQ(json_of_request(golden_request()).dump(), golden);
}

TEST(RequestJson, GoldenFingerprintIsPinned) {
  const std::string golden = "95e807e9f8aa1789bfb6141fc69f38fc";
  EXPECT_EQ(fingerprint_of(golden_request(), kGoldenSalt).hex(), golden);
  // The default salt must actually participate: a code-version bump is a
  // clean cache miss, not an aliased hit.
  EXPECT_NE(fingerprint_of(golden_request()).hex(),
            fingerprint_of(golden_request(), kGoldenSalt ^ 1).hex());
}

TEST(RequestJson, RequestRoundTripsCanonicallyForEveryKindAndKernel) {
  const cache::Hierarchy hierarchy =
      cache::Hierarchy::two_level(cache::CacheConfig::direct_mapped(1024, 32), 1.0,
                                  cache::CacheConfig{8192, 32, 2}, 10.0);
  for (const kernels::KernelSpec& spec : kernels::registry()) {
    for (const auto kind : {core::OptimizeKind::Tiling, core::OptimizeKind::Padding,
                            core::OptimizeKind::Joint}) {
      core::OptimizeRequest request;
      request.kind = kind;
      request.nest = kernels::build_kernel(spec.name, spec.sized ? spec.default_size : 0);
      request.hierarchy = hierarchy;
      request.options.ga.seed = 7;
      request.layout.alignment = 256;
      const Json encoded = json_of_request(request);
      const std::optional<core::OptimizeRequest> decoded = request_of_json(encoded);
      ASSERT_TRUE(decoded.has_value()) << spec.name;
      EXPECT_EQ(json_of_request(*decoded).dump(), encoded.dump()) << spec.name;
      EXPECT_EQ(fingerprint_of(*decoded).hex(), fingerprint_of(request).hex()) << spec.name;
    }
  }
}

TEST(RequestJson, ResponseRoundTripsCanonically) {
  const core::OptimizeResponse response = core::optimize(golden_request());
  const Json encoded = json_of_response(response);
  const std::optional<Json> reparsed = Json::parse(encoded.dump());
  ASSERT_TRUE(reparsed.has_value());
  const std::optional<core::OptimizeResponse> decoded = response_of_json(*reparsed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tiles.t, response.tiles.t);
  EXPECT_EQ(decoded->ga.best_cost, response.ga.best_cost);
  EXPECT_EQ(decoded->ga.evaluations, response.ga.evaluations);
  ASSERT_EQ(decoded->after.levels.size(), response.after.levels.size());
  EXPECT_EQ(decoded->after.levels[0].replacement_ratio,
            response.after.levels[0].replacement_ratio);
  EXPECT_EQ(decoded->after.weighted_cost, response.after.weighted_cost);
  // Canonical: the decoded response re-encodes to the same bytes.
  EXPECT_EQ(json_of_response(*decoded).dump(), encoded.dump());
}

TEST(RequestJson, FingerprintIsStableAndSensitive) {
  // Deterministic: two independent constructions agree.
  EXPECT_EQ(fingerprint_of(golden_request()).hex(), fingerprint_of(golden_request()).hex());
  const std::string base = fingerprint_of(golden_request()).hex();
  EXPECT_EQ(base.size(), 32u);

  core::OptimizeRequest seed = golden_request();
  seed.options.ga.seed ^= 1;
  EXPECT_NE(fingerprint_of(seed).hex(), base);

  core::OptimizeRequest kind = golden_request();
  kind.kind = core::OptimizeKind::Joint;
  EXPECT_NE(fingerprint_of(kind).hex(), base);

  core::OptimizeRequest geometry = golden_request();
  geometry.hierarchy.levels[0].config.size_bytes *= 2;
  EXPECT_NE(fingerprint_of(geometry).hex(), base);

  core::OptimizeRequest latency = golden_request();
  latency.hierarchy.levels[0].miss_latency = 2.0;
  EXPECT_NE(fingerprint_of(latency).hex(), base);

  core::OptimizeRequest layout = golden_request();
  layout.layout.alignment = 4096;
  EXPECT_NE(fingerprint_of(layout).hex(), base);

  core::OptimizeRequest size = golden_request();
  size.nest = kernels::build_kernel("MM", 9);
  EXPECT_NE(fingerprint_of(size).hex(), base);
}

/// Copy `obj` with member `key` replaced (or dropped when `value` is
/// nullopt). Json::set assumes unique keys, so mutation means rebuilding.
Json with_member(const Json& obj, std::string_view key, std::optional<Json> value) {
  Json out = Json::object();
  for (const auto& [k, v] : obj.members()) {
    if (k == key) {
      if (value) out.set(k, std::move(*value));
    } else {
      out.set(k, v);
    }
  }
  return out;
}

TEST(RequestJson, RejectsMalformedRequests) {
  // Wrong top-level shapes.
  EXPECT_FALSE(request_of_json(Json::integer(4)).has_value());
  EXPECT_FALSE(request_of_json(Json::object()).has_value());

  const Json good = json_of_request(golden_request());
  ASSERT_TRUE(request_of_json(good).has_value());

  // A request that corrupts or drops any required member must be refused.
  const auto rejects = [&](const char* key, std::optional<Json> value) {
    return !request_of_json(with_member(good, key, std::move(value))).has_value();
  };
  EXPECT_TRUE(rejects("schema", Json::string("cmetile-request-v0")));
  EXPECT_TRUE(rejects("schema", std::nullopt));
  EXPECT_TRUE(rejects("kind", Json::string("annealing")));
  EXPECT_TRUE(rejects("nest", Json::object()));
  EXPECT_TRUE(rejects("nest", std::nullopt));
  EXPECT_TRUE(rejects("levels", Json::array()));  // hierarchy cannot validate
  EXPECT_TRUE(rejects("levels", Json::integer(3)));
  EXPECT_TRUE(rejects("layout", Json::integer(0)));
  EXPECT_TRUE(rejects("options", Json::object()));

  // A level with broken geometry fails CacheConfig validation, and an
  // unknown replacement policy is refused at decode.
  const auto rejects_level = [&](const char* key, Json value) {
    const Json* lvl = good.find("levels");
    Json levels = Json::array();
    levels.push(with_member(lvl->items().front(), key, std::move(value)));
    return !request_of_json(with_member(good, "levels", std::move(levels))).has_value();
  };
  EXPECT_TRUE(rejects_level("size", Json::integer(1000)));  // non-power-of-two sets
  EXPECT_TRUE(rejects_level("assoc", Json::integer(0)));
  EXPECT_TRUE(rejects_level("replacement", Json::string("fifo")));
  EXPECT_TRUE(rejects_level("mode", Json::string("writeback")));
}

}  // namespace
}  // namespace cmetile::sweep

// Replacement-policy tests: tree-pseudo-LRU golden victim sequences
// (including the classic divergence from true LRU), degenerate
// equivalences (assoc 1: all policies identical; assoc 2: PLRU == LRU),
// and the determinism contract of seeded random replacement.

#include <gtest/gtest.h>

#include "cache/simulator.hpp"
#include "kernels/kernels.hpp"

namespace cmetile::cache {
namespace {

/// One set, 4 ways, 32B lines: line k = address k*32, all in set 0.
const CacheConfig kFourWay{128, 32, 4};

i64 addr(i64 line) { return line * 32; }

TEST(ReplacementPolicy, ToStringNames) {
  EXPECT_EQ(to_string(ReplacementPolicy::LRU), "lru");
  EXPECT_EQ(to_string(ReplacementPolicy::TreePLRU), "plru");
  EXPECT_EQ(to_string(ReplacementPolicy::Random), "random");
}

TEST(ReplacementPolicy, TreePlruRejectsNonPowerOfTwoAssociativity) {
  // 96B / 32B = 3 lines, 3-way, 1 set: valid geometry, invalid for PLRU.
  EXPECT_NO_THROW(Simulator(CacheConfig{96, 32, 3}));
  EXPECT_THROW(Simulator(CacheConfig{96, 32, 3}, ReplacementPolicy::TreePLRU), contract_error);
}

// Golden victim sequence on a 4-way set. After filling ways 0..3 with
// lines 0..3 the tree points at way 0; a miss evicts line 0 and flips the
// path bits, so the next miss walks the *other* half of the tree and
// evicts line 2 — where true LRU would have evicted line 1. This is the
// canonical PLRU divergence and pins the bit-update scheme exactly.
TEST(ReplacementPolicy, TreePlruGoldenVictimSequence) {
  Simulator sim(kFourWay, ReplacementPolicy::TreePLRU);
  for (i64 line = 0; line < 4; ++line) {
    EXPECT_EQ(sim.access(addr(line)), AccessOutcome::ColdMiss);
  }
  sim.access(addr(4));  // tree points left-left: evict line 0
  EXPECT_EQ(sim.last_eviction().line, 0);
  sim.access(addr(0));  // path flipped: evict line 2 (LRU would pick 1)
  EXPECT_EQ(sim.last_eviction().line, 2);
  sim.access(addr(2));  // flipped again: evict line 1
  EXPECT_EQ(sim.last_eviction().line, 1);
}

TEST(ReplacementPolicy, TreePlruHitUpdatesTheTree) {
  Simulator sim(kFourWay, ReplacementPolicy::TreePLRU);
  for (i64 line = 0; line < 4; ++line) sim.access(addr(line));
  EXPECT_EQ(sim.access(addr(0)), AccessOutcome::Hit);  // re-touch way 0
  sim.access(addr(4));  // tree now points right-left: evict line 2, not 0
  EXPECT_EQ(sim.last_eviction().line, 2);
  EXPECT_EQ(sim.access(addr(0)), AccessOutcome::Hit);  // 0 survived the miss
}

TEST(ReplacementPolicy, AllPoliciesIdenticalWhenDirectMapped) {
  // With one way per set there is never a victim choice to make.
  const CacheConfig dm = CacheConfig::direct_mapped(256);
  Simulator lru(dm, ReplacementPolicy::LRU);
  Simulator plru(dm, ReplacementPolicy::TreePLRU);
  Simulator rnd(dm, ReplacementPolicy::Random, /*seed=*/99);
  std::uint64_t state = 7;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const i64 address = (i64)((state >> 40) % 32) * 32;
    const bool is_write = (state & 1) != 0;
    const AccessOutcome expected = lru.access(address, is_write);
    EXPECT_EQ(plru.access(address, is_write), expected) << "access " << i;
    EXPECT_EQ(rnd.access(address, is_write), expected) << "access " << i;
  }
  EXPECT_EQ(lru.stats().dirty_evictions, rnd.stats().dirty_evictions);
}

TEST(ReplacementPolicy, TreePlruEqualsLruAtTwoWays) {
  // A one-bit tree is exact LRU: pins both implementations against each
  // other on a scrambled read/write stream.
  const CacheConfig two_way{1024, 32, 2};
  Simulator lru(two_way, ReplacementPolicy::LRU);
  Simulator plru(two_way, ReplacementPolicy::TreePLRU);
  std::uint64_t state = 11;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const i64 address = (i64)((state >> 35) % 96) * 32;
    const bool is_write = ((state >> 9) & 3) == 0;
    EXPECT_EQ(plru.access(address, is_write), lru.access(address, is_write)) << "access " << i;
  }
  EXPECT_EQ(plru.stats().replacement_misses, lru.stats().replacement_misses);
  EXPECT_EQ(plru.stats().dirty_evictions, lru.stats().dirty_evictions);
}

TEST(ReplacementPolicy, RandomIsDeterministicPerSeedAndAcrossReset) {
  const auto run = [](Simulator& sim) {
    std::vector<AccessOutcome> outcomes;
    std::uint64_t state = 3;
    for (int i = 0; i < 600; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      outcomes.push_back(sim.access((i64)((state >> 33) % 12) * 32));
    }
    return outcomes;
  };
  Simulator a(kFourWay, ReplacementPolicy::Random, 42);
  Simulator b(kFourWay, ReplacementPolicy::Random, 42);
  const auto first = run(a);
  EXPECT_EQ(run(b), first);  // same seed, same history
  a.reset();                 // reset restarts the victim stream too
  EXPECT_EQ(run(a), first);
  Simulator c(kFourWay, ReplacementPolicy::Random, 43);
  EXPECT_NE(run(c), first);  // a different seed picks different victims
}

TEST(ReplacementPolicy, RandomFillsFreeWaysBeforeEvicting) {
  Simulator sim(kFourWay, ReplacementPolicy::Random, 7);
  for (i64 line = 0; line < 4; ++line) {
    sim.access(addr(line));
    EXPECT_FALSE(sim.last_eviction().valid) << "line " << line;
  }
  sim.access(addr(4));  // set full now: someone must leave
  EXPECT_TRUE(sim.last_eviction().valid);
  EXPECT_EQ(sim.stats().clean_evictions, 1);
}

TEST(ReplacementPolicy, SimulateNestThreadsPolicyThrough) {
  const ir::LoopNest nest = kernels::build_kernel("MM", 8);
  const ir::MemoryLayout layout(nest);
  const CacheConfig config{512, 32, 4};
  const auto lru = simulate_nest(nest, layout, config);
  const auto plru = simulate_nest(nest, layout, config, ReplacementPolicy::TreePLRU);
  // Same stream, same cold misses (first touches are policy-independent);
  // the policies disagree on replacement misses on a thrashing kernel.
  EXPECT_EQ(lru.back().accesses, plru.back().accesses);
  EXPECT_EQ(lru.back().cold_misses, plru.back().cold_misses);
  EXPECT_NE(lru.back().replacement_misses, plru.back().replacement_misses);
}

}  // namespace
}  // namespace cmetile::cache

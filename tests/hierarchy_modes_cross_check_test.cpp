// Differential suite over the full hierarchy mode matrix: every
// {inclusive, exclusive, victim} × {LRU, tree-PLRU, random} combination is
// run through both the trace simulator and the per-level CME pipeline on
// real kernels, asserting
//  (a) the CME miss counts track the simulator within a per-policy
//      tolerance (the CMEs model LRU exactly; PLRU/random are modeled by
//      their LRU equivalent, so their tolerance is looser),
//  (b) the simulator's inclusion/exclusion self-checks report zero
//      violations for every combination, and
//  (c) the legacy all-inclusive LRU read-only path produces exactly the
//      standalone per-level stats of the pre-write-back simulator.

#include <gtest/gtest.h>

#include <vector>

#include "cache/simulator.hpp"
#include "cme/hierarchy.hpp"
#include "ir/trace.hpp"
#include "kernels/kernels.hpp"
#include "transform/tiling.hpp"

namespace cmetile {
namespace {

using cache::AccessOutcome;
using cache::CacheConfig;
using cache::CacheLevel;
using cache::Hierarchy;
using cache::LevelMode;
using cache::ReplacementPolicy;
using transform::TileVector;

/// Two-level hierarchy for the matrix: an 8-set 2-way L1 plus an L2 whose
/// geometry satisfies the mode's structural constraint (exclusive levels
/// share the L1 set count; victim buffers are fully associative).
Hierarchy matrix_hierarchy(LevelMode mode, ReplacementPolicy policy) {
  Hierarchy h;
  h.levels.push_back(CacheLevel{CacheConfig{512, 32, 2}, 10.0});
  CacheLevel l2{CacheConfig{2048, 32, 4}, 60.0};
  if (mode == LevelMode::Exclusive) l2.config = CacheConfig{1024, 32, 4};  // 8 sets, like L1
  if (mode == LevelMode::Victim) l2.config = CacheConfig{128, 32, 4};      // 1 set, 4 lines
  l2.mode = mode;
  for (auto& level : h.levels) level.replacement = policy;
  l2.replacement = policy;
  h.levels.push_back(l2);
  return h;
}

/// |cme - sim| tolerance as a fraction of the access count. The CME is an
/// LRU model: exact-policy runs get the repo's §3 sampling tolerance,
/// LRU-approximated policies a looser one; the victim bound (fully
/// associative union — optimistic) adds slack on top.
double tolerance(LevelMode mode, ReplacementPolicy policy) {
  double tol = 0.08;
  if (policy == ReplacementPolicy::TreePLRU) tol = 0.12;
  if (policy == ReplacementPolicy::Random) tol = 0.16;
  if (mode == LevelMode::Victim) tol += 0.07;
  return tol;
}

struct SimRun {
  std::vector<cache::MissStats> stats;  ///< per level, full run
  std::vector<i64> dirty_left;          ///< per level, lines dirty at end
  i64 inclusion_violations = 0;
  i64 exclusion_violations = 0;
};

SimRun run_simulator(const ir::LoopNest& nest, const ir::MemoryLayout& layout,
                     const Hierarchy& h) {
  cache::HierarchySimulator sim(h);
  ir::for_each_access(nest, layout, [&](std::size_t, i64 address, bool is_write) {
    sim.access(address, is_write);
  });
  SimRun run;
  for (std::size_t l = 0; l < h.depth(); ++l) {
    run.stats.push_back(sim.stats(l));
    run.dirty_left.push_back(sim.dirty_lines(l));
  }
  run.inclusion_violations = sim.inclusion_violations();
  run.exclusion_violations = sim.exclusion_violations();
  return run;
}

TEST(HierarchyModesCrossCheck, CmeTracksSimulatorAcrossTheFullMatrix) {
  const std::vector<std::pair<const char*, i64>> kernels = {{"MM", 12}, {"T2D", 16}};
  for (const LevelMode mode : {LevelMode::Inclusive, LevelMode::Exclusive, LevelMode::Victim}) {
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::LRU, ReplacementPolicy::TreePLRU, ReplacementPolicy::Random}) {
      const Hierarchy h = matrix_hierarchy(mode, policy);
      for (const auto& [name, size] : kernels) {
        const ir::LoopNest nest = kernels::build_kernel(name, size);
        const ir::MemoryLayout layout(nest);
        const std::string label = std::string(name) + " mode=" + cache::to_string(mode) +
                                  " policy=" + cache::to_string(policy);

        const SimRun sim = run_simulator(nest, layout, h);
        // Exclusion is structural (probe-extract + fill) — zero for every
        // policy. Inclusion is an *LRU theorem*: a larger random-replacement
        // level can evict a line L1 still holds, so the check is only an
        // invariant for stack-property policies.
        EXPECT_EQ(sim.exclusion_violations, 0) << label;
        if (policy != ReplacementPolicy::Random) {
          EXPECT_EQ(sim.inclusion_violations, 0) << label;
        }

        const cme::HierarchyAnalysis analysis(nest, layout, h, TileVector::untiled(nest));
        const double accesses = (double)nest.access_count();
        const double tol = tolerance(mode, policy);

        // L1 sees the full stream in every mode: compare miss counts.
        const auto l1 = cme::classify_all_points(analysis.level(0));
        EXPECT_NEAR((double)l1.back().total_misses() / accesses,
                    (double)sim.stats[0].total_misses() / accesses, tol)
            << label << " L1";

        // Level 2's CME models the *effective* cache over the full
        // stream. An inclusive L2 is probed on every access, so the
        // simulator counts are directly comparable; an exclusive/victim
        // L2 is only probed when L1 missed — its misses are exactly the
        // misses of the merged effective cache, so absolute miss counts
        // are the mode-independent quantity.
        const auto l2 = cme::classify_all_points(analysis.level(1));
        EXPECT_NEAR((double)l2.back().total_misses() / accesses,
                    (double)sim.stats[1].total_misses() / accesses, tol)
            << label << " L2";
      }
    }
  }
}

TEST(HierarchyModesCrossCheck, LegacyInclusiveLruReadOnlyPathIsUnchanged) {
  // (c) The pre-write-back convention: all-inclusive LRU levels over a
  // read-only stream must produce exactly the standalone per-level stats
  // (every level sees the full stream; no dirty traffic anywhere).
  const Hierarchy h = matrix_hierarchy(LevelMode::Inclusive, ReplacementPolicy::LRU);
  const ir::LoopNest nest = kernels::build_kernel("MM", 12);
  const ir::MemoryLayout layout(nest);

  cache::HierarchySimulator sim(h);
  ir::for_each_access(nest, layout, [&](std::size_t, i64 address, bool) {
    sim.access(address, /*is_write=*/false);
  });
  for (std::size_t l = 0; l < h.depth(); ++l) {
    cache::Simulator standalone(h.levels[l].config);
    ir::for_each_access(nest, layout,
                        [&](std::size_t, i64 address, bool) { standalone.access(address); });
    EXPECT_EQ(sim.stats(l).accesses, standalone.stats().accesses) << "L" << (l + 1);
    EXPECT_EQ(sim.stats(l).cold_misses, standalone.stats().cold_misses) << "L" << (l + 1);
    EXPECT_EQ(sim.stats(l).replacement_misses, standalone.stats().replacement_misses)
        << "L" << (l + 1);
    EXPECT_EQ(sim.stats(l).dirty_evictions, 0) << "L" << (l + 1);
    EXPECT_EQ(sim.dirty_lines(l), 0) << "L" << (l + 1);
  }
  EXPECT_EQ(sim.inclusion_violations(), 0);
}

TEST(HierarchyModesCrossCheck, WritebackEstimateTracksDirtyTrafficPerMode) {
  // LRU-only (exact model): the level-0 dirty-generation estimate must
  // match the simulator's L1 write traffic (dirty evictions + lines left
  // dirty) in every level mode — the L1 stream is mode-independent.
  const ir::LoopNest nest = kernels::build_kernel("SYRK", 12);
  const ir::MemoryLayout layout(nest);
  for (const LevelMode mode : {LevelMode::Inclusive, LevelMode::Exclusive, LevelMode::Victim}) {
    const Hierarchy h = matrix_hierarchy(mode, ReplacementPolicy::LRU);
    const SimRun sim = run_simulator(nest, layout, h);
    const cme::HierarchyAnalysis analysis(nest, layout, h, TileVector::untiled(nest));
    const cme::WritebackEstimate wb = cme::estimate_writebacks_exact(analysis.level(0));
    ASSERT_GT(wb.store_access_count, 0);
    const double truth = (double)(sim.stats[0].dirty_evictions + sim.dirty_left[0]);
    EXPECT_NEAR(wb.generation_ratio, truth / (double)wb.store_access_count, 0.08)
        << "mode=" << cache::to_string(mode);
  }
}

TEST(HierarchyModesCrossCheck, RandomReplacementIsSeedDeterministic) {
  const Hierarchy h = matrix_hierarchy(LevelMode::Exclusive, ReplacementPolicy::Random);
  const ir::LoopNest nest = kernels::build_kernel("MM", 10);
  const ir::MemoryLayout layout(nest);
  const auto run = [&](std::uint64_t seed) {
    cache::HierarchySimulator sim(h, seed);
    ir::for_each_access(nest, layout, [&](std::size_t, i64 address, bool is_write) {
      sim.access(address, is_write);
    });
    EXPECT_EQ(sim.exclusion_violations(), 0) << "seed " << seed;
    return std::pair{sim.stats(0), sim.stats(1)};
  };
  const auto a = run(1), b = run(1), c = run(2);
  EXPECT_EQ(a.first.replacement_misses, b.first.replacement_misses);
  EXPECT_EQ(a.second.replacement_misses, b.second.replacement_misses);
  EXPECT_EQ(a.first.dirty_evictions, b.first.dirty_evictions);
  // A different seed picks different victims somewhere in this stream.
  EXPECT_NE(a.first.replacement_misses + a.second.replacement_misses,
            c.first.replacement_misses + c.second.replacement_misses);
}

TEST(HierarchyModesCrossCheck, TiledStreamsKeepInvariantsInEveryMode) {
  // The GA's candidate tilings reorder the stream: the invariants must
  // hold for tiled execution too, not just original order.
  const ir::LoopNest nest = kernels::build_kernel("MM", 12);
  const ir::MemoryLayout layout(nest);
  std::vector<ir::LinExpr> addr;
  for (const ir::Reference& ref : nest.refs) addr.push_back(layout.address_expr(nest, ref));
  const transform::TiledSpace space(nest.trip_counts(), TileVector{{4, 6, 3}});

  for (const LevelMode mode : {LevelMode::Exclusive, LevelMode::Victim}) {
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::LRU, ReplacementPolicy::TreePLRU, ReplacementPolicy::Random}) {
      cache::HierarchySimulator sim(matrix_hierarchy(mode, policy));
      std::vector<i64> point(nest.depth());
      space.for_each_point_tiled([&](std::span<const i64> z) {
        for (std::size_t d = 0; d < nest.depth(); ++d)
          point[d] = nest.loops[d].lower + z[d];
        for (std::size_t r = 0; r < nest.refs.size(); ++r) {
          sim.access(addr[r].eval(point), nest.refs[r].kind == ir::AccessKind::Write);
        }
      });
      EXPECT_EQ(sim.exclusion_violations(), 0)
          << cache::to_string(mode) << "/" << cache::to_string(policy);
      EXPECT_EQ(sim.inclusion_violations(), 0)
          << cache::to_string(mode) << "/" << cache::to_string(policy);
    }
  }
}

}  // namespace
}  // namespace cmetile

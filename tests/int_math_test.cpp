// Unit and property tests for the exact integer arithmetic the CME solver
// is built on. floor_sum and count_mod_in_range are verified against brute
// force over randomized instances — they are load-bearing for every
// emptiness probe.

#include <gtest/gtest.h>

#include "support/int_math.hpp"
#include "support/rng.hpp"

namespace cmetile {
namespace {

TEST(FloorDiv, RoundsTowardNegativeInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
}

TEST(FloorMod, AlwaysNonNegativeForPositiveModulus) {
  EXPECT_EQ(floor_mod(7, 3), 1);
  EXPECT_EQ(floor_mod(-7, 3), 2);
  EXPECT_EQ(floor_mod(-9, 3), 0);
  for (i64 a = -20; a <= 20; ++a) {
    for (i64 m = 1; m <= 7; ++m) {
      const i64 r = floor_mod(a, m);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, m);
      EXPECT_EQ(floor_div(a, m) * m + r, a);
    }
  }
}

TEST(CeilDiv, MatchesDefinition) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(6, 2), 3);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(10), 4);   // paper's example: U=10 -> k=4
  EXPECT_EQ(ceil_log2(100), 7);  // paper's example: U=100 -> 7 (+1 if odd -> 8)
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(CeilLog2, RejectsNonPositive) {
  EXPECT_THROW(ceil_log2(0), contract_error);
  EXPECT_THROW(ceil_log2(-3), contract_error);
}

TEST(ExtGcd, BezoutIdentityHolds) {
  for (i64 a = -12; a <= 12; ++a) {
    for (i64 b = -12; b <= 12; ++b) {
      const ExtGcd e = ext_gcd(a, b);
      EXPECT_EQ(e.g, std::gcd(a, b));
      EXPECT_EQ(a * e.x + b * e.y, e.g) << "a=" << a << " b=" << b;
    }
  }
}

TEST(ModInverse, InvertsUnits) {
  for (const i64 m : {2, 3, 7, 8, 9, 32, 8192}) {
    for (i64 a = 1; a < std::min<i64>(m, 40); ++a) {
      if (std::gcd(a, m) != 1) continue;
      const i64 inv = mod_inverse(a, m);
      EXPECT_EQ(floor_mod(a * inv, m), 1) << "a=" << a << " m=" << m;
    }
  }
}

TEST(ModInverse, RejectsNonUnits) { EXPECT_THROW(mod_inverse(4, 8), contract_error); }

i64 floor_sum_brute(i64 n, i64 m, i64 a, i64 b) {
  i64 s = 0;
  for (i64 i = 0; i < n; ++i) s += floor_div(a * i + b, m);
  return s;
}

TEST(FloorSum, SmallKnownCases) {
  EXPECT_EQ(floor_sum(0, 5, 3, 1), 0);
  EXPECT_EQ(floor_sum(5, 1, 0, 0), 0);
  EXPECT_EQ(floor_sum(4, 3, 1, 0), 0 + 0 + 0 + 1);
}

class FloorSumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloorSumProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const i64 n = rng.uniform_int(0, 40);
    const i64 m = rng.uniform_int(1, 50);
    const i64 a = rng.uniform_int(-200, 200);
    const i64 b = rng.uniform_int(-200, 200);
    EXPECT_EQ(floor_sum(n, m, a, b), floor_sum_brute(n, m, a, b))
        << "n=" << n << " m=" << m << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloorSumProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

i64 count_brute(i64 n, i64 m, i64 a, i64 b, i64 lo, i64 hi) {
  i64 c = 0;
  for (i64 x = 0; x < n; ++x)
    if (const i64 r = floor_mod(a * x + b, m); lo <= r && r <= hi) ++c;
  return c;
}

class CountModProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CountModProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const i64 m = rng.uniform_int(1, 64);
    const i64 n = rng.uniform_int(0, 60);
    const i64 a = rng.uniform_int(-300, 300);
    const i64 b = rng.uniform_int(-300, 300);
    i64 lo = rng.uniform_int(0, m - 1);
    i64 hi = rng.uniform_int(0, m - 1);
    if (lo > hi) std::swap(lo, hi);
    EXPECT_EQ(count_mod_in_range(n, m, a, b, lo, hi), count_brute(n, m, a, b, lo, hi))
        << "n=" << n << " m=" << m << " a=" << a << " b=" << b << " [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountModProperty, ::testing::Values(11u, 12u, 13u, 14u, 15u));

TEST(Interval, BasicOperations) {
  const Interval a{2, 5};
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.length(), 4);
  EXPECT_TRUE(a.contains(2));
  EXPECT_TRUE(a.contains(5));
  EXPECT_FALSE(a.contains(6));
  const Interval b{4, 9};
  EXPECT_EQ(a.intersect(b), (Interval{4, 5}));
  EXPECT_TRUE(a.intersect(Interval{6, 9}).empty());
  EXPECT_EQ(Interval{}.length(), 0);
}

TEST(WrappedInterval, WrapsAroundZero) {
  const WrappedInterval w{6, 4};  // residues {6,7,0,1} mod 8
  EXPECT_TRUE(w.contains(6, 8));
  EXPECT_TRUE(w.contains(7, 8));
  EXPECT_TRUE(w.contains(0, 8));
  EXPECT_TRUE(w.contains(1, 8));
  EXPECT_FALSE(w.contains(2, 8));
  EXPECT_FALSE(w.contains(5, 8));
  const WrappedInterval full{3, 8};
  EXPECT_TRUE(full.contains(0, 8));
}

}  // namespace
}  // namespace cmetile

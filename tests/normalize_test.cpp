// The generalized IR front-end: affine loop bounds (triangular nests),
// imperfect nesting via statement sinking, and the ir::normalize
// canonicalization that keeps the constant bounding box, the exact
// iteration count and the affine-aware traversal in sync.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ir/builder.hpp"
#include "ir/nest.hpp"
#include "ir/normalize.hpp"
#include "ir/trace.hpp"
#include "support/contracts.hpp"

namespace cmetile::ir {
namespace {

LoopNest triangular_nest(i64 n) {
  NestBuilder b("tri");
  auto k = b.loop("k", 1, n - 1);
  auto i = b.loop("i", k + 1, n);
  auto a = b.array("a", {n, n});
  b.statement().read(a, {k, i}).write(a, {i, k});
  return b.build();
}

TEST(Normalize, DerivesBoundingBoxesOutermostIn) {
  const LoopNest nest = triangular_nest(8);
  ASSERT_EQ(nest.depth(), 2u);
  EXPECT_FALSE(nest.rectangular());
  EXPECT_TRUE(nest.loops[0].rectangular());
  EXPECT_EQ(nest.loops[0].lower, 1);
  EXPECT_EQ(nest.loops[0].upper, 7);
  // i = k+1..8 over k in [1,7]: the interval hull is [2, 8].
  EXPECT_TRUE(nest.loops[1].has_affine_lower());
  EXPECT_FALSE(nest.loops[1].has_affine_upper());
  EXPECT_EQ(nest.loops[1].lower, 2);
  EXPECT_EQ(nest.loops[1].upper, 8);
  nest.validate();
}

TEST(Normalize, ConstantAffineBoundsCollapseToRectangular) {
  // Bounds given as LinExpr but actually constant must come out as plain
  // constant bounds (the rectangular fast paths key off rectangular()).
  NestBuilder b("const");
  auto i = b.loop("i", 1, 6);
  (void)b.loop("j", i - i + 2, LinExpr::constant(1, 5));
  auto a = b.array("a", {8, 8});
  b.statement().write(a, {LinExpr::constant(2, 1), LinExpr::constant(2, 1)});
  const LoopNest nest = b.build();
  EXPECT_TRUE(nest.rectangular());
  EXPECT_EQ(nest.loops[1].lower, 2);
  EXPECT_EQ(nest.loops[1].upper, 5);
}

TEST(Normalize, ExactIterationCountOnTriangles) {
  // i runs n-k values for each k: sum_{k=1}^{n-1} (n-k) = n(n-1)/2.
  for (const i64 n : {3, 5, 9}) {
    const LoopNest nest = triangular_nest(n);
    EXPECT_EQ(nest.iteration_count(), n * (n - 1) / 2) << "n = " << n;
  }
}

TEST(Normalize, ContainsMatchesDomainNotBox) {
  const LoopNest nest = triangular_nest(6);
  EXPECT_TRUE(nest.contains(std::vector<i64>{2, 4}));
  EXPECT_TRUE(nest.contains(std::vector<i64>{5, 6}));
  EXPECT_FALSE(nest.contains(std::vector<i64>{4, 3}));  // in box, not in domain
  EXPECT_FALSE(nest.contains(std::vector<i64>{5, 5}));  // i must exceed k
}

TEST(Normalize, ForEachPointMatchesBoxFilteredByContains) {
  const LoopNest nest = triangular_nest(7);
  std::set<std::vector<i64>> walked;
  std::vector<std::vector<i64>> order;
  for_each_point(nest, [&](std::span<const i64> z) {
    walked.emplace(z.begin(), z.end());
    order.emplace_back(z.begin(), z.end());
  });
  EXPECT_EQ((i64)order.size(), nest.iteration_count());
  EXPECT_EQ(order.size(), walked.size()) << "traversal revisited a point";
  std::set<std::vector<i64>> expected;
  for (i64 k = nest.loops[0].lower; k <= nest.loops[0].upper; ++k) {
    for (i64 i = nest.loops[1].lower; i <= nest.loops[1].upper; ++i) {
      if (nest.contains(std::vector<i64>{k, i})) expected.insert({k, i});
    }
  }
  EXPECT_EQ(walked, expected);
}

TEST(Normalize, SinksImperfectStatementsAndRecordsDepths) {
  NestBuilder b("imperfect");
  auto k = b.loop("k", 1, 4);
  auto x = b.array("x", {8});
  b.statement().write(x, {k});  // depth-1 statement of a depth-2 nest
  auto j = b.loop("j", 1, 5);
  b.statement().read(x, {k}).write(x, {j});
  const LoopNest nest = b.build();
  ASSERT_EQ(nest.statement_depths.size(), 2u);
  EXPECT_EQ(nest.statement_depths[0], 1u);
  EXPECT_EQ(nest.statement_depths[1], 2u);
  // The sunk statement's subscripts are widened to full depth.
  for (const Reference& ref : nest.refs) EXPECT_EQ(ref.subscripts[0].depth(), 2u);
  EXPECT_NE(nest.to_string().find("! sunk from depth 1"), std::string::npos);
}

TEST(Normalize, PerfectNestsCarryNoStatementDepths) {
  const LoopNest nest = triangular_nest(5);
  EXPECT_TRUE(nest.statement_depths.empty());
}

TEST(Normalize, ToStringRendersAffineBounds) {
  const std::string text = triangular_nest(8).to_string();
  EXPECT_NE(text.find("do i = k + 1, 8"), std::string::npos) << text;
}

TEST(Normalize, IsIdempotent) {
  const LoopNest once = triangular_nest(9);
  const LoopNest twice = normalize(once);
  EXPECT_EQ(once.to_string(), twice.to_string());
  EXPECT_EQ(once.iteration_count(), twice.iteration_count());
  for (std::size_t d = 0; d < once.depth(); ++d) {
    EXPECT_EQ(once.loops[d].lower, twice.loops[d].lower);
    EXPECT_EQ(once.loops[d].upper, twice.loops[d].upper);
  }
}

TEST(Normalize, ValidateRejectsOutOfSyncBoxes) {
  LoopNest nest = triangular_nest(6);
  nest.loops[1].lower = 1;  // hull says 2
  EXPECT_THROW(nest.validate(), contract_error);
}

TEST(Normalize, ValidateRejectsInnerVariableBounds) {
  LoopNest nest = triangular_nest(6);
  // A bound referencing its own (or an inner) dimension is malformed.
  nest.loops[0].upper_bound = LinExpr({0, 1}, 0);
  EXPECT_THROW(nest.validate(), contract_error);
}

TEST(Normalize, BuilderRejectsStatementsBeforeLoops) {
  NestBuilder b("empty");
  EXPECT_THROW(b.statement(), contract_error);
}

}  // namespace
}  // namespace cmetile::ir

// Lane-exact pins for the portable SIMD wrapper (support/simd.hpp): every
// operation must produce EXACTLY the scalar two's-complement result per
// lane, whichever backend the build selected (the CI matrix runs this on
// both the SIMD leg and the CMETILE_SIMD=OFF scalar leg). The batch
// classifier's bit-identity contract composes from these primitives.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "support/simd.hpp"

namespace cmetile {
namespace {

std::array<i64, 4> lanes_of(simd::I64x4 x) {
  std::array<i64, 4> out;
  simd::store(out.data(), x);
  return out;
}

simd::I64x4 from_lanes(const std::array<i64, 4>& lanes) { return simd::load(lanes.data()); }

/// Interesting 64-bit values: boundaries, sign flips, single bits.
std::vector<i64> edge_values() {
  std::vector<i64> v = {0,  1,  -1, 2,  -2, 63, -63, 64, -64, 1023, -1024,
                        (i64)0x7FFFFFFFFFFFFFFF, (i64)0x8000000000000000,
                        (i64)0x00000000FFFFFFFF, (i64)0xFFFFFFFF00000000,
                        (i64)0x0123456789ABCDEF, -(i64)0x0123456789ABCDEF};
  for (int bit = 0; bit < 64; bit += 9) v.push_back(i64{1} << bit);
  return v;
}

TEST(Simd, LoadStoreSplatRoundTrip) {
  const std::array<i64, 4> lanes = {1, -2, i64{3} << 40, (i64)0x8000000000000000};
  EXPECT_EQ(lanes_of(from_lanes(lanes)), lanes);
  EXPECT_EQ(lanes_of(simd::splat(-7)), (std::array<i64, 4>{-7, -7, -7, -7}));
}

TEST(Simd, ArithmeticAndBitwiseMatchScalar) {
  const std::vector<i64> values = edge_values();
  Rng rng(42);
  std::vector<std::pair<std::array<i64, 4>, std::array<i64, 4>>> cases;
  // Edge-value cross products (batched four at a time) plus random fill.
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::array<i64, 4> a, b;
    for (int l = 0; l < 4; ++l) {
      a[l] = values[(i + (std::size_t)l) % values.size()];
      b[l] = values[(i * 3 + (std::size_t)l * 7) % values.size()];
    }
    cases.emplace_back(a, b);
  }
  for (int i = 0; i < 64; ++i) {
    std::array<i64, 4> a, b;
    for (int l = 0; l < 4; ++l) {
      a[l] = (i64)rng.engine()();
      b[l] = (i64)rng.engine()();
    }
    cases.emplace_back(a, b);
  }

  for (const auto& [a, b] : cases) {
    const simd::I64x4 va = from_lanes(a);
    const simd::I64x4 vb = from_lanes(b);
    for (int l = 0; l < 4; ++l) {
      // Wrapping arithmetic via unsigned, matching two's complement.
      const std::uint64_t ua = (std::uint64_t)a[l], ub = (std::uint64_t)b[l];
      EXPECT_EQ(lanes_of(simd::add(va, vb))[l], (i64)(ua + ub)) << a[l] << "+" << b[l];
      EXPECT_EQ(lanes_of(simd::sub(va, vb))[l], (i64)(ua - ub)) << a[l] << "-" << b[l];
      EXPECT_EQ(lanes_of(simd::mul(va, vb))[l], (i64)(ua * ub)) << a[l] << "*" << b[l];
      EXPECT_EQ(lanes_of(simd::bit_and(va, vb))[l], a[l] & b[l]);
      EXPECT_EQ(lanes_of(simd::bit_or(va, vb))[l], a[l] | b[l]);
      EXPECT_EQ(lanes_of(simd::bit_andnot(va, vb))[l], a[l] & ~b[l]);
      EXPECT_EQ(lanes_of(simd::cmp_gt(va, vb))[l], a[l] > b[l] ? -1 : 0);
      EXPECT_EQ(lanes_of(simd::cmp_eq(va, vb))[l], a[l] == b[l] ? -1 : 0);
    }
  }
}

TEST(Simd, ArithmeticShiftMatchesScalarForNegatives) {
  const std::vector<i64> values = edge_values();
  for (std::size_t i = 0; i + 4 <= values.size(); ++i) {
    std::array<i64, 4> a;
    for (int l = 0; l < 4; ++l) a[l] = values[i + (std::size_t)l];
    for (const int n : {0, 1, 5, 31, 32, 33, 52, 63}) {
      const std::array<i64, 4> got = lanes_of(simd::shr_arith(from_lanes(a), n));
      for (int l = 0; l < 4; ++l) {
        EXPECT_EQ(got[l], a[l] >> n) << a[l] << " >> " << n;  // impl-defined == arithmetic here
      }
    }
  }
}

TEST(Simd, AnyAndBlendFollowLaneMasks) {
  const simd::I64x4 zero = simd::splat(0);
  EXPECT_FALSE(simd::any(zero));
  for (int lane = 0; lane < 4; ++lane) {
    std::array<i64, 4> mask{0, 0, 0, 0};
    mask[(std::size_t)lane] = -1;
    EXPECT_TRUE(simd::any(from_lanes(mask))) << lane;
    const std::array<i64, 4> a{10, 20, 30, 40};
    const std::array<i64, 4> b{-1, -2, -3, -4};
    const std::array<i64, 4> got =
        lanes_of(simd::blend(from_lanes(mask), from_lanes(a), from_lanes(b)));
    for (int l = 0; l < 4; ++l) EXPECT_EQ(got[l], l == lane ? a[(std::size_t)l] : b[(std::size_t)l]);
  }
}

TEST(Simd, FloorDivModExactOverGuardedRange) {
  // Property pin over the classifier's guarded domain (0 <= z < 2^52,
  // d >= 1): q and r must equal floor_div/floor_mod exactly, including at
  // the magic-number boundaries where the double rounding needs the
  // correction passes.
  std::vector<i64> zs = {0, 1, 2, 15, 16, 17, 1023, 1024, 1025,
                         (i64{1} << 51) - 1, i64{1} << 51, (i64{1} << 52) - 1};
  std::vector<i64> ds = {1, 2, 3, 7, 16, 163, 1024, (i64{1} << 31) + 7, (i64{1} << 51)};
  Rng rng(7);
  for (int i = 0; i < 200; ++i) zs.push_back((i64)(rng.engine()() & ((std::uint64_t{1} << 52) - 1)));
  for (int i = 0; i < 20; ++i) ds.push_back((i64)(rng.engine()() % (std::uint64_t{1} << 40)) + 1);

  for (const i64 d : ds) {
    for (std::size_t i = 0; i + 4 <= zs.size(); i += 4) {
      const std::array<i64, 4> z{zs[i], zs[i + 1], zs[i + 2], zs[i + 3]};
      simd::I64x4 q, r;
      simd::floor_div_mod_u52(from_lanes(z), d, q, r);
      const std::array<i64, 4> ql = lanes_of(q), rl = lanes_of(r);
      for (int l = 0; l < 4; ++l) {
        EXPECT_EQ(ql[l], floor_div(z[(std::size_t)l], d)) << z[(std::size_t)l] << " / " << d;
        EXPECT_EQ(rl[l], floor_mod(z[(std::size_t)l], d)) << z[(std::size_t)l] << " % " << d;
      }
    }
  }
}

}  // namespace
}  // namespace cmetile


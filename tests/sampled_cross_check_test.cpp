// Randomized cross-check of the §2.3 sampled estimator against the
// trace-driven cache simulator: on small nests, for randomized tile
// vectors, the 164-point width-0.1/90% estimate must land within its own
// confidence interval of the simulated miss ratios, modulo the CME model's
// approximation error (the same tolerance the exact-traversal tests use).
// The pure statistical claim — sampled estimate vs the exact CME traversal
// it approximates — must hold at (at least) the nominal CI coverage.

#include <gtest/gtest.h>

#include <vector>

#include "cme/estimator.hpp"
#include "kernels/kernels.hpp"
#include "support/rng.hpp"
#include "transform/tiling.hpp"

namespace cmetile {
namespace {

using transform::TileVector;

// Model-error allowance between the CME classifier and the simulator;
// matches the tolerance of the exact-mode tests in cme_vs_sim_test.cpp.
constexpr double kModelTolerance = 0.08;

struct Trial {
  std::string kernel;
  i64 size;
  TileVector tiles;
  double simulated;       ///< simulator replacement ratio (ground truth)
  double exact;           ///< exact CME traversal replacement ratio
  cme::MissEstimate est;  ///< sampled estimate
};

std::vector<Trial> run_trials(std::uint64_t base_seed) {
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(512);
  const std::vector<std::pair<std::string, i64>> configs = {
      {"T2D", 20}, {"MM", 12}, {"ADI", 12}, {"T3DJIK", 7}};

  std::vector<Trial> trials;
  for (std::size_t config = 0; config < configs.size(); ++config) {
    const auto& [kernel, size] = configs[config];
    const ir::LoopNest nest = kernels::build_kernel(kernel, size);
    const ir::MemoryLayout layout(nest);
    const std::vector<i64> trips = nest.trip_counts();
    // Seeds derive from the config *index* — std::hash<std::string> is
    // implementation-defined and would reshuffle trials across stdlibs.
    Rng rng(derive_seed(base_seed, config, (std::uint64_t)size));

    for (int t = 0; t < 4; ++t) {
      std::vector<i64> tile(nest.depth());
      for (std::size_t d = 0; d < tile.size(); ++d) tile[d] = rng.uniform_int(1, trips[d]);
      const TileVector tiles{tile};

      const cme::NestAnalysis analysis(nest, layout, cache, tiles);
      cme::EstimatorOptions options;  // paper defaults: 164 points, 0.1/90%
      options.seed = derive_seed(base_seed, 0xE57 + config, (std::uint64_t)t);

      Trial trial{kernel, size, tiles,
                  transform::simulate_tiled(nest, layout, cache, tiles).back().replacement_ratio(),
                  cme::estimate_exact(analysis).replacement_ratio,
                  cme::estimate_misses(analysis, options)};
      trials.push_back(std::move(trial));
    }
  }
  return trials;
}

TEST(SampledCrossCheck, EstimateWithinCiOfSimulatedRatioPlusModelError) {
  for (const Trial& trial : run_trials(2002)) {
    EXPECT_EQ(trial.est.sampled_points, cme::kPaperSampleCount);
    EXPECT_FALSE(trial.est.exact);
    EXPECT_GT(trial.est.replacement_half_width, 0.0);
    EXPECT_LE(trial.est.replacement_half_width, 0.05 + 1e-12);  // width <= 0.1
    EXPECT_NEAR(trial.est.replacement_ratio, trial.simulated,
                trial.est.replacement_half_width + kModelTolerance)
        << trial.kernel << "_" << trial.size << " tiles=" << trial.tiles.to_string();
  }
}

TEST(SampledCrossCheck, CiCoversTheExactCmeRatioAtNominalRate) {
  // The CI is exact-CME-centric: over many independent samples, at least
  // ~the nominal 90% (paper's one-sided-z convention: 80% two-sided) of
  // estimates must cover the exact traversal ratio. Seeds are fixed, but
  // std::uniform_int_distribution is implementation-defined, so the
  // threshold sits several sigma below nominal coverage: at true coverage
  // 0.80 and 80 trials, P(fraction < 0.70) is under 2%.
  int covered = 0, total = 0;
  for (const std::uint64_t seed : {2002u, 777u, 31415u, 271828u, 161803u}) {
    for (const Trial& trial : run_trials(seed)) {
      ++total;
      if (std::abs(trial.est.replacement_ratio - trial.exact) <=
          trial.est.replacement_half_width + 1e-12) {
        ++covered;
      }
    }
  }
  EXPECT_GE(total, 80);
  EXPECT_GE((double)covered / (double)total, 0.70)
      << covered << " of " << total << " estimates covered the exact ratio";
}

}  // namespace
}  // namespace cmetile

// Correctness pins for incremental re-evaluation (cme/eval_cache.hpp,
// DESIGN.md §14): classification routed through an EvalCache must be
// bit-identical to cold classification for ANY sequence of tile vectors —
// the memo may only answer when the answer provably cannot depend on the
// tile dims that changed (S0-invariance). These tests drive random
// mutation chains (the GA's actual access pattern: children share most
// dims with their parents) over warm caches and compare against cold
// evaluation, for any shard count, with SIMD on and off, on single caches
// and hierarchies, and through TilingObjective/optimize_tiling.

#include <gtest/gtest.h>

#include <vector>

#include "cme/estimator.hpp"
#include "cme/eval_cache.hpp"
#include "cme/hierarchy.hpp"
#include "core/tiler.hpp"
#include "kernels/kernels.hpp"
#include "support/rng.hpp"
#include "transform/tiling.hpp"

namespace cmetile {
namespace {

using transform::TileVector;

struct Config {
  std::string kernel;
  i64 size;
};

const std::vector<Config>& configs() {
  static const std::vector<Config> c = {{"T2D", 20}, {"MM", 12}, {"ADI", 12}};
  return c;
}

TileVector random_tiles(const ir::LoopNest& nest, Rng& rng) {
  std::vector<i64> tile(nest.depth());
  const std::vector<i64> trips = nest.trip_counts();
  for (std::size_t d = 0; d < tile.size(); ++d) tile[d] = rng.uniform_int(1, trips[d]);
  return TileVector{tile};
}

/// Mutate one random dim of `tiles` to a fresh legal value — the minimal
/// parent/child step, maximizing cross-genome dim sharing.
TileVector mutate_one_dim(const TileVector& tiles, const ir::LoopNest& nest, Rng& rng) {
  std::vector<i64> t = tiles.t;
  const std::vector<i64> trips = nest.trip_counts();
  const std::size_t d = (std::size_t)rng.uniform_int(0, (i64)t.size() - 1);
  t[d] = rng.uniform_int(1, trips[d]);
  return TileVector{std::move(t)};
}

TEST(EvalCache, WarmMatchesColdAcrossRandomMutationChains) {
  // 20-step mutation chains per kernel: every step's warm classification
  // (shared EvalCache, all prior steps' verdicts live) must equal a cold
  // classify_batch — for direct-mapped and 2-way caches, any shard count.
  for (const i64 assoc : {i64{1}, i64{2}}) {
    const cache::CacheConfig cache{512, 32, assoc};
    for (std::size_t config = 0; config < configs().size(); ++config) {
      const auto& [kernel, size] = configs()[config];
      const ir::LoopNest nest = kernels::build_kernel(kernel, size);
      const ir::MemoryLayout layout(nest);
      const auto points = cme::sample_points(nest, 96, derive_seed(14, config));
      Rng rng(derive_seed(2002, config, (std::uint64_t)assoc));

      cme::EvalCache eval_cache;
      TileVector tiles = random_tiles(nest, rng);
      const int shard_choices[] = {1, 3, 0};
      for (int step = 0; step < 20; ++step) {
        const cme::NestAnalysis analysis(nest, layout, cache, tiles);
        const std::vector<cme::Outcome> cold = analysis.classify_batch(points);
        const int shards = shard_choices[step % 3];
        EXPECT_EQ(analysis.classify_batch(points, eval_cache, 0, shards), cold)
            << kernel << "_" << size << " assoc=" << assoc << " step=" << step
            << " tiles=" << tiles.to_string() << " shards=" << shards;
        tiles = mutate_one_dim(tiles, nest, rng);
      }
      // The chain shares most dims step to step: the memo must have
      // answered something, and the binding must never have been rebuilt
      // (only tiles changed).
      const cme::EvalCacheStats stats = eval_cache.stats();
      EXPECT_GT(stats.verdict_lookups, 0) << kernel;
      EXPECT_GT(stats.verdict_hits, 0) << kernel;
      EXPECT_EQ(stats.rebinds, 1) << kernel;
    }
  }
}

TEST(EvalCache, WarmMatchesColdWithSimdOff) {
  // The scalar-fallback path (AnalysisOptions::simd = false) must agree
  // with both its own cold path and the SIMD warm path.
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(512);
  const ir::LoopNest nest = kernels::build_kernel("MM", 12);
  const ir::MemoryLayout layout(nest);
  const auto points = cme::sample_points(nest, 96, 7);
  Rng rng(derive_seed(33, 0));

  cme::AnalysisOptions scalar_options;
  scalar_options.simd = false;

  cme::EvalCache simd_cache;
  cme::EvalCache scalar_cache;
  TileVector tiles = random_tiles(nest, rng);
  for (int step = 0; step < 10; ++step) {
    const cme::NestAnalysis simd(nest, layout, cache, tiles);
    const cme::NestAnalysis scalar(nest, layout, cache, tiles, scalar_options);
    const std::vector<cme::Outcome> cold = scalar.classify_batch(points);
    EXPECT_EQ(simd.classify_batch(points), cold) << "step=" << step;
    EXPECT_EQ(simd.classify_batch(points, simd_cache, 0), cold) << "step=" << step;
    EXPECT_EQ(scalar.classify_batch(points, scalar_cache, 0), cold) << "step=" << step;
    tiles = mutate_one_dim(tiles, nest, rng);
  }
}

TEST(EvalCache, HierarchyWarmMatchesCold) {
  // Two-level hierarchy: per-level EvalCache slices must reproduce the
  // cold estimate bit for bit along a mutation chain.
  const cache::Hierarchy h =
      cache::Hierarchy::two_level(cache::CacheConfig{512, 32, 1}, 10.0,
                                  cache::CacheConfig{2048, 32, 2}, 60.0);
  for (std::size_t config = 0; config < configs().size(); ++config) {
    const auto& [kernel, size] = configs()[config];
    const ir::LoopNest nest = kernels::build_kernel(kernel, size);
    const ir::MemoryLayout layout(nest);
    const auto points = cme::sample_points(nest, 96, derive_seed(21, config));
    Rng rng(derive_seed(5, config));

    cme::EvalCache eval_cache;
    TileVector tiles = random_tiles(nest, rng);
    for (int step = 0; step < 8; ++step) {
      const cme::HierarchyAnalysis analysis(nest, layout, h, tiles);
      const cme::HierarchyEstimate cold = cme::estimate_hierarchy_with_points(analysis, points);
      const cme::HierarchyEstimate warm =
          cme::estimate_hierarchy_with_points(analysis, points, 0.90, &eval_cache);
      ASSERT_EQ(warm.levels.size(), cold.levels.size());
      EXPECT_EQ(warm.weighted_cost, cold.weighted_cost)
          << kernel << " step=" << step << " tiles=" << tiles.to_string();
      for (std::size_t l = 0; l < cold.levels.size(); ++l) {
        EXPECT_EQ(warm.levels[l].replacement_ratio, cold.levels[l].replacement_ratio)
            << kernel << " step=" << step << " level=" << l;
        EXPECT_EQ(warm.levels[l].cold_ratio, cold.levels[l].cold_ratio)
            << kernel << " step=" << step << " level=" << l;
      }
      tiles = mutate_one_dim(tiles, nest, rng);
    }
    EXPECT_GT(eval_cache.stats().verdict_hits, 0) << kernel;
  }
}

TEST(EvalCache, HitCountersBehaveSanely) {
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(512);
  const ir::LoopNest nest = kernels::build_kernel("MM", 12);
  const ir::MemoryLayout layout(nest);
  const auto points = cme::sample_points(nest, 96, 3);

  cme::EvalCache eval_cache;
  const TileVector parent{{12, 4, 4}};
  const cme::NestAnalysis first(nest, layout, cache, parent);
  (void)first.classify_batch(points, eval_cache, 0, 1);
  const cme::EvalCacheStats after_first = eval_cache.stats();
  // A fresh cache cannot answer anything: each (point, ref) pair is
  // classified exactly once within a pass.
  EXPECT_GT(after_first.verdict_lookups, 0);
  EXPECT_EQ(after_first.verdict_hits, 0);
  EXPECT_EQ(after_first.rebinds, 1);

  // Re-evaluating the exact same genome: every stable memoized verdict
  // hits — the hit count equals the lookup count of pairs whose verdict
  // survived insertion, which must be most of them.
  const cme::NestAnalysis repeat(nest, layout, cache, parent);
  (void)repeat.classify_batch(points, eval_cache, 0, 1);
  const cme::EvalCacheStats after_repeat = eval_cache.stats();
  const i64 repeat_hits = after_repeat.verdict_hits - after_first.verdict_hits;
  EXPECT_GT(repeat_hits, 0);
  EXPECT_LE(repeat_hits, after_repeat.verdict_lookups - after_first.verdict_lookups);
  EXPECT_EQ(after_repeat.rebinds, 1);  // same binding: no rebuild

  // A child sharing 2 of 3 dims with the parent: every pair whose S0 set
  // avoids the mutated dim keeps its verdict — hits must still land.
  const TileVector child{{12, 4, 8}};
  const cme::NestAnalysis child_analysis(nest, layout, cache, child);
  const std::vector<cme::Outcome> warm = child_analysis.classify_batch(points, eval_cache, 0, 1);
  const cme::EvalCacheStats after_child = eval_cache.stats();
  EXPECT_GT(after_child.verdict_hits - after_repeat.verdict_hits, 0);
  // ... and the answers are still the cold answers.
  EXPECT_EQ(warm, child_analysis.classify_batch(points));

  // A different sample is a different binding: the cache must rebind
  // (detect the change), not serve stale verdicts.
  const auto other_points = cme::sample_points(nest, 96, 4);
  const std::vector<cme::Outcome> rebound =
      child_analysis.classify_batch(other_points, eval_cache, 0, 1);
  EXPECT_EQ(eval_cache.stats().rebinds, 2);
  EXPECT_EQ(rebound, child_analysis.classify_batch(other_points));
}

TEST(EvalCache, ObjectiveIncrementalMatchesColdCosts) {
  // TilingObjective with incremental on/off: identical costs over a
  // random population, single-cache and hierarchy forms.
  const ir::LoopNest nest = kernels::build_kernel("MM", 12);
  const ir::MemoryLayout layout(nest);
  const cache::Hierarchy h =
      cache::Hierarchy::two_level(cache::CacheConfig{512, 32, 1}, 10.0,
                                  cache::CacheConfig{2048, 32, 2}, 60.0);

  core::ObjectiveOptions warm_options;
  core::ObjectiveOptions cold_options;
  cold_options.incremental = false;
  const core::TilingObjective warm(nest, layout, h, warm_options);
  const core::TilingObjective cold(nest, layout, h, cold_options);
  EXPECT_EQ(cold.eval_cache_stats().verdict_lookups, 0);

  Rng rng(derive_seed(77, 1));
  for (int i = 0; i < 12; ++i) {
    const TileVector tiles = random_tiles(nest, rng);
    EXPECT_EQ(warm(tiles.t), cold(tiles.t)) << tiles.to_string();
    const cme::HierarchyEstimate we = warm.evaluate_hierarchy(tiles);
    const cme::HierarchyEstimate ce = cold.evaluate_hierarchy(tiles);
    EXPECT_EQ(we.weighted_cost, ce.weighted_cost) << tiles.to_string();
  }
  EXPECT_GT(warm.eval_cache_stats().verdict_lookups, 0);
}

TEST(EvalCache, OptimizeTilingIdenticalWithIncrementalOnOrOff) {
  // End to end through the GA: the full optimize_tiling result — best
  // values, best cost, per-generation history — must not depend on
  // incremental evaluation, and the counters must surface in GaResult.
  const ir::LoopNest nest = kernels::build_kernel("T2D", 20);
  const ir::MemoryLayout layout(nest);
  const cache::CacheConfig cache = cache::CacheConfig::direct_mapped(512);

  core::OptimizerOptions on;
  on.ga.max_generations = 18;
  core::OptimizerOptions off = on;
  off.objective.incremental = false;

  const core::TilingResult warm = core::optimize_tiling(nest, layout, cache, on);
  const core::TilingResult cold = core::optimize_tiling(nest, layout, cache, off);

  EXPECT_EQ(warm.ga.best_values, cold.ga.best_values);
  EXPECT_EQ(warm.ga.best_cost, cold.ga.best_cost);
  EXPECT_EQ(warm.ga.generations, cold.ga.generations);
  ASSERT_EQ(warm.ga.history.size(), cold.ga.history.size());
  for (std::size_t g = 0; g < warm.ga.history.size(); ++g) {
    EXPECT_EQ(warm.ga.history[g].best, cold.ga.history[g].best) << g;
    EXPECT_EQ(warm.ga.history[g].average, cold.ga.history[g].average) << g;
  }
  EXPECT_EQ(warm.after.replacement_ratio, cold.after.replacement_ratio);

  // Counter plumbing: incremental runs report their cache traffic next to
  // memo_hits(); non-incremental runs report zeros.
  EXPECT_GT(warm.ga.eval_cache_lookups, 0);
  EXPECT_GT(warm.ga.eval_cache_hits, 0);
  EXPECT_EQ(cold.ga.eval_cache_lookups, 0);
  EXPECT_EQ(cold.ga.eval_cache_hits, 0);
}

TEST(EvalCache, RetuningReplacementPolicyRebindsTheLevel) {
  // A policy change leaves the effective geometry — and hence every CME
  // verdict — untouched, so it is exactly the case the binding digest must
  // split by itself: serving a PLRU retune from LRU-era entries would be
  // silently wrong the day the model starts distinguishing them. The
  // level's analysis is salted with (policy, mode), so the slice rebinds.
  const ir::LoopNest nest = kernels::build_kernel("MM", 12);
  const ir::MemoryLayout layout(nest);
  const auto points = cme::sample_points(nest, 96, 17);
  const TileVector tiles{{12, 4, 4}};
  cache::Hierarchy lru = cache::Hierarchy::two_level(cache::CacheConfig{512, 32, 2}, 10.0,
                                                     cache::CacheConfig{2048, 32, 2}, 60.0);

  cme::EvalCache eval_cache;
  const cme::HierarchyAnalysis first(nest, layout, lru, tiles);
  (void)cme::estimate_hierarchy_with_points(first, points, 0.90, &eval_cache);
  const i64 rebinds_lru = eval_cache.stats().rebinds;
  (void)cme::estimate_hierarchy_with_points(first, points, 0.90, &eval_cache);
  EXPECT_EQ(eval_cache.stats().rebinds, rebinds_lru);  // same binding: warm

  cache::Hierarchy plru = lru;
  plru.levels[1].replacement = cache::ReplacementPolicy::TreePLRU;
  const cme::HierarchyAnalysis retuned(nest, layout, plru, tiles);
  const cme::HierarchyEstimate warm =
      cme::estimate_hierarchy_with_points(retuned, points, 0.90, &eval_cache);
  EXPECT_GT(eval_cache.stats().rebinds, rebinds_lru);  // L2 slice invalidated

  // ... and the rebound warm path still equals cold, bit for bit.
  const cme::HierarchyEstimate cold = cme::estimate_hierarchy_with_points(retuned, points);
  EXPECT_EQ(warm.weighted_cost, cold.weighted_cost);
  for (std::size_t l = 0; l < cold.levels.size(); ++l) {
    EXPECT_EQ(warm.levels[l].total_ratio, cold.levels[l].total_ratio) << l;
    EXPECT_EQ(warm.levels[l].replacement_ratio, cold.levels[l].replacement_ratio) << l;
  }
}

TEST(EvalCache, NonDefaultModesStayWarmColdIdenticalAcrossMutations) {
  // Exclusive L2 + tree-PLRU: the salted, merged-geometry slices must
  // keep the warm == cold bit-identity along a mutation chain, same
  // contract as the default hierarchy.
  cache::Hierarchy h;
  h.levels.push_back(cache::CacheLevel{cache::CacheConfig{512, 32, 2}, 10.0});
  cache::CacheLevel l2{cache::CacheConfig{1024, 32, 4}, 60.0};
  l2.mode = cache::LevelMode::Exclusive;
  l2.replacement = cache::ReplacementPolicy::TreePLRU;
  h.levels.push_back(l2);

  const ir::LoopNest nest = kernels::build_kernel("T2D", 20);
  const ir::MemoryLayout layout(nest);
  const auto points = cme::sample_points(nest, 96, 23);
  Rng rng(909);

  cme::EvalCache eval_cache;
  TileVector tiles = random_tiles(nest, rng);
  for (int step = 0; step < 6; ++step) {
    const cme::HierarchyAnalysis analysis(nest, layout, h, tiles);
    const cme::HierarchyEstimate cold = cme::estimate_hierarchy_with_points(analysis, points);
    const cme::HierarchyEstimate warm =
        cme::estimate_hierarchy_with_points(analysis, points, 0.90, &eval_cache);
    EXPECT_EQ(warm.weighted_cost, cold.weighted_cost)
        << "step=" << step << " tiles=" << tiles.to_string();
    for (std::size_t l = 0; l < cold.levels.size(); ++l) {
      EXPECT_EQ(warm.levels[l].total_ratio, cold.levels[l].total_ratio)
          << "step=" << step << " level=" << l;
    }
    tiles = mutate_one_dim(tiles, nest, rng);
  }
  EXPECT_GT(eval_cache.stats().verdict_hits, 0);
}

}  // namespace
}  // namespace cmetile
